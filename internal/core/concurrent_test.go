package core

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"xqdb/internal/limit"
	"xqdb/internal/plancache"
	"xqdb/internal/store"
)

func concurrentFixture(t *testing.T, n int) *store.Store {
	t.Helper()
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<x>%d</x>", i)
	}
	b.WriteString("</r>")
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.LoadString(b.String()); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestConcurrentQueriesRaceClean runs many queries on ONE engine from many
// goroutines. Under -race this is the regression test for the old
// engine-global mutable state (e.counters, e.current): every run must
// produce the right bytes and its own counters.
func TestConcurrentQueriesRaceClean(t *testing.T) {
	st := concurrentFixture(t, 500)
	e := New(st, Config{Mode: ModeM4, SortBudget: 32 << 10, MemBudget: 1 << 20})

	queries := []struct{ src, want string }{
		{`for $x in /r/x return if ($x/text() = "7") then <hit/> else ()`, "<hit/>"},
		{`for $x in /r/x return if ($x/text() = "41") then <a/> else ()`, "<a/>"},
		{`for $x in //x return if ($x/text() = "499") then <last/> else ()`, "<last/>"},
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				q := queries[(g+i)%len(queries)]
				res, err := e.NewHandle().Query(q.src)
				if err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
				if res.XML != q.want {
					t.Errorf("concurrent query returned %q, want %q", res.XML, q.want)
					return
				}
				if res.Counters.RowsScanned == 0 {
					t.Error("per-query counters empty")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if e.Counters().RowsScanned == 0 {
		t.Error("Counters() after concurrent runs has no last-completed run")
	}
	if pins := st.PinnedPages(); pins != 0 {
		t.Errorf("concurrent queries leaked %d pinned pages", pins)
	}
}

// TestHandleCancelTargetsOwnQuery overlaps two queries on one engine and
// cancels only one of them through its own handle: the victim returns
// limit.ErrCanceled while queries on other handles keep succeeding — the
// regression test for the single e.current slot, under which a cancel
// could only ever hit the last-started query.
func TestHandleCancelTargetsOwnQuery(t *testing.T) {
	st := concurrentFixture(t, 2000)
	e := New(st, Config{Mode: ModeM4, SortBudget: 4 << 10, MemBudget: 1 << 20})

	victim := e.NewHandle()
	victimErr := make(chan error, 1)
	go func() {
		_, err := victim.Query(`for $x in //x return for $y in //x return if ($x/text() = $y/text()) then <m/> else ()`)
		victimErr <- err
	}()

	// While hammering the victim's handle, queries on fresh handles — the
	// later-started ones, which the old slot would have aborted instead —
	// must keep completing.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				victim.Cancel()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	deadline := time.After(30 * time.Second)
	for i := 0; ; i++ {
		select {
		case err := <-victimErr:
			close(done)
			if !errors.Is(err, limit.ErrCanceled) {
				t.Fatalf("victim returned %v, want %v", err, limit.ErrCanceled)
			}
			if i == 0 {
				t.Log("no bystander query overlapped the cancel window")
			}
			if dir, derr := st.TempDir(); derr == nil {
				if ents, _ := os.ReadDir(dir); len(ents) != 0 {
					t.Errorf("cancel leaked %d temp files", len(ents))
				}
			}
			return
		case <-deadline:
			close(done)
			t.Fatal("victim query never returned")
		default:
		}
		res, err := e.NewHandle().Query(`for $x in /r/x return if ($x/text() = "7") then <hit/> else ()`)
		if err != nil {
			close(done)
			t.Fatalf("bystander query %d hit the victim's cancel: %v", i, err)
		}
		if res.XML != "<hit/>" {
			close(done)
			t.Fatalf("bystander query returned %q", res.XML)
		}
	}
}

// TestHandleCancelBeforeQuery cancels a handle before its query starts:
// the query must abort at its first budget poll.
func TestHandleCancelBeforeQuery(t *testing.T) {
	st := concurrentFixture(t, 100)
	e := New(st, Config{Mode: ModeM4})
	h := e.NewHandle()
	h.Cancel()
	_, err := h.Query(`for $x in //x return $x`)
	if !errors.Is(err, limit.ErrCanceled) {
		t.Fatalf("pre-canceled handle ran to %v, want %v", err, limit.ErrCanceled)
	}
}

// TestEngineCancelAbortsAllInflight overlaps two queries and calls the
// engine-wide Cancel: both must return limit.ErrCanceled (the old slot
// canceled only the last-started one).
func TestEngineCancelAbortsAllInflight(t *testing.T) {
	st := concurrentFixture(t, 2000)
	e := New(st, Config{Mode: ModeM4, SortBudget: 4 << 10, MemBudget: 4 << 10})

	slow := `for $x in //x return for $y in //x return if ($x/text() = $y/text()) then <m/> else ()`
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := e.Query(slow)
			errs <- err
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				e.Cancel()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, limit.ErrCanceled) {
			t.Errorf("query %d returned %v, want %v", i, err, limit.ErrCanceled)
		}
	}
	close(done)
}

// TestQueryPlanCache exercises the cached query path end to end: first run
// misses and stores, a reformatted repeat hits with byte-identical output,
// an epoch bump misses again, and parse failures are never cached.
func TestQueryPlanCache(t *testing.T) {
	st := concurrentFixture(t, 200)
	cache := plancache.New(16)
	mk := func(epoch uint64) *Engine {
		return New(st, Config{Mode: ModeM4, PlanCache: cache,
			CacheDoc: plancache.DocVersion{Name: "doc", Epoch: epoch}})
	}
	e := mk(1)

	src := `for $x in /r/x return if ($x/text() = "7") then <hit/> else ()`
	r1, err := e.NewHandle().Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Error("first run reported a cache hit")
	}
	// Same query, different whitespace: must hit and return the same bytes.
	r2, err := e.NewHandle().Query("for   $x in /r/x\n return if ($x/text() = \"7\") then <hit/> else ()")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Error("repeat run missed the cache")
	}
	if r1.XML != r2.XML {
		t.Errorf("cached run returned %q, uncached %q", r2.XML, r1.XML)
	}
	if r1.Counters != r2.Counters {
		t.Errorf("cached run counters differ: %+v vs %+v", r2.Counters, r1.Counters)
	}

	// A stats-epoch bump invalidates: the same text misses and recompiles.
	r3, err := mk(2).NewHandle().Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheHit {
		t.Error("stale-epoch run reported a cache hit")
	}
	if r3.XML != r1.XML {
		t.Errorf("post-bump run returned %q, want %q", r3.XML, r1.XML)
	}

	// Parse errors are not cached.
	before := cache.Len()
	if _, err := e.NewHandle().Query(`for $x in`); err == nil {
		t.Fatal("malformed query succeeded")
	}
	if cache.Len() != before {
		t.Error("parse failure grew the cache")
	}

	st2 := cache.Stats()
	if st2.Hits != 1 || st2.Puts != 2 {
		t.Errorf("cache stats = %+v, want 1 hit / 2 puts", st2)
	}
}

// TestQueryPlanCacheConcurrent runs the same cached query from many
// goroutines: every execution clones the pristine plan, so under -race
// this proves cached plans share no mutable state.
func TestQueryPlanCacheConcurrent(t *testing.T) {
	st := concurrentFixture(t, 300)
	e := New(st, Config{Mode: ModeM4, PlanCache: plancache.New(16),
		CacheDoc: plancache.DocVersion{Name: "doc", Epoch: 1}})
	src := `for $x in //x return if ($x/text() = "42") then <hit/> else ()`
	want, err := e.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := e.NewHandle().Query(src)
				if err != nil {
					t.Errorf("cached query: %v", err)
					return
				}
				if res.XML != want {
					t.Errorf("cached query returned %q, want %q", res.XML, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

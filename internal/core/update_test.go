package core

import (
	"strings"
	"testing"

	"xqdb/internal/store"
)

func updEngine(t *testing.T, doc string) *Engine {
	t.Helper()
	return updEngineOpts(t, doc, store.Options{})
}

func updEngineOpts(t *testing.T, doc string, opts store.Options) *Engine {
	t.Helper()
	st, err := store.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.LoadString(doc); err != nil {
		t.Fatalf("Load: %v", err)
	}
	return New(st, Config{Mode: ModeM4})
}

func TestEngineUpdateInsert(t *testing.T) {
	e := updEngine(t, `<journal><authors><name>Ana</name></authors><title>DB</title></journal>`)
	res, err := e.Update(`insert node <name>Bob</name> into /journal/authors`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 1 || res.Applied != 1 || res.Seq != 1 {
		t.Fatalf("res = %+v", res)
	}
	got, err := e.Query(`//name`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "<name>Ana</name><name>Bob</name>" {
		t.Fatalf("after insert: %s", got)
	}
}

func TestEngineUpdateDeleteMultiTarget(t *testing.T) {
	e := updEngine(t, `<j><a><name>Ana</name><name>Bob</name></a><name>Cyd</name></j>`)
	res, err := e.Update(`delete node //name`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 3 || res.Applied != 3 {
		t.Fatalf("res = %+v", res)
	}
	got, err := e.Query(`/j`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "<j><a/></j>" {
		t.Fatalf("after delete: %s", got)
	}
}

func TestEngineUpdateNestedDeleteSkips(t *testing.T) {
	// //a selects both the outer and the inner a; deleting the outer one
	// consumes the inner target, which must be skipped, not fail.
	e := updEngine(t, `<r><a><a><x/></a></a><b/></r>`)
	res, err := e.Update(`delete node //a`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 2 || res.Applied != 2 {
		t.Fatalf("res = %+v", res)
	}
	if got, _ := e.Query(`/r`); got != "<r><b/></r>" {
		t.Fatalf("after delete: %s", got)
	}
}

func TestEngineUpdateReplace(t *testing.T) {
	e := updEngine(t, `<j><title>Old</title><year>1999</year></j>`)
	if _, err := e.Update(`replace node /j/title with <title>New</title>`); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.Query(`/j`); got != "<j><title>New</title><year>1999</year></j>" {
		t.Fatalf("after replace: %s", got)
	}
}

func TestEngineUpdateTextTarget(t *testing.T) {
	e := updEngine(t, `<j><t>keep</t><t>drop</t></j>`)
	res, err := e.Update(`delete node /j/t/text()`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 2 {
		t.Fatalf("res = %+v", res)
	}
	if got, _ := e.Query(`/j`); got != "<j><t/><t/></j>" {
		t.Fatalf("after delete: %s", got)
	}
}

func TestEngineUpdateNoTargetsIsNoop(t *testing.T) {
	e := updEngine(t, `<j><t>x</t></j>`)
	res, err := e.Update(`delete node //missing`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 0 || res.Applied != 0 || res.Seq != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestEngineUpdateInvalidatesM1DOM(t *testing.T) {
	e := updEngine(t, `<j><t>x</t></j>`)
	e.cfg.Mode = ModeM1
	before, err := e.Query(`//t`)
	if err != nil || before != "<t>x</t>" {
		t.Fatalf("before: %q, %v", before, err)
	}
	if _, err := e.Update(`insert node <t>y</t> into /j`); err != nil {
		t.Fatal(err)
	}
	after, err := e.Query(`//t`)
	if err != nil {
		t.Fatal(err)
	}
	if after != "<t>x</t><t>y</t>" {
		t.Fatalf("M1 served a stale DOM: %q", after)
	}
}

func TestEngineUpdateAllModesSeeChanges(t *testing.T) {
	engines := newEngines(t, `<j><a><name>Ana</name></a></j>`)
	if _, err := engines[ModeM4].Update(`insert node <name>Bob</name>, <name>Cyd</name> after /j/a/name`); err != nil {
		t.Fatal(err)
	}
	want, err := engines[ModeM1].Query(`//name`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(want, "Bob") || !strings.Contains(want, "Cyd") {
		t.Fatalf("reference missing inserts: %s", want)
	}
	for m, e := range engines {
		got, err := e.Query(`//name`)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if got != want {
			t.Errorf("%s disagrees after update:\n got: %s\nwant: %s", m, got, want)
		}
	}
}

// TestEngineUpdateMultiTargetRelabels pins stride 1 so every applied
// insert relabels, moving the remaining targets' labels: each target must
// translate through the composition of all earlier relabels.
func TestEngineUpdateMultiTargetRelabels(t *testing.T) {
	doc := `<r><x>a</x><x>b</x><x>c</x><x>d</x><x>e</x><x>f</x><x>g</x><x>h</x></r>`
	e := updEngineOpts(t, doc, store.Options{LabelStride: 1})
	res, err := e.Update(`insert node <z>new</z> into /r/x`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 8 || res.Applied != 8 {
		t.Fatalf("res = %+v", res)
	}
	want := `<r><x>a<z>new</z></x><x>b<z>new</z></x><x>c<z>new</z></x><x>d<z>new</z></x>` +
		`<x>e<z>new</z></x><x>f<z>new</z></x><x>g<z>new</z></x><x>h<z>new</z></x></r>`
	if got, _ := e.Query(`/r`); got != want {
		t.Fatalf("after insert:\n got: %s\nwant: %s", got, want)
	}
}

// TestEngineUpdateMultiTargetReplaceRelabels is the delete/replace face
// of the same hazard: a stale or recycled translation here silently
// replaces the wrong subtree (ErrNoNode is a benign nested-target skip,
// so nothing would fail loudly).
func TestEngineUpdateMultiTargetReplaceRelabels(t *testing.T) {
	doc := `<r><x>a</x><x>b</x><x>c</x><x>d</x><x>e</x><x>f</x><x>g</x><x>h</x></r>`
	e := updEngineOpts(t, doc, store.Options{LabelStride: 1})
	res, err := e.Update(`replace node /r/x with <y>v</y>`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 8 || res.Applied != 8 {
		t.Fatalf("res = %+v", res)
	}
	want := `<r><y>v</y><y>v</y><y>v</y><y>v</y><y>v</y><y>v</y><y>v</y><y>v</y></r>`
	if got, _ := e.Query(`/r`); got != want {
		t.Fatalf("after replace:\n got: %s\nwant: %s", got, want)
	}
}

func TestEngineUpdateParseErrors(t *testing.T) {
	e := updEngine(t, `<j><t>x</t></j>`)
	if _, err := e.Update(`delete node t`); err == nil {
		t.Fatal("unrooted path accepted")
	}
	if _, err := e.Update(`insert node <a>{//x}</a> into /j`); err == nil {
		t.Fatal("non-constant fragment accepted")
	}
}

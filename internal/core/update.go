package core

import (
	"sort"

	"xqdb/internal/store"
	"xqdb/internal/xasr"
	"xqdb/internal/xq"
)

// UpdateResult reports what an update statement did.
type UpdateResult struct {
	// Targets is how many nodes the target path selected.
	Targets int
	// Applied is how many subtree operations were actually performed
	// (nested targets consumed by an enclosing delete are skipped).
	Applied int
	// Seq is the store's applied-update sequence after this statement;
	// unchanged when the statement was a no-op.
	Seq uint64
}

// Update parses and applies one update statement. The whole statement is
// one atomic store transaction: either every selected target is updated
// and the change is durable, or the store is unchanged. Concurrent
// updates return store.ErrBusy; callers serialize.
func (e *Engine) Update(src string) (UpdateResult, error) {
	u, err := xq.ParseUpdate(src)
	if err != nil {
		return UpdateResult{}, err
	}
	return e.UpdateParsed(u)
}

// UpdateParsed applies an already-parsed update statement.
func (e *Engine) UpdateParsed(u *xq.Update) (UpdateResult, error) {
	// Begin first: it excludes queries AND other updates, so the target
	// set resolved below cannot be invalidated before it is applied.
	tx, err := e.st.Begin()
	if err != nil {
		return UpdateResult{Seq: e.st.AppliedSeq()}, err
	}
	targets, err := e.resolveTargets(u.Path)
	if err != nil {
		tx.Abort()
		return UpdateResult{Seq: e.st.AppliedSeq()}, err
	}
	res := UpdateResult{Targets: len(targets), Seq: e.st.AppliedSeq()}
	if len(targets) == 0 {
		tx.Abort()
		return res, nil
	}
	switch u.Kind {
	case xq.UInsert:
		pos := store.InsertInto
		switch u.Where {
		case xq.Before:
			pos = store.InsertBefore
		case xq.After:
			pos = store.InsertAfter
		}
		// Doc order; Translate maps labels moved by an earlier relabel.
		for _, t := range targets {
			if err = tx.InsertSubtree(tx.Translate(t.In), pos, u.FragXML); err != nil {
				break
			}
			res.Applied++
		}
	case xq.UDelete, xq.UReplace:
		// Reverse doc order, so a nested target is handled before any
		// enclosing one; a target that vanished inside an already-deleted
		// subtree is skipped, not an error.
		for i := len(targets) - 1; i >= 0; i-- {
			opErr := error(nil)
			in := tx.Translate(targets[i].In)
			if u.Kind == xq.UDelete {
				opErr = tx.DeleteSubtree(in)
			} else {
				opErr = tx.ReplaceSubtree(in, u.FragXML)
			}
			if opErr == store.ErrNoNode {
				continue
			}
			if opErr != nil {
				err = opErr
				break
			}
			res.Applied++
		}
	}
	if err != nil {
		tx.Abort()
		return res, err
	}
	err = tx.Commit()
	// The stored tree may have changed even when Commit reports an error
	// (a post-durability fault): drop the cached M1 DOM unconditionally.
	e.domMu.Lock()
	e.domRoot = nil
	e.domMu.Unlock()
	res.Seq = e.st.AppliedSeq()
	return res, err
}

// resolveTargets walks the target path over the stored tree and returns
// the selected tuples in document order.
func (e *Engine) resolveTargets(path []xq.PathStep) ([]xasr.Tuple, error) {
	root, err := e.st.Root()
	if err != nil {
		return nil, err
	}
	cur := []xasr.Tuple{root}
	for _, stp := range path {
		seen := make(map[uint32]struct{})
		var next []xasr.Tuple
		add := func(t xasr.Tuple) bool {
			if !matchesTest(stp.Test, t) {
				return true
			}
			if _, dup := seen[t.In]; dup {
				return true
			}
			seen[t.In] = struct{}{}
			next = append(next, t)
			return true
		}
		for _, n := range cur {
			if stp.Axis == xq.Descendant {
				err = e.st.ScanDescendants(n.In, n.Out, add)
			} else {
				err = e.st.ScanChildren(n.In, add)
			}
			if err != nil {
				return nil, err
			}
		}
		// Nested context nodes can interleave each other's results.
		sort.Slice(next, func(i, j int) bool { return next[i].In < next[j].In })
		cur = next
	}
	return cur, nil
}

func matchesTest(t xq.NodeTest, tp xasr.Tuple) bool {
	switch t.Kind {
	case xq.TestLabel:
		return tp.Type == xasr.TypeElem && tp.Value == t.Label
	case xq.TestStar:
		return tp.Type == xasr.TypeElem
	case xq.TestText:
		return tp.Type == xasr.TypeText
	}
	return false
}

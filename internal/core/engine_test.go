package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"xqdb/internal/limit"
	"xqdb/internal/opt"
	"xqdb/internal/store"
	"xqdb/internal/xmlgen"
)

const figure2 = `<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>`

// library is a small mixed-shape document exercising nesting, repeated
// labels, text comparisons and empty elements.
const library = `<lib><shelf><book><title>Go</title><author>Ann</author><year>2015</year></book>` +
	`<book><title>DB</title><author>Bob</author><author>Cyn</author></book></shelf>` +
	`<shelf><book><title>XML</title><volume>7</volume><author>Ann</author></book><empty/></shelf>` +
	`<magazine><title>DB</title></magazine></lib>`

// queries is the differential battery: every engine must produce exactly
// the M1 reference output on every document.
var queries = []string{
	`()`,
	`<out/>`,
	`/journal`,
	`/lib`,
	`//name`,
	`//author`,
	`//nosuchlabel`,
	`/journal/authors/name`,
	`//book/title`,
	`for $x in //name return $x`,
	`for $x in //book return for $t in $x/title return $t`,
	`for $x in //book return for $a in $x//author return $a`,
	`<names>{ for $j in /journal return for $n in $j//name return $n }</names>`,
	`<names>{ for $j in /journal return <j>{ for $n in $j//name return $n }</j> }</names>`,
	`for $j in /journal return if (some $t in $j//text() satisfies true()) then for $n in $j//name return $n else ()`,
	`for $b in //book return if (some $v in $b/volume satisfies true()) then for $a in $b//author return $a else ()`,
	`for $b in //book return if (some $t in $b/title/text() satisfies $t = "DB") then $b else ()`,
	`for $b in //book return if (not(some $v in $b/volume satisfies true())) then <novol/> else ()`,
	`for $b in //book return if (some $v in $b/volume satisfies true() and some $a in $b/author satisfies true()) then $b else ()`,
	`for $x in //title/text() return for $y in //magazine/title/text() return if ($x = $y) then <dup/> else ()`,
	`for $s in /lib/shelf return <shelf>{ for $t in $s//title return $t }</shelf>`,
	`for $s in /lib/* return $s`,
	`//book/text()`,
	`for $b in //book return <b>{ $b/title, $b/author }</b>`,
	`for $x in //year/text() return if ($x = "2015") then <y2015/> else ()`,
	`for $j in /journal return if (some $t in $j//text() satisfies ($t = "Ana" or $t = "Zed")) then <hit/> else ()`,
	`<wrap>literal text</wrap>`,
	`for $b in //book return if (some $t1 in $b/title/text() satisfies some $t2 in //magazine/title/text() satisfies $t1 = $t2) then $b else ()`,
}

func newEngines(t testing.TB, doc string) map[Mode]*Engine {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.LoadString(doc); err != nil {
		t.Fatalf("Load: %v", err)
	}
	engines := map[Mode]*Engine{}
	for _, m := range Modes() {
		engines[m] = New(st, Config{Mode: m})
	}
	return engines
}

// TestEnginesAgree is the correctness-suite core: every mode must return
// the milestone 1 reference result on every query/document combination.
func TestEnginesAgree(t *testing.T) {
	for docName, doc := range map[string]string{"figure2": figure2, "library": library} {
		engines := newEngines(t, doc)
		ref := engines[ModeM1]
		for _, q := range queries {
			want, err := ref.Query(q)
			if err != nil {
				t.Fatalf("[%s] reference failed on %q: %v", docName, q, err)
			}
			for _, m := range Modes() {
				if m == ModeM1 {
					continue
				}
				got, err := engines[m].Query(q)
				if err != nil {
					t.Errorf("[%s] %s failed on %q: %v", docName, m, q, err)
					continue
				}
				if got != want {
					t.Errorf("[%s] %s disagrees on %q:\n got: %s\nwant: %s", docName, m, q, got, want)
				}
			}
		}
	}
}

func TestExample2AllEngines(t *testing.T) {
	engines := newEngines(t, figure2)
	want := `<names><name>Ana</name><name>Bob</name></names>`
	for _, m := range Modes() {
		got, err := engines[m].Query(`<names>{ for $j in /journal return for $n in $j//name return $n }</names>`)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if got != want {
			t.Errorf("%s: got %s", m, got)
		}
	}
}

// TestMergeStrictnessSemantics verifies the paper's empty-<j/> example:
// journals without names still produce a <j/> element.
func TestMergeStrictnessSemantics(t *testing.T) {
	doc := `<lib><journal><name>A</name></journal><journal><nothing/></journal></lib>`
	engines := newEngines(t, doc)
	q := `<names>{ for $j in //journal return <j>{ for $n in $j//name return $n }</j> }</names>`
	want := `<names><j><name>A</name></j><j/></names>`
	for _, m := range Modes() {
		got, err := engines[m].Query(q)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if got != want {
			t.Errorf("%s: got %s want %s", m, got, want)
		}
	}
}

// TestDuplicateElimination exercises the ordering example of milestone 3:
// a some-condition with multiple witnesses must not duplicate output.
func TestDuplicateElimination(t *testing.T) {
	// Two text nodes below each journal (two witnesses for the some).
	doc := `<j2><journal><a>x</a><b>y</b><name>N1</name><name>N2</name></journal></j2>`
	engines := newEngines(t, doc)
	q := `for $j in //journal return if (some $t in $j//text() satisfies true()) then for $n in $j//name return $n else ()`
	want := `<name>N1</name><name>N2</name>`
	for _, m := range Modes() {
		got, err := engines[m].Query(q)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if got != want {
			t.Errorf("%s duplicated or reordered output: %s", m, got)
		}
	}
}

func TestDocumentOrderAcrossSubtrees(t *testing.T) {
	doc := `<r><a><b>1</b></a><c><b>2</b></c><a><b>3</b></a></r>`
	engines := newEngines(t, doc)
	for _, m := range Modes() {
		got, err := engines[m].Query(`for $b in //b return $b/text()`)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if got != "123" {
			t.Errorf("%s: order broken: %q", m, got)
		}
	}
}

func TestTimeout(t *testing.T) {
	// A cross-product query on a document big enough to out-run a 1 ns
	// deadline.
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, "<x>%d</x>", i)
	}
	b.WriteString("</r>")
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.LoadString(b.String()); err != nil {
		t.Fatal(err)
	}
	e := New(st, Config{Mode: ModeM3, Timeout: time.Nanosecond})
	_, err = e.Query(`for $x in //x return for $y in //x return if ($x/text() = $y/text()) then <m/> else ()`)
	if !errors.Is(err, limit.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestExplainStages(t *testing.T) {
	engines := newEngines(t, figure2)
	out, err := engines[ModeM4].Explain(`<names>{ for $j in /journal return for $n in $j//name return $n }</names>`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TPM (rewritten)", "TPM (merged)", "physical plan", "relfor", "estimated total cost"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// M1 explain degrades gracefully.
	out, err = engines[ModeM1].Explain(`/journal`)
	if err != nil || !strings.Contains(out, "no algebraic plan") {
		t.Errorf("M1 explain: %v / %s", err, out)
	}
}

func TestCountersPopulated(t *testing.T) {
	engines := newEngines(t, library)
	e := engines[ModeM4]
	if _, err := e.Query(`for $b in //book return $b`); err != nil {
		t.Fatal(err)
	}
	if e.Counters().RowsScanned == 0 {
		t.Error("no rows scanned recorded")
	}
	if e.Counters().RowsEmitted == 0 {
		t.Error("no rows emitted recorded")
	}
}

// TestExplainAnalyzeShowsJoinOperator checks that EXPLAIN ANALYZE on the
// Example 6 query reports which join operator actually ran, its actual
// row counts, and the structural-join counters.
func TestExplainAnalyzeShowsJoinOperator(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.LoadString(xmlgen.DBLP(xmlgen.DBLPConfig{Entries: 800, Seed: 5})); err != nil {
		t.Fatal(err)
	}
	const example6 = `for $x in //article return if (some $v in $x/volume satisfies true()) then for $y in $x//author return $y else ()`
	const descendant = `for $x in //inproceedings return for $y in $x//author return $y`

	// The Example 6 plan on this document anchors at volume and probes:
	// the analysis must name the operator that ran and its actual rows.
	e := New(st, Config{Mode: ModeM4})
	out, err := e.ExplainAnalyze(example6)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"inl-join", "actual rows=", "counters:", "structural=", "physical plan (analyzed)"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}

	// The bulk descendant query runs on the structural merge join, and
	// the analysis shows the operator, its rows and the stack mark.
	out, err = e.ExplainAnalyze(descendant)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"structural-join", "stack=", "actual rows="} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
	if e.Counters().RowsStructural == 0 {
		t.Errorf("no structural rows counted; analyze output:\n%s", out)
	}
	if e.Counters().StructStackMax == 0 {
		t.Error("no stack high-water mark counted")
	}
	if e.Counters().RowsJoined != 0 {
		t.Errorf("loop joins ran %d rows on the merge-join plan", e.Counters().RowsJoined)
	}

	// With the operator ablated the same query must run on the loop-based
	// joins, and the analysis must say so.
	cfg := opt.M4()
	cfg.UseStructural = false
	e2 := New(st, Config{Mode: ModeM4, Opt: &cfg})
	out2, err := e2.ExplainAnalyze(descendant)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2, "structural-join") {
		t.Errorf("ablated engine still shows a structural join:\n%s", out2)
	}
	if e2.Counters().RowsStructural != 0 {
		t.Error("ablated engine counted structural rows")
	}
	if e2.Counters().RowsJoined == 0 {
		t.Error("ablated engine counted no loop-join rows")
	}

	// Node-at-a-time modes have no plan to analyze.
	if _, err := New(st, Config{Mode: ModeM2}).ExplainAnalyze(example6); err == nil {
		t.Error("M2 ExplainAnalyze did not fail")
	}
}

// TestExplainAnalyzeTwigJoin checks that a ≥3-branch path pattern runs on
// the holistic twig join and that the k-ary analysis renders every input
// stream with its own actual row count under branch glyphs. The twig
// family is forced: with the anc-ordered structural emission enumerated,
// auto M4 serves this flat-label star on the streaming binary tower
// instead (see TestExplainAnalyzeAncStructural) — the rendering under
// test needs the k-ary operator on the plan.
func TestExplainAnalyzeTwigJoin(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.LoadString(xmlgen.DBLP(xmlgen.DBLPConfig{Entries: 800, Seed: 5})); err != nil {
		t.Fatal(err)
	}
	const twig3 = `for $x in //inproceedings return for $a in $x//author return for $t in $x//title return for $y in $x//year return $t`
	forced, ok := opt.ForceJoin("twig")
	if !ok {
		t.Fatal("ForceJoin(twig)")
	}
	e := New(st, Config{Mode: ModeM4, Opt: &forced})
	out, err := e.ExplainAnalyze(twig3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"twig-join", "holistic, 4 streams", "twig=", "path-solutions="} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
	// Four per-stream scan rows under the k-ary operator: three rail
	// branches and one closing corner, each carrying actual rows.
	if strings.Count(out, "├─ scan") != 3 || strings.Count(out, "└─ scan") != 1 {
		t.Errorf("k-ary stream rendering wrong:\n%s", out)
	}
	if strings.Count(out, "actual rows=") < 5 {
		t.Errorf("missing per-stream actual rows:\n%s", out)
	}
	if e.Counters().RowsTwig == 0 || e.Counters().TwigPathSolutions == 0 {
		t.Errorf("twig counters not populated: %+v", e.Counters())
	}
	if e.Counters().RowsJoined != 0 || e.Counters().RowsStructural != 0 {
		t.Errorf("binary joins ran on the holistic plan: %+v", e.Counters())
	}
}

// TestExplainAnalyzeAncStructural checks the Stack-Tree-Anc arbitration
// end to end: on ancestor-first vartuples auto M4 runs the anc-ordered
// structural merge join, no repair sort executes (the point of the
// variant), and the analysis shows the output-list high-water mark next
// to the stack mark.
func TestExplainAnalyzeAncStructural(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.LoadString(xmlgen.DBLP(xmlgen.DBLPConfig{Entries: 800, Seed: 5})); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`for $x in //article return for $y in $x//author return $y`,
		`for $x in //inproceedings return for $a in $x//author return for $t in $x//title return for $y in $x//year return $t`,
	} {
		e := New(st, Config{Mode: ModeM4})
		out, err := e.ExplainAnalyze(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"structural-join", "anc-ordered", "list-max="} {
			if !strings.Contains(out, want) {
				t.Errorf("%q: EXPLAIN ANALYZE missing %q:\n%s", q, want, out)
			}
		}
		if e.Counters().SortedRows != 0 {
			t.Errorf("%q: anc-ordered plan sorted %d rows, want 0", q, e.Counters().SortedRows)
		}
		if e.Counters().RowsStructural == 0 {
			t.Errorf("%q: no structural rows counted:\n%s", q, out)
		}
	}
	// The forced descendant-order family on the same shape pays the sort
	// the anc variant exists to remove.
	descCfg, ok := opt.ForceJoin("structural")
	if !ok {
		t.Fatal("ForceJoin(structural)")
	}
	e := New(st, Config{Mode: ModeM4, Opt: &descCfg})
	if _, err := e.Query(`for $x in //article return for $y in $x//author return $y`); err != nil {
		t.Fatal(err)
	}
	if e.Counters().SortedRows == 0 {
		t.Error("forced desc family paid no repair sort (baseline broken)")
	}
}

// TestExplainAnalyzePartialTwig checks the composite partial-twig plan end
// to end: a path pattern mixed with an uncovered relation runs the
// subtwig as the leading sub-plan under a binary join, the k-ary analysis
// renders the twig's streams under the parent join's rail, and the twig
// rows propagate into the parent join's tallies — with no repair sort.
func TestExplainAnalyzePartialTwig(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.LoadString(xmlgen.DBLP(xmlgen.DBLPConfig{Entries: 800, Seed: 5, PhdFraction: 0.01})); err != nil {
		t.Fatal(err)
	}
	const mixed = `for $x in //inproceedings return for $a in $x//author return for $t in $x//title return for $y in $x//year return if (some $p in //phdthesis satisfies true()) then $t else ()`
	cfg, ok := opt.ForceJoin("twig")
	if !ok {
		t.Fatal("ForceJoin(twig)")
	}
	e := New(st, Config{Mode: ModeM4, Opt: &cfg})
	out, err := e.ExplainAnalyze(mixed)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"twig-join", "holistic, 4 streams", "-join(", // composite: twig under a binary join
		"│  ├─ scan", "│  └─ scan", // twig streams render under the parent join's rail
		"actual rows=", "twig=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
	c := e.Counters()
	if c.RowsTwig == 0 {
		t.Errorf("no twig rows on the composite plan:\n%s", out)
	}
	if c.RowsJoined == 0 {
		t.Errorf("twig rows did not flow through the parent join:\n%s", out)
	}
	if c.SortedRows != 0 {
		t.Errorf("composite plan paid a repair sort (%d rows):\n%s", c.SortedRows, out)
	}
}

// Package core assembles the native XML-DBMS: parse → rewrite to TPM →
// merge relfors → optimize → execute. An Engine is one configuration of
// that pipeline over one stored document.
//
// The configurations correspond to the course milestones and to the
// engines compared in Figure 7 of the paper:
//
//	ModeM1         milestone 1: in-memory evaluation over the DOM
//	ModeM2         milestone 2: node-at-a-time over secondary storage
//	ModeNaiveTPM   TPM without merging or optimization (plan QP0 shape)
//	ModeM3         milestone 3: merged relfors, heuristic optimization
//	ModeM4         milestone 4: cost-based optimization with indexes
//	ModeM4BadStats milestone 4 with uniform statistics (the paper's
//	               engine 2, whose "unlucky estimates" pick a disastrous
//	               join order on efficiency test 5)
//
// An Engine is safe for concurrent queries: each query runs under its own
// budget and context, counters are returned per query (Engine.Counters
// keeps the last completed run for the CLI), and Handle gives callers a
// per-query cancel that cannot hit a neighbor's query.
package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"time"

	"xqdb/internal/dom"
	"xqdb/internal/exec"
	"xqdb/internal/limit"
	"xqdb/internal/mem"
	"xqdb/internal/naive"
	"xqdb/internal/opt"
	"xqdb/internal/plancache"
	"xqdb/internal/store"
	"xqdb/internal/tpm"
	"xqdb/internal/xq"
)

// Mode selects an engine configuration.
type Mode int

// Engine configurations (see package comment).
const (
	ModeM1 Mode = iota
	ModeM2
	ModeNaiveTPM
	ModeM3
	ModeM4
	ModeM4BadStats
)

// String returns the short engine name used in reports.
func (m Mode) String() string {
	switch m {
	case ModeM1:
		return "M1-mem"
	case ModeM2:
		return "M2-naive"
	case ModeNaiveTPM:
		return "TPM-naive"
	case ModeM3:
		return "M3-heuristic"
	case ModeM4:
		return "M4-costbased"
	case ModeM4BadStats:
		return "M4-badstats"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Modes lists all engine configurations.
func Modes() []Mode {
	return []Mode{ModeM1, ModeM2, ModeNaiveTPM, ModeM3, ModeM4, ModeM4BadStats}
}

// Config tunes an Engine beyond its Mode.
type Config struct {
	Mode Mode
	// Timeout bounds each query (0 = unlimited); timed-out queries
	// return limit.ErrTimeout, which the testbed converts into the
	// paper's "assigned the cap" rule.
	Timeout time.Duration
	// SortBudget bounds operator memory (spools, sorts) in bytes.
	SortBudget int
	// MemBudget caps the total buffered bytes of one query across all its
	// operators (0 = unlimited); past the cap operators spill to disk
	// instead of growing.
	MemBudget int
	// FaultHook, when set, is consulted before operator temp-file writes;
	// the fault-injection harness uses it.
	FaultHook func(op string) error
	// Opt overrides the optimizer configuration derived from Mode
	// (used by the ablation benchmarks).
	Opt *opt.Config
	// NoMerge disables relfor merging regardless of Mode (ablations).
	NoMerge bool
	// BatchSize sets the operator batch capacity of the milestone 3/4
	// executor: 0 uses exec.DefaultBatchSize, a negative value forces
	// row-at-a-time execution (every operator runs through the row
	// adapter — the pre-batching engine, kept as a correctness oracle and
	// ablation point).
	BatchSize int
	// DOP is the degree of intra-query parallelism (0 or 1 = serial): the
	// planner may wrap large leaf scans in exchange operators running up
	// to DOP workers, and the executor caps any planned exchange at this
	// many workers.
	DOP int
	// PlanCache, when set, caches compiled plans for the milestone 3/4
	// modes, keyed by CacheDoc, the normalized query text, and the
	// planner-relevant configuration; hits skip parse+optimize entirely.
	// The engine stores pristine plans and executes clones, so one cache
	// may serve many engines and concurrent queries.
	PlanCache *plancache.Cache
	// CacheDoc identifies the document (catalog name + stats epoch) this
	// engine's store serves, for plan-cache keying. Required whenever
	// PlanCache is shared across documents; the zero value is fine for a
	// single-document cache.
	CacheDoc plancache.DocVersion
}

// Engine evaluates XQ queries over one stored document under a fixed
// configuration. All methods are safe for concurrent use.
type Engine struct {
	st  *store.Store
	cfg Config

	mu       sync.Mutex
	last     exec.Counters              // counters of the last completed query
	inflight map[*limit.Budget]struct{} // budgets of running queries, for Cancel

	domMu   sync.Mutex
	domRoot *dom.Node // lazily reconstructed for ModeM1
}

// New returns an engine over st.
func New(st *store.Store, cfg Config) *Engine {
	return &Engine{st: st, cfg: cfg, inflight: make(map[*limit.Budget]struct{})}
}

// Store returns the underlying store.
func (e *Engine) Store() *store.Store { return e.st }

// Mode returns the engine's mode.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// Counters returns the physical-operator counters of the last completed
// query (milestone 3/4 modes only). With concurrent queries "last
// completed" is whichever finished most recently; concurrent callers
// should read Result.Counters from their own Handle instead.
func (e *Engine) Counters() exec.Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}

// optConfig derives the optimizer configuration for the mode.
func (e *Engine) optConfig() opt.Config {
	if e.cfg.Opt != nil {
		cfg := *e.cfg.Opt
		if cfg.DOP == 0 {
			cfg.DOP = e.cfg.DOP
		}
		return cfg
	}
	var cfg opt.Config
	switch e.cfg.Mode {
	case ModeNaiveTPM:
		cfg = opt.NaiveTPM()
	case ModeM3:
		cfg = opt.M3()
	case ModeM4BadStats:
		cfg = opt.M4BadStats()
	default:
		cfg = opt.M4()
	}
	cfg.SpoolBudget = e.cfg.SortBudget
	cfg.DOP = e.cfg.DOP
	return cfg
}

func (e *Engine) merging() bool {
	if e.cfg.NoMerge {
		return false
	}
	return e.cfg.Mode != ModeNaiveTPM
}

// Result is the outcome of one query.
type Result struct {
	// XML is the serialized result forest.
	XML string
	// Counters are this run's physical-operator counters (milestone 3/4
	// modes; zero for M1/M2).
	Counters exec.Counters
	// CacheHit reports whether the plan came from the plan cache
	// (parse and optimize were skipped).
	CacheHit bool
}

// Handle runs queries with a per-query Cancel. A Handle is cheap; sessions
// create one per request so canceling one request cannot abort another.
// Cancel may be called from any goroutine, before or during Query: a
// cancel that arrives before execution starts aborts the query at its
// first budget poll. M1/M2 queries are not cancelable (they are bounded by
// Timeout only).
type Handle struct {
	e        *Engine
	mu       sync.Mutex
	budget   *limit.Budget
	canceled bool
}

// NewHandle returns a fresh query handle.
func (e *Engine) NewHandle() *Handle { return &Handle{e: e} }

// Cancel aborts the handle's query: the next budget poll returns
// limit.ErrCanceled and every operator unwinds, removing temp files and
// releasing pins. Canceling an idle or finished handle marks it so a
// subsequent Query aborts immediately.
func (h *Handle) Cancel() {
	h.mu.Lock()
	h.canceled = true
	b := h.budget
	h.mu.Unlock()
	b.Cancel() // nil-safe
}

func (h *Handle) attach(b *limit.Budget) {
	h.mu.Lock()
	h.budget = b
	canceled := h.canceled
	h.mu.Unlock()
	if canceled {
		b.Cancel()
	}
}

func (h *Handle) detach() {
	h.mu.Lock()
	h.budget = nil
	h.mu.Unlock()
}

// Query parses and evaluates an XQ query under this handle, consulting the
// engine's plan cache when configured.
func (h *Handle) Query(src string) (*Result, error) {
	e := h.e
	e.st.ReadLock() // updates drain and stay out for the whole query
	defer e.st.ReadUnlock()
	switch e.cfg.Mode {
	case ModeM1, ModeM2:
		q, err := xq.Parse(src)
		if err != nil {
			return nil, err
		}
		out, err := e.evalDirect(q)
		if err != nil {
			return nil, err
		}
		return &Result{XML: out}, nil
	}
	dl := limit.After(e.cfg.Timeout)
	key, cached := e.cacheKey(src)
	if cached {
		if plan, hit := e.cfg.PlanCache.Get(key); hit {
			out, counters, err := e.runPlan(exec.ClonePlan(plan), dl, h)
			if err != nil {
				return nil, err
			}
			return &Result{XML: string(out), Counters: counters, CacheHit: true}, nil
		}
	}
	q, err := xq.Parse(src)
	if err != nil {
		return nil, err
	}
	xplan, err := e.compile(q)
	if err != nil {
		return nil, err
	}
	if cached {
		// Store the pristine tree and run a clone: plan nodes accumulate
		// runtime state, so the cached plan itself must never execute.
		e.cfg.PlanCache.Put(key, xplan)
		xplan = exec.ClonePlan(xplan)
	}
	out, counters, err := e.runPlan(xplan, dl, h)
	if err != nil {
		return nil, err
	}
	return &Result{XML: string(out), Counters: counters}, nil
}

// cacheKey returns the plan-cache key for a query text, and whether the
// cache applies (configured engine, plan-producing mode).
func (e *Engine) cacheKey(src string) (plancache.Key, bool) {
	if e.cfg.PlanCache == nil {
		return plancache.Key{}, false
	}
	return plancache.Key{
		Doc:   e.cfg.CacheDoc,
		Query: plancache.Normalize(src),
		Cfg:   e.optConfig(),
		Merge: e.merging(),
	}, true
}

// Query parses and evaluates an XQ query, returning serialized XML.
func (e *Engine) Query(src string) (string, error) {
	res, err := e.NewHandle().Query(src)
	if err != nil {
		return "", err
	}
	return res.XML, nil
}

// QueryExpr evaluates an already-parsed query (bypassing the plan cache,
// which keys on query text).
func (e *Engine) QueryExpr(q xq.Expr) (string, error) {
	e.st.ReadLock()
	defer e.st.ReadUnlock()
	switch e.cfg.Mode {
	case ModeM1, ModeM2:
		return e.evalDirect(q)
	}
	out, _, _, err := e.compileAndRun(q, limit.After(e.cfg.Timeout), nil)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// evalDirect runs the plan-less milestone 1/2 evaluators.
func (e *Engine) evalDirect(q xq.Expr) (string, error) {
	switch e.cfg.Mode {
	case ModeM1:
		root, err := e.domDocument()
		if err != nil {
			return "", err
		}
		res, err := mem.New(root).Eval(q)
		if err != nil {
			return "", err
		}
		return dom.SerializeForest(res), nil
	default: // ModeM2
		ev := naive.New(e.st)
		ev.Deadline = limit.After(e.cfg.Timeout)
		return ev.Eval(q)
	}
}

// compileAndRun is the shared milestone 3/4 execution path: compile to a
// physical plan, execute it, and record the run's counters. Query and
// ExplainAnalyze both go through it so analyzed runs execute under exactly
// the conditions of real queries.
func (e *Engine) compileAndRun(q xq.Expr, dl *limit.Deadline, h *Handle) ([]byte, exec.XPlan, exec.Counters, error) {
	xplan, err := e.compile(q)
	if err != nil {
		return nil, nil, exec.Counters{}, err
	}
	out, counters, err := e.runPlan(xplan, dl, h)
	return out, xplan, counters, err
}

// runPlan executes a compiled plan under a fresh per-query budget,
// registered in the in-flight set (for Engine.Cancel) and attached to h
// (for per-query cancel) for the duration of the run.
func (e *Engine) runPlan(xplan exec.XPlan, dl *limit.Deadline, h *Handle) ([]byte, exec.Counters, error) {
	ctx, budget, err := e.execCtx(dl)
	if err != nil {
		return nil, exec.Counters{}, err
	}
	if h != nil {
		h.attach(budget)
	}
	out, err := exec.Run(ctx, xplan)
	if h != nil {
		h.detach()
	}
	e.mu.Lock()
	delete(e.inflight, budget)
	e.last = ctx.Counters
	e.mu.Unlock()
	return out, ctx.Counters, err
}

func (e *Engine) execCtx(dl *limit.Deadline) (*exec.Ctx, *limit.Budget, error) {
	tmp, err := e.st.TempDir()
	if err != nil {
		return nil, nil, err
	}
	budget := limit.NewBudget(e.cfg.MemBudget, dl)
	e.mu.Lock()
	e.inflight[budget] = struct{}{}
	e.mu.Unlock()
	ctx := &exec.Ctx{
		Store:      e.st,
		TempDir:    tmp,
		Budget:     budget,
		Env:        exec.Env{},
		SortBudget: e.cfg.SortBudget,
		FaultHook:  e.cfg.FaultHook,
		DOP:        e.cfg.DOP,
	}
	switch {
	case e.cfg.BatchSize < 0:
		ctx.RowMode = true
	case e.cfg.BatchSize > 0:
		ctx.BatchSize = e.cfg.BatchSize
	}
	return ctx, budget, nil
}

// Cancel aborts every in-flight query on the engine: each one's next
// budget poll returns limit.ErrCanceled and its operators unwind, removing
// temp files and releasing pins. For canceling one specific query among
// concurrent ones, use a Handle. Safe to call from another goroutine and
// when idle.
func (e *Engine) Cancel() {
	e.mu.Lock()
	budgets := make([]*limit.Budget, 0, len(e.inflight))
	for b := range e.inflight {
		budgets = append(budgets, b)
	}
	e.mu.Unlock()
	for _, b := range budgets {
		b.Cancel()
	}
}

// compile runs the milestone 3/4 pipeline up to the executable plan.
func (e *Engine) compile(q xq.Expr) (exec.XPlan, error) {
	plan := tpm.Rewrite(q)
	if e.merging() {
		plan = tpm.Merge(plan)
	}
	planner := opt.New(e.st, e.optConfig())
	return planner.Plan(plan)
}

// ExplainAnalyze compiles AND executes a query, returning the physical
// plan annotated with per-operator runtime row counts and the query-wide
// counters — which join operator actually ran, how many rows it produced,
// and (for structural merge joins) the ancestor-stack high-water mark.
// Composite partial-twig plans render as a k-ary twig-join subtree (one
// stream per twig node, branch glyphs, per-stream actual rows) under the
// binary joins that take the uncovered relations. Only the milestone 3/4
// modes have a physical plan to analyze. ExplainAnalyze bypasses the plan
// cache: it exists to show what compilation produces.
func (e *Engine) ExplainAnalyze(src string) (string, error) {
	q, err := xq.Parse(src)
	if err != nil {
		return "", err
	}
	switch e.cfg.Mode {
	case ModeM1, ModeM2:
		return "", fmt.Errorf("core: %s has no physical plan to analyze", e.cfg.Mode)
	}
	e.st.ReadLock()
	defer e.st.ReadUnlock()
	out, xplan, counters, err := e.compileAndRun(q, limit.After(e.cfg.Timeout), nil)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %s\nquery:  %s\n\n-- physical plan (analyzed) --\n", e.cfg.Mode, q)
	b.WriteString(exec.ExplainAnalyze(xplan, counters))
	fmt.Fprintf(&b, "result: %d bytes\n", len(out))
	return b.String(), nil
}

// domDocument reconstructs the in-memory DOM from the store (milestone 1
// operates on the parsed document; the store is the single source of
// truth here).
func (e *Engine) domDocument() (*dom.Node, error) {
	e.domMu.Lock()
	defer e.domMu.Unlock()
	if e.domRoot != nil {
		return e.domRoot, nil
	}
	xml, err := e.st.AppendSubtree(nil, store.RootIn)
	if err != nil {
		return nil, err
	}
	root, err := dom.Parse(bytes.NewReader(xml))
	if err != nil {
		return nil, err
	}
	e.domRoot = root
	return root, nil
}

// Explain compiles the query and renders every pipeline stage: the parsed
// query, the TPM plan before and after merging, and the physical plan
// with cost estimates. Explain bypasses the plan cache.
func (e *Engine) Explain(src string) (string, error) {
	q, err := xq.Parse(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %s\nquery:  %s\n\n", e.cfg.Mode, q)
	switch e.cfg.Mode {
	case ModeM1, ModeM2:
		b.WriteString("(no algebraic plan: this mode evaluates the query directly)\n")
		return b.String(), nil
	}
	plan := tpm.Rewrite(q)
	b.WriteString("-- TPM (rewritten) --\n")
	b.WriteString(tpm.Format(plan))
	if e.merging() {
		plan = tpm.Merge(plan)
		b.WriteString("\n-- TPM (merged) --\n")
		b.WriteString(tpm.Format(plan))
	}
	e.st.ReadLock() // the planner reads statistics and index heights
	planner := opt.New(e.st, e.optConfig())
	xplan, err := planner.Plan(plan)
	e.st.ReadUnlock()
	if err != nil {
		return "", err
	}
	b.WriteString("\n-- physical plan --\n")
	b.WriteString(exec.Explain(xplan))
	fmt.Fprintf(&b, "\nestimated total cost: %.1f\n", exec.PlanCost(xplan))
	return b.String(), nil
}

// Package core assembles the native XML-DBMS: parse → rewrite to TPM →
// merge relfors → optimize → execute. An Engine is one configuration of
// that pipeline over one stored document.
//
// The configurations correspond to the course milestones and to the
// engines compared in Figure 7 of the paper:
//
//	ModeM1         milestone 1: in-memory evaluation over the DOM
//	ModeM2         milestone 2: node-at-a-time over secondary storage
//	ModeNaiveTPM   TPM without merging or optimization (plan QP0 shape)
//	ModeM3         milestone 3: merged relfors, heuristic optimization
//	ModeM4         milestone 4: cost-based optimization with indexes
//	ModeM4BadStats milestone 4 with uniform statistics (the paper's
//	               engine 2, whose "unlucky estimates" pick a disastrous
//	               join order on efficiency test 5)
package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"time"

	"xqdb/internal/dom"
	"xqdb/internal/exec"
	"xqdb/internal/limit"
	"xqdb/internal/mem"
	"xqdb/internal/naive"
	"xqdb/internal/opt"
	"xqdb/internal/store"
	"xqdb/internal/tpm"
	"xqdb/internal/xq"
)

// Mode selects an engine configuration.
type Mode int

// Engine configurations (see package comment).
const (
	ModeM1 Mode = iota
	ModeM2
	ModeNaiveTPM
	ModeM3
	ModeM4
	ModeM4BadStats
)

// String returns the short engine name used in reports.
func (m Mode) String() string {
	switch m {
	case ModeM1:
		return "M1-mem"
	case ModeM2:
		return "M2-naive"
	case ModeNaiveTPM:
		return "TPM-naive"
	case ModeM3:
		return "M3-heuristic"
	case ModeM4:
		return "M4-costbased"
	case ModeM4BadStats:
		return "M4-badstats"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Modes lists all engine configurations.
func Modes() []Mode {
	return []Mode{ModeM1, ModeM2, ModeNaiveTPM, ModeM3, ModeM4, ModeM4BadStats}
}

// Config tunes an Engine beyond its Mode.
type Config struct {
	Mode Mode
	// Timeout bounds each query (0 = unlimited); timed-out queries
	// return limit.ErrTimeout, which the testbed converts into the
	// paper's "assigned the cap" rule.
	Timeout time.Duration
	// SortBudget bounds operator memory (spools, sorts) in bytes.
	SortBudget int
	// MemBudget caps the total buffered bytes of one query across all its
	// operators (0 = unlimited); past the cap operators spill to disk
	// instead of growing.
	MemBudget int
	// FaultHook, when set, is consulted before operator temp-file writes;
	// the fault-injection harness uses it.
	FaultHook func(op string) error
	// Opt overrides the optimizer configuration derived from Mode
	// (used by the ablation benchmarks).
	Opt *opt.Config
	// NoMerge disables relfor merging regardless of Mode (ablations).
	NoMerge bool
	// BatchSize sets the operator batch capacity of the milestone 3/4
	// executor: 0 uses exec.DefaultBatchSize, a negative value forces
	// row-at-a-time execution (every operator runs through the row
	// adapter — the pre-batching engine, kept as a correctness oracle and
	// ablation point).
	BatchSize int
	// DOP is the degree of intra-query parallelism (0 or 1 = serial): the
	// planner may wrap large leaf scans in exchange operators running up
	// to DOP workers, and the executor caps any planned exchange at this
	// many workers.
	DOP int
}

// Engine evaluates XQ queries over one stored document under a fixed
// configuration.
type Engine struct {
	st  *store.Store
	cfg Config

	domRoot  *dom.Node // lazily reconstructed for ModeM1
	counters exec.Counters

	mu      sync.Mutex
	current *limit.Budget // in-flight query's budget, for Cancel
}

// New returns an engine over st.
func New(st *store.Store, cfg Config) *Engine {
	return &Engine{st: st, cfg: cfg}
}

// Store returns the underlying store.
func (e *Engine) Store() *store.Store { return e.st }

// Mode returns the engine's mode.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// Counters returns the physical-operator counters of the last query
// (milestone 3/4 modes only).
func (e *Engine) Counters() exec.Counters { return e.counters }

// optConfig derives the optimizer configuration for the mode.
func (e *Engine) optConfig() opt.Config {
	if e.cfg.Opt != nil {
		cfg := *e.cfg.Opt
		if cfg.DOP == 0 {
			cfg.DOP = e.cfg.DOP
		}
		return cfg
	}
	var cfg opt.Config
	switch e.cfg.Mode {
	case ModeNaiveTPM:
		cfg = opt.NaiveTPM()
	case ModeM3:
		cfg = opt.M3()
	case ModeM4BadStats:
		cfg = opt.M4BadStats()
	default:
		cfg = opt.M4()
	}
	cfg.SpoolBudget = e.cfg.SortBudget
	cfg.DOP = e.cfg.DOP
	return cfg
}

func (e *Engine) merging() bool {
	if e.cfg.NoMerge {
		return false
	}
	return e.cfg.Mode != ModeNaiveTPM
}

// Query parses and evaluates an XQ query, returning serialized XML.
func (e *Engine) Query(src string) (string, error) {
	q, err := xq.Parse(src)
	if err != nil {
		return "", err
	}
	return e.QueryExpr(q)
}

// QueryExpr evaluates a parsed query.
func (e *Engine) QueryExpr(q xq.Expr) (string, error) {
	dl := limit.After(e.cfg.Timeout)
	switch e.cfg.Mode {
	case ModeM1:
		root, err := e.domDocument()
		if err != nil {
			return "", err
		}
		res, err := mem.New(root).Eval(q)
		if err != nil {
			return "", err
		}
		return dom.SerializeForest(res), nil
	case ModeM2:
		ev := naive.New(e.st)
		ev.Deadline = dl
		return ev.Eval(q)
	default:
		out, _, _, err := e.compileAndRun(q, dl)
		if err != nil {
			return "", err
		}
		return string(out), nil
	}
}

// compileAndRun is the shared milestone 3/4 execution path: compile to a
// physical plan, execute it, and record the run's counters on the engine.
// Query and ExplainAnalyze both go through it so analyzed runs execute
// under exactly the conditions of real queries.
func (e *Engine) compileAndRun(q xq.Expr, dl *limit.Deadline) ([]byte, exec.XPlan, exec.Counters, error) {
	xplan, err := e.compile(q)
	if err != nil {
		return nil, nil, exec.Counters{}, err
	}
	ctx, err := e.execCtx(dl)
	if err != nil {
		return nil, nil, exec.Counters{}, err
	}
	out, err := exec.Run(ctx, xplan)
	e.counters = ctx.Counters
	return out, xplan, ctx.Counters, err
}

func (e *Engine) execCtx(dl *limit.Deadline) (*exec.Ctx, error) {
	tmp, err := e.st.TempDir()
	if err != nil {
		return nil, err
	}
	budget := limit.NewBudget(e.cfg.MemBudget, dl)
	e.mu.Lock()
	e.current = budget
	e.mu.Unlock()
	ctx := &exec.Ctx{
		Store:      e.st,
		TempDir:    tmp,
		Budget:     budget,
		Env:        exec.Env{},
		SortBudget: e.cfg.SortBudget,
		FaultHook:  e.cfg.FaultHook,
		DOP:        e.cfg.DOP,
	}
	switch {
	case e.cfg.BatchSize < 0:
		ctx.RowMode = true
	case e.cfg.BatchSize > 0:
		ctx.BatchSize = e.cfg.BatchSize
	}
	return ctx, nil
}

// Cancel aborts the in-flight query (if any): its next budget poll returns
// limit.ErrCanceled and every operator unwinds, removing temp files and
// releasing pins. Safe to call from another goroutine and when idle.
func (e *Engine) Cancel() {
	e.mu.Lock()
	b := e.current
	e.mu.Unlock()
	b.Cancel()
}

// compile runs the milestone 3/4 pipeline up to the executable plan.
func (e *Engine) compile(q xq.Expr) (exec.XPlan, error) {
	plan := tpm.Rewrite(q)
	if e.merging() {
		plan = tpm.Merge(plan)
	}
	planner := opt.New(e.st, e.optConfig())
	return planner.Plan(plan)
}

// ExplainAnalyze compiles AND executes a query, returning the physical
// plan annotated with per-operator runtime row counts and the query-wide
// counters — which join operator actually ran, how many rows it produced,
// and (for structural merge joins) the ancestor-stack high-water mark.
// Composite partial-twig plans render as a k-ary twig-join subtree (one
// stream per twig node, branch glyphs, per-stream actual rows) under the
// binary joins that take the uncovered relations. Only the milestone 3/4
// modes have a physical plan to analyze.
func (e *Engine) ExplainAnalyze(src string) (string, error) {
	q, err := xq.Parse(src)
	if err != nil {
		return "", err
	}
	switch e.cfg.Mode {
	case ModeM1, ModeM2:
		return "", fmt.Errorf("core: %s has no physical plan to analyze", e.cfg.Mode)
	}
	out, xplan, counters, err := e.compileAndRun(q, limit.After(e.cfg.Timeout))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %s\nquery:  %s\n\n-- physical plan (analyzed) --\n", e.cfg.Mode, q)
	b.WriteString(exec.ExplainAnalyze(xplan, counters))
	fmt.Fprintf(&b, "result: %d bytes\n", len(out))
	return b.String(), nil
}

// domDocument reconstructs the in-memory DOM from the store (milestone 1
// operates on the parsed document; the store is the single source of
// truth here).
func (e *Engine) domDocument() (*dom.Node, error) {
	if e.domRoot != nil {
		return e.domRoot, nil
	}
	xml, err := e.st.AppendSubtree(nil, store.RootIn)
	if err != nil {
		return nil, err
	}
	root, err := dom.Parse(bytes.NewReader(xml))
	if err != nil {
		return nil, err
	}
	e.domRoot = root
	return root, nil
}

// Explain compiles the query and renders every pipeline stage: the parsed
// query, the TPM plan before and after merging, and the physical plan
// with cost estimates.
func (e *Engine) Explain(src string) (string, error) {
	q, err := xq.Parse(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %s\nquery:  %s\n\n", e.cfg.Mode, q)
	switch e.cfg.Mode {
	case ModeM1, ModeM2:
		b.WriteString("(no algebraic plan: this mode evaluates the query directly)\n")
		return b.String(), nil
	}
	plan := tpm.Rewrite(q)
	b.WriteString("-- TPM (rewritten) --\n")
	b.WriteString(tpm.Format(plan))
	if e.merging() {
		plan = tpm.Merge(plan)
		b.WriteString("\n-- TPM (merged) --\n")
		b.WriteString(tpm.Format(plan))
	}
	planner := opt.New(e.st, e.optConfig())
	xplan, err := planner.Plan(plan)
	if err != nil {
		return "", err
	}
	b.WriteString("\n-- physical plan --\n")
	b.WriteString(exec.Explain(xplan))
	fmt.Fprintf(&b, "\nestimated total cost: %.1f\n", exec.PlanCost(xplan))
	return b.String(), nil
}

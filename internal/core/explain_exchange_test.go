package core

import (
	"testing"

	"xqdb/internal/opt"
	"xqdb/internal/store"
)

// TestExplainAnalyzeExchangeGolden pins the byte-exact EXPLAIN ANALYZE
// rendering of an exchange-under-structural-join plan: the exchange nodes
// with their dop= and morsels= annotations, the merged actual row and
// batch counts of the scans running inside the workers, and the query-wide
// counters. Everything in the output is deterministic — the morsel count
// comes from the interval split, and the merged totals are independent of
// how the scheduler partitioned morsels across workers (the per-worker
// partition is asserted separately, as a sum, in the exec tests). The
// analysis is repeated to catch any scheduling dependence leaking into
// the rendering.
func TestExplainAnalyzeExchangeGolden(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{LabelStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.LoadString(library); err != nil {
		t.Fatal(err)
	}
	cfg := opt.M4()
	cfg.DOP = 2
	cfg.ExchangeAll = true // the library doc is far below the cost gate
	e := New(st, Config{Mode: ModeM4, Opt: &cfg})

	const want = `engine: M4-costbased
query:  for $b in //book return for $a in $b//author return $a

-- physical plan (analyzed) --
relfor ($b, $a)
  project π(B.in, A.in) [one-pass dedup]  (rows≈2 cost≈2)  (actual rows=4 opens=1 batches=1)
  └─ structural-join B//A [stack merge, descendant axis, anc-ordered]  (rows≈2 cost≈2)  (actual rows=4 opens=1 stack=1)
     ├─ exchange [dop=2 morsels=8]  (rows≈3 cost≈1)  (actual rows=3 opens=1 batches=3)
     │  └─ scan B: full scan σ(B.in > 1 ∧ B.type = elem ∧ B.value = book)  (rows≈3 cost≈1)  (actual rows=3 opens=8 batches=3 sel=0.10)
     └─ exchange [dop=2 morsels=8]  (rows≈4 cost≈1)  (actual rows=4 opens=1 batches=4)
        └─ scan A: full scan σ(A.type = elem ∧ A.value = author)  (rows≈4 cost≈1)  (actual rows=4 opens=8 batches=4 sel=0.14)
  return
    emit($a)

counters: scanned=58 joined=0 structural=4 twig=0 emitted=4
          probes=0 rescans=0 sorted=0 spilled=0 stack-max=1 list-max=0 path-solutions=0
          spill-bytes=0 spill-runs=0 batches=15
result: 80 bytes
`
	for i := 0; i < 3; i++ {
		got, err := e.ExplainAnalyze(`for $b in //book return for $a in $b//author return $a`)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("run %d: EXPLAIN ANALYZE bytes differ\n got:\n%s\nwant:\n%s", i, got, want)
		}
	}
}

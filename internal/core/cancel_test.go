package core

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"xqdb/internal/limit"
	"xqdb/internal/store"
)

// TestCancelAbortsQuery cancels a running query from another goroutine:
// the query must return the cancellation error, and the abort must leave
// no temp files and no pinned pages behind. A tiny budget keeps the
// operators on their spill paths when the cancel lands, so cleanup of
// in-flight run files is part of what is asserted.
func TestCancelAbortsQuery(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&b, "<x>%d</x>", i)
	}
	b.WriteString("</r>")
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.LoadString(b.String()); err != nil {
		t.Fatal(err)
	}
	e := New(st, Config{Mode: ModeM4, SortBudget: 4 << 10, MemBudget: 4 << 10})

	// Hammer Cancel until the query returns: the first calls may land
	// before the query installs its budget, so one shot is not enough.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				e.Cancel()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	_, err = e.Query(`for $x in //x return for $y in //x return if ($x/text() = $y/text()) then <m/> else ()`)
	close(done)
	if !errors.Is(err, limit.ErrCanceled) {
		t.Fatalf("canceled query returned %v, want %v", err, limit.ErrCanceled)
	}

	if dir, derr := st.TempDir(); derr == nil {
		if ents, _ := os.ReadDir(dir); len(ents) != 0 {
			t.Errorf("cancel leaked %d temp files", len(ents))
		}
	}
	if pins := st.PinnedPages(); pins != 0 {
		t.Errorf("cancel leaked %d pinned pages", pins)
	}

	// The engine recovers: the next query runs on a fresh budget.
	out, err := e.Query(`for $x in /r/x return if ($x/text() = "7") then <hit/> else ()`)
	if err != nil {
		t.Fatalf("query after cancel: %v", err)
	}
	if out != "<hit/>" {
		t.Fatalf("query after cancel returned %q", out)
	}
}

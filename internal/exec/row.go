// Package exec implements the physical operators of milestones 3 and 4 in
// the iterator model: scans (full, primary-range, label-index, parent-
// index), selections, order-preserving nested-loops joins, block
// nested-loops joins, index nested-loops joins, one-pass duplicate-
// eliminating projections, external sort, and the relfor driver that
// evaluates the structural part of a TPM plan against a store.
//
// Intermediate rows bind one XASR tuple per relation alias. Milestone 3's
// allowance to "write each intermediate result to disk and re-read it" is
// the materialized inner of the nested-loops join (a recfile spool).
package exec

import (
	"encoding/binary"
	"fmt"

	"xqdb/internal/limit"
	"xqdb/internal/recfile"
	"xqdb/internal/store"
	"xqdb/internal/tpm"
	"xqdb/internal/xasr"
)

// Row is one intermediate tuple: an XASR tuple per relation slot. The slot
// order is given by the producing node's Schema.
type Row []xasr.Tuple

// Schema maps relation aliases to row slots.
type Schema struct {
	Aliases []string
	slots   map[string]int
}

// NewSchema builds a schema over the given aliases in slot order.
func NewSchema(aliases ...string) *Schema {
	s := &Schema{Aliases: append([]string(nil), aliases...), slots: make(map[string]int, len(aliases))}
	for i, a := range s.Aliases {
		s.slots[a] = i
	}
	return s
}

// Slot returns the slot index of an alias, or -1.
func (s *Schema) Slot(alias string) int {
	if i, ok := s.slots[alias]; ok {
		return i
	}
	return -1
}

// Concat returns a schema with other's aliases appended.
func (s *Schema) Concat(other *Schema) *Schema {
	return NewSchema(append(append([]string(nil), s.Aliases...), other.Aliases...)...)
}

// Project returns a schema keeping only the named aliases, in their order.
func (s *Schema) Project(keep []string) *Schema { return NewSchema(keep...) }

// Binding is the runtime value of a relfor variable: the in/out pair of
// the bound node (the paper's improved vartuple entries).
type Binding struct {
	In, Out uint32
}

// Env carries the current bindings of outer relfor variables.
type Env map[string]Binding

// Ctx is the execution context shared by all operators of one query.
type Ctx struct {
	Store   *store.Store
	TempDir string
	// Budget is the per-query resource governor: deadline, cancellation,
	// and the memory quota every buffering operator draws from. Nil means
	// no limits.
	Budget *limit.Budget
	Env    Env
	// SortBudget bounds operator memory for external sorts and spools.
	SortBudget int
	// FaultHook, when set, is consulted before temp-file writes (spools,
	// sort runs, spilled operator buffers); the fault-injection harness
	// uses it to fail the Nth write deterministically.
	FaultHook func(op string) error
	// BatchSize caps the rows per operator batch (0 means
	// DefaultBatchSize). Awkward sizes (1, 7) are exercised by the fuzz
	// harness to shake out batch-boundary bugs.
	BatchSize int
	// RowMode forces every operator onto the row-at-a-time adapter with
	// single-row batches — the faithful pre-batching execution mode, kept
	// as a fallback and as the fuzz/bench baseline.
	RowMode bool
	// DOP caps the workers any exchange operator of this query may run
	// (0 means "as planned"; 1 forces serial execution at runtime even
	// when the plan carries exchange nodes).
	DOP int
	// Counters accumulates runtime statistics for EXPLAIN ANALYZE-style
	// reporting and tests.
	Counters Counters
}

// check polls the query's budget (cancellation + deadline); operators call
// it once per produced tuple or merge step.
func (c *Ctx) check() error { return c.Budget.Check() }

// checkN polls the query's budget once for a batch of n rows; batched
// operators call it per batch instead of per row.
func (c *Ctx) checkN(n int) error { return c.Budget.CheckN(n) }

// batchCap returns the row capacity batched operators size their batches
// to.
func (c *Ctx) batchCap() int {
	if c.RowMode {
		return 1
	}
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return DefaultBatchSize
}

// softBudget returns the per-operator buffering budget in bytes.
func (c *Ctx) softBudget() int {
	if c.SortBudget > 0 {
		return c.SortBudget
	}
	return recfile.DefaultSortBudget
}

// Counters tallies operator activity during one query. RowsJoined counts
// pairs produced by the loop-based joins (NL, BNL, INL); RowsStructural
// counts pairs produced by the stack-based structural merge join, so the
// two together measure how much join work ran on which operator family.
type Counters struct {
	RowsScanned   int64
	RowsJoined    int64
	RowsEmitted   int64
	InnerRescans  int64
	IndexProbes   int64
	SortedRows    int64
	SpilledTuples int64
	// RowsStructural counts pairs emitted by structural merge joins.
	RowsStructural int64
	// StructStackMax is the ancestor-stack high-water mark over all
	// structural merge joins (binary and holistic) of the query.
	StructStackMax int64
	// StructListMax is the output-list high-water mark over all
	// anc-ordered structural merge joins of the query: the most joined
	// rows any Stack-Tree-Anc operator held in its per-stack-entry
	// self/inherit output lists at once — the memory the
	// ancestor-ordered emission pays for skipping the repair sort.
	StructListMax int64
	// RowsTwig counts full twig matches emitted by holistic twig joins.
	RowsTwig int64
	// TwigPathSolutions counts root-to-leaf path solutions buffered by
	// holistic twig joins — the operator's only intermediate result, to
	// compare against the RowsJoined/RowsStructural intermediates of the
	// binary pipelines.
	TwigPathSolutions int64
	// SpilledBytes counts bytes written to temp files by buffering
	// operators (spools, sort runs, twig solution buffers, anc output
	// lists) when they overflow their memory budget.
	SpilledBytes int64
	// SpillRuns counts temp run files those operators created.
	SpillRuns int64
	// Batches counts row batches produced by natively batched operators.
	Batches int64
}

// merge folds another tally into c — high-water marks take the maximum,
// everything else sums. Exchange workers run on private Counters and merge
// them here, under the gather's close, so no counter field is ever written
// concurrently.
func (c *Counters) merge(o *Counters) {
	c.RowsScanned += o.RowsScanned
	c.RowsJoined += o.RowsJoined
	c.RowsEmitted += o.RowsEmitted
	c.InnerRescans += o.InnerRescans
	c.IndexProbes += o.IndexProbes
	c.SortedRows += o.SortedRows
	c.SpilledTuples += o.SpilledTuples
	c.RowsStructural += o.RowsStructural
	if o.StructStackMax > c.StructStackMax {
		c.StructStackMax = o.StructStackMax
	}
	if o.StructListMax > c.StructListMax {
		c.StructListMax = o.StructListMax
	}
	c.RowsTwig += o.RowsTwig
	c.TwigPathSolutions += o.TwigPathSolutions
	c.SpilledBytes += o.SpilledBytes
	c.SpillRuns += o.SpillRuns
	c.Batches += o.Batches
}

// OpStats tallies one operator instance's runtime activity while a plan
// executes; EXPLAIN ANALYZE prints them next to the optimizer estimates.
// Plans are compiled per query execution, so the tallies belong to exactly
// one run (re-running a hand-built plan accumulates).
type OpStats struct {
	// Opens counts iterator openings (per outer row for INL inners).
	Opens int64
	// Rows counts rows the operator returned.
	Rows int64
	// StackMax is the ancestor-stack high-water mark (structural join).
	StackMax int64
	// ListMax is the buffered output-list high-water mark (anc-ordered
	// structural join).
	ListMax int64
	// SpilledBytes counts bytes this operator wrote to temp files.
	SpilledBytes int64
	// SpillRuns counts temp run files this operator created.
	SpillRuns int64
	// Batches counts row batches this operator produced natively (zero
	// for operators running through the row-at-a-time adapter).
	Batches int64
	// SelRows counts candidate rows examined by this operator's residual
	// predicate; Rows/SelRows is the observed selectivity EXPLAIN ANALYZE
	// prints as sel=.
	SelRows int64
}

// merge folds another instance's tallies into s — high-water marks take
// the maximum, everything else sums. Exchange workers run per-worker scan
// copies with private stats and merge them into the shared plan node's
// stats at close.
func (s *OpStats) merge(o *OpStats) {
	s.Opens += o.Opens
	s.Rows += o.Rows
	if o.StackMax > s.StackMax {
		s.StackMax = o.StackMax
	}
	if o.ListMax > s.ListMax {
		s.ListMax = o.ListMax
	}
	s.SpilledBytes += o.SpilledBytes
	s.SpillRuns += o.SpillRuns
	s.Batches += o.Batches
	s.SelRows += o.SelRows
}

// resolveIn resolves an in/out-valued operand against the environment and
// an optional outer row (for index nested-loops inners).
func resolveIn(op tpm.Operand, outer Row, outerSchema *Schema, env Env) (uint32, error) {
	switch op.Kind {
	case tpm.OpConstIn:
		return op.In, nil
	case tpm.OpVarIn:
		b, ok := env[op.Var]
		if !ok {
			return 0, fmt.Errorf("exec: unbound variable $%s", op.Var)
		}
		return b.In, nil
	case tpm.OpVarOut:
		b, ok := env[op.Var]
		if !ok {
			return 0, fmt.Errorf("exec: unbound variable $%s", op.Var)
		}
		return b.Out, nil
	case tpm.OpAttr:
		if outerSchema == nil {
			return 0, fmt.Errorf("exec: attribute %s used without outer row", op.Attr)
		}
		slot := outerSchema.Slot(op.Attr.Rel)
		if slot < 0 {
			return 0, fmt.Errorf("exec: attribute %s not in outer schema", op.Attr)
		}
		t := outer[slot]
		switch op.Attr.Col {
		case tpm.ColIn:
			return t.In, nil
		case tpm.ColOut:
			return t.Out, nil
		case tpm.ColParentIn:
			return t.ParentIn, nil
		default:
			return 0, fmt.Errorf("exec: attribute %s is not numeric", op.Attr)
		}
	default:
		return 0, fmt.Errorf("exec: operand %v is not an in-value", op)
	}
}

// operandOn evaluates an operand against a row, returning either a numeric
// or a string value.
func operandOn(op tpm.Operand, row Row, schema *Schema, env Env) (num uint32, str string, isStr bool, err error) {
	slot := -1
	if op.Kind == tpm.OpAttr {
		if slot = schema.Slot(op.Attr.Rel); slot < 0 {
			return 0, "", false, fmt.Errorf("exec: attribute %s not in schema %v", op.Attr, schema.Aliases)
		}
	}
	return operandSlot(op, slot, row, env)
}

// operandSlot is operandOn with the attribute slot already resolved —
// the per-row path of compiled conjunctions, which does no map lookups.
func operandSlot(op tpm.Operand, slot int, row Row, env Env) (num uint32, str string, isStr bool, err error) {
	switch op.Kind {
	case tpm.OpConstStr:
		return 0, op.Str, true, nil
	case tpm.OpConstType:
		return uint32(op.Type), "", false, nil
	case tpm.OpConstIn:
		return op.In, "", false, nil
	case tpm.OpVarIn, tpm.OpVarOut:
		n, err := resolveIn(op, nil, nil, env)
		return n, "", false, err
	case tpm.OpAttr:
		t := row[slot]
		switch op.Attr.Col {
		case tpm.ColIn:
			return t.In, "", false, nil
		case tpm.ColOut:
			return t.Out, "", false, nil
		case tpm.ColParentIn:
			return t.ParentIn, "", false, nil
		case tpm.ColType:
			return uint32(t.Type), "", false, nil
		case tpm.ColValue:
			return 0, t.Value, true, nil
		}
	}
	return 0, "", false, fmt.Errorf("exec: bad operand %v", op)
}

// evalConds evaluates a conjunction against a row.
func evalConds(conds []tpm.Cmp, row Row, schema *Schema, env Env) (bool, error) {
	for _, c := range conds {
		ok, err := evalCond(c, row, schema, env)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// compiledConds is a conjunction whose attribute operands were resolved
// to row slots once, at operator open. Per-row evaluation then indexes
// the row directly instead of hashing alias strings through the schema
// map for every condition of every row — the dominant cost of predicate
// evaluation in tight join loops.
type compiledConds struct {
	conds []tpm.Cmp
	slots [][2]int // per condition: left/right OpAttr slot, -1 for non-attrs
}

// compile resolves conds' attribute slots against schema, once per plan
// node: the first open compiles, later opens (INL probes reopen their
// inner scan per outer row) reuse the slots. Unknown attributes surface
// at open time instead of on the first row.
func (cc *compiledConds) compile(conds []tpm.Cmp, schema *Schema) error {
	if cc.slots != nil || len(conds) == 0 {
		return nil
	}
	cc.conds = conds
	cc.slots = make([][2]int, len(conds))
	for i, c := range conds {
		for side, op := range [2]tpm.Operand{c.Left, c.Right} {
			slot := -1
			if op.Kind == tpm.OpAttr {
				if slot = schema.Slot(op.Attr.Rel); slot < 0 {
					return fmt.Errorf("exec: attribute %s not in schema %v", op.Attr, schema.Aliases)
				}
			}
			cc.slots[i][side] = slot
		}
	}
	return nil
}

// eval evaluates the compiled conjunction against row. A zero-value
// compiledConds (no conditions) passes everything.
func (cc *compiledConds) eval(row Row, env Env) (bool, error) {
	for i, c := range cc.conds {
		ok, err := evalCondSlots(c, cc.slots[i], row, env)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

func evalCondSlots(c tpm.Cmp, slots [2]int, row Row, env Env) (bool, error) {
	ln, ls, lStr, err := operandSlot(c.Left, slots[0], row, env)
	if err != nil {
		return false, err
	}
	rn, rs, rStr, err := operandSlot(c.Right, slots[1], row, env)
	if err != nil {
		return false, err
	}
	return cmpValues(c, ln, ls, lStr, rn, rs, rStr)
}

func evalCond(c tpm.Cmp, row Row, schema *Schema, env Env) (bool, error) {
	ln, ls, lStr, err := operandOn(c.Left, row, schema, env)
	if err != nil {
		return false, err
	}
	rn, rs, rStr, err := operandOn(c.Right, row, schema, env)
	if err != nil {
		return false, err
	}
	return cmpValues(c, ln, ls, lStr, rn, rs, rStr)
}

func cmpValues(c tpm.Cmp, ln uint32, ls string, lStr bool, rn uint32, rs string, rStr bool) (bool, error) {
	if lStr != rStr {
		return false, fmt.Errorf("exec: type mismatch in condition %s", c)
	}
	if lStr {
		switch c.Op {
		case tpm.CmpEq:
			return ls == rs, nil
		case tpm.CmpLt:
			return ls < rs, nil
		case tpm.CmpGt:
			return ls > rs, nil
		}
	}
	switch c.Op {
	case tpm.CmpEq:
		return ln == rn, nil
	case tpm.CmpLt:
		return ln < rn, nil
	case tpm.CmpGt:
		return ln > rn, nil
	}
	return false, fmt.Errorf("exec: bad comparison operator in %s", c)
}

// appendRow encodes a row for spooling: per slot in, out, parent_in, type,
// value-length, value.
func appendRow(dst []byte, row Row) []byte {
	for _, t := range row {
		var b [13]byte
		binary.BigEndian.PutUint32(b[0:], t.In)
		binary.BigEndian.PutUint32(b[4:], t.Out)
		binary.BigEndian.PutUint32(b[8:], t.ParentIn)
		b[12] = byte(t.Type)
		dst = append(dst, b[:]...)
		var lb [binary.MaxVarintLen32]byte
		n := binary.PutUvarint(lb[:], uint64(len(t.Value)))
		dst = append(dst, lb[:n]...)
		dst = append(dst, t.Value...)
	}
	return dst
}

// decodeRowInto decodes a spooled row into row (whose length gives the
// slot count). One string conversion is shared by all slot values, so
// decoding costs a single allocation per row regardless of arity.
func decodeRowInto(row Row, rec []byte) error {
	_, err := decodeRowAt(row, rec, string(rec), 0)
	return err
}

// decodeRowAt decodes one appendRow-encoded row from rec starting at off,
// returning the offset past it. shared must be the string conversion of
// rec: slot values are sliced out of it, so batch-framed records (many
// rows per record) pay a single string allocation for the whole batch.
func decodeRowAt(row Row, rec []byte, shared string, off int) (int, error) {
	for i := range row {
		if len(rec)-off < 13 {
			return 0, fmt.Errorf("exec: corrupt spooled row")
		}
		t := xasr.Tuple{
			In:       binary.BigEndian.Uint32(rec[off:]),
			Out:      binary.BigEndian.Uint32(rec[off+4:]),
			ParentIn: binary.BigEndian.Uint32(rec[off+8:]),
			Type:     xasr.NodeType(rec[off+12]),
		}
		off += 13
		vlen, n := binary.Uvarint(rec[off:])
		if n <= 0 || uint64(len(rec)-off-n) < vlen {
			return 0, fmt.Errorf("exec: corrupt spooled row value")
		}
		t.Value = shared[off+n : off+n+int(vlen)]
		off += n + int(vlen)
		row[i] = t
	}
	return off, nil
}

package exec

import (
	"fmt"
	"strings"
)

// Explain renders an executable plan, including the physical operator
// trees inside each relfor with the optimizer's row and cost estimates —
// the output of `xqdb explain` and the plan snapshots in EXPERIMENTS.md.
func Explain(p XPlan) string {
	var b strings.Builder
	explainX(&b, p, 0, false)
	return b.String()
}

func pad(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func explainX(b *strings.Builder, p XPlan, depth int, analyze bool) {
	pad(b, depth)
	switch p := p.(type) {
	case XEmpty:
		b.WriteString("()\n")
	case *XText:
		fmt.Fprintf(b, "text(%q)\n", p.Content)
	case *XEmit:
		fmt.Fprintf(b, "emit($%s)\n", p.Var)
	case *XConstr:
		fmt.Fprintf(b, "constr(%s)\n", p.Label)
		explainX(b, p.Body, depth+1, analyze)
	case *XSeq:
		b.WriteString("seq\n")
		for _, it := range p.Items {
			explainX(b, it, depth+1, analyze)
		}
	case *XIf:
		fmt.Fprintf(b, "if[runtime] %s\n", p.Cond)
		explainX(b, p.Then, depth+1, analyze)
	case *XRelFor:
		vars := make([]string, len(p.Vars))
		for i, v := range p.Vars {
			vars[i] = "$" + v
		}
		fmt.Fprintf(b, "relfor (%s)\n", strings.Join(vars, ", "))
		explainNode(b, p.Root, depth+1, analyze)
		pad(b, depth+1)
		b.WriteString("return\n")
		explainX(b, p.Body, depth+2, analyze)
	default:
		fmt.Fprintf(b, "?%T\n", p)
	}
}

// ExplainNode renders one physical operator subtree.
func ExplainNode(b *strings.Builder, n PlanNode, depth int) {
	explainNode(b, n, depth, false)
}

func explainNode(b *strings.Builder, n PlanNode, depth int, analyze bool) {
	indent := strings.Repeat("  ", depth)
	explainNodePrefixed(b, n, indent, indent, analyze)
}

// explainNodePrefixed renders a node line and its children with tree
// glyphs. head is written before the node's description; rest prefixes
// every following line of the subtree — so k-ary operators (the twig
// join's per-stream inputs) indent correctly, with ├─/└─ branches and │
// continuation rails for all children beyond the first two.
func explainNodePrefixed(b *strings.Builder, n PlanNode, head, rest string, analyze bool) {
	b.WriteString(head)
	est := n.Estimate()
	if est.Rows != 0 || est.Cost != 0 {
		fmt.Fprintf(b, "%s  (rows≈%.0f cost≈%.0f)", n.Describe(), est.Rows, est.Cost)
	} else {
		fmt.Fprintf(b, "%s", n.Describe())
	}
	if analyze {
		st := n.Stats()
		fmt.Fprintf(b, "  (actual rows=%d opens=%d", st.Rows, st.Opens)
		if st.Batches > 0 {
			fmt.Fprintf(b, " batches=%d", st.Batches)
		}
		if st.SelRows > 0 {
			// Selectivity of the operator's residual predicate: rows kept
			// over rows the predicate saw.
			fmt.Fprintf(b, " sel=%.2f", float64(st.Rows)/float64(st.SelRows))
		}
		if st.StackMax > 0 {
			fmt.Fprintf(b, " stack=%d", st.StackMax)
		}
		if st.ListMax > 0 {
			fmt.Fprintf(b, " list=%d", st.ListMax)
		}
		if st.SpilledBytes > 0 || st.SpillRuns > 0 {
			fmt.Fprintf(b, " spilled=%dB runs=%d", st.SpilledBytes, st.SpillRuns)
		}
		b.WriteString(")")
	}
	b.WriteString("\n")
	children := n.Children()
	for i, ch := range children {
		glyph, cont := "├─ ", "│  "
		if i == len(children)-1 {
			glyph, cont = "└─ ", "   "
		}
		explainNodePrefixed(b, ch, rest+glyph, rest+cont, analyze)
	}
}

// ExplainAnalyze renders an executed plan: the operator tree with the
// optimizer estimates AND the per-operator runtime tallies collected
// during the run, followed by the query-wide counters. The plan must have
// been executed with Run first (a compiled plan runs at most once in the
// engine, so the tallies belong to that run).
func ExplainAnalyze(p XPlan, c Counters) string {
	var b strings.Builder
	explainX(&b, p, 0, true)
	fmt.Fprintf(&b, "\ncounters: scanned=%d joined=%d structural=%d twig=%d emitted=%d\n",
		c.RowsScanned, c.RowsJoined, c.RowsStructural, c.RowsTwig, c.RowsEmitted)
	fmt.Fprintf(&b, "          probes=%d rescans=%d sorted=%d spilled=%d stack-max=%d list-max=%d path-solutions=%d\n",
		c.IndexProbes, c.InnerRescans, c.SortedRows, c.SpilledTuples, c.StructStackMax, c.StructListMax, c.TwigPathSolutions)
	fmt.Fprintf(&b, "          spill-bytes=%d spill-runs=%d batches=%d\n",
		c.SpilledBytes, c.SpillRuns, c.Batches)
	return b.String()
}

// PlanCost sums the estimated cost over the physical trees of a plan.
func PlanCost(p XPlan) float64 {
	total := 0.0
	var walkX func(XPlan)
	walkX = func(p XPlan) {
		switch p := p.(type) {
		case *XConstr:
			walkX(p.Body)
		case *XSeq:
			for _, it := range p.Items {
				walkX(it)
			}
		case *XIf:
			walkX(p.Then)
		case *XRelFor:
			total += p.Root.Estimate().Cost
			walkX(p.Body)
		}
	}
	walkX(p)
	return total
}

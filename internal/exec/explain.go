package exec

import (
	"fmt"
	"strings"
)

// Explain renders an executable plan, including the physical operator
// trees inside each relfor with the optimizer's row and cost estimates —
// the output of `xqdb explain` and the plan snapshots in EXPERIMENTS.md.
func Explain(p XPlan) string {
	var b strings.Builder
	explainX(&b, p, 0)
	return b.String()
}

func pad(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func explainX(b *strings.Builder, p XPlan, depth int) {
	pad(b, depth)
	switch p := p.(type) {
	case XEmpty:
		b.WriteString("()\n")
	case *XText:
		fmt.Fprintf(b, "text(%q)\n", p.Content)
	case *XEmit:
		fmt.Fprintf(b, "emit($%s)\n", p.Var)
	case *XConstr:
		fmt.Fprintf(b, "constr(%s)\n", p.Label)
		explainX(b, p.Body, depth+1)
	case *XSeq:
		b.WriteString("seq\n")
		for _, it := range p.Items {
			explainX(b, it, depth+1)
		}
	case *XIf:
		fmt.Fprintf(b, "if[runtime] %s\n", p.Cond)
		explainX(b, p.Then, depth+1)
	case *XRelFor:
		vars := make([]string, len(p.Vars))
		for i, v := range p.Vars {
			vars[i] = "$" + v
		}
		fmt.Fprintf(b, "relfor (%s)\n", strings.Join(vars, ", "))
		ExplainNode(b, p.Root, depth+1)
		pad(b, depth+1)
		b.WriteString("return\n")
		explainX(b, p.Body, depth+2)
	default:
		fmt.Fprintf(b, "?%T\n", p)
	}
}

// ExplainNode renders one physical operator subtree.
func ExplainNode(b *strings.Builder, n PlanNode, depth int) {
	pad(b, depth)
	est := n.Estimate()
	if est.Rows != 0 || est.Cost != 0 {
		fmt.Fprintf(b, "%s  (rows≈%.0f cost≈%.0f)\n", n.Describe(), est.Rows, est.Cost)
	} else {
		fmt.Fprintf(b, "%s\n", n.Describe())
	}
	for _, ch := range n.Children() {
		ExplainNode(b, ch, depth+1)
	}
}

// PlanCost sums the estimated cost over the physical trees of a plan.
func PlanCost(p XPlan) float64 {
	total := 0.0
	var walkX func(XPlan)
	walkX = func(p XPlan) {
		switch p := p.(type) {
		case *XConstr:
			walkX(p.Body)
		case *XSeq:
			for _, it := range p.Items {
				walkX(it)
			}
		case *XIf:
			walkX(p.Then)
		case *XRelFor:
			total += p.Root.Estimate().Cost
			walkX(p.Body)
		}
	}
	walkX(p)
	return total
}

package exec

import (
	"strings"
	"testing"

	"xqdb/internal/store"
	"xqdb/internal/tpm"
	"xqdb/internal/xasr"
)

const figure2 = `<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>`

func testCtx(t testing.TB, doc string) *Ctx {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{LabelStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.LoadString(doc); err != nil {
		t.Fatal(err)
	}
	tmp, err := st.TempDir()
	if err != nil {
		t.Fatal(err)
	}
	return &Ctx{Store: st, TempDir: tmp, Env: Env{}}
}

func drain(t *testing.T, ctx *Ctx, n PlanNode) []Row {
	t.Helper()
	it, err := n.open(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var rows []Row
	for {
		row, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return rows
		}
		rows = append(rows, append(Row(nil), row...))
	}
}

func labelScan(alias, label string) *Scan {
	return NewScan(alias, Access{Kind: AccessLabel, Type: xasr.TypeElem, Value: label}, nil)
}

func TestScanAccessPaths(t *testing.T) {
	ctx := testCtx(t, figure2)

	full := NewScan("R", Access{Kind: AccessFull}, nil)
	if got := len(drain(t, ctx, full)); got != 9 {
		t.Errorf("full scan: %d rows, want 9", got)
	}

	lbl := labelScan("N", "name")
	rows := drain(t, ctx, lbl)
	if len(rows) != 2 || rows[0][0].In != 4 || rows[1][0].In != 8 {
		t.Errorf("label scan rows: %v", rows)
	}

	par := NewScan("C", Access{Kind: AccessParent, Parent: tpm.InOp(3)}, nil)
	rows = drain(t, ctx, par)
	if len(rows) != 2 || rows[0][0].Value != "name" {
		t.Errorf("parent scan rows: %v", rows)
	}

	rng := NewScan("R", Access{Kind: AccessRange, Bounded: true,
		Lo: tpm.InOp(2), LoAdd: 1, Hi: tpm.InOp(17)}, nil)
	if got := len(drain(t, ctx, rng)); got != 7 {
		t.Errorf("range scan (descendants of journal): %d rows, want 7", got)
	}

	// Filter conditions applied at the scan.
	filt := NewScan("R", Access{Kind: AccessFull},
		[]tpm.Cmp{tpm.Eq(tpm.AttrOp("R", tpm.ColType), tpm.TypeOp(xasr.TypeText))})
	if got := len(drain(t, ctx, filt)); got != 3 {
		t.Errorf("filtered scan: %d rows, want 3", got)
	}
}

func TestNLJoinOrderPreserving(t *testing.T) {
	ctx := testCtx(t, figure2)
	// journal × name with a descendant condition.
	j := labelScan("J", "journal")
	n := labelScan("N", "name")
	join := NewNLJoin(j, n, []tpm.Cmp{
		tpm.Gt(tpm.AttrOp("N", tpm.ColIn), tpm.AttrOp("J", tpm.ColIn)),
		tpm.Lt(tpm.AttrOp("N", tpm.ColOut), tpm.AttrOp("J", tpm.ColOut)),
	})
	rows := drain(t, ctx, join)
	if len(rows) != 2 {
		t.Fatalf("join rows: %d", len(rows))
	}
	if rows[0][1].In != 4 || rows[1][1].In != 8 {
		t.Errorf("join order broken: %v", rows)
	}
	if ctx.Counters.InnerRescans == 0 {
		t.Error("no inner rescans counted")
	}
}

func TestINLJoinDescendant(t *testing.T) {
	ctx := testCtx(t, figure2)
	j := labelScan("J", "journal")
	inner := NewScan("N", Access{
		Kind: AccessLabel, Type: xasr.TypeElem, Value: "name",
		Bounded: true, Lo: tpm.AttrOp("J", tpm.ColIn), LoAdd: 1, Hi: tpm.AttrOp("J", tpm.ColOut),
	}, nil)
	join := NewINLJoin(j, inner, nil)
	rows := drain(t, ctx, join)
	if len(rows) != 2 || rows[0][1].In != 4 {
		t.Errorf("INL rows: %v", rows)
	}
	if ctx.Counters.IndexProbes != 1 {
		t.Errorf("probes: %d, want 1", ctx.Counters.IndexProbes)
	}
}

func TestBNLJoinFindsAllPairs(t *testing.T) {
	ctx := testCtx(t, figure2)
	a := labelScan("A", "name")
	b := labelScan("B", "name")
	join := NewBNLJoin(a, b, nil, 1) // block of 1 exercises refilling
	rows := drain(t, ctx, join)
	if len(rows) != 4 {
		t.Errorf("BNL cross join: %d rows, want 4", len(rows))
	}
}

func TestProjectDedup(t *testing.T) {
	ctx := testCtx(t, figure2)
	// journal × text-descendants yields 3 rows with the same journal;
	// projecting to J with dedup leaves one.
	j := labelScan("J", "journal")
	txt := NewScan("T", Access{Kind: AccessRange, Bounded: true,
		Lo: tpm.AttrOp("J", tpm.ColIn), LoAdd: 1, Hi: tpm.AttrOp("J", tpm.ColOut)},
		[]tpm.Cmp{tpm.Eq(tpm.AttrOp("T", tpm.ColType), tpm.TypeOp(xasr.TypeText))})
	join := NewINLJoin(j, txt, nil)
	proj := NewProject(join, []string{"J"}, true)
	rows := drain(t, ctx, proj)
	if len(rows) != 1 || rows[0][0].In != 2 {
		t.Errorf("dedup projection: %v", rows)
	}
}

func TestSortRestoresOrder(t *testing.T) {
	ctx := testCtx(t, figure2)
	// name × name unordered via BNL, then sort by (A, B).
	a := labelScan("A", "name")
	b := labelScan("B", "name")
	join := NewBNLJoin(a, b, nil, 1)
	sorted := NewSort(join, []string{"A", "B"}, false)
	rows := drain(t, ctx, sorted)
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1], rows[i]
		if prev[0].In > cur[0].In || (prev[0].In == cur[0].In && prev[1].In > cur[1].In) {
			t.Errorf("sort order broken at %d: %v then %v", i, prev, cur)
		}
	}
	// With dedup, the pairs stay distinct (all 4 unique).
	sorted = NewSort(NewBNLJoin(labelScan("A", "name"), labelScan("B", "name"), nil, 1),
		[]string{"A", "B"}, true)
	if got := len(drain(t, ctx, sorted)); got != 4 {
		t.Errorf("sort dedup dropped distinct rows: %d", got)
	}
}

func TestRunXPlanConstruction(t *testing.T) {
	ctx := testCtx(t, figure2)
	// relfor ($n) in label-scan(name) return <x>{emit $n}</x>
	plan := &XConstr{Label: "out", Body: &XRelFor{
		Vars: []string{"n"},
		Root: NewProject(labelScan("N", "name"), []string{"N"}, true),
		Body: &XEmit{Var: "n"},
	}}
	out, err := Run(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	want := `<out><name>Ana</name><name>Bob</name></out>`
	if string(out) != want {
		t.Errorf("got %s want %s", out, want)
	}
}

func TestNullaryRelForEarlyOut(t *testing.T) {
	ctx := testCtx(t, figure2)
	// Nullary relfor over names: body runs once despite two matches.
	plan := &XRelFor{
		Vars: nil,
		Root: labelScan("N", "name"),
		Body: &XText{Content: "yes"},
	}
	out, err := Run(ctx, plan)
	if err != nil || string(out) != "yes" {
		t.Errorf("nullary: %q %v", out, err)
	}
	// Empty algebra result: body never runs.
	plan.Root = labelScan("Z", "nosuch")
	out, err = Run(ctx, plan)
	if err != nil || len(out) != 0 {
		t.Errorf("nullary empty: %q %v", out, err)
	}
}

func TestSpoolSpillsToDisk(t *testing.T) {
	// A tiny budget forces the spool to disk and back.
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 500; i++ {
		b.WriteString("<x>v</x>")
	}
	b.WriteString("</r>")
	ctx := testCtx(t, b.String())
	ctx.SortBudget = 1024

	a := labelScan("A", "x")
	c := labelScan("B", "x")
	join := NewNLJoin(a, c, []tpm.Cmp{tpm.Eq(tpm.AttrOp("A", tpm.ColIn), tpm.AttrOp("B", tpm.ColIn))})
	rows := drain(t, ctx, join)
	if len(rows) != 500 {
		t.Errorf("self join rows: %d, want 500", len(rows))
	}
	if ctx.Counters.SpilledTuples == 0 {
		t.Error("spool never spilled despite tiny budget")
	}
}

// Morsel-style intra-query parallelism. An Exchange node partitions its
// leaf scan's in-range into interval-aligned morsels, runs the scan (with
// its pushed-down residual conditions) on a pool of workers that claim
// morsels from a shared counter, and merges the workers' document-ordered
// batch streams back into one globally ordered stream with a loser-tree
// gather. Workers exchange whole Batches over channels — one send per
// batch, never per row — so the transfer cost stays amortized exactly like
// the rest of the batch contract.
//
// Ordering argument: morsels are disjoint, ascending in-ranges and each
// worker claims monotonically increasing morsel indexes, so every worker's
// own stream is in-sorted and any two batches from different streams cover
// disjoint in-ranges. Comparing only the first In of each stream's head
// batch therefore suffices to emit whole batches in global document order
// — the Stack-Tree and TwigStack consumers downstream see exactly the
// serial scan's stream.
package exec

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"xqdb/internal/store"
	"xqdb/internal/tpm"
)

const (
	// DefaultMorselRows is the target rows per morsel. Morsels deliberately
	// oversubscribe the worker pool (a few batches each) so dynamic
	// claiming absorbs skew from uneven interval density.
	DefaultMorselRows = 2048
	// morselsPerWorker oversubscribes arithmetic range splits.
	morselsPerWorker = 4
	// exchangeChanBuf is the per-worker channel depth, in batches.
	exchangeChanBuf = 2
	// exchangeMinBatch is the smallest batch capacity the budget backoff
	// shrinks to before giving up on parallelism.
	exchangeMinBatch = 16
	// exchangeTupleBytes is the accounting weight of one in-flight tuple.
	exchangeTupleBytes = 48
)

// exchangeBytes is the memory an exchange reserves for in-flight batches:
// per worker one batch being filled plus the channel depth, plus the
// gather's head batch per stream and the batch exposed to the consumer.
func exchangeBytes(dop, capRows int) int {
	batches := dop*(exchangeChanBuf+3) + 1
	return batches * capRows * exchangeTupleBytes
}

// Exchange runs its child scan in parallel on DOP workers and merges the
// per-worker batch streams back into document order. It degrades to a
// plain child open — same results, no workers — whenever parallelism is
// unavailable: row mode, an INL-parameterized open, a range too small to
// split, or a memory budget too tight for the in-flight batches.
type Exchange struct {
	Child *Scan
	// DOP is the planned worker count (the runtime Ctx.DOP may cap it).
	DOP int
	// MorselRows overrides the target rows per morsel (0 = default); the
	// fuzz and robustness harnesses shrink it to force many tiny morsels.
	MorselRows int
	Est_       Est

	stats OpStats
	// morsels/lastDOP record the most recent parallel open for EXPLAIN.
	morsels int64
	lastDOP int
	// workerBatches records how many batches each worker produced in the
	// most recent parallel run (merged under the gather's close).
	workerBatches []int64
}

// NewExchange builds an exchange over a partitionable leaf scan.
func NewExchange(child *Scan, dop int) *Exchange {
	return &Exchange{Child: child, DOP: dop}
}

// ExchangeEligible reports whether a scan can sit under an Exchange: its
// access path must be a full, range, or label scan whose bounds do not
// reference an outer row (INL inners re-resolve bounds per probe, which a
// pre-partitioned worker pool cannot do).
func ExchangeEligible(s *Scan) bool {
	switch s.Access.Kind {
	case AccessFull, AccessRange, AccessLabel:
	default:
		return false
	}
	if s.Access.Bounded {
		if s.Access.Lo.Kind == tpm.OpAttr || s.Access.Hi.Kind == tpm.OpAttr {
			return false
		}
	}
	return true
}

// Schema implements PlanNode.
func (e *Exchange) Schema() *Schema { return e.Child.Schema() }

// Children implements PlanNode.
func (e *Exchange) Children() []PlanNode { return []PlanNode{e.Child} }

// Estimate implements PlanNode.
func (e *Exchange) Estimate() Est { return e.Est_ }

// Stats implements PlanNode.
func (e *Exchange) Stats() *OpStats { return &e.stats }

// Describe implements PlanNode.
func (e *Exchange) Describe() string {
	if e.morsels > 0 {
		return fmt.Sprintf("exchange [dop=%d morsels=%d]", e.lastDOP, e.morsels)
	}
	return fmt.Sprintf("exchange [dop=%d]", e.DOP)
}

// WorkerBatches returns the per-worker batch counts of the most recent
// parallel run (nil when the exchange fell back to serial). The partition
// of batches over workers is scheduling-dependent; only the sum is
// deterministic.
func (e *Exchange) WorkerBatches() []int64 { return e.workerBatches }

func (e *Exchange) open(ctx *Ctx, outer Row, outerSchema *Schema) (rowIter, error) {
	dop := e.DOP
	if ctx.DOP > 0 && ctx.DOP < dop {
		dop = ctx.DOP
	}
	if outer != nil || ctx.RowMode || dop < 2 {
		e.stats.Opens++
		return e.Child.open(ctx, outer, outerSchema)
	}
	var lo, hi uint32
	if e.Child.Access.Bounded {
		v, err := resolveIn(e.Child.Access.Lo, nil, nil, ctx.Env)
		if err != nil {
			return nil, err
		}
		lo = v + e.Child.Access.LoAdd
		hv, err := resolveIn(e.Child.Access.Hi, nil, nil, ctx.Env)
		if err != nil {
			return nil, err
		}
		if hv != 0 || e.Child.Access.HiAdd != 0 {
			hi = hv + e.Child.Access.HiAdd
		}
		if hi != 0 && lo >= hi {
			e.stats.Opens++
			return emptyIter{}, nil
		}
	}
	target := e.MorselRows
	if target <= 0 {
		target = DefaultMorselRows
	}
	var parts []store.Interval
	var err error
	switch e.Child.Access.Kind {
	case AccessLabel:
		parts, err = ctx.Store.SplitLabelRange(e.Child.Access.Type, e.Child.Access.Value, lo, hi, target)
	case AccessFull, AccessRange:
		parts, err = ctx.Store.SplitRange(lo, hi, dop*morselsPerWorker)
	default:
		e.stats.Opens++
		return e.Child.open(ctx, outer, outerSchema)
	}
	if err != nil {
		return nil, err
	}
	if len(parts) < 2 {
		e.stats.Opens++
		return e.Child.open(ctx, outer, outerSchema)
	}
	if dop > len(parts) {
		dop = len(parts)
	}
	// Reserve the in-flight batch memory up front, shrinking the transfer
	// batch capacity under tight budgets rather than giving up outright.
	capRows := ctx.batchCap()
	reserved := 0
	for {
		need := exchangeBytes(dop, capRows)
		if ctx.Budget.Reserve(need) {
			reserved = need
			break
		}
		if capRows <= exchangeMinBatch {
			e.stats.Opens++
			return e.Child.open(ctx, outer, outerSchema)
		}
		capRows /= 2
	}
	e.stats.Opens++
	e.morsels = int64(len(parts))
	e.lastDOP = dop
	e.workerBatches = make([]int64, dop)
	g := &exchangeIter{
		ctx:      ctx,
		e:        e,
		parts:    parts,
		done:     make(chan struct{}),
		out:      make([]chan exMsg, dop),
		workers:  make([]*exWorker, dop),
		reserved: reserved,
	}
	for w := 0; w < dop; w++ {
		wctx := &Ctx{
			Store:      ctx.Store,
			TempDir:    ctx.TempDir,
			Budget:     ctx.Budget,
			Env:        cloneEnv(ctx.Env),
			SortBudget: ctx.SortBudget,
			FaultHook:  ctx.FaultHook,
			BatchSize:  capRows,
			DOP:        ctx.DOP,
		}
		sc := &Scan{Alias: e.Child.Alias, Access: e.Child.Access,
			Conds: e.Child.Conds, Est_: e.Child.Est_, schema: e.Child.schema}
		g.out[w] = make(chan exMsg, exchangeChanBuf)
		g.workers[w] = &exWorker{id: w, ctx: wctx, scan: sc}
		g.wg.Add(1)
		go g.runWorker(g.workers[w])
	}
	return g, nil
}

// cloneEnv snapshots the outer bindings for one worker: runRelFor mutates
// the driver's Env per emitted row, while a worker only ever needs the
// bindings as they stood when its exchange opened.
func cloneEnv(env Env) Env {
	if env == nil {
		return nil
	}
	c := make(Env, len(env))
	for k, v := range env {
		c[k] = v
	}
	return c
}

// exMsg is one batch (or the worker's terminal error) in flight.
type exMsg struct {
	b   *Batch
	err error
}

// exWorker is one worker's private execution state: its own Ctx (private
// Env snapshot and Counters) and its own Scan copy (private stats and
// compiled conditions), so nothing the hot loop touches is shared.
type exWorker struct {
	id   int
	ctx  *Ctx
	scan *Scan
}

// exhaustedKey sorts an ended stream after every real in label.
const exhaustedKey = math.MaxUint64

type exchangeIter struct {
	ctx      *Ctx
	e        *Exchange
	parts    []store.Interval
	next     atomic.Int64
	out      []chan exMsg
	done     chan struct{}
	wg       sync.WaitGroup
	workers  []*exWorker
	pool     sync.Pool
	reserved int

	// Gather state: one head batch per live stream, keyed by its first In.
	heads  []*Batch
	keys   []uint64
	tree   *loserTree
	inited bool
	cur    *Batch // batch currently exposed to the consumer
	err    error  // sticky
	closed bool

	// Row-at-a-time view for rowIter consumers.
	rb   Batch
	rpos int
}

func (g *exchangeIter) getBatch() *Batch {
	if b, ok := g.pool.Get().(*Batch); ok {
		return b
	}
	return &Batch{}
}

func (g *exchangeIter) putBatch(b *Batch) { g.pool.Put(b) }

// morselAccess restricts the child's access path to one morsel interval.
func (g *exchangeIter) morselAccess(iv store.Interval) Access {
	a := g.e.Child.Access
	if a.Kind == AccessFull {
		a.Kind = AccessRange
	}
	a.Bounded = true
	a.Lo = tpm.Operand{Kind: tpm.OpConstIn, In: iv.Lo}
	a.Hi = tpm.Operand{Kind: tpm.OpConstIn, In: iv.Hi}
	a.LoAdd, a.HiAdd = 0, 0
	return a
}

// runWorker claims morsels from the shared counter until none remain (or
// the gather shuts down), scanning each and shipping whole batches.
func (g *exchangeIter) runWorker(w *exWorker) {
	defer g.wg.Done()
	defer close(g.out[w.id])
	for {
		m := int(g.next.Add(1)) - 1
		if m >= len(g.parts) {
			return
		}
		if !g.runMorsel(w, g.parts[m]) {
			return
		}
	}
}

// runMorsel scans one morsel interval, sending every batch it produces.
// It returns false when the worker should stop (error sent or shutdown).
func (g *exchangeIter) runMorsel(w *exWorker, iv store.Interval) bool {
	w.scan.Access = g.morselAccess(iv)
	it, err := w.scan.open(w.ctx, nil, nil)
	if err != nil {
		g.send(w.id, exMsg{err: err})
		return false
	}
	src := asBatch(w.ctx, it, 1)
	for {
		b := g.getBatch()
		n, err := src.NextBatch(b)
		if err != nil {
			g.putBatch(b)
			it.Close()
			g.send(w.id, exMsg{err: err})
			return false
		}
		if n == 0 {
			g.putBatch(b)
			break
		}
		if !g.send(w.id, exMsg{b: b}) {
			it.Close()
			return false
		}
	}
	it.Close()
	return true
}

// send ships one message on the worker's stream, giving up (false) when
// the gather has shut down — the only way a worker blocked on a full
// channel unwinds after an early close.
func (g *exchangeIter) send(id int, m exMsg) bool {
	select {
	case g.out[id] <- m:
		return true
	case <-g.done:
		return false
	}
}

// refill replaces stream i's head with its next batch, blocking until the
// worker delivers one or closes the stream.
func (g *exchangeIter) refill(i int) error {
	if g.heads[i] != nil {
		g.putBatch(g.heads[i])
		g.heads[i] = nil
	}
	m, ok := <-g.out[i]
	if !ok {
		g.keys[i] = exhaustedKey
		return nil
	}
	if m.err != nil {
		g.keys[i] = exhaustedKey
		return m.err
	}
	g.heads[i] = m.b
	g.keys[i] = uint64(m.b.Cols[0][m.b.rowIdx(0)].In)
	return nil
}

func (g *exchangeIter) initMerge() error {
	k := len(g.out)
	g.heads = make([]*Batch, k)
	g.keys = make([]uint64, k)
	for i := 0; i < k; i++ {
		if err := g.refill(i); err != nil {
			return err
		}
	}
	g.tree = newLoserTree(g.keys)
	return nil
}

// fail records the first error, shuts the pool down so nothing leaks, and
// returns the sentinel for the caller to propagate.
func (g *exchangeIter) fail(err error) error {
	if g.err == nil {
		g.err = err
	}
	g.shutdown()
	return g.err
}

// NextBatch emits the next whole batch in global document order: the head
// batch with the smallest first In among all worker streams. One loser-
// tree comparison path per batch — the gather does no per-row work at all.
func (g *exchangeIter) NextBatch(b *Batch) (int, error) {
	if g.err != nil {
		return 0, g.err
	}
	if g.cur != nil {
		g.putBatch(g.cur)
		g.cur = nil
	}
	if !g.inited {
		g.inited = true
		if err := g.initMerge(); err != nil {
			return 0, g.fail(err)
		}
	}
	w := g.tree.winner()
	if g.keys[w] == exhaustedKey {
		return 0, nil
	}
	win := g.heads[w]
	g.heads[w] = nil // ownership moves to the consumer until next call
	if err := g.refill(w); err != nil {
		g.putBatch(win)
		return 0, g.fail(err)
	}
	g.tree.fix(w)
	g.cur = win
	b.Cols = win.Cols
	b.Sel = win.Sel
	b.n = win.n
	n := win.Len()
	g.e.stats.Rows += int64(n)
	g.e.stats.Batches++
	g.ctx.Counters.Batches++
	return n, nil
}

func (g *exchangeIter) Next() (Row, bool, error) {
	for g.rpos >= g.rb.Len() {
		n, err := g.NextBatch(&g.rb)
		if err != nil {
			return nil, false, err
		}
		if n == 0 {
			return nil, false, nil
		}
		g.rpos = 0
	}
	row := g.rb.row(g.rpos, nil)
	g.rpos++
	return row, true, nil
}

// shutdown stops the pool exactly once: wake any worker blocked on a send,
// join them all, then — single-threaded again — merge the per-worker stats
// and counters into the shared plan node and query counters and release
// the in-flight memory reservation.
func (g *exchangeIter) shutdown() {
	if g.closed {
		return
	}
	g.closed = true
	close(g.done)
	g.wg.Wait()
	for _, w := range g.workers {
		g.e.workerBatches[w.id] = w.scan.stats.Batches
		g.e.Child.stats.merge(&w.scan.stats)
		g.ctx.Counters.merge(&w.ctx.Counters)
	}
	if g.reserved > 0 {
		g.ctx.Budget.Release(g.reserved)
		g.reserved = 0
	}
}

func (g *exchangeIter) Close() error {
	g.shutdown()
	return nil
}

// loserTree is a tournament tree over k streams keyed by uint64; winner()
// is O(1) and fix() after replacing the winner's key is O(log k). Leaves
// sit at node positions k..2k-1; node[1..k-1] hold the loser of each
// internal match and node[0] the overall winner.
type loserTree struct {
	k    int
	node []int
	key  []uint64
}

// newLoserTree builds the tree over keys; the slice is retained and the
// caller updates it in place before calling fix.
func newLoserTree(keys []uint64) *loserTree {
	k := len(keys)
	t := &loserTree{k: k, key: keys, node: make([]int, k)}
	if k == 1 {
		t.node[0] = 0
		return t
	}
	winners := make([]int, 2*k)
	for i := 0; i < k; i++ {
		winners[k+i] = i
	}
	for n := k - 1; n >= 1; n-- {
		a, b := winners[2*n], winners[2*n+1]
		if t.key[a] <= t.key[b] {
			winners[n], t.node[n] = a, b
		} else {
			winners[n], t.node[n] = b, a
		}
	}
	t.node[0] = winners[1]
	return t
}

// winner returns the leaf index with the minimum key.
func (t *loserTree) winner() int { return t.node[0] }

// fix replays the path from leaf w to the root after key[w] changed.
func (t *loserTree) fix(w int) {
	if t.k == 1 {
		return
	}
	for n := (w + t.k) / 2; n >= 1; n /= 2 {
		if t.key[t.node[n]] < t.key[w] {
			t.node[n], w = w, t.node[n]
		}
	}
	t.node[0] = w
}

package exec

import (
	"testing"

	"xqdb/internal/tpm"
	"xqdb/internal/xasr"
)

func descPred(anc, desc string) tpm.StructuralPred {
	return tpm.StructuralPred{
		Axis: tpm.AxisDescendant, Anc: anc, Desc: desc,
		Conds: []tpm.Cmp{
			tpm.Gt(tpm.AttrOp(desc, tpm.ColIn), tpm.AttrOp(anc, tpm.ColIn)),
			tpm.Lt(tpm.AttrOp(desc, tpm.ColOut), tpm.AttrOp(anc, tpm.ColOut)),
		},
	}
}

func childPred(anc, desc string) tpm.StructuralPred {
	return tpm.StructuralPred{
		Axis: tpm.AxisChild, Anc: anc, Desc: desc,
		Conds: []tpm.Cmp{
			tpm.Eq(tpm.AttrOp(desc, tpm.ColParentIn), tpm.AttrOp(anc, tpm.ColIn)),
		},
	}
}

func TestStructuralJoinDescendantRight(t *testing.T) {
	ctx := testCtx(t, figure2)
	// Ancestor stream on the left, descendant stream on the right: the
	// output follows the descendant's document order.
	j := labelScan("J", "journal")
	n := labelScan("N", "name")
	join := NewStructuralJoin(j, n, descPred("J", "N"), nil)
	rows := drain(t, ctx, join)
	if len(rows) != 2 {
		t.Fatalf("join rows: %d, want 2", len(rows))
	}
	// Slot order is (left, right) = (J, N); order is by N.in.
	if rows[0][1].In != 4 || rows[1][1].In != 8 {
		t.Errorf("descendant order broken: %v", rows)
	}
	if rows[0][0].Value != "journal" {
		t.Errorf("ancestor slot wrong: %v", rows[0])
	}
	if ctx.Counters.RowsStructural != 2 {
		t.Errorf("RowsStructural = %d, want 2", ctx.Counters.RowsStructural)
	}
	if ctx.Counters.RowsJoined != 0 {
		t.Errorf("RowsJoined = %d, want 0 (no loop join ran)", ctx.Counters.RowsJoined)
	}
	if join.Stats().Rows != 2 || join.Stats().StackMax != 1 {
		t.Errorf("op stats: %+v", join.Stats())
	}
}

func TestStructuralJoinAncestorRight(t *testing.T) {
	ctx := testCtx(t, figure2)
	// Descendant stream on the left: output preserves the left order —
	// the planner's order-preserving case.
	n := labelScan("N", "name")
	j := labelScan("J", "journal")
	join := NewStructuralJoin(n, j, descPred("J", "N"), nil)
	rows := drain(t, ctx, join)
	if len(rows) != 2 {
		t.Fatalf("join rows: %d, want 2", len(rows))
	}
	// Slot order is (N, J); order is by N.in.
	if rows[0][0].In != 4 || rows[1][0].In != 8 {
		t.Errorf("left order not preserved: %v", rows)
	}
	if rows[0][1].Value != "journal" {
		t.Errorf("ancestor slot wrong: %v", rows[0])
	}
}

func TestStructuralJoinChildAxis(t *testing.T) {
	ctx := testCtx(t, figure2)
	// authors (in=3) is the parent of the two name elements; journal is
	// an ancestor but not the parent, so the child axis must skip it.
	a := labelScan("A", "authors")
	n := labelScan("N", "name")
	join := NewStructuralJoin(a, n, childPred("A", "N"), nil)
	rows := drain(t, ctx, join)
	if len(rows) != 2 {
		t.Fatalf("child join rows: %d, want 2", len(rows))
	}
	if rows[0][0].Value != "authors" || rows[0][1].In != 4 || rows[1][1].In != 8 {
		t.Errorf("child pairs wrong: %v", rows)
	}

	// The same join against journal parents yields nothing (names are
	// grandchildren of journal).
	ctx2 := testCtx(t, figure2)
	join2 := NewStructuralJoin(labelScan("J", "journal"), labelScan("N", "name"), childPred("J", "N"), nil)
	if rows := drain(t, ctx2, join2); len(rows) != 0 {
		t.Errorf("grandchildren matched on the child axis: %v", rows)
	}
}

// nestedDoc has nested same-label ancestors so the stack grows beyond one
// entry: a1 contains a2; a1 has descendants b1, b2; a2 has descendant b1.
const nestedDoc = `<r><a><a><b/></a><b/></a><b/></r>`

func TestStructuralJoinNestedAncestors(t *testing.T) {
	ctx := testCtx(t, nestedDoc)
	a := labelScan("A", "a")
	b := labelScan("B", "b")
	join := NewStructuralJoin(a, b, descPred("A", "B"), nil)
	rows := drain(t, ctx, join)
	// Pairs: (a1,b1), (a2,b1), (a1,b2) — b3 is outside both a's.
	if len(rows) != 3 {
		t.Fatalf("nested join rows: %d, want 3", len(rows))
	}
	// Descendant order with ancestors bottom-up (outermost first).
	if !(rows[0][0].In < rows[1][0].In && rows[0][1].In == rows[1][1].In) {
		t.Errorf("stack emission order wrong: %v", rows)
	}
	if join.Stats().StackMax != 2 {
		t.Errorf("stack high-water mark = %d, want 2", join.Stats().StackMax)
	}
	if ctx.Counters.StructStackMax != 2 {
		t.Errorf("counter stack max = %d, want 2", ctx.Counters.StructStackMax)
	}
}

func TestStructuralJoinMatchesNLJoin(t *testing.T) {
	// On every (anc, desc) label pairing of the nested document the merge
	// must produce exactly the nested-loops pairs (as a set; the merge
	// emits in descendant order, NL in ancestor order).
	for _, labels := range [][2]string{{"a", "b"}, {"a", "a"}, {"r", "b"}, {"b", "a"}} {
		ctxNL := testCtx(t, nestedDoc)
		conds := descPred("X", "Y").Conds
		nl := NewNLJoin(labelScan("X", labels[0]), labelScan("Y", labels[1]), conds)
		want := map[[2]uint32]bool{}
		for _, r := range drain(t, ctxNL, nl) {
			want[[2]uint32{r[0].In, r[1].In}] = true
		}

		ctxSJ := testCtx(t, nestedDoc)
		sj := NewStructuralJoin(labelScan("X", labels[0]), labelScan("Y", labels[1]), descPred("X", "Y"), nil)
		got := map[[2]uint32]bool{}
		rows := drain(t, ctxSJ, sj)
		for _, r := range rows {
			got[[2]uint32{r[0].In, r[1].In}] = true
		}
		if len(got) != len(want) || len(got) != len(rows) {
			t.Fatalf("%v: structural %d pairs (%d rows), NL %d pairs", labels, len(got), len(rows), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Errorf("%v: missing pair %v", labels, k)
			}
		}
	}
}

func TestStructuralJoinResidualConds(t *testing.T) {
	ctx := testCtx(t, figure2)
	// Residual condition on the emitted pair: only the second name.
	j := labelScan("J", "journal")
	n := labelScan("N", "name")
	resid := []tpm.Cmp{tpm.Gt(tpm.AttrOp("N", tpm.ColIn), tpm.InOp(5))}
	join := NewStructuralJoin(j, n, descPred("J", "N"), resid)
	rows := drain(t, ctx, join)
	if len(rows) != 1 || rows[0][1].In != 8 {
		t.Errorf("residual filter wrong: %v", rows)
	}
}

// ancJoin builds an anc-ordered structural join over two label scans.
func ancJoin(left, right PlanNode, pred tpm.StructuralPred, conds []tpm.Cmp) *StructuralJoin {
	j := NewStructuralJoin(left, right, pred, conds)
	j.AncOrder = true
	return j
}

func TestStructuralJoinAncOrder(t *testing.T) {
	ctx := testCtx(t, nestedDoc)
	// Ancestor stream on the left: Stack-Tree-Anc emits sorted by the
	// ancestor's document order, descendants in document order within.
	a := labelScan("A", "a")
	b := labelScan("B", "b")
	join := ancJoin(a, b, descPred("A", "B"), nil)
	rows := drain(t, ctx, join)
	// Pairs in ancestor order: (a1,b1), (a1,b2), (a2,b1).
	if len(rows) != 3 {
		t.Fatalf("anc join rows: %d, want 3", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1], rows[i]
		if prev[0].In > cur[0].In ||
			(prev[0].In == cur[0].In && prev[1].In > cur[1].In) {
			t.Fatalf("ancestor order broken at %d: %v", i, rows)
		}
	}
	if ctx.Counters.RowsStructural != 3 {
		t.Errorf("RowsStructural = %d, want 3", ctx.Counters.RowsStructural)
	}
	// (a2,b1) buffers in a2's self list until a1 closes.
	if join.Stats().ListMax != 1 || ctx.Counters.StructListMax != 1 {
		t.Errorf("list high-water: op=%d counter=%d, want 1", join.Stats().ListMax, ctx.Counters.StructListMax)
	}
	if join.Stats().StackMax != 2 {
		t.Errorf("stack high-water: %d, want 2", join.Stats().StackMax)
	}
}

func TestStructuralJoinAncMatchesDescEmission(t *testing.T) {
	// On every label pairing of the nested document (and with the
	// ancestor on either input side) the anc-ordered merge must produce
	// exactly the desc-ordered pairs, reordered by ancestor.
	for _, labels := range [][2]string{{"a", "b"}, {"a", "a"}, {"r", "b"}, {"r", "a"}, {"b", "a"}} {
		for _, ancLeft := range []bool{true, false} {
			mk := func(anc bool) *StructuralJoin {
				x, y := labelScan("X", labels[0]), labelScan("Y", labels[1])
				var j *StructuralJoin
				if ancLeft {
					j = NewStructuralJoin(x, y, descPred("X", "Y"), nil)
				} else {
					j = NewStructuralJoin(y, x, descPred("X", "Y"), nil)
				}
				j.AncOrder = anc
				return j
			}
			ctxD := testCtx(t, nestedDoc)
			want := map[[2]uint32]bool{}
			dj := mk(false)
			xs, ys := dj.Schema().Slot("X"), dj.Schema().Slot("Y")
			for _, r := range drain(t, ctxD, dj) {
				want[[2]uint32{r[xs].In, r[ys].In}] = true
			}
			ctxA := testCtx(t, nestedDoc)
			aj := mk(true)
			rows := drain(t, ctxA, aj)
			got := map[[2]uint32]bool{}
			var lastX, lastY uint32
			for _, r := range rows {
				x, y := r[xs].In, r[ys].In
				got[[2]uint32{x, y}] = true
				if x < lastX || (x == lastX && y < lastY) {
					t.Fatalf("%v ancLeft=%v: ancestor order broken: %v", labels, ancLeft, rows)
				}
				lastX, lastY = x, y
			}
			if len(got) != len(want) || len(got) != len(rows) {
				t.Fatalf("%v ancLeft=%v: anc %d pairs (%d rows), desc %d", labels, ancLeft, len(got), len(rows), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Errorf("%v ancLeft=%v: missing pair %v", labels, ancLeft, k)
				}
			}
		}
	}
}

func TestStructuralJoinAncChildAxis(t *testing.T) {
	ctx := testCtx(t, figure2)
	join := ancJoin(labelScan("A", "authors"), labelScan("N", "name"), childPred("A", "N"), nil)
	rows := drain(t, ctx, join)
	if len(rows) != 2 || rows[0][1].In != 4 || rows[1][1].In != 8 {
		t.Fatalf("anc child pairs wrong: %v", rows)
	}
	ctx2 := testCtx(t, figure2)
	join2 := ancJoin(labelScan("J", "journal"), labelScan("N", "name"), childPred("J", "N"), nil)
	if rows := drain(t, ctx2, join2); len(rows) != 0 {
		t.Errorf("grandchildren matched on the child axis: %v", rows)
	}
}

func TestStructuralJoinAncResidualConds(t *testing.T) {
	ctx := testCtx(t, figure2)
	resid := []tpm.Cmp{tpm.Gt(tpm.AttrOp("N", tpm.ColIn), tpm.InOp(5))}
	join := ancJoin(labelScan("J", "journal"), labelScan("N", "name"), descPred("J", "N"), resid)
	rows := drain(t, ctx, join)
	if len(rows) != 1 || rows[0][1].In != 8 {
		t.Errorf("residual filter wrong: %v", rows)
	}
}

// TestExplainAnalyzeAncStructuralJoin is the golden rendering test for an
// anc-ordered structural merge join: the emission-order marker on the
// operator line, the output-list high-water next to the stack mark, and
// the query-wide list-max counter — all byte-exact.
func TestExplainAnalyzeAncStructuralJoin(t *testing.T) {
	ctx := testCtx(t, nestedDoc)
	join := ancJoin(labelScan("A", "a"), labelScan("B", "b"), descPred("A", "B"), nil)
	plan := &XRelFor{Vars: []string{"a", "b"}, Root: join, Body: XEmpty{}}
	if _, err := Run(ctx, plan); err != nil {
		t.Fatal(err)
	}
	got := ExplainAnalyze(plan, ctx.Counters)
	want := `relfor ($a, $b)
  structural-join A//B [stack merge, descendant axis, anc-ordered]  (actual rows=3 opens=1 stack=2 list=1)
  ├─ scan A: label index (elem, "a")  (actual rows=2 opens=1)
  └─ scan B: label index (elem, "b")  (actual rows=3 opens=1 batches=1)
  return
    ()

counters: scanned=5 joined=0 structural=3 twig=0 emitted=0
          probes=0 rescans=0 sorted=0 spilled=0 stack-max=2 list-max=1 path-solutions=0
          spill-bytes=0 spill-runs=0 batches=1
`
	if got != want {
		t.Errorf("golden EXPLAIN ANALYZE mismatch:\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

// TestExplainAnalyzeBatchedStructuralJoin is the golden rendering test
// for the batch-at-a-time fields: batches= on operators with a native
// NextBatch (the merge join and its scans), sel= — residual-predicate
// selectivity — on a filtering scan, and the query-wide batch counter.
func TestExplainAnalyzeBatchedStructuralJoin(t *testing.T) {
	ctx := testCtx(t, nestedDoc)
	filtered := NewScan("B", Access{Kind: AccessLabel, Type: xasr.TypeElem, Value: "b"},
		[]tpm.Cmp{tpm.Gt(tpm.AttrOp("B", tpm.ColIn), tpm.InOp(5))})
	join := NewStructuralJoin(labelScan("A", "a"), filtered, descPred("A", "B"), nil)
	plan := &XRelFor{Vars: []string{"a", "b"}, Root: join, Body: XEmpty{}}
	if _, err := Run(ctx, plan); err != nil {
		t.Fatal(err)
	}
	got := ExplainAnalyze(plan, ctx.Counters)
	want := `relfor ($a, $b)
  structural-join A//B [stack merge, descendant axis]  (actual rows=1 opens=1 batches=1 stack=2)
  ├─ scan A: label index (elem, "a")  (actual rows=2 opens=1)
  └─ scan B: label index (elem, "b") σ(B.in > 5)  (actual rows=2 opens=1 batches=1 sel=0.67)
  return
    ()

counters: scanned=5 joined=0 structural=1 twig=0 emitted=0
          probes=0 rescans=0 sorted=0 spilled=0 stack-max=2 list-max=0 path-solutions=0
          spill-bytes=0 spill-runs=0 batches=2
`
	if got != want {
		t.Errorf("golden EXPLAIN ANALYZE mismatch:\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

func TestStructuralJoinOverFullScans(t *testing.T) {
	// The merge also runs over primary-tree streams (no label index), as
	// the text()-valued descendant side of a query would.
	ctx := testCtx(t, figure2)
	j := labelScan("J", "journal")
	all := NewScan("D", Access{Kind: AccessFull},
		[]tpm.Cmp{tpm.Eq(tpm.AttrOp("D", tpm.ColType), tpm.TypeOp(xasr.TypeText))})
	join := NewStructuralJoin(j, all, descPred("J", "D"), nil)
	rows := drain(t, ctx, join)
	if len(rows) != 3 {
		t.Errorf("text descendants of journal: %d rows, want 3", len(rows))
	}
}

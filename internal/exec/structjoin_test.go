package exec

import (
	"testing"

	"xqdb/internal/tpm"
	"xqdb/internal/xasr"
)

func descPred(anc, desc string) tpm.StructuralPred {
	return tpm.StructuralPred{
		Axis: tpm.AxisDescendant, Anc: anc, Desc: desc,
		Conds: []tpm.Cmp{
			tpm.Gt(tpm.AttrOp(desc, tpm.ColIn), tpm.AttrOp(anc, tpm.ColIn)),
			tpm.Lt(tpm.AttrOp(desc, tpm.ColOut), tpm.AttrOp(anc, tpm.ColOut)),
		},
	}
}

func childPred(anc, desc string) tpm.StructuralPred {
	return tpm.StructuralPred{
		Axis: tpm.AxisChild, Anc: anc, Desc: desc,
		Conds: []tpm.Cmp{
			tpm.Eq(tpm.AttrOp(desc, tpm.ColParentIn), tpm.AttrOp(anc, tpm.ColIn)),
		},
	}
}

func TestStructuralJoinDescendantRight(t *testing.T) {
	ctx := testCtx(t, figure2)
	// Ancestor stream on the left, descendant stream on the right: the
	// output follows the descendant's document order.
	j := labelScan("J", "journal")
	n := labelScan("N", "name")
	join := NewStructuralJoin(j, n, descPred("J", "N"), nil)
	rows := drain(t, ctx, join)
	if len(rows) != 2 {
		t.Fatalf("join rows: %d, want 2", len(rows))
	}
	// Slot order is (left, right) = (J, N); order is by N.in.
	if rows[0][1].In != 4 || rows[1][1].In != 8 {
		t.Errorf("descendant order broken: %v", rows)
	}
	if rows[0][0].Value != "journal" {
		t.Errorf("ancestor slot wrong: %v", rows[0])
	}
	if ctx.Counters.RowsStructural != 2 {
		t.Errorf("RowsStructural = %d, want 2", ctx.Counters.RowsStructural)
	}
	if ctx.Counters.RowsJoined != 0 {
		t.Errorf("RowsJoined = %d, want 0 (no loop join ran)", ctx.Counters.RowsJoined)
	}
	if join.Stats().Rows != 2 || join.Stats().StackMax != 1 {
		t.Errorf("op stats: %+v", join.Stats())
	}
}

func TestStructuralJoinAncestorRight(t *testing.T) {
	ctx := testCtx(t, figure2)
	// Descendant stream on the left: output preserves the left order —
	// the planner's order-preserving case.
	n := labelScan("N", "name")
	j := labelScan("J", "journal")
	join := NewStructuralJoin(n, j, descPred("J", "N"), nil)
	rows := drain(t, ctx, join)
	if len(rows) != 2 {
		t.Fatalf("join rows: %d, want 2", len(rows))
	}
	// Slot order is (N, J); order is by N.in.
	if rows[0][0].In != 4 || rows[1][0].In != 8 {
		t.Errorf("left order not preserved: %v", rows)
	}
	if rows[0][1].Value != "journal" {
		t.Errorf("ancestor slot wrong: %v", rows[0])
	}
}

func TestStructuralJoinChildAxis(t *testing.T) {
	ctx := testCtx(t, figure2)
	// authors (in=3) is the parent of the two name elements; journal is
	// an ancestor but not the parent, so the child axis must skip it.
	a := labelScan("A", "authors")
	n := labelScan("N", "name")
	join := NewStructuralJoin(a, n, childPred("A", "N"), nil)
	rows := drain(t, ctx, join)
	if len(rows) != 2 {
		t.Fatalf("child join rows: %d, want 2", len(rows))
	}
	if rows[0][0].Value != "authors" || rows[0][1].In != 4 || rows[1][1].In != 8 {
		t.Errorf("child pairs wrong: %v", rows)
	}

	// The same join against journal parents yields nothing (names are
	// grandchildren of journal).
	ctx2 := testCtx(t, figure2)
	join2 := NewStructuralJoin(labelScan("J", "journal"), labelScan("N", "name"), childPred("J", "N"), nil)
	if rows := drain(t, ctx2, join2); len(rows) != 0 {
		t.Errorf("grandchildren matched on the child axis: %v", rows)
	}
}

// nestedDoc has nested same-label ancestors so the stack grows beyond one
// entry: a1 contains a2; a1 has descendants b1, b2; a2 has descendant b1.
const nestedDoc = `<r><a><a><b/></a><b/></a><b/></r>`

func TestStructuralJoinNestedAncestors(t *testing.T) {
	ctx := testCtx(t, nestedDoc)
	a := labelScan("A", "a")
	b := labelScan("B", "b")
	join := NewStructuralJoin(a, b, descPred("A", "B"), nil)
	rows := drain(t, ctx, join)
	// Pairs: (a1,b1), (a2,b1), (a1,b2) — b3 is outside both a's.
	if len(rows) != 3 {
		t.Fatalf("nested join rows: %d, want 3", len(rows))
	}
	// Descendant order with ancestors bottom-up (outermost first).
	if !(rows[0][0].In < rows[1][0].In && rows[0][1].In == rows[1][1].In) {
		t.Errorf("stack emission order wrong: %v", rows)
	}
	if join.Stats().StackMax != 2 {
		t.Errorf("stack high-water mark = %d, want 2", join.Stats().StackMax)
	}
	if ctx.Counters.StructStackMax != 2 {
		t.Errorf("counter stack max = %d, want 2", ctx.Counters.StructStackMax)
	}
}

func TestStructuralJoinMatchesNLJoin(t *testing.T) {
	// On every (anc, desc) label pairing of the nested document the merge
	// must produce exactly the nested-loops pairs (as a set; the merge
	// emits in descendant order, NL in ancestor order).
	for _, labels := range [][2]string{{"a", "b"}, {"a", "a"}, {"r", "b"}, {"b", "a"}} {
		ctxNL := testCtx(t, nestedDoc)
		conds := descPred("X", "Y").Conds
		nl := NewNLJoin(labelScan("X", labels[0]), labelScan("Y", labels[1]), conds)
		want := map[[2]uint32]bool{}
		for _, r := range drain(t, ctxNL, nl) {
			want[[2]uint32{r[0].In, r[1].In}] = true
		}

		ctxSJ := testCtx(t, nestedDoc)
		sj := NewStructuralJoin(labelScan("X", labels[0]), labelScan("Y", labels[1]), descPred("X", "Y"), nil)
		got := map[[2]uint32]bool{}
		rows := drain(t, ctxSJ, sj)
		for _, r := range rows {
			got[[2]uint32{r[0].In, r[1].In}] = true
		}
		if len(got) != len(want) || len(got) != len(rows) {
			t.Fatalf("%v: structural %d pairs (%d rows), NL %d pairs", labels, len(got), len(rows), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Errorf("%v: missing pair %v", labels, k)
			}
		}
	}
}

func TestStructuralJoinResidualConds(t *testing.T) {
	ctx := testCtx(t, figure2)
	// Residual condition on the emitted pair: only the second name.
	j := labelScan("J", "journal")
	n := labelScan("N", "name")
	resid := []tpm.Cmp{tpm.Gt(tpm.AttrOp("N", tpm.ColIn), tpm.InOp(5))}
	join := NewStructuralJoin(j, n, descPred("J", "N"), resid)
	rows := drain(t, ctx, join)
	if len(rows) != 1 || rows[0][1].In != 8 {
		t.Errorf("residual filter wrong: %v", rows)
	}
}

func TestStructuralJoinOverFullScans(t *testing.T) {
	// The merge also runs over primary-tree streams (no label index), as
	// the text()-valued descendant side of a query would.
	ctx := testCtx(t, figure2)
	j := labelScan("J", "journal")
	all := NewScan("D", Access{Kind: AccessFull},
		[]tpm.Cmp{tpm.Eq(tpm.AttrOp("D", tpm.ColType), tpm.TypeOp(xasr.TypeText))})
	join := NewStructuralJoin(j, all, descPred("J", "D"), nil)
	rows := drain(t, ctx, join)
	if len(rows) != 3 {
		t.Errorf("text descendants of journal: %d rows, want 3", len(rows))
	}
}

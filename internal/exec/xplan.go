package exec

import (
	"fmt"

	"xqdb/internal/naive"
	"xqdb/internal/xasr"
	"xqdb/internal/xmltok"
	"xqdb/internal/xq"
)

// XPlan is the executable form of a TPM plan: the structural operators
// stay (construction, sequence, output), while every relfor carries a
// physical operator tree chosen by the optimizer.
type XPlan interface {
	isXPlan()
}

// XEmpty produces nothing.
type XEmpty struct{}

// XText emits a literal text node.
type XText struct {
	Content string
}

// XEmit serializes the subtree currently bound to Var.
type XEmit struct {
	Var string
}

// XConstr wraps Body's output in an element.
type XConstr struct {
	Label string
	Body  XPlan
}

// XSeq concatenates its items' output.
type XSeq struct {
	Items []XPlan
}

// XRelFor executes the physical Root plan; each result row binds Vars (the
// row's slots correspond 1:1 to Vars) and evaluates Body. With no Vars it
// implements the nullary pass-fail check: Body runs once if the algebra
// result is nonempty, and the iterator stops after the first row (an
// early-out the relational semantics licenses).
type XRelFor struct {
	Vars []string
	Root PlanNode
	Body XPlan
}

// XIf evaluates a non-TPM-able condition per binding using the milestone 2
// machinery, then runs Then.
type XIf struct {
	Cond xq.Cond
	Then XPlan
}

func (XEmpty) isXPlan()   {}
func (*XText) isXPlan()   {}
func (*XEmit) isXPlan()   {}
func (*XConstr) isXPlan() {}
func (*XSeq) isXPlan()    {}
func (*XRelFor) isXPlan() {}
func (*XIf) isXPlan()     {}

// Run executes an XPlan and returns the serialized XML result.
func Run(ctx *Ctx, p XPlan) ([]byte, error) {
	if ctx.Env == nil {
		ctx.Env = Env{}
	}
	return run(ctx, p, nil)
}

func run(ctx *Ctx, p XPlan, out []byte) ([]byte, error) {
	if err := ctx.check(); err != nil {
		return out, err
	}
	switch p := p.(type) {
	case XEmpty:
		return out, nil
	case *XText:
		return xmltok.AppendEscaped(out, p.Content), nil
	case *XEmit:
		b, ok := ctx.Env[p.Var]
		if !ok {
			return out, fmt.Errorf("exec: unbound variable $%s", p.Var)
		}
		ctx.Counters.RowsEmitted++
		return ctx.Store.AppendSubtree(out, b.In)
	case *XConstr:
		inner, err := run(ctx, p.Body, nil)
		if err != nil {
			return out, err
		}
		if len(inner) == 0 {
			out = append(out, '<')
			out = append(out, p.Label...)
			return append(out, '/', '>'), nil
		}
		out = append(out, '<')
		out = append(out, p.Label...)
		out = append(out, '>')
		out = append(out, inner...)
		out = append(out, '<', '/')
		out = append(out, p.Label...)
		return append(out, '>'), nil
	case *XSeq:
		var err error
		for _, item := range p.Items {
			out, err = run(ctx, item, out)
			if err != nil {
				return out, err
			}
		}
		return out, nil
	case *XRelFor:
		return runRelFor(ctx, p, out)
	case *XIf:
		ok, err := evalRuntimeCond(ctx, p.Cond)
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		return run(ctx, p.Then, out)
	default:
		return out, fmt.Errorf("exec: unknown plan %T", p)
	}
}

func runRelFor(ctx *Ctx, p *XRelFor, out []byte) ([]byte, error) {
	it, err := p.Root.open(ctx, nil, nil)
	if err != nil {
		return out, err
	}
	defer it.Close()

	if len(p.Vars) == 0 {
		// Nullary pass-fail: nonempty result means "true". Pull through the
		// row contract — the batched operators' row views stop after one
		// batch, keeping the early-out cheap.
		_, ok, err := it.Next()
		if err != nil || !ok {
			return out, err
		}
		return run(ctx, p.Body, out)
	}

	// Drive a batched root through a row view: the operator pipeline moves
	// batches, only the final binding loop walks rows.
	next := it.Next
	if bi, ok := it.(batchIter); ok && !ctx.RowMode {
		v := &rowView{src: bi}
		next = v.next
	}

	// Save shadowed bindings so nested relfors over the same names (from
	// separate query branches) restore correctly.
	saved := make([]Binding, len(p.Vars))
	had := make([]bool, len(p.Vars))
	for i, v := range p.Vars {
		saved[i], had[i] = ctx.Env[v]
	}
	defer func() {
		for i, v := range p.Vars {
			if had[i] {
				ctx.Env[v] = saved[i]
			} else {
				delete(ctx.Env, v)
			}
		}
	}()

	for {
		row, ok, err := next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		if len(row) < len(p.Vars) {
			return out, fmt.Errorf("exec: relfor row has %d slots for %d vars", len(row), len(p.Vars))
		}
		for i, v := range p.Vars {
			ctx.Env[v] = Binding{In: row[i].In, Out: row[i].Out}
		}
		out, err = run(ctx, p.Body, out)
		if err != nil {
			return out, err
		}
	}
}

// evalRuntimeCond evaluates a non-TPM condition by materializing the free
// variables' tuples and delegating to the milestone 2 evaluator.
func evalRuntimeCond(ctx *Ctx, c xq.Cond) (bool, error) {
	bindings := map[string]xasr.Tuple{}
	for v := range xq.FreeVarsCond(c) {
		b, ok := ctx.Env[v]
		if !ok {
			return false, fmt.Errorf("exec: unbound variable $%s in condition", v)
		}
		t, found, err := ctx.Store.Lookup(b.In)
		if err != nil {
			return false, err
		}
		if !found {
			return false, fmt.Errorf("exec: dangling binding $%s -> in=%d", v, b.In)
		}
		bindings[v] = t
	}
	root, err := ctx.Store.Root()
	if err != nil {
		return false, err
	}
	bindings[xq.RootVar] = root
	ev := naive.New(ctx.Store)
	ev.Deadline = ctx.Budget.Deadline()
	return ev.CondHolds(c, bindings)
}

package exec

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"xqdb/internal/limit"
	"xqdb/internal/tpm"
)

// bigTwigDoc builds a flat document with n <a><b>i</b><c>i</c></a> entries:
// enough (A,B,C) twig matches that the path-solution lists overflow a tiny
// sort budget and spill.
func bigTwigDoc(n int) string {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<a><b>b%06d</b><c>c%06d</c></a>", i, i)
	}
	b.WriteString("</r>")
	return b.String()
}

// nestedDoc builds depth self-nested <a> elements, each level carrying
// width <b> leaves: the (A anc, B desc) pair count grows as depth×width,
// and the nesting keeps non-bottom anc output lists populated.
func deepNestedDoc(depth, width int) string {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
		for j := 0; j < width; j++ {
			fmt.Fprintf(&b, "<b>x%03d</b>", j)
		}
	}
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	b.WriteString("</r>")
	return b.String()
}

// tinyCtx is testCtx with a spill-forcing sort budget and a per-query
// memory quota.
func tinyCtx(t *testing.T, doc string, budget int, dl *limit.Deadline) *Ctx {
	t.Helper()
	ctx := testCtx(t, doc)
	ctx.SortBudget = budget
	ctx.Budget = limit.NewBudget(budget, dl)
	return ctx
}

func tempFileCount(t *testing.T, ctx *Ctx) int {
	t.Helper()
	ents, err := os.ReadDir(ctx.TempDir)
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

// TestTwigJoinEarlyCloseCleansUp closes a spilling twig join mid-stream —
// after the first row, while solution buffers, the accumulator and the
// output sorter all hold run files — and asserts every temp file is
// removed and every budget reservation released.
func TestTwigJoinEarlyCloseCleansUp(t *testing.T) {
	labels := map[string]string{"A": "a", "B": "b", "C": "c"}
	preds := []tpm.StructuralPred{descPred("A", "B"), descPred("A", "C")}
	rels := []string{"A", "B", "C"}
	ctx := tinyCtx(t, bigTwigDoc(1500), 4<<10, nil)

	j := buildTwig(t, preds, rels, labels, nil, rels)
	it, err := j.open(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("early close: %v", err)
	}
	if ctx.Counters.SpilledBytes == 0 {
		t.Fatal("twig never spilled — early close not exercised on the spill path")
	}
	if n := tempFileCount(t, ctx); n != 0 {
		t.Errorf("early close leaked %d temp files", n)
	}
	if u := ctx.Budget.InUse(); u != 0 {
		t.Errorf("early close leaked %d budget bytes", u)
	}
}

// TestStructAncEarlyCloseCleansUp does the same for the anc-ordered
// structural join: close while spilled list segments are still queued.
func TestStructAncEarlyCloseCleansUp(t *testing.T) {
	ctx := tinyCtx(t, deepNestedDoc(60, 40), 4<<10, nil)
	join := NewStructuralJoin(labelScan("A", "a"), labelScan("B", "b"), descPred("A", "B"), nil)
	join.AncOrder = true
	it, err := join.open(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Drain until the lists have spilled (bottom pairs stream out one per
	// descendant, so plenty of the join remains), then close mid-stream.
	rows := 0
	for ctx.Counters.SpilledTuples == 0 && rows < 500 {
		_, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", rows, ok, err)
		}
		rows++
	}
	if err := it.Close(); err != nil {
		t.Fatalf("early close: %v", err)
	}
	if ctx.Counters.SpilledTuples == 0 {
		t.Fatal("anc lists never spilled — early close not exercised on the spill path")
	}
	if n := tempFileCount(t, ctx); n != 0 {
		t.Errorf("early close leaked %d temp files", n)
	}
	if u := ctx.Budget.InUse(); u != 0 {
		t.Errorf("early close leaked %d budget bytes", u)
	}
}

// TestTwigJoinDeadlineAborts is the pathological-twig regression: a twig
// whose merge phase is far larger than its deadline must abort with the
// timeout error promptly (the getNext/merge loops poll the deadline, so
// the abort latency is bounded by one merge step, not by the join size) —
// and must clean up its temp files and reservations on Close.
func TestTwigJoinDeadlineAborts(t *testing.T) {
	labels := map[string]string{"A": "a", "B": "b", "C": "c"}
	preds := []tpm.StructuralPred{descPred("A", "B"), descPred("A", "C")}
	rels := []string{"A", "B", "C"}
	ctx := tinyCtx(t, bigTwigDoc(3000), 4<<10, limit.After(time.Millisecond))

	j := buildTwig(t, preds, rels, labels, nil, rels)
	it, err := j.open(ctx, nil, nil)
	if err == nil {
		start := time.Now()
		for {
			_, ok, nerr := it.Next()
			if nerr != nil {
				err = nerr
				break
			}
			if !ok {
				break
			}
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("deadline abort took %v — polling too coarse", elapsed)
		}
		if cerr := it.Close(); cerr != nil {
			t.Errorf("close after abort: %v", cerr)
		}
	}
	if !errors.Is(err, limit.ErrTimeout) {
		t.Fatalf("pathological twig finished with %v, want %v", err, limit.ErrTimeout)
	}
	if n := tempFileCount(t, ctx); n != 0 {
		t.Errorf("deadline abort leaked %d temp files", n)
	}
	if u := ctx.Budget.InUse(); u != 0 {
		t.Errorf("deadline abort leaked %d budget bytes", u)
	}
}

// TestStructAncDeadlineAborts covers the anc cascade's polling: the merge
// loop must notice an expired deadline even while pops and list cascades
// dominate, and Close must release everything.
func TestStructAncDeadlineAborts(t *testing.T) {
	ctx := tinyCtx(t, deepNestedDoc(120, 60), 4<<10, limit.After(time.Millisecond))
	join := NewStructuralJoin(labelScan("A", "a"), labelScan("B", "b"), descPred("A", "B"), nil)
	join.AncOrder = true
	it, err := join.open(ctx, nil, nil)
	if err == nil {
		for {
			_, ok, nerr := it.Next()
			if nerr != nil {
				err = nerr
				break
			}
			if !ok {
				break
			}
		}
		if cerr := it.Close(); cerr != nil {
			t.Errorf("close after abort: %v", cerr)
		}
	}
	if !errors.Is(err, limit.ErrTimeout) {
		t.Fatalf("anc join finished with %v, want %v", err, limit.ErrTimeout)
	}
	if n := tempFileCount(t, ctx); n != 0 {
		t.Errorf("deadline abort leaked %d temp files", n)
	}
	if u := ctx.Budget.InUse(); u != 0 {
		t.Errorf("deadline abort leaked %d budget bytes", u)
	}
}

package exec

import (
	"strings"
	"sync"
	"testing"

	"xqdb/internal/store"
	"xqdb/internal/tpm"
	"xqdb/internal/xasr"
)

// clonePlanFixture builds a small composite plan exercising every cloneable
// operator family over a loaded store: scans under filters, loop joins,
// structural join, twig join, project, sort, and an exchange.
func clonePlanFixture(t *testing.T) (*store.Store, XPlan) {
	t.Helper()
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 50; i++ {
		b.WriteString("<a><b><c>x</c></b></a>")
	}
	b.WriteString("</r>")
	st, err := store.Open(t.TempDir(), store.Options{LabelStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.LoadString(b.String()); err != nil {
		t.Fatal(err)
	}

	scanA := NewScan("a", Access{Kind: AccessLabel, Type: xasr.TypeElem, Value: "a"}, nil)
	scanB := NewScan("b", Access{Kind: AccessLabel, Type: xasr.TypeElem, Value: "b"}, nil)
	sj := NewStructuralJoin(scanA, scanB, tpm.StructuralPred{Anc: "a", Desc: "b", Axis: tpm.AxisDescendant}, nil)
	srt := NewSort(sj, []string{"a", "b"}, false)
	proj := NewProject(srt, []string{"a", "b"}, true)
	return st, &XRelFor{Vars: []string{"x", "y"}, Root: proj, Body: &XEmit{Var: "y"}}
}

// TestClonePlanEquivalence runs a plan and its clone, asserting identical
// output and that the clone starts from zero runtime state.
func TestClonePlanEquivalence(t *testing.T) {
	st, plan := clonePlanFixture(t)
	tmp, err := st.TempDir()
	if err != nil {
		t.Fatal(err)
	}

	clone := ClonePlan(plan)
	ctx1 := &Ctx{Store: st, TempDir: tmp, Env: Env{}}
	out1, err := Run(ctx1, plan)
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := &Ctx{Store: st, TempDir: tmp, Env: Env{}}
	out2, err := Run(ctx2, clone)
	if err != nil {
		t.Fatal(err)
	}
	if string(out1) != string(out2) {
		t.Fatalf("clone output differs:\n%s\nvs\n%s", out1, out2)
	}
	if len(out1) == 0 {
		t.Fatal("fixture produced no output")
	}
	if ctx1.Counters != ctx2.Counters {
		t.Errorf("clone counters differ: %+v vs %+v", ctx1.Counters, ctx2.Counters)
	}

	// A clone taken AFTER execution must still start from fresh stats.
	fresh := ClonePlan(plan).(*XRelFor)
	var walk func(n PlanNode)
	walk = func(n PlanNode) {
		if st := n.Stats(); *st != (OpStats{}) {
			t.Errorf("clone of executed plan carries stats on %s: %+v", n.Describe(), *st)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(fresh.Root)

	// Explain of a clone is byte-identical: clones share all compile-time
	// fields the renderer reads.
	if Explain(plan) != Explain(clone) {
		t.Errorf("EXPLAIN differs between plan and clone")
	}
}

// TestClonePlanConcurrent executes many clones of one pristine plan in
// parallel — the plan-cache execution pattern. Run under -race this proves
// cached plans share no mutable state across executions.
func TestClonePlanConcurrent(t *testing.T) {
	st, plan := clonePlanFixture(t)
	tmp, err := st.TempDir()
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Ctx{Store: st, TempDir: tmp, Env: Env{}}
	want, err := Run(ctx, ClonePlan(plan))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				ctx := &Ctx{Store: st, TempDir: tmp, Env: Env{}}
				got, err := Run(ctx, ClonePlan(plan))
				if err != nil {
					errs <- err
					return
				}
				if string(got) != string(want) {
					t.Errorf("concurrent clone output differs")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCloneCoversExchange clones a plan with an exchange over a label scan
// and checks the runtime tallies are not shared.
func TestCloneCoversExchange(t *testing.T) {
	scan := NewScan("a", Access{Kind: AccessLabel, Type: xasr.TypeElem, Value: "a"}, nil)
	ex := NewExchange(scan, 2)
	ex.MorselRows = 1
	plan := &XRelFor{Vars: []string{"x"}, Root: ex, Body: &XEmit{Var: "x"}}
	c := ClonePlan(plan).(*XRelFor)
	ce, ok := c.Root.(*Exchange)
	if !ok {
		t.Fatalf("clone root is %T, want *Exchange", c.Root)
	}
	if ce == ex || ce.Child == scan {
		t.Fatal("clone shares exchange or scan node with original")
	}
	if ce.DOP != 2 || ce.MorselRows != 1 {
		t.Fatalf("clone lost exchange config: %+v", ce)
	}
}

package exec

import (
	"strings"
	"testing"

	"xqdb/internal/tpm"
	"xqdb/internal/xasr"
)

// twigDoc exercises branching, parent/child vs descendant edges and
// nesting: two a-subtrees with b/c descendants, one a missing c entirely,
// plus nested a's sharing descendants.
const twigDoc = `<r>` +
	`<a><b>1</b><x><c>p</c></x></a>` +
	`<a><b>2</b><b>3</b></a>` +
	`<a><a><b>4</b><c>q</c></a><c>r</c></a>` +
	`</r>`

// buildTwig assembles a twig over label streams: spec maps each alias to
// (label, parent alias, axis). Root has parent "".
func buildTwig(t *testing.T, preds []tpm.StructuralPred, rels []string, labels map[string]string, conds []tpm.Cmp, outOrder []string) *TwigJoin {
	t.Helper()
	tw, ok := tpm.AssembleTwig(preds, rels)
	if !ok {
		t.Fatalf("twig assembly failed for %v", rels)
	}
	var streams []PlanNode
	for _, n := range tw.Nodes {
		streams = append(streams, labelScan(n.Alias, labels[n.Alias]))
	}
	return NewTwigJoin(streams, *tw, conds, outOrder)
}

// nlReference evaluates the same pattern with chained nested-loops joins
// (the ground truth) and returns the set of per-alias in-assignments.
func nlReference(t *testing.T, doc string, preds []tpm.StructuralPred, rels []string, labels map[string]string) map[string]bool {
	t.Helper()
	ctx := testCtx(t, doc)
	var node PlanNode = labelScan(rels[0], labels[rels[0]])
	for _, r := range rels[1:] {
		var conds []tpm.Cmp
		for _, sp := range preds {
			if sp.Desc == r || sp.Anc == r {
				conds = append(conds, sp.Conds...)
			}
		}
		// Keep only conds whose other side is already present.
		var usable []tpm.Cmp
		for _, c := range conds {
			ok := true
			for _, cr := range c.Rels() {
				if cr != r && node.Schema().Slot(cr) < 0 {
					ok = false
				}
			}
			if ok {
				usable = append(usable, c)
			}
		}
		node = NewNLJoin(node, labelScan(r, labels[r]), usable)
	}
	want := map[string]bool{}
	schema := node.Schema()
	for _, row := range drain(t, ctx, node) {
		var kb []byte
		for _, a := range rels {
			in := row[schema.Slot(a)].In
			kb = append(kb, byte(in>>24), byte(in>>16), byte(in>>8), byte(in))
		}
		want[string(kb)] = true
	}
	return want
}

func twigKey(row Row, schema *Schema, rels []string) string {
	var kb []byte
	for _, a := range rels {
		in := row[schema.Slot(a)].In
		kb = append(kb, byte(in>>24), byte(in>>16), byte(in>>8), byte(in))
	}
	return string(kb)
}

func TestTwigJoinMatchesNLPipeline(t *testing.T) {
	labels := map[string]string{"A": "a", "B": "b", "C": "c", "R": "r"}
	cases := []struct {
		name  string
		preds []tpm.StructuralPred
		rels  []string
	}{
		{"branch-desc", []tpm.StructuralPred{descPred("A", "B"), descPred("A", "C")}, []string{"A", "B", "C"}},
		{"chain", []tpm.StructuralPred{descPred("R", "A"), descPred("A", "B")}, []string{"R", "A", "B"}},
		{"mixed-axes", []tpm.StructuralPred{childPred("A", "B"), descPred("A", "C")}, []string{"A", "B", "C"}},
		{"deep-branch", []tpm.StructuralPred{descPred("R", "A"), descPred("A", "B"), descPred("A", "C")}, []string{"R", "A", "B", "C"}},
		{"self-nested", []tpm.StructuralPred{descPred("A", "B")}, []string{"A", "B"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := nlReference(t, twigDoc, c.preds, c.rels, labels)
			ctx := testCtx(t, twigDoc)
			j := buildTwig(t, c.preds, c.rels, labels, nil, c.rels)
			rows := drain(t, ctx, j)
			got := map[string]bool{}
			for _, r := range rows {
				got[twigKey(r, j.Schema(), c.rels)] = true
			}
			if len(got) != len(rows) {
				t.Errorf("twig emitted %d rows, %d distinct (duplicates)", len(rows), len(got))
			}
			if len(got) != len(want) {
				t.Fatalf("twig %d matches, NL pipeline %d", len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Errorf("missing match %x", k)
				}
			}
			if len(want) > 0 && ctx.Counters.RowsTwig == 0 {
				t.Error("RowsTwig not counted")
			}
		})
	}
}

func TestTwigJoinOutputOrder(t *testing.T) {
	// OutOrder drives lexicographic emission by in-labels.
	labels := map[string]string{"A": "a", "B": "b", "C": "c"}
	preds := []tpm.StructuralPred{descPred("A", "B"), descPred("A", "C")}
	ctx := testCtx(t, twigDoc)
	j := buildTwig(t, preds, []string{"A", "B", "C"}, labels, nil, []string{"A", "B", "C"})
	rows := drain(t, ctx, j)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	sa, sb, sc := j.Schema().Slot("A"), j.Schema().Slot("B"), j.Schema().Slot("C")
	for i := 1; i < len(rows); i++ {
		p, q := rows[i-1], rows[i]
		pk := [3]uint32{p[sa].In, p[sb].In, p[sc].In}
		qk := [3]uint32{q[sa].In, q[sb].In, q[sc].In}
		if !(pk[0] < qk[0] || (pk[0] == qk[0] && (pk[1] < qk[1] || (pk[1] == qk[1] && pk[2] <= qk[2])))) {
			t.Fatalf("rows out of order at %d: %v then %v", i, pk, qk)
		}
	}

	// Reversed OutOrder flips the emission order.
	ctx2 := testCtx(t, twigDoc)
	j2 := buildTwig(t, preds, []string{"A", "B", "C"}, labels, nil, []string{"C", "B", "A"})
	rows2 := drain(t, ctx2, j2)
	if len(rows2) != len(rows) {
		t.Fatalf("order change altered row count: %d vs %d", len(rows2), len(rows))
	}
	for i := 1; i < len(rows2); i++ {
		if rows2[i-1][sc].In > rows2[i][sc].In {
			t.Fatalf("C-order broken at %d", i)
		}
	}
}

func TestTwigJoinResidualConds(t *testing.T) {
	labels := map[string]string{"A": "a", "B": "b", "C": "c"}
	preds := []tpm.StructuralPred{descPred("A", "B"), descPred("A", "C")}
	// Residual condition on the merged row: only b's after in 10.
	resid := []tpm.Cmp{tpm.Gt(tpm.AttrOp("B", tpm.ColIn), tpm.InOp(10))}
	ctx := testCtx(t, twigDoc)
	j := buildTwig(t, preds, []string{"A", "B", "C"}, labels, resid, []string{"A", "B", "C"})
	rows := drain(t, ctx, j)
	sb := j.Schema().Slot("B")
	for _, r := range rows {
		if r[sb].In <= 10 {
			t.Errorf("residual filter leaked row with B.in=%d", r[sb].In)
		}
	}
	ctxAll := testCtx(t, twigDoc)
	all := drain(t, ctxAll, buildTwig(t, preds, []string{"A", "B", "C"}, labels, nil, []string{"A", "B", "C"}))
	kept := 0
	for _, r := range all {
		if r[sb].In > 10 {
			kept++
		}
	}
	if len(rows) != kept {
		t.Errorf("residual filter dropped too much: %d vs %d", len(rows), kept)
	}
}

func TestTwigJoinEmptyBranchYieldsNothing(t *testing.T) {
	// One branch's label does not exist: the twig has no match and the
	// other streams must not be drained tuple by tuple for nothing.
	labels := map[string]string{"A": "a", "B": "b", "Z": "nosuch"}
	preds := []tpm.StructuralPred{descPred("A", "B"), descPred("A", "Z")}
	ctx := testCtx(t, twigDoc)
	j := buildTwig(t, preds, []string{"A", "B", "Z"}, labels, nil, []string{"A", "B", "Z"})
	if rows := drain(t, ctx, j); len(rows) != 0 {
		t.Fatalf("expected no matches, got %d", len(rows))
	}
	if ctx.Counters.TwigPathSolutions != 0 {
		t.Errorf("buffered %d path solutions for an empty twig", ctx.Counters.TwigPathSolutions)
	}
}

func TestTwigJoinStackStats(t *testing.T) {
	labels := map[string]string{"A": "a", "B": "b"}
	preds := []tpm.StructuralPred{descPred("A", "B")}
	ctx := testCtx(t, twigDoc)
	j := buildTwig(t, preds, []string{"A", "B"}, labels, nil, []string{"A", "B"})
	rows := drain(t, ctx, j)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// twigDoc nests a inside a: the A stack must have reached depth 2.
	if j.Stats().StackMax != 2 {
		t.Errorf("stack high-water = %d, want 2", j.Stats().StackMax)
	}
	if ctx.Counters.StructStackMax != 2 {
		t.Errorf("counter stack max = %d", ctx.Counters.StructStackMax)
	}
	if ctx.Counters.TwigPathSolutions == 0 {
		t.Error("no path solutions counted")
	}
	if j.Stats().Opens != 1 || j.Stats().Rows != int64(len(rows)) {
		t.Errorf("op stats: %+v", j.Stats())
	}
}

func TestExplainNodeKaryGlyphs(t *testing.T) {
	// A 4-node twig renders all its streams with branch glyphs: every
	// stream beyond the first gets a rail or corner, the last a corner.
	labels := map[string]string{"R": "r", "A": "a", "B": "b", "C": "c"}
	preds := []tpm.StructuralPred{descPred("R", "A"), descPred("R", "B"), descPred("R", "C")}
	tw, ok := tpm.AssembleTwig(preds, []string{"R", "A", "B", "C"})
	if !ok {
		t.Fatal("assembly failed")
	}
	var streams []PlanNode
	for _, n := range tw.Nodes {
		streams = append(streams, labelScan(n.Alias, labels[n.Alias]))
	}
	j := NewTwigJoin(streams, *tw, nil, []string{"R", "A", "B", "C"})
	var b strings.Builder
	ExplainNode(&b, j, 1)
	out := b.String()
	if strings.Count(out, "├─ ") != 3 || strings.Count(out, "└─ ") != 1 {
		t.Errorf("k-ary glyphs wrong:\n%s", out)
	}
	for _, want := range []string{"twig-join", "scan R", "scan A", "scan B", "scan C"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Nested children under a non-last child keep the │ rail.
	inner := NewStructuralJoin(labelScan("X", "a"), labelScan("Y", "b"), descPred("X", "Y"), nil)
	var b2 strings.Builder
	ExplainNode(&b2, inner, 0)
	if strings.Count(b2.String(), "├─ ") != 1 || strings.Count(b2.String(), "└─ ") != 1 {
		t.Errorf("binary glyphs wrong:\n%s", b2.String())
	}
}

// TestTwigJoinAsJoinInput wires a TwigJoin as the leading input stream of
// the binary join operators — the partial-twig composite shape — and
// cross-checks the result against a pure NL pipeline over the same
// predicates.
func TestTwigJoinAsJoinInput(t *testing.T) {
	labels := map[string]string{"A": "a", "B": "b", "C": "c"}
	preds := []tpm.StructuralPred{descPred("A", "B")}
	full := []tpm.StructuralPred{descPred("A", "B"), descPred("A", "C")}
	want := nlReference(t, twigDoc, full, []string{"A", "B", "C"}, labels)

	// NL join on top: the uncovered relation joins by residual conditions.
	ctx := testCtx(t, twigDoc)
	twig := buildTwig(t, preds, []string{"A", "B"}, labels, nil, []string{"A", "B"})
	nl := NewNLJoin(twig, labelScan("C", "c"), descPred("A", "C").Conds)
	got := map[string]bool{}
	for _, r := range drain(t, ctx, nl) {
		got[twigKey(r, nl.Schema(), []string{"A", "B", "C"})] = true
	}
	if len(got) != len(want) {
		t.Fatalf("twig-under-NL: %d matches, NL pipeline %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing match %x", k)
		}
	}
	if ctx.Counters.RowsTwig == 0 || ctx.Counters.RowsJoined == 0 {
		t.Errorf("counters: twig rows and joined rows must both tally: %+v", ctx.Counters)
	}

	// INL join on top: the inner access is parameterized by a twig alias
	// (the vartuple-prefix contract lets bounds reference any slot).
	ctx2 := testCtx(t, twigDoc)
	twig2 := buildTwig(t, preds, []string{"A", "B"}, labels, nil, []string{"A", "B"})
	inner := NewScan("C", Access{
		Kind: AccessLabel, Type: xasr.TypeElem, Value: "c",
		Bounded: true, Lo: tpm.AttrOp("A", tpm.ColIn), LoAdd: 1, Hi: tpm.AttrOp("A", tpm.ColOut),
	}, nil)
	inl := NewINLJoin(twig2, inner, nil)
	got2 := map[string]bool{}
	for _, r := range drain(t, ctx2, inl) {
		got2[twigKey(r, inl.Schema(), []string{"A", "B", "C"})] = true
	}
	if len(got2) != len(want) {
		t.Fatalf("twig-under-INL: %d matches, NL pipeline %d", len(got2), len(want))
	}
}

// TestTwigJoinSubsetOutOrder checks the partial-twig emission contract: an
// OutOrder naming a strict subset of twig nodes sorts by exactly those
// in-labels, with ties grouped (adjacent), so a downstream dedup
// projection over that prefix stays correct.
func TestTwigJoinSubsetOutOrder(t *testing.T) {
	labels := map[string]string{"A": "a", "B": "b", "C": "c"}
	preds := []tpm.StructuralPred{descPred("A", "B"), descPred("A", "C")}
	ctx := testCtx(t, twigDoc)
	j := buildTwig(t, preds, []string{"A", "B", "C"}, labels, nil, []string{"A"})
	rows := drain(t, ctx, j)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	sa := j.Schema().Slot("A")
	seen := map[uint32]bool{}
	for i, r := range rows {
		in := r[sa].In
		if i > 0 && rows[i-1][sa].In != in && seen[in] {
			t.Fatalf("A.in=%d reappears after a different value: ties not grouped", in)
		}
		if i > 0 && rows[i-1][sa].In > in {
			t.Fatalf("A order broken at %d", i)
		}
		seen[in] = true
	}
}

// TestExplainAnalyzeTwigUnderJoin is the golden rendering test for a
// twig-under-INL composite plan: branch glyphs for the k-ary operator
// under the parent join's rail, per-stream actual rows, and the twig row
// count propagated through the parent join's tallies.
func TestExplainAnalyzeTwigUnderJoin(t *testing.T) {
	ctx := testCtx(t, twigDoc)
	labels := map[string]string{"A": "a", "B": "b"}
	twig := buildTwig(t, []tpm.StructuralPred{descPred("A", "B")}, []string{"A", "B"}, labels, nil, []string{"A", "B"})
	inner := NewScan("C", Access{
		Kind: AccessLabel, Type: xasr.TypeElem, Value: "c",
		Bounded: true, Lo: tpm.AttrOp("A", tpm.ColIn), LoAdd: 1, Hi: tpm.AttrOp("A", tpm.ColOut),
	}, nil)
	inl := NewINLJoin(twig, inner, nil)
	plan := &XRelFor{Vars: []string{"a", "b", "c"}, Root: inl, Body: XEmpty{}}
	if _, err := Run(ctx, plan); err != nil {
		t.Fatal(err)
	}
	got := ExplainAnalyze(plan, ctx.Counters)
	want := `relfor ($a, $b, $c)
  inl-join → scan C: label index (elem, "c") in ∈ [A.in+1, A.out)  (actual rows=4 opens=1)
  ├─ twig-join A[//B] [holistic, 2 streams]  (actual rows=5 opens=1 stack=2)
  │  ├─ scan A: label index (elem, "a")  (actual rows=4 opens=1 batches=1)
  │  └─ scan B: label index (elem, "b")  (actual rows=4 opens=1 batches=1)
  └─ scan C: label index (elem, "c") in ∈ [A.in+1, A.out)  (actual rows=4 opens=5)
  return
    ()

counters: scanned=12 joined=4 structural=0 twig=5 emitted=0
          probes=5 rescans=0 sorted=0 spilled=0 stack-max=2 list-max=0 path-solutions=5
          spill-bytes=0 spill-runs=0 batches=2
`
	if got != want {
		t.Errorf("golden EXPLAIN ANALYZE mismatch:\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

func TestTwigJoinText(t *testing.T) {
	// A twig whose leaf stream is a type-filtered full scan (text nodes),
	// like a //a//b/text() pattern would produce.
	ctx := testCtx(t, twigDoc)
	preds := []tpm.StructuralPred{descPred("A", "B"), descPred("B", "T")}
	tw, ok := tpm.AssembleTwig(preds, []string{"A", "B", "T"})
	if !ok {
		t.Fatal("assembly failed")
	}
	var streams []PlanNode
	for _, n := range tw.Nodes {
		if n.Alias == "T" {
			streams = append(streams, NewScan("T", Access{Kind: AccessFull},
				[]tpm.Cmp{tpm.Eq(tpm.AttrOp("T", tpm.ColType), tpm.TypeOp(xasr.TypeText))}))
			continue
		}
		streams = append(streams, labelScan(n.Alias, map[string]string{"A": "a", "B": "b"}[n.Alias]))
	}
	j := NewTwigJoin(streams, *tw, nil, []string{"A", "B", "T"})
	rows := drain(t, ctx, j)
	// Every b under an a has exactly one text child: matches = a//b pairs.
	wantPairs := nlReference(t, twigDoc, []tpm.StructuralPred{descPred("A", "B")}, []string{"A", "B"},
		map[string]string{"A": "a", "B": "b"})
	if len(rows) != len(wantPairs) {
		t.Errorf("text-leaf twig: %d rows, want %d", len(rows), len(wantPairs))
	}
	st := j.Schema().Slot("T")
	for _, r := range rows {
		if r[st].Type != xasr.TypeText {
			t.Errorf("non-text leaf slot: %+v", r[st])
		}
	}
}

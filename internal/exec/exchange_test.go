package exec

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"xqdb/internal/limit"
	"xqdb/internal/tpm"
	"xqdb/internal/xasr"
)

// exchangeDoc builds a document with n repeated <a><b>tK</b></a> subtrees,
// large enough to split into many morsels.
func exchangeDoc(n int) string {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<a><b>t%03d</b></a>", i%50)
	}
	b.WriteString("</r>")
	return b.String()
}

func rowsEqual(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestExchangeMatchesSerialScan(t *testing.T) {
	doc := exchangeDoc(400)
	cases := []struct {
		name string
		mk   func() *Scan
	}{
		{"full", func() *Scan { return NewScan("R", Access{Kind: AccessFull}, nil) }},
		{"label", func() *Scan { return labelScan("A", "a") }},
		{"full-cond", func() *Scan {
			conds := []tpm.Cmp{tpm.Eq(tpm.AttrOp("R", tpm.ColType), tpm.TypeOp(xasr.TypeText))}
			return NewScan("R", Access{Kind: AccessFull}, conds)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sctx := testCtx(t, doc)
			want := drain(t, sctx, tc.mk())

			pctx := testCtx(t, doc)
			ex := NewExchange(tc.mk(), 4)
			ex.MorselRows = 16
			got := drain(t, pctx, ex)
			if !rowsEqual(got, want) {
				t.Fatalf("parallel scan diverged: %d rows vs %d serial", len(got), len(want))
			}
			if ex.morsels < 2 {
				t.Fatalf("exchange did not parallelize: morsels=%d", ex.morsels)
			}
			if pctx.Counters.RowsScanned != sctx.Counters.RowsScanned {
				t.Errorf("merged RowsScanned = %d, want %d",
					pctx.Counters.RowsScanned, sctx.Counters.RowsScanned)
			}
		})
	}
}

func TestExchangeBatchContract(t *testing.T) {
	doc := exchangeDoc(300)
	sctx := testCtx(t, doc)
	want := drainBatches(t, sctx, labelScan("A", "a"))

	pctx := testCtx(t, doc)
	ex := NewExchange(labelScan("A", "a"), 3)
	ex.MorselRows = 8
	got := drainBatches(t, pctx, ex)
	if !rowsEqual(got, want) {
		t.Fatalf("batched parallel scan diverged: %d rows vs %d serial", len(got), len(want))
	}
	var sum int64
	for _, wb := range ex.WorkerBatches() {
		sum += wb
	}
	if sum != ex.Child.Stats().Batches {
		t.Errorf("worker batches sum %d != child batches %d", sum, ex.Child.Stats().Batches)
	}
	if ex.Stats().Rows != int64(len(want)) {
		t.Errorf("exchange stats rows = %d, want %d", ex.Stats().Rows, len(want))
	}
}

func TestExchangeUnderStructuralJoin(t *testing.T) {
	doc := exchangeDoc(300)
	sctx := testCtx(t, doc)
	sj := NewStructuralJoin(labelScan("A", "a"), labelScan("B", "b"), descPred("A", "B"), nil)
	want := drain(t, sctx, sj)

	pctx := testCtx(t, doc)
	la := NewExchange(labelScan("A", "a"), 4)
	la.MorselRows = 8
	lb := NewExchange(labelScan("B", "b"), 4)
	lb.MorselRows = 8
	pj := NewStructuralJoin(la, lb, descPred("A", "B"), nil)
	got := drain(t, pctx, pj)
	if !rowsEqual(got, want) {
		t.Fatalf("structural join over exchanges diverged: %d rows vs %d serial", len(got), len(want))
	}
	if la.morsels < 2 || lb.morsels < 2 {
		t.Fatalf("exchanges did not parallelize: %d/%d morsels", la.morsels, lb.morsels)
	}
}

func TestExchangeSerialFallbacks(t *testing.T) {
	doc := exchangeDoc(200)

	// Row mode keeps the faithful row engine serial.
	rctx := testCtx(t, doc)
	rctx.RowMode = true
	ex := NewExchange(labelScan("A", "a"), 4)
	ex.MorselRows = 8
	if got := len(drain(t, rctx, ex)); got != 200 {
		t.Fatalf("row-mode fallback rows = %d, want 200", got)
	}
	if ex.morsels != 0 {
		t.Errorf("row mode must not spawn workers (morsels=%d)", ex.morsels)
	}

	// Ctx.DOP=1 caps a planned exchange to serial at runtime.
	cctx := testCtx(t, doc)
	cctx.DOP = 1
	ex2 := NewExchange(labelScan("A", "a"), 4)
	if got := len(drain(t, cctx, ex2)); got != 200 {
		t.Fatalf("dop-capped fallback rows = %d, want 200", got)
	}

	// A budget too small for even minimal in-flight batches falls back.
	bctx := testCtx(t, doc)
	bctx.Budget = limit.NewBudget(1024, nil)
	ex3 := NewExchange(labelScan("A", "a"), 4)
	ex3.MorselRows = 8
	if got := len(drain(t, bctx, ex3)); got != 200 {
		t.Fatalf("budget fallback rows = %d, want 200", got)
	}
	if ex3.morsels != 0 {
		t.Errorf("tight budget must not spawn workers (morsels=%d)", ex3.morsels)
	}
	if bctx.Budget.InUse() != 0 {
		t.Errorf("budget not released: %d bytes in use", bctx.Budget.InUse())
	}
}

func TestExchangeBudgetBackoffShrinksBatches(t *testing.T) {
	doc := exchangeDoc(400)
	ctx := testCtx(t, doc)
	// Enough for dop=2 at a shrunken batch capacity, not for full batches:
	// the exchange should still parallelize rather than fall back.
	ctx.Budget = limit.NewBudget(64<<10, nil)
	ex := NewExchange(labelScan("A", "a"), 2)
	ex.MorselRows = 32
	got := len(drain(t, ctx, ex))
	if got != 400 {
		t.Fatalf("backoff rows = %d, want 400", got)
	}
	if ex.morsels < 2 {
		t.Fatalf("exchange fell back instead of shrinking batches (morsels=%d)", ex.morsels)
	}
	if ctx.Budget.InUse() != 0 {
		t.Errorf("budget not released: %d bytes in use", ctx.Budget.InUse())
	}
}

func TestExchangeCancelMidStream(t *testing.T) {
	doc := exchangeDoc(2000)
	before := runtime.NumGoroutine()
	ctx := testCtx(t, doc)
	ctx.Budget = limit.NewBudget(0, nil)
	ctx.BatchSize = 4 // many small batches so cancel lands mid-exchange
	ex := NewExchange(NewScan("R", Access{Kind: AccessFull}, nil), 4)
	ex.MorselRows = 8
	it, err := ex.open(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pull a few rows, then cancel: the next polls must surface
	// limit.ErrCanceled and the pool must unwind without leaks.
	for i := 0; i < 5; i++ {
		if _, ok, err := it.Next(); err != nil || !ok {
			t.Fatalf("warmup next: ok=%v err=%v", ok, err)
		}
	}
	ctx.Budget.Cancel()
	var got error
	for i := 0; i < 100000; i++ {
		_, ok, err := it.Next()
		if err != nil {
			got = err
			break
		}
		if !ok {
			break
		}
	}
	if !errors.Is(got, limit.ErrCanceled) {
		t.Fatalf("mid-exchange cancel returned %v, want ErrCanceled", got)
	}
	it.Close()
	if ctx.Budget.InUse() != 0 {
		t.Errorf("budget not released after cancel: %d bytes", ctx.Budget.InUse())
	}
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestExchangeEarlyClose(t *testing.T) {
	doc := exchangeDoc(2000)
	before := runtime.NumGoroutine()
	ctx := testCtx(t, doc)
	ctx.BatchSize = 4
	ex := NewExchange(NewScan("R", Access{Kind: AccessFull}, nil), 4)
	ex.MorselRows = 8
	it, err := ex.open(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("first next: ok=%v err=%v", ok, err)
	}
	// Abandon the stream with workers still running and batches in flight.
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked after early close: %d before, %d after", before, after)
	}
}

func TestExchangeEligibility(t *testing.T) {
	if ExchangeEligible(NewScan("C", Access{Kind: AccessParent, Parent: tpm.InOp(3)}, nil)) {
		t.Error("parent-index scans must not be eligible")
	}
	bounded := NewScan("D", Access{Kind: AccessRange, Bounded: true,
		Lo: tpm.AttrOp("X", tpm.ColIn), Hi: tpm.AttrOp("X", tpm.ColOut)}, nil)
	if ExchangeEligible(bounded) {
		t.Error("outer-row-bounded scans must not be eligible")
	}
	if !ExchangeEligible(NewScan("R", Access{Kind: AccessFull}, nil)) {
		t.Error("full scans must be eligible")
	}
	if !ExchangeEligible(labelScan("A", "a")) {
		t.Error("label scans must be eligible")
	}
}

func TestLoserTree(t *testing.T) {
	keys := []uint64{5, 3, 9, 1, 7}
	lt := newLoserTree(keys)
	var got []uint64
	for {
		w := lt.winner()
		if keys[w] == exhaustedKey {
			break
		}
		got = append(got, keys[w])
		keys[w] += 10 // advance the stream
		if keys[w] > 40 {
			keys[w] = exhaustedKey
		}
		lt.fix(w)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("loser tree emitted out of order: %v", got)
		}
	}
	if len(got) != 20 {
		t.Fatalf("loser tree emitted %d keys, want 20", len(got))
	}
}

// Batch-at-a-time execution. Operators that can, exchange row batches —
// columnar slabs of up to ~1k vartuple slots — instead of single rows, so
// the per-row virtual Next call, budget poll, and row copy disappear from
// the hot loops. Operators that cannot run through a row-at-a-time adapter,
// which keeps the batched and row engines byte-equivalent by construction.

package exec

import "xqdb/internal/xasr"

// DefaultBatchSize is the row capacity of operator batches.
const DefaultBatchSize = 1024

// Batch is a block of intermediate rows in columnar layout: one column of
// XASR tuples per row slot, all columns the same length. A producer may
// repoint Cols at its internal storage, so a batch's contents are only
// valid until the next NextBatch or Close on its producer; consumers that
// retain rows copy them (exactly the row-iterator contract, batch-sized).
type Batch struct {
	// Cols holds one column per row slot; every column has n entries.
	Cols [][]xasr.Tuple
	// Sel, when non-nil, is a selection vector: the physical row indices
	// (into Cols) that survived a filter, in order. nil selects all n
	// rows. Filtering sets Sel instead of compacting, so no rows move.
	Sel []int32
	// n is the physical row count.
	n int
}

// reset prepares b to be filled with up to capRows rows of the given slot
// count, reusing existing capacity.
func (b *Batch) reset(slots, capRows int) {
	if cap(b.Cols) < slots {
		b.Cols = make([][]xasr.Tuple, slots)
	} else {
		b.Cols = b.Cols[:slots]
	}
	for i := range b.Cols {
		if cap(b.Cols[i]) < capRows {
			b.Cols[i] = make([]xasr.Tuple, 0, capRows)
		} else {
			b.Cols[i] = b.Cols[i][:0]
		}
	}
	b.Sel = nil
	b.n = 0
}

// Len returns the logical row count: the selected rows when a selection
// vector is present, all physical rows otherwise.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.n
}

// rowIdx maps a logical row index to its physical index.
func (b *Batch) rowIdx(i int) int {
	if b.Sel != nil {
		return int(b.Sel[i])
	}
	return i
}

// row gathers logical row i as a Row. Single-slot batches return a
// zero-copy sub-slice of the column; wider batches gather into buf, whose
// (possibly grown) backing the caller should keep for reuse.
func (b *Batch) row(i int, buf Row) Row {
	p := b.rowIdx(i)
	if len(b.Cols) == 1 {
		return b.Cols[0][p : p+1 : p+1]
	}
	buf = buf[:0]
	for _, col := range b.Cols {
		buf = append(buf, col[p])
	}
	return buf
}

// appendRow copies row into the batch as a new physical row.
func (b *Batch) appendRow(row Row) {
	for i, t := range row {
		b.Cols[i] = append(b.Cols[i], t)
	}
	b.n++
}

// batchIter is the vectorized iterator contract. NextBatch fills b with up
// to Ctx.batchCap() rows and returns the logical row count; 0 means the
// stream is exhausted (producers with residual predicates keep pulling
// until at least one row qualifies or their input ends, so a zero count
// never merely means "everything in this batch was filtered out").
type batchIter interface {
	rowIter
	NextBatch(b *Batch) (int, error)
}

// rowBatchAdapter lifts a row-at-a-time iterator to the batch contract by
// copying rows into the batch. It is the compatibility path for operators
// without a native NextBatch and the whole engine's path in RowMode.
type rowBatchAdapter struct {
	ctx   *Ctx
	it    rowIter
	slots int
}

func (a *rowBatchAdapter) Next() (Row, bool, error) { return a.it.Next() }
func (a *rowBatchAdapter) Close() error             { return a.it.Close() }

func (a *rowBatchAdapter) NextBatch(b *Batch) (int, error) {
	capRows := a.ctx.batchCap()
	b.reset(a.slots, capRows)
	for b.n < capRows {
		row, ok, err := a.it.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		b.appendRow(row)
	}
	return b.n, nil
}

// asBatch returns it's native batch implementation when it has one, or
// wraps it in the row adapter. RowMode always takes the adapter (plus
// single-row batches via batchCap), reproducing the row engine exactly.
func asBatch(ctx *Ctx, it rowIter, slots int) batchIter {
	if bi, ok := it.(batchIter); ok && !ctx.RowMode {
		return bi
	}
	return &rowBatchAdapter{ctx: ctx, it: it, slots: slots}
}

// rowView serves the row-at-a-time contract on top of a batched producer,
// for consumers (relfor, sort fills, spools) that want single rows but
// should still drive the producer's batched fast path.
type rowView struct {
	src batchIter
	b   Batch
	pos int
	buf Row
}

func (v *rowView) next() (Row, bool, error) {
	for v.pos >= v.b.Len() {
		n, err := v.src.NextBatch(&v.b)
		if err != nil {
			return nil, false, err
		}
		if n == 0 {
			return nil, false, nil
		}
		v.pos = 0
	}
	row := v.b.row(v.pos, v.buf)
	if len(v.b.Cols) > 1 {
		v.buf = row
	}
	v.pos++
	return row, true, nil
}

// batchStream is a peekable batched stream over a document-ordered input,
// used by the structural and twig merges for their descendant sides. It
// exposes the rows of the current batch by logical index so the merges can
// emit whole runs without re-materializing rows, and it answers seekInGE
// first from the buffered batch (binary search — in-order streams are
// In-sorted within a batch) and only then from the underlying cursor.
type batchStream struct {
	ctx    *Ctx
	src    batchIter
	seek   inSeeker
	inSlot int
	b      Batch
	pos    int
	eof    bool
	rbuf   Row
}

func newBatchStream(ctx *Ctx, it rowIter, slots, inSlot int) *batchStream {
	s := &batchStream{ctx: ctx, src: asBatch(ctx, it, slots), inSlot: inSlot}
	if sk, ok := it.(inSeeker); ok {
		s.seek = sk
	}
	return s
}

// ensure makes at least one unconsumed row available, reporting false at
// end of stream.
func (s *batchStream) ensure() (bool, error) {
	for !s.eof && s.pos >= s.b.Len() {
		n, err := s.src.NextBatch(&s.b)
		if err != nil {
			return false, err
		}
		if n == 0 {
			s.eof = true
			break
		}
		s.pos = 0
	}
	return !s.eof, nil
}

// in returns the In label of logical row i of the current batch.
func (s *batchStream) in(i int) uint32 {
	return s.b.Cols[s.inSlot][s.b.rowIdx(i)].In
}

// tup returns the join-slot tuple of logical row i of the current batch.
func (s *batchStream) tup(i int) xasr.Tuple {
	return s.b.Cols[s.inSlot][s.b.rowIdx(i)]
}

// row gathers logical row i of the current batch.
func (s *batchStream) row(i int) Row {
	row := s.b.row(i, s.rbuf)
	if len(s.b.Cols) > 1 {
		s.rbuf = row
	}
	return row
}

// seekInGE positions the stream at the first row with In >= target,
// reporting false at end of stream. Rows already buffered below target are
// dropped in-batch (the callers' skip semantics make that always safe);
// only when the buffered batch is exhausted does the underlying cursor
// seek.
func (s *batchStream) seekInGE(target uint32) (bool, error) {
	for {
		lo, hi := s.pos, s.b.Len()
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if s.in(mid) < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		s.pos = lo
		if s.pos < s.b.Len() {
			return true, nil
		}
		if s.eof {
			return false, nil
		}
		if s.seek != nil {
			ok, err := s.seek.seekInGE(target)
			if err != nil {
				return false, err
			}
			if !ok {
				s.eof = true
				return false, nil
			}
		}
		n, err := s.src.NextBatch(&s.b)
		if err != nil {
			return false, err
		}
		if n == 0 {
			s.eof = true
			return false, nil
		}
		s.pos = 0
	}
}

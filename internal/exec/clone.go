package exec

import "fmt"

// ClonePlan returns a deep copy of an executable plan with all runtime
// state (per-operator stats, compiled conjunctions, exchange worker
// tallies) reset, sharing only the immutable compile-time parts: schemas,
// condition slices, twig shapes, and cost estimates.
//
// Plan nodes accumulate OpStats and compile their conjunctions lazily at
// open, so a PlanNode tree executes exactly once. The plan cache keeps one
// pristine compiled tree per (document, epoch, query, config) and hands
// every execution — including the first — its own clone, which makes
// concurrent executions of one cached plan race-free by construction.
func ClonePlan(p XPlan) XPlan {
	switch p := p.(type) {
	case XEmpty:
		return p
	case *XText, *XEmit:
		// Immutable leaves: share them.
		return p
	case *XConstr:
		return &XConstr{Label: p.Label, Body: ClonePlan(p.Body)}
	case *XSeq:
		items := make([]XPlan, len(p.Items))
		for i, it := range p.Items {
			items[i] = ClonePlan(it)
		}
		return &XSeq{Items: items}
	case *XRelFor:
		return &XRelFor{Vars: p.Vars, Root: cloneNode(p.Root), Body: ClonePlan(p.Body)}
	case *XIf:
		return &XIf{Cond: p.Cond, Then: ClonePlan(p.Then)}
	default:
		panic(fmt.Sprintf("exec: ClonePlan: unknown plan %T", p))
	}
}

// cloneNode deep-copies a physical operator tree. Each case copies the
// node's compile-time fields (shared where immutable) and leaves the
// zero-valued runtime fields (stats, cc, exchange tallies) fresh.
func cloneNode(n PlanNode) PlanNode {
	switch n := n.(type) {
	case *Scan:
		return cloneScan(n)
	case *Filter:
		return &Filter{Child: cloneNode(n.Child), Conds: n.Conds, Est_: n.Est_}
	case *NLJoin:
		return &NLJoin{Left: cloneNode(n.Left), Right: cloneNode(n.Right),
			Conds: n.Conds, Est_: n.Est_, schema: n.schema}
	case *BNLJoin:
		return &BNLJoin{Left: cloneNode(n.Left), Right: cloneNode(n.Right),
			Conds: n.Conds, BlockRows: n.BlockRows, Est_: n.Est_, schema: n.schema}
	case *INLJoin:
		return &INLJoin{Left: cloneNode(n.Left), Inner: cloneScan(n.Inner),
			Conds: n.Conds, Est_: n.Est_, schema: n.schema}
	case *Project:
		return &Project{Child: cloneNode(n.Child), Keep: n.Keep, Dedup: n.Dedup,
			Est_: n.Est_, schema: n.schema, slots: n.slots}
	case *Sort:
		return &Sort{Child: cloneNode(n.Child), By: n.By, Dedup: n.Dedup,
			Est_: n.Est_, keySlots: n.keySlots}
	case *StructuralJoin:
		return &StructuralJoin{Left: cloneNode(n.Left), Right: cloneNode(n.Right),
			Pred: n.Pred, Conds: n.Conds, AncOrder: n.AncOrder, Est_: n.Est_,
			schema: n.schema, ancLeft: n.ancLeft, ancSlot: n.ancSlot, descSlot: n.descSlot}
	case *TwigJoin:
		streams := make([]PlanNode, len(n.Streams))
		for i, s := range n.Streams {
			streams[i] = cloneNode(s)
		}
		return &TwigJoin{Streams: streams, Twig: n.Twig, Conds: n.Conds,
			OutOrder: n.OutOrder, Est_: n.Est_, schema: n.schema,
			children: n.children, leafPath: n.leafPath, paths: n.paths, outSlots: n.outSlots}
	case *Exchange:
		return &Exchange{Child: cloneScan(n.Child), DOP: n.DOP,
			MorselRows: n.MorselRows, Est_: n.Est_}
	default:
		panic(fmt.Sprintf("exec: cloneNode: unknown operator %T", n))
	}
}

// cloneScan copies a leaf scan, preserving its typed identity (INL inners
// and exchanges hold *Scan, not PlanNode).
func cloneScan(s *Scan) *Scan {
	return &Scan{Alias: s.Alias, Access: s.Access, Conds: s.Conds,
		Est_: s.Est_, schema: s.schema}
}

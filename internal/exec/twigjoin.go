package exec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"xqdb/internal/recfile"
	"xqdb/internal/tpm"
	"xqdb/internal/xasr"
)

// TwigJoin is the holistic twig join (the TwigStack family): one
// document-ordered stream per twig node and one chained stack per node
// evaluate the whole k-node path pattern in a single multi-stream pass.
// Where a chain of binary structural joins materializes (and re-sorts)
// every pairwise intermediate result, the holistic operator buffers only
// root-to-leaf path solutions — for ancestor/descendant-only twigs these
// are guaranteed to contribute to the final answer, so intermediate space
// is bounded by the twig output. Parent/child edges keep the operator
// correct (they are checked during path enumeration) but may buffer some
// path solutions the merge phase discards, exactly as in the original
// TwigStack.
//
// Execution has three phases inside one iterator:
//
//  1. stream phase: getNext-style advancement picks the next useful head
//     tuple across all k streams (skipping runs that cannot extend any
//     match via the cursors' SeekGE), maintaining per-node stacks whose
//     entries link to their parent-stack position;
//  2. enumeration: every leaf push expands the stack encoding into
//     root-to-leaf path solutions;
//  3. merge: path solutions join on their shared branch nodes into full
//     twig matches, residual conditions are applied, and the result is
//     emitted sorted by the in-labels of OutOrder — the plan's required
//     vartuple order, so no repair sort is needed above the operator.
//
// The operator is an ordinary PlanNode producing multi-alias rows, so it
// also serves as the *leading input stream of a parent join* (partial-twig
// adoption): the planner seeds a pipeline with the twig over the covered
// relations and joins the uncovered ones on top via NL/INL/structural
// operators. For that composite use OutOrder names just the covered
// vartuple relations (in vartuple order) — the emission stays sorted by
// exactly those in-labels, which is the prefix contract the parent
// pipeline and the final deduplicating projection rely on.
type TwigJoin struct {
	// Streams holds one document-ordered input per twig node, aligned
	// with Twig.Nodes; each must produce single-alias rows for the node's
	// alias (the planner builds them as Scans).
	Streams []PlanNode
	// Twig is the pattern: node aliases with parent links and edge axes.
	Twig tpm.Twig
	// Conds are residual cross conditions evaluated per merged row.
	Conds []tpm.Cmp
	// OutOrder lists the aliases whose in-labels define the emission
	// order (lexicographic). Aliases must be twig nodes; they may be a
	// strict subset (the covered vartuple relations of a partial twig) —
	// rows tying on all OutOrder labels emit in arbitrary but grouped
	// order. An empty OutOrder leaves the emission order unspecified.
	OutOrder []string
	Est_     Est

	schema   *Schema
	stats    OpStats
	cc       compiledConds
	children [][]int // node -> child node indices
	leafPath []int   // leaf node -> index into paths (-1 for inner nodes)
	paths    [][]int // root-to-leaf node index lists, DFS preorder
	outSlots []int
}

// NewTwigJoin builds a holistic twig join. streams must be aligned 1:1
// with twig.Nodes and produce single-alias rows in document order.
func NewTwigJoin(streams []PlanNode, twig tpm.Twig, conds []tpm.Cmp, outOrder []string) *TwigJoin {
	j := &TwigJoin{Streams: streams, Twig: twig, Conds: conds,
		OutOrder: append([]string(nil), outOrder...),
		schema:   NewSchema(twig.Aliases()...)}
	j.children = make([][]int, len(twig.Nodes))
	j.leafPath = make([]int, len(twig.Nodes))
	for i := range twig.Nodes {
		j.children[i] = twig.Children(i)
		j.leafPath[i] = -1
	}
	// Root-to-leaf paths in DFS preorder, so each path's prefix up to its
	// branch point is covered by the paths before it (the merge relies on
	// this).
	var walk func(i int, trail []int)
	walk = func(i int, trail []int) {
		trail = append(trail, i)
		if len(j.children[i]) == 0 {
			j.leafPath[i] = len(j.paths)
			j.paths = append(j.paths, append([]int(nil), trail...))
			return
		}
		for _, c := range j.children[i] {
			walk(c, trail)
		}
	}
	walk(0, nil)
	for _, a := range j.OutOrder {
		j.outSlots = append(j.outSlots, j.schema.Slot(a))
	}
	return j
}

// Schema implements PlanNode.
func (j *TwigJoin) Schema() *Schema { return j.schema }

// Children implements PlanNode.
func (j *TwigJoin) Children() []PlanNode { return append([]PlanNode(nil), j.Streams...) }

// Estimate implements PlanNode.
func (j *TwigJoin) Estimate() Est { return j.Est_ }

// Stats implements PlanNode.
func (j *TwigJoin) Stats() *OpStats { return &j.stats }

// Describe implements PlanNode.
func (j *TwigJoin) Describe() string {
	d := fmt.Sprintf("twig-join %s [holistic, %d streams]", j.Twig.String(), len(j.Streams))
	if len(j.Conds) > 0 {
		d += fmt.Sprintf(" σ(%s)", condsString(j.Conds))
	}
	return d
}

func (j *TwigJoin) open(ctx *Ctx, outer Row, outerSchema *Schema) (rowIter, error) {
	if outer != nil {
		return nil, fmt.Errorf("exec: twig join cannot be an INL inner")
	}
	k := len(j.Streams)
	it := &twigJoinIter{
		ctx:     ctx,
		j:       j,
		its:     make([]rowIter, k),
		streams: make([]*batchStream, k),
		heads:   make([]xasr.Tuple, k),
		have:    make([]bool, k),
		eofs:    make([]bool, k),
		stacks:  make([][]twigEntry, k),
		sols:    make([]*recfile.BoundedBuf, len(j.paths)),
	}
	for pi := range j.paths {
		it.sols[pi] = it.newBuf("twigsol")
	}
	for i, s := range j.Streams {
		si, err := s.open(ctx, nil, nil)
		if err != nil {
			for _, prev := range it.its[:i] {
				prev.Close()
			}
			return nil, err
		}
		it.its[i] = si
		it.streams[i] = newBatchStream(ctx, si, 1, 0)
	}
	j.stats.Opens++
	if err := j.cc.compile(j.Conds, j.schema); err != nil {
		it.Close()
		return nil, err
	}
	return it, nil
}

// twigEntry is one stack slot: a node tuple plus the index of the top of
// the parent node's stack at push time. All parent entries up to ptr
// started before this tuple; the ones still containing it are its twig
// ancestors (checked per edge axis during enumeration).
type twigEntry struct {
	t   xasr.Tuple
	ptr int
}

type twigJoinIter struct {
	ctx     *Ctx
	j       *TwigJoin
	its     []rowIter
	streams []*batchStream // batch-buffered view over its
	heads   []xasr.Tuple   // peeked head per stream
	have    []bool
	eofs    []bool
	stacks  [][]twigEntry
	// sols buffers path solutions per path, each encoded with appendRow;
	// the buffers spill to temp run files past the budget.
	sols    []*recfile.BoundedBuf
	scratch []byte

	// merge-phase state, kept on the iterator so Close can clean up after
	// an error at any point.
	acc    *recfile.BoundedBuf // accumulated partial matches (full-width rows)
	sorter *recfile.Sorter     // final emission sort, live only during merge
	sorted *recfile.Iterator   // sorted full matches
	keyLen int
	rowbuf Row // reused output buffer (see rowIter contract)
	ran    bool
}

// newBuf returns a BoundedBuf wired to the query's budget and fault hook.
func (it *twigJoinIter) newBuf(prefix string) *recfile.BoundedBuf {
	b := recfile.NewBoundedBuf(it.ctx.TempDir, prefix, it.ctx.softBudget(), it.ctx.Budget)
	b.SetHook(it.ctx.FaultHook)
	return b
}

// closeBuf folds a buffer's spill activity into the counters and removes
// its temp file. Each buffer must pass through here exactly once.
func (it *twigJoinIter) closeBuf(b *recfile.BoundedBuf) {
	it.ctx.Counters.SpilledTuples += b.SpilledRecs()
	it.ctx.Counters.SpilledBytes += b.SpilledBytes()
	it.ctx.Counters.SpillRuns += int64(b.SpillRuns())
	it.j.stats.SpilledBytes += b.SpilledBytes()
	it.j.stats.SpillRuns += int64(b.SpillRuns())
	b.Close()
}

// ensureHead pulls the next tuple of stream i into heads[i] if none is
// pending; it reports whether a head is available.
func (it *twigJoinIter) ensureHead(i int) (bool, error) {
	if it.have[i] {
		return true, nil
	}
	if it.eofs[i] {
		return false, nil
	}
	s := it.streams[i]
	ok, err := s.ensure()
	if err != nil {
		return false, err
	}
	if !ok {
		it.eofs[i] = true
		return false, nil
	}
	it.heads[i] = s.tup(s.pos)
	it.have[i] = true
	return true, nil
}

// dropHead consumes stream i's pending head.
func (it *twigJoinIter) dropHead(i int) {
	it.have[i] = false
	it.streams[i].pos++
}

// markEOF drops the remainder of stream i: its tuples can no longer
// contribute to any new twig match.
func (it *twigJoinIter) markEOF(i int) {
	it.eofs[i] = true
	it.have[i] = false
}

// end reports whether every leaf stream is exhausted — the TwigStack
// termination condition (no leaf tuple left means no new path solution).
func (it *twigJoinIter) end() bool {
	for i := range it.j.Twig.Nodes {
		if it.j.leafPath[i] >= 0 && (it.have[i] || !it.eofs[i]) {
			return false
		}
	}
	return true
}

// getNext picks the next node whose head tuple should be processed — the
// core TwigStack stream-advancement routine. It returns (q, true) when
// node q has a valid head that is "self-satisfied" (its interval may
// extend to a match with every live child subtree), or (q, false) when
// q's whole subtree is exhausted. Internal nodes whose remaining tuples
// can no longer pair with some child subtree (that subtree's streams ran
// dry) are dropped wholesale instead of drained row by row.
func (it *twigJoinIter) getNext(q int) (int, bool, error) {
	kids := it.j.children[q]
	if len(kids) == 0 {
		ok, err := it.ensureHead(q)
		return q, ok, err
	}
	anyLive := false
	anyDead := false
	nmin, nmax := -1, -1
	for _, qi := range kids {
		ni, ok, err := it.getNext(qi)
		if err != nil {
			return 0, false, err
		}
		if !ok {
			anyDead = true
			continue
		}
		anyLive = true
		if ni != qi {
			return ni, true, nil
		}
		if nmin < 0 || it.heads[qi].In < it.heads[nmin].In {
			nmin = qi
		}
		if nmax < 0 || it.heads[qi].In > it.heads[nmax].In {
			nmax = qi
		}
	}
	if !anyLive {
		// Every child subtree is exhausted: no future q tuple can close a
		// match, so q's subtree is done too.
		it.markEOF(q)
		return q, false, nil
	}
	if anyDead {
		// Some child subtree ran dry: future q tuples cannot contain any
		// of its (fully consumed) tuples, so they are useless — existing
		// stack entries keep serving the live subtrees.
		it.markEOF(q)
	} else {
		// Skip q tuples that end before the latest child head starts:
		// they cannot contain the heads of every child stream.
		for {
			ok, err := it.ensureHead(q)
			if err != nil {
				return 0, false, err
			}
			if !ok || it.heads[q].Out >= it.heads[nmax].In {
				break
			}
			it.dropHead(q)
		}
	}
	if it.have[q] && it.heads[q].In < it.heads[nmin].In {
		return q, true, nil
	}
	return nmin, true, nil
}

// cleanStack pops node n's entries whose intervals end before pos: they
// can contain no tuple at or after the current merge position.
func (it *twigJoinIter) cleanStack(n int, pos uint32) {
	s := it.stacks[n]
	for len(s) > 0 && s[len(s)-1].t.Out < pos {
		s = s[:len(s)-1]
	}
	it.stacks[n] = s
}

// push moves node q's head onto its stack, linking it to the current top
// of the parent stack.
func (it *twigJoinIter) push(q int) {
	parent := it.j.Twig.Nodes[q].Parent
	ptr := -1
	if parent >= 0 {
		ptr = len(it.stacks[parent]) - 1
	}
	it.stacks[q] = append(it.stacks[q], twigEntry{t: it.heads[q], ptr: ptr})
	it.dropHead(q)
	depth := int64(len(it.stacks[q]))
	if depth > it.j.stats.StackMax {
		it.j.stats.StackMax = depth
	}
	if depth > it.ctx.Counters.StructStackMax {
		it.ctx.Counters.StructStackMax = depth
	}
}

// edgeOK checks the structural edge between a parent-stack entry and a
// child tuple. The stack invariant already guarantees the parent starts
// first and spans the child's start; the explicit check enforces strict
// containment (rejecting self-pairs) and parent/child equality.
func edgeOK(axis tpm.Axis, p, c xasr.Tuple) bool {
	if axis == tpm.AxisChild {
		return c.ParentIn == p.In
	}
	return p.In < c.In && c.Out < p.Out
}

// emitPathSols expands the just-pushed leaf entry into root-to-leaf path
// solutions by walking the stack pointer chains, checking each edge's
// axis, and buffers them for the merge phase. The buffer spills past the
// budget, so a deep enumeration also polls the deadline per solution.
func (it *twigJoinIter) emitPathSols(leaf int) error {
	pi := it.j.leafPath[leaf]
	path := it.j.paths[pi]
	m := len(path) - 1
	sol := make([]xasr.Tuple, len(path))
	top := it.stacks[leaf][len(it.stacks[leaf])-1]
	sol[m] = top.t
	var rec func(level int, child twigEntry) error
	rec = func(level int, child twigEntry) error {
		if level < 0 {
			if err := it.ctx.check(); err != nil {
				return err
			}
			it.scratch = appendRow(it.scratch[:0], sol)
			if err := it.sols[pi].Append(it.scratch); err != nil {
				return err
			}
			it.ctx.Counters.TwigPathSolutions++
			return nil
		}
		node := path[level]
		axis := it.j.Twig.Nodes[path[level+1]].Axis
		s := it.stacks[node]
		limit := child.ptr
		if limit >= len(s) {
			limit = len(s) - 1
		}
		for i := 0; i <= limit; i++ {
			if edgeOK(axis, s[i].t, child.t) {
				sol[level] = s[i].t
				if err := rec(level-1, s[i]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return rec(m-1, top)
}

// run executes the stream phase to completion, then merges the buffered
// path solutions into sorted full twig matches.
func (it *twigJoinIter) run() error {
	j := it.j
	for {
		if err := it.ctx.check(); err != nil {
			return err
		}
		if it.end() {
			break
		}
		q, ok, err := it.getNext(0)
		if err != nil {
			return err
		}
		if !ok {
			break // every stream exhausted
		}
		qIn := it.heads[q].In
		parent := j.Twig.Nodes[q].Parent
		if parent >= 0 {
			it.cleanStack(parent, qIn)
		}
		if parent < 0 || len(it.stacks[parent]) > 0 {
			it.cleanStack(q, qIn)
			it.push(q)
			if j.leafPath[q] >= 0 {
				if err := it.emitPathSols(q); err != nil {
					return err
				}
				it.stacks[q] = it.stacks[q][:len(it.stacks[q])-1]
			}
			continue
		}
		// No potential ancestor on the parent stack: everything before
		// the parent stream's next tuple cannot match — leap forward.
		pOK, err := it.ensureHead(parent)
		if err != nil {
			return err
		}
		if !pOK {
			// Parent stream dry with an empty stack: q's subtree is dead.
			it.markEOF(q)
			continue
		}
		it.dropHead(q)
		if _, err := it.streams[q].seekInGE(it.heads[parent].In + 1); err != nil {
			return err
		}
	}
	return it.merge()
}

// merge joins the buffered path solutions across paths on their shared
// prefix nodes, applies residual conditions, and sorts the full matches
// by the OutOrder in-labels. All intermediate state lives in BoundedBufs
// and an external sorter, so the phase degrades to disk past the budget
// instead of holding every partial match in memory. On error the
// iterator's Close sweeps whatever buffers remain.
func (it *twigJoinIter) merge() error {
	j := it.j
	k := len(j.Twig.Nodes)
	covered := make([]bool, k)

	for pi, path := range j.paths {
		if err := it.ctx.check(); err != nil {
			return err
		}
		sb := it.sols[pi]
		if sb.Len() == 0 {
			return nil // a path with no solution means no match at all
		}
		if pi == 0 {
			// Seed the accumulator with the first path's solutions
			// scattered into full-width rows.
			it.acc = it.newBuf("twigacc")
			solIt, err := sb.Iter()
			if err != nil {
				return err
			}
			solRow := make(Row, len(path))
			row := make(Row, k)
			for {
				rec, err := solIt.Next()
				if err == io.EOF {
					break
				}
				if err == nil {
					err = it.ctx.check()
				}
				if err == nil {
					err = decodeRowInto(solRow, rec)
				}
				if err != nil {
					solIt.Close()
					return err
				}
				for li, n := range path {
					row[n] = solRow[li]
				}
				it.scratch = appendRow(it.scratch[:0], row)
				if err := it.acc.Append(it.scratch); err != nil {
					solIt.Close()
					return err
				}
			}
			solIt.Close()
			it.closeBuf(sb)
			it.sols[pi] = nil
			for _, n := range path {
				covered[n] = true
			}
			continue
		}
		// DFS preorder guarantees the shared nodes are a prefix of path.
		shared := 0
		for shared < len(path) && covered[path[shared]] {
			shared++
		}
		next, err := it.joinPath(path, shared, sb)
		if err != nil {
			return err
		}
		it.closeBuf(sb)
		it.sols[pi] = nil
		it.closeBuf(it.acc)
		it.acc = next
		for _, n := range path[shared:] {
			covered[n] = true
		}
		if it.acc.Len() == 0 {
			return nil
		}
	}
	return it.finalize()
}

// joinPath block-hash-joins the accumulated partial matches with one
// path's solutions on the shared prefix nodes: solutions are read in
// budget-bounded blocks, each block is hashed on the shared in-labels, and
// the accumulator streams once per block probing it. Order is repaired by
// the finalize sort. On error the returned buffer has been discarded; the
// caller's sb and acc stay live for Close to sweep.
func (it *twigJoinIter) joinPath(path []int, shared int, sb *recfile.BoundedBuf) (*recfile.BoundedBuf, error) {
	j := it.j
	k := len(j.Twig.Nodes)
	soft := it.ctx.softBudget()
	next := it.newBuf("twigacc")
	solIt, err := sb.Iter()
	if err != nil {
		next.Close()
		return nil, err
	}
	defer solIt.Close()

	solRow := make(Row, len(path))
	probeRow := make(Row, k)
	combined := make(Row, k)
	var kb []byte
	eof := false
	for !eof {
		// Load one block of this path's solutions, hashed on the shared
		// prefix in-labels. Values survive the shared decode string, so
		// retained copies are safe.
		index := make(map[string][]Row)
		blockBytes, blockCount := 0, 0
		for blockBytes <= soft {
			rec, err := solIt.Next()
			if err == io.EOF {
				eof = true
				break
			}
			if err == nil {
				err = it.ctx.check()
			}
			if err == nil {
				err = decodeRowInto(solRow, rec)
			}
			if err != nil {
				next.Close()
				return nil, err
			}
			s := append(Row(nil), solRow...)
			kb = kb[:0]
			for li := 0; li < shared; li++ {
				kb = binary.BigEndian.AppendUint32(kb, s[li].In)
			}
			index[string(kb)] = append(index[string(kb)], s)
			for _, t := range s {
				blockBytes += 16 + len(t.Value)
			}
			blockCount++
		}
		if blockCount == 0 {
			break
		}
		// Stream the accumulator against this block.
		accIt, err := it.acc.Iter()
		if err != nil {
			next.Close()
			return nil, err
		}
		for {
			rec, err := accIt.Next()
			if err == io.EOF {
				break
			}
			if err == nil {
				err = it.ctx.check()
			}
			if err == nil {
				err = decodeRowInto(probeRow, rec)
			}
			if err != nil {
				accIt.Close()
				next.Close()
				return nil, err
			}
			kb = kb[:0]
			for _, n := range path[:shared] {
				kb = binary.BigEndian.AppendUint32(kb, probeRow[n].In)
			}
			for _, s := range index[string(kb)] {
				copy(combined, probeRow)
				for li := shared; li < len(path); li++ {
					combined[path[li]] = s[li]
				}
				it.scratch = appendRow(it.scratch[:0], combined)
				if err := next.Append(it.scratch); err != nil {
					accIt.Close()
					next.Close()
					return nil, err
				}
			}
		}
		accIt.Close()
	}
	return next, nil
}

// finalize streams the accumulated full matches through the residual
// conditions into an external sort on the OutOrder in-labels, from which
// Next decodes rows. With an empty OutOrder the stable sort preserves the
// accumulation order (the emission order is unspecified anyway).
func (it *twigJoinIter) finalize() error {
	j := it.j
	it.keyLen = 4 * len(j.outSlots)
	keyLen := it.keyLen
	sorter := recfile.NewSorter(it.ctx.TempDir, func(a, b []byte) int {
		return bytes.Compare(a[:keyLen], b[:keyLen])
	}, it.ctx.SortBudget)
	sorter.SetGovernor(it.ctx.Budget)
	sorter.SetHook(it.ctx.FaultHook)
	it.sorter = sorter

	accIt, err := it.acc.Iter()
	if err != nil {
		return err
	}
	row := make(Row, len(j.Twig.Nodes))
	var rec []byte
	for {
		r, err := accIt.Next()
		if err == io.EOF {
			break
		}
		if err == nil {
			err = it.ctx.check()
		}
		if err == nil {
			err = decodeRowInto(row, r)
		}
		if err != nil {
			accIt.Close()
			return err
		}
		if len(j.Conds) > 0 {
			pass, err := j.cc.eval(row, it.ctx.Env)
			if err != nil {
				accIt.Close()
				return err
			}
			if !pass {
				continue
			}
		}
		rec = rec[:0]
		for _, s := range j.outSlots {
			rec = binary.BigEndian.AppendUint32(rec, row[s].In)
		}
		rec = appendRow(rec, row)
		if err := sorter.Add(rec); err != nil {
			// A failed Add already removed the sorter's run files.
			it.sorter = nil
			accIt.Close()
			return err
		}
	}
	accIt.Close()
	it.closeBuf(it.acc)
	it.acc = nil
	sorted, err := sorter.Sort()
	if err != nil {
		it.sorter = nil
		return err
	}
	st := sorter.Stats()
	it.ctx.Counters.SpilledBytes += st.Spilled
	it.ctx.Counters.SpillRuns += int64(st.Runs)
	j.stats.SpilledBytes += st.Spilled
	j.stats.SpillRuns += int64(st.Runs)
	it.sorter = nil // run files now owned by the sorted iterator
	it.sorted = sorted
	return nil
}

func (it *twigJoinIter) Next() (Row, bool, error) {
	if !it.ran {
		it.ran = true
		if err := it.run(); err != nil {
			return nil, false, err
		}
	}
	if it.sorted == nil {
		return nil, false, nil
	}
	rec, err := it.sorted.Next()
	if err == io.EOF {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	if it.rowbuf == nil {
		it.rowbuf = make(Row, len(it.j.Twig.Nodes))
	}
	if err := decodeRowInto(it.rowbuf, rec[it.keyLen:]); err != nil {
		return nil, false, err
	}
	it.ctx.Counters.RowsTwig++
	it.j.stats.Rows++
	return it.rowbuf, true, nil
}

func (it *twigJoinIter) Close() error {
	var first error
	for _, s := range it.its {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	for pi, sb := range it.sols {
		if sb != nil {
			it.closeBuf(sb)
			it.sols[pi] = nil
		}
	}
	if it.acc != nil {
		it.closeBuf(it.acc)
		it.acc = nil
	}
	if it.sorter != nil {
		it.sorter.Abort()
		it.sorter = nil
	}
	if it.sorted != nil {
		it.sorted.Close()
		it.sorted = nil
	}
	return first
}

package exec

import (
	"fmt"

	"xqdb/internal/recfile"
	"xqdb/internal/tpm"
)

// StructuralJoin is the stack-based structural merge join: both inputs
// arrive in document (in) order, and one merge pass pairs ancestors with
// their descendants (or parents with their children) by maintaining a
// stack of the ancestors whose intervals enclose the current merge
// position. Every input tuple is read exactly once, so the join costs
// O(left + right + output) with no index probes and no inner rescans —
// the interval containment that nested-loops operators re-check per pair
// is answered by the stack invariant.
//
// The operator implements both emission orders of the structural-join
// family. With AncOrder false (Stack-Tree-Desc, the default) output
// follows the descendant side's document order: per descendant row,
// matching ancestors emit bottom-up (outermost first), which is their
// arrival order. Hence
//
//	right side = descendant: output sorted by (right, left-order...)
//	right side = ancestor:   output sorted by (left-order..., right) —
//	                         order-preserving in the planner's sense.
//
// With AncOrder true (Stack-Tree-Anc) output follows the ancestor side's
// arrival order instead: every stack entry buffers its pairs in a self
// output list, adopts the lists of entries popped above it into an
// inherit list, and flushes self-then-inherit when it pops — pairs whose
// ancestor is the stack bottom stream through immediately. That makes
// the operator order-preserving for ancestor-first vartuples
// (the `for $a in //X for $d in $a//Y` shape) at the price of buffering
// up to the non-bottom share of the output; the planner prices that via
// the peak-list term and tracks both orders through built.orderSeq.
type StructuralJoin struct {
	Left, Right PlanNode
	// Pred is the structural predicate joining one Left alias with one
	// Right alias.
	Pred tpm.StructuralPred
	// Conds are residual cross conditions evaluated per emitted row.
	Conds []tpm.Cmp
	// AncOrder selects the Stack-Tree-Anc emission order (see above).
	AncOrder bool
	Est_     Est

	schema   *Schema
	stats    OpStats
	cc       compiledConds
	ancLeft  bool // the ancestor side is Left
	ancSlot  int  // slot of Pred.Anc within its side's schema
	descSlot int  // slot of Pred.Desc within its side's schema
}

// NewStructuralJoin builds a structural merge join of left and right. The
// predicate must relate one alias of each side; which side is the
// ancestor is derived from the schemas.
func NewStructuralJoin(left, right PlanNode, pred tpm.StructuralPred, conds []tpm.Cmp) *StructuralJoin {
	j := &StructuralJoin{Left: left, Right: right, Pred: pred, Conds: conds,
		schema: left.Schema().Concat(right.Schema())}
	j.ancLeft = left.Schema().Slot(pred.Anc) >= 0
	if j.ancLeft {
		j.ancSlot = left.Schema().Slot(pred.Anc)
		j.descSlot = right.Schema().Slot(pred.Desc)
	} else {
		j.ancSlot = right.Schema().Slot(pred.Anc)
		j.descSlot = left.Schema().Slot(pred.Desc)
	}
	return j
}

// Schema implements PlanNode.
func (j *StructuralJoin) Schema() *Schema { return j.schema }

// Children implements PlanNode.
func (j *StructuralJoin) Children() []PlanNode { return []PlanNode{j.Left, j.Right} }

// Estimate implements PlanNode.
func (j *StructuralJoin) Estimate() Est { return j.Est_ }

// Stats implements PlanNode.
func (j *StructuralJoin) Stats() *OpStats { return &j.stats }

// Describe implements PlanNode.
func (j *StructuralJoin) Describe() string {
	order := ""
	if j.AncOrder {
		order = ", anc-ordered"
	}
	d := fmt.Sprintf("structural-join %s [stack merge, %s axis%s]", j.Pred, j.Pred.Axis, order)
	if len(j.Conds) > 0 {
		d += fmt.Sprintf(" σ(%s)", condsString(j.Conds))
	}
	return d
}

func (j *StructuralJoin) open(ctx *Ctx, outer Row, outerSchema *Schema) (rowIter, error) {
	if outer != nil {
		return nil, fmt.Errorf("exec: structural join cannot be an INL inner")
	}
	left, err := j.Left.open(ctx, nil, nil)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.open(ctx, nil, nil)
	if err != nil {
		left.Close()
		return nil, err
	}
	j.stats.Opens++
	if err := j.cc.compile(j.Conds, j.schema); err != nil {
		left.Close()
		right.Close()
		return nil, err
	}
	var anc, desc rowIter
	var descSlots int
	if j.ancLeft {
		anc, desc = left, right
		descSlots = len(j.Right.Schema().Aliases)
	} else {
		anc, desc = right, left
		descSlots = len(j.Left.Schema().Aliases)
	}
	ds := newBatchStream(ctx, desc, descSlots, j.descSlot)
	if j.AncOrder {
		return &structAncIter{ctx: ctx, j: j, left: left, right: right, anc: anc, ds: ds}, nil
	}
	return &structJoinIter{ctx: ctx, j: j, left: left, right: right, anc: anc, ds: ds}, nil
}

// structJoinIter runs the merge batch-at-a-time. Both streams are
// consumed in document order; stack holds copies of ancestor-side rows
// whose intervals enclose the current descendant position, bottom =
// outermost. The descendant side arrives through a batchStream, and the
// merge emits whole runs: every descendant row up to
// min(stack-top out, next ancestor in) sees the identical stack, so the
// per-row stack maintenance — and on the descendant axis the per-pair
// containment check itself — is hoisted out of the emission loop, which
// degenerates to column appends.
type structJoinIter struct {
	ctx         *Ctx
	j           *StructuralJoin
	left, right rowIter
	anc         rowIter
	ds          *batchStream // descendant side, batch-buffered

	ancRow  Row // head of the ancestor stream (valid until anc.Next)
	haveAnc bool
	ancEOF  bool
	done    bool

	// stack entries are copies (children reuse their row buffers); popped
	// slots keep their backing arrays for reuse by later pushes.
	stack []Row

	// Run emission state: descendant rows ds.pos..runEnd of the current
	// batch all see the identical stack; emitS is the next stack index for
	// the current descendant. Emission resumes mid-run across NextBatch
	// calls when the output batch fills.
	runEnd   int
	emitS    int
	emitting bool

	view   rowView // serves the row contract on top of NextBatch
	joined Row     // scratch row for residual-condition evaluation
}

// pairMatches evaluates the structural predicate between an ancestor-side
// row and a descendant-side row. The stack invariant already guarantees
// containment for the descendant axis; the explicit check also rejects
// the self-pair (equal in) and decides the child axis.
func (j *StructuralJoin) pairMatches(anc, desc Row) bool {
	a := anc[j.ancSlot]
	d := desc[j.descSlot]
	if j.Pred.Axis == tpm.AxisChild {
		return d.ParentIn == a.In
	}
	return a.In < d.In && d.Out < a.Out
}

// push copies row onto the stack, reusing the backing array of a
// previously popped slot when possible.
func (it *structJoinIter) push(row Row) {
	n := len(it.stack)
	if n < cap(it.stack) {
		it.stack = it.stack[:n+1]
	} else {
		it.stack = append(it.stack, nil)
	}
	it.stack[n] = append(it.stack[n][:0], row...)
	depth := int64(len(it.stack))
	if depth > it.j.stats.StackMax {
		it.j.stats.StackMax = depth
	}
	if depth > it.ctx.Counters.StructStackMax {
		it.ctx.Counters.StructStackMax = depth
	}
}

// popBelow pops stack entries whose intervals end before pos: they can
// contain no tuple at or after the current merge position.
func (it *structJoinIter) popBelow(pos uint32) {
	for n := len(it.stack); n > 0; n-- {
		if it.stack[n-1][it.j.ancSlot].Out >= pos {
			break
		}
		it.stack = it.stack[:n-1]
	}
}

// emitRun appends (descendant, stack entry) pairs of the current run to
// out until the output batch fills or the run is exhausted, clearing
// emitting in the latter case. Pairs emit per descendant, stack
// bottom-up — the row engine's order. fast skips the per-pair predicate:
// within a run on the descendant axis every stack entry strictly
// contains every descendant row (labels are drawn from one counter, so
// interval endpoints never collide and self-pairs cannot arise).
func (it *structJoinIter) emitRun(out *Batch, capRows int, fast bool) error {
	stack := it.stack
	dcols := it.ds.b.Cols
	descW := len(dcols)
	ancW := len(stack[0])
	var ancOff, descOff int
	if it.j.ancLeft {
		descOff = ancW
	} else {
		ancOff = descW
	}
	for {
		if out.n >= capRows {
			return nil
		}
		if it.emitS >= len(stack) {
			it.emitS = 0
			it.ds.pos++
			if it.ds.pos >= it.runEnd {
				it.emitting = false
				return nil
			}
		}
		entry := stack[it.emitS]
		it.emitS++
		p := it.ds.b.rowIdx(it.ds.pos)
		if !fast {
			descRow := it.ds.row(it.ds.pos)
			if !it.j.pairMatches(entry, descRow) {
				continue
			}
			if len(it.j.Conds) > 0 {
				if it.j.ancLeft {
					it.joined = append(append(it.joined[:0], entry...), descRow...)
				} else {
					it.joined = append(append(it.joined[:0], descRow...), entry...)
				}
				pass, err := it.j.cc.eval(it.joined, it.ctx.Env)
				if err != nil {
					return err
				}
				if !pass {
					continue
				}
			}
		}
		for c := 0; c < ancW; c++ {
			out.Cols[ancOff+c] = append(out.Cols[ancOff+c], entry[c])
		}
		for c := 0; c < descW; c++ {
			out.Cols[descOff+c] = append(out.Cols[descOff+c], dcols[c][p])
		}
		out.n++
	}
}

func (it *structJoinIter) NextBatch(out *Batch) (int, error) {
	capRows := it.ctx.batchCap()
	out.reset(len(it.j.schema.Aliases), capRows)
	if err := it.ctx.check(); err != nil {
		return 0, err
	}
	fast := it.j.Pred.Axis != tpm.AxisChild && len(it.j.Conds) == 0
	for out.n < capRows {
		if it.emitting {
			if err := it.emitRun(out, capRows, fast); err != nil {
				return 0, err
			}
			continue
		}
		if it.done {
			break
		}
		ok, err := it.ds.ensure()
		if err != nil {
			return 0, err
		}
		if !ok {
			// No more descendants: pending ancestors cannot produce
			// output.
			it.done = true
			break
		}
		dIn := it.ds.in(it.ds.pos)

		// Pull and stack every ancestor starting before the current
		// descendant; later ones cannot contain it.
		for !it.ancEOF {
			if !it.haveAnc {
				row, ok, err := it.anc.Next()
				if err != nil {
					return 0, err
				}
				if !ok {
					it.ancEOF = true
					break
				}
				it.ancRow = row
				it.haveAnc = true
			}
			aIn := it.ancRow[it.j.ancSlot].In
			if aIn >= dIn {
				break
			}
			it.popBelow(aIn)
			it.push(it.ancRow)
			it.haveAnc = false
		}

		it.popBelow(dIn)
		if len(it.stack) == 0 {
			if it.ancEOF {
				it.done = true
				break
			}
			// No enclosing ancestor: nothing before the next ancestor's
			// subtree can match, so leap the descendant stream forward.
			// The pull loop above only leaves an unconsumed head when
			// aIn >= dIn, so the target always makes forward progress.
			if _, err := it.ds.seekInGE(it.ancRow[it.j.ancSlot].In + 1); err != nil {
				return 0, err
			}
			continue
		}

		// Run detection: every buffered descendant whose in label is at
		// most min(stack-top out, next ancestor in) sees this exact stack
		// — no pops (the top has the smallest out) and no pushes (the
		// pending ancestor starts after the run) can intervene.
		runMax := it.stack[len(it.stack)-1][it.j.ancSlot].Out
		if !it.ancEOF {
			if aIn := it.ancRow[it.j.ancSlot].In; aIn < runMax {
				runMax = aIn
			}
		}
		end := it.ds.pos + 1
		for n := it.ds.b.Len(); end < n && it.ds.in(end) <= runMax; end++ {
		}
		it.runEnd = end
		it.emitS = 0
		it.emitting = true
	}
	if out.n > 0 {
		it.j.stats.Rows += int64(out.n)
		it.ctx.Counters.RowsStructural += int64(out.n)
		it.j.stats.Batches++
		it.ctx.Counters.Batches++
		if err := it.ctx.checkN(out.n); err != nil {
			return 0, err
		}
	}
	return out.n, nil
}

func (it *structJoinIter) Next() (Row, bool, error) {
	if it.view.src == nil {
		it.view.src = it
	}
	return it.view.next()
}

func (it *structJoinIter) Close() error {
	err := it.left.Close()
	if rerr := it.right.Close(); err == nil {
		err = rerr
	}
	return err
}

// ancSeg is one segment of a Stack-Tree-Anc output list: either a run of
// in-memory rows (mem non-nil) or a run of n encoded rows starting at byte
// off of the iterator's shared spill file. Lists are chains of segments in
// insertion order; spilling converts mem segments to disk segments in
// place, so order survives arbitrary interleavings of buffering and
// spilling. res tracks the governor bytes the segment still holds (released
// when it spills or drains).
type ancSeg struct {
	mem   []Row
	bytes int   // in-memory size of mem (0 once spilled)
	res   int   // governor bytes reserved for mem
	off   int64 // spill-file offset of the first record (disk segments)
	n     int   // record count (disk segments)
}

// rows returns the number of buffered rows in the segment.
func (s *ancSeg) rows() int {
	if s.mem != nil {
		return len(s.mem)
	}
	return s.n
}

// ancEntry is one stack slot of the Stack-Tree-Anc merge: a copy of the
// ancestor-side input row plus the two output lists of the algorithm.
// self holds the pairs whose ancestor is this entry; inherit holds the
// pairs adopted from entries popped above it. An entry flushes
// self-then-inherit when it pops — to the entry below it, or straight to
// the output queue when it is the stack bottom.
type ancEntry struct {
	row     Row
	self    []ancSeg
	inherit []ancSeg
}

// ancSpillChunk is the minimum buffered-list size worth spilling; below it
// an over-quota list stays in memory rather than paying a write per row.
const ancSpillChunk = 4 << 10

// structAncIter runs the ancestor-ordered merge (Stack-Tree-Anc). The
// stream handling is identical to structJoinIter — both inputs in
// document order, a stack of enclosing ancestor-side rows, descendant
// skip-ahead — but emission differs: pairs whose ancestor is the stack
// bottom are appended to the output queue immediately (nothing earlier in
// ancestor order can still arrive), while pairs with stacked ancestors
// buffer in per-entry output lists that cascade downward on pop. The
// result streams in ancestor order: sorted by the ancestor stream's
// arrival order, descendants in document order within one ancestor row.
//
// Output rows are materialized (the lists outlive the input rows'
// buffers); consumed rows return to a free pool, and the buffered-row
// high-water mark is tracked as the operator's list mark. List memory is
// drawn from the query budget; when a reservation is refused (or the soft
// budget is exceeded) every buffered list spills to one shared temp file
// and the lists continue as disk segments, so the non-bottom share of the
// output degrades to disk instead of growing without bound.
type structAncIter struct {
	ctx         *Ctx
	j           *StructuralJoin
	left, right rowIter
	anc         rowIter
	ds          *batchStream // descendant side, batch-buffered

	ancRow  Row // head of the ancestor stream (valid until anc.Next)
	haveAnc bool
	ancEOF  bool

	descRow Row // descendant row being paired (view into ds's batch)
	done    bool

	stack []ancEntry

	// out is the emission queue: immediately-emitted bottom pairs and
	// flushed lists, in ancestor order, as a segment chain. outSeg/outPos
	// walk it; drained queues reset and reuse the backing array.
	out    []ancSeg
	outSeg int
	outPos int

	last       Row   // row returned by the previous Next, recycled on entry
	lastPooled bool  // whether last may return to the free pool
	free       []Row // recycled row buffers
	buffered   int64 // rows currently held in self/inherit lists

	// spill machinery: one lazily created run file shared by every spilled
	// segment, a seekable reader for emission, and the accounting the
	// governor and counters need.
	spillW    *recfile.Writer
	spillPath string
	segR      *recfile.SegReader
	scratch   []byte
	decbuf    Row   // reused decode buffer for disk-segment emission
	listMem   int   // bytes currently held by mem segments in stack lists
	reserved  int   // governor bytes held across all live segments
	spilled   int64 // SpilledBytes already folded into counters
}

// newPair materializes the joined row for (anc, current descendant) from
// the free pool and evaluates the residual conditions, returning nil for
// pairs the conditions reject (they are never buffered).
func (it *structAncIter) newPair(anc Row) (Row, error) {
	var buf Row
	if n := len(it.free); n > 0 {
		buf = it.free[n-1][:0]
		it.free = it.free[:n-1]
	}
	if it.j.ancLeft {
		buf = append(append(buf, anc...), it.descRow...)
	} else {
		buf = append(append(buf, it.descRow...), anc...)
	}
	pass, err := it.j.cc.eval(buf, it.ctx.Env)
	if err != nil {
		return nil, err
	}
	if !pass {
		it.free = append(it.free, buf)
		return nil, nil
	}
	return buf, nil
}

// bufAdd tallies one row entering a self/inherit list, tracking the
// output-list high-water mark on the operator and the query counters.
func (it *structAncIter) bufAdd() {
	it.buffered++
	if it.buffered > it.j.stats.ListMax {
		it.j.stats.ListMax = it.buffered
	}
	if it.buffered > it.ctx.Counters.StructListMax {
		it.ctx.Counters.StructListMax = it.buffered
	}
}

// rowMem is the in-memory cost charged to the budget for one buffered row.
func rowMem(row Row) int {
	n := 24
	for _, t := range row {
		n += 16 + len(t.Value)
	}
	return n
}

// listAppend adds a materialized pair to a segment chain, charging the
// budget, and reports whether the lists should spill: the governor refused
// the reservation or the lists outgrew the soft budget, and there is
// enough buffered to be worth writing.
func (it *structAncIter) listAppend(list *[]ancSeg, row Row) (spill bool) {
	need := rowMem(row)
	granted := it.ctx.Budget.Reserve(need)
	segs := *list
	if n := len(segs); n > 0 && segs[n-1].mem != nil {
		seg := &segs[n-1]
		seg.mem = append(seg.mem, row)
		seg.bytes += need
		if granted {
			seg.res += need
		}
	} else {
		seg := ancSeg{mem: []Row{row}, bytes: need}
		if granted {
			seg.res = need
		}
		*list = append(segs, seg)
	}
	if granted {
		it.reserved += need
	}
	it.listMem += need
	it.bufAdd()
	return (!granted || it.listMem > it.ctx.softBudget()) && it.listMem >= ancSpillChunk
}

// spillLists converts every in-memory list segment of every stack entry to
// a disk segment of the shared spill file, recycling the spilled rows and
// releasing their reservations. Segments convert in place, so each list
// stays a correctly ordered chain.
func (it *structAncIter) spillLists() error {
	if it.spillW == nil {
		it.spillPath = recfile.TempPath(it.ctx.TempDir, "anclist")
		w, err := recfile.CreateWriter(it.spillPath)
		if err != nil {
			return err
		}
		w.Hook = it.ctx.FaultHook
		it.spillW = w
		it.ctx.Counters.SpillRuns++
		it.j.stats.SpillRuns++
	}
	for i := range it.stack {
		e := &it.stack[i]
		for _, list := range [][]ancSeg{e.self, e.inherit} {
			for si := range list {
				if err := it.spillSeg(&list[si]); err != nil {
					return err
				}
			}
		}
	}
	if err := it.spillW.Flush(); err != nil {
		return err
	}
	delta := it.spillW.Bytes() - it.spilled
	it.spilled = it.spillW.Bytes()
	it.ctx.Counters.SpilledBytes += delta
	it.j.stats.SpilledBytes += delta
	return nil
}

// spillSeg writes one in-memory segment to the spill file and converts it
// to a disk segment, returning its rows to the free pool.
func (it *structAncIter) spillSeg(seg *ancSeg) error {
	if seg.mem == nil {
		return nil
	}
	off := it.spillW.Offset()
	for _, row := range seg.mem {
		it.scratch = appendRow(it.scratch[:0], row)
		if err := it.spillW.Append(it.scratch); err != nil {
			return err
		}
	}
	it.ctx.Counters.SpilledTuples += int64(len(seg.mem))
	for _, row := range seg.mem {
		it.free = append(it.free, row)
	}
	it.ctx.Budget.Release(seg.res)
	it.reserved -= seg.res
	it.listMem -= seg.bytes
	*seg = ancSeg{off: off, n: len(seg.mem)}
	return nil
}

// push copies row onto the stack with fresh (capacity-reusing) lists.
func (it *structAncIter) push(row Row) {
	n := len(it.stack)
	if n < cap(it.stack) {
		it.stack = it.stack[:n+1]
	} else {
		it.stack = append(it.stack, ancEntry{})
	}
	e := &it.stack[n]
	e.row = append(e.row[:0], row...)
	e.self = e.self[:0]
	e.inherit = e.inherit[:0]
	depth := int64(len(it.stack))
	if depth > it.j.stats.StackMax {
		it.j.stats.StackMax = depth
	}
	if depth > it.ctx.Counters.StructStackMax {
		it.ctx.Counters.StructStackMax = depth
	}
}

// popOne pops the top entry and routes its output lists: self before
// inherit, onto the entry below — or onto the output queue when the
// popped entry was the stack bottom (its immediate pairs are already out;
// only adopted lists remain). Moving segments to the output queue leaves
// the buffered-list accounting: the rows are now queued for emission, not
// buffered against future pops.
func (it *structAncIter) popOne() {
	n := len(it.stack)
	top := &it.stack[n-1]
	it.stack = it.stack[:n-1]
	if n-1 == 0 {
		for _, list := range [][]ancSeg{top.self, top.inherit} {
			for si := range list {
				seg := list[si]
				it.buffered -= int64(seg.rows())
				it.listMem -= seg.bytes
				it.out = append(it.out, seg)
			}
		}
	} else {
		below := &it.stack[n-2]
		below.inherit = append(below.inherit, top.self...)
		below.inherit = append(below.inherit, top.inherit...)
	}
	top.self = top.self[:0]
	top.inherit = top.inherit[:0]
}

// popBelow pops stack entries whose intervals end before pos.
func (it *structAncIter) popBelow(pos uint32) {
	for len(it.stack) > 0 && it.stack[len(it.stack)-1].row[it.j.ancSlot].Out < pos {
		it.popOne()
	}
}

// pairDesc pairs the current descendant row with every matching stack
// entry: the bottom's pair goes straight to the output queue, the rest
// buffer in their entry's self list (spilling the lists past the budget).
// matchAll skips the per-pair predicate; the caller asserts every stack
// entry matches (descendant-axis runs, see structJoinIter.emitRun).
func (it *structAncIter) pairDesc(matchAll bool) error {
	spill := false
	for i := range it.stack {
		e := &it.stack[i]
		if !matchAll && !it.j.pairMatches(e.row, it.descRow) {
			continue
		}
		pr, err := it.newPair(e.row)
		if err != nil {
			return err
		}
		if pr == nil {
			continue
		}
		if i == 0 {
			// Bottom pairs drain promptly through Next; queue them as
			// unaccounted mem segments (coalescing with a mem tail).
			if n := len(it.out); n > 0 && it.out[n-1].mem != nil && n-1 >= it.outSeg {
				it.out[n-1].mem = append(it.out[n-1].mem, pr)
			} else {
				it.out = append(it.out, ancSeg{mem: []Row{pr}})
			}
		} else if it.listAppend(&e.self, pr) {
			spill = true
		}
	}
	if spill {
		return it.spillLists()
	}
	return nil
}

// advance runs merge steps until the output queue is non-empty or the
// join is done, consuming the descendant side a run at a time.
func (it *structAncIter) advance() error {
	for {
		if err := it.ctx.check(); err != nil {
			return err
		}
		ok, err := it.ds.ensure()
		if err != nil {
			return err
		}
		if !ok {
			// No more descendants: no further pairs, flush every
			// buffered list in pop order.
			for len(it.stack) > 0 {
				it.popOne()
			}
			it.done = true
			return nil
		}
		dIn := it.ds.in(it.ds.pos)

		// Pull and stack every ancestor starting before the current
		// descendant; later ones cannot contain it.
		for !it.ancEOF {
			if !it.haveAnc {
				row, ok, err := it.anc.Next()
				if err != nil {
					return err
				}
				if !ok {
					it.ancEOF = true
					break
				}
				it.ancRow = row
				it.haveAnc = true
			}
			aIn := it.ancRow[it.j.ancSlot].In
			if aIn >= dIn {
				break
			}
			it.popBelow(aIn)
			it.push(it.ancRow)
			it.haveAnc = false
		}

		it.popBelow(dIn)
		if len(it.stack) == 0 {
			if it.ancEOF {
				it.done = true
				return nil
			}
			// No enclosing ancestor: leap the descendant stream to the
			// next ancestor's subtree (see structJoinIter).
			if _, err := it.ds.seekInGE(it.ancRow[it.j.ancSlot].In + 1); err != nil {
				return err
			}
			if len(it.out) > 0 {
				return nil // the pops above flushed a finished epoch
			}
			continue
		}

		// Pair the whole run of buffered descendants that see this exact
		// stack (see structJoinIter.NextBatch for the run bound); on the
		// descendant axis the per-pair predicate is skipped wholesale.
		runMax := it.stack[len(it.stack)-1].row[it.j.ancSlot].Out
		if !it.ancEOF {
			if aIn := it.ancRow[it.j.ancSlot].In; aIn < runMax {
				runMax = aIn
			}
		}
		end := it.ds.pos + 1
		for n := it.ds.b.Len(); end < n && it.ds.in(end) <= runMax; end++ {
		}
		matchAll := it.j.Pred.Axis != tpm.AxisChild
		run := end - it.ds.pos
		for it.ds.pos < end {
			it.descRow = it.ds.row(it.ds.pos)
			if err := it.pairDesc(matchAll); err != nil {
				return err
			}
			it.ds.pos++
		}
		if err := it.ctx.checkN(run); err != nil {
			return err
		}
		if len(it.out) > 0 {
			return nil
		}
	}
}

// emitNext pulls the next queued row out of the segment chain: in-memory
// rows hand over their buffer (recycled after the consumer moves on), disk
// rows decode into a reused buffer via the seekable segment reader.
func (it *structAncIter) emitNext() (Row, bool, error) {
	for it.outSeg < len(it.out) {
		seg := &it.out[it.outSeg]
		if seg.mem != nil {
			if it.outPos < len(seg.mem) {
				r := seg.mem[it.outPos]
				seg.mem[it.outPos] = nil
				it.outPos++
				it.last = r
				it.lastPooled = true
				return r, true, nil
			}
		} else if it.outPos < seg.n {
			if it.outPos == 0 {
				if it.segR == nil {
					r, err := recfile.OpenSegReader(it.spillPath)
					if err != nil {
						return nil, false, err
					}
					it.segR = r
				}
				if err := it.segR.SeekTo(seg.off); err != nil {
					return nil, false, err
				}
			}
			rec, err := it.segR.Next()
			if err != nil {
				return nil, false, err
			}
			if it.decbuf == nil {
				it.decbuf = make(Row, len(it.j.schema.Aliases))
			}
			if err := decodeRowInto(it.decbuf, rec); err != nil {
				return nil, false, err
			}
			it.outPos++
			it.last = it.decbuf
			it.lastPooled = false // reused decode buffer, never pooled
			return it.decbuf, true, nil
		}
		// Segment drained: return its budget reservation.
		it.ctx.Budget.Release(seg.res)
		it.reserved -= seg.res
		seg.res = 0
		it.outSeg++
		it.outPos = 0
	}
	return nil, false, nil
}

func (it *structAncIter) Next() (Row, bool, error) {
	if it.last != nil {
		// The previously returned row is dead per the rowIter contract.
		if it.lastPooled {
			it.free = append(it.free, it.last)
		}
		it.last = nil
	}
	for {
		if err := it.ctx.check(); err != nil {
			return nil, false, err
		}
		r, ok, err := it.emitNext()
		if err != nil {
			return nil, false, err
		}
		if ok {
			it.ctx.Counters.RowsStructural++
			it.j.stats.Rows++
			return r, true, nil
		}
		it.out = it.out[:0]
		it.outSeg = 0
		it.outPos = 0
		if it.done {
			return nil, false, nil
		}
		if err := it.advance(); err != nil {
			return nil, false, err
		}
	}
}

// Close releases the iterator's resources at any point mid-stream: the
// input iterators, every outstanding budget reservation, and the spill
// file (removed).
func (it *structAncIter) Close() error {
	err := it.left.Close()
	if rerr := it.right.Close(); err == nil {
		err = rerr
	}
	it.ctx.Budget.Release(it.reserved)
	it.reserved = 0
	if it.segR != nil {
		it.segR.Close()
		it.segR = nil
	}
	if it.spillW != nil {
		it.spillW.Abort()
		it.spillW = nil
	}
	return err
}

package exec

import (
	"fmt"

	"xqdb/internal/tpm"
)

// StructuralJoin is the stack-based structural merge join: both inputs
// arrive in document (in) order, and one merge pass pairs ancestors with
// their descendants (or parents with their children) by maintaining a
// stack of the ancestors whose intervals enclose the current merge
// position. Every input tuple is read exactly once, so the join costs
// O(left + right + output) with no index probes and no inner rescans —
// the interval containment that nested-loops operators re-check per pair
// is answered by the stack invariant.
//
// The operator implements both emission orders of the structural-join
// family. With AncOrder false (Stack-Tree-Desc, the default) output
// follows the descendant side's document order: per descendant row,
// matching ancestors emit bottom-up (outermost first), which is their
// arrival order. Hence
//
//	right side = descendant: output sorted by (right, left-order...)
//	right side = ancestor:   output sorted by (left-order..., right) —
//	                         order-preserving in the planner's sense.
//
// With AncOrder true (Stack-Tree-Anc) output follows the ancestor side's
// arrival order instead: every stack entry buffers its pairs in a self
// output list, adopts the lists of entries popped above it into an
// inherit list, and flushes self-then-inherit when it pops — pairs whose
// ancestor is the stack bottom stream through immediately. That makes
// the operator order-preserving for ancestor-first vartuples
// (the `for $a in //X for $d in $a//Y` shape) at the price of buffering
// up to the non-bottom share of the output; the planner prices that via
// the peak-list term and tracks both orders through built.orderSeq.
type StructuralJoin struct {
	Left, Right PlanNode
	// Pred is the structural predicate joining one Left alias with one
	// Right alias.
	Pred tpm.StructuralPred
	// Conds are residual cross conditions evaluated per emitted row.
	Conds []tpm.Cmp
	// AncOrder selects the Stack-Tree-Anc emission order (see above).
	AncOrder bool
	Est_     Est

	schema   *Schema
	stats    OpStats
	ancLeft  bool // the ancestor side is Left
	ancSlot  int  // slot of Pred.Anc within its side's schema
	descSlot int  // slot of Pred.Desc within its side's schema
}

// NewStructuralJoin builds a structural merge join of left and right. The
// predicate must relate one alias of each side; which side is the
// ancestor is derived from the schemas.
func NewStructuralJoin(left, right PlanNode, pred tpm.StructuralPred, conds []tpm.Cmp) *StructuralJoin {
	j := &StructuralJoin{Left: left, Right: right, Pred: pred, Conds: conds,
		schema: left.Schema().Concat(right.Schema())}
	j.ancLeft = left.Schema().Slot(pred.Anc) >= 0
	if j.ancLeft {
		j.ancSlot = left.Schema().Slot(pred.Anc)
		j.descSlot = right.Schema().Slot(pred.Desc)
	} else {
		j.ancSlot = right.Schema().Slot(pred.Anc)
		j.descSlot = left.Schema().Slot(pred.Desc)
	}
	return j
}

// Schema implements PlanNode.
func (j *StructuralJoin) Schema() *Schema { return j.schema }

// Children implements PlanNode.
func (j *StructuralJoin) Children() []PlanNode { return []PlanNode{j.Left, j.Right} }

// Estimate implements PlanNode.
func (j *StructuralJoin) Estimate() Est { return j.Est_ }

// Stats implements PlanNode.
func (j *StructuralJoin) Stats() *OpStats { return &j.stats }

// Describe implements PlanNode.
func (j *StructuralJoin) Describe() string {
	order := ""
	if j.AncOrder {
		order = ", anc-ordered"
	}
	d := fmt.Sprintf("structural-join %s [stack merge, %s axis%s]", j.Pred, j.Pred.Axis, order)
	if len(j.Conds) > 0 {
		d += fmt.Sprintf(" σ(%s)", condsString(j.Conds))
	}
	return d
}

func (j *StructuralJoin) open(ctx *Ctx, outer Row, outerSchema *Schema) (rowIter, error) {
	if outer != nil {
		return nil, fmt.Errorf("exec: structural join cannot be an INL inner")
	}
	left, err := j.Left.open(ctx, nil, nil)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.open(ctx, nil, nil)
	if err != nil {
		left.Close()
		return nil, err
	}
	j.stats.Opens++
	if j.AncOrder {
		it := &structAncIter{ctx: ctx, j: j, left: left, right: right}
		if j.ancLeft {
			it.anc, it.desc = left, right
		} else {
			it.anc, it.desc = right, left
		}
		it.descSeek, _ = it.desc.(inSeeker)
		return it, nil
	}
	it := &structJoinIter{ctx: ctx, j: j, left: left, right: right}
	if j.ancLeft {
		it.anc, it.desc = left, right
	} else {
		it.anc, it.desc = right, left
	}
	it.descSeek, _ = it.desc.(inSeeker)
	return it, nil
}

// structJoinIter runs the merge. Both streams are consumed in document
// order; stack holds copies of ancestor-side rows whose intervals enclose
// the current descendant position, bottom = outermost. Per descendant row
// the matching stack entries emit one pair per Next call (emitIdx walks
// the stack bottom-up), so the operator stays fully pipelined.
type structJoinIter struct {
	ctx         *Ctx
	j           *StructuralJoin
	left, right rowIter
	anc, desc   rowIter
	descSeek    inSeeker // non-nil if desc supports seekInGE

	ancRow  Row // head of the ancestor stream (valid until anc.Next)
	haveAnc bool
	ancEOF  bool

	descRow  Row // current descendant row (valid until desc.Next)
	haveDesc bool
	done     bool

	// stack entries are copies (children reuse their row buffers); popped
	// slots keep their backing arrays for reuse by later pushes.
	stack    []Row
	emitIdx  int
	emitting bool

	joined Row // reused output buffer (see rowIter contract)
}

// pairMatches evaluates the structural predicate between an ancestor-side
// row and a descendant-side row. The stack invariant already guarantees
// containment for the descendant axis; the explicit check also rejects
// the self-pair (equal in) and decides the child axis.
func (j *StructuralJoin) pairMatches(anc, desc Row) bool {
	a := anc[j.ancSlot]
	d := desc[j.descSlot]
	if j.Pred.Axis == tpm.AxisChild {
		return d.ParentIn == a.In
	}
	return a.In < d.In && d.Out < a.Out
}

// push copies row onto the stack, reusing the backing array of a
// previously popped slot when possible.
func (it *structJoinIter) push(row Row) {
	n := len(it.stack)
	if n < cap(it.stack) {
		it.stack = it.stack[:n+1]
	} else {
		it.stack = append(it.stack, nil)
	}
	it.stack[n] = append(it.stack[n][:0], row...)
	depth := int64(len(it.stack))
	if depth > it.j.stats.StackMax {
		it.j.stats.StackMax = depth
	}
	if depth > it.ctx.Counters.StructStackMax {
		it.ctx.Counters.StructStackMax = depth
	}
}

// popBelow pops stack entries whose intervals end before pos: they can
// contain no tuple at or after the current merge position.
func (it *structJoinIter) popBelow(pos uint32) {
	for n := len(it.stack); n > 0; n-- {
		if it.stack[n-1][it.j.ancSlot].Out >= pos {
			break
		}
		it.stack = it.stack[:n-1]
	}
}

func (it *structJoinIter) Next() (Row, bool, error) {
	for {
		if err := it.ctx.Deadline.Check(); err != nil {
			return nil, false, err
		}
		if it.done {
			return nil, false, nil
		}
		if it.emitting {
			for it.emitIdx < len(it.stack) {
				entry := it.stack[it.emitIdx]
				it.emitIdx++
				if !it.j.pairMatches(entry, it.descRow) {
					continue
				}
				if it.j.ancLeft {
					it.joined = append(append(it.joined[:0], entry...), it.descRow...)
				} else {
					it.joined = append(append(it.joined[:0], it.descRow...), entry...)
				}
				pass, err := evalConds(it.j.Conds, it.joined, it.j.schema, it.ctx.Env)
				if err != nil {
					return nil, false, err
				}
				if pass {
					it.ctx.Counters.RowsStructural++
					it.j.stats.Rows++
					return it.joined, true, nil
				}
			}
			it.emitting = false
			it.haveDesc = false
		}
		if !it.haveDesc {
			row, ok, err := it.desc.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				// No more descendants: pending ancestors cannot produce
				// output.
				it.done = true
				return nil, false, nil
			}
			it.descRow = row
			it.haveDesc = true
		}
		dIn := it.descRow[it.j.descSlot].In

		// Pull and stack every ancestor starting before the current
		// descendant; later ones cannot contain it.
		for !it.ancEOF {
			if !it.haveAnc {
				row, ok, err := it.anc.Next()
				if err != nil {
					return nil, false, err
				}
				if !ok {
					it.ancEOF = true
					break
				}
				it.ancRow = row
				it.haveAnc = true
			}
			aIn := it.ancRow[it.j.ancSlot].In
			if aIn >= dIn {
				break
			}
			it.popBelow(aIn)
			it.push(it.ancRow)
			it.haveAnc = false
		}

		it.popBelow(dIn)
		if len(it.stack) == 0 {
			if it.ancEOF {
				it.done = true
				return nil, false, nil
			}
			// No enclosing ancestor: nothing before the next ancestor's
			// subtree can match, so leap the descendant stream forward.
			// The pull loop above only leaves an unconsumed head when
			// aIn >= dIn, so the target always makes forward progress.
			it.haveDesc = false
			if it.descSeek != nil {
				if _, err := it.descSeek.seekInGE(it.ancRow[it.j.ancSlot].In + 1); err != nil {
					return nil, false, err
				}
			}
			continue
		}
		it.emitting = true
		it.emitIdx = 0
	}
}

func (it *structJoinIter) Close() error {
	err := it.left.Close()
	if rerr := it.right.Close(); err == nil {
		err = rerr
	}
	return err
}

// ancEntry is one stack slot of the Stack-Tree-Anc merge: a copy of the
// ancestor-side input row plus the two output lists of the algorithm.
// self holds the pairs whose ancestor is this entry; inherit holds the
// pairs adopted from entries popped above it. An entry flushes
// self-then-inherit when it pops — to the entry below it, or straight to
// the output queue when it is the stack bottom. Popped slots keep their
// backing arrays for reuse by later pushes.
type ancEntry struct {
	row     Row
	self    []Row
	inherit []Row
}

// structAncIter runs the ancestor-ordered merge (Stack-Tree-Anc). The
// stream handling is identical to structJoinIter — both inputs in
// document order, a stack of enclosing ancestor-side rows, descendant
// skip-ahead — but emission differs: pairs whose ancestor is the stack
// bottom are appended to the output queue immediately (nothing earlier in
// ancestor order can still arrive), while pairs with stacked ancestors
// buffer in per-entry output lists that cascade downward on pop. The
// result streams in ancestor order: sorted by the ancestor stream's
// arrival order, descendants in document order within one ancestor row.
//
// Output rows are materialized (the lists outlive the input rows'
// buffers); consumed rows return to a free pool, and the buffered-row
// high-water mark is tracked as the operator's list mark.
type structAncIter struct {
	ctx         *Ctx
	j           *StructuralJoin
	left, right rowIter
	anc, desc   rowIter
	descSeek    inSeeker // non-nil if desc supports seekInGE

	ancRow  Row // head of the ancestor stream (valid until anc.Next)
	haveAnc bool
	ancEOF  bool

	descRow  Row // current descendant row (valid until desc.Next)
	haveDesc bool
	descEOF  bool
	done     bool

	stack []ancEntry

	// out is the emission queue: immediately-emitted bottom pairs and
	// flushed lists, in ancestor order. outIdx walks it; drained queues
	// reset and reuse the backing array.
	out    []Row
	outIdx int

	last     Row   // row returned by the previous Next, recycled on entry
	free     []Row // recycled row buffers
	buffered int64 // rows currently held in self/inherit lists
}

// newPair materializes the joined row for (anc, current descendant) from
// the free pool and evaluates the residual conditions, returning nil for
// pairs the conditions reject (they are never buffered).
func (it *structAncIter) newPair(anc Row) (Row, error) {
	var buf Row
	if n := len(it.free); n > 0 {
		buf = it.free[n-1][:0]
		it.free = it.free[:n-1]
	}
	if it.j.ancLeft {
		buf = append(append(buf, anc...), it.descRow...)
	} else {
		buf = append(append(buf, it.descRow...), anc...)
	}
	pass, err := evalConds(it.j.Conds, buf, it.j.schema, it.ctx.Env)
	if err != nil {
		return nil, err
	}
	if !pass {
		it.free = append(it.free, buf)
		return nil, nil
	}
	return buf, nil
}

// bufAdd tallies one row entering a self/inherit list, tracking the
// output-list high-water mark on the operator and the query counters.
func (it *structAncIter) bufAdd() {
	it.buffered++
	if it.buffered > it.j.stats.ListMax {
		it.j.stats.ListMax = it.buffered
	}
	if it.buffered > it.ctx.Counters.StructListMax {
		it.ctx.Counters.StructListMax = it.buffered
	}
}

// push copies row onto the stack with fresh (capacity-reusing) lists.
func (it *structAncIter) push(row Row) {
	n := len(it.stack)
	if n < cap(it.stack) {
		it.stack = it.stack[:n+1]
	} else {
		it.stack = append(it.stack, ancEntry{})
	}
	e := &it.stack[n]
	e.row = append(e.row[:0], row...)
	e.self = e.self[:0]
	e.inherit = e.inherit[:0]
	depth := int64(len(it.stack))
	if depth > it.j.stats.StackMax {
		it.j.stats.StackMax = depth
	}
	if depth > it.ctx.Counters.StructStackMax {
		it.ctx.Counters.StructStackMax = depth
	}
}

// popOne pops the top entry and routes its output lists: self before
// inherit, onto the entry below — or onto the output queue when the
// popped entry was the stack bottom (its immediate pairs are already out;
// only adopted lists remain).
func (it *structAncIter) popOne() {
	n := len(it.stack)
	top := &it.stack[n-1]
	it.stack = it.stack[:n-1]
	if n-1 == 0 {
		it.buffered -= int64(len(top.self) + len(top.inherit))
		it.out = append(it.out, top.self...)
		it.out = append(it.out, top.inherit...)
	} else {
		below := &it.stack[n-2]
		below.inherit = append(below.inherit, top.self...)
		below.inherit = append(below.inherit, top.inherit...)
	}
	top.self = top.self[:0]
	top.inherit = top.inherit[:0]
}

// popBelow pops stack entries whose intervals end before pos.
func (it *structAncIter) popBelow(pos uint32) {
	for len(it.stack) > 0 && it.stack[len(it.stack)-1].row[it.j.ancSlot].Out < pos {
		it.popOne()
	}
}

// pairDesc pairs the current descendant row with every matching stack
// entry: the bottom's pair goes straight to the output queue, the rest
// buffer in their entry's self list.
func (it *structAncIter) pairDesc() error {
	for i := range it.stack {
		e := &it.stack[i]
		if !it.j.pairMatches(e.row, it.descRow) {
			continue
		}
		pr, err := it.newPair(e.row)
		if err != nil {
			return err
		}
		if pr == nil {
			continue
		}
		if i == 0 {
			it.out = append(it.out, pr)
		} else {
			e.self = append(e.self, pr)
			it.bufAdd()
		}
	}
	return nil
}

// advance runs merge steps until the output queue is non-empty or the
// join is done.
func (it *structAncIter) advance() error {
	for {
		if !it.haveDesc && !it.descEOF {
			row, ok, err := it.desc.Next()
			if err != nil {
				return err
			}
			if !ok {
				it.descEOF = true
			} else {
				it.descRow = row
				it.haveDesc = true
			}
		}
		if it.descEOF {
			// No more descendants: no further pairs, flush every
			// buffered list in pop order.
			for len(it.stack) > 0 {
				it.popOne()
			}
			it.done = true
			return nil
		}
		dIn := it.descRow[it.j.descSlot].In

		// Pull and stack every ancestor starting before the current
		// descendant; later ones cannot contain it.
		for !it.ancEOF {
			if !it.haveAnc {
				row, ok, err := it.anc.Next()
				if err != nil {
					return err
				}
				if !ok {
					it.ancEOF = true
					break
				}
				it.ancRow = row
				it.haveAnc = true
			}
			aIn := it.ancRow[it.j.ancSlot].In
			if aIn >= dIn {
				break
			}
			it.popBelow(aIn)
			it.push(it.ancRow)
			it.haveAnc = false
		}

		it.popBelow(dIn)
		if len(it.stack) == 0 {
			if it.ancEOF {
				it.done = true
				return nil
			}
			// No enclosing ancestor: leap the descendant stream to the
			// next ancestor's subtree (see structJoinIter).
			it.haveDesc = false
			if it.descSeek != nil {
				if _, err := it.descSeek.seekInGE(it.ancRow[it.j.ancSlot].In + 1); err != nil {
					return err
				}
			}
			if len(it.out) > 0 {
				return nil // the pops above flushed a finished epoch
			}
			continue
		}
		if err := it.pairDesc(); err != nil {
			return err
		}
		it.haveDesc = false
		if len(it.out) > 0 {
			return nil
		}
	}
}

func (it *structAncIter) Next() (Row, bool, error) {
	if it.last != nil {
		// The previously returned row is dead per the rowIter contract.
		it.free = append(it.free, it.last)
		it.last = nil
	}
	for {
		if err := it.ctx.Deadline.Check(); err != nil {
			return nil, false, err
		}
		if it.outIdx < len(it.out) {
			r := it.out[it.outIdx]
			it.out[it.outIdx] = nil
			it.outIdx++
			it.last = r
			it.ctx.Counters.RowsStructural++
			it.j.stats.Rows++
			return r, true, nil
		}
		it.out = it.out[:0]
		it.outIdx = 0
		if it.done {
			return nil, false, nil
		}
		if err := it.advance(); err != nil {
			return nil, false, err
		}
	}
}

func (it *structAncIter) Close() error {
	err := it.left.Close()
	if rerr := it.right.Close(); err == nil {
		err = rerr
	}
	return err
}

package exec

import (
	"fmt"

	"xqdb/internal/tpm"
)

// StructuralJoin is the stack-based structural merge join (the
// Stack-Tree-Desc family): both inputs arrive in document (in) order, and
// one merge pass pairs ancestors with their descendants (or parents with
// their children) by maintaining a stack of the ancestors whose intervals
// enclose the current merge position. Every input tuple is read exactly
// once, so the join costs O(left + right + output) with no index probes
// and no inner rescans — the interval containment that nested-loops
// operators re-check per pair is answered by the stack invariant.
//
// Output order is the descendant side's document order: per descendant
// row, matching ancestors emit bottom-up (outermost first), which is
// their arrival order. Hence
//
//	right side = descendant: output sorted by (right, left-order...)
//	right side = ancestor:   output sorted by (left-order..., right) —
//	                         order-preserving in the planner's sense.
//
// The planner tracks this through built.orderSeq exactly like it does for
// the other joins.
type StructuralJoin struct {
	Left, Right PlanNode
	// Pred is the structural predicate joining one Left alias with one
	// Right alias.
	Pred tpm.StructuralPred
	// Conds are residual cross conditions evaluated per emitted row.
	Conds []tpm.Cmp
	Est_  Est

	schema   *Schema
	stats    OpStats
	ancLeft  bool // the ancestor side is Left
	ancSlot  int  // slot of Pred.Anc within its side's schema
	descSlot int  // slot of Pred.Desc within its side's schema
}

// NewStructuralJoin builds a structural merge join of left and right. The
// predicate must relate one alias of each side; which side is the
// ancestor is derived from the schemas.
func NewStructuralJoin(left, right PlanNode, pred tpm.StructuralPred, conds []tpm.Cmp) *StructuralJoin {
	j := &StructuralJoin{Left: left, Right: right, Pred: pred, Conds: conds,
		schema: left.Schema().Concat(right.Schema())}
	j.ancLeft = left.Schema().Slot(pred.Anc) >= 0
	if j.ancLeft {
		j.ancSlot = left.Schema().Slot(pred.Anc)
		j.descSlot = right.Schema().Slot(pred.Desc)
	} else {
		j.ancSlot = right.Schema().Slot(pred.Anc)
		j.descSlot = left.Schema().Slot(pred.Desc)
	}
	return j
}

// Schema implements PlanNode.
func (j *StructuralJoin) Schema() *Schema { return j.schema }

// Children implements PlanNode.
func (j *StructuralJoin) Children() []PlanNode { return []PlanNode{j.Left, j.Right} }

// Estimate implements PlanNode.
func (j *StructuralJoin) Estimate() Est { return j.Est_ }

// Stats implements PlanNode.
func (j *StructuralJoin) Stats() *OpStats { return &j.stats }

// Describe implements PlanNode.
func (j *StructuralJoin) Describe() string {
	d := fmt.Sprintf("structural-join %s [stack merge, %s axis]", j.Pred, j.Pred.Axis)
	if len(j.Conds) > 0 {
		d += fmt.Sprintf(" σ(%s)", condsString(j.Conds))
	}
	return d
}

func (j *StructuralJoin) open(ctx *Ctx, outer Row, outerSchema *Schema) (rowIter, error) {
	if outer != nil {
		return nil, fmt.Errorf("exec: structural join cannot be an INL inner")
	}
	left, err := j.Left.open(ctx, nil, nil)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.open(ctx, nil, nil)
	if err != nil {
		left.Close()
		return nil, err
	}
	j.stats.Opens++
	it := &structJoinIter{ctx: ctx, j: j, left: left, right: right}
	if j.ancLeft {
		it.anc, it.desc = left, right
	} else {
		it.anc, it.desc = right, left
	}
	it.descSeek, _ = it.desc.(inSeeker)
	return it, nil
}

// structJoinIter runs the merge. Both streams are consumed in document
// order; stack holds copies of ancestor-side rows whose intervals enclose
// the current descendant position, bottom = outermost. Per descendant row
// the matching stack entries emit one pair per Next call (emitIdx walks
// the stack bottom-up), so the operator stays fully pipelined.
type structJoinIter struct {
	ctx         *Ctx
	j           *StructuralJoin
	left, right rowIter
	anc, desc   rowIter
	descSeek    inSeeker // non-nil if desc supports seekInGE

	ancRow  Row // head of the ancestor stream (valid until anc.Next)
	haveAnc bool
	ancEOF  bool

	descRow  Row // current descendant row (valid until desc.Next)
	haveDesc bool
	done     bool

	// stack entries are copies (children reuse their row buffers); popped
	// slots keep their backing arrays for reuse by later pushes.
	stack    []Row
	emitIdx  int
	emitting bool

	joined Row // reused output buffer (see rowIter contract)
}

// matches evaluates the structural predicate between an ancestor-side
// stack entry and the current descendant row. The stack invariant already
// guarantees containment for the descendant axis; the explicit check also
// rejects the self-pair (equal in) and decides the child axis.
func (it *structJoinIter) matches(anc Row) bool {
	a := anc[it.j.ancSlot]
	d := it.descRow[it.j.descSlot]
	if it.j.Pred.Axis == tpm.AxisChild {
		return d.ParentIn == a.In
	}
	return a.In < d.In && d.Out < a.Out
}

// push copies row onto the stack, reusing the backing array of a
// previously popped slot when possible.
func (it *structJoinIter) push(row Row) {
	n := len(it.stack)
	if n < cap(it.stack) {
		it.stack = it.stack[:n+1]
	} else {
		it.stack = append(it.stack, nil)
	}
	it.stack[n] = append(it.stack[n][:0], row...)
	depth := int64(len(it.stack))
	if depth > it.j.stats.StackMax {
		it.j.stats.StackMax = depth
	}
	if depth > it.ctx.Counters.StructStackMax {
		it.ctx.Counters.StructStackMax = depth
	}
}

// popBelow pops stack entries whose intervals end before pos: they can
// contain no tuple at or after the current merge position.
func (it *structJoinIter) popBelow(pos uint32) {
	for n := len(it.stack); n > 0; n-- {
		if it.stack[n-1][it.j.ancSlot].Out >= pos {
			break
		}
		it.stack = it.stack[:n-1]
	}
}

func (it *structJoinIter) Next() (Row, bool, error) {
	for {
		if err := it.ctx.Deadline.Check(); err != nil {
			return nil, false, err
		}
		if it.done {
			return nil, false, nil
		}
		if it.emitting {
			for it.emitIdx < len(it.stack) {
				entry := it.stack[it.emitIdx]
				it.emitIdx++
				if !it.matches(entry) {
					continue
				}
				if it.j.ancLeft {
					it.joined = append(append(it.joined[:0], entry...), it.descRow...)
				} else {
					it.joined = append(append(it.joined[:0], it.descRow...), entry...)
				}
				pass, err := evalConds(it.j.Conds, it.joined, it.j.schema, it.ctx.Env)
				if err != nil {
					return nil, false, err
				}
				if pass {
					it.ctx.Counters.RowsStructural++
					it.j.stats.Rows++
					return it.joined, true, nil
				}
			}
			it.emitting = false
			it.haveDesc = false
		}
		if !it.haveDesc {
			row, ok, err := it.desc.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				// No more descendants: pending ancestors cannot produce
				// output.
				it.done = true
				return nil, false, nil
			}
			it.descRow = row
			it.haveDesc = true
		}
		dIn := it.descRow[it.j.descSlot].In

		// Pull and stack every ancestor starting before the current
		// descendant; later ones cannot contain it.
		for !it.ancEOF {
			if !it.haveAnc {
				row, ok, err := it.anc.Next()
				if err != nil {
					return nil, false, err
				}
				if !ok {
					it.ancEOF = true
					break
				}
				it.ancRow = row
				it.haveAnc = true
			}
			aIn := it.ancRow[it.j.ancSlot].In
			if aIn >= dIn {
				break
			}
			it.popBelow(aIn)
			it.push(it.ancRow)
			it.haveAnc = false
		}

		it.popBelow(dIn)
		if len(it.stack) == 0 {
			if it.ancEOF {
				it.done = true
				return nil, false, nil
			}
			// No enclosing ancestor: nothing before the next ancestor's
			// subtree can match, so leap the descendant stream forward.
			// The pull loop above only leaves an unconsumed head when
			// aIn >= dIn, so the target always makes forward progress.
			it.haveDesc = false
			if it.descSeek != nil {
				if _, err := it.descSeek.seekInGE(it.ancRow[it.j.ancSlot].In + 1); err != nil {
					return nil, false, err
				}
			}
			continue
		}
		it.emitting = true
		it.emitIdx = 0
	}
}

func (it *structJoinIter) Close() error {
	err := it.left.Close()
	if rerr := it.right.Close(); err == nil {
		err = rerr
	}
	return err
}

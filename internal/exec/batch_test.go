package exec

import (
	"errors"
	"testing"
	"time"

	"xqdb/internal/limit"
	"xqdb/internal/tpm"
	"xqdb/internal/xasr"
)

// drainBatches pulls a plan to exhaustion through the batch contract,
// copying rows out (batch contents are only valid until the next
// NextBatch call).
func drainBatches(t *testing.T, ctx *Ctx, n PlanNode) []Row {
	t.Helper()
	it, err := n.open(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	slots := len(n.Schema().Aliases)
	bi := asBatch(ctx, it, slots)
	var rows []Row
	var b Batch
	for {
		k, err := bi.NextBatch(&b)
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			return rows
		}
		if b.Len() != k {
			t.Fatalf("NextBatch returned %d but Len() is %d", k, b.Len())
		}
		for i := 0; i < k; i++ {
			rows = append(rows, append(Row(nil), b.row(i, nil)...))
		}
	}
}

func sameRows(t *testing.T, label string, got, want []Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d width %d, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: row %d slot %d = %+v, want %+v", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestScanNextBatchMatchesNext drains the same scans through both sides
// of the iterator contract: the native NextBatch fill must produce
// exactly the row sequence of Next, residual predicates included.
func TestScanNextBatchMatchesNext(t *testing.T) {
	doc := deepNestedDoc(8, 5)
	plans := map[string]PlanNode{
		"full":  NewScan("R", Access{Kind: AccessFull}, nil),
		"label": labelScan("B", "b"),
		"filtered": NewScan("B", Access{Kind: AccessLabel, Type: xasr.TypeElem, Value: "b"},
			[]tpm.Cmp{tpm.Gt(tpm.AttrOp("B", tpm.ColIn), tpm.InOp(10))}),
	}
	for name, plan := range plans {
		want := drain(t, testCtx(t, doc), plan)
		got := drainBatches(t, testCtx(t, doc), plan)
		sameRows(t, "scan/"+name, got, want)
	}
}

// TestRowBatchAdapterRoundTrip forces the compatibility adapter (RowMode)
// over a filtered scan and checks it reproduces the row engine exactly,
// one row per batch.
func TestRowBatchAdapterRoundTrip(t *testing.T) {
	doc := deepNestedDoc(6, 4)
	plan := NewScan("B", Access{Kind: AccessLabel, Type: xasr.TypeElem, Value: "b"},
		[]tpm.Cmp{tpm.Gt(tpm.AttrOp("B", tpm.ColIn), tpm.InOp(7))})
	want := drain(t, testCtx(t, doc), plan)

	ctx := testCtx(t, doc)
	ctx.RowMode = true
	if cap := ctx.batchCap(); cap != 1 {
		t.Fatalf("RowMode batchCap = %d, want 1", cap)
	}
	it, err := plan.open(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	bi := asBatch(ctx, it, len(plan.Schema().Aliases))
	if _, native := bi.(*rowBatchAdapter); !native {
		t.Fatalf("RowMode must route through the row adapter, got %T", bi)
	}
	var rows []Row
	var b Batch
	for {
		k, err := bi.NextBatch(&b)
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			break
		}
		if k != 1 {
			t.Fatalf("RowMode batch carried %d rows, want 1", k)
		}
		rows = append(rows, append(Row(nil), b.row(0, nil)...))
	}
	sameRows(t, "adapter", rows, want)
}

// TestBatchSizeEquivalence replays a structural join under every batch
// capacity class — tiny, prime, default — plus the row adapter, and
// requires byte-identical row sequences. Capacity must never be
// observable in results.
func TestBatchSizeEquivalence(t *testing.T) {
	doc := deepNestedDoc(12, 9)
	plan := NewStructuralJoin(labelScan("A", "a"), labelScan("B", "b"), descPred("A", "B"), nil)
	want := drain(t, testCtx(t, doc), plan)
	if len(want) == 0 {
		t.Fatal("empty reference result — test document broken")
	}

	for _, size := range []int{1, 2, 3, 7, DefaultBatchSize} {
		ctx := testCtx(t, doc)
		ctx.BatchSize = size
		sameRows(t, "batch-size", drainBatches(t, ctx, plan), want)
	}
	ctx := testCtx(t, doc)
	ctx.RowMode = true
	sameRows(t, "row-mode", drainBatches(t, ctx, plan), want)
}

// TestBatchDeadlineAborts covers the per-batch poll: Budget.CheckN runs
// once per batch instead of once per row, so an expired deadline must
// still abort mid-stream — within roughly one batch of work, not after
// the join completes — and Close must leak no pins, temp files, or
// budget reservations.
func TestBatchDeadlineAborts(t *testing.T) {
	ctx := tinyCtx(t, deepNestedDoc(120, 60), 4<<10, limit.After(time.Millisecond))
	join := NewStructuralJoin(labelScan("A", "a"), labelScan("B", "b"), descPred("A", "B"), nil)
	it, err := join.open(ctx, nil, nil)
	if err == nil {
		bi := asBatch(ctx, it, len(join.Schema().Aliases))
		start := time.Now()
		var b Batch
		for {
			k, nerr := bi.NextBatch(&b)
			if nerr != nil {
				err = nerr
				break
			}
			if k == 0 {
				break
			}
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("deadline abort took %v — per-batch polling too coarse", elapsed)
		}
		if cerr := it.Close(); cerr != nil {
			t.Errorf("close after abort: %v", cerr)
		}
	}
	if !errors.Is(err, limit.ErrTimeout) {
		t.Fatalf("batched join finished with %v, want %v", err, limit.ErrTimeout)
	}
	if n := tempFileCount(t, ctx); n != 0 {
		t.Errorf("deadline abort leaked %d temp files", n)
	}
	if u := ctx.Budget.InUse(); u != 0 {
		t.Errorf("deadline abort leaked %d budget bytes", u)
	}
	if p := ctx.Store.PinnedPages(); p != 0 {
		t.Errorf("deadline abort leaked %d pinned pages", p)
	}
}

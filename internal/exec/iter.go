package exec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"xqdb/internal/recfile"
	"xqdb/internal/store"
	"xqdb/internal/tpm"
	"xqdb/internal/xasr"
)

// PlanNode is a physical operator in the plan tree.
type PlanNode interface {
	// Schema lists the relation aliases present in output rows.
	Schema() *Schema
	// Children returns the child operators (for EXPLAIN).
	Children() []PlanNode
	// Describe returns a one-line operator description (for EXPLAIN).
	Describe() string
	// Estimate returns the optimizer's row/cost estimates (may be zero).
	Estimate() Est
	// Stats returns the operator's runtime tallies (EXPLAIN ANALYZE).
	Stats() *OpStats
	// open returns a row iterator; outer/outerSchema are non-nil only for
	// the parameterized inner side of an index nested-loops join.
	open(ctx *Ctx, outer Row, outerSchema *Schema) (rowIter, error)
}

// Est holds optimizer estimates, attached to nodes for EXPLAIN output.
type Est struct {
	Rows float64
	Cost float64
}

// rowIter is the pull interface between operators. A returned Row is only
// valid until the next Next or Close call — iterators reuse their backing
// storage — so consumers that retain rows across calls must copy them.
type rowIter interface {
	Next() (Row, bool, error)
	Close() error
}

// ---------------------------------------------------------------- access

// AccessKind selects the access path of a Scan.
type AccessKind uint8

// Access paths of milestone 4: the full scan and primary range scan use
// the clustered tree from milestone 2; the label- and parent-index paths
// are the "index-based selection" students added in milestone 4.
const (
	AccessFull AccessKind = iota
	AccessRange
	AccessLabel
	AccessParent
)

// Access describes how a Scan fetches tuples.
type Access struct {
	Kind AccessKind
	// Type/Value select the label-index prefix (AccessLabel).
	Type  xasr.NodeType
	Value string
	// Bounded restricts AccessRange and AccessLabel to an in-interval:
	// resolve(Lo)+LoAdd <= in < resolve(Hi)+HiAdd. Hi of kind OpConstIn
	// with In=0 and HiAdd=0 means unbounded above.
	Bounded      bool
	Lo, Hi       tpm.Operand
	LoAdd, HiAdd uint32
	// Parent is the parent_in source for AccessParent.
	Parent tpm.Operand
}

// String renders the access path for EXPLAIN.
func (a Access) String() string {
	switch a.Kind {
	case AccessFull:
		return "full scan"
	case AccessRange:
		if a.Bounded {
			return fmt.Sprintf("range scan in ∈ [%s, %s)", boundStr(a.Lo, a.LoAdd), boundStr(a.Hi, a.HiAdd))
		}
		return "range scan"
	case AccessLabel:
		if a.Bounded {
			return fmt.Sprintf("label index (%s, %q) in ∈ [%s, %s)", a.Type, a.Value, boundStr(a.Lo, a.LoAdd), boundStr(a.Hi, a.HiAdd))
		}
		return fmt.Sprintf("label index (%s, %q)", a.Type, a.Value)
	case AccessParent:
		return fmt.Sprintf("parent index (parent_in = %s)", a.Parent)
	}
	return "?"
}

// boundStr renders an access bound operand with its additive offset.
func boundStr(op tpm.Operand, add uint32) string {
	if add == 0 {
		return op.String()
	}
	return fmt.Sprintf("%s+%d", op, add)
}

// Scan is the leaf operator: one XASR relation instance with pushed-down
// selections. As the inner of an index nested-loops join its bounds may
// reference attributes of the outer row.
type Scan struct {
	Alias  string
	Access Access
	// Conds are residual single-relation selections evaluated per tuple
	// (conditions subsumed by the access path are omitted by the planner).
	Conds []tpm.Cmp
	Est_  Est

	schema *Schema
	stats  OpStats
	cc     compiledConds
}

// NewScan builds a scan node.
func NewScan(alias string, access Access, conds []tpm.Cmp) *Scan {
	return &Scan{Alias: alias, Access: access, Conds: conds, schema: NewSchema(alias)}
}

// Schema implements PlanNode.
func (s *Scan) Schema() *Schema { return s.schema }

// Children implements PlanNode.
func (s *Scan) Children() []PlanNode { return nil }

// Estimate implements PlanNode.
func (s *Scan) Estimate() Est { return s.Est_ }

// Stats implements PlanNode.
func (s *Scan) Stats() *OpStats { return &s.stats }

// Describe implements PlanNode.
func (s *Scan) Describe() string {
	d := fmt.Sprintf("scan %s: %s", s.Alias, s.Access)
	if len(s.Conds) > 0 {
		d += fmt.Sprintf(" σ(%s)", condsString(s.Conds))
	}
	return d
}

func condsString(conds []tpm.Cmp) string {
	var b bytes.Buffer
	for i, c := range conds {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		b.WriteString(c.String())
	}
	return b.String()
}

func (s *Scan) open(ctx *Ctx, outer Row, outerSchema *Schema) (rowIter, error) {
	var lo, hi uint32
	if s.Access.Bounded {
		v, err := resolveIn(s.Access.Lo, outer, outerSchema, ctx.Env)
		if err != nil {
			return nil, err
		}
		lo = v + s.Access.LoAdd
		hv, err := resolveIn(s.Access.Hi, outer, outerSchema, ctx.Env)
		if err != nil {
			return nil, err
		}
		if hv != 0 || s.Access.HiAdd != 0 {
			hi = hv + s.Access.HiAdd
		}
	}
	s.stats.Opens++
	if err := s.cc.compile(s.Conds, s.schema); err != nil {
		return nil, err
	}
	it := &scanIter{ctx: ctx, scan: s}
	switch s.Access.Kind {
	case AccessFull:
		c, err := ctx.Store.OpenRange(0, 0)
		if err != nil {
			return nil, err
		}
		it.prim = c
	case AccessRange:
		if s.Access.Bounded && hi != 0 && lo >= hi {
			return emptyIter{}, nil
		}
		c, err := ctx.Store.OpenRange(lo, hi)
		if err != nil {
			return nil, err
		}
		it.prim = c
	case AccessLabel:
		if s.Access.Bounded && hi != 0 && lo >= hi {
			return emptyIter{}, nil
		}
		c, err := ctx.Store.OpenLabelRange(s.Access.Type, s.Access.Value, lo, hi)
		if err != nil {
			return nil, err
		}
		it.label = c
	case AccessParent:
		p, err := resolveIn(s.Access.Parent, outer, outerSchema, ctx.Env)
		if err != nil {
			return nil, err
		}
		c, err := ctx.Store.OpenChildren(p)
		if err != nil {
			return nil, err
		}
		it.child = c
	default:
		return nil, fmt.Errorf("exec: unknown access kind %d", s.Access.Kind)
	}
	return it, nil
}

type emptyIter struct{}

func (emptyIter) Next() (Row, bool, error) { return nil, false, nil }
func (emptyIter) Close() error             { return nil }

type scanIter struct {
	ctx   *Ctx
	scan  *Scan
	prim  *store.TupleCursor
	label *store.LabelRangeCursor
	child *store.ChildCursor
	// rowbuf backs every Row this iterator returns (see rowIter contract).
	rowbuf [1]xasr.Tuple
	// lbuf is the label-entry scratch NextBatch expands into tuples.
	lbuf []store.LabelEntry
}

func (it *scanIter) Next() (Row, bool, error) {
	for {
		if err := it.ctx.check(); err != nil {
			return nil, false, err
		}
		var t xasr.Tuple
		var ok bool
		var err error
		switch {
		case it.prim != nil:
			t, ok, err = it.prim.Next()
		case it.label != nil:
			var e store.LabelEntry
			e, ok, err = it.label.Next()
			if ok {
				t = xasr.Tuple{In: e.In, Out: e.Out, ParentIn: e.ParentIn,
					Type: it.scan.Access.Type, Value: it.scan.Access.Value}
			}
		case it.child != nil:
			t, ok, err = it.child.Next()
		}
		if err != nil || !ok {
			return nil, false, err
		}
		it.ctx.Counters.RowsScanned++
		it.rowbuf[0] = t
		row := Row(it.rowbuf[:])
		if len(it.scan.Conds) > 0 {
			it.scan.stats.SelRows++
		}
		pass, err := it.scan.cc.eval(row, it.ctx.Env)
		if err != nil {
			return nil, false, err
		}
		if pass {
			it.scan.stats.Rows++
			return row, true, nil
		}
	}
}

// NextBatch fills b straight from the store's leaf-at-a-time cursors: one
// bulk copy per leaf, no per-row materialization, and one budget poll per
// batch. Residual conditions compact the column in place, and the loop
// keeps pulling until at least one row qualifies, so a zero return always
// means the range is exhausted.
func (it *scanIter) NextBatch(b *Batch) (int, error) {
	capRows := it.ctx.batchCap()
	b.reset(1, capRows)
	conds := it.scan.Conds
	for {
		col := b.Cols[0][:capRows]
		var n int
		var err error
		switch {
		case it.prim != nil:
			n, err = it.prim.NextBatch(col)
		case it.label != nil:
			if cap(it.lbuf) < capRows {
				it.lbuf = make([]store.LabelEntry, capRows)
			}
			lb := it.lbuf[:capRows]
			n, err = it.label.NextBatch(lb)
			for i := 0; i < n; i++ {
				e := lb[i]
				col[i] = xasr.Tuple{In: e.In, Out: e.Out, ParentIn: e.ParentIn,
					Type: it.scan.Access.Type, Value: it.scan.Access.Value}
			}
		case it.child != nil:
			n, err = it.child.NextBatch(col)
		}
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, nil
		}
		if err := it.ctx.checkN(n); err != nil {
			return 0, err
		}
		it.ctx.Counters.RowsScanned += int64(n)
		kept := n
		if len(conds) > 0 {
			it.scan.stats.SelRows += int64(n)
			kept = 0
			for i := 0; i < n; i++ {
				pass, err := it.scan.cc.eval(col[i:i+1], it.ctx.Env)
				if err != nil {
					return 0, err
				}
				if pass {
					col[kept] = col[i]
					kept++
				}
			}
			if kept == 0 {
				continue
			}
		}
		b.Cols[0] = col[:kept]
		b.n = kept
		it.scan.stats.Rows += int64(kept)
		it.scan.stats.Batches++
		it.ctx.Counters.Batches++
		return kept, nil
	}
}

func (it *scanIter) Close() error {
	switch {
	case it.prim != nil:
		it.prim.Close()
	case it.label != nil:
		it.label.Close()
	case it.child != nil:
		it.child.Close()
	}
	return nil
}

// inSeeker is implemented by iterators that can skip forward to the first
// row whose tuple has in >= target (document order). The structural merge
// join uses it to leap over descendant runs that cannot match any pending
// ancestor. Returning ok=false means the iterator cannot seek and the
// caller must advance row by row.
type inSeeker interface {
	seekInGE(target uint32) (ok bool, err error)
}

func (it *scanIter) seekInGE(target uint32) (bool, error) {
	switch {
	case it.prim != nil:
		return true, it.prim.SeekGE(target)
	case it.label != nil:
		return true, it.label.SeekGE(target)
	}
	// Child cursors cover one parent's few children; skipping buys nothing.
	return false, nil
}

// ---------------------------------------------------------------- filter

// Filter applies residual conditions.
type Filter struct {
	Child PlanNode
	Conds []tpm.Cmp
	Est_  Est

	stats OpStats
	cc    compiledConds
}

// Schema implements PlanNode.
func (f *Filter) Schema() *Schema { return f.Child.Schema() }

// Children implements PlanNode.
func (f *Filter) Children() []PlanNode { return []PlanNode{f.Child} }

// Estimate implements PlanNode.
func (f *Filter) Estimate() Est { return f.Est_ }

// Stats implements PlanNode.
func (f *Filter) Stats() *OpStats { return &f.stats }

// Describe implements PlanNode.
func (f *Filter) Describe() string { return fmt.Sprintf("filter σ(%s)", condsString(f.Conds)) }

func (f *Filter) open(ctx *Ctx, outer Row, outerSchema *Schema) (rowIter, error) {
	child, err := f.Child.open(ctx, outer, outerSchema)
	if err != nil {
		return nil, err
	}
	f.stats.Opens++
	if err := f.cc.compile(f.Conds, f.Schema()); err != nil {
		child.Close()
		return nil, err
	}
	it := &filterIter{ctx: ctx, f: f, child: child}
	it.childB = asBatch(ctx, child, len(f.Schema().Aliases))
	return it, nil
}

type filterIter struct {
	ctx    *Ctx
	f      *Filter
	child  rowIter
	childB batchIter
	selbuf []int32
	rbuf   Row
}

func (it *filterIter) Next() (Row, bool, error) {
	for {
		row, ok, err := it.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.f.stats.SelRows++
		pass, err := it.f.cc.eval(row, it.ctx.Env)
		if err != nil {
			return nil, false, err
		}
		if pass {
			it.f.stats.Rows++
			return row, true, nil
		}
	}
}

// NextBatch evaluates the residual conjunction over a whole child batch
// and publishes the qualifying rows as a selection vector — no row is
// copied or moved. It keeps pulling until a batch with at least one
// qualifying row arrives or the child ends.
func (it *filterIter) NextBatch(b *Batch) (int, error) {
	for {
		n, err := it.childB.NextBatch(b)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, nil
		}
		it.f.stats.SelRows += int64(n)
		sel := it.selbuf[:0]
		for i := 0; i < n; i++ {
			row := b.row(i, it.rbuf)
			if len(b.Cols) > 1 {
				it.rbuf = row
			}
			pass, err := it.f.cc.eval(row, it.ctx.Env)
			if err != nil {
				return 0, err
			}
			if pass {
				sel = append(sel, int32(b.rowIdx(i)))
			}
		}
		it.selbuf = sel
		if len(sel) == 0 {
			continue
		}
		b.Sel = sel
		it.f.stats.Rows += int64(len(sel))
		it.f.stats.Batches++
		it.ctx.Counters.Batches++
		return len(sel), nil
	}
}

func (it *filterIter) Close() error { return it.child.Close() }

// ---------------------------------------------------------------- spool

// spool materializes rows behind a recfile.BoundedBuf: in memory up to the
// budget (drawing on the query's limit.Budget), spilling to a temp record
// file beyond it. It supports repeated sequential replay — milestone 3's
// "write each intermediate result to disk, re-read it whenever necessary".
//
// Records are batch-framed: uvarint row count, then that many appendRow
// encodings. Spill granularity is therefore batch-sized, and replay
// decodes a whole frame against one shared string instead of allocating
// per row.
type spool struct {
	slots   int
	rows    int64
	buf     *recfile.BoundedBuf
	scratch []byte
}

func newSpool(ctx *Ctx, slots int) *spool {
	buf := recfile.NewBoundedBuf(ctx.TempDir, "spool", ctx.softBudget(), ctx.Budget)
	buf.SetHook(ctx.FaultHook)
	return &spool{slots: slots, buf: buf}
}

func (sp *spool) add(ctx *Ctx, row Row) error {
	sp.scratch = binary.AppendUvarint(sp.scratch[:0], 1)
	sp.scratch = appendRow(sp.scratch, row)
	sp.rows++
	return sp.buf.Append(sp.scratch)
}

// addBatch appends a whole batch as one frame. rbuf is the caller-owned
// row-gather scratch.
func (sp *spool) addBatch(b *Batch, rbuf *Row) error {
	n := b.Len()
	if n == 0 {
		return nil
	}
	sp.scratch = binary.AppendUvarint(sp.scratch[:0], uint64(n))
	for i := 0; i < n; i++ {
		row := b.row(i, *rbuf)
		if len(b.Cols) > 1 {
			*rbuf = row
		}
		sp.scratch = appendRow(sp.scratch, row)
	}
	sp.rows += int64(n)
	return sp.buf.Append(sp.scratch)
}

// finish freezes the spool and folds its spill activity into the query
// counters and the owning operator's stats. Once a BoundedBuf spills it
// moves its entire contents to the run file, so the spilled-tuple count is
// all rows or none.
func (sp *spool) finish(ctx *Ctx, stats *OpStats) error {
	if sp.buf.Spilled() {
		ctx.Counters.SpilledTuples += sp.rows
	}
	ctx.Counters.SpilledBytes += sp.buf.SpilledBytes()
	ctx.Counters.SpillRuns += int64(sp.buf.SpillRuns())
	if stats != nil {
		stats.SpilledBytes += sp.buf.SpilledBytes()
		stats.SpillRuns += int64(sp.buf.SpillRuns())
	}
	return nil
}

// replay returns an iterator over the spooled rows.
func (sp *spool) replay() (*spoolIter, error) {
	it, err := sp.buf.Iter()
	if err != nil {
		return nil, err
	}
	return &spoolIter{sp: sp, it: it}, nil
}

// remove discards the spool's temp file (if any) and releases its memory
// reservations. Safe at any point, including after a failed materialize.
func (sp *spool) remove() {
	sp.buf.Close()
}

type spoolIter struct {
	sp     *spool
	it     *recfile.BoundedIter
	rowbuf Row // reused output buffer (see rowIter contract)
	// Current frame: raw record, its shared string conversion, decode
	// offset, and rows left. One string allocation covers every row of
	// the frame — the NL-join replay path decodes each inner row once
	// per outer row, so this is the difference between one allocation
	// per batch and one per joined pair.
	rec       []byte
	shared    string
	off       int
	remaining int
}

func (it *spoolIter) Next() (Row, bool, error) {
	for it.remaining == 0 {
		rec, err := it.it.Next()
		if err == io.EOF {
			return nil, false, nil
		}
		if err != nil {
			return nil, false, err
		}
		cnt, n := binary.Uvarint(rec)
		if n <= 0 {
			return nil, false, fmt.Errorf("exec: corrupt spool frame")
		}
		it.rec = rec
		it.shared = string(rec)
		it.off = n
		it.remaining = int(cnt)
	}
	if it.rowbuf == nil {
		it.rowbuf = make(Row, it.sp.slots)
	}
	off, err := decodeRowAt(it.rowbuf, it.rec, it.shared, it.off)
	if err != nil {
		return nil, false, err
	}
	it.off = off
	it.remaining--
	return it.rowbuf, true, nil
}

func (it *spoolIter) Close() error { return it.it.Close() }

// ---------------------------------------------------------------- NL join

// NLJoin is the order-preserving tuple nested-loops join: the inner input
// is materialized once and replayed per outer row, so output order is the
// lexicographic (outer, inner) order the relfor semantics requires.
type NLJoin struct {
	Left, Right PlanNode
	Conds       []tpm.Cmp
	Est_        Est

	schema *Schema
	stats  OpStats
	cc     compiledConds
}

// NewNLJoin builds a nested-loops join node.
func NewNLJoin(left, right PlanNode, conds []tpm.Cmp) *NLJoin {
	return &NLJoin{Left: left, Right: right, Conds: conds,
		schema: left.Schema().Concat(right.Schema())}
}

// Schema implements PlanNode.
func (j *NLJoin) Schema() *Schema { return j.schema }

// Children implements PlanNode.
func (j *NLJoin) Children() []PlanNode { return []PlanNode{j.Left, j.Right} }

// Estimate implements PlanNode.
func (j *NLJoin) Estimate() Est { return j.Est_ }

// Stats implements PlanNode.
func (j *NLJoin) Stats() *OpStats { return &j.stats }

// Describe implements PlanNode.
func (j *NLJoin) Describe() string {
	return fmt.Sprintf("nl-join(%s) [materialized inner]", condsString(j.Conds))
}

func (j *NLJoin) open(ctx *Ctx, outer Row, outerSchema *Schema) (rowIter, error) {
	left, err := j.Left.open(ctx, outer, outerSchema)
	if err != nil {
		return nil, err
	}
	// The inner is materialized lazily, on the first outer row: an empty
	// outer (e.g. a scan for a non-existent label) must cost nothing.
	j.stats.Opens++
	if err := j.cc.compile(j.Conds, j.schema); err != nil {
		left.Close()
		return nil, err
	}
	return &nlJoinIter{ctx: ctx, j: j, left: left, outer: outer, outerSchema: outerSchema}, nil
}

// materializeInner spools the full inner input once. On error the spool's
// temp file is removed and its reservations released before returning.
func materializeInner(ctx *Ctx, inner PlanNode, outer Row, outerSchema *Schema, stats *OpStats) (*spool, error) {
	rIt, err := inner.open(ctx, outer, outerSchema)
	if err != nil {
		return nil, err
	}
	defer rIt.Close()
	sp := newSpool(ctx, len(inner.Schema().Aliases))
	src := asBatch(ctx, rIt, sp.slots)
	var in Batch
	var rbuf Row
	for {
		n, err := src.NextBatch(&in)
		if err != nil {
			sp.remove()
			return nil, err
		}
		if n == 0 {
			break
		}
		if err := ctx.checkN(n); err != nil {
			sp.remove()
			return nil, err
		}
		if err := sp.addBatch(&in, &rbuf); err != nil {
			sp.remove()
			return nil, err
		}
	}
	if err := sp.finish(ctx, stats); err != nil {
		sp.remove()
		return nil, err
	}
	return sp, nil
}

type nlJoinIter struct {
	ctx         *Ctx
	j           *NLJoin
	left        rowIter
	outer       Row
	outerSchema *Schema
	sp          *spool
	lRow        Row
	haveL       bool
	inner       *spoolIter
	joined      Row // reused output buffer (see rowIter contract)
}

func (it *nlJoinIter) Next() (Row, bool, error) {
	for {
		if err := it.ctx.check(); err != nil {
			return nil, false, err
		}
		if !it.haveL {
			row, ok, err := it.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			if it.sp == nil {
				sp, err := materializeInner(it.ctx, it.j.Right, it.outer, it.outerSchema, &it.j.stats)
				if err != nil {
					return nil, false, err
				}
				it.sp = sp
			}
			it.lRow = row
			it.haveL = true
			inner, err := it.sp.replay()
			if err != nil {
				return nil, false, err
			}
			it.inner = inner
			it.ctx.Counters.InnerRescans++
		}
		rRow, ok, err := it.inner.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			it.inner.Close()
			it.haveL = false
			continue
		}
		it.joined = append(append(it.joined[:0], it.lRow...), rRow...)
		pass, err := it.j.cc.eval(it.joined, it.ctx.Env)
		if err != nil {
			return nil, false, err
		}
		if pass {
			it.ctx.Counters.RowsJoined++
			it.j.stats.Rows++
			return it.joined, true, nil
		}
	}
}

func (it *nlJoinIter) Close() error {
	if it.inner != nil {
		it.inner.Close()
	}
	if it.sp != nil {
		it.sp.remove()
	}
	return it.left.Close()
}

// ---------------------------------------------------------------- BNL join

// BNLJoin is the block nested-loops join: outer rows are read in blocks
// and the materialized inner is scanned once per block instead of once per
// row. It is NOT order-preserving (within a block, output order follows
// the inner), which is exactly why the paper's order-conscious plans avoid
// it; it exists for order strategy (a), where a final sort restores order.
type BNLJoin struct {
	Left, Right PlanNode
	Conds       []tpm.Cmp
	BlockRows   int
	Est_        Est

	schema *Schema
	stats  OpStats
	cc     compiledConds
}

// NewBNLJoin builds a block nested-loops join node.
func NewBNLJoin(left, right PlanNode, conds []tpm.Cmp, blockRows int) *BNLJoin {
	if blockRows <= 0 {
		blockRows = 1024
	}
	return &BNLJoin{Left: left, Right: right, Conds: conds, BlockRows: blockRows,
		schema: left.Schema().Concat(right.Schema())}
}

// Schema implements PlanNode.
func (j *BNLJoin) Schema() *Schema { return j.schema }

// Children implements PlanNode.
func (j *BNLJoin) Children() []PlanNode { return []PlanNode{j.Left, j.Right} }

// Estimate implements PlanNode.
func (j *BNLJoin) Estimate() Est { return j.Est_ }

// Stats implements PlanNode.
func (j *BNLJoin) Stats() *OpStats { return &j.stats }

// Describe implements PlanNode.
func (j *BNLJoin) Describe() string {
	return fmt.Sprintf("bnl-join(%s) [block %d, not order-preserving]", condsString(j.Conds), j.BlockRows)
}

func (j *BNLJoin) open(ctx *Ctx, outer Row, outerSchema *Schema) (rowIter, error) {
	left, err := j.Left.open(ctx, outer, outerSchema)
	if err != nil {
		return nil, err
	}
	j.stats.Opens++
	if err := j.cc.compile(j.Conds, j.schema); err != nil {
		left.Close()
		return nil, err
	}
	return &bnlJoinIter{ctx: ctx, j: j, left: left, outer: outer, outerSchema: outerSchema}, nil
}

type bnlJoinIter struct {
	ctx         *Ctx
	j           *BNLJoin
	left        rowIter
	outer       Row
	outerSchema *Schema
	sp          *spool
	block       []Row
	inner       *spoolIter
	rRow        Row
	haveR       bool
	bIdx        int
	done        bool
	joined      Row // reused output buffer (see rowIter contract)
}

func (it *bnlJoinIter) fillBlock() error {
	it.block = it.block[:0]
	for len(it.block) < it.j.BlockRows {
		row, ok, err := it.left.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		// Copy: the child iterator reuses its row buffer, and block rows
		// outlive many child Next calls.
		it.block = append(it.block, append(Row(nil), row...))
	}
	return nil
}

func (it *bnlJoinIter) Next() (Row, bool, error) {
	for {
		if err := it.ctx.check(); err != nil {
			return nil, false, err
		}
		if it.done {
			return nil, false, nil
		}
		if it.inner == nil {
			if err := it.fillBlock(); err != nil {
				return nil, false, err
			}
			if len(it.block) == 0 {
				it.done = true
				return nil, false, nil
			}
			if it.sp == nil {
				sp, err := materializeInner(it.ctx, it.j.Right, it.outer, it.outerSchema, &it.j.stats)
				if err != nil {
					return nil, false, err
				}
				it.sp = sp
			}
			inner, err := it.sp.replay()
			if err != nil {
				return nil, false, err
			}
			it.inner = inner
			it.ctx.Counters.InnerRescans++
			it.haveR = false
		}
		if !it.haveR {
			rRow, ok, err := it.inner.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				it.inner.Close()
				it.inner = nil
				continue
			}
			// Copy: the spool iterator reuses its buffer.
			it.rRow = append(it.rRow[:0], rRow...)
			it.haveR = true
			it.bIdx = 0
		}
		for it.bIdx < len(it.block) {
			l := it.block[it.bIdx]
			it.bIdx++
			it.joined = append(append(it.joined[:0], l...), it.rRow...)
			pass, err := it.j.cc.eval(it.joined, it.ctx.Env)
			if err != nil {
				return nil, false, err
			}
			if pass {
				it.ctx.Counters.RowsJoined++
				it.j.stats.Rows++
				return it.joined, true, nil
			}
		}
		it.haveR = false
	}
}

func (it *bnlJoinIter) Close() error {
	if it.inner != nil {
		it.inner.Close()
	}
	if it.sp != nil {
		it.sp.remove()
	}
	return it.left.Close()
}

// ---------------------------------------------------------------- INL join

// INLJoin is the index nested-loops join of milestone 4: for every outer
// row the inner Scan is (re)opened with access-path bounds taken from the
// outer row's attributes. Output order is (outer, inner-index) order,
// which is order-preserving for hierarchical document order.
type INLJoin struct {
	Left  PlanNode
	Inner *Scan
	// Conds are residual conditions not subsumed by the inner access path.
	Conds []tpm.Cmp
	Est_  Est

	schema *Schema
	stats  OpStats
	cc     compiledConds
}

// NewINLJoin builds an index nested-loops join node.
func NewINLJoin(left PlanNode, inner *Scan, conds []tpm.Cmp) *INLJoin {
	return &INLJoin{Left: left, Inner: inner, Conds: conds,
		schema: left.Schema().Concat(inner.Schema())}
}

// Schema implements PlanNode.
func (j *INLJoin) Schema() *Schema { return j.schema }

// Children implements PlanNode.
func (j *INLJoin) Children() []PlanNode { return []PlanNode{j.Left, j.Inner} }

// Estimate implements PlanNode.
func (j *INLJoin) Estimate() Est { return j.Est_ }

// Stats implements PlanNode.
func (j *INLJoin) Stats() *OpStats { return &j.stats }

// Describe implements PlanNode.
func (j *INLJoin) Describe() string {
	d := fmt.Sprintf("inl-join → %s", j.Inner.Describe())
	if len(j.Conds) > 0 {
		d += fmt.Sprintf(" σ(%s)", condsString(j.Conds))
	}
	return d
}

func (j *INLJoin) open(ctx *Ctx, outer Row, outerSchema *Schema) (rowIter, error) {
	if outer != nil {
		// Nested INL: compose schemas so inner bounds can reference both.
		return nil, fmt.Errorf("exec: INL join cannot itself be an INL inner")
	}
	left, err := j.Left.open(ctx, nil, nil)
	if err != nil {
		return nil, err
	}
	j.stats.Opens++
	if err := j.cc.compile(j.Conds, j.schema); err != nil {
		left.Close()
		return nil, err
	}
	return &inlJoinIter{ctx: ctx, j: j, left: left}, nil
}

type inlJoinIter struct {
	ctx    *Ctx
	j      *INLJoin
	left   rowIter
	lRow   Row
	inner  rowIter
	joined Row // reused output buffer (see rowIter contract)
}

func (it *inlJoinIter) Next() (Row, bool, error) {
	for {
		if err := it.ctx.check(); err != nil {
			return nil, false, err
		}
		if it.inner == nil {
			row, ok, err := it.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			it.lRow = row
			inner, err := it.j.Inner.open(it.ctx, row, it.j.Left.Schema())
			if err != nil {
				return nil, false, err
			}
			it.inner = inner
			it.ctx.Counters.IndexProbes++
		}
		rRow, ok, err := it.inner.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			it.inner.Close()
			it.inner = nil
			continue
		}
		it.joined = append(append(it.joined[:0], it.lRow...), rRow...)
		pass, err := it.j.cc.eval(it.joined, it.ctx.Env)
		if err != nil {
			return nil, false, err
		}
		if pass {
			it.ctx.Counters.RowsJoined++
			it.j.stats.Rows++
			return it.joined, true, nil
		}
	}
}

func (it *inlJoinIter) Close() error {
	if it.inner != nil {
		it.inner.Close()
	}
	return it.left.Close()
}

// ---------------------------------------------------------------- project

// Project narrows rows to the vartuple relations. With Dedup set it also
// removes duplicates in one pass, which is valid exactly when the input is
// hierarchically sorted on the kept attributes — the order invariant the
// paper's milestone 3 strategies are about.
type Project struct {
	Child PlanNode
	Keep  []string
	Dedup bool
	Est_  Est

	schema *Schema
	slots  []int
	stats  OpStats
}

// NewProject builds a projection node keeping the given aliases in order.
func NewProject(child PlanNode, keep []string, dedup bool) *Project {
	p := &Project{Child: child, Keep: append([]string(nil), keep...), Dedup: dedup,
		schema: NewSchema(keep...)}
	for _, alias := range p.Keep {
		p.slots = append(p.slots, child.Schema().Slot(alias))
	}
	return p
}

// Schema implements PlanNode.
func (p *Project) Schema() *Schema { return p.schema }

// Children implements PlanNode.
func (p *Project) Children() []PlanNode { return []PlanNode{p.Child} }

// Estimate implements PlanNode.
func (p *Project) Estimate() Est { return p.Est_ }

// Stats implements PlanNode.
func (p *Project) Stats() *OpStats { return &p.stats }

// Describe implements PlanNode.
func (p *Project) Describe() string {
	var b bytes.Buffer
	for i, a := range p.Keep {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a)
		b.WriteString(".in")
	}
	if p.Dedup {
		return fmt.Sprintf("project π(%s) [one-pass dedup]", b.String())
	}
	return fmt.Sprintf("project π(%s)", b.String())
}

func (p *Project) open(ctx *Ctx, outer Row, outerSchema *Schema) (rowIter, error) {
	child, err := p.Child.open(ctx, outer, outerSchema)
	if err != nil {
		return nil, err
	}
	p.stats.Opens++
	it := &projectIter{ctx: ctx, p: p, child: child}
	it.childB = asBatch(ctx, child, len(p.Child.Schema().Aliases))
	return it, nil
}

type projectIter struct {
	ctx    *Ctx
	p      *Project
	child  rowIter
	childB batchIter
	// bufs double-buffers the output rows: the previously emitted row must
	// stay intact for dedup comparison while the next candidate is built,
	// so emissions alternate between the two (see rowIter contract).
	bufs [2]Row
	cur  int
	prev Row
	have bool
	// Batch state: the child batch whose columns the output batch
	// repoints, the dedup selection scratch, and the previously emitted
	// keys (carried across batches).
	in      Batch
	selbuf  []int32
	prevIns []uint32
}

func (it *projectIter) Next() (Row, bool, error) {
	for {
		row, ok, err := it.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		out := it.bufs[it.cur]
		if out == nil {
			out = make(Row, len(it.p.slots))
			it.bufs[it.cur] = out
		}
		for i, s := range it.p.slots {
			out[i] = row[s]
		}
		if it.p.Dedup && it.have && sameBindings(it.prev, out) {
			continue
		}
		it.prev = out
		it.have = true
		it.cur ^= 1
		it.p.stats.Rows++
		return out, true, nil
	}
}

func sameBindings(a, b Row) bool {
	for i := range a {
		if a[i].In != b[i].In {
			return false
		}
	}
	return true
}

// NextBatch repoints the output batch at the kept input columns — a
// projection moves no rows at all. Dedup rebuilds the selection vector by
// comparing consecutive logical rows on the kept slots, carrying the last
// emitted keys across batch boundaries.
func (it *projectIter) NextBatch(b *Batch) (int, error) {
	slots := it.p.slots
	for {
		n, err := it.childB.NextBatch(&it.in)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, nil
		}
		if cap(b.Cols) < len(slots) {
			b.Cols = make([][]xasr.Tuple, len(slots))
		} else {
			b.Cols = b.Cols[:len(slots)]
		}
		for i, s := range slots {
			b.Cols[i] = it.in.Cols[s]
		}
		b.n = it.in.n
		b.Sel = it.in.Sel
		out := n
		if it.p.Dedup {
			if cap(it.prevIns) < len(slots) {
				it.prevIns = make([]uint32, len(slots))
			}
			prev := it.prevIns[:len(slots)]
			sel := it.selbuf[:0]
			for i := 0; i < n; i++ {
				phys := it.in.rowIdx(i)
				same := it.have
				for c := range slots {
					if b.Cols[c][phys].In != prev[c] {
						same = false
						break
					}
				}
				if same {
					continue
				}
				for c := range slots {
					prev[c] = b.Cols[c][phys].In
				}
				it.have = true
				sel = append(sel, int32(phys))
			}
			it.prevIns = prev
			it.selbuf = sel
			if len(sel) == 0 {
				continue
			}
			b.Sel = sel
			out = len(sel)
		}
		it.p.stats.Rows += int64(out)
		it.p.stats.Batches++
		it.ctx.Counters.Batches++
		return out, nil
	}
}

func (it *projectIter) Close() error { return it.child.Close() }

// ---------------------------------------------------------------- sort

// Sort restores hierarchical document order by externally sorting rows on
// the in-labels of the given aliases — order strategy (a) of the paper.
// With Dedup set, duplicate bindings are dropped while emitting.
type Sort struct {
	Child PlanNode
	By    []string
	Dedup bool
	Est_  Est

	keySlots []int
	stats    OpStats
}

// NewSort builds a sort node ordering by the in-labels of the given
// aliases.
func NewSort(child PlanNode, by []string, dedup bool) *Sort {
	s := &Sort{Child: child, By: append([]string(nil), by...), Dedup: dedup}
	for _, alias := range s.By {
		s.keySlots = append(s.keySlots, child.Schema().Slot(alias))
	}
	return s
}

// Schema implements PlanNode.
func (s *Sort) Schema() *Schema { return s.Child.Schema() }

// Children implements PlanNode.
func (s *Sort) Children() []PlanNode { return []PlanNode{s.Child} }

// Estimate implements PlanNode.
func (s *Sort) Estimate() Est { return s.Est_ }

// Stats implements PlanNode.
func (s *Sort) Stats() *OpStats { return &s.stats }

// Describe implements PlanNode.
func (s *Sort) Describe() string {
	var b bytes.Buffer
	for i, a := range s.By {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a)
		b.WriteString(".in")
	}
	if s.Dedup {
		return fmt.Sprintf("sort [external, by %s, dedup]", b.String())
	}
	return fmt.Sprintf("sort [external, by %s]", b.String())
}

func (s *Sort) open(ctx *Ctx, outer Row, outerSchema *Schema) (rowIter, error) {
	child, err := s.Child.open(ctx, outer, outerSchema)
	if err != nil {
		return nil, err
	}
	defer child.Close()
	keyLen := 4 * len(s.keySlots)
	sorter := recfile.NewSorter(ctx.TempDir, func(a, b []byte) int {
		return bytes.Compare(a[:keyLen], b[:keyLen])
	}, ctx.SortBudget)
	sorter.SetGovernor(ctx.Budget)
	sorter.SetHook(ctx.FaultHook)
	src := asBatch(ctx, child, len(s.Child.Schema().Aliases))
	var in Batch
	var rbuf Row
	var rec []byte
	for {
		n, err := src.NextBatch(&in)
		if err != nil {
			sorter.Abort()
			return nil, err
		}
		if n == 0 {
			break
		}
		if err := ctx.checkN(n); err != nil {
			sorter.Abort()
			return nil, err
		}
		for i := 0; i < n; i++ {
			row := in.row(i, rbuf)
			if len(in.Cols) > 1 {
				rbuf = row
			}
			rec = rec[:0]
			for _, slot := range s.keySlots {
				var kb [4]byte
				kb[0] = byte(row[slot].In >> 24)
				kb[1] = byte(row[slot].In >> 16)
				kb[2] = byte(row[slot].In >> 8)
				kb[3] = byte(row[slot].In)
				rec = append(rec, kb[:]...)
			}
			rec = appendRow(rec, row)
			// A failed Add has already removed the sorter's run files.
			if err := sorter.Add(rec); err != nil {
				return nil, err
			}
		}
		ctx.Counters.SortedRows += int64(n)
	}
	it, err := sorter.Sort()
	if err != nil {
		return nil, err
	}
	st := sorter.Stats()
	ctx.Counters.SpilledBytes += st.Spilled
	ctx.Counters.SpillRuns += int64(st.Runs)
	s.stats.SpilledBytes += st.Spilled
	s.stats.SpillRuns += int64(st.Runs)
	s.stats.Opens++
	return &sortIter{ctx: ctx, s: s, it: it, keyLen: keyLen, slots: len(s.Schema().Aliases)}, nil
}

type sortIter struct {
	ctx     *Ctx
	s       *Sort
	it      *recfile.Iterator
	keyLen  int
	slots   int
	prevKey []byte
	have    bool
	rowbuf  Row // reused output buffer (see rowIter contract)
}

func (it *sortIter) Next() (Row, bool, error) {
	for {
		rec, err := it.it.Next()
		if err == io.EOF {
			return nil, false, nil
		}
		if err != nil {
			return nil, false, err
		}
		key := rec[:it.keyLen]
		if it.s.Dedup && it.have && bytes.Equal(key, it.prevKey) {
			continue
		}
		it.prevKey = append(it.prevKey[:0], key...)
		it.have = true
		if it.rowbuf == nil {
			it.rowbuf = make(Row, it.slots)
		}
		if err := decodeRowInto(it.rowbuf, rec[it.keyLen:]); err != nil {
			return nil, false, err
		}
		it.s.stats.Rows++
		return it.rowbuf, true, nil
	}
}

func (it *sortIter) Close() error { return it.it.Close() }

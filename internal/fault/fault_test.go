package fault

import (
	"errors"
	"testing"
)

func TestInjectorCountsWithoutFailing(t *testing.T) {
	var inj Injector
	for k := 0; k < 100; k++ {
		if err := inj.Hook("read"); err != nil {
			t.Fatalf("disarmed injector failed at op %d: %v", k, err)
		}
	}
	if inj.Ops() != 100 {
		t.Fatalf("ops = %d, want 100", inj.Ops())
	}
	if inj.Fired() {
		t.Fatal("disarmed injector reports fired")
	}
}

func TestInjectorFailsExactlyNth(t *testing.T) {
	var inj Injector
	inj.Hook("read") // pre-arm traffic must not shift the trigger
	inj.Arm(7)
	for k := 1; k <= 20; k++ {
		err := inj.Hook("write")
		if k == 7 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("op 7: err = %v, want ErrInjected", err)
			}
		} else if err != nil {
			t.Fatalf("op %d: unexpected error %v", k, err)
		}
	}
	if !inj.Fired() {
		t.Fatal("armed injector did not record firing")
	}
}

func TestClass(t *testing.T) {
	for op, want := range map[string]string{
		"page:read":          "page",
		"temp:append":        "temp",
		"wal:mid-checkpoint": "wal",
		"read":               "read",
	} {
		if got := Class(op); got != want {
			t.Fatalf("Class(%q) = %q, want %q", op, got, want)
		}
	}
}

func TestInjectorArmClass(t *testing.T) {
	var inj Injector
	inj.ArmClass("wal", 2)
	// Interleaved page/temp traffic must not advance the wal counter.
	seq := []string{"page:read", "wal:append", "temp:append", "page:write", "wal:flush", "wal:append"}
	var failedAt int
	for k, op := range seq {
		if err := inj.Hook(op); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: %v", k, err)
			}
			failedAt = k
		}
	}
	if failedAt != 4 { // second wal op is seq[4]
		t.Fatalf("failed at index %d, want 4", failedAt)
	}
	if !inj.Fired() {
		t.Fatal("not fired")
	}
	// After firing once, nothing further fails until rearmed... the nth
	// already fired; later matches must pass.
	if err := inj.Hook("wal:append"); err != nil {
		t.Fatalf("post-fire op failed: %v", err)
	}
}

func TestInjectorArmAtExactOp(t *testing.T) {
	var inj Injector
	inj.ArmAt(CrashAfterWALAppend, 1)
	for _, op := range []string{"wal:append", "wal:flush", "page:write"} {
		if err := inj.Hook(op); err != nil {
			t.Fatalf("non-matching op %q failed: %v", op, err)
		}
	}
	if !errors.Is(inj.Hook(CrashAfterWALAppend), ErrInjected) {
		t.Fatal("exact op did not fail")
	}
}

func TestScopedArmingCancelsGlobal(t *testing.T) {
	var inj Injector
	inj.Arm(1)
	inj.ArmClass("wal", 1)
	if err := inj.Hook("page:read"); err != nil {
		t.Fatalf("global arming survived ArmClass: %v", err)
	}
	if !errors.Is(inj.Hook("wal:append"), ErrInjected) {
		t.Fatal("class arming inactive")
	}
	inj.ArmClass("wal", 1)
	inj.Arm(1)
	if !errors.Is(inj.Hook("page:read"), ErrInjected) {
		t.Fatal("global arming inactive after rearm")
	}
	inj.Arm(0)
	inj.Disarm()
	if err := inj.Hook("wal:append"); err != nil {
		t.Fatalf("disarmed injector failed: %v", err)
	}
}

func TestInjectorDisarmAndRearm(t *testing.T) {
	var inj Injector
	inj.Arm(3)
	inj.Disarm()
	for k := 0; k < 10; k++ {
		if err := inj.Hook("read"); err != nil {
			t.Fatalf("disarmed: %v", err)
		}
	}
	inj.Arm(2)
	if err := inj.Hook("read"); err != nil {
		t.Fatal("op 1 after rearm failed")
	}
	if !errors.Is(inj.Hook("read"), ErrInjected) {
		t.Fatal("op 2 after rearm did not fail")
	}
}

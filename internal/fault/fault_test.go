package fault

import (
	"errors"
	"testing"
)

func TestInjectorCountsWithoutFailing(t *testing.T) {
	var inj Injector
	for k := 0; k < 100; k++ {
		if err := inj.Hook("read"); err != nil {
			t.Fatalf("disarmed injector failed at op %d: %v", k, err)
		}
	}
	if inj.Ops() != 100 {
		t.Fatalf("ops = %d, want 100", inj.Ops())
	}
	if inj.Fired() {
		t.Fatal("disarmed injector reports fired")
	}
}

func TestInjectorFailsExactlyNth(t *testing.T) {
	var inj Injector
	inj.Hook("read") // pre-arm traffic must not shift the trigger
	inj.Arm(7)
	for k := 1; k <= 20; k++ {
		err := inj.Hook("write")
		if k == 7 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("op 7: err = %v, want ErrInjected", err)
			}
		} else if err != nil {
			t.Fatalf("op %d: unexpected error %v", k, err)
		}
	}
	if !inj.Fired() {
		t.Fatal("armed injector did not record firing")
	}
}

func TestInjectorDisarmAndRearm(t *testing.T) {
	var inj Injector
	inj.Arm(3)
	inj.Disarm()
	for k := 0; k < 10; k++ {
		if err := inj.Hook("read"); err != nil {
			t.Fatalf("disarmed: %v", err)
		}
	}
	inj.Arm(2)
	if err := inj.Hook("read"); err != nil {
		t.Fatal("op 1 after rearm failed")
	}
	if !errors.Is(inj.Hook("read"), ErrInjected) {
		t.Fatal("op 2 after rearm did not fail")
	}
}

// Package fault provides deterministic I/O fault injection for the
// robustness harness: an Injector counts the I/O operations a query
// performs and, when armed, fails exactly the Nth one. One injector serves
// every hook site — pager page reads/writes, operator temp-file writes and
// WAL appends/flushes — so "the Nth I/O of the query" is a single global
// sequence, and a failure point found once replays identically from the
// same seed.
//
// Hook sites tag each operation "class:op" ("page:read", "temp:append",
// "wal:flush"). Beyond the global Nth-op arming, an injector can be armed
// on one class (ArmClass) or one exact operation tag (ArmAt), so a crash
// test aimed at, say, the WAL does not trip on unrelated temp-file
// traffic.
package fault

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrInjected is the error returned by an armed injector at its trigger
// point. Harness assertions use it to distinguish injected failures from
// real ones.
var ErrInjected = errors.New("fault: injected I/O error")

// Named crash points: the exact operation tags a durability test arms with
// ArmAt to crash at the interesting instants of the commit protocol.
const (
	// CrashAfterWALAppend fires after a WAL group flush has become
	// durable (the commit is on disk, the in-memory state is not).
	CrashAfterWALAppend = "wal:appended"
	// CrashBeforePageWrite fires before a dirty page is written back to
	// the data file.
	CrashBeforePageWrite = "page:write"
	// CrashMidCheckpoint fires between the data-file flush and the WAL
	// truncation of a checkpoint.
	CrashMidCheckpoint = "wal:mid-checkpoint"
)

// Class splits a "class:op" tag and returns its class ("page:read" →
// "page"). Untagged ops form their own class.
func Class(op string) string {
	if i := strings.IndexByte(op, ':'); i >= 0 {
		return op[:i]
	}
	return op
}

// Injector counts I/O operations and fails the Nth one after Arm. The zero
// value is ready to use (counting, never failing). All methods are safe for
// concurrent use.
type Injector struct {
	ops   atomic.Int64
	n     atomic.Int64 // fail when ops reaches this value; 0 = disarmed
	fired atomic.Bool

	// Scoped arming (class or exact op). The atomic flag keeps the
	// common unarmed/global-armed hot path lock-free.
	scoped atomic.Bool
	mu     sync.Mutex
	key    string // class (ArmClass) or exact tag (ArmAt)
	exact  bool   // true: match op == key; false: match Class(op) == key
	sn     int64  // fail the sn-th matching op
	scount int64  // matching ops seen since scoped arming
}

// Arm makes the injector fail the nth operation from now (n >= 1), after
// resetting the operation counter. Arm(0) disarms. Arm cancels any scoped
// arming.
func (i *Injector) Arm(n int64) {
	i.ops.Store(0)
	i.fired.Store(false)
	i.scoped.Store(false)
	i.n.Store(n)
}

// ArmClass makes the injector fail the nth operation (n >= 1, from now)
// whose class matches class — e.g. ArmClass("wal", 2) fails the second WAL
// operation regardless of interleaved page or temp traffic. Cancels global
// arming.
func (i *Injector) ArmClass(class string, n int64) { i.armScoped(class, false, n) }

// ArmAt makes the injector fail the nth occurrence (n >= 1, from now) of
// the exact operation tag op — the named crash points above. Cancels
// global arming.
func (i *Injector) ArmAt(op string, n int64) { i.armScoped(op, true, n) }

func (i *Injector) armScoped(key string, exact bool, n int64) {
	i.mu.Lock()
	i.key, i.exact, i.sn, i.scount = key, exact, n, 0
	i.mu.Unlock()
	i.ops.Store(0)
	i.fired.Store(false)
	i.n.Store(0)
	i.scoped.Store(n > 0)
}

// Disarm stops the injector from failing; counting continues.
func (i *Injector) Disarm() {
	i.n.Store(0)
	i.scoped.Store(false)
}

// Ops returns the number of operations observed since the last Arm (or
// since creation).
func (i *Injector) Ops() int64 { return i.ops.Load() }

// Fired reports whether the injector has triggered since the last arming.
func (i *Injector) Fired() bool { return i.fired.Load() }

// Hook is the injection point: every hook site calls it with a "class:op"
// operation tag ("page:read", "temp:append", "wal:flush"). It counts the
// operation and returns ErrInjected at the armed trigger.
func (i *Injector) Hook(op string) error {
	ops := i.ops.Add(1)
	if n := i.n.Load(); n > 0 && ops == n {
		i.fired.Store(true)
		return ErrInjected
	}
	if i.scoped.Load() {
		i.mu.Lock()
		match := false
		if i.sn > 0 {
			if i.exact {
				match = op == i.key
			} else {
				match = Class(op) == i.key
			}
		}
		if match {
			i.scount++
			if i.scount == i.sn {
				i.mu.Unlock()
				i.fired.Store(true)
				return ErrInjected
			}
		}
		i.mu.Unlock()
	}
	return nil
}

// Package fault provides deterministic I/O fault injection for the
// robustness harness: an Injector counts the I/O operations a query
// performs and, when armed, fails exactly the Nth one. One injector serves
// every hook site — pager page reads/writes and operator temp-file writes —
// so "the Nth I/O of the query" is a single global sequence, and a failure
// point found once replays identically from the same seed.
package fault

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the error returned by an armed injector at its trigger
// point. Harness assertions use it to distinguish injected failures from
// real ones.
var ErrInjected = errors.New("fault: injected I/O error")

// Injector counts I/O operations and fails the Nth one after Arm. The zero
// value is ready to use (counting, never failing). All methods are safe for
// concurrent use.
type Injector struct {
	ops   atomic.Int64
	n     atomic.Int64 // fail when ops reaches this value; 0 = disarmed
	fired atomic.Bool
}

// Arm makes the injector fail the nth operation from now (n >= 1), after
// resetting the operation counter. Arm(0) disarms.
func (i *Injector) Arm(n int64) {
	i.ops.Store(0)
	i.fired.Store(false)
	i.n.Store(n)
}

// Disarm stops the injector from failing; counting continues.
func (i *Injector) Disarm() { i.n.Store(0) }

// Ops returns the number of operations observed since the last Arm (or
// since creation).
func (i *Injector) Ops() int64 { return i.ops.Load() }

// Fired reports whether the injector has triggered since the last Arm.
func (i *Injector) Fired() bool { return i.fired.Load() }

// Hook is the injection point: every hook site calls it with a short
// operation tag ("read", "write", "append", "flush", "finish"). It counts
// the operation and returns ErrInjected on the armed Nth one.
func (i *Injector) Hook(op string) error {
	ops := i.ops.Add(1)
	if n := i.n.Load(); n > 0 && ops == n {
		i.fired.Store(true)
		return ErrInjected
	}
	return nil
}

package recfile

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"testing"

	"xqdb/internal/limit"
)

func drainBuf(t *testing.T, b *BoundedBuf) [][]byte {
	t.Helper()
	it, err := b.Iter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out [][]byte
	for {
		rec, err := it.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, append([]byte(nil), rec...))
	}
}

func tempFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestBoundedBufInMemory(t *testing.T) {
	dir := t.TempDir()
	b := NewBoundedBuf(dir, "bb", 1<<20, nil)
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("rec-%03d", i))
		want = append(want, rec)
		if err := b.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if b.Spilled() || b.SpillRuns() != 0 || b.SpilledRecs() != 0 {
		t.Fatalf("small buffer spilled: runs=%d recs=%d", b.SpillRuns(), b.SpilledRecs())
	}
	// Iter is repeatable.
	for pass := 0; pass < 2; pass++ {
		got := drainBuf(t, b)
		if len(got) != len(want) {
			t.Fatalf("pass %d: %d records, want %d", pass, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("pass %d record %d mismatch", pass, i)
			}
		}
	}
	if err := b.Append([]byte("late")); err != ErrFrozen {
		t.Fatalf("append after Iter = %v, want ErrFrozen", err)
	}
	b.Close()
	if got := tempFiles(t, dir); len(got) != 0 {
		t.Fatalf("leftover temp files: %v", got)
	}
}

func TestBoundedBufSpills(t *testing.T) {
	dir := t.TempDir()
	b := NewBoundedBuf(dir, "bb", 256, nil) // tiny soft budget
	var want [][]byte
	for i := 0; i < 500; i++ {
		rec := []byte(fmt.Sprintf("record-%04d-%s", i, bytes.Repeat([]byte("x"), i%30)))
		want = append(want, rec)
		if err := b.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if !b.Spilled() || b.SpillRuns() != 1 || b.SpilledBytes() == 0 || b.SpilledRecs() != 500 {
		t.Fatalf("spill stats: runs=%d bytes=%d recs=%d", b.SpillRuns(), b.SpilledBytes(), b.SpilledRecs())
	}
	for pass := 0; pass < 2; pass++ {
		got := drainBuf(t, b)
		if len(got) != len(want) {
			t.Fatalf("pass %d: %d records, want %d", pass, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("pass %d record %d mismatch", pass, i)
			}
		}
	}
	b.Close()
	if got := tempFiles(t, dir); len(got) != 0 {
		t.Fatalf("leftover temp files after Close: %v", got)
	}
	if b.Close() != nil {
		t.Fatal("second Close errored")
	}
}

func TestBoundedBufGovernorForcesSpill(t *testing.T) {
	dir := t.TempDir()
	gov := limit.NewBudget(200, nil)
	b := NewBoundedBuf(dir, "bb", 1<<20, gov) // huge soft budget, tight quota
	for i := 0; i < 50; i++ {
		if err := b.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if !b.Spilled() {
		t.Fatal("tight governor quota did not force a spill")
	}
	if gov.InUse() != 0 {
		t.Fatalf("reservations not released after spill: %d", gov.InUse())
	}
	got := drainBuf(t, b)
	if len(got) != 50 {
		t.Fatalf("%d records, want 50", len(got))
	}
	b.Close()
	if got := tempFiles(t, dir); len(got) != 0 {
		t.Fatalf("leftover temp files: %v", got)
	}
}

func TestBoundedBufCloseReleasesReservations(t *testing.T) {
	gov := limit.NewBudget(1<<20, nil)
	b := NewBoundedBuf(t.TempDir(), "bb", 1<<20, gov)
	for i := 0; i < 20; i++ {
		b.Append([]byte("0123456789"))
	}
	if gov.InUse() == 0 {
		t.Fatal("no reservation taken")
	}
	b.Close()
	if gov.InUse() != 0 {
		t.Fatalf("reservations leaked: %d", gov.InUse())
	}
}

func TestBoundedBufCloseMidWriteRemovesFile(t *testing.T) {
	dir := t.TempDir()
	b := NewBoundedBuf(dir, "bb", 64, nil)
	for i := 0; i < 100; i++ {
		if err := b.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if !b.Spilled() {
		t.Fatal("expected spill")
	}
	// Close without ever calling Iter: the unfinished writer must be
	// aborted and its file removed.
	b.Close()
	if got := tempFiles(t, dir); len(got) != 0 {
		t.Fatalf("leftover temp files: %v", got)
	}
}

func TestBoundedBufInjectedWriteFailure(t *testing.T) {
	dir := t.TempDir()
	errBoom := errors.New("boom")
	var n int
	b := NewBoundedBuf(dir, "bb", 64, nil)
	b.SetHook(func(op string) error {
		n++
		if n == 10 {
			return errBoom
		}
		return nil
	})
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		err = b.Append([]byte(fmt.Sprintf("record-%04d", i)))
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("append error = %v, want injected", err)
	}
	b.Close()
	if got := tempFiles(t, dir); len(got) != 0 {
		t.Fatalf("leftover temp files after injected failure: %v", got)
	}
}

func TestSegReader(t *testing.T) {
	dir := t.TempDir()
	path := TempPath(dir, "seg")
	w, err := CreateWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	var want [][]byte
	for i := 0; i < 200; i++ {
		offs = append(offs, w.Offset())
		rec := []byte(fmt.Sprintf("seg-record-%05d", i))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Read a segment while the writer is still open, after Flush.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenSegReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, start := range []int{0, 50, 199} {
		if err := r.SeekTo(offs[start]); err != nil {
			t.Fatal(err)
		}
		rec, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec, want[start]) {
			t.Fatalf("segment at %d: got %q want %q", start, rec, want[start])
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	os.Remove(path)
}

func TestSorterInjectedFailureMidSpill(t *testing.T) {
	dir := t.TempDir()
	errBoom := errors.New("boom")
	s := NewSorter(dir, bytes.Compare, 2<<10)
	var n int
	s.SetHook(func(op string) error {
		n++
		if n == 300 {
			return errBoom
		}
		return nil
	})
	recs := randRecords(5000, 7)
	var err error
	for _, r := range recs {
		if err = s.Add(r); err != nil {
			break
		}
	}
	if err == nil {
		_, err = s.Sort()
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("error = %v, want injected", err)
	}
	if got := tempFiles(t, dir); len(got) != 0 {
		t.Fatalf("run files left after mid-spill failure: %v", got)
	}
}

func TestSorterInjectedFailureMidMerge(t *testing.T) {
	dir := t.TempDir()
	errBoom := errors.New("boom")
	recs := randRecords(20000, 8)
	// Find how many hook calls a clean run makes before the final merge,
	// then fail just past the spill phase so the failure lands in the
	// intermediate merge.
	for _, failAt := range []int{0, -1} {
		s := NewSorter(dir, bytes.Compare, 2<<10)
		s.fanin = 4 // force intermediate merge passes
		var n, spillCalls int
		if failAt == 0 {
			s.SetHook(func(op string) error { n++; return nil })
		} else {
			s.SetHook(func(op string) error {
				n++
				if n == spillCalls+100 {
					return errBoom
				}
				return nil
			})
		}
		var err error
		for _, r := range recs {
			if err = s.Add(r); err != nil {
				break
			}
		}
		spillCalls = n // calls consumed by run spills (first pass only)
		if err == nil {
			var it *Iterator
			it, err = s.Sort()
			if err == nil {
				it.Close()
			}
		}
		if failAt == 0 {
			if err != nil {
				t.Fatalf("clean pass failed: %v", err)
			}
		} else {
			if !errors.Is(err, errBoom) {
				t.Fatalf("error = %v, want injected mid-merge", err)
			}
		}
		if got := tempFiles(t, dir); len(got) != 0 {
			t.Fatalf("run files left (failAt=%d): %v", failAt, got)
		}
	}
}

func TestSorterAbortRemovesRuns(t *testing.T) {
	dir := t.TempDir()
	gov := limit.NewBudget(0, nil)
	s := NewSorter(dir, bytes.Compare, 2<<10)
	s.SetGovernor(gov)
	for _, r := range randRecords(5000, 9) {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Abort()
	if got := tempFiles(t, dir); len(got) != 0 {
		t.Fatalf("run files left after Abort: %v", got)
	}
	if gov.InUse() != 0 {
		t.Fatalf("reservations leaked after Abort: %d", gov.InUse())
	}
}

func TestSorterGovernorForcesEarlySpill(t *testing.T) {
	dir := t.TempDir()
	gov := limit.NewBudget(1<<10, nil)
	s := NewSorter(dir, bytes.Compare, 1<<30) // huge soft budget, tight quota
	s.SetGovernor(gov)
	recs := randRecords(2000, 10)
	for _, r := range recs {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	out := [][]byte{}
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, append([]byte(nil), rec...))
	}
	it.Close()
	checkSorted(t, recs, out)
	if s.Stats().InMemory {
		t.Fatal("tight governor quota did not force spilling")
	}
	if gov.InUse() != 0 {
		t.Fatalf("reservations leaked: %d", gov.InUse())
	}
	if got := tempFiles(t, dir); len(got) != 0 {
		t.Fatalf("run files left: %v", got)
	}
}

package recfile

import (
	"errors"
	"io"
	"os"

	"xqdb/internal/limit"
)

// memRecOverhead approximates the per-record bookkeeping cost of holding a
// record in memory (slice header + allocator slack), matching the Sorter's
// accounting so budgets mean the same thing across buffering sites.
const memRecOverhead = 24

// ErrFrozen is returned by Append after Iter has frozen a BoundedBuf.
var ErrFrozen = errors.New("recfile: append to frozen buffer")

// BoundedBuf is an append-then-iterate record buffer with a bounded memory
// footprint: records stay in memory while they fit the soft budget and the
// per-query governor grants the reservation, then the whole buffer spills
// to one temp run file and further appends stream straight to disk. It is
// the single buffering primitive behind the spool, TwigJoin path-solution
// lists, and the Stack-Tree-Anc output queues, so one limit.Budget governs
// every buffering site of a query.
type BoundedBuf struct {
	dir    string
	prefix string
	soft   int
	gov    *limit.Budget
	hook   func(op string) error

	mem      [][]byte
	memBytes int
	reserved int
	count    int64

	w           *Writer
	path        string
	frozen      bool
	spilledRecs int64
	closed      bool
}

// NewBoundedBuf returns a buffer spilling into dir. A soft budget of 0
// selects DefaultSortBudget; gov may be nil (no quota).
func NewBoundedBuf(dir, prefix string, soft int, gov *limit.Budget) *BoundedBuf {
	if soft <= 0 {
		soft = DefaultSortBudget
	}
	return &BoundedBuf{dir: dir, prefix: prefix, soft: soft, gov: gov}
}

// SetHook installs a fault-injection hook consulted on temp-file writes.
func (b *BoundedBuf) SetHook(h func(op string) error) { b.hook = h }

// Append adds one record (the slice is copied).
func (b *BoundedBuf) Append(rec []byte) error {
	if b.frozen || b.closed {
		return ErrFrozen
	}
	if b.w == nil {
		need := len(rec) + memRecOverhead
		if b.memBytes+need <= b.soft && b.gov.Reserve(need) {
			b.mem = append(b.mem, append([]byte(nil), rec...))
			b.memBytes += need
			b.reserved += need
			b.count++
			return nil
		}
		if err := b.startSpill(); err != nil {
			return err
		}
	}
	if err := b.w.Append(rec); err != nil {
		return err
	}
	b.spilledRecs++
	b.count++
	return nil
}

// startSpill moves every in-memory record to a fresh run file and releases
// the memory reservations; subsequent appends go straight to disk.
func (b *BoundedBuf) startSpill() error {
	path := TempPath(b.dir, b.prefix)
	w, err := CreateWriter(path)
	if err != nil {
		return err
	}
	w.Hook = b.hook
	for _, rec := range b.mem {
		if err := w.Append(rec); err != nil {
			w.Abort()
			return err
		}
	}
	b.spilledRecs += int64(len(b.mem))
	b.w = w
	b.path = path
	b.mem = nil
	b.memBytes = 0
	b.gov.Release(b.reserved)
	b.reserved = 0
	return nil
}

// Len returns the number of records appended.
func (b *BoundedBuf) Len() int64 { return b.count }

// Spilled reports whether the buffer overflowed to disk.
func (b *BoundedBuf) Spilled() bool { return b.path != "" }

// SpilledBytes returns the encoded bytes written to the run file.
func (b *BoundedBuf) SpilledBytes() int64 {
	if b.w == nil {
		return 0
	}
	return b.w.Bytes()
}

// SpillRuns returns the number of run files created (0 or 1).
func (b *BoundedBuf) SpillRuns() int {
	if b.path == "" {
		return 0
	}
	return 1
}

// SpilledRecs returns the number of records written to disk.
func (b *BoundedBuf) SpilledRecs() int64 { return b.spilledRecs }

// BoundedIter streams a BoundedBuf's records in append order.
type BoundedIter struct {
	mem [][]byte
	idx int
	r   *Reader
}

// Iter freezes the buffer and returns an iterator over its records in
// append order. Iter may be called repeatedly (each call streams from the
// start); Append is rejected afterwards. The run file, if any, stays owned
// by the buffer — Close the buffer to remove it.
func (b *BoundedBuf) Iter() (*BoundedIter, error) {
	if b.closed {
		return nil, errors.New("recfile: iterate closed buffer")
	}
	if !b.frozen {
		b.frozen = true
		if b.w != nil {
			if err := b.w.Finish(); err != nil {
				os.Remove(b.path)
				b.path = ""
				b.w = nil
				return nil, err
			}
		}
	}
	if b.path != "" {
		r, err := OpenReader(b.path)
		if err != nil {
			return nil, err
		}
		return &BoundedIter{r: r}, nil
	}
	return &BoundedIter{mem: b.mem}, nil
}

// Next returns the next record, or io.EOF. The slice is valid only until
// the next call to Next.
func (it *BoundedIter) Next() ([]byte, error) {
	if it.r != nil {
		return it.r.Next()
	}
	if it.idx >= len(it.mem) {
		return nil, io.EOF
	}
	rec := it.mem[it.idx]
	it.idx++
	return rec, nil
}

// Close releases the iterator's reader; the buffer keeps its file.
func (it *BoundedIter) Close() error {
	if it.r != nil {
		return it.r.Close()
	}
	it.mem = nil
	return nil
}

// Close removes the run file (if any) and releases memory reservations.
// It is idempotent and safe to call at any point, including mid-append
// after an error.
func (b *BoundedBuf) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	if b.w != nil && !b.frozen {
		b.w.Abort()
	} else if b.path != "" {
		os.Remove(b.path)
	}
	b.w = nil
	b.path = ""
	b.mem = nil
	b.memBytes = 0
	b.gov.Release(b.reserved)
	b.reserved = 0
	return nil
}

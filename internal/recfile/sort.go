package recfile

import (
	"container/heap"
	"io"
	"os"
	"sort"

	"xqdb/internal/limit"
)

// DefaultSortBudget is the in-memory run size used when Sorter.Budget is
// zero (4 MiB).
const DefaultSortBudget = 4 << 20

// DefaultFanin is the merge fan-in used when Sorter.Fanin is zero.
const DefaultFanin = 16

// SortStats reports what the external sort did.
type SortStats struct {
	Records     int64
	Runs        int   // initial sorted runs spilled
	MergePasses int   // extra merge passes beyond the final one
	Spilled     int64 // bytes written to run files
	InMemory    bool  // true if everything fit in the budget
}

// Sorter accumulates records and produces them in sorted order, spilling
// sorted runs to disk when the memory budget is exceeded and k-way merging
// them (textbook external merge sort).
//
// Error contract: when Add or Sort returns an error, the Sorter has
// already removed its run files and released its governor reservations;
// callers only need to stop using it. Abort does the same for a Sorter
// abandoned mid-accumulation (e.g. on deadline).
type Sorter struct {
	dir    string
	cmp    func(a, b []byte) int
	budget int
	fanin  int
	gov    *limit.Budget
	hook   func(op string) error

	cur      [][]byte
	curBytes int
	reserved int
	runs     []string
	stats    SortStats
}

// NewSorter returns a Sorter writing run files into dir, ordering records
// by cmp. A budget of 0 selects DefaultSortBudget.
func NewSorter(dir string, cmp func(a, b []byte) int, budget int) *Sorter {
	if budget <= 0 {
		budget = DefaultSortBudget
	}
	return &Sorter{dir: dir, cmp: cmp, budget: budget, fanin: DefaultFanin}
}

// SetGovernor makes the sorter draw its in-memory bytes from the per-query
// budget; when a reservation is refused the current run spills early.
func (s *Sorter) SetGovernor(gov *limit.Budget) { s.gov = gov }

// SetHook installs a fault-injection hook consulted on run-file writes.
func (s *Sorter) SetHook(h func(op string) error) { s.hook = h }

// Add appends one record (the slice is copied).
func (s *Sorter) Add(rec []byte) error {
	cp := append([]byte(nil), rec...)
	need := len(cp) + 24
	s.cur = append(s.cur, cp)
	s.curBytes += need
	s.stats.Records++
	if s.curBytes >= s.budget || !s.gov.Reserve(need) {
		return s.spill()
	}
	s.reserved += need
	return nil
}

func (s *Sorter) sortCur() {
	sort.SliceStable(s.cur, func(i, j int) bool { return s.cmp(s.cur[i], s.cur[j]) < 0 })
}

// Abort discards accumulated state, removes every run file, and releases
// governor reservations. For callers that stop sorting early (deadline,
// upstream error) before Sort produced an Iterator.
func (s *Sorter) Abort() { s.cleanup() }

func (s *Sorter) cleanup() {
	for _, p := range s.runs {
		os.Remove(p)
	}
	s.runs = nil
	s.cur = nil
	s.curBytes = 0
	s.gov.Release(s.reserved)
	s.reserved = 0
}

func (s *Sorter) spill() error {
	if len(s.cur) == 0 {
		return nil
	}
	s.sortCur()
	path := TempPath(s.dir, "sortrun")
	w, err := CreateWriter(path)
	if err != nil {
		s.cleanup()
		return err
	}
	w.Hook = s.hook
	for _, rec := range s.cur {
		if err := w.Append(rec); err != nil {
			w.Abort()
			s.cleanup()
			return err
		}
	}
	if err := w.Finish(); err != nil {
		os.Remove(path)
		s.cleanup()
		return err
	}
	s.stats.Spilled += w.Bytes()
	s.stats.Runs++
	s.runs = append(s.runs, path)
	s.cur = nil
	s.curBytes = 0
	s.gov.Release(s.reserved)
	s.reserved = 0
	return nil
}

// Stats returns sort statistics; complete after Sort has been called.
func (s *Sorter) Stats() SortStats { return s.stats }

// Iterator yields sorted records. Close releases and deletes any run files.
type Iterator struct {
	// in-memory case
	mem [][]byte
	idx int
	// merge case
	h       *mergeHeap
	readers []*Reader
	// release returns governor reservations still held by the in-memory
	// case when the iterator closes.
	release func()
}

// Sort finishes accumulation and returns an iterator over all records in
// cmp order. The Sorter must not be used after Sort (except to read
// Stats). On error all run files have been removed.
func (s *Sorter) Sort() (*Iterator, error) {
	if len(s.runs) == 0 {
		s.sortCur()
		s.stats.InMemory = true
		it := &Iterator{mem: s.cur, release: func() {
			s.gov.Release(s.reserved)
			s.reserved = 0
		}}
		return it, nil
	}
	if err := s.spill(); err != nil {
		return nil, err
	}
	// Reduce the number of runs to at most fanin with intermediate passes.
	for len(s.runs) > s.fanin {
		var next []string
		for i := 0; i < len(s.runs); i += s.fanin {
			end := i + s.fanin
			if end > len(s.runs) {
				end = len(s.runs)
			}
			merged, err := s.mergeToFile(s.runs[i:end])
			if err != nil {
				for _, p := range next {
					os.Remove(p)
				}
				s.cleanup()
				return nil, err
			}
			next = append(next, merged)
		}
		s.runs = next
		s.stats.MergePasses++
	}
	it, err := s.openMerge(s.runs)
	if err != nil {
		// openMerge's partial Close removed the runs it had opened;
		// sweep the rest.
		s.cleanup()
		return nil, err
	}
	return it, nil
}

func (s *Sorter) mergeToFile(runs []string) (string, error) {
	it, err := s.openMerge(runs)
	if err != nil {
		return "", err
	}
	defer it.Close()
	path := TempPath(s.dir, "sortmerge")
	w, err := CreateWriter(path)
	if err != nil {
		return "", err
	}
	w.Hook = s.hook
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			w.Abort()
			return "", err
		}
		if err := w.Append(rec); err != nil {
			w.Abort()
			return "", err
		}
	}
	if err := w.Finish(); err != nil {
		os.Remove(path)
		return "", err
	}
	s.stats.Spilled += w.Bytes()
	return path, nil
}

func (s *Sorter) openMerge(runs []string) (*Iterator, error) {
	h := &mergeHeap{cmp: s.cmp}
	it := &Iterator{h: h}
	for runIdx, path := range runs {
		r, err := OpenReader(path)
		if err != nil {
			it.Close()
			return nil, err
		}
		it.readers = append(it.readers, r)
		rec, err := r.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			it.Close()
			return nil, err
		}
		h.items = append(h.items, mergeItem{rec: append([]byte(nil), rec...), src: r, run: runIdx})
	}
	heap.Init(h)
	return it, nil
}

// Next returns the next record in sorted order, or io.EOF. The slice is
// valid until the following Next call.
func (it *Iterator) Next() ([]byte, error) {
	if it.h == nil {
		if it.idx >= len(it.mem) {
			return nil, io.EOF
		}
		rec := it.mem[it.idx]
		it.idx++
		return rec, nil
	}
	if it.h.Len() == 0 {
		return nil, io.EOF
	}
	top := it.h.items[0]
	out := top.rec
	// Refill from the same source.
	rec, err := top.src.Next()
	if err == io.EOF {
		heap.Pop(it.h)
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	it.h.items[0] = mergeItem{rec: append([]byte(nil), rec...), src: top.src, run: top.run}
	heap.Fix(it.h, 0)
	return out, nil
}

// Close releases readers, deletes run files, and returns governor
// reservations. Safe to call before exhaustion and more than once.
func (it *Iterator) Close() error {
	var err error
	for _, r := range it.readers {
		if e := r.f.Close(); err == nil {
			err = e
		}
		if e := os.Remove(r.path); err == nil {
			err = e
		}
	}
	it.readers = nil
	it.h = nil
	it.mem = nil
	if it.release != nil {
		it.release()
		it.release = nil
	}
	return err
}

type mergeItem struct {
	rec []byte
	src *Reader
	run int // run index; ties break toward earlier runs to keep Sort stable
}

type mergeHeap struct {
	items []mergeItem
	cmp   func(a, b []byte) int
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	c := h.cmp(h.items[i].rec, h.items[j].rec)
	if c != 0 {
		return c < 0
	}
	return h.items[i].run < h.items[j].run
}
func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)    { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

package recfile

import (
	"container/heap"
	"io"
	"os"
	"sort"
)

// DefaultSortBudget is the in-memory run size used when Sorter.Budget is
// zero (4 MiB).
const DefaultSortBudget = 4 << 20

// DefaultFanin is the merge fan-in used when Sorter.Fanin is zero.
const DefaultFanin = 16

// SortStats reports what the external sort did.
type SortStats struct {
	Records     int64
	Runs        int   // initial sorted runs spilled
	MergePasses int   // extra merge passes beyond the final one
	Spilled     int64 // bytes written to run files
	InMemory    bool  // true if everything fit in the budget
}

// Sorter accumulates records and produces them in sorted order, spilling
// sorted runs to disk when the memory budget is exceeded and k-way merging
// them (textbook external merge sort).
type Sorter struct {
	dir    string
	cmp    func(a, b []byte) int
	budget int
	fanin  int

	cur      [][]byte
	curBytes int
	runs     []string
	stats    SortStats
}

// NewSorter returns a Sorter writing run files into dir, ordering records
// by cmp. A budget of 0 selects DefaultSortBudget.
func NewSorter(dir string, cmp func(a, b []byte) int, budget int) *Sorter {
	if budget <= 0 {
		budget = DefaultSortBudget
	}
	return &Sorter{dir: dir, cmp: cmp, budget: budget, fanin: DefaultFanin}
}

// Add appends one record (the slice is copied).
func (s *Sorter) Add(rec []byte) error {
	cp := append([]byte(nil), rec...)
	s.cur = append(s.cur, cp)
	s.curBytes += len(cp) + 24
	s.stats.Records++
	if s.curBytes >= s.budget {
		return s.spill()
	}
	return nil
}

func (s *Sorter) sortCur() {
	sort.SliceStable(s.cur, func(i, j int) bool { return s.cmp(s.cur[i], s.cur[j]) < 0 })
}

func (s *Sorter) spill() error {
	if len(s.cur) == 0 {
		return nil
	}
	s.sortCur()
	path := TempPath(s.dir, "sortrun")
	w, err := CreateWriter(path)
	if err != nil {
		return err
	}
	for _, rec := range s.cur {
		if err := w.Append(rec); err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.Finish(); err != nil {
		return err
	}
	s.stats.Spilled += w.Bytes()
	s.runs = append(s.runs, path)
	s.cur = nil
	s.curBytes = 0
	return nil
}

// Stats returns sort statistics; complete after Sort has been called.
func (s *Sorter) Stats() SortStats { return s.stats }

// Iterator yields sorted records. Close releases and deletes any run files.
type Iterator struct {
	// in-memory case
	mem [][]byte
	idx int
	// merge case
	h       *mergeHeap
	readers []*Reader
}

// Sort finishes accumulation and returns an iterator over all records in
// cmp order. The Sorter must not be used after Sort.
func (s *Sorter) Sort() (*Iterator, error) {
	if len(s.runs) == 0 {
		s.sortCur()
		s.stats.InMemory = true
		return &Iterator{mem: s.cur}, nil
	}
	if err := s.spill(); err != nil {
		return nil, err
	}
	// Reduce the number of runs to at most fanin with intermediate passes.
	for len(s.runs) > s.fanin {
		var next []string
		for i := 0; i < len(s.runs); i += s.fanin {
			end := i + s.fanin
			if end > len(s.runs) {
				end = len(s.runs)
			}
			merged, err := s.mergeToFile(s.runs[i:end])
			if err != nil {
				return nil, err
			}
			next = append(next, merged)
		}
		s.runs = next
		s.stats.MergePasses++
	}
	return s.openMerge(s.runs)
}

func (s *Sorter) mergeToFile(runs []string) (string, error) {
	it, err := s.openMerge(runs)
	if err != nil {
		return "", err
	}
	defer it.Close()
	path := TempPath(s.dir, "sortmerge")
	w, err := CreateWriter(path)
	if err != nil {
		return "", err
	}
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			w.Abort()
			return "", err
		}
		if err := w.Append(rec); err != nil {
			w.Abort()
			return "", err
		}
	}
	if err := w.Finish(); err != nil {
		return "", err
	}
	s.stats.Spilled += w.Bytes()
	return path, nil
}

func (s *Sorter) openMerge(runs []string) (*Iterator, error) {
	h := &mergeHeap{cmp: s.cmp}
	it := &Iterator{h: h}
	for runIdx, path := range runs {
		r, err := OpenReader(path)
		if err != nil {
			it.Close()
			return nil, err
		}
		it.readers = append(it.readers, r)
		rec, err := r.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			it.Close()
			return nil, err
		}
		h.items = append(h.items, mergeItem{rec: append([]byte(nil), rec...), src: r, run: runIdx})
	}
	heap.Init(h)
	return it, nil
}

// Next returns the next record in sorted order, or io.EOF. The slice is
// valid until the following Next call.
func (it *Iterator) Next() ([]byte, error) {
	if it.h == nil {
		if it.idx >= len(it.mem) {
			return nil, io.EOF
		}
		rec := it.mem[it.idx]
		it.idx++
		return rec, nil
	}
	if it.h.Len() == 0 {
		return nil, io.EOF
	}
	top := it.h.items[0]
	out := top.rec
	// Refill from the same source.
	rec, err := top.src.Next()
	if err == io.EOF {
		heap.Pop(it.h)
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	it.h.items[0] = mergeItem{rec: append([]byte(nil), rec...), src: top.src, run: top.run}
	heap.Fix(it.h, 0)
	return out, nil
}

// Close releases readers and deletes run files.
func (it *Iterator) Close() error {
	var err error
	for _, r := range it.readers {
		if e := r.f.Close(); err == nil {
			err = e
		}
		if e := os.Remove(r.path); err == nil {
			err = e
		}
	}
	it.readers = nil
	it.h = nil
	it.mem = nil
	return err
}

type mergeItem struct {
	rec []byte
	src *Reader
	run int // run index; ties break toward earlier runs to keep Sort stable
}

type mergeHeap struct {
	items []mergeItem
	cmp   func(a, b []byte) int
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	c := h.cmp(h.items[i].rec, h.items[j].rec)
	if c != 0 {
		return c < 0
	}
	return h.items[i].run < h.items[j].run
}
func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)    { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

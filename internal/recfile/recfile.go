// Package recfile provides block-buffered sequential record files for
// intermediate query results, plus a k-way external merge sort.
//
// Milestone 3 of the paper allows engines to "write to disk each
// intermediate result, and re-read it whenever necessary"; recfile is that
// facility. The paper also notes that the public Berkeley DB distribution
// supported only block-based reading, making textbook external sort and
// block-nested-loop join awkward — our own files buffer both directions,
// so both algorithms are implemented properly.
package recfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// BlockSize is the buffer size used for reading and writing record files.
const BlockSize = 64 << 10

var tempSeq atomic.Uint64

// TempPath returns a fresh temp-file path inside dir.
func TempPath(dir, prefix string) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%d.tmp", prefix, tempSeq.Add(1)))
}

// Writer appends length-prefixed records to a file through a block buffer.
type Writer struct {
	f      *os.File
	w      *bufio.Writer
	path   string
	count  int64
	bytes  int64
	lenbuf [binary.MaxVarintLen64]byte

	// Hook, when set, is consulted before every write ("append") and flush
	// ("finish"); a non-nil return aborts the operation with that error.
	// The fault-injection harness uses it to fail the Nth temp-file write.
	Hook func(op string) error
}

// CreateWriter creates (truncating) a record file at path.
func CreateWriter(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("recfile: %w", err)
	}
	return &Writer{f: f, w: bufio.NewWriterSize(f, BlockSize), path: path}, nil
}

// Append writes one record.
func (w *Writer) Append(rec []byte) error {
	if w.Hook != nil {
		if err := w.Hook("temp:append"); err != nil {
			return err
		}
	}
	n := binary.PutUvarint(w.lenbuf[:], uint64(len(rec)))
	if _, err := w.w.Write(w.lenbuf[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(rec); err != nil {
		return err
	}
	w.count++
	w.bytes += int64(n + len(rec))
	return nil
}

// Count returns the number of records appended so far.
func (w *Writer) Count() int64 { return w.count }

// Bytes returns the encoded size written so far.
func (w *Writer) Bytes() int64 { return w.bytes }

// Path returns the file path.
func (w *Writer) Path() string { return w.path }

// Offset returns the byte offset the next record will start at — the
// encoded size written so far. Segment readers use it to address records
// written earlier in a still-open file (after Flush).
func (w *Writer) Offset() int64 { return w.bytes }

// Flush forces buffered records to the OS so a concurrent SegReader on the
// same path can see everything appended so far.
func (w *Writer) Flush() error {
	if w.Hook != nil {
		if err := w.Hook("temp:flush"); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Finish flushes and closes the file, leaving it on disk for reading.
func (w *Writer) Finish() error {
	if w.Hook != nil {
		if err := w.Hook("temp:finish"); err != nil {
			w.f.Close()
			return err
		}
	}
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Abort closes and deletes the file.
func (w *Writer) Abort() {
	w.f.Close()
	os.Remove(w.path)
}

// Reader reads a record file sequentially through a block buffer.
type Reader struct {
	f    *os.File
	r    *bufio.Reader
	path string
	buf  []byte
}

// OpenReader opens a record file for sequential reading.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("recfile: %w", err)
	}
	return &Reader{f: f, r: bufio.NewReaderSize(f, BlockSize), path: path}, nil
}

// Next returns the next record, or io.EOF. The returned slice is valid
// only until the next call to Next.
func (r *Reader) Next() ([]byte, error) {
	size, err := binary.ReadUvarint(r.r)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("recfile: corrupt record length: %w", err)
	}
	if uint64(cap(r.buf)) < size {
		r.buf = make([]byte, size)
	}
	r.buf = r.buf[:size]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return nil, fmt.Errorf("recfile: truncated record: %w", err)
	}
	return r.buf, nil
}

// Reset rewinds the reader to the beginning of the file, so the stream can
// be scanned again (used by the nested-loops join inner input).
func (r *Reader) Reset() error {
	if _, err := r.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r.r.Reset(r.f)
	return nil
}

// Close closes the underlying file (the file itself is kept).
func (r *Reader) Close() error { return r.f.Close() }

// Remove closes the reader and deletes the file.
func (r *Reader) Remove() error {
	err := r.f.Close()
	if rerr := os.Remove(r.path); err == nil {
		err = rerr
	}
	return err
}

// SegReader reads records from arbitrary byte offsets of a record file
// through its own descriptor, so segments of a file still open for
// appending can be replayed (after the writer Flushes). Seek positions the
// reader; Next then streams records sequentially from there.
type SegReader struct {
	f   *os.File
	r   *bufio.Reader
	buf []byte
}

// OpenSegReader opens path for offset-addressed record reads.
func OpenSegReader(path string) (*SegReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("recfile: %w", err)
	}
	return &SegReader{f: f, r: bufio.NewReaderSize(f, BlockSize)}, nil
}

// SeekTo positions the reader at the given byte offset (which must be a
// record boundary previously obtained from Writer.Offset).
func (r *SegReader) SeekTo(off int64) error {
	if _, err := r.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	r.r.Reset(r.f)
	return nil
}

// Next returns the next record, or io.EOF. The returned slice is valid
// only until the next call to Next or SeekTo.
func (r *SegReader) Next() ([]byte, error) {
	size, err := binary.ReadUvarint(r.r)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("recfile: corrupt record length: %w", err)
	}
	if uint64(cap(r.buf)) < size {
		r.buf = make([]byte, size)
	}
	r.buf = r.buf[:size]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return nil, fmt.Errorf("recfile: truncated record: %w", err)
	}
	return r.buf, nil
}

// Close closes the underlying file (the file itself is kept).
func (r *SegReader) Close() error { return r.f.Close() }

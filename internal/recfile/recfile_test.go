package recfile

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"
)

func TestWriteReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := TempPath(dir, "rt")
	w, err := CreateWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 1000; i++ {
		rec := []byte(fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte("x"), i%50)))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 1000 {
		t.Fatalf("count=%d", w.Count())
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Remove()
	for pass := 0; pass < 2; pass++ { // second pass tests Reset
		for i := 0; ; i++ {
			rec, err := r.Next()
			if err == io.EOF {
				if i != len(want) {
					t.Fatalf("pass %d: got %d records, want %d", pass, i, len(want))
				}
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rec, want[i]) {
				t.Fatalf("pass %d record %d mismatch", pass, i)
			}
		}
		if err := r.Reset(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEmptyFile(t *testing.T) {
	dir := t.TempDir()
	path := TempPath(dir, "empty")
	w, _ := CreateWriter(path)
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, _ := OpenReader(path)
	defer r.Remove()
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestEmptyRecords(t *testing.T) {
	dir := t.TempDir()
	path := TempPath(dir, "zero")
	w, _ := CreateWriter(path)
	w.Append(nil)
	w.Append([]byte{})
	w.Append([]byte("x"))
	w.Finish()
	r, _ := OpenReader(path)
	defer r.Remove()
	for i, wantLen := range []int{0, 0, 1} {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("rec %d: %v", i, err)
		}
		if len(rec) != wantLen {
			t.Fatalf("rec %d: len=%d want %d", i, len(rec), wantLen)
		}
	}
}

func sortAll(t *testing.T, recs [][]byte, budget int) ([][]byte, SortStats) {
	t.Helper()
	s := NewSorter(t.TempDir(), bytes.Compare, budget)
	for _, r := range recs {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out [][]byte
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, append([]byte(nil), rec...))
	}
	return out, s.Stats()
}

func randRecords(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("%08d-%d", rng.Intn(n*10), i))
	}
	return recs
}

func checkSorted(t *testing.T, in, out [][]byte) {
	t.Helper()
	if len(out) != len(in) {
		t.Fatalf("sorted %d records, want %d", len(out), len(in))
	}
	want := make([][]byte, len(in))
	copy(want, in)
	sort.SliceStable(want, func(i, j int) bool { return bytes.Compare(want[i], want[j]) < 0 })
	for i := range out {
		if !bytes.Equal(out[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, out[i], want[i])
		}
	}
}

func TestSortInMemory(t *testing.T) {
	recs := randRecords(5000, 1)
	out, stats := sortAll(t, recs, 1<<30)
	checkSorted(t, recs, out)
	if !stats.InMemory {
		t.Fatal("expected in-memory sort")
	}
}

func TestSortExternalSingleMerge(t *testing.T) {
	recs := randRecords(20000, 2)
	out, stats := sortAll(t, recs, 32<<10) // tiny budget forces many runs
	checkSorted(t, recs, out)
	if stats.InMemory || stats.Runs == 0 && stats.Spilled == 0 {
		t.Fatalf("expected spilling, stats=%+v", stats)
	}
}

func TestSortExternalMultiPass(t *testing.T) {
	recs := randRecords(60000, 3)
	s := NewSorter(t.TempDir(), bytes.Compare, 8<<10)
	s.fanin = 4 // force multi-pass merging
	for _, r := range recs {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out [][]byte
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, append([]byte(nil), rec...))
	}
	checkSorted(t, recs, out)
	if s.Stats().MergePasses == 0 {
		t.Fatalf("expected multi-pass merge, stats=%+v", s.Stats())
	}
}

func TestSortEmpty(t *testing.T) {
	out, _ := sortAll(t, nil, 1024)
	if len(out) != 0 {
		t.Fatalf("empty sort produced %d records", len(out))
	}
}

func TestSortStable(t *testing.T) {
	// Records with equal keys must retain insertion order (stability
	// matters for hierarchical document order with duplicate prefixes).
	var recs [][]byte
	for i := 0; i < 1000; i++ {
		recs = append(recs, []byte(fmt.Sprintf("key-%03d|%06d", i%7, i)))
	}
	cmp := func(a, b []byte) int { return bytes.Compare(a[:7], b[:7]) }
	s := NewSorter(t.TempDir(), cmp, 4<<10)
	for _, r := range recs {
		s.Add(r)
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	lastSeq := map[string]string{}
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		key, seq := string(rec[:7]), string(rec[8:])
		if prev, ok := lastSeq[key]; ok && prev >= seq {
			t.Fatalf("instability for %s: %s then %s", key, prev, seq)
		}
		lastSeq[key] = seq
	}
}

package server

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestUpdateEndpoint(t *testing.T) {
	ts := newTestServer(t)
	ts.do(t, "PUT", "/docs/d", `<r><a>1</a><a>2</a></r>`, 200)

	out := ts.do(t, "POST", "/docs/d/update", `insert node <a>3</a> into /r`, 200)
	var resp UpdateResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Targets != 1 || resp.Applied != 1 || resp.Seq != 1 || resp.Epoch != 2 {
		t.Fatalf("resp = %+v", resp)
	}

	res := ts.do(t, "POST", "/query?doc=d&format=xml", `//a/text()`, 200)
	if string(res) != "123" {
		t.Fatalf("after update: %q", res)
	}
}

func TestUpdateEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	ts.do(t, "PUT", "/docs/d", `<r><a>1</a></r>`, 200)

	ts.do(t, "POST", "/docs/missing/update", `delete node //a`, 404)
	ts.do(t, "POST", "/docs/d/update", `delete nodes from //a`, 400)
	ts.do(t, "POST", "/docs/d/update", ``, 400)
	// Deleting the only child of the root is legal; deleting the root
	// itself is impossible to express (paths select below the root).
	ts.do(t, "POST", "/docs/d/update", `delete node /r/a`, 200)
}

func TestUpdateEndpointStatsExposeWAL(t *testing.T) {
	ts := newTestServer(t)
	ts.do(t, "PUT", "/docs/d", `<r><a>1</a></r>`, 200)
	ts.do(t, "POST", "/docs/d/update", `insert node <a>2</a> into /r`, 200)

	out := ts.do(t, "GET", "/stats", "", 200)
	var stats struct {
		Docs []struct {
			Name          string `json:"name"`
			AppliedSeq    uint64 `json:"applied_seq"`
			WALBytes      int64  `json:"wal_bytes"`
			CheckpointLSN uint64 `json:"checkpoint_lsn"`
		} `json:"docs"`
	}
	if err := json.Unmarshal(out, &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Docs) != 1 || stats.Docs[0].AppliedSeq != 1 || stats.Docs[0].WALBytes == 0 {
		t.Fatalf("stats docs = %+v", stats.Docs)
	}
}

func TestUpdateEndpointSerializesPerDoc(t *testing.T) {
	ts := newTestServer(t)
	ts.do(t, "PUT", "/docs/d", `<r></r>`, 200)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ts.do(t, "POST", "/docs/d/update",
				fmt.Sprintf(`insert node <a>%d</a> into /r`, g), 200)
		}(g)
	}
	wg.Wait()

	res := ts.do(t, "POST", "/query?doc=d&format=xml", `//a`, 200)
	if n := strings.Count(string(res), "<a>"); n != 8 {
		t.Fatalf("want 8 inserts, got %d: %s", n, res)
	}
}

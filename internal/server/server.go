// Package server is the HTTP front end over a catalog of documents: the
// network layer of the query server. It exposes
//
//	GET    /docs                 list documents
//	PUT    /docs/{name}          load (or reload) a document; body = XML
//	DELETE /docs/{name}          drop a document
//	POST   /docs/{name}/update   apply the body as one update statement
//	POST   /query?doc=NAME       evaluate the body as an XQ query
//	POST   /explain?doc=NAME     render the compilation pipeline
//	GET    /sessions             list sessions with in-flight queries
//	POST   /sessions/{id}/cancel cancel a session's in-flight queries
//	GET    /stats                plan-cache and document statistics
//
// Queries accept per-request knobs as URL parameters (mode, timeout,
// membudget, sortbudget, batch, dop — mapping one-to-one onto
// core.Config) and a session id; canceling the session aborts its
// in-flight queries and nothing else, which the per-query engine handles
// make safe. Responses are JSON by default; format=xml returns the bare
// result document.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"xqdb/internal/catalog"
	"xqdb/internal/core"
	"xqdb/internal/exec"
	"xqdb/internal/limit"
	"xqdb/internal/plancache"
	"xqdb/internal/store"
	"xqdb/internal/xq"
)

// Config tunes the server and supplies per-query defaults.
type Config struct {
	Catalog *catalog.Catalog
	// Cache is reported by /stats; it should be the catalog's plan cache.
	Cache *plancache.Cache
	// Defaults for the per-request query knobs (see parseQueryConfig).
	Defaults core.Config
	// MaxBodyBytes bounds request bodies (queries and document loads);
	// 0 means 64 MiB.
	MaxBodyBytes int64
}

const defaultMaxBody = 64 << 20

// Server routes HTTP requests onto a catalog. Create with New, serve via
// Handler, and Close on shutdown to abort in-flight queries.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu       sync.Mutex
	sessions map[string]map[*core.Handle]struct{}
	closed   bool
}

// New returns a server over cfg.Catalog.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBody
	}
	s := &Server{cfg: cfg, sessions: make(map[string]map[*core.Handle]struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /docs", s.handleListDocs)
	mux.HandleFunc("PUT /docs/{name}", s.handleLoadDoc)
	mux.HandleFunc("DELETE /docs/{name}", s.handleDropDoc)
	mux.HandleFunc("POST /docs/{name}/update", s.handleUpdateDoc)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("GET /sessions", s.handleListSessions)
	mux.HandleFunc("POST /sessions/{id}/cancel", s.handleCancelSession)
	mux.HandleFunc("GET /stats", s.handleStats)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close aborts every in-flight query. New queries are rejected afterward.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	var handles []*core.Handle
	for _, hs := range s.sessions {
		for h := range hs {
			handles = append(handles, h)
		}
	}
	s.mu.Unlock()
	for _, h := range handles {
		h.Cancel()
	}
}

// register tracks an in-flight handle under a session id. It fails once
// the server is closing so shutdown cannot race new queries.
func (s *Server) register(session string, h *core.Handle) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("server shutting down")
	}
	hs := s.sessions[session]
	if hs == nil {
		hs = make(map[*core.Handle]struct{})
		s.sessions[session] = hs
	}
	hs[h] = struct{}{}
	return nil
}

func (s *Server) unregister(session string, h *core.Handle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hs := s.sessions[session]; hs != nil {
		delete(hs, h)
		if len(hs) == 0 {
			delete(s.sessions, session)
		}
	}
}

type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func fail(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var ae *apiError
	var pe *xq.ParseError
	switch {
	case errors.As(err, &ae):
		status = ae.status
	case errors.As(err, &pe):
		status = http.StatusBadRequest
	case errors.Is(err, limit.ErrCanceled):
		status = http.StatusConflict
	case errors.Is(err, limit.ErrTimeout):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false) // responses carry XML; keep it readable
	enc.Encode(v)
}

func (s *Server) handleListDocs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"docs": s.cfg.Catalog.List()})
}

func (s *Server) handleLoadDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	epoch, err := s.cfg.Catalog.Load(name, body)
	if err != nil {
		fail(w, &apiError{http.StatusBadRequest, err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "epoch": epoch})
}

func (s *Server) handleDropDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.cfg.Catalog.Drop(name); err != nil {
		fail(w, &apiError{http.StatusNotFound, err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": name})
}

// UpdateResponse is the JSON body of a /docs/{name}/update result.
type UpdateResponse struct {
	Doc     string  `json:"doc"`
	Epoch   uint64  `json:"epoch"`
	Targets int     `json:"targets"`
	Applied int     `json:"applied"`
	Seq     uint64  `json:"seq"`
	Elapsed float64 `json:"elapsedMs"`
}

// handleUpdateDoc applies the body as one update statement, atomically
// and durably. Statement parse errors are 400, an unknown document 404, a
// busy store 409 (updates on one document serialize in the catalog, so
// this needs a concurrent non-catalog writer), anything else 500.
func (s *Server) handleUpdateDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	src, err := s.readQuery(w, r)
	if err != nil {
		fail(w, err)
		return
	}
	start := time.Now()
	res, err := s.cfg.Catalog.Update(name, src)
	if err != nil {
		switch {
		case errors.Is(err, catalog.ErrNotFound):
			err = &apiError{http.StatusNotFound, err.Error()}
		case errors.Is(err, store.ErrBusy):
			err = &apiError{http.StatusConflict, err.Error()}
		}
		fail(w, err)
		return
	}
	resp := UpdateResponse{
		Doc:     name,
		Targets: res.Targets,
		Applied: res.Applied,
		Seq:     res.Seq,
		Elapsed: float64(time.Since(start).Microseconds()) / 1000,
	}
	if d, err := s.cfg.Catalog.Acquire(name); err == nil {
		resp.Epoch = d.Epoch()
		d.Release()
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseQueryConfig maps the request's URL parameters onto core.Config,
// starting from the server defaults.
func (s *Server) parseQueryConfig(r *http.Request) (core.Config, error) {
	cfg := s.cfg.Defaults
	q := r.URL.Query()
	if v := q.Get("mode"); v != "" {
		mode, err := ParseMode(v)
		if err != nil {
			return cfg, &apiError{http.StatusBadRequest, err.Error()}
		}
		cfg.Mode = mode
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return cfg, &apiError{http.StatusBadRequest, fmt.Sprintf("bad timeout %q", v)}
		}
		cfg.Timeout = d
	}
	for _, p := range []struct {
		key string
		dst *int
	}{
		{"membudget", &cfg.MemBudget},
		{"sortbudget", &cfg.SortBudget},
		{"batch", &cfg.BatchSize},
		{"dop", &cfg.DOP},
	} {
		if v := q.Get(p.key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return cfg, &apiError{http.StatusBadRequest, fmt.Sprintf("bad %s %q", p.key, v)}
			}
			*p.dst = n
		}
	}
	return cfg, nil
}

// ParseMode maps the CLI/HTTP engine names onto core modes.
func ParseMode(s string) (core.Mode, error) {
	switch s {
	case "m1":
		return core.ModeM1, nil
	case "m2":
		return core.ModeM2, nil
	case "tpm":
		return core.ModeNaiveTPM, nil
	case "m3":
		return core.ModeM3, nil
	case "m4", "":
		return core.ModeM4, nil
	case "badstats":
		return core.ModeM4BadStats, nil
	}
	return 0, fmt.Errorf("unknown mode %q (m1|m2|tpm|m3|m4|badstats)", s)
}

func (s *Server) readQuery(w http.ResponseWriter, r *http.Request) (string, error) {
	src, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return "", &apiError{http.StatusBadRequest, err.Error()}
	}
	if len(src) == 0 {
		return "", &apiError{http.StatusBadRequest, "empty query body"}
	}
	return string(src), nil
}

// QueryResponse is the JSON body of a /query result.
type QueryResponse struct {
	Doc      string        `json:"doc"`
	Epoch    uint64        `json:"epoch"`
	XML      string        `json:"xml"`
	CacheHit bool          `json:"cacheHit"`
	Elapsed  float64       `json:"elapsedMs"`
	Counters exec.Counters `json:"counters"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	src, err := s.readQuery(w, r)
	if err != nil {
		fail(w, err)
		return
	}
	cfg, err := s.parseQueryConfig(r)
	if err != nil {
		fail(w, err)
		return
	}
	doc, err := s.cfg.Catalog.Acquire(r.URL.Query().Get("doc"))
	if err != nil {
		fail(w, &apiError{http.StatusNotFound, err.Error()})
		return
	}
	defer doc.Release()

	h := doc.Engine(cfg).NewHandle()
	session := r.URL.Query().Get("session")
	if session == "" {
		session = r.RemoteAddr // per-connection default
	}
	if err := s.register(session, h); err != nil {
		fail(w, &apiError{http.StatusServiceUnavailable, err.Error()})
		return
	}
	defer s.unregister(session, h)

	start := time.Now()
	res, err := h.Query(src)
	if err != nil {
		fail(w, err)
		return
	}
	if r.URL.Query().Get("format") == "xml" {
		w.Header().Set("Content-Type", "application/xml")
		if res.CacheHit {
			w.Header().Set("X-Plan-Cache", "hit")
		} else {
			w.Header().Set("X-Plan-Cache", "miss")
		}
		io.WriteString(w, res.XML)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Doc:      doc.Name(),
		Epoch:    doc.Epoch(),
		XML:      res.XML,
		CacheHit: res.CacheHit,
		Elapsed:  float64(time.Since(start).Microseconds()) / 1000,
		Counters: res.Counters,
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	src, err := s.readQuery(w, r)
	if err != nil {
		fail(w, err)
		return
	}
	cfg, err := s.parseQueryConfig(r)
	if err != nil {
		fail(w, err)
		return
	}
	doc, err := s.cfg.Catalog.Acquire(r.URL.Query().Get("doc"))
	if err != nil {
		fail(w, &apiError{http.StatusNotFound, err.Error()})
		return
	}
	defer doc.Release()
	var out string
	if r.URL.Query().Get("analyze") == "true" {
		out, err = doc.Engine(cfg).ExplainAnalyze(src)
	} else {
		out, err = doc.Engine(cfg).Explain(src)
	}
	if err != nil {
		fail(w, &apiError{http.StatusBadRequest, err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, out)
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	type sess struct {
		ID       string `json:"id"`
		Inflight int    `json:"inflight"`
	}
	out := make([]sess, 0, len(s.sessions))
	for id, hs := range s.sessions {
		out = append(out, sess{ID: id, Inflight: len(hs)})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (s *Server) handleCancelSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	handles := make([]*core.Handle, 0, len(s.sessions[id]))
	for h := range s.sessions[id] {
		handles = append(handles, h)
	}
	s.mu.Unlock()
	for _, h := range handles {
		h.Cancel()
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "canceled": len(handles)})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Cache.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"planCache": map[string]any{
			"entries":       s.cfg.Cache.Len(),
			"hits":          st.Hits,
			"misses":        st.Misses,
			"puts":          st.Puts,
			"evictions":     st.Evictions,
			"invalidations": st.Invalidations,
			"hitRate":       st.HitRate(),
		},
		"docs": s.cfg.Catalog.List(),
	})
}

package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"xqdb/internal/catalog"
	"xqdb/internal/core"
	"xqdb/internal/plancache"
)

type testServer struct {
	*httptest.Server
	cat   *catalog.Catalog
	cache *plancache.Cache
	srv   *Server
}

func newTestServer(t *testing.T) *testServer {
	t.Helper()
	cache := plancache.New(64)
	cat, err := catalog.Open(t.TempDir(), catalog.Options{PlanCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Catalog: cat, Cache: cache,
		Defaults: core.Config{Mode: core.ModeM4, SortBudget: 1 << 20}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); cat.Close() })
	return &testServer{Server: ts, cat: cat, cache: cache, srv: srv}
}

func (ts *testServer) do(t *testing.T, method, path, body string, wantStatus int) []byte {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s = %d, want %d: %s", method, path, resp.StatusCode, wantStatus, out)
	}
	return out
}

func xmlDoc(n int) string {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<x>%d</x>", i)
	}
	b.WriteString("</r>")
	return b.String()
}

func TestServerEndToEnd(t *testing.T) {
	ts := newTestServer(t)
	ts.do(t, "PUT", "/docs/alpha", xmlDoc(10), http.StatusOK)
	ts.do(t, "PUT", "/docs/beta", xmlDoc(30), http.StatusOK)

	var docs struct{ Docs []catalog.Info }
	if err := json.Unmarshal(ts.do(t, "GET", "/docs", "", http.StatusOK), &docs); err != nil {
		t.Fatal(err)
	}
	if len(docs.Docs) != 2 || docs.Docs[0].Name != "alpha" || docs.Docs[1].Name != "beta" {
		t.Fatalf("docs = %+v", docs.Docs)
	}

	// Query each document; results come from the right one.
	q := `for $x in /r/x return if ($x/text() = "25") then <hit/> else ()`
	var qr QueryResponse
	if err := json.Unmarshal(ts.do(t, "POST", "/query?doc=beta", q, http.StatusOK), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.XML != "<hit/>" || qr.CacheHit || qr.Doc != "beta" || qr.Epoch != 1 {
		t.Fatalf("beta query = %+v", qr)
	}
	if qr.Counters.RowsScanned == 0 {
		t.Error("response has no counters")
	}
	if err := json.Unmarshal(ts.do(t, "POST", "/query?doc=alpha", q, http.StatusOK), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.XML != "" || qr.Doc != "alpha" {
		t.Fatalf("alpha query = %+v", qr)
	}

	// Repeating the query (reformatted) on beta hits the plan cache with
	// identical bytes.
	q2 := "for  $x in /r/x\n return if ($x/text() = \"25\") then <hit/> else ()"
	if err := json.Unmarshal(ts.do(t, "POST", "/query?doc=beta", q2, http.StatusOK), &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.CacheHit || qr.XML != "<hit/>" {
		t.Fatalf("repeat query = %+v, want cache hit with <hit/>", qr)
	}

	// format=xml returns the bare document and marks the cache state.
	req, _ := http.NewRequest("POST", ts.URL+"/query?doc=beta&format=xml", strings.NewReader(q))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(raw) != "<hit/>" || resp.Header.Get("X-Plan-Cache") != "hit" {
		t.Fatalf("xml format: %q, X-Plan-Cache=%q", raw, resp.Header.Get("X-Plan-Cache"))
	}

	// Reload bumps the epoch; the next query misses the cache but answers
	// from the new data.
	ts.do(t, "PUT", "/docs/beta", xmlDoc(26), http.StatusOK)
	if err := json.Unmarshal(ts.do(t, "POST", "/query?doc=beta", q, http.StatusOK), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.CacheHit || qr.Epoch != 2 || qr.XML != "<hit/>" {
		t.Fatalf("post-reload query = %+v", qr)
	}

	// Explain renders the pipeline without executing.
	plan := ts.do(t, "POST", "/explain?doc=beta", q, http.StatusOK)
	if !strings.Contains(string(plan), "physical plan") {
		t.Fatalf("explain output: %s", plan)
	}

	// Errors discriminate: unknown doc 404, parse failure 400.
	ts.do(t, "POST", "/query?doc=nosuch", q, http.StatusNotFound)
	ts.do(t, "POST", "/query?doc=beta", "for $x in", http.StatusBadRequest)
	ts.do(t, "POST", "/query?doc=beta", "", http.StatusBadRequest)
	ts.do(t, "POST", "/query?doc=beta&mode=warp", q, http.StatusBadRequest)

	// Stats reports the cache traffic.
	var stats struct {
		PlanCache struct {
			Entries int     `json:"entries"`
			Hits    int64   `json:"hits"`
			HitRate float64 `json:"hitRate"`
		} `json:"planCache"`
	}
	if err := json.Unmarshal(ts.do(t, "GET", "/stats", "", http.StatusOK), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.PlanCache.Hits < 2 || stats.PlanCache.Entries == 0 {
		t.Fatalf("stats = %+v", stats)
	}

	ts.do(t, "DELETE", "/docs/alpha", "", http.StatusOK)
	ts.do(t, "POST", "/query?doc=alpha", q, http.StatusNotFound)
	ts.do(t, "DELETE", "/docs/alpha", "", http.StatusNotFound)
}

// TestServerSessionCancel cancels a long query through its session id:
// the victim request fails with 409 while a parallel query on another
// session succeeds, and the abort leaks no temp files or pins.
func TestServerSessionCancel(t *testing.T) {
	ts := newTestServer(t)
	ts.do(t, "PUT", "/docs/d", xmlDoc(2000), http.StatusOK)

	victim := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Post(
			ts.URL+"/query?doc=d&session=victim&sortbudget=4096&membudget=1048576",
			"text/plain",
			strings.NewReader(`for $x in //x return for $y in //x return if ($x/text() = $y/text()) then <m/> else ()`))
		if err != nil {
			victim <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		victim <- resp.StatusCode
	}()

	// Hammer the cancel endpoint until the victim request returns;
	// bystander queries on other sessions keep working meanwhile.
	q := `for $x in /r/x return if ($x/text() = "7") then <hit/> else ()`
	deadline := time.After(30 * time.Second)
	for done := false; !done; {
		select {
		case status := <-victim:
			if status != http.StatusConflict {
				t.Fatalf("victim status = %d, want %d", status, http.StatusConflict)
			}
			done = true
		case <-deadline:
			t.Fatal("victim request never returned")
		default:
			ts.do(t, "POST", "/sessions/victim/cancel", "", http.StatusOK)
			var qr QueryResponse
			if err := json.Unmarshal(ts.do(t, "POST", "/query?doc=d&session=other", q, http.StatusOK), &qr); err != nil {
				t.Fatal(err)
			}
			if qr.XML != "<hit/>" {
				t.Fatalf("bystander got %+v", qr)
			}
		}
	}

	// The abort cleaned up: no temp files, no pinned pages.
	d, err := ts.cat.Acquire("d")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Release()
	if dir, derr := d.Store().TempDir(); derr == nil {
		if ents, _ := os.ReadDir(dir); len(ents) != 0 {
			t.Errorf("cancel leaked %d temp files", len(ents))
		}
	}
	if pins := d.Store().PinnedPages(); pins != 0 {
		t.Errorf("cancel leaked %d pinned pages", pins)
	}
}

// TestServerConcurrentSessions is the -race stress: N sessions × mixed
// documents × random cancels, all against one server.
func TestServerConcurrentSessions(t *testing.T) {
	ts := newTestServer(t)
	ts.do(t, "PUT", "/docs/a", xmlDoc(300), http.StatusOK)
	ts.do(t, "PUT", "/docs/b", xmlDoc(400), http.StatusOK)

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			doc := []string{"a", "b"}[g%2]
			session := fmt.Sprintf("s%d", g)
			for i := 0; i < 8; i++ {
				if i%4 == 3 {
					// Random-ish cancels; usually land on an idle session.
					resp, err := ts.Client().Post(
						ts.URL+"/sessions/"+session+"/cancel", "", nil)
					if err != nil {
						t.Errorf("cancel: %v", err)
						return
					}
					resp.Body.Close()
					continue
				}
				q := fmt.Sprintf(`for $x in /r/x return if ($x/text() = "%d") then <hit/> else ()`, 100+i)
				resp, err := ts.Client().Post(
					ts.URL+"/query?doc="+doc+"&session="+session, "text/plain", strings.NewReader(q))
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				// 200 or (rarely) 409 if our own cancel raced in.
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
					t.Errorf("query status %d: %s", resp.StatusCode, body)
					return
				}
				if resp.StatusCode == http.StatusOK && !strings.Contains(string(body), "<hit/>") {
					t.Errorf("query body: %s", body)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	var stats struct {
		PlanCache struct {
			HitRate float64 `json:"hitRate"`
		} `json:"planCache"`
	}
	if err := json.Unmarshal(ts.do(t, "GET", "/stats", "", http.StatusOK), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.PlanCache.HitRate == 0 {
		t.Error("no cache hits across the stress run")
	}
}

// Package btree implements a disk-resident B+-tree with variable-length
// keys and values on top of the pager, the second half of this project's
// Berkeley DB substitution.
//
// Features used by the XML-DBMS: ordered insert and point lookup, range
// cursors over a linked leaf level, and sorted bulk-loading (used when
// shredding documents, where tuples arrive sorted by their "in" label).
// Deletion removes cells from leaves without rebalancing; the paper's
// project keeps updates "as simple as possible", and an underfull leaf is
// still correct, merely wasteful.
package btree

import (
	"encoding/binary"
	"fmt"

	"xqdb/internal/pager"
)

// Node page layout (both kinds are slotted pages):
//
//	[0]     type: 1 = leaf, 2 = internal
//	[1:3]   nkeys  (uint16)
//	[3:5]   upper  (uint16): offset where the cell content area begins;
//	        cells are written downward from the end of the page
//	[5:9]   leaf: right-sibling PageID; internal: leftmost child PageID
//	[9:12]  reserved
//	[12:]   slot array: nkeys uint16 cell offsets in key order
//
// Leaf cell:     klen uvarint | vlen uvarint | key | value
// Internal cell: klen uvarint | key | child PageID (uint32)
const (
	typeLeaf     = 1
	typeInternal = 2

	offType  = 0
	offNKeys = 1
	offUpper = 3
	offLink  = 5
	hdrSize  = 12
)

func nodeType(d []byte) byte       { return d[offType] }
func setNodeType(d []byte, t byte) { d[offType] = t }

func nkeys(d []byte) int       { return int(binary.LittleEndian.Uint16(d[offNKeys:])) }
func setNKeys(d []byte, n int) { binary.LittleEndian.PutUint16(d[offNKeys:], uint16(n)) }

func upper(d []byte) int       { return int(binary.LittleEndian.Uint16(d[offUpper:])) }
func setUpper(d []byte, u int) { binary.LittleEndian.PutUint16(d[offUpper:], uint16(u)) }

func link(d []byte) pager.PageID {
	return pager.PageID(binary.LittleEndian.Uint32(d[offLink:]))
}
func setLink(d []byte, id pager.PageID) {
	binary.LittleEndian.PutUint32(d[offLink:], uint32(id))
}

func slot(d []byte, i int) int {
	return int(binary.LittleEndian.Uint16(d[hdrSize+2*i:]))
}
func setSlot(d []byte, i, off int) {
	binary.LittleEndian.PutUint16(d[hdrSize+2*i:], uint16(off))
}

// initNode formats d as an empty node of the given type.
func initNode(d []byte, typ byte) {
	for i := 0; i < hdrSize; i++ {
		d[i] = 0
	}
	setNodeType(d, typ)
	setNKeys(d, 0)
	setUpper(d, len(d))
	setLink(d, pager.NilPage)
}

// leafCell decodes the i-th cell of a leaf. Lengths below 128 (the
// overwhelmingly common case for page-sized cells) take the single-byte
// varint fast path.
func leafCell(d []byte, i int) (key, val []byte) {
	off := slot(d, i)
	klen, n1 := uint64(d[off]), 1
	if klen >= 0x80 {
		klen, n1 = binary.Uvarint(d[off:])
	}
	vlen, n2 := uint64(d[off+n1]), 1
	if vlen >= 0x80 {
		vlen, n2 = binary.Uvarint(d[off+n1:])
	}
	ks := off + n1 + n2
	return d[ks : ks+int(klen)], d[ks+int(klen) : ks+int(klen)+int(vlen)]
}

// leafCellSize returns the encoded size of a (key,value) leaf cell.
func leafCellSize(key, val []byte) int {
	return uvarintLen(uint64(len(key))) + uvarintLen(uint64(len(val))) + len(key) + len(val)
}

// internalCell decodes the i-th cell of an internal node, with the same
// single-byte varint fast path as leafCell.
func internalCell(d []byte, i int) (key []byte, child pager.PageID) {
	off := slot(d, i)
	klen, n1 := uint64(d[off]), 1
	if klen >= 0x80 {
		klen, n1 = binary.Uvarint(d[off:])
	}
	ks := off + n1
	key = d[ks : ks+int(klen)]
	child = pager.PageID(binary.LittleEndian.Uint32(d[ks+int(klen):]))
	return key, child
}

func internalCellSize(key []byte) int {
	return uvarintLen(uint64(len(key))) + len(key) + 4
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// freeSpace returns contiguous free bytes between the slot array and the
// cell area.
func freeSpace(d []byte) int {
	return upper(d) - (hdrSize + 2*nkeys(d))
}

// liveBytes returns the total size of live cells (excluding slots).
func liveBytes(d []byte) int {
	n := nkeys(d)
	total := 0
	if nodeType(d) == typeLeaf {
		for i := 0; i < n; i++ {
			k, v := leafCell(d, i)
			total += leafCellSize(k, v)
		}
	} else {
		for i := 0; i < n; i++ {
			k, _ := internalCell(d, i)
			total += internalCellSize(k)
		}
	}
	return total
}

// compact rewrites d so that all free space is contiguous.
func compact(d []byte) {
	n := nkeys(d)
	type cell struct{ off, size int }
	// Copy cells out, then rewrite from the end.
	tmp := make([]byte, 0, len(d)-upper(d))
	offsets := make([]int, n)
	for i := 0; i < n; i++ {
		off := slot(d, i)
		var size int
		if nodeType(d) == typeLeaf {
			klen, n1 := binary.Uvarint(d[off:])
			vlen, n2 := binary.Uvarint(d[off+n1:])
			size = n1 + n2 + int(klen) + int(vlen)
		} else {
			klen, n1 := binary.Uvarint(d[off:])
			size = n1 + int(klen) + 4
		}
		offsets[i] = len(tmp)
		tmp = append(tmp, d[off:off+size]...)
	}
	u := len(d) - len(tmp)
	copy(d[u:], tmp)
	for i := 0; i < n; i++ {
		setSlot(d, i, u+offsets[i])
	}
	setUpper(d, u)
}

// insertCellAt writes raw cell bytes and inserts its slot at position i,
// compacting first if needed. It returns false if the node must split.
func insertCellAt(d []byte, i int, cell []byte) bool {
	need := len(cell) + 2
	if freeSpace(d) < need {
		if liveBytes(d)+2*nkeys(d)+need+hdrSize > len(d) {
			return false
		}
		compact(d)
		if freeSpace(d) < need {
			return false
		}
	}
	n := nkeys(d)
	u := upper(d) - len(cell)
	copy(d[u:], cell)
	setUpper(d, u)
	// Shift slots right of i.
	copy(d[hdrSize+2*(i+1):hdrSize+2*(n+1)], d[hdrSize+2*i:hdrSize+2*n])
	setSlot(d, i, u)
	setNKeys(d, n+1)
	return true
}

// removeCellAt deletes slot i, leaving a hole in the cell area.
func removeCellAt(d []byte, i int) {
	n := nkeys(d)
	copy(d[hdrSize+2*i:hdrSize+2*(n-1)], d[hdrSize+2*(i+1):hdrSize+2*n])
	setNKeys(d, n-1)
}

// encodeLeafCell appends a leaf cell for (key, val) to dst.
func encodeLeafCell(dst []byte, key, val []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	dst = append(dst, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(len(val)))
	dst = append(dst, tmp[:n]...)
	dst = append(dst, key...)
	dst = append(dst, val...)
	return dst
}

// encodeInternalCell appends an internal cell for (key, child) to dst.
func encodeInternalCell(dst []byte, key []byte, child pager.PageID) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	dst = append(dst, tmp[:n]...)
	dst = append(dst, key...)
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], uint32(child))
	dst = append(dst, cb[:]...)
	return dst
}

// maxCellSize is the largest cell that fits in an otherwise empty page.
func maxCellSize(pageSize int) int { return pageSize - hdrSize - 2 }

// checkCellSize validates that a cell fits in a page at all.
func checkCellSize(pageSize, cellSize int) error {
	if cellSize > maxCellSize(pageSize) {
		return fmt.Errorf("btree: cell of %d bytes exceeds page capacity %d", cellSize, maxCellSize(pageSize))
	}
	return nil
}

package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// buildRandomTree inserts n random-ish keys and returns the sorted key
// set actually stored.
func buildRandomTree(t *testing.T, n int, seed int64) (*Tree, [][]byte) {
	t.Helper()
	pg := newPager(t, 256)
	tr, err := Create(pg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("k-%06d-%04d", rng.Intn(n*4), i%7))
		v := []byte(fmt.Sprintf("v-%d", i))
		if err := tr.Insert(k, v); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		seen[string(k)] = true
	}
	keys := make([][]byte, 0, len(seen))
	for k := range seen {
		keys = append(keys, []byte(k))
	}
	sortKeys(keys)
	return tr, keys
}

func sortKeys(keys [][]byte) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && bytes.Compare(keys[j-1], keys[j]) > 0; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
}

// collectTupleAtATime drains a range with the classic cursor.
func collectTupleAtATime(t *testing.T, tr *Tree, lo, hi []byte) (ks, vs [][]byte) {
	t.Helper()
	err := tr.ScanRange(lo, hi, func(k, v []byte) bool {
		ks = append(ks, append([]byte(nil), k...))
		vs = append(vs, append([]byte(nil), v...))
		return true
	})
	if err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	return ks, vs
}

// collectBatch drains the same range with the batched API.
func collectBatch(t *testing.T, tr *Tree, lo, hi []byte) (ks, vs [][]byte) {
	t.Helper()
	var b Batch
	err := tr.ScanRangeBatch(lo, hi, &b, func(b *Batch) bool {
		for i := 0; i < b.Len(); i++ {
			ks = append(ks, append([]byte(nil), b.Key(i)...))
			vs = append(vs, append([]byte(nil), b.Value(i)...))
		}
		return true
	})
	if err != nil {
		t.Fatalf("ScanRangeBatch: %v", err)
	}
	return ks, vs
}

func equalSlices(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestBatchScanEquivalence compares batch and tuple-at-a-time scans over
// random trees and random range bounds: both must return byte-identical
// sequences.
func TestBatchScanEquivalence(t *testing.T) {
	for _, n := range []int{0, 1, 10, 500, 3000} {
		tr, keys := buildRandomTree(t, n, int64(n)+1)
		// Full scan.
		k1, v1 := collectTupleAtATime(t, tr, nil, nil)
		k2, v2 := collectBatch(t, tr, nil, nil)
		if !equalSlices(k1, k2) || !equalSlices(v1, v2) {
			t.Fatalf("n=%d: full scan mismatch (%d vs %d entries)", n, len(k1), len(k2))
		}
		if len(k1) != len(keys) {
			t.Fatalf("n=%d: scan returned %d keys, tree has %d", n, len(k1), len(keys))
		}
		// Random sub-ranges, including empty and degenerate ones.
		rng := rand.New(rand.NewSource(int64(n) * 31))
		for trial := 0; trial < 20; trial++ {
			var lo, hi []byte
			if len(keys) > 0 {
				lo = keys[rng.Intn(len(keys))]
				hi = keys[rng.Intn(len(keys))]
				if bytes.Compare(lo, hi) > 0 {
					lo, hi = hi, lo
				}
			}
			k1, v1 := collectTupleAtATime(t, tr, lo, hi)
			k2, v2 := collectBatch(t, tr, lo, hi)
			if !equalSlices(k1, k2) || !equalSlices(v1, v2) {
				t.Fatalf("n=%d trial %d: range [%q,%q) mismatch (%d vs %d)", n, trial, lo, hi, len(k1), len(k2))
			}
		}
	}
}

// TestBatchPrefixEquivalence compares ScanPrefix and ScanPrefixBatch.
func TestBatchPrefixEquivalence(t *testing.T) {
	pg := newPager(t, 128)
	tr, err := Create(pg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 900; i++ {
		k := []byte(fmt.Sprintf("p%d/%05d", i%9, i))
		if err := tr.Insert(k, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, prefix := range []string{"p0/", "p4/", "p8/", "p9/", "", "p"} {
		var k1, v1, k2, v2 [][]byte
		err := tr.ScanPrefix([]byte(prefix), func(k, v []byte) bool {
			k1 = append(k1, append([]byte(nil), k...))
			v1 = append(v1, append([]byte(nil), v...))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		var b Batch
		err = tr.ScanPrefixBatch([]byte(prefix), &b, func(b *Batch) bool {
			for i := 0; i < b.Len(); i++ {
				k2 = append(k2, append([]byte(nil), b.Key(i)...))
				v2 = append(v2, append([]byte(nil), b.Value(i)...))
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if !equalSlices(k1, k2) || !equalSlices(v1, v2) {
			t.Fatalf("prefix %q: mismatch (%d vs %d entries)", prefix, len(k1), len(k2))
		}
	}
}

// TestBatchEarlyStop checks that returning false from the callback stops
// the scan without error.
func TestBatchEarlyStop(t *testing.T) {
	tr, keys := buildRandomTree(t, 2000, 7)
	if len(keys) == 0 {
		t.Fatal("empty tree")
	}
	var got int
	var b Batch
	err := tr.ScanRangeBatch(nil, nil, &b, func(b *Batch) bool {
		got += b.Len()
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == 0 || got >= len(keys) {
		t.Fatalf("early stop visited %d of %d keys", got, len(keys))
	}
}

// TestBatchCursorResume checks NextBatch leaf-at-a-time iteration against
// a full collect, and that cursors see updates-free trees consistently
// without holding pins between calls.
func TestBatchCursorResume(t *testing.T) {
	tr, keys := buildRandomTree(t, 1200, 99)
	c := tr.FirstBatch()
	var got [][]byte
	var b Batch
	for {
		ok, err := c.NextBatch(&b)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if b.Len() == 0 {
			t.Fatal("NextBatch reported ok with an empty batch")
		}
		for i := 0; i < b.Len(); i++ {
			got = append(got, append([]byte(nil), b.Key(i)...))
		}
	}
	if !equalSlices(got, keys) {
		t.Fatalf("batch cursor returned %d keys, want %d", len(got), len(keys))
	}
}

// TestPrefixSuccessor pins the range-bound helper's edge cases.
func TestPrefixSuccessor(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte("abc"), []byte("abd")},
		{[]byte{0x01, 0xff}, []byte{0x02}},
		{[]byte{0xff, 0xff}, nil},
		{nil, nil},
		{[]byte{0x00}, []byte{0x01}},
	}
	for _, c := range cases {
		if got := PrefixSuccessor(c.in); !bytes.Equal(got, c.want) {
			t.Errorf("PrefixSuccessor(%x) = %x, want %x", c.in, got, c.want)
		}
	}
}

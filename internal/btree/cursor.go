package btree

import (
	"bytes"

	"xqdb/internal/pager"
)

// Cursor iterates leaf cells in key order. The cursor keeps the current
// leaf page pinned; Close must be called when done. Key and Value return
// slices into the pinned page, valid only until the next Next or Close —
// copy them to retain.
type Cursor struct {
	t    *Tree
	page *pager.Page
	idx  int
	err  error
}

// First positions a new cursor at the smallest key.
func (t *Tree) First() (*Cursor, error) {
	id := t.root
	for {
		p, err := t.pg.Read(id)
		if err != nil {
			return nil, err
		}
		d := p.Data()
		if nodeType(d) == typeLeaf {
			c := &Cursor{t: t, page: p, idx: 0}
			if err := c.skipEmpty(); err != nil {
				c.Close()
				return nil, err
			}
			return c, nil
		}
		id = link(d)
		p.Unpin()
	}
}

// Seek positions a new cursor at the first key >= key.
func (t *Tree) Seek(key []byte) (*Cursor, error) {
	id := t.root
	for {
		p, err := t.pg.Read(id)
		if err != nil {
			return nil, err
		}
		d := p.Data()
		if nodeType(d) == typeInternal {
			_, next := childFor(d, key)
			p.Unpin()
			id = next
			continue
		}
		c := &Cursor{t: t, page: p, idx: findInLeaf(d, key)}
		if err := c.skipEmpty(); err != nil {
			c.Close()
			return nil, err
		}
		return c, nil
	}
}

// Valid reports whether the cursor is positioned on a cell.
func (c *Cursor) Valid() bool { return c.page != nil && c.err == nil }

// Err returns the first error the cursor encountered, if any.
func (c *Cursor) Err() error { return c.err }

// Key returns the current key (valid until Next or Close).
func (c *Cursor) Key() []byte {
	k, _ := leafCell(c.page.Data(), c.idx)
	return k
}

// Value returns the current value (valid until Next or Close).
func (c *Cursor) Value() []byte {
	_, v := leafCell(c.page.Data(), c.idx)
	return v
}

// Next advances to the following key, crossing leaf boundaries.
func (c *Cursor) Next() error {
	if c.page == nil {
		return nil
	}
	c.idx++
	return c.skipEmpty()
}

// skipEmpty advances across exhausted/empty leaves until a cell is found
// or the chain ends (page set to nil).
func (c *Cursor) skipEmpty() error {
	for c.page != nil && c.idx >= nkeys(c.page.Data()) {
		next := link(c.page.Data())
		c.page.Unpin()
		c.page = nil
		if next == pager.NilPage {
			return nil
		}
		p, err := c.t.pg.Read(next)
		if err != nil {
			c.err = err
			return err
		}
		c.page = p
		c.idx = 0
	}
	return nil
}

// Close releases the pinned page. The cursor must not be used afterwards.
func (c *Cursor) Close() {
	if c.page != nil {
		c.page.Unpin()
		c.page = nil
	}
}

// ScanPrefix calls fn for every (key, value) whose key begins with prefix,
// in key order. The slices passed to fn are only valid during the call.
// fn returning false stops the scan early.
func (t *Tree) ScanPrefix(prefix []byte, fn func(k, v []byte) bool) error {
	c, err := t.Seek(prefix)
	if err != nil {
		return err
	}
	defer c.Close()
	for c.Valid() {
		k := c.Key()
		if !bytes.HasPrefix(k, prefix) {
			return nil
		}
		if !fn(k, c.Value()) {
			return nil
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	return c.Err()
}

// ScanRange calls fn for every (key, value) with lo <= key < hi in key
// order. A nil hi means "to the end".
func (t *Tree) ScanRange(lo, hi []byte, fn func(k, v []byte) bool) error {
	c, err := t.Seek(lo)
	if err != nil {
		return err
	}
	defer c.Close()
	for c.Valid() {
		k := c.Key()
		if hi != nil && bytes.Compare(k, hi) >= 0 {
			return nil
		}
		if !fn(k, c.Value()) {
			return nil
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	return c.Err()
}

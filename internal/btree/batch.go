package btree

import (
	"bytes"

	"xqdb/internal/pager"
)

// Batch is a reusable buffer of decoded leaf cells. A batch fill pins a
// leaf once, copies every remaining cell into the batch's arena and
// unpins, so iterating a batch costs no pager locks at all. The arena and
// offset table are reused across fills: steady-state batch scans allocate
// nothing.
type Batch struct {
	buf  []byte
	offs []int // 2n+1 boundaries: entry i is key buf[offs[2i]:offs[2i+1]], value buf[offs[2i+1]:offs[2i+2]]
}

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() {
	b.buf = b.buf[:0]
	b.offs = b.offs[:0]
}

// Len returns the number of entries in the batch.
func (b *Batch) Len() int {
	if len(b.offs) == 0 {
		return 0
	}
	return (len(b.offs) - 1) / 2
}

// Key returns the i-th key. It aliases the batch arena: valid until the
// next fill or Reset.
func (b *Batch) Key(i int) []byte { return b.buf[b.offs[2*i]:b.offs[2*i+1]] }

// Value returns the i-th value. It aliases the batch arena: valid until
// the next fill or Reset.
func (b *Batch) Value(i int) []byte { return b.buf[b.offs[2*i+1]:b.offs[2*i+2]] }

// append copies one cell into the batch.
func (b *Batch) append(k, v []byte) {
	if len(b.offs) == 0 {
		b.offs = append(b.offs, len(b.buf))
	}
	b.buf = append(b.buf, k...)
	b.offs = append(b.offs, len(b.buf))
	b.buf = append(b.buf, v...)
	b.offs = append(b.offs, len(b.buf))
}

// BatchCursor iterates the leaf level one page at a time. Unlike Cursor it
// holds no pin between NextBatch calls — each call pins one leaf, decodes
// its remaining in-range cells into the caller's Batch, remembers the
// right-sibling link and unpins — so one pager round-trip (lock, map
// lookup, pin/unpin) is amortized over every cell of the leaf.
//
// An optional exclusive upper bound confines the decode work to the
// requested range: short scans (index nested-loops probes, child lookups)
// copy only their few in-range cells, not the whole leaf.
//
// Positioning is lazy: Seek stores the bounds and the first NextLeaf
// performs the root-to-leaf descent, flowing straight into that leaf's
// decode — a probe costs one descent, not a descent plus a re-read.
type BatchCursor struct {
	t      *Tree
	lo     []byte       // seek key; retained until the descent happens
	bound  []byte       // exclusive upper key; nil = to the end
	seeked bool         // true once the descent has run
	next   pager.PageID // next leaf to read; NilPage when exhausted
	start  int          // first slot to decode in that leaf (Seek offset)
}

// FirstBatch positions a batch cursor at the smallest key.
func (t *Tree) FirstBatch() *BatchCursor {
	return t.SeekBatchRange(nil, nil)
}

// SeekBatch positions a batch cursor at the first key >= key.
func (t *Tree) SeekBatch(key []byte) *BatchCursor {
	return t.SeekBatchRange(key, nil)
}

// SeekBatchRange positions a batch cursor at the first key >= lo, bounded
// above by hi (exclusive; nil = unbounded). A nil lo means the smallest
// key.
func (t *Tree) SeekBatchRange(lo, hi []byte) *BatchCursor {
	c := &BatchCursor{}
	t.SeekBatchRangeInto(c, lo, hi)
	return c
}

// SeekBatchRangeInto is SeekBatchRange positioning a caller-owned cursor
// in place, so pooled cursors can be re-seeked without allocation. It does
// no I/O — the descent runs inside the first NextLeaf, which is where
// positioning errors surface.
func (t *Tree) SeekBatchRangeInto(c *BatchCursor, lo, hi []byte) {
	*c = BatchCursor{t: t, lo: lo, bound: hi}
}

// Reseek repositions the cursor at the first key >= lo, keeping the tree
// and the exclusive upper bound it was opened with. Like the initial
// seek it does no I/O; the fresh root-to-leaf descent runs inside the
// next NextLeaf. Merge-style consumers use it to leap over key runs that
// cannot contribute instead of decoding every leaf in between.
func (c *BatchCursor) Reseek(lo []byte) {
	c.t.SeekBatchRangeInto(c, lo, c.bound)
}

// descendToLeaf returns the pinned leaf that would hold key (nil = the
// leftmost leaf).
func (t *Tree) descendToLeaf(key []byte) (*pager.Page, error) {
	id := t.root
	for {
		p, err := t.pg.Read(id)
		if err != nil {
			return nil, err
		}
		d := p.Data()
		if nodeType(d) == typeLeaf {
			return p, nil
		}
		var next pager.PageID
		if key == nil {
			next = link(d) // leftmost child
		} else {
			_, next = childFor(d, key)
		}
		p.Unpin()
		id = next
	}
}

// NextLeaf visits the in-range cells of the next non-empty leaf, calling
// fn once per cell while the leaf is pinned, and reports false when the
// leaf chain or the bound is exhausted. The slices passed to fn alias the
// pinned page: they are only valid during the call and must be copied (or
// fully decoded) to retain. This is the zero-copy core of the batched read
// path: one pager round-trip per leaf, cells decoded straight off the
// page.
func (c *BatchCursor) NextLeaf(fn func(k, v []byte)) (bool, error) {
	for {
		var p *pager.Page
		var err error
		if !c.seeked {
			c.seeked = true
			p, err = c.t.descendToLeaf(c.lo)
			if err != nil {
				return false, err
			}
			if c.lo != nil {
				c.start = findInLeaf(p.Data(), c.lo)
				c.lo = nil
			}
		} else {
			if c.next == pager.NilPage {
				return false, nil
			}
			p, err = c.t.pg.Read(c.next)
			if err != nil {
				return false, err
			}
		}
		d := p.Data()
		n := nkeys(d)
		// Bound handling: one compare against the leaf's last key decides
		// whether the whole remainder is in range (the common case mid-
		// range, no per-cell compares) or the bound falls inside this leaf
		// (compare per cell, stopping at the bound — exactly what a short
		// probe needs, cheaper than a binary search when few cells match).
		checkEach := false
		if c.bound != nil && n > 0 {
			last, _ := leafCell(d, n-1)
			checkEach = bytes.Compare(last, c.bound) >= 0
		}
		i := c.start
		for ; i < n; i++ {
			k, v := leafCell(d, i)
			if checkEach && bytes.Compare(k, c.bound) >= 0 {
				break
			}
			fn(k, v)
		}
		visited := i - c.start
		if checkEach {
			c.next = pager.NilPage // the bound falls inside this leaf
		} else {
			c.next = link(d)
		}
		c.start = 0
		p.Unpin()
		if visited > 0 {
			return true, nil
		}
		if c.next == pager.NilPage {
			return false, nil
		}
	}
}

// NextBatch fills b with the in-range cells of the next non-empty leaf. It
// reports false when the leaf chain or the bound is exhausted. b is Reset
// first; its previous contents are invalidated.
func (c *BatchCursor) NextBatch(b *Batch) (bool, error) {
	b.Reset()
	return c.NextLeaf(b.append)
}

// ScanRangeBatch is the batched form of ScanRange: fn is called once per
// leaf with a batch holding every (key, value) with lo <= key < hi from
// that leaf. A nil hi means "to the end". fn returning false stops the
// scan early. The batch contents are only valid during the call.
func (t *Tree) ScanRangeBatch(lo, hi []byte, b *Batch, fn func(*Batch) bool) error {
	c := t.SeekBatchRange(lo, hi)
	for {
		ok, err := c.NextBatch(b)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if !fn(b) {
			return nil
		}
	}
}

// ScanPrefixBatch is the batched form of ScanPrefix: fn is called once per
// leaf with a batch holding every (key, value) whose key begins with
// prefix. fn returning false stops the scan early.
func (t *Tree) ScanPrefixBatch(prefix []byte, b *Batch, fn func(*Batch) bool) error {
	return t.ScanRangeBatch(prefix, PrefixSuccessor(prefix), b, fn)
}

// PrefixSuccessor returns the smallest key greater than every key with the
// given prefix, for use as an exclusive range bound; nil when no such key
// exists (the prefix is empty or all 0xff).
func PrefixSuccessor(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xff {
			succ := append([]byte(nil), prefix[:i+1]...)
			succ[i]++
			return succ
		}
	}
	return nil
}

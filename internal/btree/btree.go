package btree

import (
	"bytes"
	"fmt"
	"sort"

	"xqdb/internal/pager"
)

// Tree is a B+-tree rooted at a page of the underlying pager. Keys are
// ordered by bytes.Compare. A Tree is safe for concurrent readers as long
// as no writer is active (the load-then-query discipline of the paper).
type Tree struct {
	pg   *pager.Pager
	root pager.PageID
	// onRootChange, if set, is called whenever a root split or bulk load
	// moves the root page, so the owner can persist the new root id.
	onRootChange func(pager.PageID)
}

// Create allocates an empty tree (a single empty leaf) and returns it.
func Create(pg *pager.Pager) (*Tree, error) {
	p, err := pg.Allocate()
	if err != nil {
		return nil, err
	}
	initNode(p.Data(), typeLeaf)
	p.MarkDirty()
	id := p.ID
	p.Unpin()
	return &Tree{pg: pg, root: id}, nil
}

// Open returns a tree rooted at a previously persisted root page.
func Open(pg *pager.Pager, root pager.PageID) *Tree {
	return &Tree{pg: pg, root: root}
}

// Root returns the current root page id (persist it to reopen the tree).
func (t *Tree) Root() pager.PageID { return t.root }

// OnRootChange registers a callback invoked when the root page id changes.
func (t *Tree) OnRootChange(fn func(pager.PageID)) { t.onRootChange = fn }

func (t *Tree) setRoot(id pager.PageID) {
	t.root = id
	if t.onRootChange != nil {
		t.onRootChange(id)
	}
}

// Height returns the number of levels in the tree (1 = a single leaf).
func (t *Tree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		p, err := t.pg.Read(id)
		if err != nil {
			return 0, err
		}
		d := p.Data()
		if nodeType(d) == typeLeaf {
			p.Unpin()
			return h, nil
		}
		id = link(d) // leftmost child
		p.Unpin()
		h++
	}
}

// findInLeaf returns the slot index of the first key >= key. It is a
// hand-rolled binary search over the slot array: the closure-free form
// keeps the per-node cost of scans and seeks minimal.
func findInLeaf(d []byte, key []byte) int {
	lo, hi := 0, nkeys(d)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		k, _ := leafCell(d, mid)
		if bytes.Compare(k, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childFor returns the index and page id of the child to descend into for
// key. Index -1 denotes the leftmost child. Binary search for the first
// separator > key; the child to follow sits one slot before it.
func childFor(d []byte, key []byte) (int, pager.PageID) {
	lo, hi := 0, nkeys(d)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		k, _ := internalCell(d, mid)
		if bytes.Compare(k, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return -1, link(d)
	}
	_, child := internalCell(d, lo-1)
	return lo - 1, child
}

// Get returns the value stored under key. The returned slice is a copy.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	id := t.root
	for {
		p, err := t.pg.Read(id)
		if err != nil {
			return nil, false, err
		}
		d := p.Data()
		if nodeType(d) == typeInternal {
			_, next := childFor(d, key)
			p.Unpin()
			id = next
			continue
		}
		i := findInLeaf(d, key)
		if i < nkeys(d) {
			k, v := leafCell(d, i)
			if bytes.Equal(k, key) {
				out := append([]byte(nil), v...)
				p.Unpin()
				return out, true, nil
			}
		}
		p.Unpin()
		return nil, false, nil
	}
}

// pathEntry records one internal node on the root-to-leaf descent.
type pathEntry struct {
	page *pager.Page
}

// Insert stores value under key, replacing any existing value.
func (t *Tree) Insert(key, value []byte) error {
	if err := checkCellSize(t.pg.UsableSize(), leafCellSize(key, value)); err != nil {
		return err
	}
	// Descend, keeping the path pinned for split propagation.
	var path []pathEntry
	defer func() {
		for _, e := range path {
			e.page.Unpin()
		}
	}()
	id := t.root
	var leaf *pager.Page
	for {
		p, err := t.pg.Read(id)
		if err != nil {
			return err
		}
		d := p.Data()
		if nodeType(d) == typeLeaf {
			leaf = p
			break
		}
		_, next := childFor(d, key)
		path = append(path, pathEntry{page: p})
		id = next
	}
	defer leaf.Unpin()

	d := leaf.Data()
	i := findInLeaf(d, key)
	if i < nkeys(d) {
		k, _ := leafCell(d, i)
		if bytes.Equal(k, key) {
			removeCellAt(d, i)
		}
	}
	cell := encodeLeafCell(nil, key, value)
	if insertCellAt(d, i, cell) {
		leaf.MarkDirty()
		return nil
	}
	// Leaf split.
	sep, rightID, err := t.splitLeaf(leaf, i, cell)
	if err != nil {
		return err
	}
	return t.insertIntoParents(path, sep, rightID)
}

// splitLeaf splits the full leaf, inserting the new cell at logical
// position i. It returns the separator key (first key of the right page)
// and the right page id.
func (t *Tree) splitLeaf(leaf *pager.Page, i int, newCell []byte) ([]byte, pager.PageID, error) {
	d := leaf.Data()
	n := nkeys(d)
	// Gather all cells in order, with the new cell at position i.
	cells := make([][]byte, 0, n+1)
	for j := 0; j < n; j++ {
		off := slot(d, j)
		k, v := leafCell(d, j)
		size := leafCellSize(k, v)
		cells = append(cells, append([]byte(nil), d[off:off+size]...))
	}
	cells = append(cells[:i], append([][]byte{newCell}, cells[i:]...)...)

	total := 0
	for _, c := range cells {
		total += len(c)
	}
	// Split point: first prefix exceeding half the bytes.
	half := total / 2
	acc, split := 0, 0
	for j, c := range cells {
		acc += len(c)
		if acc > half {
			split = j + 1
			break
		}
	}
	if split == 0 {
		split = 1
	}
	if split >= len(cells) {
		split = len(cells) - 1
	}

	right, err := t.pg.Allocate()
	if err != nil {
		return nil, 0, err
	}
	defer right.Unpin()
	rd := right.Data()
	initNode(rd, typeLeaf)
	setLink(rd, link(d))
	for j, c := range cells[split:] {
		if !insertCellAt(rd, j, c) {
			return nil, 0, fmt.Errorf("btree: split overflow (right)")
		}
	}
	// Rebuild the left page in place.
	initNode(d, typeLeaf)
	setLink(d, right.ID)
	for j, c := range cells[:split] {
		if !insertCellAt(d, j, c) {
			return nil, 0, fmt.Errorf("btree: split overflow (left)")
		}
	}
	leaf.MarkDirty()
	right.MarkDirty()
	sepKey, _ := leafCell(rd, 0)
	return append([]byte(nil), sepKey...), right.ID, nil
}

// insertIntoParents propagates a split (sep, right) up the pinned path.
func (t *Tree) insertIntoParents(path []pathEntry, sep []byte, right pager.PageID) error {
	for lvl := len(path) - 1; lvl >= 0; lvl-- {
		p := path[lvl].page
		d := p.Data()
		// Position: first separator > sep.
		n := nkeys(d)
		pos := sort.Search(n, func(i int) bool {
			k, _ := internalCell(d, i)
			return bytes.Compare(k, sep) > 0
		})
		cell := encodeInternalCell(nil, sep, right)
		if insertCellAt(d, pos, cell) {
			p.MarkDirty()
			return nil
		}
		var err error
		sep, right, err = t.splitInternal(p, pos, sep, right)
		if err != nil {
			return err
		}
	}
	// Root split: new root with old root as leftmost child.
	newRoot, err := t.pg.Allocate()
	if err != nil {
		return err
	}
	defer newRoot.Unpin()
	d := newRoot.Data()
	initNode(d, typeInternal)
	setLink(d, t.root)
	if !insertCellAt(d, 0, encodeInternalCell(nil, sep, right)) {
		return fmt.Errorf("btree: root cell too large")
	}
	newRoot.MarkDirty()
	t.setRoot(newRoot.ID)
	return nil
}

// splitInternal splits a full internal node that needs (sep, right)
// inserted at slot position pos. It returns the key to promote and the new
// right node id.
func (t *Tree) splitInternal(p *pager.Page, pos int, sep []byte, right pager.PageID) ([]byte, pager.PageID, error) {
	d := p.Data()
	n := nkeys(d)
	type icell struct {
		key   []byte
		child pager.PageID
	}
	cells := make([]icell, 0, n+1)
	for j := 0; j < n; j++ {
		k, c := internalCell(d, j)
		cells = append(cells, icell{key: append([]byte(nil), k...), child: c})
	}
	cells = append(cells[:pos], append([]icell{{key: append([]byte(nil), sep...), child: right}}, cells[pos:]...)...)

	mid := len(cells) / 2
	promote := cells[mid]
	leftCells := cells[:mid]
	rightCells := cells[mid+1:]

	rp, err := t.pg.Allocate()
	if err != nil {
		return nil, 0, err
	}
	defer rp.Unpin()
	rd := rp.Data()
	initNode(rd, typeInternal)
	setLink(rd, promote.child) // promoted key's child becomes right's leftmost
	for j, c := range rightCells {
		if !insertCellAt(rd, j, encodeInternalCell(nil, c.key, c.child)) {
			return nil, 0, fmt.Errorf("btree: internal split overflow (right)")
		}
	}
	c0 := link(d)
	initNode(d, typeInternal)
	setLink(d, c0)
	for j, c := range leftCells {
		if !insertCellAt(d, j, encodeInternalCell(nil, c.key, c.child)) {
			return nil, 0, fmt.Errorf("btree: internal split overflow (left)")
		}
	}
	p.MarkDirty()
	rp.MarkDirty()
	return promote.key, rp.ID, nil
}

// Delete removes key from the tree. It reports whether the key was found.
// Leaves are not rebalanced (see package comment).
func (t *Tree) Delete(key []byte) (bool, error) {
	id := t.root
	for {
		p, err := t.pg.Read(id)
		if err != nil {
			return false, err
		}
		d := p.Data()
		if nodeType(d) == typeInternal {
			_, next := childFor(d, key)
			p.Unpin()
			id = next
			continue
		}
		i := findInLeaf(d, key)
		if i < nkeys(d) {
			k, _ := leafCell(d, i)
			if bytes.Equal(k, key) {
				removeCellAt(d, i)
				p.MarkDirty()
				p.Unpin()
				return true, nil
			}
		}
		p.Unpin()
		return false, nil
	}
}

// Len counts the keys in the tree by scanning the leaf level.
func (t *Tree) Len() (int, error) {
	c, err := t.First()
	if err != nil {
		return 0, err
	}
	defer c.Close()
	n := 0
	for c.Valid() {
		n++
		if err := c.Next(); err != nil {
			return 0, err
		}
	}
	return n, nil
}

package btree

import (
	"bytes"
	"fmt"

	"xqdb/internal/pager"
)

// bulkFillFraction leaves headroom in bulk-loaded pages so later inserts
// do not immediately split every page.
const bulkFillFraction = 0.90

// BulkLoad builds a tree from a strictly key-sorted stream, packing leaves
// left to right and constructing the internal levels bottom-up. next must
// return ok=false at end of stream; returned slices are copied before next
// is called again. BulkLoad is how documents are shredded into the
// clustered primary tree: the XASR tuples arrive sorted by "in".
func BulkLoad(pg *pager.Pager, next func() (key, value []byte, ok bool, err error)) (*Tree, error) {
	t := &Tree{pg: pg}
	fillTarget := int(float64(pg.UsableSize()-hdrSize) * bulkFillFraction)

	type entry struct {
		firstKey []byte
		id       pager.PageID
	}
	var leaves []entry

	cur, err := pg.Allocate()
	if err != nil {
		return nil, err
	}
	initNode(cur.Data(), typeLeaf)
	curUsed := 0
	curCount := 0
	var curFirst []byte
	var prevKey []byte
	havePrev := false

	finishLeaf := func() {
		cur.MarkDirty()
		leaves = append(leaves, entry{firstKey: curFirst, id: cur.ID})
	}

	for {
		key, val, ok, err := next()
		if err != nil {
			cur.Unpin()
			return nil, err
		}
		if !ok {
			break
		}
		if havePrev && bytes.Compare(prevKey, key) >= 0 {
			cur.Unpin()
			return nil, fmt.Errorf("btree: bulk load keys out of order (%x then %x)", prevKey, key)
		}
		prevKey = append(prevKey[:0], key...)
		havePrev = true

		size := leafCellSize(key, val)
		if err := checkCellSize(pg.UsableSize(), size); err != nil {
			cur.Unpin()
			return nil, err
		}
		if curCount > 0 && curUsed+size+2*curCount+2 > fillTarget {
			// Start a new leaf and chain it.
			nxt, err := pg.Allocate()
			if err != nil {
				cur.Unpin()
				return nil, err
			}
			initNode(nxt.Data(), typeLeaf)
			setLink(cur.Data(), nxt.ID)
			finishLeaf()
			cur.Unpin()
			cur = nxt
			curUsed, curCount, curFirst = 0, 0, nil
		}
		if curCount == 0 {
			curFirst = append([]byte(nil), key...)
		}
		if !insertCellAt(cur.Data(), curCount, encodeLeafCell(nil, key, val)) {
			cur.Unpin()
			return nil, fmt.Errorf("btree: bulk load cell does not fit")
		}
		curUsed += size
		curCount++
	}
	finishLeaf()
	cur.Unpin()

	// Build internal levels until a single node remains.
	level := leaves
	for len(level) > 1 {
		var parents []entry
		i := 0
		for i < len(level) {
			node, err := pg.Allocate()
			if err != nil {
				return nil, err
			}
			d := node.Data()
			initNode(d, typeInternal)
			setLink(d, level[i].id)
			first := level[i].firstKey
			used := 0
			count := 0
			i++
			for i < len(level) {
				size := internalCellSize(level[i].firstKey)
				if count > 0 && used+size+2*count+2 > fillTarget {
					break
				}
				if !insertCellAt(d, count, encodeInternalCell(nil, level[i].firstKey, level[i].id)) {
					break
				}
				used += size
				count++
				i++
			}
			node.MarkDirty()
			parents = append(parents, entry{firstKey: first, id: node.ID})
			node.Unpin()
		}
		level = parents
	}
	t.setRoot(level[0].id)
	return t, nil
}

package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"xqdb/internal/pager"
)

func newPager(t testing.TB, frames int) *pager.Pager {
	t.Helper()
	pg, err := pager.Open(filepath.Join(t.TempDir(), "t.db"), pager.Options{CacheFrames: frames})
	if err != nil {
		t.Fatalf("pager.Open: %v", err)
	}
	t.Cleanup(func() { pg.Close() })
	return pg
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestInsertGetSmall(t *testing.T) {
	pg := newPager(t, 64)
	tr, err := Create(pg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		v, ok, err := tr.Get(key(i))
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("get %d: got %q want %q", i, v, val(i))
		}
	}
	if _, ok, _ := tr.Get([]byte("missing")); ok {
		t.Fatal("found missing key")
	}
}

func TestInsertManySplits(t *testing.T) {
	pg := newPager(t, 64)
	tr, err := Create(pg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	perm := rand.New(rand.NewSource(42)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Fatalf("expected multi-level tree, height=%d", h)
	}
	// Verify full ordered iteration.
	c, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	count := 0
	var prev []byte
	for c.Valid() {
		k := c.Key()
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("keys out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		count++
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if count != n {
		t.Fatalf("iterated %d keys, want %d", count, n)
	}
}

func TestInsertReplace(t *testing.T) {
	pg := newPager(t, 64)
	tr, _ := Create(pg)
	if err := tr.Insert([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("got %q ok=%v err=%v, want v2", v, ok, err)
	}
	if n, _ := tr.Len(); n != 1 {
		t.Fatalf("len=%d, want 1", n)
	}
}

func TestDelete(t *testing.T) {
	pg := newPager(t, 64)
	tr, _ := Create(pg)
	for i := 0; i < 1000; i++ {
		tr.Insert(key(i), val(i))
	}
	for i := 0; i < 1000; i += 2 {
		ok, err := tr.Delete(key(i))
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	for i := 0; i < 1000; i++ {
		_, ok, _ := tr.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("after delete, get %d: ok=%v want %v", i, ok, want)
		}
	}
	if ok, _ := tr.Delete([]byte("missing")); ok {
		t.Fatal("deleted missing key")
	}
}

func TestSeekAndRange(t *testing.T) {
	pg := newPager(t, 64)
	tr, _ := Create(pg)
	for i := 0; i < 500; i++ {
		tr.Insert(key(i*2), val(i*2)) // even keys only
	}
	c, err := tr.Seek(key(101)) // between 100 and 102
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() || !bytes.Equal(c.Key(), key(102)) {
		t.Fatalf("seek landed on %q, want %q", c.Key(), key(102))
	}
	c.Close()

	var got []string
	err = tr.ScanRange(key(10), key(20), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"key-00000010", "key-00000012", "key-00000014", "key-00000016", "key-00000018"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("range got %v want %v", got, want)
	}
}

func TestScanPrefix(t *testing.T) {
	pg := newPager(t, 64)
	tr, _ := Create(pg)
	tr.Insert([]byte("a/1"), nil)
	tr.Insert([]byte("a/2"), nil)
	tr.Insert([]byte("ab/1"), nil)
	tr.Insert([]byte("b/1"), nil)
	var got []string
	tr.ScanPrefix([]byte("a/"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if fmt.Sprint(got) != "[a/1 a/2]" {
		t.Fatalf("prefix scan got %v", got)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.db")
	pg, err := pager.Open(path, pager.Options{CacheFrames: 32})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := Create(pg)
	var root pager.PageID
	tr.OnRootChange(func(id pager.PageID) { root = id })
	root = tr.Root()
	for i := 0; i < 5000; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	root = tr.Root()
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}

	pg2, err := pager.Open(path, pager.Options{CacheFrames: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	tr2 := Open(pg2, root)
	for i := 0; i < 5000; i += 97 {
		v, ok, err := tr2.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("reopen get %d: %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

func TestBulkLoadAndLookup(t *testing.T) {
	pg := newPager(t, 64)
	const n = 30000
	i := 0
	tr, err := BulkLoad(pg, func() (k, v []byte, ok bool, err error) {
		if i >= n {
			return nil, nil, false, nil
		}
		k, v = key(i), val(i)
		i++
		return k, v, true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.Len(); got != n {
		t.Fatalf("len=%d want %d", got, n)
	}
	for _, probe := range []int{0, 1, 4999, 17000, n - 1} {
		v, ok, err := tr.Get(key(probe))
		if err != nil || !ok || !bytes.Equal(v, val(probe)) {
			t.Fatalf("bulk get %d: ok=%v err=%v", probe, ok, err)
		}
	}
	// Bulk-loaded tree accepts further inserts.
	if err := tr.Insert([]byte("key-99999999"), []byte("late")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tr.Get([]byte("key-99999999"))
	if !ok || string(v) != "late" {
		t.Fatal("post-bulk insert lookup failed")
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	pg := newPager(t, 64)
	seq := [][]byte{[]byte("b"), []byte("a")}
	i := 0
	_, err := BulkLoad(pg, func() (k, v []byte, ok bool, err error) {
		if i >= len(seq) {
			return nil, nil, false, nil
		}
		k = seq[i]
		i++
		return k, nil, true, nil
	})
	if err == nil {
		t.Fatal("bulk load accepted unsorted keys")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	pg := newPager(t, 64)
	tr, err := BulkLoad(pg, func() (k, v []byte, ok bool, err error) {
		return nil, nil, false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := tr.Len(); n != 0 {
		t.Fatalf("empty bulk load has %d keys", n)
	}
}

func TestLargeValues(t *testing.T) {
	pg := newPager(t, 64)
	tr, _ := Create(pg)
	big := bytes.Repeat([]byte("x"), 3000)
	for i := 0; i < 20; i++ {
		if err := tr.Insert(key(i), big); err != nil {
			t.Fatalf("insert big %d: %v", i, err)
		}
	}
	v, ok, err := tr.Get(key(7))
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("big get: ok=%v err=%v len=%d", ok, err, len(v))
	}
	// A cell too large for a page must be rejected cleanly.
	tooBig := bytes.Repeat([]byte("y"), pg.PageSize())
	if err := tr.Insert([]byte("huge"), tooBig); err == nil {
		t.Fatal("oversized cell accepted")
	}
}

// TestQuickAgainstMap drives the tree with random operations and checks it
// against a map model (property-based differential test).
func TestQuickAgainstMap(t *testing.T) {
	pg := newPager(t, 64)
	tr, _ := Create(pg)
	model := map[string]string{}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(7))}
	op := func(k uint16, v uint16, del bool) bool {
		ks := fmt.Sprintf("k%05d", k%4096)
		vs := fmt.Sprintf("v%d", v)
		if del {
			delete(model, ks)
			if _, err := tr.Delete([]byte(ks)); err != nil {
				t.Fatalf("delete: %v", err)
			}
		} else {
			model[ks] = vs
			if err := tr.Insert([]byte(ks), []byte(vs)); err != nil {
				t.Fatalf("insert: %v", err)
			}
		}
		got, ok, err := tr.Get([]byte(ks))
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		want, wantOK := model[ks]
		return ok == wantOK && (!ok || string(got) == want)
	}
	if err := quick.Check(op, cfg); err != nil {
		t.Fatal(err)
	}
	// Final full comparison in order.
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	c, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for c.Valid() {
		if i >= len(keys) || string(c.Key()) != keys[i] {
			t.Fatalf("iteration mismatch at %d", i)
		}
		if string(c.Value()) != model[keys[i]] {
			t.Fatalf("value mismatch for %s", keys[i])
		}
		i++
		c.Next()
	}
	if i != len(keys) {
		t.Fatalf("iterated %d keys, model has %d", i, len(keys))
	}
}

// Package opt is the query optimizer: milestone 3's heuristic algebraic
// optimization (selection pushdown into scans, join creation from
// products, order-preserving join orders) and milestone 4's cost-based
// optimization (statistics-driven cardinality estimation, join-order
// enumeration, index-based access paths and index nested-loops joins, and
// the semijoin-style projection pushing of Example 6 / plan QP2).
package opt

// Strategy is a bit set of the paper's three answers to the ordering
// problem of Section 2 (milestone 3, "The Role of Order").
type Strategy uint8

// Order strategies.
const (
	// OrderPreserve is approach (c): order-preserving physical operators
	// with the join order constrained so the projection attributes form a
	// sorted prefix; duplicates are removed during projection in one pass.
	OrderPreserve Strategy = 1 << iota
	// OrderSemijoin is approach (b): projections are pushed below joins
	// (semijoin-style, plan QP2 of Example 6), which lets condition
	// relations join early and still keeps the prefix sorted.
	OrderSemijoin
	// OrderSort is approach (a): evaluate in any order (even with
	// non-order-preserving operators) and restore document order with an
	// external sort before the final projection.
	OrderSort
)

// StructEmit selects which emission orders the planner may choose for the
// stack-based structural merge join. The operator implements two: the
// descendant-ordered Stack-Tree-Desc merge (streaming, but ancestor-first
// vartuples need an external repair sort above it) and the
// ancestor-ordered Stack-Tree-Anc merge (order-preserving for
// ancestor-first vartuples, at the price of buffering the non-bottom
// share of the output in per-stack-entry lists).
type StructEmit uint8

// Structural emission modes.
const (
	// EmitAny enumerates both emission orders as separate candidates and
	// lets the finalize-level costs (repair sort vs peak output list)
	// arbitrate. The zero value, and the M4 default.
	EmitAny StructEmit = iota
	// EmitDesc restricts the planner to the descendant-ordered variant
	// (the pre-Stack-Tree-Anc behavior; the sort-repaired baseline of
	// the ablation benchmarks).
	EmitDesc
	// EmitAnc restricts the planner to the ancestor-ordered variant.
	EmitAnc
)

// StatsMode selects the quality of the statistics the cost model sees.
type StatsMode uint8

// Statistics modes.
const (
	// StatsAccurate uses the per-label cardinalities and average depth
	// collected at load time.
	StatsAccurate StatsMode = iota
	// StatsUniform assumes every label is equally frequent (total element
	// count divided by the number of distinct labels) — the "unlucky
	// estimates" that sent the paper's engine 2 into a 2400-second
	// timeout on efficiency test 5.
	StatsUniform
	// StatsNone uses fixed default selectivities (no statistics at all).
	StatsNone
)

// Config controls which optimizations the planner may use; the presets
// below correspond to the course milestones and the engine configurations
// compared in Figure 7.
type Config struct {
	// CostBased enables join-order enumeration by estimated cost
	// (milestone 4). When false, the syntactic order is kept: vartuple
	// relations first, in order, then condition relations.
	CostBased bool
	// Strategies is the set of permitted order strategies.
	Strategies Strategy
	// UseLabelIndex / UseParentIndex enable the milestone 4 secondary
	// indexes as access paths.
	UseLabelIndex  bool
	UseParentIndex bool
	// UseINL enables index nested-loops joins.
	UseINL bool
	// UseBNL enables block nested-loops joins (only useful together with
	// OrderSort, since BNL destroys document order).
	UseBNL bool
	// UseStructural enables the stack-based structural merge join for
	// descendant and child predicates (one O(n+m) pass over two
	// document-ordered streams instead of nested loops or per-row index
	// probes). Off for the milestone presets that predate it; disable on
	// M4 for ablation.
	UseStructural bool
	// StructuralEmit restricts which structural-join emission orders the
	// planner may enumerate (meaningful only with UseStructural).
	StructuralEmit StructEmit
	// UseTwig enables the holistic twig join: when the structural
	// predicates of a conjunction assemble into one connected twig over
	// three or more relations, the whole path pattern is evaluated in a
	// single multi-stream TwigStack pass instead of a chain of binary
	// joins, bounding intermediates by the twig's path solutions. Off for
	// the milestone presets that predate it; disable on M4 for ablation.
	UseTwig bool
	// UsePartialTwig lets the planner adopt a twig covering a *subset* of
	// a conjunction's relations as a leading sub-plan: the maximal
	// connected subtwig runs as one holistic TwigJoin "base relation" and
	// the uncovered relations (value equi-joins, disconnected components)
	// join on top via the ordinary operator families. Only meaningful
	// together with UseTwig; off for ablation (the all-or-nothing twig of
	// the original M4).
	UsePartialTwig bool
	// TwigRemainderINL lets the joins ABOVE a partial-twig seed keep
	// interval-bounded index nested-loops candidates even when UseINL is
	// off — the forced-twig family's escape hatch: uncovered remainder
	// relations (value-join tails, disconnected components) that a
	// parameterized access path could serve no longer fall back to
	// full-scan NL inners, so the forced mode stays representative on
	// value-heavy shapes. Unparameterized inners are unaffected, and so
	// is every join below or inside the twig.
	TwigRemainderINL bool
	// Stats selects the statistics quality for the cost model.
	Stats StatsMode
	// MaxEnumRels caps exhaustive join-order enumeration; beyond it the
	// planner falls back to the syntactic order (guards against
	// pathological queries; 8! = 40320 orders is the default cap).
	MaxEnumRels int
	// SpoolBudget is the operator memory budget in bytes the cost model
	// assumes for materialized join inners: inners that fit are re-read
	// at CPU cost, spilled inners at page cost. 0 uses the recfile
	// default (4 MiB).
	SpoolBudget int
	// DOP is the degree of intra-query parallelism offered to the planner
	// (0 or 1 = serial). Parallelism is priced like any other physical
	// choice: an eligible leaf scan is wrapped in an exchange only when
	// the divided scan/filter CPU beats the worker startup and batch
	// transfer overhead, so small queries stay serial regardless of DOP.
	DOP int
	// ExchangeAll wraps every eligible leaf scan in an exchange with tiny
	// morsels regardless of cost — a testing hook the fuzz and robustness
	// harnesses use to force the parallel machinery onto small documents.
	ExchangeAll bool
}

// M3 returns the milestone 3 configuration: heuristic optimization only —
// selections pushed into primary-tree scans, products turned into
// order-preserving nested-loops joins in syntactic order, one-pass
// duplicate-eliminating projection. No secondary indexes, no statistics.
func M3() Config {
	return Config{
		CostBased:  false,
		Strategies: OrderPreserve,
		Stats:      StatsNone,
	}
}

// M4 returns the milestone 4 configuration: cost-based join ordering with
// accurate statistics, all index access paths, INL joins, and all three
// order strategies to choose from.
func M4() Config {
	return Config{
		CostBased:        true,
		Strategies:       OrderPreserve | OrderSemijoin | OrderSort,
		UseLabelIndex:    true,
		UseParentIndex:   true,
		UseINL:           true,
		UseBNL:           true,
		UseStructural:    true,
		StructuralEmit:   EmitAny,
		UseTwig:          true,
		UsePartialTwig:   true,
		TwigRemainderINL: true,
		Stats:            StatsAccurate,
		MaxEnumRels:      8,
	}
}

// M4BadStats returns the model of the paper's engine 2: a milestone 4
// engine that — like "most of the engines" in the course — generates
// order-preserving plans, and whose uniform-label statistics are the
// "unlucky estimates" of Section 4. With every label estimated equally
// frequent, the estimates hide the payoff of breaking the syntactic join
// order (the sort-based reordering full M4 takes), so the very
// unselective join stays at the bottom of the plan on efficiency test 5
// while every other test still produces excellent plans.
func M4BadStats() Config {
	cfg := M4()
	cfg.Stats = StatsUniform
	cfg.Strategies = OrderPreserve | OrderSemijoin
	cfg.UseBNL = false
	// Engine 2 predates the structural merge and twig joins; keeping them
	// off also keeps the Figure 7 gap attributable to statistics quality.
	cfg.UseStructural = false
	cfg.UseTwig = false
	cfg.UsePartialTwig = false
	return cfg
}

// NaiveTPM returns the "mirror the query structure" configuration (the
// QP0 shape of Example 6): no merging benefit is taken from indexes or
// reordering — full scans and nested loops in syntactic order.
func NaiveTPM() Config {
	return Config{
		CostBased:  false,
		Strategies: OrderPreserve,
		Stats:      StatsNone,
	}
}

// ForceJoin returns the M4 configuration restricted to one join operator
// family — the shared recipe behind the ablation benchmark, the xqbench
// -join flag and the equivalence suite:
//
//	twig            holistic twig join forced: every binary competitor
//	                off, so any conjunction whose predicates assemble
//	                into a twig runs TwigJoin; with partial-twig adoption
//	                (UsePartialTwig, inherited on) a conjunction whose
//	                predicates cover only a subset runs the subtwig with
//	                the remainder joined on top — interval-bounded INL
//	                where a parameterized access exists
//	                (TwigRemainderINL), plain NL otherwise
//	structural      binary merge join forced (twig and loop competitors
//	                off), restricted to the descendant-ordered
//	                Stack-Tree-Desc emission — ancestor-first vartuples
//	                pay the repair sort, making this the baseline the
//	                anc-ordered variant is measured against
//	structural-anc  binary merge join forced, restricted to the
//	                ancestor-ordered Stack-Tree-Anc emission
//	inl             structural and twig off; index nested-loops take over
//	nl              loop joins only, no blocks, no indexes into the join
//	bnl             loop joins with block nesting allowed (the planner
//	                may still pick plain NL for joins where it is
//	                cheaper)
//
// ok is false for unknown names (including "auto").
func ForceJoin(family string) (cfg Config, ok bool) {
	cfg = M4()
	switch family {
	case "twig":
		cfg.UseStructural = false
		cfg.UseINL = false
		cfg.UseBNL = false
	case "structural":
		cfg.UseTwig = false
		cfg.UseINL = false
		cfg.UseBNL = false
		cfg.StructuralEmit = EmitDesc
	case "structural-anc":
		cfg.UseTwig = false
		cfg.UseINL = false
		cfg.UseBNL = false
		cfg.StructuralEmit = EmitAnc
	case "inl":
		cfg.UseTwig = false
		cfg.UseStructural = false
	case "nl":
		cfg.UseTwig = false
		cfg.UseStructural = false
		cfg.UseINL = false
		cfg.UseBNL = false
	case "bnl":
		cfg.UseTwig = false
		cfg.UseStructural = false
		cfg.UseINL = false
	default:
		return cfg, false
	}
	return cfg, true
}

func (c Config) allow(s Strategy) bool { return c.Strategies&s != 0 }

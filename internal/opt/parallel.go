// Intra-query parallelism as a physical choice. After the join-order
// auction picks a plan, a post-pass walks it and wraps each eligible leaf
// scan in an exchange when the divided scan/filter CPU beats the worker
// startup and batch-transfer overhead at the configured DOP. The pass runs
// below every order-sensitive operator unchanged: the exchange's ordered
// gather reproduces the serial scan's document-ordered stream, so the
// structural, twig, and projection order invariants are untouched.

package opt

import "xqdb/internal/exec"

// parallelize applies the DOP post-pass to a chosen plan; with DOP < 2 it
// is the identity.
func (p *Planner) parallelize(n exec.PlanNode) exec.PlanNode {
	if p.cfg.DOP < 2 || n == nil {
		return n
	}
	return p.parallelizeNode(n)
}

func (p *Planner) parallelizeNode(n exec.PlanNode) exec.PlanNode {
	switch t := n.(type) {
	case *exec.Scan:
		return p.maybeExchange(t)
	case *exec.Filter:
		t.Child = p.parallelizeNode(t.Child)
	case *exec.Project:
		t.Child = p.parallelizeNode(t.Child)
	case *exec.Sort:
		t.Child = p.parallelizeNode(t.Child)
	case *exec.NLJoin:
		t.Left = p.parallelizeNode(t.Left)
		t.Right = p.parallelizeNode(t.Right)
	case *exec.BNLJoin:
		t.Left = p.parallelizeNode(t.Left)
		t.Right = p.parallelizeNode(t.Right)
	case *exec.INLJoin:
		// The inner re-resolves its access bounds per outer row; only the
		// outer side can run under an exchange.
		t.Left = p.parallelizeNode(t.Left)
	case *exec.StructuralJoin:
		t.Left = p.parallelizeNode(t.Left)
		t.Right = p.parallelizeNode(t.Right)
	case *exec.TwigJoin:
		for i, s := range t.Streams {
			t.Streams[i] = p.parallelizeNode(s)
		}
	}
	return n
}

// maybeExchange wraps an eligible scan when parallel execution is
// estimated cheaper than serial (or unconditionally under ExchangeAll,
// with tiny morsels, for the fuzz/robustness harnesses).
func (p *Planner) maybeExchange(s *exec.Scan) exec.PlanNode {
	if !exec.ExchangeEligible(s) {
		return s
	}
	ex := exec.NewExchange(s, p.cfg.DOP)
	if p.cfg.ExchangeAll {
		ex.MorselRows = 1
		ex.Est_ = s.Est_
		return ex
	}
	parallel := p.est.ExchangeCost(s.Est_.Cost, s.Est_.Rows, p.cfg.DOP)
	if parallel >= s.Est_.Cost {
		return s
	}
	ex.Est_ = exec.Est{Rows: s.Est_.Rows, Cost: parallel}
	return ex
}

package opt

import (
	"fmt"
	"math"

	"xqdb/internal/exec"
	"xqdb/internal/recfile"
	"xqdb/internal/store"
	"xqdb/internal/tpm"
	"xqdb/internal/xasr"
)

// spoolBytesPerRow approximates the memory footprint of one spooled row.
const spoolBytesPerRow = 40

// Planner compiles TPM plans into executable physical plans for one store.
type Planner struct {
	st  *store.Store
	cfg Config
	est *Estimator
}

// New returns a planner using the given configuration.
func New(st *store.Store, cfg Config) *Planner {
	if cfg.MaxEnumRels == 0 {
		cfg.MaxEnumRels = 8
	}
	return &Planner{st: st, cfg: cfg, est: NewEstimator(st, cfg.Stats)}
}

// Estimator exposes the planner's estimator (for tests and EXPLAIN).
func (p *Planner) Estimator() *Estimator { return p.est }

// spoolBudget is the operator memory budget the cost model prices
// buffering against (SpoolBudget, defaulting to the executor's default).
func (p *Planner) spoolBudget() float64 {
	if p.cfg.SpoolBudget > 0 {
		return float64(p.cfg.SpoolBudget)
	}
	return float64(recfile.DefaultSortBudget)
}

// Plan compiles a TPM plan into an executable plan, choosing a physical
// operator tree for every relfor.
func (p *Planner) Plan(t tpm.Plan) (exec.XPlan, error) {
	switch t := t.(type) {
	case tpm.Empty:
		return exec.XEmpty{}, nil
	case *tpm.Text:
		return &exec.XText{Content: t.Content}, nil
	case *tpm.Emit:
		return &exec.XEmit{Var: t.Var}, nil
	case *tpm.Constr:
		body, err := p.Plan(t.Body)
		if err != nil {
			return nil, err
		}
		return &exec.XConstr{Label: t.Label, Body: body}, nil
	case *tpm.Seq:
		items := make([]exec.XPlan, len(t.Items))
		for i, it := range t.Items {
			x, err := p.Plan(it)
			if err != nil {
				return nil, err
			}
			items[i] = x
		}
		return &exec.XSeq{Items: items}, nil
	case *tpm.RuntimeIf:
		then, err := p.Plan(t.Then)
		if err != nil {
			return nil, err
		}
		return &exec.XIf{Cond: t.Cond, Then: then}, nil
	case *tpm.RelFor:
		root, err := p.PlanPSX(t.Alg)
		if err != nil {
			return nil, err
		}
		root = p.parallelize(root)
		body, err := p.Plan(t.Body)
		if err != nil {
			return nil, err
		}
		return &exec.XRelFor{Vars: t.Vars, Root: root, Body: body}, nil
	default:
		return nil, fmt.Errorf("opt: unknown plan node %T", t)
	}
}

// psxInfo is the precomputed analysis of one PSX expression.
type psxInfo struct {
	bindRels []string // vartuple relations, in vartuple order
	local    map[string][]tpm.Cmp
	cross    []tpm.Cmp
	// structural are the structural join predicates recovered from the
	// cross conditions (descendant interval pairs, parent/child
	// equalities), the units the structural merge join can take over.
	structural []tpm.StructuralPred
	// filteredRows estimates each relation after local selections.
	filteredRows map[string]float64
}

func (p *Planner) analyze(psx *tpm.PSX) *psxInfo {
	info := &psxInfo{
		local:        map[string][]tpm.Cmp{},
		filteredRows: map[string]float64{},
	}
	for _, b := range psx.Bind {
		info.bindRels = append(info.bindRels, b.Rel)
	}
	for _, c := range psx.Conds {
		rels := c.Rels()
		switch len(rels) {
		case 1:
			info.local[rels[0]] = append(info.local[rels[0]], c)
		case 2:
			info.cross = append(info.cross, c)
		default:
			// Constant conditions cannot arise from the rewriting; keep
			// them on the first relation defensively.
			if len(psx.Rels) > 0 {
				info.local[psx.Rels[0]] = append(info.local[psx.Rels[0]], c)
			}
		}
	}
	info.structural = tpm.FindStructural(info.cross)
	for _, r := range psx.Rels {
		info.filteredRows[r] = p.est.Relation() * p.est.PairSelectivity(info.local[r])
	}
	return info
}

// built is a candidate physical plan under construction.
type built struct {
	node     exec.PlanNode
	orderSeq []string // aliases whose ins the output is sorted by (nil = unordered)
	present  map[string]bool
	rows     float64
	cost     float64
	// rowsBefore remembers, per joined alias, the row estimate before its
	// join, for the semijoin-projection row estimate.
	rowsBefore map[string]float64
	applied    map[string]bool // cond strings already applied
	usedEager  bool
}

func (b *built) clone() *built {
	nb := *b
	nb.orderSeq = append([]string(nil), b.orderSeq...)
	nb.present = make(map[string]bool, len(b.present))
	for k, v := range b.present {
		nb.present[k] = v
	}
	nb.rowsBefore = make(map[string]float64, len(b.rowsBefore))
	for k, v := range b.rowsBefore {
		nb.rowsBefore[k] = v
	}
	nb.applied = make(map[string]bool, len(b.applied))
	for k, v := range b.applied {
		nb.applied[k] = v
	}
	return &nb
}

// PlanPSX chooses a physical plan for one PSX expression. For cost-based
// configurations it enumerates join orders (vartuple relations constrained
// to vartuple order unless a final sort is permitted); otherwise it keeps
// the syntactic order.
func (p *Planner) PlanPSX(psx *tpm.PSX) (exec.PlanNode, error) {
	if len(psx.Rels) == 0 {
		return nil, fmt.Errorf("opt: PSX without relations: %s", psx)
	}
	info := p.analyze(psx)

	if !p.cfg.CostBased || len(psx.Rels) > p.cfg.MaxEnumRels {
		order := syntacticOrder(psx, info)
		// The join order is fixed, but cost-based configurations still
		// arbitrate the operator toggles (structural emission order, BNL)
		// over it — an over-cap ancestor-first chain keeps the streaming
		// anc-ordered plan it would have found under full enumeration.
		tos := []joinToggles{{structural: p.cfg.UseStructural,
			structAnc: p.cfg.StructuralEmit == EmitAnc}}
		if p.cfg.CostBased {
			tos = p.joinOptions(info)
		}
		var node exec.PlanNode
		cost := math.Inf(1)
		for _, t := range tos {
			b, err := p.buildOrder(info, order, t)
			if err != nil {
				return nil, err
			}
			n, c, err := p.finalize(psx, info, b)
			if err != nil {
				return nil, err
			}
			if n != nil && (node == nil || c < cost) {
				node, cost = n, c
			}
		}
		// Past the enumeration cap the holistic twig still applies — its
		// plan shape does not depend on a join order, so it sidesteps the
		// factorial search entirely. Likewise a partial twig with the
		// uncovered relations joined in syntactic order on top.
		if p.cfg.CostBased {
			if tn, tc, ok := p.twigCandidate(psx, info); ok && (node == nil || tc < cost) {
				node, cost = tn, tc
			}
			if seed := p.partialTwigSeed(psx, info); seed != nil {
				for _, t := range tos {
					pn, pc, err := p.buildOnSeed(psx, info, seed, remainder(order, seed), t)
					if err == nil && pn != nil && (node == nil || pc < cost) {
						node, cost = pn, pc
					}
				}
			}
		}
		return node, nil
	}

	var best exec.PlanNode
	bestCost := math.Inf(1)
	// The holistic twig candidate (one plan regardless of join order)
	// opens the auction; binary pipelines must beat it on estimated cost.
	if tn, tc, ok := p.twigCandidate(psx, info); ok {
		best, bestCost = tn, tc
	}
	perms := p.enumerateOrders(psx, info)
	opts := p.joinOptions(info)
	for _, order := range perms {
		for _, t := range opts {
			b, err := p.buildOrder(info, order, t)
			if err != nil {
				return nil, err
			}
			if b == nil {
				continue
			}
			node, cost, err := p.finalize(psx, info, b)
			if err != nil || node == nil {
				continue
			}
			if cost < bestCost {
				bestCost = cost
				best = node
			}
		}
	}
	// Partial-twig adoption: the maximal connected subtwig enters the
	// auction as a composite leading "base relation", with every order of
	// the uncovered relations joined on top through the ordinary operator
	// families. The mixed plans compete on estimated cost like any other.
	if seed := p.partialTwigSeed(psx, info); seed != nil {
		for _, order := range p.enumerateRemainder(info, remainder(psx.Rels, seed)) {
			for _, t := range opts {
				node, cost, err := p.buildOnSeed(psx, info, seed, order, t)
				if err != nil || node == nil {
					continue
				}
				if cost < bestCost {
					bestCost = cost
					best = node
				}
			}
		}
	}
	if best == nil {
		// No enumerated order produced a valid plan (should not happen —
		// the syntactic order is always valid); fall back.
		order := syntacticOrder(psx, info)
		b, err := p.buildOrder(info, order, joinToggles{})
		if err != nil {
			return nil, err
		}
		node, _, err := p.finalize(psx, info, b)
		return node, err
	}
	return best, nil
}

// joinToggles selects which optional operator families one buildOrder run
// may use. Enumerating the toggles (instead of deciding greedily inside
// joinNext) lets finalize-level costs arbitrate: a per-join win for a
// non-order-preserving operator can lose the plan comparison once the
// repair sort is priced in — and, symmetrically, the anc-ordered
// structural emission can win a plan comparison its per-join buffering
// cost loses, by dropping that sort entirely.
type joinToggles struct {
	bnl        bool
	structural bool
	// structAnc selects the ancestor-ordered (Stack-Tree-Anc) emission
	// for the structural joins of this run; with it off they emit in
	// descendant order (Stack-Tree-Desc).
	structAnc bool
	// remainderINL lets joinNext keep interval-bounded INL candidates
	// even when UseINL is off — set only for the joins above a
	// partial-twig seed under Config.TwigRemainderINL.
	remainderINL bool
}

func (p *Planner) joinOptions(info *psxInfo) []joinToggles {
	// The structural toggles only multiply the enumeration when the
	// expression actually contains structural predicates — plain queries
	// must not pay double planning time.
	var structOpts []joinToggles
	if p.cfg.UseStructural && len(info.structural) > 0 {
		if p.cfg.StructuralEmit != EmitAnc {
			structOpts = append(structOpts, joinToggles{structural: true})
		}
		if p.cfg.StructuralEmit != EmitDesc {
			structOpts = append(structOpts, joinToggles{structural: true, structAnc: true})
		}
	}
	opts := []joinToggles{{}}
	opts = append(opts, structOpts...)
	if p.cfg.UseBNL && p.cfg.allow(OrderSort) {
		opts = append(opts, joinToggles{bnl: true})
		for _, s := range structOpts {
			s.bnl = true
			opts = append(opts, s)
		}
	}
	return opts
}

// syntacticOrder mirrors the query structure: vartuple relations first in
// vartuple order, then condition relations in their syntactic order.
func syntacticOrder(psx *tpm.PSX, info *psxInfo) []string {
	seen := map[string]bool{}
	var order []string
	for _, r := range info.bindRels {
		if !seen[r] {
			seen[r] = true
			order = append(order, r)
		}
	}
	for _, r := range psx.Rels {
		if !seen[r] {
			seen[r] = true
			order = append(order, r)
		}
	}
	return order
}

// enumerateOrders yields the join orders to cost. Vartuple relations must
// stay in vartuple order unless OrderSort can repair arbitrary orders.
func (p *Planner) enumerateOrders(psx *tpm.PSX, info *psxInfo) [][]string {
	rels := psx.Rels
	bindPos := map[string]int{}
	for i, r := range info.bindRels {
		bindPos[r] = i
	}
	freeOrder := p.cfg.allow(OrderSort)
	var out [][]string
	used := make([]bool, len(rels))
	cur := make([]string, 0, len(rels))
	var rec func(nextBind int)
	rec = func(nextBind int) {
		if len(cur) == len(rels) {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for i, r := range rels {
			if used[i] {
				continue
			}
			nb := nextBind
			if pos, isBind := bindPos[r]; isBind {
				if !freeOrder && pos != nextBind {
					continue // vartuple order violated
				}
				if pos == nextBind {
					nb = nextBind + 1
				}
			}
			used[i] = true
			cur = append(cur, r)
			rec(nb)
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec(0)
	return out
}

// buildOrder constructs the physical plan for one join order.
func (p *Planner) buildOrder(info *psxInfo, order []string, t joinToggles) (*built, error) {
	first := order[0]
	lead := p.bestAccess(first, info.local[first], nil)
	scan := exec.NewScan(first, lead.access, lead.residual)
	b := &built{
		node:       scan,
		orderSeq:   []string{first},
		present:    map[string]bool{first: true},
		rows:       info.filteredRows[first],
		cost:       lead.cost,
		rowsBefore: map[string]float64{},
		applied:    map[string]bool{},
	}
	for _, c := range info.local[first] {
		b.applied[c.String()] = true
	}
	scan.Est_ = exec.Est{Rows: b.rows, Cost: b.cost}

	for _, r := range order[1:] {
		if err := p.joinNext(info, b, r, t); err != nil {
			return nil, err
		}
		p.eagerProject(info, b)
	}
	return b, nil
}

// applicableCross returns the cross conditions joining r to the present
// prefix.
func applicableCross(info *psxInfo, b *built, r string) []tpm.Cmp {
	var out []tpm.Cmp
	for _, c := range info.cross {
		if b.applied[c.String()] {
			continue
		}
		rels := c.Rels()
		if len(rels) != 2 {
			continue
		}
		var other string
		switch {
		case rels[0] == r:
			other = rels[1]
		case rels[1] == r:
			other = rels[0]
		default:
			continue
		}
		if b.present[other] {
			out = append(out, c)
		}
	}
	return out
}

// crossSelectivity estimates the combined selectivity of the cross
// conditions joining a relation to the prefix. Descendant interval pairs
// are recognized and estimated together from the per-label subtree
// statistics (DescendantPairSel) — per-condition multiplication wildly
// underestimates pair counts on deep documents; remaining conditions
// multiply independently as before.
func (p *Planner) crossSelectivity(info *psxInfo, cross []tpm.Cmp) float64 {
	if len(info.structural) == 0 {
		// Plain queries keep the zero-allocation multiply path (without
		// structural predicates no parent labels are recoverable, so the
		// text-equi-join refinement cannot apply either).
		sel := 1.0
		for _, c := range cross {
			sel *= p.est.condSelectivity(c)
		}
		return sel
	}
	inCross := map[string]bool{}
	for _, c := range cross {
		inCross[c.String()] = true
	}
	covered := map[string]bool{}
	sel := 1.0
	for i := range info.structural {
		sp := &info.structural[i]
		if sp.Axis != tpm.AxisDescendant {
			continue
		}
		all := true
		for _, c := range sp.Conds {
			if !inCross[c.String()] || covered[c.String()] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		label, ok := p.aliasLabel(info, sp.Anc)
		sel *= p.est.DescendantPairSel(label, ok)
		for _, c := range sp.Conds {
			covered[c.String()] = true
		}
	}
	for _, c := range cross {
		if !covered[c.String()] {
			sel *= p.residCondSel(info, c)
		}
	}
	return sel
}

// residCondSel estimates one residual cross condition. Text-value
// equi-joins whose operands' parent element labels are recoverable from
// child-axis structural predicates (the $x/author/text() shape) are
// priced from the per-label distinct-text-value statistic instead of the
// near-unique 1/texts guess; everything else keeps condSelectivity.
func (p *Planner) residCondSel(info *psxInfo, c tpm.Cmp) float64 {
	if c.Op == tpm.CmpEq && c.Left.Kind == tpm.OpAttr && c.Right.Kind == tpm.OpAttr &&
		c.Left.Attr.Col == tpm.ColValue && c.Right.Attr.Col == tpm.ColValue {
		ll, lok := p.textParentLabel(info, c.Left.Attr.Rel)
		rl, rok := p.textParentLabel(info, c.Right.Attr.Rel)
		if lok || rok {
			return p.est.TextEquiJoinSel(ll, lok, rl, rok)
		}
	}
	return p.est.condSelectivity(c)
}

// textParentLabel recovers the element label a text-typed alias hangs
// under: a child-axis structural predicate names its parent alias, whose
// local conditions pin the label. ok is false for non-text aliases and
// when no labeled parent is found — the distinct-text statistic counts
// direct text children, so looser ancestors do not qualify.
func (p *Planner) textParentLabel(info *psxInfo, alias string) (string, bool) {
	parts := classify(alias, info.local[alias], nil)
	if parts.typeEq == nil || parts.typeEq.norm.Right.Type != xasr.TypeText {
		return "", false
	}
	for i := range info.structural {
		sp := &info.structural[i]
		if sp.Axis != tpm.AxisChild || sp.Desc != alias {
			continue
		}
		if label, ok := p.aliasLabel(info, sp.Anc); ok {
			return label, true
		}
	}
	return "", false
}

// aliasLabel returns the element label an alias is filtered to by its
// local conditions, if any.
func (p *Planner) aliasLabel(info *psxInfo, alias string) (string, bool) {
	parts := classify(alias, info.local[alias], nil)
	if parts.typeEq != nil && parts.valueEq != nil && parts.typeEq.norm.Right.Type == xasr.TypeElem {
		return parts.valueEq.norm.Right.Str, true
	}
	return "", false
}

// structuralCandidate returns a structural predicate joining r to the
// current prefix that the merge join can run, plus the cross conditions
// left as residual per-pair filters. Requirements: the prefix stream must
// be sorted by the partner alias's in-label (true exactly when that alias
// leads orderSeq), the predicate's conditions must still be unapplied,
// and adopting an r whose output would lead with r's document order —
// the descendant side under descendant emission, the ancestor side under
// ancestor emission — must leave the plan finalizable (a final sort can
// repair it, or the vartuple relations happen to lead with r).
func (p *Planner) structuralCandidate(info *psxInfo, b *built, r string, cross []tpm.Cmp, ancEmit bool) (*tpm.StructuralPred, []tpm.Cmp) {
	if !p.cfg.UseStructural || b.orderSeq == nil {
		return nil, nil
	}
	inCross := map[string]bool{}
	for _, c := range cross {
		inCross[c.String()] = true
	}
	for i := range info.structural {
		sp := &info.structural[i]
		var other string
		switch {
		case sp.Anc == r && b.present[sp.Desc]:
			other = sp.Desc
		case sp.Desc == r && b.present[sp.Anc]:
			other = sp.Anc
		default:
			continue
		}
		if b.orderSeq[0] != other {
			continue
		}
		subsumed := true
		for _, c := range sp.Conds {
			if !inCross[c.String()] {
				subsumed = false
				break
			}
		}
		if !subsumed {
			continue
		}
		rLeads := (sp.Desc == r) != ancEmit
		if rLeads && !p.cfg.allow(OrderSort) {
			seq := append([]string{r}, b.orderSeq...)
			if !isPrefix(info.bindRels, seq) {
				continue
			}
		}
		sub := map[string]bool{}
		for _, c := range sp.Conds {
			sub[c.String()] = true
		}
		var resid []tpm.Cmp
		for _, c := range cross {
			if !sub[c.String()] {
				resid = append(resid, c)
			}
		}
		return sp, resid
	}
	return nil, nil
}

// twigStreams builds one best-access, document-ordered scan per twig node
// with local selections pushed down, accumulating the stream costs — the
// construction shared by the full and partial twig candidates.
func (p *Planner) twigStreams(info *psxInfo, tw *tpm.Twig) (streams []exec.PlanNode, streamCost, streamRows, rowsProduct float64) {
	streams = make([]exec.PlanNode, len(tw.Nodes))
	rowsProduct = 1.0
	for i, n := range tw.Nodes {
		ac := p.bestAccess(n.Alias, info.local[n.Alias], nil)
		rows := info.filteredRows[n.Alias]
		scan := exec.NewScan(n.Alias, ac.access, ac.residual)
		scan.Est_ = exec.Est{Rows: rows, Cost: ac.cost}
		streams[i] = scan
		streamCost += ac.cost
		streamRows += rows
		rowsProduct *= rows
	}
	return streams, streamCost, streamRows, rowsProduct
}

// residualConds returns the cross conditions the twig edges do not
// subsume: the per-row filters the TwigJoin evaluates on merged rows.
func residualConds(tw *tpm.Twig, cross []tpm.Cmp) []tpm.Cmp {
	subsumed := make(map[string]bool, len(tw.Conds))
	for _, c := range tw.Conds {
		subsumed[c.String()] = true
	}
	var resid []tpm.Cmp
	for _, c := range cross {
		if !subsumed[c.String()] {
			resid = append(resid, c)
		}
	}
	return resid
}

// twigCandidate builds the holistic twig-join plan for a PSX whose
// structural predicates assemble into one connected twig covering every
// relation. Each twig node gets its best standalone (document-ordered)
// access path with local selections pushed down; cross conditions not
// subsumed by the twig edges stay as residual per-row filters on the
// join. The operator emits in vartuple order, so only the deduplicating
// projection of the order-preserving finalize branch goes on top — no
// repair sort. ok is false when the twig machinery does not apply (knob
// off, fewer than three relations — the binary merge join owns those —
// a nullary pass-fail check, or disconnected predicates).
func (p *Planner) twigCandidate(psx *tpm.PSX, info *psxInfo) (exec.PlanNode, float64, bool) {
	if !p.cfg.UseTwig || len(info.bindRels) == 0 || len(psx.Rels) < 3 {
		return nil, 0, false
	}
	tw, ok := tpm.AssembleTwig(info.structural, psx.Rels)
	if !ok {
		return nil, 0, false
	}
	streams, streamCost, streamRows, rowsProduct := p.twigStreams(info, tw)
	outRows := rowsProduct * p.crossSelectivity(info, info.cross)
	if outRows < 0.01 {
		outRows = 0.01
	}
	cost := TwigJoinCost(streamCost, streamRows, outRows, outRows) +
		SpillSurcharge(outRows, spoolBytesPerRow*float64(len(tw.Nodes)), p.spoolBudget())
	join := exec.NewTwigJoin(streams, *tw, residualConds(tw, info.cross), info.bindRels)
	join.Est_ = exec.Est{Rows: outRows, Cost: cost}
	proj := exec.NewProject(join, info.bindRels, true)
	cost += outRows * cpuPerTuple
	proj.Est_ = exec.Est{Rows: outRows, Cost: cost}
	return proj, cost, true
}

// partialTwigSeed builds the leading sub-plan for partial-twig adoption: a
// holistic twig join over the maximal connected subtwig of the
// conjunction's structural predicates, acting as a composite "base
// relation" the remaining relations join on top of. The twig emits sorted
// by the in-labels of the covered vartuple relations (in vartuple order),
// so orderSeq propagates into the binary machinery exactly as for a
// leading scan. Cross conditions entirely inside the covered set are
// subsumed by the twig edges or evaluated as residual filters on the
// operator; conditions reaching an uncovered relation stay unapplied for
// the joins above. nil when the machinery does not apply (knobs off, a
// nullary pass-fail check, or no subtwig of three or more nodes — smaller
// patterns belong to the binary merge join).
func (p *Planner) partialTwigSeed(psx *tpm.PSX, info *psxInfo) *built {
	if !p.cfg.UseTwig || !p.cfg.UsePartialTwig || len(info.bindRels) == 0 || len(psx.Rels) < 3 {
		return nil
	}
	tw, _, uncovered, ok := tpm.AssembleMaxTwig(info.structural, psx.Rels)
	if !ok || len(tw.Nodes) < 3 {
		return nil
	}
	if len(uncovered) == 0 {
		if _, full := tpm.AssembleTwig(info.structural, psx.Rels); full {
			// twigCandidate already enters exactly this plan into the
			// auction; only DAG-ish shapes AssembleTwig rejects (residual
			// second-parent edges) are worth seeding at full coverage.
			return nil
		}
	}
	covered := make(map[string]bool, len(tw.Nodes))
	for _, n := range tw.Nodes {
		covered[n.Alias] = true
	}
	streams, streamCost, streamRows, rowsProduct := p.twigStreams(info, tw)
	applied := map[string]bool{}
	for _, n := range tw.Nodes {
		for _, c := range info.local[n.Alias] {
			applied[c.String()] = true
		}
	}
	// Cross conditions entirely inside the covered set: subsumed by the
	// twig edges, or residual per-row filters on the operator.
	var intra []tpm.Cmp
	for _, c := range info.cross {
		rels := c.Rels()
		if len(rels) == 2 && covered[rels[0]] && covered[rels[1]] {
			intra = append(intra, c)
		}
	}
	outRows := rowsProduct * p.crossSelectivity(info, intra)
	if outRows < 0.01 {
		outRows = 0.01
	}
	for _, c := range intra {
		applied[c.String()] = true
	}
	// The emission order: covered vartuple relations in vartuple order —
	// the prefix the finalize contract needs.
	var outOrder []string
	outSet := map[string]bool{}
	for _, r := range info.bindRels {
		if covered[r] {
			outOrder = append(outOrder, r)
			outSet[r] = true
		}
	}
	join := exec.NewTwigJoin(streams, *tw, residualConds(tw, intra), outOrder)
	cost := TwigJoinCost(streamCost, streamRows, outRows, outRows) +
		SpillSurcharge(outRows, spoolBytesPerRow*float64(len(tw.Nodes)), p.spoolBudget())
	join.Est_ = exec.Est{Rows: outRows, Cost: cost}
	b := &built{
		node:       join,
		orderSeq:   outOrder, // nil when no vartuple relation is covered
		present:    covered,
		rows:       outRows,
		cost:       cost,
		rowsBefore: map[string]float64{},
		applied:    applied,
	}

	// The adjacent-dedup machinery above (eager projections, the
	// order-preserving finalize) relies on the stream being sorted by
	// every alias it carries. A covered existential (non-vartuple) node
	// breaks that: the twig emits sorted by outOrder only, with the
	// existential's matches varying inside ties, so duplicate vartuples
	// would come back non-adjacent after a join above. Project such nodes
	// away right here — the twig's emission order makes the one-pass
	// dedup valid, and their conditions are all applied (a semijoin,
	// exactly the QP2 push). If a pending condition still references one
	// (a value join against an uncovered relation), the node must stay —
	// then the stream counts as unordered and only the sort-dedup
	// finalize (which dedups after sorting) may accept the plan.
	if len(outOrder) == len(tw.Nodes) {
		return b // every covered relation is a vartuple relation
	}
	stillNeeded := false
	for _, c := range info.cross {
		if applied[c.String()] {
			continue
		}
		for _, r := range c.Rels() {
			if covered[r] && !outSet[r] {
				stillNeeded = true
			}
		}
	}
	if stillNeeded || !p.cfg.allow(OrderSemijoin) {
		b.orderSeq = nil
		return b
	}
	proj := exec.NewProject(join, outOrder, true)
	b.cost += outRows * cpuPerTuple
	proj.Est_ = exec.Est{Rows: outRows, Cost: b.cost}
	b.node = proj
	b.usedEager = true
	return b
}

// remainder lists, in rels order, the relations a seed does not cover.
func remainder(rels []string, seed *built) []string {
	var out []string
	for _, r := range rels {
		if !seed.present[r] {
			out = append(out, r)
		}
	}
	return out
}

// buildOnSeed joins the given relations on top of a cloned seed in order
// and finalizes the plan. Under TwigRemainderINL the remainder joins keep
// interval-bounded INL candidates even when UseINL is off — the uncovered
// relations are exactly where the forced-twig family used to degrade to
// full-scan NL inners.
func (p *Planner) buildOnSeed(psx *tpm.PSX, info *psxInfo, seed *built, order []string, t joinToggles) (exec.PlanNode, float64, error) {
	t.remainderINL = p.cfg.TwigRemainderINL
	b := seed.clone()
	for _, r := range order {
		if err := p.joinNext(info, b, r, t); err != nil {
			return nil, 0, err
		}
		p.eagerProject(info, b)
	}
	return p.finalize(psx, info, b)
}

// enumerateRemainder yields the join orders for the uncovered relations
// above a partial-twig seed. Vartuple relations keep their relative
// vartuple order unless OrderSort can repair arbitrary orders (the
// covered vartuple relations already emit in order from the twig; finalize
// rejects any combination whose overall order is still invalid).
func (p *Planner) enumerateRemainder(info *psxInfo, rels []string) [][]string {
	if len(rels) == 0 {
		return [][]string{nil}
	}
	bindPos := map[string]int{}
	for i, r := range info.bindRels {
		bindPos[r] = i
	}
	freeOrder := p.cfg.allow(OrderSort)
	var out [][]string
	used := make([]bool, len(rels))
	cur := make([]string, 0, len(rels))
	var rec func(lastBind int)
	rec = func(lastBind int) {
		if len(cur) == len(rels) {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for i, r := range rels {
			if used[i] {
				continue
			}
			lb := lastBind
			if pos, isBind := bindPos[r]; isBind {
				if !freeOrder && pos < lastBind {
					continue // relative vartuple order violated
				}
				lb = pos
			}
			used[i] = true
			cur = append(cur, r)
			rec(lb)
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec(-1)
	return out
}

// joinNext extends the plan with relation r.
func (p *Planner) joinNext(info *psxInfo, b *built, r string, t joinToggles) error {
	useBNL := t.bnl
	cross := applicableCross(info, b, r)
	joinSel := p.crossSelectivity(info, cross)
	innerRows := info.filteredRows[r]
	outRows := b.rows * innerRows * joinSel
	if outRows < 0.01 {
		outRows = 0.01
	}

	prefixSet := map[string]bool{}
	for _, a := range b.node.Schema().Aliases {
		prefixSet[a] = true
	}

	b.rowsBefore[r] = b.rows

	// Candidate A: index nested-loops with a parameterized inner access.
	// remainderINL re-admits the candidate for joins above a partial-twig
	// seed when the forced family has UseINL off (the parameterization
	// requirement below keeps it to genuinely interval-bounded inners).
	var inlChoice *accessChoice
	if p.cfg.UseINL || t.remainderINL {
		all := append(append([]tpm.Cmp(nil), info.local[r]...), cross...)
		choices := p.planAccess(r, all, prefixSet)
		for i := range choices {
			if !accessUsesPrefix(choices[i].access, prefixSet) {
				continue
			}
			if inlChoice == nil || choices[i].cost < inlChoice.cost {
				inlChoice = &choices[i]
			}
		}
	}
	inlCost := math.Inf(1)
	if inlChoice != nil {
		inlCost = b.cost + b.rows*(p.est.ProbeCost()+inlChoice.cost) + outRows*cpuPerTuple
	}

	// Candidate B: (block) nested loops with a materialized inner scan.
	// Inners that fit in the operator memory budget replay at CPU cost;
	// spilled inners are re-read from disk per outer row.
	nlAccess := p.bestAccess(r, info.local[r], nil)
	innerScanCost := nlAccess.cost
	budget := p.spoolBudget()
	rescan := Pages(innerRows)
	if innerRows*spoolBytesPerRow <= budget {
		rescan = innerRows * cpuPerTuple
	}
	nlCost := b.cost + innerScanCost + b.rows*rescan + b.rows*innerRows*cpuPerTuple
	blockRows := 1024.0
	bnlCost := b.cost + innerScanCost + math.Ceil(b.rows/blockRows)*Pages(innerRows) + b.rows*innerRows*cpuPerTuple

	// Candidate C: stack-based structural merge join — both inputs read
	// once in document order, no probes, no rescans. The toggle's
	// emission order decides the output order AND the extra cost term:
	// descendant emission streams but may force a repair sort at
	// finalize; ancestor emission buffers the non-bottom share of the
	// output in per-stack-entry lists.
	var structPred *tpm.StructuralPred
	var structResid []tpm.Cmp
	structCost := math.Inf(1)
	if t.structural {
		// Child-axis candidates compete directly with the index-probe
		// path: with the probe charge calibrated against the live buffer
		// pool hit rate (ProbeCost), the estimates arbitrate instead of a
		// blanket gate.
		structPred, structResid = p.structuralCandidate(info, b, r, cross, t.structAnc)
		if structPred != nil {
			if t.structAnc {
				// Expected stack depth = ancestor-stream rows per distinct
				// ancestor (prefix rows duplicate their ancestor once per
				// earlier join partner — duplicates stack together) times
				// one plus the label's interval nesting. Only the bottom
				// entry's pairs stream; the rest buffer.
				label, haveLabel := p.aliasLabel(info, structPred.Anc)
				dup := 1.0
				if structPred.Anc != r {
					if ancRows := info.filteredRows[structPred.Anc]; ancRows > 0 && b.rows > ancRows {
						dup = b.rows / ancRows
					}
				}
				above := dup*(1+p.est.AncNesting(label, haveLabel)) - 1
				if above < 0 {
					above = 0
				}
				bufRows := outRows * above / (1 + above)
				structCost = StructuralJoinAncCost(b.cost, innerScanCost, b.rows, innerRows, outRows, bufRows) +
					SpillSurcharge(bufRows, spoolBytesPerRow, p.spoolBudget())
			} else {
				structCost = StructuralJoinCost(b.cost, innerScanCost, b.rows, innerRows, outRows)
			}
		}
	}

	mark := func(conds []tpm.Cmp) {
		for _, c := range conds {
			b.applied[c.String()] = true
		}
	}

	switch {
	case structPred != nil && structCost <= inlCost && structCost <= nlCost &&
		!(useBNL && bnlCost < structCost):
		inner := exec.NewScan(r, nlAccess.access, nlAccess.residual)
		inner.Est_ = exec.Est{Rows: innerRows, Cost: innerScanCost}
		join := exec.NewStructuralJoin(b.node, inner, *structPred, structResid)
		join.AncOrder = t.structAnc
		join.Est_ = exec.Est{Rows: outRows, Cost: structCost}
		b.node = join
		// The side whose document order leads the output depends on the
		// emission: descendant emission leads with the descendant stream,
		// ancestor emission with the ancestor stream; the other side's
		// arrival order breaks ties. When the leading side is the prefix,
		// the join is order-preserving and r's order is appended.
		if (structPred.Desc == r) != t.structAnc {
			b.orderSeq = append([]string{r}, b.orderSeq...)
		} else {
			b.orderSeq = append(b.orderSeq, r)
		}
		b.cost = structCost
	case useBNL && bnlCost < nlCost && bnlCost < inlCost:
		inner := exec.NewScan(r, nlAccess.access, nlAccess.residual)
		inner.Est_ = exec.Est{Rows: innerRows, Cost: innerScanCost}
		join := exec.NewBNLJoin(b.node, inner, cross, int(blockRows))
		join.Est_ = exec.Est{Rows: outRows, Cost: bnlCost}
		b.node = join
		b.orderSeq = nil // BNL destroys document order
		b.cost = bnlCost
	case inlCost <= nlCost && inlChoice != nil:
		// Residual single-relation conds stay in the inner scan; cross
		// conds not subsumed by the access go to the join.
		var scanConds, joinConds []tpm.Cmp
		for _, c := range inlChoice.residual {
			if len(c.Rels()) == 1 {
				scanConds = append(scanConds, c)
			} else {
				joinConds = append(joinConds, c)
			}
		}
		inner := exec.NewScan(r, inlChoice.access, scanConds)
		inner.Est_ = exec.Est{Rows: innerRows * joinSel, Cost: inlChoice.cost}
		join := exec.NewINLJoin(b.node, inner, joinConds)
		join.Est_ = exec.Est{Rows: outRows, Cost: inlCost}
		b.node = join
		if b.orderSeq != nil {
			b.orderSeq = append(b.orderSeq, r)
		}
		b.cost = inlCost
	default:
		inner := exec.NewScan(r, nlAccess.access, nlAccess.residual)
		inner.Est_ = exec.Est{Rows: innerRows, Cost: innerScanCost}
		join := exec.NewNLJoin(b.node, inner, cross)
		join.Est_ = exec.Est{Rows: outRows, Cost: nlCost}
		b.node = join
		if b.orderSeq != nil {
			b.orderSeq = append(b.orderSeq, r)
		}
		b.cost = nlCost
	}
	mark(info.local[r])
	mark(cross)
	b.present[r] = true
	b.rows = outRows
	return nil
}

// accessUsesPrefix reports whether an access path is parameterized by
// outer-row attributes (making it a genuine index nested-loops inner).
func accessUsesPrefix(a exec.Access, prefix map[string]bool) bool {
	isPrefixAttr := func(op tpm.Operand) bool {
		return op.Kind == tpm.OpAttr && prefix[op.Attr.Rel]
	}
	if a.Kind == exec.AccessParent && isPrefixAttr(a.Parent) {
		return true
	}
	if a.Bounded && (isPrefixAttr(a.Lo) || isPrefixAttr(a.Hi)) {
		return true
	}
	return false
}

// eagerProject applies the semijoin-style projection push (strategy (b),
// plan QP2): trailing condition relations whose conditions are all applied
// are projected away with one-pass duplicate elimination, keeping the
// sorted prefix property for the relations that remain.
func (p *Planner) eagerProject(info *psxInfo, b *built) {
	if !p.cfg.allow(OrderSemijoin) || b.orderSeq == nil {
		return
	}
	bindSet := map[string]bool{}
	for _, r := range info.bindRels {
		bindSet[r] = true
	}
	referenced := map[string]bool{}
	for _, c := range info.cross {
		if b.applied[c.String()] {
			continue
		}
		for _, r := range c.Rels() {
			referenced[r] = true
		}
	}
	cut := len(b.orderSeq)
	for cut > 0 {
		r := b.orderSeq[cut-1]
		if bindSet[r] || referenced[r] {
			break
		}
		cut--
	}
	if cut == len(b.orderSeq) || cut == 0 {
		return
	}
	// A twig-led plan can carry aliases outside orderSeq (non-vartuple
	// twig nodes). The projection drops those too, so it is only valid
	// when none of them is still needed by the vartuple or a pending
	// condition.
	keepSet := map[string]bool{}
	for _, r := range b.orderSeq[:cut] {
		keepSet[r] = true
	}
	for _, a := range b.node.Schema().Aliases {
		if !keepSet[a] && (bindSet[a] || referenced[a]) {
			return
		}
	}
	// Project to the live prefix; estimate the semijoin row reduction.
	rows := b.rows
	for i := len(b.orderSeq) - 1; i >= cut; i-- {
		r := b.orderSeq[i]
		before := b.rowsBefore[r]
		if before > 0 {
			mult := rows / before
			if mult > 1 {
				mult = 1
			}
			rows = before * mult
		}
	}
	keep := append([]string(nil), b.orderSeq[:cut]...)
	proj := exec.NewProject(b.node, keep, true)
	b.cost += b.rows * cpuPerTuple
	b.rows = rows
	proj.Est_ = exec.Est{Rows: b.rows, Cost: b.cost}
	b.node = proj
	b.orderSeq = keep
	b.usedEager = true
}

// finalize adds the order/duplicate handling and the final projection,
// returning nil if the order cannot be made valid under the configured
// strategies.
func (p *Planner) finalize(psx *tpm.PSX, info *psxInfo, b *built) (exec.PlanNode, float64, error) {
	if len(info.bindRels) == 0 {
		// Nullary pass-fail check: no projection or order requirement
		// (the driver stops at the first row).
		return b.node, b.cost, nil
	}
	if b.orderSeq != nil && isPrefix(info.bindRels, b.orderSeq) {
		if b.usedEager && !p.cfg.allow(OrderSemijoin) {
			return nil, 0, nil
		}
		proj := exec.NewProject(b.node, info.bindRels, true)
		cost := b.cost + b.rows*cpuPerTuple
		proj.Est_ = exec.Est{Rows: b.rows, Cost: cost}
		return proj, cost, nil
	}
	if !p.cfg.allow(OrderSort) {
		return nil, 0, nil
	}
	// Strategy (a): restore order with an external sort, dedup while
	// emitting, then project.
	sorted := exec.NewSort(b.node, info.bindRels, true)
	sortCost := b.cost + 2*Pages(b.rows) + b.rows*cpuPerTuple*log2(b.rows+2)
	sorted.Est_ = exec.Est{Rows: b.rows, Cost: sortCost}
	proj := exec.NewProject(sorted, info.bindRels, false)
	cost := sortCost + b.rows*cpuPerTuple
	proj.Est_ = exec.Est{Rows: b.rows, Cost: cost}
	return proj, cost, nil
}

func isPrefix(prefix, seq []string) bool {
	if len(prefix) > len(seq) {
		return false
	}
	for i, r := range prefix {
		if seq[i] != r {
			return false
		}
	}
	return true
}

func log2(x float64) float64 { return math.Log2(x) }

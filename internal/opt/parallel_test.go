package opt

import (
	"strings"
	"testing"

	"xqdb/internal/xmlgen"
)

// TestDOPPricedAsPhysicalChoice checks that parallelism goes through the
// same cost arbitration as every other physical decision: a large
// scan-dominated query adopts an exchange at DOP=4, a tiny selective one
// stays serial because worker startup and batch transfer would cost more
// than the divided scan saves, and DOP<2 is the identity.
func TestDOPPricedAsPhysicalChoice(t *testing.T) {
	st := dblpStore(t)

	// Value sieve without the label index: a full scan over the whole
	// relation, worth dividing across workers.
	scanCfg := M4()
	scanCfg.UseLabelIndex = false
	scanCfg.DOP = 4
	big := `for $t in //text() return if ($t = "zzz") then <hit/> else ()`
	out := explain(t, st, scanCfg, big)
	if !strings.Contains(out, "exchange [dop=4]") {
		t.Errorf("large full scan not wrapped in an exchange at DOP=4:\n%s", out)
	}

	// The same query with DOP unset plans serial.
	serialCfg := M4()
	serialCfg.UseLabelIndex = false
	if out := explain(t, st, serialCfg, big); strings.Contains(out, "exchange") {
		t.Errorf("serial config produced an exchange:\n%s", out)
	}

	// A selective label lookup reads a handful of index entries: the
	// exchange startup cost must price parallelism out.
	smallCfg := M4()
	smallCfg.DOP = 4
	small := `for $x in //phdthesis return $x`
	if out := explain(t, st, smallCfg, small); strings.Contains(out, "exchange") {
		t.Errorf("tiny label lookup wrapped in an exchange:\n%s", out)
	}

	// ExchangeAll overrides the gate for harnesses.
	allCfg := M4()
	allCfg.DOP = 2
	allCfg.ExchangeAll = true
	if out := explain(t, st, allCfg, small); !strings.Contains(out, "exchange [dop=2]") {
		t.Errorf("ExchangeAll did not wrap the scan:\n%s", out)
	}
}

// TestExchangeKeepsINLInnerSerial checks the parallel post-pass never
// wraps an index nested-loops inner: its access bounds re-resolve per
// outer row, which a partitioned scan cannot do.
func TestExchangeKeepsINLInnerSerial(t *testing.T) {
	st := loadStore(t, xmlgen.DBLP(xmlgen.DBLPConfig{Entries: 800, Seed: 5}))
	cfg, ok := ForceJoin("inl")
	if !ok {
		t.Fatal("ForceJoin(inl)")
	}
	cfg.DOP = 4
	cfg.ExchangeAll = true
	out := explain(t, st, cfg, `for $x in //inproceedings return for $y in $x//author return $y`)
	if !strings.Contains(out, "inl-join") {
		t.Skipf("plan did not use inl-join:\n%s", out)
	}
	// The inner (probe) side renders below the outer; assert no exchange
	// appears between the join and its inner scan by checking the inner's
	// bounded range scan is a direct child line.
	lines := strings.Split(out, "\n")
	for i, ln := range lines {
		if strings.Contains(ln, "inl-join") {
			rest := strings.Join(lines[i+1:], "\n")
			// Exactly one exchange may appear below: the outer side's.
			if strings.Count(rest, "exchange") > 1 {
				t.Errorf("INL inner wrapped in an exchange:\n%s", out)
			}
		}
	}
}

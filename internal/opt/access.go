package opt

import (
	"xqdb/internal/exec"
	"xqdb/internal/tpm"
)

// accessChoice is one candidate access path for a relation together with
// the conditions it subsumes and the residual selections.
type accessChoice struct {
	access   exec.Access
	residual []tpm.Cmp // single-relation conds still to check per tuple
	// scanned estimates the tuples the access path touches (before
	// residual filtering); rows after filtering is the same for every
	// choice and computed by the caller.
	scanned float64
	// cost is the page+CPU cost of running this access once.
	cost float64
}

// resolvableOperand reports whether an operand can provide an access-path
// bound: constants and external variables always can; attributes only if
// they belong to the prefix schema of an index nested-loops join.
func resolvableOperand(op tpm.Operand, prefix map[string]bool) bool {
	switch op.Kind {
	case tpm.OpConstIn, tpm.OpVarIn, tpm.OpVarOut:
		return true
	case tpm.OpAttr:
		return prefix != nil && prefix[op.Attr.Rel]
	default:
		return false
	}
}

// sameBase reports whether lo and hi are the in/out pair of one base node
// (the canonical descendant interval, which is equivalent to the pair of
// conditions it came from).
func sameBase(lo, hi tpm.Operand) bool {
	if lo.Kind == tpm.OpVarIn && hi.Kind == tpm.OpVarOut {
		return lo.Var == hi.Var
	}
	if lo.Kind == tpm.OpAttr && hi.Kind == tpm.OpAttr {
		return lo.Attr.Rel == hi.Attr.Rel && lo.Attr.Col == tpm.ColIn && hi.Attr.Col == tpm.ColOut
	}
	return false
}

// condRef pairs a condition normalized to "alias attribute on the left"
// with the original condition (for subsumption bookkeeping).
type condRef struct {
	norm tpm.Cmp
	orig tpm.Cmp
}

// localCondParts classifies the single-relation conditions of one alias.
type localCondParts struct {
	typeEq   *condRef // alias.type = const
	valueEq  *condRef // alias.value = conststr
	parentEq *condRef // alias.parent_in = resolvable
	inEq     *condRef // alias.in = resolvable
	inLo     *condRef // alias.in > resolvable
	outHi    *condRef // alias.out < resolvable
	others   []tpm.Cmp
}

func classify(alias string, conds []tpm.Cmp, prefix map[string]bool) localCondParts {
	var p localCondParts
	for i := range conds {
		orig := conds[i]
		c := orig
		l, r := c.Left, c.Right
		// Normalize so the alias attribute is on the left.
		if !(l.Kind == tpm.OpAttr && l.Attr.Rel == alias) {
			if r.Kind == tpm.OpAttr && r.Attr.Rel == alias {
				l, r = r, l
				switch c.Op {
				case tpm.CmpLt:
					c = tpm.Cmp{Op: tpm.CmpGt, Left: l, Right: r}
				case tpm.CmpGt:
					c = tpm.Cmp{Op: tpm.CmpLt, Left: l, Right: r}
				default:
					c = tpm.Cmp{Op: c.Op, Left: l, Right: r}
				}
			} else {
				p.others = append(p.others, c)
				continue
			}
		}
		l, r = c.Left, c.Right
		ref := &condRef{norm: c, orig: orig}
		switch {
		case l.Attr.Col == tpm.ColType && c.Op == tpm.CmpEq && r.Kind == tpm.OpConstType && p.typeEq == nil:
			p.typeEq = ref
		case l.Attr.Col == tpm.ColValue && c.Op == tpm.CmpEq && r.Kind == tpm.OpConstStr && p.valueEq == nil:
			p.valueEq = ref
		case l.Attr.Col == tpm.ColParentIn && c.Op == tpm.CmpEq && resolvableOperand(r, prefix) && p.parentEq == nil:
			p.parentEq = ref
		case l.Attr.Col == tpm.ColIn && c.Op == tpm.CmpEq && resolvableOperand(r, prefix) && p.inEq == nil:
			p.inEq = ref
		case l.Attr.Col == tpm.ColIn && c.Op == tpm.CmpGt && resolvableOperand(r, prefix) && p.inLo == nil:
			p.inLo = ref
		case l.Attr.Col == tpm.ColOut && c.Op == tpm.CmpLt && resolvableOperand(r, prefix) && p.outHi == nil:
			p.outHi = ref
		default:
			p.others = append(p.others, c)
		}
	}
	return p
}

// planAccess derives the candidate access paths for alias from its local
// conditions. prefix is nil for leading scans and nested-loops inners (the
// access must then be runnable without an outer row); for INL inners it
// holds the aliases of the outer side. The returned choices are ordered by
// estimated cost; at least one choice (full scan) is always present unless
// cfg forbids nothing.
func (p *Planner) planAccess(alias string, conds []tpm.Cmp, prefix map[string]bool) []accessChoice {
	parts := classify(alias, conds, prefix)
	e := p.est
	N := e.Relation()
	var out []accessChoice

	residualExcept := func(subsumed ...*condRef) []tpm.Cmp {
		skip := map[string]bool{}
		for _, s := range subsumed {
			if s != nil {
				skip[s.orig.String()] = true
			}
		}
		var res []tpm.Cmp
		for _, c := range conds {
			if !skip[c.String()] {
				res = append(res, c)
			}
		}
		return res
	}

	// In-interval bounds usable by range/label accesses.
	var lo, hi tpm.Operand
	var loAdd, hiAdd uint32
	var loCond, hiCond *condRef
	bounded := false
	canonical := false
	switch {
	case parts.inEq != nil:
		lo, hi = parts.inEq.norm.Right, parts.inEq.norm.Right
		loAdd, hiAdd = 0, 1
		loCond = parts.inEq
		bounded = true
		canonical = true // in = X is exactly the interval [X, X+1)
	case parts.inLo != nil && parts.outHi != nil && sameBase(parts.inLo.norm.Right, parts.outHi.norm.Right):
		// Canonical descendant interval: in ∈ (base.in, base.out) is
		// equivalent to the (in >, out <) pair, so both conds are
		// subsumed.
		lo, hi = parts.inLo.norm.Right, parts.outHi.norm.Right
		loAdd = 1
		loCond, hiCond = parts.inLo, parts.outHi
		bounded = true
		canonical = true
	case parts.inLo != nil:
		lo = parts.inLo.norm.Right
		loAdd = 1
		hi = tpm.InOp(0) // unbounded
		loCond = parts.inLo
		bounded = true
		// in > X alone is equivalent to the half-open interval.
		canonical = parts.outHi == nil
	case parts.outHi != nil:
		// out < Y implies in < Y (in < out), usable as an upper bound but
		// NOT equivalent — the cond stays residual.
		lo = tpm.InOp(0)
		hi = parts.outHi.norm.Right
		bounded = true
	}

	// Estimated scan volumes.
	rowsAll := N
	subtree := e.AvgSubtree()
	rangeRows := rowsAll
	if bounded {
		switch {
		case parts.inEq != nil:
			rangeRows = 1
		case lo.Kind == tpm.OpConstIn && hi.Kind == tpm.OpConstIn && hi.In == 0:
			rangeRows = rowsAll // descendants of the root
		default:
			rangeRows = subtree
		}
	}

	// Label index access.
	if p.cfg.UseLabelIndex && p.st.HasLabelIndex() && parts.typeEq != nil && parts.valueEq != nil {
		labelRows := N * e.PairSelectivity([]tpm.Cmp{parts.typeEq.norm, parts.valueEq.norm})
		scanned := labelRows
		acc := exec.Access{
			Kind:  exec.AccessLabel,
			Type:  parts.typeEq.norm.Right.Type,
			Value: parts.valueEq.norm.Right.Str,
		}
		subsumed := []*condRef{parts.typeEq, parts.valueEq}
		if bounded {
			acc.Bounded = true
			acc.Lo, acc.Hi = lo, hi
			acc.LoAdd, acc.HiAdd = loAdd, hiAdd
			scanned = labelRows * clamp01(rangeRows/maxf(rowsAll, 1))
			if scanned < 1 {
				scanned = 1
			}
			if canonical {
				subsumed = append(subsumed, loCond, hiCond)
			} else if loCond != nil {
				subsumed = append(subsumed, loCond)
			}
		}
		out = append(out, accessChoice{
			access:   acc,
			residual: residualExcept(subsumed...),
			scanned:  scanned,
			cost:     e.Height() + Pages(scanned) + scanned*cpuBatchedTuple,
		})
	}

	// Parent index access.
	if p.cfg.UseParentIndex && p.st.HasParentIndex() && parts.parentEq != nil {
		fan := e.AvgFanout()
		out = append(out, accessChoice{
			access:   exec.Access{Kind: exec.AccessParent, Parent: parts.parentEq.norm.Right},
			residual: residualExcept(parts.parentEq),
			scanned:  fan,
			cost:     e.Height() + Pages(fan) + fan*cpuBatchedTuple,
		})
	}

	// Primary range scan.
	if bounded {
		subsumed := []*condRef{}
		if canonical {
			subsumed = append(subsumed, loCond, hiCond)
		} else if loCond != nil {
			subsumed = append(subsumed, loCond)
		}
		out = append(out, accessChoice{
			access: exec.Access{
				Kind: exec.AccessRange, Bounded: true,
				Lo: lo, Hi: hi, LoAdd: loAdd, HiAdd: hiAdd,
			},
			residual: residualExcept(subsumed...),
			scanned:  rangeRows,
			cost:     e.Height() + Pages(rangeRows) + rangeRows*cpuBatchedTuple,
		})
	}

	// Full scan (always available).
	out = append(out, accessChoice{
		access:   exec.Access{Kind: exec.AccessFull},
		residual: residualExcept(),
		scanned:  rowsAll,
		cost:     Pages(rowsAll) + rowsAll*cpuBatchedTuple,
	})
	return out
}

// bestAccess returns the cheapest candidate.
func (p *Planner) bestAccess(alias string, conds []tpm.Cmp, prefix map[string]bool) accessChoice {
	choices := p.planAccess(alias, conds, prefix)
	best := choices[0]
	for _, c := range choices[1:] {
		if c.cost < best.cost {
			best = c
		}
	}
	return best
}

package opt

import (
	"math"

	"xqdb/internal/store"
	"xqdb/internal/tpm"
	"xqdb/internal/xasr"
)

// Cost model constants. Costs are in page-I/O units with a small CPU
// surcharge per tuple, following the lecture-style model the paper has
// students calibrate ("take running times to see how rankings by their
// cost function actually matched reality").
const (
	tuplesPerPage = 100  // XASR tuples per 4 KiB page (≈40 bytes/tuple)
	cpuPerTuple   = 0.01 // CPU cost of producing one tuple, in page units
	probeBase     = 1.0  // B+-tree descent cost per index probe

	// cpuBatchedTuple is the per-tuple CPU charge on batch-at-a-time paths:
	// scans fill batches straight from leaf cursors and the structural/twig
	// merges consume and emit them in runs, so the per-row virtual call,
	// budget poll, and copy amortize over ~DefaultBatchSize rows. What
	// remains is the real per-row work (predicate evaluation, column
	// appends), calibrated at a quarter of the row-engine charge. Row-wise
	// machinery — index probes, nested-loops inner passes, sorts, spool
	// replay — keeps the full cpuPerTuple.
	cpuBatchedTuple = cpuPerTuple / 4

	// exchangeStartup is the fixed charge of opening a parallel exchange:
	// spawning the worker pool, splitting the range into morsels (one
	// index-only pre-scan for label ranges), and setting up the channels.
	exchangeStartup = 4.0
	// cpuExchangeTuple is the per-tuple transfer surcharge of an exchange:
	// channel sends and loser-tree merge steps happen once per ~1k-row
	// batch, so per row it is a small fraction of even the batched CPU
	// charge.
	cpuExchangeTuple = cpuPerTuple / 8
)

// Estimator derives cardinality and selectivity estimates from the stored
// document statistics, degraded according to the configured StatsMode.
type Estimator struct {
	mode  StatsMode
	stats *xasr.Stats // raw statistics for accurate label lookups

	nodes     float64
	elems     float64
	texts     float64
	labels    float64 // number of distinct element labels
	avgDepth  float64
	avgFanout float64
	height    float64 // primary tree height
	probe     float64 // calibrated per-probe descent cost (see ProbeCost)
}

// NewEstimator builds an estimator over a loaded store.
func NewEstimator(st *store.Store, mode StatsMode) *Estimator {
	e := &Estimator{mode: mode, nodes: 1000, elems: 600, texts: 300, labels: 10, avgDepth: 5, avgFanout: 5, height: 2}
	s := st.Stats()
	if s == nil || mode == StatsNone {
		e.calibrateProbe(st)
		return e
	}
	e.nodes = float64(s.Nodes)
	e.elems = float64(s.Elems)
	e.texts = float64(s.Texts)
	e.labels = float64(len(s.LabelCount))
	if e.labels < 1 {
		e.labels = 1
	}
	e.avgDepth = s.AvgDepth()
	if e.avgDepth < 1 {
		e.avgDepth = 1
	}
	if s.Elems > 0 {
		e.avgFanout = float64(s.Nodes-1) / float64(s.Elems)
	}
	e.height = float64(st.PrimaryHeight())
	if e.height < 1 {
		e.height = 1
	}
	e.stats = s
	e.calibrateProbe(st)
	return e
}

// calibrateProbe scales the per-probe page charge by the buffer pool's
// live miss rate: probeBase models a cold B+-tree descent, but on a warm
// pool most descents touch only cached pages, so charging a full page per
// probe overstates index nested-loops plans (the reason the child-axis
// structural candidate used to be gated off outright). The floor is the
// CPU of walking a fully cached descent.
func (e *Estimator) calibrateProbe(st *store.Store) {
	e.probe = probeBase
	ps := st.PagerStats()
	if total := ps.CacheHits + ps.CacheMisses; total > 0 {
		e.probe = probeBase * float64(ps.CacheMisses) / float64(total)
	}
	if floor := e.height * cpuPerTuple; e.probe < floor {
		e.probe = floor
	}
}

// ProbeCost returns the estimated cost of one index probe (a B+-tree
// descent), calibrated against the buffer pool hit rate at planning time.
func (e *Estimator) ProbeCost() float64 { return e.probe }

// ExchangeCost prices running a leaf scan of the given serial cost and
// output rows on dop exchange workers: the scan and residual-filter work
// divides across the workers, the batch transfer and ordered merge do not,
// and the pool setup is a fixed charge. An exchange only wins when the
// divisible work dwarfs the fixed and per-row overhead — exactly the
// "small queries stay serial" gate.
func (e *Estimator) ExchangeCost(serial, rows float64, dop int) float64 {
	if dop < 1 {
		dop = 1
	}
	return exchangeStartup + serial/float64(dop) + rows*cpuExchangeTuple
}

func (e *Estimator) labelCard(label string) float64 {
	switch e.mode {
	case StatsAccurate:
		if e.stats != nil {
			return float64(e.stats.Card(label))
		}
		return e.elems / e.labels
	case StatsUniform:
		// Engine 2's assumption: all labels equally frequent — including
		// labels that do not occur at all.
		return e.elems / e.labels
	default:
		return e.nodes * 0.1
	}
}

// Relation returns the estimated XASR cardinality.
func (e *Estimator) Relation() float64 { return e.nodes }

// Pages converts a row estimate to page reads.
func Pages(rows float64) float64 {
	p := rows / tuplesPerPage
	if p < 1 {
		p = 1
	}
	return p
}

// Height returns the estimated B+-tree height.
func (e *Estimator) Height() float64 { return e.height }

// AvgSubtree returns the average number of proper descendants of a node
// (total ancestor-descendant pairs is ΣdepthN, so the mean is avgDepth).
func (e *Estimator) AvgSubtree() float64 { return e.avgDepth }

// AvgFanout returns the average number of children of an element node.
func (e *Estimator) AvgFanout() float64 { return e.avgFanout }

// DescendantPairSel estimates the selectivity of a canonical descendant
// interval pair (d.in > a.in AND d.out < a.out) between an ancestor
// relation filtered to ancLabel and any descendant relation. With
// accurate statistics the expected pair count is exact in the ancestor
// dimension: every element with ancLabel contributes its proper-subtree
// size (collected at load time as LabelSubtreeSum), and descendants of
// any label are assumed uniformly spread, so
//
//	pairs ≈ SubtreeSum[ancLabel] · C_desc / N
//	sel   =  pairs / (C_anc · C_desc) = SubtreeSum[ancLabel] / (C_anc · N).
//
// This is what keeps sort-needing merge-join plans honest: the gross
// avgDepth/N fallback underestimates pair counts by orders of magnitude
// on deep documents, making the order-repair sort look free. Without a
// usable per-label sum the fallback is that gross measure.
func (e *Estimator) DescendantPairSel(ancLabel string, haveLabel bool) float64 {
	gross := clamp01(e.avgDepth / e.nodes)
	if !haveLabel || e.mode != StatsAccurate || e.stats == nil {
		return gross
	}
	sum, ok := e.stats.SubtreeSum(ancLabel)
	if !ok {
		return gross
	}
	card := float64(e.stats.Card(ancLabel))
	if card <= 0 {
		// Nonexistent ancestor label: no pairs.
		return 0
	}
	return clamp01(float64(sum) / (card * e.nodes))
}

// StructuralJoinCost is the cost of a stack-based structural merge join:
// both inputs are read once (their page costs live in outerCost and
// innerCost), every input tuple passes the stack machinery once, and each
// output pair costs one (batch-amortized) tuple's CPU — the merge consumes
// descendant runs batch-at-a-time and emits by column appends. There is no
// probe cost and no inner rescan — the defining advantage over the
// nested-loops family.
func StructuralJoinCost(outerCost, innerCost, outerRows, innerRows, outRows float64) float64 {
	return outerCost + innerCost + (outerRows+innerRows)*cpuBatchedTuple + outRows*cpuBatchedTuple
}

// StructuralJoinAncCost is the cost of the ancestor-ordered
// (Stack-Tree-Anc) variant: the same single-pass merge, plus the buffered
// share of the output — pairs whose ancestor is not the current stack
// bottom are materialized into per-stack-entry output lists and cascade
// down as entries pop, so each such pair pays an extra copy/append on top
// of the plain emission CPU. bufRows is the estimated peak size of those
// lists (the planner derives it from the expected stack depth: ancestor
// duplication in the prefix stream × interval nesting of the ancestor
// label); it is what lets the finalize-level comparison trade the
// descendant variant's repair sort against the anc variant's buffering on
// deeply nested or heavily duplicated ancestors.
func StructuralJoinAncCost(outerCost, innerCost, outerRows, innerRows, outRows, bufRows float64) float64 {
	return StructuralJoinCost(outerCost, innerCost, outerRows, innerRows, outRows) +
		bufRows*cpuPerTuple
}

// AncNesting estimates the expected number of ancestor-label elements
// enclosing a random node — the interval-nesting depth of the ancestor
// stream itself. With accurate statistics this is SubtreeSum[anc]/N under
// the uniform spread assumption (the DescendantPairSel machinery applied
// to the ancestor label); grossly avgDepth without a usable label. It is
// one factor of the anc-ordered structural join's expected stack depth:
// DBLP-ish flat labels barely nest (the anc variant buffers almost
// nothing), recursive treebank labels stack deeply and pay for it.
func (e *Estimator) AncNesting(ancLabel string, haveLabel bool) float64 {
	if haveLabel && e.mode == StatsAccurate && e.stats != nil {
		if sum, ok := e.stats.SubtreeSum(ancLabel); ok {
			if float64(e.stats.Card(ancLabel)) <= 0 {
				return 0 // nonexistent ancestor label: no pairs at all
			}
			return float64(sum) / e.nodes
		}
	}
	return e.avgDepth
}

// TwigJoinCost is the cost of a holistic twig join over k document-ordered
// streams: every stream is read once (streamCost carries their page
// costs), every input tuple passes the chained-stack machinery once, each
// buffered path solution and each merged output row costs tuple CPU, and
// the merge phase sorts the output into the required vartuple order in
// memory. There are no probes, no rescans and — unlike a chain of binary
// structural joins — no per-step intermediate results beyond the path
// solutions themselves.
func TwigJoinCost(streamCost, streamRows, pathSols, outRows float64) float64 {
	// Stream consumption is batch-amortized (the k streams arrive through
	// batch buffers); path enumeration and the merge sort stay row-wise.
	return streamCost + streamRows*cpuBatchedTuple + pathSols*cpuPerTuple +
		outRows*cpuPerTuple*(1+math.Log2(outRows+2))
}

// SpillSurcharge prices the disk share of a buffering operator: bufRows
// rows of bytesPerRow each are held by the operator at peak; the share
// beyond the memory budget spills to a temp run file and is read back once,
// so it pays a write+read page round trip. Within budget the surcharge is
// zero — buffered plans stay exactly as priced before resource governance.
func SpillSurcharge(bufRows, bytesPerRow, budget float64) float64 {
	if budget <= 0 || bytesPerRow <= 0 {
		return 0
	}
	bytes := bufRows * bytesPerRow
	if bytes <= budget {
		return 0
	}
	excessRows := (bytes - budget) / bytesPerRow
	return 2 * Pages(excessRows)
}

// TextEquiJoinSel estimates a text-value equi-join between two text
// relations whose parent element labels are known: the classic equi-join
// formula 1/max(V_l, V_r), with V the number of distinct text values
// observed as direct children of the label (xasr.Stats.LabelDistinctTexts,
// collected at load time). This replaces the near-unique 1/texts guess,
// which wildly underestimates dense value domains (author names, years)
// and makes value-anchored plans look better than they run. Labels whose
// ok flag is false, stores predating the statistic, and degraded stats
// modes all fall back to the old guess.
func (e *Estimator) TextEquiJoinSel(lLabel string, lOK bool, rLabel string, rOK bool) float64 {
	fallback := 1 / maxf(e.texts, 1)
	if e.mode != StatsAccurate || e.stats == nil {
		return fallback
	}
	distinct := func(label string, ok bool) (float64, bool) {
		if !ok {
			return 0, false
		}
		n, have := e.stats.DistinctTexts(label)
		if !have {
			return 0, false
		}
		return float64(n), true
	}
	vl, okl := distinct(lLabel, lOK)
	vr, okr := distinct(rLabel, rOK)
	// A label with zero direct text children cannot produce a match at
	// all (the (0, true) contract of Stats.DistinctTexts).
	if (okl && vl == 0) || (okr && vr == 0) {
		return 0
	}
	switch {
	case okl && okr:
		return clamp01(1 / maxf(vl, vr))
	case okl:
		return clamp01(1 / vl)
	case okr:
		return clamp01(1 / vr)
	}
	return fallback
}

// condSelectivity estimates the fraction of the cross product satisfying
// one atomic condition. External-variable bounds are treated like
// constants of their kind.
func (e *Estimator) condSelectivity(c tpm.Cmp) float64 {
	l, r := c.Left, c.Right
	// Normalize: attribute on the left.
	if l.Kind != tpm.OpAttr && r.Kind == tpm.OpAttr {
		l, r = r, l
		// flip comparison direction for asymmetric operators
		switch c.Op {
		case tpm.CmpLt:
			c.Op = tpm.CmpGt
		case tpm.CmpGt:
			c.Op = tpm.CmpLt
		}
	}
	if l.Kind != tpm.OpAttr {
		return 1
	}
	switch l.Attr.Col {
	case tpm.ColType:
		if r.Kind == tpm.OpConstType {
			switch r.Type {
			case xasr.TypeElem:
				return clamp01(e.elems / e.nodes)
			case xasr.TypeText:
				return clamp01(e.texts / e.nodes)
			default:
				return 1 / e.nodes
			}
		}
		return 0.5
	case tpm.ColValue:
		if r.Kind == tpm.OpConstStr {
			// Without a type cond we cannot tell labels from text values;
			// the planner estimates (type, value) pairs via PairCard, so a
			// lone value predicate uses the label estimate.
			return clamp01(e.labelCard(r.Str) / e.nodes)
		}
		if r.Kind == tpm.OpAttr && r.Attr.Col == tpm.ColValue {
			// Text-value equi-join with no label context: assume
			// near-unique text values. The planner routes joins whose
			// parent labels it can recover through TextEquiJoinSel.
			return 1 / maxf(e.texts, 1)
		}
		return 0.1
	case tpm.ColParentIn:
		// parent_in = X: X's children.
		return clamp01(e.avgFanout / e.nodes)
	case tpm.ColIn, tpm.ColOut:
		switch c.Op {
		case tpm.CmpEq:
			return 1 / e.nodes
		default:
			if r.Kind == tpm.OpVarIn || r.Kind == tpm.OpVarOut || r.Kind == tpm.OpAttr {
				// One side of a descendant interval: the pair contributes
				// sqrt of the full descendant selectivity so that the
				// canonical (in >, out <) pair multiplies out to
				// avgDepth/N, the paper's gross measure.
				return clamp01(math.Sqrt(e.avgDepth / e.nodes))
			}
			// in > 1 (descendants of the root): everything.
			return 1
		}
	}
	return 0.5
}

// PairSelectivity estimates a conjunction, recognizing (type, value) label
// pairs so that accurate statistics use exact per-label cardinalities.
func (e *Estimator) PairSelectivity(conds []tpm.Cmp) float64 {
	sel := 1.0
	var typeOf *tpm.Cmp
	var valueOf *tpm.Cmp
	for i := range conds {
		c := conds[i]
		if c.Op == tpm.CmpEq && c.Left.Kind == tpm.OpAttr {
			switch {
			case c.Left.Attr.Col == tpm.ColType && c.Right.Kind == tpm.OpConstType:
				typeOf = &conds[i]
				continue
			case c.Left.Attr.Col == tpm.ColValue && c.Right.Kind == tpm.OpConstStr:
				valueOf = &conds[i]
				continue
			}
		}
		sel *= e.condSelectivity(c)
	}
	switch {
	case typeOf != nil && valueOf != nil && typeOf.Right.Type == xasr.TypeElem:
		sel *= clamp01(e.labelCard(valueOf.Right.Str) / e.nodes)
	case typeOf != nil && valueOf != nil && typeOf.Right.Type == xasr.TypeText:
		sel *= clamp01(e.texts/e.nodes) * (1 / maxf(e.texts, 1)) * 10
	default:
		if typeOf != nil {
			sel *= e.condSelectivity(*typeOf)
		}
		if valueOf != nil {
			sel *= e.condSelectivity(*valueOf)
		}
	}
	return clamp01(sel)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

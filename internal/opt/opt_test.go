package opt

import (
	"strings"
	"testing"

	"xqdb/internal/exec"
	"xqdb/internal/store"
	"xqdb/internal/tpm"
	"xqdb/internal/xasr"
	"xqdb/internal/xmlgen"
	"xqdb/internal/xq"
)

func loadStore(t testing.TB, doc string) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.LoadString(doc); err != nil {
		t.Fatal(err)
	}
	return st
}

func planFor(t *testing.T, st *store.Store, cfg Config, query string) exec.XPlan {
	t.Helper()
	plan := tpm.Merge(tpm.Rewrite(xq.MustParse(query)))
	xplan, err := New(st, cfg).Plan(plan)
	if err != nil {
		t.Fatalf("plan %q: %v", query, err)
	}
	return xplan
}

func explain(t *testing.T, st *store.Store, cfg Config, query string) string {
	t.Helper()
	return exec.Explain(planFor(t, st, cfg, query))
}

func dblpStore(t testing.TB) *store.Store {
	return loadStore(t, xmlgen.DBLP(xmlgen.DBLPConfig{Entries: 800, Seed: 5}))
}

func TestM4PicksLabelIndexForSelectiveLabel(t *testing.T) {
	st := dblpStore(t)
	out := explain(t, st, M4(), `for $x in //phdthesis return $x`)
	if !strings.Contains(out, `label index (elem, "phdthesis")`) {
		t.Errorf("no label index chosen:\n%s", out)
	}
}

func TestM3UsesNoIndexes(t *testing.T) {
	st := dblpStore(t)
	out := explain(t, st, M3(), `for $x in //phdthesis return $x`)
	if strings.Contains(out, "label index") || strings.Contains(out, "parent index") {
		t.Errorf("M3 used a milestone 4 index:\n%s", out)
	}
	if !strings.Contains(out, "scan") {
		t.Errorf("no scan in plan:\n%s", out)
	}
}

func TestM4PicksINLForDescendantJoin(t *testing.T) {
	st := dblpStore(t)
	// With the structural merge join ablated, the descendant join must
	// still fall back to index nested-loops with interval-bounded probes.
	cfg := M4()
	cfg.UseStructural = false
	out := explain(t, st, cfg, `for $x in //article return for $y in $x//author return $y`)
	if !strings.Contains(out, "inl-join") {
		t.Errorf("no INL join chosen:\n%s", out)
	}
	// The inner must be bounded by the outer's interval.
	if !strings.Contains(out, "A2.in+1") && !strings.Contains(out, "A.in+1") {
		t.Errorf("inner not interval-bounded:\n%s", out)
	}
}

func TestM4PicksStructuralJoinForDescendantJoin(t *testing.T) {
	st := dblpStore(t)
	const q = `for $x in //article return for $y in $x//author return $y`
	out := explain(t, st, M4(), q)
	if !strings.Contains(out, "structural-join") {
		t.Errorf("M4 did not choose the structural merge join:\n%s", out)
	}
	// The merge must be cheaper than the best loop-based plan: the whole
	// point of the operator is removing the per-outer-row probe cost.
	cfg := M4()
	cfg.UseStructural = false
	withCost := exec.PlanCost(planFor(t, st, M4(), q))
	withoutCost := exec.PlanCost(planFor(t, st, cfg, q))
	if withCost >= withoutCost {
		t.Errorf("structural plan not estimated cheaper: %.1f vs %.1f", withCost, withoutCost)
	}
}

func TestStructuralJoinDisabledByKnob(t *testing.T) {
	st := dblpStore(t)
	cfg := M4()
	cfg.UseStructural = false
	out := explain(t, st, cfg, `for $x in //inproceedings return for $y in $x//author return $y`)
	if strings.Contains(out, "structural-join") {
		t.Errorf("structural join chosen with UseStructural=false:\n%s", out)
	}
	if out2 := explain(t, st, M3(), `for $x in //inproceedings return for $y in $x//author return $y`); strings.Contains(out2, "structural-join") {
		t.Errorf("M3 preset uses the structural join:\n%s", out2)
	}
}

func TestStructuralJoinEquivalence(t *testing.T) {
	// Forcing the structural join on and off must not change any answer.
	st := dblpStore(t)
	queries := []string{
		`for $x in //article return for $y in $x//author return $y`,
		`for $x in //inproceedings return for $y in $x//author return $y`,
		`for $y in //author return for $x in $y/note return $x`,
		`for $x in //article return if (some $v in $x/volume satisfies true()) then for $y in $x//author return $y else ()`,
	}
	off := M4()
	off.UseStructural = false
	for _, q := range queries {
		var got [2]string
		for i, cfg := range []Config{M4(), off} {
			xplan := planFor(t, st, cfg, q)
			tmp, err := st.TempDir()
			if err != nil {
				t.Fatal(err)
			}
			out, err := exec.Run(&exec.Ctx{Store: st, TempDir: tmp, Env: exec.Env{}}, xplan)
			if err != nil {
				t.Fatalf("%q config %d: %v", q, i, err)
			}
			got[i] = string(out)
		}
		if got[0] != got[1] {
			t.Errorf("%q: structural join changed the answer\nwith:    %.200s\nwithout: %.200s", q, got[0], got[1])
		}
	}
}

const twig3Query = `for $x in //inproceedings return for $a in $x//author return for $t in $x//title return for $y in $x//year return $t`

func TestM4PicksTwigForBranchingPattern(t *testing.T) {
	st := dblpStore(t)
	// Against descendant-ordered binary pipelines (which pay a repair
	// sort on this ancestor-first pattern) the holistic twig wins the
	// auction — the pre-Stack-Tree-Anc arbitration.
	descOnly := M4()
	descOnly.StructuralEmit = EmitDesc
	out := explain(t, st, descOnly, twig3Query)
	if !strings.Contains(out, "twig-join") {
		t.Errorf("M4 (desc emission) did not choose the holistic twig join:\n%s", out)
	}
	// All four streams feed the one operator; no binary join remains.
	if strings.Count(out, "scan") != 4 || strings.Contains(out, "-join(") || strings.Contains(out, "inl-join") {
		t.Errorf("twig plan not holistic:\n%s", out)
	}
	// The holistic plan must be estimated cheaper than the best
	// descendant-ordered binary pipeline for the same pattern.
	off := descOnly
	off.UseTwig = false
	withCost := exec.PlanCost(planFor(t, st, descOnly, twig3Query))
	withoutCost := exec.PlanCost(planFor(t, st, off, twig3Query))
	if withCost >= withoutCost {
		t.Errorf("twig plan not estimated cheaper: %.1f vs %.1f", withCost, withoutCost)
	}
	// With the anc-ordered emission enumerated, the order-preserving
	// structural tower undercuts even the twig on this flat-label star
	// (no path-solution buffering, no in-memory sort) — and the plan
	// must be fully streaming: no repair sort anywhere.
	autoOut := explain(t, st, M4(), twig3Query)
	if !strings.Contains(autoOut, "anc-ordered") {
		t.Errorf("full M4 did not choose the anc-ordered structural tower:\n%s", autoOut)
	}
	if strings.Contains(autoOut, "sort [external") {
		t.Errorf("full M4 plan pays a repair sort:\n%s", autoOut)
	}
	towerCost := exec.PlanCost(planFor(t, st, M4(), twig3Query))
	if towerCost >= withCost {
		t.Errorf("anc tower not estimated cheaper than the twig: %.1f vs %.1f", towerCost, withCost)
	}
}

func TestTwigDisabledByKnob(t *testing.T) {
	st := dblpStore(t)
	off := M4()
	off.UseTwig = false
	if out := explain(t, st, off, twig3Query); strings.Contains(out, "twig-join") {
		t.Errorf("twig join chosen with UseTwig=false:\n%s", out)
	}
	if out := explain(t, st, M3(), twig3Query); strings.Contains(out, "twig-join") {
		t.Errorf("M3 preset uses the twig join:\n%s", out)
	}
	if out := explain(t, st, M4BadStats(), twig3Query); strings.Contains(out, "twig-join") {
		t.Errorf("engine 2 model uses the twig join:\n%s", out)
	}
}

func TestTwigNotUsedForBinaryOrDisconnected(t *testing.T) {
	st := dblpStore(t)
	// Two relations: the binary structural merge join owns the pattern.
	if out := explain(t, st, M4(), `for $x in //inproceedings return for $y in $x//author return $y`); strings.Contains(out, "twig-join") {
		t.Errorf("twig join chosen for a binary pattern:\n%s", out)
	}
	// Value equi-join between otherwise unconnected branches: predicates
	// do not assemble into one twig, so the binary pipeline must serve.
	const disconnected = `for $a in //phdthesis//text() return for $b in //author/text() return if ($a = $b) then <same/> else ()`
	if out := explain(t, st, M4(), disconnected); strings.Contains(out, "twig-join") {
		t.Errorf("twig join chosen for disconnected predicates:\n%s", out)
	}
}

func TestTwigEquivalence(t *testing.T) {
	// Forcing the twig join on and off must not change any answer.
	st := dblpStore(t)
	queries := []string{
		twig3Query,
		`for $x in //article return for $a in $x//author return for $t in $x//title return $a`,
		`for $x in //article return if (some $v in $x/volume satisfies true()) then for $y in $x//author return $y else ()`,
		`for $x in //inproceedings return for $y in $x//author return $y`,
	}
	off := M4()
	off.UseTwig = false
	for _, q := range queries {
		var got [2]string
		for i, cfg := range []Config{M4(), off} {
			xplan := planFor(t, st, cfg, q)
			tmp, err := st.TempDir()
			if err != nil {
				t.Fatal(err)
			}
			out, err := exec.Run(&exec.Ctx{Store: st, TempDir: tmp, Env: exec.Env{}}, xplan)
			if err != nil {
				t.Fatalf("%q config %d: %v", q, i, err)
			}
			got[i] = string(out)
		}
		if got[0] != got[1] {
			t.Errorf("%q: twig join changed the answer\nwith:    %.200s\nwithout: %.200s", q, got[0], got[1])
		}
	}
}

// mixedTwigQuery is the partial-twig shape: the twig3 branching pattern
// mixed with an uncovered pass-fail relation no structural predicate
// reaches (the `some` relation joins by cross product).
const mixedTwigQuery = `for $x in //inproceedings return for $a in $x//author return for $t in $x//title return for $y in $x//year return if (some $p in //phdthesis satisfies true()) then $t else ()`

func TestPartialTwigAdoptedForMixedPattern(t *testing.T) {
	st := dblpStore(t)
	// Against descendant-ordered binary pipelines the partial twig wins:
	// a twig-join over the covered pattern with a binary join for the
	// uncovered relation on top — previously this query was
	// all-or-nothing and fell back to the binary pipeline.
	descOnly := M4()
	descOnly.StructuralEmit = EmitDesc
	out := explain(t, st, descOnly, mixedTwigQuery)
	if !strings.Contains(out, "twig-join") {
		t.Errorf("partial twig not adopted:\n%s", out)
	}
	if !strings.Contains(out, "-join(") && !strings.Contains(out, "inl-join") {
		t.Errorf("no parent join above the twig (not a composite plan):\n%s", out)
	}
	// No repair sort: the twig emits the covered vartuple prefix in order
	// and the joins above preserve it.
	if strings.Contains(out, "sort [external") {
		t.Errorf("composite plan pays a repair sort:\n%s", out)
	}
	// Full M4 additionally enumerates the anc-ordered structural tower,
	// which overtakes the composite on this flat-label star; whichever
	// side wins, the plan must stay sort-free.
	if autoOut := explain(t, st, M4(), mixedTwigQuery); strings.Contains(autoOut, "sort [external") {
		t.Errorf("full M4 mixed plan pays a repair sort:\n%s", autoOut)
	}
}

func TestPartialTwigDisabledByKnob(t *testing.T) {
	st := dblpStore(t)
	off := M4()
	off.UsePartialTwig = false
	off.StructuralEmit = EmitDesc // keep the twig the best remaining family
	// Without partial adoption the pattern has no full twig (the some
	// relation is disconnected), so no twig join may appear.
	if out := explain(t, st, off, mixedTwigQuery); strings.Contains(out, "twig-join") {
		t.Errorf("twig join chosen with UsePartialTwig=false:\n%s", out)
	}
	if out := explain(t, st, M4BadStats(), mixedTwigQuery); strings.Contains(out, "twig-join") {
		t.Errorf("engine 2 model uses the partial twig:\n%s", out)
	}
	// Full-coverage twigs are untouched by the knob.
	if out := explain(t, st, off, twig3Query); !strings.Contains(out, "twig-join") {
		t.Errorf("full twig lost with UsePartialTwig=false:\n%s", out)
	}
}

func TestPartialTwigEquivalenceAndCounters(t *testing.T) {
	st := dblpStore(t)
	queries := []string{
		mixedTwigQuery,
		// Twig + value predicate + uncovered relation.
		`for $x in //inproceedings return for $a in $x//author return for $t in $x//title return for $y in $x//year return for $yt in $y/text() return if ($yt = "1995" and some $p in //phdthesis satisfies true()) then $t else ()`,
		// Chain twig + value equi-join against a second component.
		`for $x in //inproceedings return for $a in $x//author return for $at in $a/text() return for $p in //phdthesis return for $pt in $p//text() return if ($at = $pt) then $at else ()`,
	}
	off := M4()
	off.UsePartialTwig = false
	for _, q := range queries {
		var got [2]string
		for i, cfg := range []Config{M4(), off} {
			xplan := planFor(t, st, cfg, q)
			tmp, err := st.TempDir()
			if err != nil {
				t.Fatal(err)
			}
			out, err := exec.Run(&exec.Ctx{Store: st, TempDir: tmp, Env: exec.Env{}}, xplan)
			if err != nil {
				t.Fatalf("%q config %d: %v", q, i, err)
			}
			got[i] = string(out)
		}
		if got[0] != got[1] {
			t.Errorf("%q: partial twig changed the answer\nwith:    %.200s\nwithout: %.200s", q, got[0], got[1])
		}
	}

	// Forced partial-twig execution: the twig branch does the pattern work
	// (RowsTwig) with zero sorted rows — the composite plan stays
	// order-preserving end to end.
	forced, ok := ForceJoin("twig")
	if !ok {
		t.Fatal("ForceJoin(twig)")
	}
	xplan := planFor(t, st, forced, mixedTwigQuery)
	tmp, err := st.TempDir()
	if err != nil {
		t.Fatal(err)
	}
	ctx := &exec.Ctx{Store: st, TempDir: tmp, Env: exec.Env{}}
	if _, err := exec.Run(ctx, xplan); err != nil {
		t.Fatal(err)
	}
	if ctx.Counters.RowsTwig == 0 {
		t.Errorf("forced partial twig did not run the twig join: %+v", ctx.Counters)
	}
	if ctx.Counters.SortedRows != 0 {
		t.Errorf("twig-led plan sorted %d rows, want 0", ctx.Counters.SortedRows)
	}
}

// TestPartialTwigExistentialNodeNoDuplicates is the regression test for a
// subtle dedup bug: a covered existential (non-vartuple) twig node with
// several matches per vartuple tie used to leak duplicate vartuples —
// after joining an uncovered bind relation on top, equal vartuples came
// back non-adjacent and the one-pass dedup projection missed them. The
// seed now projects existential nodes away directly above the twig (valid
// there: the twig emits sorted by the covered vartuple order).
func TestPartialTwigExistentialNodeNoDuplicates(t *testing.T) {
	st := loadStore(t, `<r><a><b/><b/><e/><e/></a><d/><d/></r>`)
	const q = `for $x in //a return for $t in $x//b return for $c in //d return if (some $s in $x//e satisfies true()) then $t else ()`
	const want = `<b/><b/><b/><b/>` // 2 b's × 2 d's, e is a pure witness
	for _, m := range []struct {
		name string
		cfg  Config
	}{
		{"auto", M4()},
		{"forced-twig", func() Config { c, _ := ForceJoin("twig"); return c }()},
		{"nopartial", func() Config { c := M4(); c.UsePartialTwig = false; return c }()},
	} {
		xplan := planFor(t, st, m.cfg, q)
		tmp, err := st.TempDir()
		if err != nil {
			t.Fatal(err)
		}
		out, err := exec.Run(&exec.Ctx{Store: st, TempDir: tmp, Env: exec.Env{}}, xplan)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if string(out) != want {
			t.Errorf("%s: got %q, want %q\n%s", m.name, out, want, exec.Explain(xplan))
		}
	}
}

func TestProbeCostCalibration(t *testing.T) {
	st := dblpStore(t)
	e := NewEstimator(st, StatsAccurate)
	// A probe can never cost more than a cold descent or less than the
	// CPU of walking a cached one.
	if p := e.ProbeCost(); p > probeBase || p < e.Height()*cpuPerTuple {
		t.Errorf("probe cost %g outside (%g, %g]", p, e.Height()*cpuPerTuple, probeBase)
	}
	// Warm the pool by scanning, then recalibrate: the hit rate can only
	// grow, so the probe charge must not increase.
	before := e.ProbeCost()
	if err := st.ScanAll(func(t xasr.Tuple) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := st.ScanAll(func(t xasr.Tuple) bool { return true }); err != nil {
		t.Fatal(err)
	}
	after := NewEstimator(st, StatsAccurate).ProbeCost()
	if after > before {
		t.Errorf("probe cost grew on a warmer pool: %g -> %g", before, after)
	}
}

func TestChildAxisArbitratedByCost(t *testing.T) {
	// The blanket gate is gone: with a highly selective descendant-side
	// stream the child-axis structural merge can now win against INL when
	// the estimates favor it, and the plan still executes correctly.
	st := dblpStore(t)
	const q = `for $y in //author return for $x in $y/note return $x`
	out := explain(t, st, M4(), q)
	if !strings.Contains(out, "structural-join") && !strings.Contains(out, "inl-join") {
		t.Errorf("no join operator chosen for the child step:\n%s", out)
	}
	// Whichever wins, the answer must match the gate-free loop plan.
	nl := M4()
	nl.UseStructural = false
	nl.UseINL = false
	nl.UseTwig = false
	var got [2]string
	for i, cfg := range []Config{M4(), nl} {
		xplan := planFor(t, st, cfg, q)
		tmp, err := st.TempDir()
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec.Run(&exec.Ctx{Store: st, TempDir: tmp, Env: exec.Env{}}, xplan)
		if err != nil {
			t.Fatal(err)
		}
		got[i] = string(res)
	}
	if got[0] != got[1] {
		t.Errorf("child-axis arbitration changed the answer:\n%.200s\nvs\n%.200s", got[0], got[1])
	}
}

func TestM3KeepsSyntacticOrder(t *testing.T) {
	st := dblpStore(t)
	// Example 6 query: M3 must keep article first (bind order), with the
	// volume condition relation after the binds.
	out := explain(t, st, M3(),
		`for $x in //article return if (some $v in $x/volume satisfies true()) then for $y in $x//author return $y else ()`)
	if !strings.Contains(out, "nl-join") {
		t.Errorf("M3 without NL joins:\n%s", out)
	}
	if strings.Contains(out, "inl-join") || strings.Contains(out, "sort") {
		t.Errorf("M3 used milestone 4 machinery:\n%s", out)
	}
}

func TestM4NonexistentLabelEstimatedEmpty(t *testing.T) {
	st := dblpStore(t)
	// The inner loop's label does not exist; with accurate statistics the
	// plan must carry a ~zero row estimate (and avoid per-article index
	// probes — either the cdrom relation leads, or it is the inner of a
	// lazily materialized nested-loops join that costs one empty scan).
	xplan := planFor(t, st, M4(), `for $x in //article return for $y in $x//cdrom return $y`)
	rf := findRelFor(xplan)
	if rf == nil {
		t.Fatal("no relfor in plan")
	}
	if est := rf.Root.Estimate(); est.Rows > 1 {
		t.Errorf("estimated %.1f rows for a non-existent label:\n%s", est.Rows, exec.Explain(xplan))
	}
	if out := explain(t, st, M4(), `for $x in //article return for $y in $x//cdrom return $y`); strings.Contains(out, "inl-join") {
		t.Errorf("per-article probes chosen for an empty relation:\n%s", out)
	}
}

func TestBadStatsKeepsUnselectiveOrder(t *testing.T) {
	st := dblpStore(t)
	// The engine 2 model: order-preserving only, uniform estimates. The
	// author loop must stay at the bottom (leading) despite the rare
	// note relation.
	xplan := planFor(t, st, M4BadStats(), `for $y in //author return for $x in $y/note return $x`)
	rf := findRelFor(xplan)
	lead := leftmostScan(rf.Root)
	if lead == nil || lead.Access.Value != "author" {
		t.Errorf("bad-stats engine reordered away from author:\n%s", exec.Explain(xplan))
	}
	// Accurate M4 anchors at note instead.
	xplan = planFor(t, st, M4(), `for $y in //author return for $x in $y/note return $x`)
	rf = findRelFor(xplan)
	lead = leftmostScan(rf.Root)
	if lead == nil || lead.Access.Value != "note" {
		t.Errorf("accurate engine did not anchor at note:\n%s", exec.Explain(xplan))
	}
}

func TestSemijoinProjectionPush(t *testing.T) {
	st := dblpStore(t)
	cfg := M4()
	cfg.Strategies = OrderPreserve | OrderSemijoin // no sort: force QP2 shape
	cfg.UseBNL = false
	cfg.UseTwig = false // the holistic twig would otherwise absorb the whole pattern
	out := explain(t, st, cfg,
		`for $x in //article return if (some $v in $x/volume satisfies true()) then for $y in $x//author return $y else ()`)
	// The projection must appear below the top (two projections total:
	// the semijoin push and the final one).
	if strings.Count(out, "project") < 2 {
		t.Errorf("no pushed projection (QP2 shape):\n%s", out)
	}
}

func TestEstimatorModes(t *testing.T) {
	st := dblpStore(t)
	acc := NewEstimator(st, StatsAccurate)
	uni := NewEstimator(st, StatsUniform)
	authorAcc := acc.labelCard("author")
	authorUni := uni.labelCard("author")
	noteAcc := acc.labelCard("note")
	noteUni := uni.labelCard("note")
	if authorAcc <= noteAcc {
		t.Errorf("accurate cards not skewed: author=%f note=%f", authorAcc, noteAcc)
	}
	if authorUni != noteUni {
		t.Errorf("uniform cards differ: author=%f note=%f", authorUni, noteUni)
	}
	// Nonexistent labels: accurate sees zero, uniform does not.
	if acc.labelCard("cdrom") != 0 {
		t.Errorf("accurate card for missing label: %f", acc.labelCard("cdrom"))
	}
	if uni.labelCard("cdrom") == 0 {
		t.Error("uniform card for missing label is zero")
	}
}

func TestDescendantPairSelUsesSubtreeSums(t *testing.T) {
	st := dblpStore(t)
	e := NewEstimator(st, StatsAccurate)
	stats := st.Stats()
	// With accurate statistics the ancestor dimension is exact:
	// sel · C_anc · N must reproduce the collected subtree sum.
	sum, ok := stats.SubtreeSum("article")
	if !ok || sum == 0 {
		t.Fatal("no subtree sum collected for article")
	}
	sel := e.DescendantPairSel("article", true)
	got := sel * float64(stats.Card("article")) * e.Relation()
	if got < float64(sum)*0.99 || got > float64(sum)*1.01 {
		t.Errorf("pairs from sel = %.1f, want %d", got, sum)
	}
	gross := clamp01(e.AvgSubtree() / e.Relation())
	// Unlabeled ancestors fall back to the gross avgDepth measure.
	if s := e.DescendantPairSel("", false); s != gross {
		t.Errorf("fallback sel = %g, want %g", s, gross)
	}
	// A nonexistent ancestor label contributes no pairs.
	if s := e.DescendantPairSel("cdrom", true); s != 0 {
		t.Errorf("sel for missing label = %g, want 0", s)
	}
	// The engine 2 model (uniform stats) must not see the exact sums.
	u := NewEstimator(st, StatsUniform)
	if s := u.DescendantPairSel("article", true); s != clamp01(u.AvgSubtree()/u.Relation()) {
		t.Errorf("uniform-mode sel = %g uses accurate sums", s)
	}
}

func TestStructuralJoinBowsToSortCost(t *testing.T) {
	// Deep same-label nesting makes descendant pairs plentiful: the
	// sort-needing merge-join plan must lose to the order-preserving INL
	// plan once the repair sort is priced with realistic cardinalities.
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < 60; i++ {
		b.WriteString("<S><x/>")
	}
	for i := 0; i < 200; i++ {
		b.WriteString("<NN>t</NN>")
	}
	for i := 0; i < 60; i++ {
		b.WriteString("</S>")
	}
	b.WriteString("</root>")
	st := loadStore(t, b.String())
	const q = `for $s in //S return if (some $n in $s//NN satisfies true()) then <nn/> else ()`
	descOnly := M4()
	descOnly.StructuralEmit = EmitDesc
	out := explain(t, st, descOnly, q)
	if strings.Contains(out, "structural-join") {
		t.Errorf("sort-needing structural plan chosen over order-preserving INL:\n%s", out)
	}
	// With both emissions enumerated, a structural plan may return — but
	// only the anc-ordered variant (which needs no repair sort); the
	// deep nesting's buffering is priced instead of the sort.
	autoOut := explain(t, st, M4(), q)
	if strings.Contains(autoOut, "structural-join") && !strings.Contains(autoOut, "anc-ordered") {
		t.Errorf("descendant-ordered structural plan chosen under full M4:\n%s", autoOut)
	}
	if strings.Contains(autoOut, "sort [external") {
		t.Errorf("full M4 plan pays a repair sort:\n%s", autoOut)
	}
}

func TestM4PicksAncOrderedForAncestorFirstVartuple(t *testing.T) {
	st := dblpStore(t)
	// The most common milestone shape: ancestor bound first, descendant
	// second. The descendant-ordered merge leads with the descendant and
	// needs an external repair sort; the anc-ordered merge streams in
	// vartuple order. Full M4 must take the streaming plan.
	const q = `for $x in //article return for $y in $x//author return $y`
	out := explain(t, st, M4(), q)
	if !strings.Contains(out, "structural-join") || !strings.Contains(out, "anc-ordered") {
		t.Errorf("M4 did not choose the anc-ordered structural join:\n%s", out)
	}
	if strings.Contains(out, "sort [external") {
		t.Errorf("anc-ordered plan still pays a repair sort:\n%s", out)
	}
	// The forced descendant-order family must keep the PR2-era shape:
	// a structural join repaired by an external sort.
	descCfg, ok := ForceJoin("structural")
	if !ok {
		t.Fatal("ForceJoin(structural)")
	}
	descOut := explain(t, st, descCfg, q)
	if strings.Contains(descOut, "anc-ordered") {
		t.Errorf("forced desc family produced an anc-ordered join:\n%s", descOut)
	}
	if !strings.Contains(descOut, "sort [external") {
		t.Errorf("forced desc family plan has no repair sort:\n%s", descOut)
	}
	// The forced anc family mirrors it without the sort.
	ancCfg, ok := ForceJoin("structural-anc")
	if !ok {
		t.Fatal("ForceJoin(structural-anc)")
	}
	ancOut := explain(t, st, ancCfg, q)
	if !strings.Contains(ancOut, "anc-ordered") || strings.Contains(ancOut, "sort [external") {
		t.Errorf("forced anc family plan wrong:\n%s", ancOut)
	}
	// The anc plan must be estimated cheaper than the sort-repaired one.
	ancCost := exec.PlanCost(planFor(t, st, ancCfg, q))
	descCost := exec.PlanCost(planFor(t, st, descCfg, q))
	if ancCost >= descCost {
		t.Errorf("anc plan not estimated cheaper: %.1f vs %.1f", ancCost, descCost)
	}
}

func TestStructuralEmitEquivalence(t *testing.T) {
	// The emission order is a physical property: every emission
	// restriction must produce byte-identical answers.
	st := dblpStore(t)
	queries := []string{
		`for $x in //article return for $y in $x//author return $y`,
		`for $y in //author return for $x in $y/note return $x`,
		twig3Query,
		mixedTwigQuery,
		`for $x in //article return if (some $v in $x/volume satisfies true()) then for $y in $x//author return $y else ()`,
	}
	ancForced, _ := ForceJoin("structural-anc")
	descForced, _ := ForceJoin("structural")
	descOnly := M4()
	descOnly.StructuralEmit = EmitDesc
	cfgs := []Config{M4(), descOnly, ancForced, descForced}
	for _, q := range queries {
		var want string
		for i, cfg := range cfgs {
			xplan := planFor(t, st, cfg, q)
			tmp, err := st.TempDir()
			if err != nil {
				t.Fatal(err)
			}
			out, err := exec.Run(&exec.Ctx{Store: st, TempDir: tmp, Env: exec.Env{}}, xplan)
			if err != nil {
				t.Fatalf("%q config %d: %v", q, i, err)
			}
			if i == 0 {
				want = string(out)
				continue
			}
			if string(out) != want {
				t.Errorf("%q: config %d diverges\nwant: %.200s\ngot:  %.200s", q, i, want, out)
			}
		}
	}
}

func TestTextEquiJoinSelectivityUsesDistinctStat(t *testing.T) {
	st := dblpStore(t)
	stats := st.Stats()
	e := NewEstimator(st, StatsAccurate)
	// The statistic is collected: years repeat heavily, so the distinct
	// count must be far below the text-node count.
	vYear, ok := stats.DistinctTexts("year")
	if !ok || vYear <= 0 {
		t.Fatalf("no distinct-text stat for year: %d (ok=%v)", vYear, ok)
	}
	if vYear >= stats.Texts/4 {
		t.Fatalf("year distinct count %d not dense vs %d texts", vYear, stats.Texts)
	}
	// Known labels use 1/max(V_l, V_r); the near-unique guess only
	// survives when no label is known.
	got := e.TextEquiJoinSel("year", true, "year", true)
	if want := 1 / float64(vYear); got < want*0.99 || got > want*1.01 {
		t.Errorf("year=year selectivity %g, want %g", got, want)
	}
	fallback := 1 / float64(stats.Texts)
	if got := e.TextEquiJoinSel("", false, "", false); got != fallback {
		t.Errorf("label-free selectivity %g, want fallback %g", got, fallback)
	}
	if got <= fallback {
		t.Errorf("dense year join %g not estimated denser than the near-unique guess %g", got, fallback)
	}
	// One-sided labels still improve on the guess.
	oneSided := e.TextEquiJoinSel("year", true, "", false)
	if oneSided != 1/float64(vYear) {
		t.Errorf("one-sided selectivity %g, want %g", oneSided, 1/float64(vYear))
	}
	// Degraded statistics modes never see the statistic.
	u := NewEstimator(st, StatsUniform)
	if got := u.TextEquiJoinSel("year", true, "year", true); got != 1/float64(stats.Texts) {
		t.Errorf("uniform mode used the distinct stat: %g", got)
	}
	// The planner wires it through crossSelectivity: a year=year value
	// join between two labeled parents must be estimated at the dense
	// selectivity, not the near-unique one.
	p := New(st, M4())
	const q = `for $a in //article return for $ay in $a/year return for $at in $ay/text() return for $b in //inproceedings return for $by in $b/year return for $bt in $by/text() return if ($at = $bt) then <hit/> else ()`
	plan := tpm.Merge(tpm.Rewrite(xq.MustParse(q)))
	var psx *tpm.PSX
	var walk func(tpm.Plan)
	walk = func(pl tpm.Plan) {
		switch pl := pl.(type) {
		case *tpm.RelFor:
			psx = pl.Alg
			walk(pl.Body)
		case *tpm.Seq:
			for _, it := range pl.Items {
				walk(it)
			}
		case *tpm.Constr:
			walk(pl.Body)
		case *tpm.RuntimeIf:
			walk(pl.Then)
		}
	}
	walk(plan)
	if psx == nil {
		t.Fatal("no PSX in plan")
	}
	info := p.analyze(psx)
	var valueJoin *tpm.Cmp
	for i := range info.cross {
		c := info.cross[i]
		if c.Op == tpm.CmpEq && c.Left.Kind == tpm.OpAttr && c.Right.Kind == tpm.OpAttr &&
			c.Left.Attr.Col == tpm.ColValue && c.Right.Attr.Col == tpm.ColValue {
			valueJoin = &info.cross[i]
		}
	}
	if valueJoin == nil {
		t.Fatal("no text-value equi-join recovered from the query")
	}
	if got := p.residCondSel(info, *valueJoin); got != 1/float64(vYear) {
		t.Errorf("planner-level value-join selectivity %g, want %g (1/distinct(year))", got, 1/float64(vYear))
	}
}

func TestForcedTwigRemainderKeepsINL(t *testing.T) {
	st := dblpStore(t)
	// The covered twig (x, a, t, y) leads; the uncovered second component
	// (p, s with p//s) joins on top. Under the forced twig family UseINL
	// is off, but TwigRemainderINL keeps the interval-bounded probe for
	// the uncovered s — previously a full-scan NL inner.
	const q = `for $x in //inproceedings return for $a in $x//author return for $t in $x//title return for $y in $x//year return if (some $p in //phdthesis satisfies some $s in $p//author satisfies true()) then $t else ()`
	forced, ok := ForceJoin("twig")
	if !ok {
		t.Fatal("ForceJoin(twig)")
	}
	out := explain(t, st, forced, q)
	if !strings.Contains(out, "twig-join") {
		t.Fatalf("forced twig family did not adopt the subtwig:\n%s", out)
	}
	if !strings.Contains(out, "inl-join") || !strings.Contains(out, ".in+1") {
		t.Errorf("uncovered remainder not served by an interval-bounded INL:\n%s", out)
	}
	// The knob off restores the old full-scan NL behavior.
	noINL := forced
	noINL.TwigRemainderINL = false
	outOff := explain(t, st, noINL, q)
	if strings.Contains(outOff, "inl-join") {
		t.Errorf("remainder INL used with TwigRemainderINL=false:\n%s", outOff)
	}
	// Same answers either way.
	var got [2]string
	for i, cfg := range []Config{forced, noINL} {
		xplan := planFor(t, st, cfg, q)
		tmp, err := st.TempDir()
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec.Run(&exec.Ctx{Store: st, TempDir: tmp, Env: exec.Env{}}, xplan)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		got[i] = string(res)
	}
	if got[0] != got[1] {
		t.Errorf("remainder INL changed the answer:\n%.200s\nvs\n%.200s", got[0], got[1])
	}
}

func TestDescendantSelectivityUsesAvgDepth(t *testing.T) {
	st := dblpStore(t)
	e := NewEstimator(st, StatsAccurate)
	pair := []tpm.Cmp{
		tpm.Gt(tpm.AttrOp("B", tpm.ColIn), tpm.AttrOp("A", tpm.ColIn)),
		tpm.Lt(tpm.AttrOp("B", tpm.ColOut), tpm.AttrOp("A", tpm.ColOut)),
	}
	sel := 1.0
	for _, c := range pair {
		sel *= e.condSelectivity(c)
	}
	want := e.AvgSubtree() / e.Relation()
	if sel < want/2 || sel > want*2 {
		t.Errorf("descendant pair selectivity %g, want ≈ %g (avgDepth/N)", sel, want)
	}
}

func TestPlansExecuteCorrectly(t *testing.T) {
	// Every configuration must produce the same answer on the Example 6
	// query (plan choice must never change semantics).
	st := dblpStore(t)
	const q = `for $x in //article return if (some $v in $x/volume satisfies true()) then for $y in $x//author return $y else ()`
	var want string
	for i, cfg := range []Config{M4(), M4BadStats(), M3(), NaiveTPM()} {
		xplan := planFor(t, st, cfg, q)
		tmp, err := st.TempDir()
		if err != nil {
			t.Fatal(err)
		}
		out, err := exec.Run(&exec.Ctx{Store: st, TempDir: tmp, Env: exec.Env{}}, xplan)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if i == 0 {
			want = string(out)
			continue
		}
		if string(out) != want {
			t.Errorf("config %d result diverges (%d vs %d bytes)", i, len(out), len(want))
		}
	}
	if want == "" {
		t.Error("Example 6 query returned no results; generator shape wrong?")
	}
}

// findRelFor returns the first XRelFor in the plan.
func findRelFor(p exec.XPlan) *exec.XRelFor {
	switch p := p.(type) {
	case *exec.XRelFor:
		return p
	case *exec.XConstr:
		return findRelFor(p.Body)
	case *exec.XSeq:
		for _, it := range p.Items {
			if rf := findRelFor(it); rf != nil {
				return rf
			}
		}
	case *exec.XIf:
		return findRelFor(p.Then)
	}
	return nil
}

// leftmostScan descends to the leading scan of a physical tree.
func leftmostScan(n exec.PlanNode) *exec.Scan {
	for {
		if s, ok := n.(*exec.Scan); ok {
			return s
		}
		ch := n.Children()
		if len(ch) == 0 {
			return nil
		}
		n = ch[0]
	}
}

package tpm

import (
	"fmt"
	"strings"
)

// Format renders a plan as an indented operator tree in the style of the
// figures in the paper, e.g. for Example 2 after merging (Figure 4):
//
//	constr(names)
//	  relfor ($j, $n)
//	    alg: π(J.in, N2.in)
//	         σ(J.parent_in = 1 ∧ J.type = elem ∧ J.value = journal ∧ ...)
//	         ×(XASR[J], XASR[N2])
//	    return
//	      emit($n)
//
// The output is stable and used in golden tests for Figures 3-5.
func Format(p Plan) string {
	var b strings.Builder
	format(&b, p, 0)
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func format(b *strings.Builder, p Plan, depth int) {
	indent(b, depth)
	switch p := p.(type) {
	case Empty:
		b.WriteString("()\n")
	case *Text:
		fmt.Fprintf(b, "text(%q)\n", p.Content)
	case *Emit:
		fmt.Fprintf(b, "emit($%s)\n", p.Var)
	case *Constr:
		fmt.Fprintf(b, "constr(%s)\n", p.Label)
		format(b, p.Body, depth+1)
	case *Seq:
		b.WriteString("seq\n")
		for _, it := range p.Items {
			format(b, it, depth+1)
		}
	case *RuntimeIf:
		fmt.Fprintf(b, "if[runtime] %s\n", p.Cond)
		format(b, p.Then, depth+1)
	case *RelFor:
		vars := make([]string, len(p.Vars))
		for i, v := range p.Vars {
			vars[i] = "$" + v
		}
		fmt.Fprintf(b, "relfor (%s)\n", strings.Join(vars, ", "))
		formatAlg(b, p.Alg, depth+1)
		indent(b, depth+1)
		b.WriteString("return\n")
		format(b, p.Body, depth+2)
	default:
		fmt.Fprintf(b, "?%T\n", p)
	}
}

func formatAlg(b *strings.Builder, alg *PSX, depth int) {
	indent(b, depth)
	var proj []string
	for _, bind := range alg.Bind {
		proj = append(proj, bind.Rel+".in")
	}
	fmt.Fprintf(b, "alg: π(%s)\n", strings.Join(proj, ", "))
	var conds []string
	for _, c := range alg.Conds {
		conds = append(conds, c.String())
	}
	indent(b, depth)
	fmt.Fprintf(b, "     σ(%s)\n", strings.Join(conds, " ∧ "))
	var rels []string
	for _, r := range alg.Rels {
		rels = append(rels, "XASR["+r+"]")
	}
	indent(b, depth)
	fmt.Fprintf(b, "     ×(%s)\n", strings.Join(rels, ", "))
}

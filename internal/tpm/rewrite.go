package tpm

import (
	"fmt"
	"strings"

	"xqdb/internal/xasr"
	"xqdb/internal/xq"
)

// Rewriter translates XQ expressions into TPM plans, generating unique
// relation aliases in the paper's style (J for journal, N2 for the second
// name relation, and so on).
type Rewriter struct {
	used map[string]bool
	seq  int
}

// NewRewriter returns a fresh rewriter.
func NewRewriter() *Rewriter { return &Rewriter{used: map[string]bool{}} }

// Rewrite translates a validated XQ query into an (unmerged, unoptimized)
// TPM plan: every for-loop becomes its own relfor, every TPM-expressible
// if-condition becomes a nullary relfor, everything else stays structural.
func Rewrite(q xq.Expr) Plan {
	return NewRewriter().RewriteExpr(q)
}

// alias produces a fresh relation alias derived from a node test, like the
// paper's J, N1, N2, T1, T2.
func (rw *Rewriter) alias(test xq.NodeTest) string {
	var base string
	switch test.Kind {
	case xq.TestText:
		base = "T"
	case xq.TestStar:
		base = "S"
	default:
		base = strings.ToUpper(test.Label[:1])
	}
	if !rw.used[base] {
		rw.used[base] = true
		return base
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s%d", base, i)
		if !rw.used[cand] {
			rw.used[cand] = true
			return cand
		}
	}
}

func (rw *Rewriter) freshVar() string {
	rw.seq++
	return fmt.Sprintf("#p%d", rw.seq)
}

// RewriteExpr translates one expression.
func (rw *Rewriter) RewriteExpr(q xq.Expr) Plan {
	switch q := q.(type) {
	case xq.Empty:
		return Empty{}
	case *xq.TextLit:
		return &Text{Content: q.Text}
	case *xq.VarRef:
		return &Emit{Var: q.Name}
	case *xq.Constr:
		return &Constr{Label: q.Label, Body: rw.RewriteExpr(q.Body)}
	case *xq.Seq:
		items := make([]Plan, len(q.Items))
		for i, it := range q.Items {
			items[i] = rw.RewriteExpr(it)
		}
		return &Seq{Items: items}
	case *xq.PathExpr:
		// var/axis::ν as a query is for $p in var/axis::ν return $p.
		v := rw.freshVar()
		return rw.relforStep(v, q.Step, &Emit{Var: v})
	case *xq.For:
		return rw.relforStep(q.Var, q.In, rw.RewriteExpr(q.Body))
	case *xq.If:
		return rw.rewriteIf(q)
	default:
		panic(fmt.Sprintf("tpm: unknown expression %T", q))
	}
}

// relforStep builds the relfor for one navigation step, the paper's
// rewrite rules for child and descendant for-loops.
func (rw *Rewriter) relforStep(v string, step xq.Step, body Plan) Plan {
	alias := rw.alias(step.Test)
	psx := &PSX{
		Bind:  []VarBinding{{Var: v, Rel: alias}},
		Conds: rw.stepConds(alias, step, nil),
		Rels:  []string{alias},
	}
	return &RelFor{Vars: []string{v}, Alg: psx, Body: body}
}

// stepConds derives the PSX conditions for a step binding relation alias.
// varRel maps variables bound inside the surrounding condition (by some)
// to their relation aliases; all other variables become external operands
// resolved at runtime (or substituted by the merge rule).
func (rw *Rewriter) stepConds(alias string, step xq.Step, varRel map[string]string) []Cmp {
	var conds []Cmp
	switch {
	case step.Base == xq.RootVar && step.Axis == xq.Child:
		// The root always has in-value 1 in the XASR encoding.
		conds = append(conds, Eq(AttrOp(alias, ColParentIn), InOp(store1)))
	case step.Base == xq.RootVar && step.Axis == xq.Descendant:
		conds = append(conds, Gt(AttrOp(alias, ColIn), InOp(store1)))
	default:
		baseIn := VarInOp(step.Base)
		baseOut := VarOutOp(step.Base)
		if rel, ok := varRel[step.Base]; ok {
			baseIn = AttrOp(rel, ColIn)
			baseOut = AttrOp(rel, ColOut)
		}
		if step.Axis == xq.Child {
			conds = append(conds, Eq(AttrOp(alias, ColParentIn), baseIn))
		} else {
			conds = append(conds,
				Gt(AttrOp(alias, ColIn), baseIn),
				Lt(AttrOp(alias, ColOut), baseOut))
		}
	}
	switch step.Test.Kind {
	case xq.TestLabel:
		conds = append(conds,
			Eq(AttrOp(alias, ColType), TypeOp(xasr.TypeElem)),
			Eq(AttrOp(alias, ColValue), StrOp(step.Test.Label)))
	case xq.TestStar:
		conds = append(conds, Eq(AttrOp(alias, ColType), TypeOp(xasr.TypeElem)))
	case xq.TestText:
		conds = append(conds, Eq(AttrOp(alias, ColType), TypeOp(xasr.TypeText)))
	}
	return conds
}

// store1 is the root's in label (always 1 in the XASR encoding).
const store1 = 1

// CondIsTPM reports whether a condition lies in the TPM-rewritable
// fragment: built from true(), equality tests, some and and — but not or,
// not, or every (the paper's restriction, because only pass-fail decisions
// map to the algebra).
func CondIsTPM(c xq.Cond) bool {
	switch c := c.(type) {
	case xq.True:
		return true
	case *xq.VarEqVar, *xq.VarEqStr:
		return true
	case *xq.Some:
		return CondIsTPM(c.Sat)
	case *xq.And:
		return CondIsTPM(c.Left) && CondIsTPM(c.Right)
	default:
		return false
	}
}

// rewriteIf translates if-expressions: TPM-able conditions become the
// paper's "relfor () in ALG(φ) return α"; others stay as runtime checks.
func (rw *Rewriter) rewriteIf(q *xq.If) Plan {
	then := rw.RewriteExpr(q.Then)
	if !CondIsTPM(q.Cond) {
		return &RuntimeIf{Cond: q.Cond, Then: then}
	}
	conds, rels := rw.condAlg(q.Cond, map[string]string{})
	if len(rels) == 0 && len(conds) == 0 {
		// if true() then α ≡ α.
		return then
	}
	return &RelFor{Vars: nil, Alg: &PSX{Conds: conds, Rels: rels}, Body: then}
}

// condAlg maps a TPM-able condition to conjunctive conditions over fresh
// XASR relation instances (the paper's ALG(φ)).
func (rw *Rewriter) condAlg(c xq.Cond, varRel map[string]string) (conds []Cmp, rels []string) {
	switch c := c.(type) {
	case xq.True:
		return nil, nil
	case *xq.VarEqStr:
		// $x = "s" holds iff the node bound to $x is a text node with
		// value s: join a fresh relation on in-equality.
		alias := rw.alias(xq.NodeTest{Kind: xq.TestText})
		in := rw.varInOperand(c.Var, varRel)
		return []Cmp{
			Eq(AttrOp(alias, ColIn), in),
			Eq(AttrOp(alias, ColType), TypeOp(xasr.TypeText)),
			Eq(AttrOp(alias, ColValue), StrOp(c.Str)),
		}, []string{alias}
	case *xq.VarEqVar:
		a1 := rw.alias(xq.NodeTest{Kind: xq.TestText})
		a2 := rw.alias(xq.NodeTest{Kind: xq.TestText})
		in1 := rw.varInOperand(c.Left, varRel)
		in2 := rw.varInOperand(c.Right, varRel)
		return []Cmp{
			Eq(AttrOp(a1, ColIn), in1),
			Eq(AttrOp(a2, ColIn), in2),
			Eq(AttrOp(a1, ColType), TypeOp(xasr.TypeText)),
			Eq(AttrOp(a2, ColType), TypeOp(xasr.TypeText)),
			Eq(AttrOp(a1, ColValue), AttrOp(a2, ColValue)),
		}, []string{a1, a2}
	case *xq.Some:
		alias := rw.alias(c.In.Test)
		conds = rw.stepConds(alias, c.In, varRel)
		rels = []string{alias}
		inner := make(map[string]string, len(varRel)+1)
		for k, v := range varRel {
			inner[k] = v
		}
		inner[c.Var] = alias
		ic, ir := rw.condAlg(c.Sat, inner)
		return append(conds, ic...), append(rels, ir...)
	case *xq.And:
		lc, lr := rw.condAlg(c.Left, varRel)
		rc, rr := rw.condAlg(c.Right, varRel)
		return append(lc, rc...), append(lr, rr...)
	default:
		panic(fmt.Sprintf("tpm: condAlg on non-TPM condition %T", c))
	}
}

func (rw *Rewriter) varInOperand(v string, varRel map[string]string) Operand {
	if rel, ok := varRel[v]; ok {
		return AttrOp(rel, ColIn)
	}
	return VarInOp(v)
}

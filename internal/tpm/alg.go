// Package tpm implements the TPM algebra of milestone 3: projections,
// selections, cross products and joins over XASR relations, plus the
// "super-for-loop" operator relfor, together with the rewriting of XQ
// queries into TPM and the relfor merging rule.
//
// Relational subexpressions are kept in project-select-product normal form
// (PSX in the paper):
//
//	π(A1..Am) σ(φ1 ∧ … ∧ φk) (R1 × … × Rn)
//
// with atomic conditions comparing attributes, constants and the values of
// externally bound variables. Following the paper's own improvement, relfor
// vartuples carry both the in- and out-values of each binding, so
// descendant steps from an outer variable need no extra self-join to
// recover the out-value.
package tpm

import (
	"fmt"
	"strings"

	"xqdb/internal/xasr"
)

// Col names a column of the XASR Node relation.
type Col uint8

// XASR columns.
const (
	ColIn Col = iota
	ColOut
	ColParentIn
	ColType
	ColValue
)

// String returns the schema name of the column.
func (c Col) String() string {
	switch c {
	case ColIn:
		return "in"
	case ColOut:
		return "out"
	case ColParentIn:
		return "parent_in"
	case ColType:
		return "type"
	case ColValue:
		return "value"
	}
	return fmt.Sprintf("col(%d)", uint8(c))
}

// Attr is a column of a named relation instance, e.g. J.in.
type Attr struct {
	Rel string
	Col Col
}

// String formats the attribute as Rel.col.
func (a Attr) String() string { return a.Rel + "." + a.Col.String() }

// OperandKind discriminates comparison operands.
type OperandKind uint8

// Operand kinds: an attribute, a string constant (for value), a node-type
// constant, an in-label constant (the root's in = 1), and the in/out
// components of an externally bound variable.
const (
	OpAttr OperandKind = iota
	OpConstStr
	OpConstType
	OpConstIn
	OpVarIn
	OpVarOut
)

// Operand is one side of an atomic comparison.
type Operand struct {
	Kind OperandKind
	Attr Attr          // OpAttr
	Str  string        // OpConstStr
	Type xasr.NodeType // OpConstType
	In   uint32        // OpConstIn
	Var  string        // OpVarIn / OpVarOut
}

// String renders the operand in the paper's notation.
func (o Operand) String() string {
	switch o.Kind {
	case OpAttr:
		return o.Attr.String()
	case OpConstStr:
		return o.Str
	case OpConstType:
		return o.Type.String()
	case OpConstIn:
		return fmt.Sprintf("%d", o.In)
	case OpVarIn:
		return "$" + o.Var
	case OpVarOut:
		return "$" + o.Var + ".out"
	}
	return "?"
}

// AttrOp returns an attribute operand.
func AttrOp(rel string, col Col) Operand {
	return Operand{Kind: OpAttr, Attr: Attr{Rel: rel, Col: col}}
}

// StrOp returns a string-constant operand.
func StrOp(s string) Operand { return Operand{Kind: OpConstStr, Str: s} }

// TypeOp returns a node-type constant operand.
func TypeOp(t xasr.NodeType) Operand { return Operand{Kind: OpConstType, Type: t} }

// InOp returns an in-label constant operand.
func InOp(in uint32) Operand { return Operand{Kind: OpConstIn, In: in} }

// VarInOp returns the in-value of an external variable binding.
func VarInOp(v string) Operand { return Operand{Kind: OpVarIn, Var: v} }

// VarOutOp returns the out-value of an external variable binding.
func VarOutOp(v string) Operand { return Operand{Kind: OpVarOut, Var: v} }

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators of TPM conditions.
const (
	CmpEq CmpOp = iota
	CmpLt
	CmpGt
)

// String renders the operator.
func (o CmpOp) String() string {
	switch o {
	case CmpEq:
		return "="
	case CmpLt:
		return "<"
	case CmpGt:
		return ">"
	}
	return "?"
}

// Cmp is an atomic condition Left op Right.
type Cmp struct {
	Op    CmpOp
	Left  Operand
	Right Operand
}

// String renders the condition, e.g. "J.parent_in = 1".
func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Eq builds an equality condition.
func Eq(l, r Operand) Cmp { return Cmp{Op: CmpEq, Left: l, Right: r} }

// Lt builds a less-than condition.
func Lt(l, r Operand) Cmp { return Cmp{Op: CmpLt, Left: l, Right: r} }

// Gt builds a greater-than condition.
func Gt(l, r Operand) Cmp { return Cmp{Op: CmpGt, Left: l, Right: r} }

// Rels returns the relation aliases the condition touches (0, 1 or 2).
func (c Cmp) Rels() []string {
	var rels []string
	if c.Left.Kind == OpAttr {
		rels = append(rels, c.Left.Attr.Rel)
	}
	if c.Right.Kind == OpAttr && (len(rels) == 0 || rels[0] != c.Right.Attr.Rel) {
		rels = append(rels, c.Right.Attr.Rel)
	}
	return rels
}

// HasVar reports whether the condition references an external variable.
func (c Cmp) HasVar() bool {
	return c.Left.Kind == OpVarIn || c.Left.Kind == OpVarOut ||
		c.Right.Kind == OpVarIn || c.Right.Kind == OpVarOut
}

// VarBinding records that a relfor variable is bound to the (in, out) of
// one relation instance of the PSX expression.
type VarBinding struct {
	Var string
	Rel string
}

// PSX is a relational algebra expression in project-select-product normal
// form over XASR relation instances.
type PSX struct {
	// Bind is the vartuple: each entry projects (Rel.in, Rel.out) and
	// binds them to Var. An empty Bind is the nullary projection π(),
	// used for pass-fail condition checks.
	Bind []VarBinding
	// Conds is the conjunction of atomic conditions.
	Conds []Cmp
	// Rels lists the XASR relation instances (aliases) in syntactic
	// order; physical join order is chosen by the optimizer.
	Rels []string
}

// Clone returns a deep copy.
func (p *PSX) Clone() *PSX {
	q := &PSX{
		Bind:  append([]VarBinding(nil), p.Bind...),
		Conds: append([]Cmp(nil), p.Conds...),
		Rels:  append([]string(nil), p.Rels...),
	}
	return q
}

// BindingRel returns the relation alias a variable is bound to, or "".
func (p *PSX) BindingRel(v string) string {
	for _, b := range p.Bind {
		if b.Var == v {
			return b.Rel
		}
	}
	return ""
}

// RelConds partitions the conditions for one relation alias: conds that
// touch only that relation (and constants/variables) versus the rest.
func (p *PSX) RelConds(rel string) (local, other []Cmp) {
	for _, c := range p.Conds {
		rs := c.Rels()
		if len(rs) == 1 && rs[0] == rel {
			local = append(local, c)
		} else {
			other = append(other, c)
		}
	}
	return local, other
}

// ExternalVars returns the external variables referenced by conditions.
func (p *PSX) ExternalVars() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range p.Conds {
		for _, op := range []Operand{c.Left, c.Right} {
			if (op.Kind == OpVarIn || op.Kind == OpVarOut) && !seen[op.Var] {
				seen[op.Var] = true
				out = append(out, op.Var)
			}
		}
	}
	return out
}

// String renders the PSX in the paper's abbreviation
// PSX((attrs), conds, (rels)).
func (p *PSX) String() string {
	var attrs []string
	for _, b := range p.Bind {
		attrs = append(attrs, b.Rel+".in")
	}
	var conds []string
	for _, c := range p.Conds {
		conds = append(conds, c.String())
	}
	var rels []string
	for _, r := range p.Rels {
		rels = append(rels, "XASR["+r+"]")
	}
	return fmt.Sprintf("PSX((%s), %s, (%s))",
		strings.Join(attrs, ", "),
		strings.Join(conds, " ∧ "),
		strings.Join(rels, ", "))
}

package tpm

// Merge applies the paper's relfor merging rule throughout the plan:
//
//	relfor X in PSX(A, φ, R) return relfor Y in PSX(B, ψ, S) return α
//	⊢ relfor X·Y in PSX(A·B, φ ∧ ψ′, R·S) return α
//
// where ψ′ replaces each occurrence of an outer variable $xi by its bound
// attribute. The rule is applied only to *directly* nested relfors — if a
// construction (or anything else) sits between them, the paper shows that
// merging would lose empty constructions, so those stay separate. After
// merging, redundant relation copies joined on in-equality are eliminated
// ("because N1.in = $j = J.in, the relations J and N1 are the same and we
// can safely drop N1", Example 4).
func Merge(p Plan) Plan {
	switch p := p.(type) {
	case *Constr:
		return &Constr{Label: p.Label, Body: Merge(p.Body)}
	case *Seq:
		items := make([]Plan, len(p.Items))
		for i, it := range p.Items {
			items[i] = Merge(it)
		}
		return &Seq{Items: items}
	case *RuntimeIf:
		return &RuntimeIf{Cond: p.Cond, Then: Merge(p.Then)}
	case *RelFor:
		body := Merge(p.Body)
		alg := p.Alg.Clone()
		vars := append([]string(nil), p.Vars...)
		for {
			inner, ok := body.(*RelFor)
			if !ok {
				break
			}
			// Substitute outer bindings into the inner conditions (ψ → ψ′).
			subConds := make([]Cmp, len(inner.Alg.Conds))
			for i, c := range inner.Alg.Conds {
				subConds[i] = substituteVars(c, alg)
			}
			alg.Bind = append(alg.Bind, inner.Alg.Bind...)
			alg.Conds = append(alg.Conds, subConds...)
			alg.Rels = append(alg.Rels, inner.Alg.Rels...)
			vars = append(vars, inner.Vars...)
			body = inner.Body
		}
		alg = EliminateRedundantRels(alg)
		return &RelFor{Vars: vars, Alg: alg, Body: body}
	default:
		return p
	}
}

// substituteVars replaces external references to variables bound by alg
// with the corresponding relation attributes.
func substituteVars(c Cmp, alg *PSX) Cmp {
	c.Left = substituteOperand(c.Left, alg)
	c.Right = substituteOperand(c.Right, alg)
	return c
}

func substituteOperand(o Operand, alg *PSX) Operand {
	switch o.Kind {
	case OpVarIn:
		if rel := alg.BindingRel(o.Var); rel != "" {
			return AttrOp(rel, ColIn)
		}
	case OpVarOut:
		if rel := alg.BindingRel(o.Var); rel != "" {
			return AttrOp(rel, ColOut)
		}
	}
	return o
}

// EliminateRedundantRels unifies relation instances that an in-equality
// condition forces to denote the same tuple (in is the primary key), then
// drops tautologies and duplicate conditions. It returns a new PSX.
func EliminateRedundantRels(p *PSX) *PSX {
	out := p.Clone()
	for {
		var victim, survivor string
		for _, c := range out.Conds {
			if c.Op != CmpEq || c.Left.Kind != OpAttr || c.Right.Kind != OpAttr {
				continue
			}
			if c.Left.Attr.Col != ColIn || c.Right.Attr.Col != ColIn {
				continue
			}
			a, b := c.Left.Attr.Rel, c.Right.Attr.Rel
			if a == b {
				continue
			}
			// Keep the relation that appears first (typically the one a
			// variable is bound to), drop the later copy.
			if relIndex(out.Rels, a) <= relIndex(out.Rels, b) {
				survivor, victim = a, b
			} else {
				survivor, victim = b, a
			}
			break
		}
		if victim == "" {
			break
		}
		out = renameRel(out, victim, survivor)
	}
	out.Conds = simplifyConds(out.Conds)
	return out
}

func relIndex(rels []string, alias string) int {
	for i, r := range rels {
		if r == alias {
			return i
		}
	}
	return len(rels)
}

// renameRel rewrites every occurrence of alias "from" to "to" and removes
// "from" from the relation list.
func renameRel(p *PSX, from, to string) *PSX {
	out := &PSX{}
	for _, b := range p.Bind {
		if b.Rel == from {
			b.Rel = to
		}
		out.Bind = append(out.Bind, b)
	}
	for _, c := range p.Conds {
		if c.Left.Kind == OpAttr && c.Left.Attr.Rel == from {
			c.Left.Attr.Rel = to
		}
		if c.Right.Kind == OpAttr && c.Right.Attr.Rel == from {
			c.Right.Attr.Rel = to
		}
		out.Conds = append(out.Conds, c)
	}
	for _, r := range p.Rels {
		if r != from {
			out.Rels = append(out.Rels, r)
		}
	}
	return out
}

// simplifyConds drops tautologies (x = x) and duplicate conditions.
func simplifyConds(conds []Cmp) []Cmp {
	seen := map[string]bool{}
	var out []Cmp
	for _, c := range conds {
		if c.Op == CmpEq && c.Left == c.Right {
			continue
		}
		key := c.String()
		// Normalize symmetric equality for deduplication.
		if c.Op == CmpEq {
			alt := Cmp{Op: CmpEq, Left: c.Right, Right: c.Left}.String()
			if alt < key {
				key = alt
			}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	return out
}

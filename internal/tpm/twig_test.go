package tpm

import "testing"

func descP(anc, desc string) StructuralPred {
	return StructuralPred{
		Axis: AxisDescendant, Anc: anc, Desc: desc,
		Conds: []Cmp{
			Gt(AttrOp(desc, ColIn), AttrOp(anc, ColIn)),
			Lt(AttrOp(desc, ColOut), AttrOp(anc, ColOut)),
		},
	}
}

func childP(anc, desc string) StructuralPred {
	return StructuralPred{
		Axis: AxisChild, Anc: anc, Desc: desc,
		Conds: []Cmp{Eq(AttrOp(desc, ColParentIn), AttrOp(anc, ColIn))},
	}
}

func TestAssembleTwigBranching(t *testing.T) {
	// X[//A][/V] — one root, two branches, mixed axes.
	tw, ok := AssembleTwig(
		[]StructuralPred{descP("X", "A"), childP("X", "V")},
		[]string{"X", "A", "V"})
	if !ok {
		t.Fatal("branching twig not assembled")
	}
	if len(tw.Nodes) != 3 || tw.Nodes[0].Alias != "X" || tw.Nodes[0].Parent != -1 {
		t.Fatalf("nodes: %+v", tw.Nodes)
	}
	axes := map[string]Axis{}
	for _, n := range tw.Nodes[1:] {
		if tw.Nodes[n.Parent].Alias != "X" {
			t.Errorf("%s not attached to root", n.Alias)
		}
		axes[n.Alias] = n.Axis
	}
	if axes["A"] != AxisDescendant || axes["V"] != AxisChild {
		t.Errorf("axes: %v", axes)
	}
	if len(tw.Conds) != 3 {
		t.Errorf("subsumed conds: %d, want 3", len(tw.Conds))
	}
	if s := tw.String(); s != "X[//A][/V]" && s != "X[/V][//A]" {
		t.Errorf("render: %s", s)
	}
}

func TestAssembleTwigChain(t *testing.T) {
	// X//A//T: a pure chain is a twig with one leaf; preorder keeps
	// parents before children.
	tw, ok := AssembleTwig(
		[]StructuralPred{descP("X", "A"), descP("A", "T")},
		[]string{"X", "A", "T"})
	if !ok {
		t.Fatal("chain twig not assembled")
	}
	for i, want := range []string{"X", "A", "T"} {
		if tw.Nodes[i].Alias != want {
			t.Fatalf("preorder: %+v", tw.Nodes)
		}
	}
	if kids := tw.Children(0); len(kids) != 1 || tw.Nodes[kids[0]].Alias != "A" {
		t.Errorf("children of root: %v", kids)
	}
}

func TestAssembleTwigDisconnectedFallsBack(t *testing.T) {
	cases := []struct {
		name  string
		preds []StructuralPred
		rels  []string
	}{
		// Two components: X//A and an unrelated B//C.
		{"two-components", []StructuralPred{descP("X", "A"), descP("B", "C")},
			[]string{"X", "A", "B", "C"}},
		// A relation no predicate touches.
		{"isolated-rel", []StructuralPred{descP("X", "A")}, []string{"X", "A", "B"}},
		// No predicates at all.
		{"no-preds", nil, []string{"X", "A"}},
		// Two distinct parents for the same node: a DAG, not a tree.
		{"dag", []StructuralPred{descP("X", "C"), descP("A", "C"), descP("X", "A")},
			[]string{"X", "A", "C"}},
		// A cycle.
		{"cycle", []StructuralPred{descP("X", "A"), descP("A", "X")},
			[]string{"X", "A"}},
		// Predicate alias outside the relation set.
		{"foreign-alias", []StructuralPred{descP("X", "A"), descP("X", "Z")},
			[]string{"X", "A"}},
	}
	for _, c := range cases {
		if tw, ok := AssembleTwig(c.preds, c.rels); ok {
			t.Errorf("%s: unexpectedly assembled %s", c.name, tw)
		}
	}
}

func TestAssembleTwigMergesDuplicateEdges(t *testing.T) {
	// Both the child equality and the descendant interval between the same
	// pair: one edge, child axis, all three conditions subsumed.
	tw, ok := AssembleTwig(
		[]StructuralPred{childP("X", "V"), descP("X", "V"), descP("X", "A")},
		[]string{"X", "V", "A"})
	if !ok {
		t.Fatal("duplicate-edge twig not assembled")
	}
	for _, n := range tw.Nodes {
		if n.Alias == "V" && n.Axis != AxisChild {
			t.Errorf("V edge axis = %s, want child", n.Axis)
		}
	}
	if len(tw.Conds) != 5 {
		t.Errorf("subsumed conds: %d, want 5", len(tw.Conds))
	}
}

func TestAssembleTwigFromFindStructural(t *testing.T) {
	// End-to-end: the conjunction a 3-branch query produces round-trips
	// through FindStructural into a twig.
	conds := []Cmp{
		Gt(AttrOp("A", ColIn), AttrOp("X", ColIn)),
		Lt(AttrOp("A", ColOut), AttrOp("X", ColOut)),
		Gt(AttrOp("T", ColIn), AttrOp("X", ColIn)),
		Lt(AttrOp("T", ColOut), AttrOp("X", ColOut)),
		Eq(AttrOp("V", ColParentIn), AttrOp("X", ColIn)),
	}
	tw, ok := AssembleTwig(FindStructural(conds), []string{"X", "A", "T", "V"})
	if !ok {
		t.Fatal("twig not assembled from recovered predicates")
	}
	if len(tw.Nodes) != 4 || len(tw.Children(0)) != 3 {
		t.Errorf("twig shape: %s", tw)
	}
	if len(tw.Conds) != len(conds) {
		t.Errorf("subsumed %d conds, want %d", len(tw.Conds), len(conds))
	}
}

package tpm

import "testing"

func descP(anc, desc string) StructuralPred {
	return StructuralPred{
		Axis: AxisDescendant, Anc: anc, Desc: desc,
		Conds: []Cmp{
			Gt(AttrOp(desc, ColIn), AttrOp(anc, ColIn)),
			Lt(AttrOp(desc, ColOut), AttrOp(anc, ColOut)),
		},
	}
}

func childP(anc, desc string) StructuralPred {
	return StructuralPred{
		Axis: AxisChild, Anc: anc, Desc: desc,
		Conds: []Cmp{Eq(AttrOp(desc, ColParentIn), AttrOp(anc, ColIn))},
	}
}

func TestAssembleTwigBranching(t *testing.T) {
	// X[//A][/V] — one root, two branches, mixed axes.
	tw, ok := AssembleTwig(
		[]StructuralPred{descP("X", "A"), childP("X", "V")},
		[]string{"X", "A", "V"})
	if !ok {
		t.Fatal("branching twig not assembled")
	}
	if len(tw.Nodes) != 3 || tw.Nodes[0].Alias != "X" || tw.Nodes[0].Parent != -1 {
		t.Fatalf("nodes: %+v", tw.Nodes)
	}
	axes := map[string]Axis{}
	for _, n := range tw.Nodes[1:] {
		if tw.Nodes[n.Parent].Alias != "X" {
			t.Errorf("%s not attached to root", n.Alias)
		}
		axes[n.Alias] = n.Axis
	}
	if axes["A"] != AxisDescendant || axes["V"] != AxisChild {
		t.Errorf("axes: %v", axes)
	}
	if len(tw.Conds) != 3 {
		t.Errorf("subsumed conds: %d, want 3", len(tw.Conds))
	}
	if s := tw.String(); s != "X[//A][/V]" && s != "X[/V][//A]" {
		t.Errorf("render: %s", s)
	}
}

func TestAssembleTwigChain(t *testing.T) {
	// X//A//T: a pure chain is a twig with one leaf; preorder keeps
	// parents before children.
	tw, ok := AssembleTwig(
		[]StructuralPred{descP("X", "A"), descP("A", "T")},
		[]string{"X", "A", "T"})
	if !ok {
		t.Fatal("chain twig not assembled")
	}
	for i, want := range []string{"X", "A", "T"} {
		if tw.Nodes[i].Alias != want {
			t.Fatalf("preorder: %+v", tw.Nodes)
		}
	}
	if kids := tw.Children(0); len(kids) != 1 || tw.Nodes[kids[0]].Alias != "A" {
		t.Errorf("children of root: %v", kids)
	}
}

func TestAssembleTwigDisconnectedFallsBack(t *testing.T) {
	cases := []struct {
		name  string
		preds []StructuralPred
		rels  []string
	}{
		// Two components: X//A and an unrelated B//C.
		{"two-components", []StructuralPred{descP("X", "A"), descP("B", "C")},
			[]string{"X", "A", "B", "C"}},
		// A relation no predicate touches.
		{"isolated-rel", []StructuralPred{descP("X", "A")}, []string{"X", "A", "B"}},
		// No predicates at all.
		{"no-preds", nil, []string{"X", "A"}},
		// Two distinct parents for the same node: a DAG, not a tree.
		{"dag", []StructuralPred{descP("X", "C"), descP("A", "C"), descP("X", "A")},
			[]string{"X", "A", "C"}},
		// A cycle.
		{"cycle", []StructuralPred{descP("X", "A"), descP("A", "X")},
			[]string{"X", "A"}},
		// Predicate alias outside the relation set.
		{"foreign-alias", []StructuralPred{descP("X", "A"), descP("X", "Z")},
			[]string{"X", "A"}},
	}
	for _, c := range cases {
		if tw, ok := AssembleTwig(c.preds, c.rels); ok {
			t.Errorf("%s: unexpectedly assembled %s", c.name, tw)
		}
	}
}

func TestAssembleTwigMergesDuplicateEdges(t *testing.T) {
	// Both the child equality and the descendant interval between the same
	// pair: one edge, child axis, all three conditions subsumed.
	tw, ok := AssembleTwig(
		[]StructuralPred{childP("X", "V"), descP("X", "V"), descP("X", "A")},
		[]string{"X", "V", "A"})
	if !ok {
		t.Fatal("duplicate-edge twig not assembled")
	}
	for _, n := range tw.Nodes {
		if n.Alias == "V" && n.Axis != AxisChild {
			t.Errorf("V edge axis = %s, want child", n.Axis)
		}
	}
	if len(tw.Conds) != 5 {
		t.Errorf("subsumed conds: %d, want 5", len(tw.Conds))
	}
}

func TestAssembleMaxTwigPicksLargerComponent(t *testing.T) {
	// Two disconnected sub-twigs: X[//A][//B] (3 nodes) and P//Q (2 nodes).
	// The larger wins; the P//Q edge stays residual verbatim and P, Q are
	// reported uncovered.
	preds := []StructuralPred{descP("X", "A"), descP("X", "B"), descP("P", "Q")}
	tw, resid, uncov, ok := AssembleMaxTwig(preds, []string{"X", "A", "B", "P", "Q"})
	if !ok {
		t.Fatal("max twig not extracted")
	}
	if len(tw.Nodes) != 3 || tw.Nodes[0].Alias != "X" {
		t.Fatalf("wrong component extracted: %s", tw)
	}
	if len(uncov) != 2 || uncov[0] != "P" || uncov[1] != "Q" {
		t.Errorf("uncovered = %v, want [P Q]", uncov)
	}
	if len(resid) != 1 || resid[0].String() != "P//Q" {
		t.Fatalf("residual = %v, want the P//Q predicate", resid)
	}
	// Residual predicates come back verbatim, conditions untouched.
	if len(resid[0].Conds) != 2 || resid[0].Conds[0].String() != preds[2].Conds[0].String() {
		t.Errorf("residual conds mangled: %v", resid[0].Conds)
	}
	if len(tw.Conds) != 4 {
		t.Errorf("subsumed conds: %d, want 4 (two descendant pairs)", len(tw.Conds))
	}
}

func TestAssembleMaxTwigSingleEdge(t *testing.T) {
	// A single edge is a valid (2-node) subtwig; the isolated relation is
	// uncovered and nothing is residual.
	tw, resid, uncov, ok := AssembleMaxTwig(
		[]StructuralPred{childP("X", "V")}, []string{"X", "V", "Z"})
	if !ok {
		t.Fatal("single-edge twig not extracted")
	}
	if len(tw.Nodes) != 2 || tw.Nodes[0].Alias != "X" || tw.Nodes[1].Axis != AxisChild {
		t.Fatalf("twig shape: %s", tw)
	}
	if len(resid) != 0 {
		t.Errorf("residual = %v, want none", resid)
	}
	if len(uncov) != 1 || uncov[0] != "Z" {
		t.Errorf("uncovered = %v, want [Z]", uncov)
	}
}

func TestAssembleMaxTwigNoEdges(t *testing.T) {
	// No usable edge at all: not ok, everything residual and uncovered.
	preds := []StructuralPred{descP("X", "Z")} // Z outside the relation set
	tw, resid, uncov, ok := AssembleMaxTwig(preds, []string{"X", "A"})
	if ok || tw != nil {
		t.Fatalf("extracted a twig from nothing: %v", tw)
	}
	if len(resid) != 1 || len(uncov) != 2 {
		t.Errorf("resid=%v uncov=%v, want all inputs back", resid, uncov)
	}
}

func TestAssembleMaxTwigMergesDuplicateEdgesOnSubset(t *testing.T) {
	// Duplicate PC/AD edges on the extracted subset merge into one child
	// edge subsuming both predicates — exactly like AssembleTwig — while
	// the unrelated component stays residual.
	preds := []StructuralPred{
		descP("X", "V"), childP("X", "V"), descP("X", "A"), descP("P", "Q"),
	}
	tw, resid, uncov, ok := AssembleMaxTwig(preds, []string{"X", "V", "A", "P", "Q"})
	if !ok {
		t.Fatal("max twig not extracted")
	}
	if len(tw.Nodes) != 3 {
		t.Fatalf("twig shape: %s", tw)
	}
	for _, n := range tw.Nodes {
		if n.Alias == "V" && n.Axis != AxisChild {
			t.Errorf("V edge axis = %s, want child (merged duplicate)", n.Axis)
		}
	}
	if len(tw.Conds) != 5 {
		t.Errorf("subsumed conds: %d, want 5 (interval pair + child eq + pair)", len(tw.Conds))
	}
	if len(resid) != 1 || resid[0].String() != "P//Q" {
		t.Errorf("residual = %v, want [P//Q]", resid)
	}
	if len(uncov) != 2 {
		t.Errorf("uncovered = %v, want [P Q]", uncov)
	}
}

func TestAssembleMaxTwigSecondParentStaysResidual(t *testing.T) {
	// A DAG: C has parents X and A. The first edge (sorted pred order:
	// A//C before X//C) wins; the second stays residual, and the twig still
	// spans all three nodes through X//A.
	preds := []StructuralPred{descP("A", "C"), descP("X", "A"), descP("X", "C")}
	tw, resid, _, ok := AssembleMaxTwig(preds, []string{"X", "A", "C"})
	if !ok {
		t.Fatal("max twig not extracted")
	}
	if len(tw.Nodes) != 3 {
		t.Fatalf("twig shape: %s", tw)
	}
	if len(resid) != 1 || resid[0].String() != "X//C" {
		t.Errorf("residual = %v, want the losing X//C parent edge", resid)
	}
}

func TestAssembleMaxTwigCycleFallsOut(t *testing.T) {
	// A 2-cycle has no root, so its component drops out; the remaining
	// single edge wins.
	preds := []StructuralPred{descP("P", "Q"), descP("Q", "P"), descP("X", "A")}
	tw, resid, uncov, ok := AssembleMaxTwig(preds, []string{"X", "A", "P", "Q"})
	if !ok {
		t.Fatal("max twig not extracted")
	}
	if tw.Nodes[0].Alias != "X" || len(tw.Nodes) != 2 {
		t.Fatalf("twig shape: %s", tw)
	}
	if len(resid) != 2 {
		t.Errorf("residual = %v, want both cycle edges", resid)
	}
	if len(uncov) != 2 || uncov[0] != "P" || uncov[1] != "Q" {
		t.Errorf("uncovered = %v, want [P Q]", uncov)
	}
}

func TestAssembleTwigFromFindStructural(t *testing.T) {
	// End-to-end: the conjunction a 3-branch query produces round-trips
	// through FindStructural into a twig.
	conds := []Cmp{
		Gt(AttrOp("A", ColIn), AttrOp("X", ColIn)),
		Lt(AttrOp("A", ColOut), AttrOp("X", ColOut)),
		Gt(AttrOp("T", ColIn), AttrOp("X", ColIn)),
		Lt(AttrOp("T", ColOut), AttrOp("X", ColOut)),
		Eq(AttrOp("V", ColParentIn), AttrOp("X", ColIn)),
	}
	tw, ok := AssembleTwig(FindStructural(conds), []string{"X", "A", "T", "V"})
	if !ok {
		t.Fatal("twig not assembled from recovered predicates")
	}
	if len(tw.Nodes) != 4 || len(tw.Children(0)) != 3 {
		t.Errorf("twig shape: %s", tw)
	}
	if len(tw.Conds) != len(conds) {
		t.Errorf("subsumed %d conds, want %d", len(tw.Conds), len(conds))
	}
}

package tpm

import "xqdb/internal/xq"

// Plan is the operator tree a query compiles to: structural operators
// (construction, sequence, output) with relfor-expressions at the
// iteration points, exactly the shape of the operator trees in Figures 3-6
// of the paper.
type Plan interface {
	isPlan()
}

// Empty produces nothing.
type Empty struct{}

// Text emits a literal text node (constructor convenience extension).
type Text struct {
	Content string
}

// Emit outputs the subtree bound to a variable ($x as a query).
type Emit struct {
	Var string
}

// Constr wraps the output of Body in an element with the given label; the
// constr(a) nodes at the roots of the paper's operator trees.
type Constr struct {
	Label string
	Body  Plan
}

// Seq concatenates the outputs of its items in order.
type Seq struct {
	Items []Plan
}

// RelFor is the paper's "super-for-loop":
//
//	relfor vartuple in xasr-alg return body
//
// The algebra result is iterated in hierarchical document order; for each
// result tuple the vartuple variables are bound (to in/out pairs) and the
// body is evaluated. An empty vartuple implements the pass-fail semantics
// of rewritten if-conditions: the body runs exactly once if the nullary
// algebra result is nonempty ("true"), not at all otherwise.
type RelFor struct {
	Vars []string
	Alg  *PSX
	Body Plan
}

// RuntimeIf guards Body with a condition that cannot be mapped to the TPM
// fragment (the paper excludes "or", "not" and "every" from rewriting);
// such conditions are evaluated per binding by the milestone 2 machinery.
type RuntimeIf struct {
	Cond xq.Cond
	Then Plan
}

func (Empty) isPlan()      {}
func (*Text) isPlan()      {}
func (*Emit) isPlan()      {}
func (*Constr) isPlan()    {}
func (*Seq) isPlan()       {}
func (*RelFor) isPlan()    {}
func (*RuntimeIf) isPlan() {}

// Walk visits every plan node in preorder.
func Walk(p Plan, fn func(Plan)) {
	if p == nil {
		return
	}
	fn(p)
	switch p := p.(type) {
	case *Constr:
		Walk(p.Body, fn)
	case *Seq:
		for _, it := range p.Items {
			Walk(it, fn)
		}
	case *RelFor:
		Walk(p.Body, fn)
	case *RuntimeIf:
		Walk(p.Then, fn)
	}
}

// CountRelFors returns the number of relfor nodes in the plan (used to
// verify merging behaviour).
func CountRelFors(p Plan) int {
	n := 0
	Walk(p, func(q Plan) {
		if _, ok := q.(*RelFor); ok {
			n++
		}
	})
	return n
}

package tpm

import (
	"fmt"
	"sort"
)

// Axis names the structural relationship a join predicate encodes between
// two XASR relation instances.
type Axis uint8

// Structural axes recognizable from TPM conditions.
const (
	// AxisNone marks the absence of a structural relationship.
	AxisNone Axis = iota
	// AxisChild is the parent/child predicate desc.parent_in = anc.in.
	AxisChild
	// AxisDescendant is the interval predicate
	// desc.in > anc.in AND desc.out < anc.out.
	AxisDescendant
)

// String renders the axis in XPath notation.
func (a Axis) String() string {
	switch a {
	case AxisChild:
		return "child"
	case AxisDescendant:
		return "descendant"
	}
	return "none"
}

// StructuralPred is a structural join predicate between two relation
// aliases, recovered from the conjunction of a PSX expression. It is the
// unit the optimizer matches when considering a stack-based structural
// merge join instead of a nested-loops operator.
type StructuralPred struct {
	Axis Axis
	// Anc and Desc are the ancestor-side (parent-side) and
	// descendant-side (child-side) aliases.
	Anc, Desc string
	// Conds are the original conditions the predicate subsumes: one
	// equality for AxisChild, the (in >, out <) pair for AxisDescendant.
	Conds []Cmp
}

// String renders the predicate in XPath notation, e.g. "I//A".
func (p StructuralPred) String() string {
	if p.Axis == AxisChild {
		return fmt.Sprintf("%s/%s", p.Anc, p.Desc)
	}
	return fmt.Sprintf("%s//%s", p.Anc, p.Desc)
}

// attrPair normalizes a two-attribute condition to (left attr, right
// attr) with the comparison direction of op preserved relative to the
// returned order. ok is false unless both operands are attributes of
// different relations.
func attrPair(c Cmp) (l, r Attr, op CmpOp, ok bool) {
	if c.Left.Kind != OpAttr || c.Right.Kind != OpAttr {
		return Attr{}, Attr{}, 0, false
	}
	if c.Left.Attr.Rel == c.Right.Attr.Rel {
		return Attr{}, Attr{}, 0, false
	}
	return c.Left.Attr, c.Right.Attr, c.Op, true
}

// FindStructural recovers the structural join predicates hidden in a
// conjunction of cross conditions: parent/child equalities
// (d.parent_in = a.in) and descendant interval pairs
// (d.in > a.in AND d.out < a.out), in either written orientation. Each
// returned predicate carries the subsumed original conditions, so a
// planner that adopts it can mark exactly those as applied and keep the
// rest as residual filters.
func FindStructural(conds []Cmp) []StructuralPred {
	type pair struct{ anc, desc string }
	inLo := map[pair]Cmp{}  // desc.in > anc.in observed
	outHi := map[pair]Cmp{} // desc.out < anc.out observed
	var preds []StructuralPred

	for _, c := range conds {
		l, r, op, ok := attrPair(c)
		if !ok {
			continue
		}
		// Normalize to "descendant attribute on the left".
		switch {
		case op == CmpEq && l.Col == ColParentIn && r.Col == ColIn:
			preds = append(preds, StructuralPred{
				Axis: AxisChild, Anc: r.Rel, Desc: l.Rel, Conds: []Cmp{c},
			})
			continue
		case op == CmpEq && l.Col == ColIn && r.Col == ColParentIn:
			preds = append(preds, StructuralPred{
				Axis: AxisChild, Anc: l.Rel, Desc: r.Rel, Conds: []Cmp{c},
			})
			continue
		case op == CmpGt && l.Col == ColIn && r.Col == ColIn:
			inLo[pair{anc: r.Rel, desc: l.Rel}] = c
		case op == CmpLt && l.Col == ColIn && r.Col == ColIn:
			inLo[pair{anc: l.Rel, desc: r.Rel}] = c
		case op == CmpLt && l.Col == ColOut && r.Col == ColOut:
			outHi[pair{anc: r.Rel, desc: l.Rel}] = c
		case op == CmpGt && l.Col == ColOut && r.Col == ColOut:
			outHi[pair{anc: l.Rel, desc: r.Rel}] = c
		}
	}
	for p, lo := range inLo {
		hi, ok := outHi[p]
		if !ok {
			continue
		}
		preds = append(preds, StructuralPred{
			Axis: AxisDescendant, Anc: p.anc, Desc: p.desc, Conds: []Cmp{lo, hi},
		})
	}
	// Map iteration order is random; give callers a stable
	// (Anc, Desc, Axis) order.
	sort.Slice(preds, func(i, j int) bool {
		a, b := preds[i], preds[j]
		if a.Anc != b.Anc {
			return a.Anc < b.Anc
		}
		if a.Desc != b.Desc {
			return a.Desc < b.Desc
		}
		return a.Axis < b.Axis
	})
	return preds
}

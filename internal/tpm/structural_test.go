package tpm

import "testing"

func TestFindStructuralDescendantPair(t *testing.T) {
	conds := []Cmp{
		Gt(AttrOp("A", ColIn), AttrOp("I", ColIn)),
		Lt(AttrOp("A", ColOut), AttrOp("I", ColOut)),
		Eq(AttrOp("A", ColType), TypeOp(1)), // local cond, ignored
	}
	preds := FindStructural(conds)
	if len(preds) != 1 {
		t.Fatalf("preds: %v", preds)
	}
	p := preds[0]
	if p.Axis != AxisDescendant || p.Anc != "I" || p.Desc != "A" || len(p.Conds) != 2 {
		t.Errorf("wrong pred: %+v", p)
	}
	if p.String() != "I//A" {
		t.Errorf("pred string: %s", p)
	}
}

func TestFindStructuralReversedOrientation(t *testing.T) {
	// The same predicate written with the ancestor attribute on the left.
	conds := []Cmp{
		Lt(AttrOp("I", ColIn), AttrOp("A", ColIn)),
		Gt(AttrOp("I", ColOut), AttrOp("A", ColOut)),
	}
	preds := FindStructural(conds)
	if len(preds) != 1 || preds[0].Axis != AxisDescendant || preds[0].Anc != "I" || preds[0].Desc != "A" {
		t.Errorf("reversed orientation not recognized: %v", preds)
	}
}

func TestFindStructuralChild(t *testing.T) {
	for _, conds := range [][]Cmp{
		{Eq(AttrOp("V", ColParentIn), AttrOp("X", ColIn))},
		{Eq(AttrOp("X", ColIn), AttrOp("V", ColParentIn))},
	} {
		preds := FindStructural(conds)
		if len(preds) != 1 {
			t.Fatalf("preds: %v", preds)
		}
		p := preds[0]
		if p.Axis != AxisChild || p.Anc != "X" || p.Desc != "V" || len(p.Conds) != 1 {
			t.Errorf("wrong child pred: %+v", p)
		}
		if p.String() != "X/V" {
			t.Errorf("pred string: %s", p)
		}
	}
}

func TestFindStructuralRejectsHalfPairsAndMismatches(t *testing.T) {
	cases := [][]Cmp{
		// Lone in-bound: not a descendant interval.
		{Gt(AttrOp("A", ColIn), AttrOp("I", ColIn))},
		// Lone out-bound.
		{Lt(AttrOp("A", ColOut), AttrOp("I", ColOut))},
		// Bounds relating different pairs.
		{
			Gt(AttrOp("A", ColIn), AttrOp("I", ColIn)),
			Lt(AttrOp("A", ColOut), AttrOp("J", ColOut)),
		},
		// Variable bounds are not cross conditions.
		{Gt(AttrOp("A", ColIn), VarInOp("x")), Lt(AttrOp("A", ColOut), VarOutOp("x"))},
		// parent_in equality against a constant is a local selection.
		{Eq(AttrOp("V", ColParentIn), InOp(1))},
		// value equi-join is not structural.
		{Eq(AttrOp("A", ColValue), AttrOp("B", ColValue))},
	}
	for i, conds := range cases {
		if preds := FindStructural(conds); len(preds) != 0 {
			t.Errorf("case %d: unexpected preds %v", i, preds)
		}
	}
}

func TestFindStructuralMultiplePredsStableOrder(t *testing.T) {
	conds := []Cmp{
		Eq(AttrOp("V", ColParentIn), AttrOp("X", ColIn)),
		Gt(AttrOp("A", ColIn), AttrOp("X", ColIn)),
		Lt(AttrOp("A", ColOut), AttrOp("X", ColOut)),
	}
	preds := FindStructural(conds)
	if len(preds) != 2 {
		t.Fatalf("preds: %v", preds)
	}
	// Sorted by (Anc, Desc, Axis): X/V before X//A? No — "A" < "V", so
	// X//A (desc=A) comes first.
	if preds[0].Desc != "A" || preds[0].Axis != AxisDescendant {
		t.Errorf("order: %v", preds)
	}
	if preds[1].Desc != "V" || preds[1].Axis != AxisChild {
		t.Errorf("order: %v", preds)
	}
}

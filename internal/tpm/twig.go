package tpm

import "strings"

// TwigNode is one node of a twig pattern: a relation alias plus the
// structural edge connecting it to its parent node. The root carries
// Parent = -1 and AxisNone.
type TwigNode struct {
	Alias string
	// Parent indexes the parent node within Twig.Nodes (-1 for the root).
	Parent int
	// Axis is the edge axis from the parent (AxisChild or AxisDescendant;
	// AxisNone on the root).
	Axis Axis
}

// Twig is a whole path pattern assembled from the structural join
// predicates of one PSX conjunction: a rooted tree of relation aliases
// connected by parent/child and ancestor/descendant edges. It is the unit
// a holistic twig join (TwigStack) evaluates in one multi-stream pass,
// instead of decomposing the pattern into a chain of binary joins.
type Twig struct {
	// Nodes lists the twig nodes in preorder (parents before children);
	// Nodes[0] is the root.
	Nodes []TwigNode
	// Conds are the original cross conditions the twig edges subsume: a
	// planner adopting the twig marks exactly these as applied and keeps
	// the rest as residual filters.
	Conds []Cmp
}

// Children returns the indices of node i's children, in Nodes order.
func (tw *Twig) Children(i int) []int {
	var out []int
	for j, n := range tw.Nodes {
		if n.Parent == i {
			out = append(out, j)
		}
	}
	return out
}

// Aliases returns the node aliases in Nodes (preorder) order.
func (tw *Twig) Aliases() []string {
	out := make([]string, len(tw.Nodes))
	for i, n := range tw.Nodes {
		out[i] = n.Alias
	}
	return out
}

// String renders the twig in XPath-like notation, e.g. "X[/V][//A//T]".
func (tw *Twig) String() string {
	if len(tw.Nodes) == 0 {
		return "twig()"
	}
	var render func(i int) string
	render = func(i int) string {
		var b strings.Builder
		b.WriteString(tw.Nodes[i].Alias)
		for _, c := range tw.Children(i) {
			sep := "//"
			if tw.Nodes[c].Axis == AxisChild {
				sep = "/"
			}
			b.WriteString("[")
			b.WriteString(sep)
			b.WriteString(render(c))
			b.WriteString("]")
		}
		return b.String()
	}
	return render(0)
}

// AssembleMaxTwig extracts the maximal connected subtwig from the
// structural predicates of a conjunction — the partial-twig counterpart of
// AssembleTwig. Where AssembleTwig is all-or-nothing (every relation must
// join one spanning tree), AssembleMaxTwig is tolerant: predicates that
// reach outside rels, give a node a second parent (a DAG), or close a
// cycle simply stay residual, and from the remaining tree edges the
// largest root component is returned as the twig.
//
// It returns the twig, the residual predicates (every input predicate not
// subsumed by a chosen twig edge, in input order and with their Conds
// untouched — a planner adopting the subtwig keeps exactly these as join
// conditions), and the uncovered relation aliases (in rels order). As in
// AssembleTwig, duplicate edges between the same (anc, desc) pair merge
// into one edge preferring the tighter child axis, subsuming both
// predicates.
//
// ok is false when no component of two or more nodes exists (then every
// predicate is residual and every relation uncovered). Ties between
// equally sized components break toward the root appearing first in rels,
// so extraction is deterministic.
func AssembleMaxTwig(preds []StructuralPred, rels []string) (tw *Twig, residual []StructuralPred, uncovered []string, ok bool) {
	relSet := make(map[string]bool, len(rels))
	for _, r := range rels {
		if relSet[r] {
			return nil, preds, rels, false // duplicate alias: not a twig shape
		}
		relSet[r] = true
	}

	type edge struct {
		anc   string
		axis  Axis
		conds []Cmp
		preds []int // indices of the subsumed input predicates
	}
	parent := map[string]*edge{} // desc alias -> its one tree edge
	for i := range preds {
		sp := &preds[i]
		if !relSet[sp.Anc] || !relSet[sp.Desc] {
			continue // reaches outside the relation set: residual
		}
		if e, dup := parent[sp.Desc]; dup {
			if e.anc != sp.Anc {
				continue // second parent (a DAG): the first edge wins
			}
			// Same pair on both axes: keep the child edge, subsume both.
			if sp.Axis == AxisChild {
				e.axis = AxisChild
			}
			e.conds = append(e.conds, sp.Conds...)
			e.preds = append(e.preds, i)
			continue
		}
		parent[sp.Desc] = &edge{anc: sp.Anc, axis: sp.Axis,
			conds: append([]Cmp(nil), sp.Conds...), preds: []int{i}}
	}

	// Children lists in rels order, so the preorder walk is deterministic.
	children := map[string][]string{}
	for _, r := range rels {
		if e := parent[r]; e != nil {
			children[e.anc] = append(children[e.anc], r)
		}
	}

	// Every node has at most one parent, so the subgraph reachable from a
	// root (a node without a parent edge) is a tree; cycle components have
	// no root and drop out wholesale. Pick the largest root component.
	var size func(alias string) int
	size = func(alias string) int {
		n := 1
		for _, c := range children[alias] {
			n += size(c)
		}
		return n
	}
	var root string
	best := 0
	for _, r := range rels {
		if parent[r] != nil {
			continue
		}
		if n := size(r); n > best {
			best, root = n, r
		}
	}
	if best < 2 {
		return nil, preds, rels, false
	}

	tw = &Twig{}
	covered := map[string]bool{}
	subsumed := map[int]bool{}
	var walk func(alias string, parentIdx int, axis Axis, e *edge)
	walk = func(alias string, parentIdx int, axis Axis, e *edge) {
		at := len(tw.Nodes)
		tw.Nodes = append(tw.Nodes, TwigNode{Alias: alias, Parent: parentIdx, Axis: axis})
		covered[alias] = true
		if e != nil {
			tw.Conds = append(tw.Conds, e.conds...)
			for _, pi := range e.preds {
				subsumed[pi] = true
			}
		}
		for _, c := range children[alias] {
			walk(c, at, parent[c].axis, parent[c])
		}
	}
	walk(root, -1, AxisNone, nil)

	for i := range preds {
		if !subsumed[i] {
			residual = append(residual, preds[i])
		}
	}
	for _, r := range rels {
		if !covered[r] {
			uncovered = append(uncovered, r)
		}
	}
	return tw, residual, uncovered, true
}

// AssembleTwig builds a connected twig covering exactly the given relation
// aliases from the structural predicates of a conjunction. It succeeds
// when the predicates contain a spanning tree over rels: every alias
// appears, every non-root alias has exactly one parent edge, there are no
// cycles, and everything is reachable from a single root. Duplicate edges
// between the same (anc, desc) pair — a child equality alongside the
// descendant interval pair — are merged, keeping the tighter child axis
// while subsuming both predicates' conditions (parent/child membership
// implies interval containment in a well-formed XASR).
//
// ok is false when the predicates do not connect all of rels into one
// tree (disconnected components, multiple parents, cycles); the planner
// then falls back to the binary-join pipeline.
func AssembleTwig(preds []StructuralPred, rels []string) (*Twig, bool) {
	if len(rels) < 2 {
		return nil, false
	}
	relSet := make(map[string]bool, len(rels))
	for _, r := range rels {
		if relSet[r] {
			return nil, false // duplicate alias: not a twig shape
		}
		relSet[r] = true
	}

	type edge struct {
		anc   string
		axis  Axis
		conds []Cmp
	}
	parent := map[string]*edge{} // desc alias -> its one parent edge
	for i := range preds {
		sp := &preds[i]
		if !relSet[sp.Anc] || !relSet[sp.Desc] {
			return nil, false // predicate reaches outside the relation set
		}
		if e, dup := parent[sp.Desc]; dup {
			if e.anc != sp.Anc {
				return nil, false // two distinct parents: a DAG, not a tree
			}
			// Same pair on both axes: keep the child edge, subsume both.
			if sp.Axis == AxisChild {
				e.axis = AxisChild
			}
			e.conds = append(e.conds, sp.Conds...)
			continue
		}
		parent[sp.Desc] = &edge{anc: sp.Anc, axis: sp.Axis, conds: append([]Cmp(nil), sp.Conds...)}
	}

	// Exactly one root, everything else below it.
	var root string
	for _, r := range rels {
		if parent[r] == nil {
			if root != "" {
				return nil, false // two roots: disconnected components
			}
			root = r
		}
	}
	if root == "" {
		return nil, false // no root: a cycle
	}

	// Preorder walk; a node count mismatch means a cycle detached from
	// the root component.
	children := map[string][]string{}
	for _, r := range rels {
		if e := parent[r]; e != nil {
			children[e.anc] = append(children[e.anc], r)
		}
	}
	tw := &Twig{}
	index := map[string]int{}
	var walk func(alias string, parentIdx int, axis Axis, conds []Cmp)
	walk = func(alias string, parentIdx int, axis Axis, conds []Cmp) {
		if _, seen := index[alias]; seen {
			return
		}
		index[alias] = len(tw.Nodes)
		tw.Nodes = append(tw.Nodes, TwigNode{Alias: alias, Parent: parentIdx, Axis: axis})
		tw.Conds = append(tw.Conds, conds...)
		at := index[alias]
		for _, c := range children[alias] {
			e := parent[c]
			walk(c, at, e.axis, e.conds)
		}
	}
	walk(root, -1, AxisNone, nil)
	if len(tw.Nodes) != len(rels) {
		return nil, false
	}
	return tw, true
}

package tpm

import (
	"strings"
	"testing"

	"xqdb/internal/xq"
)

const example2Query = `<names>{ for $j in /journal return for $n in $j//name return $n }</names>`

// TestFigure3Plan checks the un-merged TPM expression of Example 3. With
// the paper's vartuple improvement (bindings carry out-values) the inner
// descendant relfor references $j directly instead of joining a copy N1 of
// J — exactly the simplification the paper proposes.
func TestFigure3Plan(t *testing.T) {
	plan := Rewrite(xq.MustParse(example2Query))
	got := Format(plan)
	want := strings.Join([]string{
		"constr(names)",
		"  relfor ($j)",
		"    alg: π(J.in)",
		"         σ(J.parent_in = 1 ∧ J.type = elem ∧ J.value = journal)",
		"         ×(XASR[J])",
		"    return",
		"      relfor ($n)",
		"        alg: π(N.in)",
		"             σ(N.in > $j ∧ N.out < $j.out ∧ N.type = elem ∧ N.value = name)",
		"             ×(XASR[N])",
		"        return",
		"          emit($n)",
		"",
	}, "\n")
	if got != want {
		t.Errorf("Figure 3 plan:\n%s\nwant:\n%s", got, want)
	}
	if CountRelFors(plan) != 2 {
		t.Errorf("relfor count = %d, want 2", CountRelFors(plan))
	}
}

// TestFigure4MergedPlan checks the merged relfor of Example 4.
func TestFigure4MergedPlan(t *testing.T) {
	plan := Merge(Rewrite(xq.MustParse(example2Query)))
	got := Format(plan)
	want := strings.Join([]string{
		"constr(names)",
		"  relfor ($j, $n)",
		"    alg: π(J.in, N.in)",
		"         σ(J.parent_in = 1 ∧ J.type = elem ∧ J.value = journal ∧ N.in > J.in ∧ N.out < J.out ∧ N.type = elem ∧ N.value = name)",
		"         ×(XASR[J], XASR[N])",
		"    return",
		"      emit($n)",
		"",
	}, "\n")
	if got != want {
		t.Errorf("Figure 4 plan:\n%s\nwant:\n%s", got, want)
	}
	if CountRelFors(plan) != 1 {
		t.Errorf("relfor count = %d, want 1", CountRelFors(plan))
	}
}

// TestFigure5Plan checks the if-with-some rewriting of Example 5 and that
// all three relfors merge into one.
func TestFigure5Plan(t *testing.T) {
	q := xq.MustParse(`<names>{ for $j in /journal return
		if (some $t in $j//text() satisfies true())
		then for $n in $j//name return $n else () }</names>`)
	unmerged := Rewrite(q)
	if got := CountRelFors(unmerged); got != 3 {
		t.Fatalf("unmerged relfors = %d, want 3 (for, if, for)\n%s", got, Format(unmerged))
	}
	// The middle relfor is the nullary condition check.
	var nullary *RelFor
	Walk(unmerged, func(p Plan) {
		if rf, ok := p.(*RelFor); ok && len(rf.Vars) == 0 {
			nullary = rf
		}
	})
	if nullary == nil {
		t.Fatal("no nullary relfor for the if-condition")
	}
	if len(nullary.Alg.Bind) != 0 {
		t.Errorf("condition relfor should project π(), got %v", nullary.Alg.Bind)
	}

	merged := Merge(q2plan(q))
	if got := CountRelFors(merged); got != 1 {
		t.Errorf("merged relfors = %d, want 1\n%s", got, Format(merged))
	}
	// The merged algebra must contain the text-node condition relation.
	rf := merged.(*Constr).Body.(*RelFor)
	if len(rf.Alg.Rels) != 3 {
		t.Errorf("merged relations = %v, want 3 (J, T, N)", rf.Alg.Rels)
	}
	if len(rf.Vars) != 2 {
		t.Errorf("merged vartuple = %v, want ($j, $n)", rf.Vars)
	}
}

func q2plan(q xq.Expr) Plan { return Rewrite(q) }

// TestMergeStrictness reproduces the paper's counterexample: with a
// constructor between the for-loops, the relfors must NOT merge, because a
// merged relfor would fail to build empty <j/> elements for journals
// without names.
func TestMergeStrictness(t *testing.T) {
	q := xq.MustParse(`<names>{ for $j in /journal return <j>{
		for $n in $j//name return $n }</j> }</names>`)
	merged := Merge(Rewrite(q))
	if got := CountRelFors(merged); got != 2 {
		t.Errorf("relfors after merge = %d, want 2 (constructor blocks merging)\n%s", got, Format(merged))
	}
}

// TestRedundantRelationElimination checks the "drop N1" rule: a variable
// comparison against an outer binding unifies the fresh text relation with
// the binding's relation when they are joined on in-equality.
func TestRedundantRelationElimination(t *testing.T) {
	// $t = "DB": the VarEqStr introduces T2 with T2.in = $t; after merging
	// into the relfor binding $t to T, T2.in = T.in forces unification.
	q := xq.MustParse(`for $j in /journal return
		if (some $t in $j//text() satisfies $t = "DB")
		then $j else ()`)
	merged := Merge(Rewrite(q))
	rf, ok := merged.(*RelFor)
	if !ok {
		t.Fatalf("expected top-level relfor, got:\n%s", Format(merged))
	}
	// Relations: J (journal), T (text step). The fresh T2 from the
	// comparison must be gone.
	if len(rf.Alg.Rels) != 2 {
		t.Errorf("relations after elimination = %v, want [J T]", rf.Alg.Rels)
	}
	// And its value condition must now constrain T directly.
	found := false
	for _, c := range rf.Alg.Conds {
		if c.Op == CmpEq && c.Left.Kind == OpAttr && c.Left.Attr.Col == ColValue &&
			c.Right.Kind == OpConstStr && c.Right.Str == "DB" {
			found = true
		}
	}
	if !found {
		t.Errorf("value condition lost:\n%s", Format(merged))
	}
}

func TestRuntimeIfForNonTPMConds(t *testing.T) {
	q := xq.MustParse(`for $j in /journal return
		if (not(some $t in $j//text() satisfies true())) then $j else ()`)
	plan := Merge(Rewrite(q))
	hasRuntime := false
	Walk(plan, func(p Plan) {
		if _, ok := p.(*RuntimeIf); ok {
			hasRuntime = true
		}
	})
	if !hasRuntime {
		t.Errorf("not(...) should stay a runtime condition:\n%s", Format(plan))
	}
}

func TestIfTrueFolded(t *testing.T) {
	q := xq.MustParse(`for $j in /journal return if (true()) then $j else ()`)
	plan := Rewrite(q)
	if got := CountRelFors(plan); got != 1 {
		t.Errorf("if(true()) should fold away, relfors = %d\n%s", got, Format(plan))
	}
}

func TestVarEqVarAlg(t *testing.T) {
	q := xq.MustParse(`for $a in /r/a/text() return for $b in /r/b/text() return
		if ($a = $b) then <eq/> else ()`)
	plan := Merge(Rewrite(q))
	// All relfors merge; the equality turns into a value join between the
	// two text relations after redundant copies are dropped.
	if got := CountRelFors(plan); got != 1 {
		t.Fatalf("relfors = %d, want 1\n%s", got, Format(plan))
	}
	var rf *RelFor
	Walk(plan, func(p Plan) {
		if r, ok := p.(*RelFor); ok {
			rf = r
		}
	})
	valueJoin := false
	for _, c := range rf.Alg.Conds {
		if c.Op == CmpEq && c.Left.Kind == OpAttr && c.Right.Kind == OpAttr &&
			c.Left.Attr.Col == ColValue && c.Right.Attr.Col == ColValue {
			valueJoin = true
		}
	}
	if !valueJoin {
		t.Errorf("missing value join:\n%s", Format(plan))
	}
}

func TestExternalVarsReported(t *testing.T) {
	q := xq.MustParse(`for $j in /journal return for $n in $j//name return $n`)
	plan := Rewrite(q)
	inner := plan.(*RelFor).Body.(*RelFor)
	ext := inner.Alg.ExternalVars()
	if len(ext) != 1 || ext[0] != "j" {
		t.Errorf("external vars = %v, want [j]", ext)
	}
}

package pager

import (
	"encoding/binary"
	"errors"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T, opts Options) (*Pager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.db")
	p, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p, path
}

func TestAllocateReadWrite(t *testing.T) {
	p, _ := openTemp(t, Options{CacheFrames: 16})
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := pg.ID
	if id == NilPage {
		t.Fatal("allocated the nil page")
	}
	copy(pg.Data(), "hello page")
	pg.MarkDirty()
	pg.Unpin()

	rd, err := p.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Data()[:10]) != "hello page" {
		t.Fatalf("read back %q", rd.Data()[:10])
	}
	rd.Unpin()
}

func TestEvictionWritesBack(t *testing.T) {
	p, _ := openTemp(t, Options{CacheFrames: 8})
	var ids []PageID
	// Allocate more pages than frames so eviction must occur.
	for i := 0; i < 64; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(pg.Data(), uint32(i)+1000)
		pg.MarkDirty()
		ids = append(ids, pg.ID)
		pg.Unpin()
	}
	for i, id := range ids {
		pg, err := p.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		got := binary.LittleEndian.Uint32(pg.Data())
		if got != uint32(i)+1000 {
			t.Fatalf("page %d: got %d want %d", id, got, i+1000)
		}
		pg.Unpin()
	}
	st := p.Stats()
	if st.PagesWritten == 0 || st.CacheMisses == 0 {
		t.Fatalf("expected eviction traffic, stats=%+v", st)
	}
}

func TestPinnedPagesSurviveEviction(t *testing.T) {
	p, _ := openTemp(t, Options{CacheFrames: 8})
	pinned, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(pinned.Data(), "pinned!")
	pinned.MarkDirty()
	// Thrash the pool while the page stays pinned.
	for i := 0; i < 32; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		pg.MarkDirty()
		pg.Unpin()
	}
	if string(pinned.Data()[:7]) != "pinned!" {
		t.Fatal("pinned page content lost")
	}
	pinned.Unpin()
}

func TestAllPinnedExhaustsPool(t *testing.T) {
	p, _ := openTemp(t, Options{CacheFrames: 8})
	var pages []*Page
	defer func() {
		for _, pg := range pages {
			pg.Unpin()
		}
	}()
	for i := 0; ; i++ {
		pg, err := p.Allocate()
		if err != nil {
			if i < 8 {
				t.Fatalf("pool exhausted too early at %d: %v", i, err)
			}
			return // expected failure once all frames are pinned
		}
		pages = append(pages, pg)
		if i > 100 {
			t.Fatal("pool never exhausted")
		}
	}
}

func TestFreeListReuse(t *testing.T) {
	p, _ := openTemp(t, Options{CacheFrames: 16})
	pg, _ := p.Allocate()
	id := pg.ID
	pg.Unpin()
	before := p.NumPages()
	if err := p.Free(id); err != nil {
		t.Fatal(err)
	}
	pg2, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Unpin()
	if pg2.ID != id {
		t.Fatalf("freed page not reused: got %d want %d", pg2.ID, id)
	}
	if p.NumPages() != before {
		t.Fatalf("file grew despite freelist: %d -> %d", before, p.NumPages())
	}
	// Reused page must be zeroed.
	for _, b := range pg2.Data() {
		if b != 0 {
			t.Fatal("reused page not zeroed")
		}
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.db")
	p, err := Open(path, Options{CacheFrames: 16})
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := p.Allocate()
	id := pg.ID
	copy(pg.Data(), "persist me")
	pg.MarkDirty()
	pg.Unpin()
	var hdr [AppHeaderSize]byte
	copy(hdr[:], "app header data")
	p.SetAppHeader(hdr)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(path, Options{CacheFrames: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got := p2.AppHeader()
	if string(got[:15]) != "app header data" {
		t.Fatalf("app header lost: %q", got[:15])
	}
	rd, err := p2.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Unpin()
	if string(rd.Data()[:10]) != "persist me" {
		t.Fatalf("page content lost: %q", rd.Data()[:10])
	}
}

func TestInvalidReads(t *testing.T) {
	p, _ := openTemp(t, Options{CacheFrames: 16})
	if _, err := p.Read(0); err == nil {
		t.Fatal("read of meta page allowed")
	}
	if _, err := p.Read(9999); err == nil {
		t.Fatal("read past end allowed")
	}
	if err := p.Free(0); err == nil {
		t.Fatal("free of meta page allowed")
	}
}

func TestBadPageSizeRejected(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "x.db"), Options{PageSize: 1000}); err == nil {
		t.Fatal("non-power-of-two page size accepted")
	}
}

func TestIOHookFailsReads(t *testing.T) {
	var calls int
	var fail bool
	hookErr := errors.New("injected")
	p, _ := openTemp(t, Options{CacheFrames: 8, IOHook: func(op string) error {
		calls++
		if fail && op == "page:read" {
			return hookErr
		}
		return nil
	}})
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := pg.ID
	pg.MarkDirty()
	pg.Unpin()
	// Push the page out of the pool so the next Read hits the file.
	for i := 0; i < 20; i++ {
		q, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		q.MarkDirty()
		q.Unpin()
	}
	fail = true
	if _, err := p.Read(id); !errors.Is(err, hookErr) {
		t.Fatalf("Read with failing hook = %v, want injected error", err)
	}
	fail = false
	rd, err := p.Read(id)
	if err != nil {
		t.Fatalf("Read after disarm: %v", err)
	}
	rd.Unpin()
	if calls == 0 {
		t.Fatal("hook never called")
	}
	if got := p.PinnedPages(); got != 0 {
		t.Fatalf("PinnedPages after failed+ok reads = %d, want 0", got)
	}
}

func TestPinnedPagesCounts(t *testing.T) {
	p, _ := openTemp(t, Options{CacheFrames: 16})
	var pages []*Page
	for i := 0; i < 3; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, pg)
	}
	if got := p.PinnedPages(); got != 3 {
		t.Fatalf("PinnedPages = %d, want 3", got)
	}
	for _, pg := range pages {
		pg.Unpin()
	}
	if got := p.PinnedPages(); got != 0 {
		t.Fatalf("PinnedPages after unpin = %d, want 0", got)
	}
}

package pager

import (
	"encoding/binary"
	"errors"
	"path/filepath"
	"testing"

	"xqdb/internal/fault"
	"xqdb/internal/wal"
)

// openWal opens a pager + WAL pair in dir.
func openWal(t *testing.T, dir string, hook func(string) error) (*Pager, *wal.Log) {
	t.Helper()
	w, err := wal.Open(filepath.Join(dir, "wal.log"), hook)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	p, err := Open(filepath.Join(dir, "pages.db"), Options{
		PageSize: 512, CacheFrames: 16, IOHook: hook, WAL: w,
	})
	if err != nil {
		t.Fatalf("pager.Open: %v", err)
	}
	return p, w
}

func TestUpdateUnitCommitAndRecover(t *testing.T) {
	dir := t.TempDir()
	p, w := openWal(t, dir, nil)
	pg, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := pg.ID
	copy(pg.Data(), "base state")
	pg.MarkDirty()
	pg.Unpin()
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}

	if err := p.BeginUpdate(); err != nil {
		t.Fatal(err)
	}
	pg, _ = p.Read(id)
	copy(pg.Data(), "new  state")
	pg.MarkDirty()
	pg.Unpin()
	committed, err := p.CommitUpdate(1)
	if err != nil || !committed {
		t.Fatalf("CommitUpdate = %v %v", committed, err)
	}
	if p.DirtyLogged() != 1 {
		t.Fatalf("DirtyLogged = %d, want 1", p.DirtyLogged())
	}
	// Simulate a crash before the page is written back.
	if err := p.CloseNoFlush(); err != nil {
		t.Fatal(err)
	}
	w.CloseNoFlush()

	p2, w2 := openWal(t, dir, nil)
	defer w2.Close()
	defer p2.Close()
	lastSeq, applied, err := p2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if lastSeq != 1 || applied == 0 {
		t.Fatalf("Recover = seq %d applied %d", lastSeq, applied)
	}
	pg, err = p2.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(pg.Data()[:10]) != "new  state" {
		t.Fatalf("recovered content %q", pg.Data()[:10])
	}
	if pg.LSN() == 0 {
		t.Fatal("recovered page has no LSN")
	}
	pg.Unpin()
	// Idempotence: a second recovery applies nothing.
	if _, applied, err := p2.Recover(); err != nil || applied != 0 {
		t.Fatalf("second Recover applied %d (%v)", applied, err)
	}
}

func TestUpdateUnitAbortRestores(t *testing.T) {
	dir := t.TempDir()
	p, w := openWal(t, dir, nil)
	defer w.Close()
	defer p.Close()
	pg, _ := p.Allocate()
	id := pg.ID
	copy(pg.Data(), "original")
	pg.MarkDirty()
	pg.Unpin()
	hdrBefore := p.AppHeader()
	numBefore := p.NumPages()

	if err := p.BeginUpdate(); err != nil {
		t.Fatal(err)
	}
	pg, _ = p.Read(id)
	copy(pg.Data(), "mutated!")
	pg.MarkDirty()
	pg.Unpin()
	fresh, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	freshID := fresh.ID
	fresh.Unpin()
	var hdr [AppHeaderSize]byte
	copy(hdr[:], "scribbled header")
	p.SetAppHeader(hdr)
	p.AbortUpdate()

	pg, err = p.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(pg.Data()[:8]) != "original" {
		t.Fatalf("abort left %q", pg.Data()[:8])
	}
	pg.Unpin()
	if p.AppHeader() != hdrBefore {
		t.Fatal("app header not restored")
	}
	if p.NumPages() != numBefore {
		t.Fatalf("NumPages = %d, want %d", p.NumPages(), numBefore)
	}
	if _, err := p.Read(freshID); err == nil {
		t.Fatal("aborted fresh page still readable")
	}
	if got := p.PinnedPages(); got != 0 {
		t.Fatalf("pins after abort = %d", got)
	}
}

func TestUnloggedFramesNotEvicted(t *testing.T) {
	dir := t.TempDir()
	p, w := openWal(t, dir, nil)
	defer w.Close()
	defer p.Close()
	var ids []PageID
	for i := 0; i < 64; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, pg.ID)
		pg.MarkDirty()
		pg.Unpin()
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p.BeginUpdate(); err != nil {
		t.Fatal(err)
	}
	pg, _ := p.Read(ids[0])
	copy(pg.Data(), "uncommitted")
	pg.MarkDirty()
	pg.Unpin()
	// Churn the whole 16-frame pool with clean reads: the unlogged page
	// must survive in memory without ever reaching the file.
	written := p.Stats().PagesWritten
	for _, id := range ids {
		q, err := p.Read(id)
		if err != nil {
			t.Fatalf("read %d: %v", id, err)
		}
		q.Unpin()
	}
	if p.Stats().PagesWritten != written {
		t.Fatalf("pages written during open unit: %d", p.Stats().PagesWritten-written)
	}
	pg, _ = p.Read(ids[0])
	if string(pg.Data()[:11]) != "uncommitted" {
		t.Fatalf("unlogged page lost: %q", pg.Data()[:11])
	}
	pg.Unpin()
	p.AbortUpdate()
}

func TestCommitCrashAtWALFlushRollsBack(t *testing.T) {
	dir := t.TempDir()
	var inj fault.Injector
	p, w := openWal(t, dir, inj.Hook)
	defer w.Close()
	defer p.Close()
	pg, _ := p.Allocate()
	id := pg.ID
	copy(pg.Data(), "stable")
	pg.MarkDirty()
	pg.Unpin()
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}

	if err := p.BeginUpdate(); err != nil {
		t.Fatal(err)
	}
	pg, _ = p.Read(id)
	copy(pg.Data(), "doomed")
	pg.MarkDirty()
	pg.Unpin()
	inj.ArmAt("wal:flush", 1)
	committed, err := p.CommitUpdate(1)
	inj.Disarm()
	if committed || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("CommitUpdate = %v %v, want uncommitted injected", committed, err)
	}
	p.AbortUpdate()
	pg, _ = p.Read(id)
	if string(pg.Data()[:6]) != "stable" {
		t.Fatalf("rollback left %q", pg.Data()[:6])
	}
	pg.Unpin()
	if w.LastSeq() != 0 {
		t.Fatalf("LastSeq = %d after failed flush", w.LastSeq())
	}
}

func TestCommitCrashAfterWALAppendIsDurable(t *testing.T) {
	dir := t.TempDir()
	var inj fault.Injector
	p, w := openWal(t, dir, inj.Hook)
	pg, _ := p.Allocate()
	id := pg.ID
	pg.MarkDirty()
	pg.Unpin()
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p.BeginUpdate(); err != nil {
		t.Fatal(err)
	}
	pg, _ = p.Read(id)
	copy(pg.Data(), "survives")
	pg.MarkDirty()
	pg.Unpin()
	inj.ArmAt(fault.CrashAfterWALAppend, 1)
	committed, err := p.CommitUpdate(1)
	inj.Disarm()
	if !committed || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("CommitUpdate = %v %v, want committed + injected", committed, err)
	}
	// Crash without flushing pages; redo must resurrect the change.
	p.CloseNoFlush()
	w.CloseNoFlush()
	p2, w2 := openWal(t, dir, nil)
	defer w2.Close()
	defer p2.Close()
	if seq, _, err := p2.Recover(); err != nil || seq != 1 {
		t.Fatalf("Recover = %d %v", seq, err)
	}
	pg, err = p2.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(pg.Data()[:8]) != "survives" {
		t.Fatalf("recovered %q", pg.Data()[:8])
	}
	pg.Unpin()
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	p, w := openWal(t, dir, nil)
	defer w.Close()
	defer p.Close()
	pg, _ := p.Allocate()
	id := pg.ID
	pg.MarkDirty()
	pg.Unpin()
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := p.BeginUpdate(); err != nil {
			t.Fatal(err)
		}
		pg, _ = p.Read(id)
		binary.LittleEndian.PutUint64(pg.Data(), seq)
		pg.MarkDirty()
		pg.Unpin()
		if committed, err := p.CommitUpdate(seq); err != nil || !committed {
			t.Fatalf("seq %d: %v %v", seq, committed, err)
		}
	}
	if w.Bytes() < 3*512 {
		t.Fatalf("WAL suspiciously small before checkpoint: %d", w.Bytes())
	}
	if err := p.Checkpoint(3); err != nil {
		t.Fatal(err)
	}
	if w.Bytes() > 64 {
		t.Fatalf("WAL not truncated: %d bytes", w.Bytes())
	}
	if p.DirtyLogged() != 0 {
		t.Fatalf("dirty-page table not empty after checkpoint")
	}
	if w.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d", w.LastSeq())
	}
}

func TestUsableSize(t *testing.T) {
	dir := t.TempDir()
	p, w := openWal(t, dir, nil)
	defer w.Close()
	defer p.Close()
	if got := p.UsableSize(); got != 512-PageHdrSize {
		t.Fatalf("UsableSize = %d", got)
	}
	pg, _ := p.Allocate()
	defer pg.Unpin()
	if len(pg.Data()) != 512-PageHdrSize {
		t.Fatalf("Data len = %d", len(pg.Data()))
	}
}

// Package pager implements the page-based storage manager underneath the
// B+-trees: a single file of fixed-size pages fronted by a bounded buffer
// pool with pinning, clock eviction and write-back.
//
// It is one half of this project's substitution for the Berkeley DB storage
// manager the paper's students used (the other half is package btree). The
// buffer pool size bounds the memory the query engines may use, which is
// how the testbed enforces the paper's "20 MB of memory" efficiency-test
// cap; the pool also counts page reads, writes, hits and misses so the cost
// model can be calibrated against observed I/O.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// PageID identifies a page within the file. Page 0 is the meta page and is
// never handed out; 0 therefore doubles as a nil page id.
type PageID uint32

// NilPage is the zero PageID, used as a null pointer.
const NilPage PageID = 0

const (
	magic        = "XQDBPG01"
	metaPageID   = PageID(0)
	offMagic     = 0
	offPageSize  = 8
	offNumPages  = 12
	offFreeHead  = 16
	offAppHeader = 24
	// AppHeaderSize is the number of bytes of the meta page reserved for
	// the client (the store layer keeps B+-tree roots and counters there).
	AppHeaderSize = 128
)

// DefaultPageSize is the page size used when Options.PageSize is zero.
const DefaultPageSize = 4096

// DefaultCacheFrames is the buffer pool size used when Options.CacheFrames
// is zero: 1024 frames of 4 KiB = 4 MiB.
const DefaultCacheFrames = 1024

// ErrClosed is returned by operations on a closed Pager.
var ErrClosed = errors.New("pager: closed")

// Options configures Open.
type Options struct {
	// PageSize is the page size in bytes for newly created files. It must
	// be a power of two >= 512. Existing files keep their page size.
	PageSize int
	// CacheFrames is the number of pages the buffer pool may hold.
	CacheFrames int
	// ReadOnly opens the file for reading only.
	ReadOnly bool
}

// Stats counts buffer pool and file I/O activity since Open.
type Stats struct {
	PagesRead    int64 // pages fetched from the OS file
	PagesWritten int64 // pages written back to the OS file
	CacheHits    int64 // page requests served from the pool
	CacheMisses  int64 // page requests that went to the file
	Allocations  int64 // pages allocated
}

// frame is one buffer-pool slot.
type frame struct {
	id     PageID
	data   []byte
	pins   int
	dirty  bool
	refbit bool
	valid  bool
}

// Pager manages the page file and its buffer pool. All methods are safe
// for concurrent use.
type Pager struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	readOnly bool
	closed   bool

	numPages  uint32 // including the meta page
	freeHead  PageID
	appHdr    [AppHeaderSize]byte
	metaDirty bool

	frames []frame
	table  map[PageID]int // pageID -> frame index
	clock  int

	stats Stats
}

// Open opens or creates the page file at path.
func Open(path string, opts Options) (*Pager, error) {
	if opts.PageSize == 0 {
		opts.PageSize = DefaultPageSize
	}
	if opts.PageSize < 512 || opts.PageSize&(opts.PageSize-1) != 0 {
		return nil, fmt.Errorf("pager: page size %d is not a power of two >= 512", opts.PageSize)
	}
	if opts.CacheFrames <= 0 {
		opts.CacheFrames = DefaultCacheFrames
	}
	if opts.CacheFrames < 8 {
		opts.CacheFrames = 8 // below this, B+-tree descents can deadlock on pins
	}
	flag := os.O_RDWR | os.O_CREATE
	if opts.ReadOnly {
		flag = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	p := &Pager{
		f:        f,
		pageSize: opts.PageSize,
		readOnly: opts.ReadOnly,
		table:    make(map[PageID]int, opts.CacheFrames),
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: %w", err)
	}
	if fi.Size() == 0 {
		if opts.ReadOnly {
			f.Close()
			return nil, fmt.Errorf("pager: %s is empty", path)
		}
		p.numPages = 1
		p.metaDirty = true
		if err := p.writeMeta(); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		if err := p.readMeta(); err != nil {
			f.Close()
			return nil, err
		}
	}
	p.frames = make([]frame, opts.CacheFrames)
	for i := range p.frames {
		p.frames[i].data = make([]byte, p.pageSize)
	}
	return p, nil
}

func (p *Pager) readMeta() error {
	hdr := make([]byte, 512)
	if _, err := p.f.ReadAt(hdr, 0); err != nil && err != io.EOF {
		return fmt.Errorf("pager: reading meta page: %w", err)
	}
	if string(hdr[offMagic:offMagic+8]) != magic {
		return fmt.Errorf("pager: bad magic, not a xqdb page file")
	}
	ps := binary.LittleEndian.Uint32(hdr[offPageSize:])
	if ps < 512 || ps&(ps-1) != 0 {
		return fmt.Errorf("pager: corrupt page size %d", ps)
	}
	p.pageSize = int(ps)
	p.numPages = binary.LittleEndian.Uint32(hdr[offNumPages:])
	p.freeHead = PageID(binary.LittleEndian.Uint32(hdr[offFreeHead:]))
	copy(p.appHdr[:], hdr[offAppHeader:offAppHeader+AppHeaderSize])
	return nil
}

func (p *Pager) writeMeta() error {
	if !p.metaDirty {
		return nil
	}
	buf := make([]byte, p.pageSize)
	copy(buf[offMagic:], magic)
	binary.LittleEndian.PutUint32(buf[offPageSize:], uint32(p.pageSize))
	binary.LittleEndian.PutUint32(buf[offNumPages:], p.numPages)
	binary.LittleEndian.PutUint32(buf[offFreeHead:], uint32(p.freeHead))
	copy(buf[offAppHeader:], p.appHdr[:])
	if _, err := p.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("pager: writing meta page: %w", err)
	}
	p.stats.PagesWritten++
	p.metaDirty = false
	return nil
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// NumPages returns the number of pages in the file, including the meta
// page and freed pages.
func (p *Pager) NumPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.numPages)
}

// Stats returns a snapshot of the I/O counters.
func (p *Pager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the I/O counters (used between benchmark phases).
func (p *Pager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// AppHeader returns a copy of the client header area of the meta page.
func (p *Pager) AppHeader() [AppHeaderSize]byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.appHdr
}

// SetAppHeader replaces the client header area. It is persisted on the
// next Flush or Close.
func (p *Pager) SetAppHeader(hdr [AppHeaderSize]byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.appHdr = hdr
	p.metaDirty = true
}

// Page is a pinned page. Callers must Unpin it when done; pages written to
// must be marked dirty before unpinning.
type Page struct {
	ID    PageID
	p     *Pager
	frame int
}

// Data returns the page contents. The slice is only valid while the page
// is pinned.
func (pg *Page) Data() []byte { return pg.p.frames[pg.frame].data }

// MarkDirty records that the page was modified.
func (pg *Page) MarkDirty() {
	pg.p.mu.Lock()
	pg.p.frames[pg.frame].dirty = true
	pg.p.mu.Unlock()
}

// Unpin releases the page back to the pool.
func (pg *Page) Unpin() {
	pg.p.mu.Lock()
	fr := &pg.p.frames[pg.frame]
	if fr.pins > 0 {
		fr.pins--
	}
	pg.p.mu.Unlock()
}

// Allocate returns a new zeroed page, reusing freed pages when possible.
// The page is returned pinned and dirty.
func (p *Pager) Allocate() (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if p.readOnly {
		return nil, errors.New("pager: allocate on read-only file")
	}
	var id PageID
	if p.freeHead != NilPage {
		id = p.freeHead
		// The next free page id is stored in the first 4 bytes.
		fi, err := p.fetchLocked(id)
		if err != nil {
			return nil, err
		}
		p.freeHead = PageID(binary.LittleEndian.Uint32(p.frames[fi].data))
		for i := range p.frames[fi].data {
			p.frames[fi].data[i] = 0
		}
		p.frames[fi].dirty = true
		p.metaDirty = true
		p.stats.Allocations++
		return &Page{ID: id, p: p, frame: fi}, nil
	}
	id = PageID(p.numPages)
	p.numPages++
	p.metaDirty = true
	p.stats.Allocations++
	fi, err := p.newFrameLocked(id)
	if err != nil {
		return nil, err
	}
	p.frames[fi].dirty = true
	return &Page{ID: id, p: p, frame: fi}, nil
}

// Free returns a page to the freelist.
func (p *Pager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if id == metaPageID || uint32(id) >= p.numPages {
		return fmt.Errorf("pager: free of invalid page %d", id)
	}
	fi, err := p.fetchLocked(id)
	if err != nil {
		return err
	}
	fr := &p.frames[fi]
	binary.LittleEndian.PutUint32(fr.data, uint32(p.freeHead))
	fr.dirty = true
	fr.pins--
	p.freeHead = id
	p.metaDirty = true
	return nil
}

// Read pins and returns the page with the given id.
func (p *Pager) Read(id PageID) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if id == metaPageID || uint32(id) >= p.numPages {
		return nil, fmt.Errorf("pager: read of invalid page %d", id)
	}
	fi, err := p.fetchLocked(id)
	if err != nil {
		return nil, err
	}
	return &Page{ID: id, p: p, frame: fi}, nil
}

// fetchLocked returns the frame index of page id, loading it from the file
// if necessary. The frame is returned pinned (pins incremented).
func (p *Pager) fetchLocked(id PageID) (int, error) {
	if fi, ok := p.table[id]; ok {
		p.stats.CacheHits++
		p.frames[fi].pins++
		p.frames[fi].refbit = true
		return fi, nil
	}
	p.stats.CacheMisses++
	fi, err := p.victimLocked()
	if err != nil {
		return 0, err
	}
	fr := &p.frames[fi]
	off := int64(id) * int64(p.pageSize)
	n, err := p.f.ReadAt(fr.data, off)
	if err != nil && err != io.EOF {
		return 0, fmt.Errorf("pager: reading page %d: %w", id, err)
	}
	if n < p.pageSize {
		// Page beyond EOF (allocated but never written): zero-fill.
		for i := n; i < p.pageSize; i++ {
			fr.data[i] = 0
		}
	}
	p.stats.PagesRead++
	fr.id = id
	fr.pins = 1
	fr.dirty = false
	fr.refbit = true
	fr.valid = true
	p.table[id] = fi
	return fi, nil
}

// newFrameLocked claims a frame for a brand-new page without reading the
// file. The frame is returned pinned and zeroed.
func (p *Pager) newFrameLocked(id PageID) (int, error) {
	fi, err := p.victimLocked()
	if err != nil {
		return 0, err
	}
	fr := &p.frames[fi]
	for i := range fr.data {
		fr.data[i] = 0
	}
	fr.id = id
	fr.pins = 1
	fr.dirty = false
	fr.refbit = true
	fr.valid = true
	p.table[id] = fi
	return fi, nil
}

// victimLocked finds a free or evictable frame using the clock algorithm,
// writing back a dirty victim.
func (p *Pager) victimLocked() (int, error) {
	n := len(p.frames)
	for sweep := 0; sweep < 2*n+1; sweep++ {
		fi := p.clock
		p.clock = (p.clock + 1) % n
		fr := &p.frames[fi]
		if !fr.valid {
			return fi, nil
		}
		if fr.pins > 0 {
			continue
		}
		if fr.refbit {
			fr.refbit = false
			continue
		}
		if fr.dirty {
			if err := p.writeFrameLocked(fr); err != nil {
				return 0, err
			}
		}
		delete(p.table, fr.id)
		fr.valid = false
		return fi, nil
	}
	return 0, fmt.Errorf("pager: buffer pool exhausted (%d frames, all pinned)", n)
}

func (p *Pager) writeFrameLocked(fr *frame) error {
	off := int64(fr.id) * int64(p.pageSize)
	if _, err := p.f.WriteAt(fr.data, off); err != nil {
		return fmt.Errorf("pager: writing page %d: %w", fr.id, err)
	}
	p.stats.PagesWritten++
	fr.dirty = false
	return nil
}

// Flush writes all dirty pages and the meta page to the file.
func (p *Pager) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	return p.flushLocked()
}

func (p *Pager) flushLocked() error {
	for i := range p.frames {
		fr := &p.frames[i]
		if fr.valid && fr.dirty {
			if err := p.writeFrameLocked(fr); err != nil {
				return err
			}
		}
	}
	return p.writeMeta()
}

// Sync flushes and fsyncs the file.
func (p *Pager) Sync() error {
	if err := p.Flush(); err != nil {
		return err
	}
	return p.f.Sync()
}

// Close flushes and closes the file.
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	var err error
	if !p.readOnly {
		err = p.flushLocked()
	}
	p.closed = true
	if cerr := p.f.Close(); err == nil {
		err = cerr
	}
	return err
}

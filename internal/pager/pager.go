// Package pager implements the page-based storage manager underneath the
// B+-trees: a single file of fixed-size pages fronted by a bounded buffer
// pool with pinning, clock eviction and write-back.
//
// It is one half of this project's substitution for the Berkeley DB storage
// manager the paper's students used (the other half is package btree). The
// buffer pool size bounds the memory the query engines may use, which is
// how the testbed enforces the paper's "20 MB of memory" efficiency-test
// cap; the pool also counts page reads, writes, hits and misses so the cost
// model can be calibrated against observed I/O.
//
// # Sharding
//
// The buffer pool is split into lock-striped shards keyed by the low bits
// of the PageID. Each shard owns its frames, its pageID→frame hash table
// and its clock hand, all guarded by a per-shard mutex, so concurrent
// readers touching different shards never contend. The I/O counters are
// sync/atomic and lock-free. Only the file metadata (page count, freelist,
// app header) keeps a single mutex; it is taken on the write/allocate path
// used at load time and never on the hot read path. Lock order is always
// meta → shard → update-state, never the reverse.
//
// # Durability
//
// When Options.WAL is set, every non-meta page carries an 8-byte LSN
// header (Data() exposes only the usable remainder) and mutations happen
// inside update units: BeginUpdate snapshots the metadata and starts
// capturing before-images of every page touched; CommitUpdate stamps each
// dirtied page with a fresh LSN, appends whole-page redo images plus a
// commit record to the WAL and group-flushes it — only then may the pages
// reach the data file (pages dirtied by an open unit are pinned into the
// pool, and a page is never written back before the WAL covering it is
// durable). AbortUpdate restores the before-images. Recover replays
// committed units from the log, skipping pages whose on-disk LSN already
// covers a record, so replay is idempotent; Checkpoint flushes and fsyncs
// the data file and then truncates the log.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"xqdb/internal/wal"
)

// PageID identifies a page within the file. Page 0 is the meta page and is
// never handed out; 0 therefore doubles as a nil page id.
type PageID uint32

// NilPage is the zero PageID, used as a null pointer.
const NilPage PageID = 0

const (
	magic        = "XQDBPG02"
	metaPageID   = PageID(0)
	offMagic     = 0
	offPageSize  = 8
	offNumPages  = 12
	offFreeHead  = 16
	offAppHeader = 24
	// AppHeaderSize is the number of bytes of the meta page reserved for
	// the client (the store layer keeps B+-tree roots and counters there).
	AppHeaderSize = 128
)

// PageHdrSize is the per-page header on every non-meta page: the 8-byte
// LSN of the last WAL record that wrote the page. Page.Data() starts past
// it.
const PageHdrSize = 8

// DefaultPageSize is the page size used when Options.PageSize is zero.
const DefaultPageSize = 4096

// DefaultCacheFrames is the buffer pool size used when Options.CacheFrames
// is zero: 1024 frames of 4 KiB = 4 MiB.
const DefaultCacheFrames = 1024

// minFramesPerShard is the smallest shard a pool is allowed to have: below
// this, B+-tree descents (which keep a root-to-leaf path pinned during
// inserts) can exhaust a shard even though the pool as a whole has room.
const minFramesPerShard = 8

// maxShards caps the stripe count; beyond ~4× typical core counts the
// extra shards only cost memory locality.
const maxShards = 64

// ErrClosed is returned by operations on a closed Pager.
var ErrClosed = errors.New("pager: closed")

// ErrUpdateActive is returned when an operation that would write
// uncommitted pages runs while an update unit is open, or a second unit is
// begun.
var ErrUpdateActive = errors.New("pager: update unit active")

// IOHook is consulted before page-file reads ("page:read") and writes
// ("page:write"); a non-nil return fails the operation with that error.
// The fault-injection harness uses it to fail the Nth I/O
// deterministically.
type IOHook func(op string) error

// Options configures Open.
type Options struct {
	// PageSize is the page size in bytes for newly created files. It must
	// be a power of two >= 512. Existing files keep their page size.
	PageSize int
	// CacheFrames is the number of pages the buffer pool may hold.
	CacheFrames int
	// ReadOnly opens the file for reading only.
	ReadOnly bool
	// IOHook, when set, is consulted before every page read and write.
	IOHook IOHook
	// WAL, when set, enables update units: mutations between BeginUpdate
	// and CommitUpdate are logged to it before any page reaches the data
	// file.
	WAL *wal.Log
}

// Stats counts buffer pool and file I/O activity since Open.
type Stats struct {
	PagesRead    int64 // pages fetched from the OS file
	PagesWritten int64 // pages written back to the OS file
	CacheHits    int64 // page requests served from the pool
	CacheMisses  int64 // page requests that went to the file
	Allocations  int64 // pages allocated
}

// counters is the lock-free mutable form of Stats.
type counters struct {
	pagesRead    atomic.Int64
	pagesWritten atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	allocations  atomic.Int64
}

// frame is one buffer-pool slot.
type frame struct {
	id     PageID
	data   []byte
	pins   int
	dirty  bool
	refbit bool
	valid  bool
	// unlogged marks a frame dirtied by the open update unit whose redo
	// record is not yet on the WAL: it must not be evicted (written back)
	// until the unit commits.
	unlogged bool
}

// shard is one stripe of the buffer pool: a private frame array, hash
// table and clock hand under a private mutex.
type shard struct {
	mu     sync.Mutex
	frames []frame
	table  map[PageID]int // pageID -> frame index
	clock  int
}

// beforeImage is the pre-update state of one touched page, kept for
// AbortUpdate.
type beforeImage struct {
	data     []byte // full frame bytes incl. LSN header; nil for fresh pages
	wasDirty bool
}

// Pager manages the page file and its buffer pool. All methods are safe
// for concurrent use, except that update units (BeginUpdate through
// CommitUpdate/AbortUpdate) assume a single writer with no concurrent
// mutators; the layers above serialize writers per store.
type Pager struct {
	f        *os.File
	pageSize int
	readOnly bool
	ioHook   IOHook
	wal      *wal.Log

	closed   atomic.Bool
	numPages atomic.Uint32 // including the meta page

	// meta guards the file metadata mutated on the allocate/free path.
	meta struct {
		sync.Mutex
		freeHead  PageID
		appHdr    [AppHeaderSize]byte
		metaDirty bool
	}

	shards    []shard
	shardMask uint32

	// updActive is the lock-free fast-path check on fetch; upd holds the
	// open unit's before-images and metadata snapshot.
	updActive atomic.Bool
	upd       struct {
		sync.Mutex
		touched   map[PageID]*beforeImage
		freeHead  PageID
		appHdr    [AppHeaderSize]byte
		metaDirty bool
		numPages  uint32
	}

	// dpt is the dirty-page table: pages whose latest committed image is
	// on the WAL but not yet in the data file, with the LSN of that
	// image. Entries clear as pages are written back.
	dpt struct {
		sync.Mutex
		pages map[PageID]uint64
	}

	stats counters
}

// shardFor maps a page id to its stripe. Page ids are allocated
// sequentially, so the low bits distribute uniformly.
func (p *Pager) shardFor(id PageID) *shard {
	return &p.shards[uint32(id)&p.shardMask]
}

// shardCount picks a power-of-two stripe count that keeps every shard at
// least minFramesPerShard frames.
func shardCount(cacheFrames int) int {
	n := 1
	limit := runtime.GOMAXPROCS(0) * 4
	if limit > maxShards {
		limit = maxShards
	}
	for n*2 <= limit && cacheFrames/(n*2) >= minFramesPerShard {
		n *= 2
	}
	return n
}

// Open opens or creates the page file at path.
func Open(path string, opts Options) (*Pager, error) {
	if opts.PageSize == 0 {
		opts.PageSize = DefaultPageSize
	}
	if opts.PageSize < 512 || opts.PageSize&(opts.PageSize-1) != 0 {
		return nil, fmt.Errorf("pager: page size %d is not a power of two >= 512", opts.PageSize)
	}
	if opts.CacheFrames <= 0 {
		opts.CacheFrames = DefaultCacheFrames
	}
	if opts.CacheFrames < minFramesPerShard {
		opts.CacheFrames = minFramesPerShard
	}
	flag := os.O_RDWR | os.O_CREATE
	if opts.ReadOnly {
		flag = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	p := &Pager{
		f:        f,
		pageSize: opts.PageSize,
		readOnly: opts.ReadOnly,
		ioHook:   opts.IOHook,
		wal:      opts.WAL,
	}
	p.dpt.pages = make(map[PageID]uint64)
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: %w", err)
	}
	if fi.Size() == 0 {
		if opts.ReadOnly {
			f.Close()
			return nil, fmt.Errorf("pager: %s is empty", path)
		}
		p.numPages.Store(1)
		p.meta.metaDirty = true
		if err := p.writeMetaLocked(); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		if err := p.readMeta(); err != nil {
			f.Close()
			return nil, err
		}
	}
	ns := shardCount(opts.CacheFrames)
	p.shards = make([]shard, ns)
	p.shardMask = uint32(ns - 1)
	base, extra := opts.CacheFrames/ns, opts.CacheFrames%ns
	for i := range p.shards {
		n := base
		if i < extra {
			n++
		}
		sh := &p.shards[i]
		sh.frames = make([]frame, n)
		sh.table = make(map[PageID]int, n)
		for j := range sh.frames {
			sh.frames[j].data = make([]byte, p.pageSize)
		}
	}
	return p, nil
}

func (p *Pager) readMeta() error {
	hdr := make([]byte, 512)
	if _, err := p.f.ReadAt(hdr, 0); err != nil && err != io.EOF {
		return fmt.Errorf("pager: reading meta page: %w", err)
	}
	if string(hdr[offMagic:offMagic+8]) != magic {
		return fmt.Errorf("pager: bad magic, not a xqdb page file")
	}
	ps := binary.LittleEndian.Uint32(hdr[offPageSize:])
	if ps < 512 || ps&(ps-1) != 0 {
		return fmt.Errorf("pager: corrupt page size %d", ps)
	}
	p.pageSize = int(ps)
	p.numPages.Store(binary.LittleEndian.Uint32(hdr[offNumPages:]))
	p.meta.freeHead = PageID(binary.LittleEndian.Uint32(hdr[offFreeHead:]))
	copy(p.meta.appHdr[:], hdr[offAppHeader:offAppHeader+AppHeaderSize])
	return nil
}

// buildMetaLocked renders the meta page image. Caller holds p.meta.
func (p *Pager) buildMetaLocked() []byte {
	buf := make([]byte, p.pageSize)
	copy(buf[offMagic:], magic)
	binary.LittleEndian.PutUint32(buf[offPageSize:], uint32(p.pageSize))
	binary.LittleEndian.PutUint32(buf[offNumPages:], p.numPages.Load())
	binary.LittleEndian.PutUint32(buf[offFreeHead:], uint32(p.meta.freeHead))
	copy(buf[offAppHeader:], p.meta.appHdr[:])
	return buf
}

// writeMetaLocked persists the meta page. Caller holds p.meta (or has
// exclusive access during Open).
func (p *Pager) writeMetaLocked() error {
	if !p.meta.metaDirty {
		return nil
	}
	if _, err := p.f.WriteAt(p.buildMetaLocked(), 0); err != nil {
		return fmt.Errorf("pager: writing meta page: %w", err)
	}
	p.stats.pagesWritten.Add(1)
	p.meta.metaDirty = false
	return nil
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// UsableSize returns the bytes of a page available to clients: the page
// size minus the per-page LSN header.
func (p *Pager) UsableSize() int { return p.pageSize - PageHdrSize }

// NumPages returns the number of pages in the file, including the meta
// page and freed pages.
func (p *Pager) NumPages() int { return int(p.numPages.Load()) }

// Shards returns the number of buffer pool stripes (for tests and
// diagnostics).
func (p *Pager) Shards() int { return len(p.shards) }

// PinnedPages returns the total pin count across the buffer pool. A
// quiescent pager (no operation in flight) must report zero; the leak
// checks of the robustness harness rely on that after every query.
func (p *Pager) PinnedPages() int {
	total := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for j := range sh.frames {
			if sh.frames[j].valid {
				total += sh.frames[j].pins
			}
		}
		sh.mu.Unlock()
	}
	return total
}

// DirtyLogged returns the size of the dirty-page table: committed pages
// whose images live only on the WAL so far.
func (p *Pager) DirtyLogged() int {
	p.dpt.Lock()
	defer p.dpt.Unlock()
	return len(p.dpt.pages)
}

// Stats returns a snapshot of the I/O counters.
func (p *Pager) Stats() Stats {
	return Stats{
		PagesRead:    p.stats.pagesRead.Load(),
		PagesWritten: p.stats.pagesWritten.Load(),
		CacheHits:    p.stats.cacheHits.Load(),
		CacheMisses:  p.stats.cacheMisses.Load(),
		Allocations:  p.stats.allocations.Load(),
	}
}

// ResetStats zeroes the I/O counters (used between benchmark phases).
func (p *Pager) ResetStats() {
	p.stats.pagesRead.Store(0)
	p.stats.pagesWritten.Store(0)
	p.stats.cacheHits.Store(0)
	p.stats.cacheMisses.Store(0)
	p.stats.allocations.Store(0)
}

// AppHeader returns a copy of the client header area of the meta page.
func (p *Pager) AppHeader() [AppHeaderSize]byte {
	p.meta.Lock()
	defer p.meta.Unlock()
	return p.meta.appHdr
}

// SetAppHeader replaces the client header area. It is persisted on the
// next Flush or Close.
func (p *Pager) SetAppHeader(hdr [AppHeaderSize]byte) {
	p.meta.Lock()
	defer p.meta.Unlock()
	p.meta.appHdr = hdr
	p.meta.metaDirty = true
}

// Page is a pinned page. Callers must Unpin it when done; pages written to
// must be marked dirty before unpinning.
type Page struct {
	ID    PageID
	p     *Pager
	sh    *shard
	frame int
}

// Data returns the page contents past the LSN header. The slice is only
// valid while the page is pinned.
func (pg *Page) Data() []byte { return pg.sh.frames[pg.frame].data[PageHdrSize:] }

// LSN returns the LSN of the last WAL record that wrote this page (0 if
// never logged).
func (pg *Page) LSN() uint64 {
	return binary.LittleEndian.Uint64(pg.sh.frames[pg.frame].data)
}

// MarkDirty records that the page was modified. Inside an update unit the
// frame additionally becomes unevictable until the unit resolves.
func (pg *Page) MarkDirty() {
	pg.sh.mu.Lock()
	fr := &pg.sh.frames[pg.frame]
	fr.dirty = true
	if pg.p.updActive.Load() {
		fr.unlogged = true
	}
	pg.sh.mu.Unlock()
}

// Unpin releases the page back to the pool.
func (pg *Page) Unpin() {
	pg.sh.mu.Lock()
	fr := &pg.sh.frames[pg.frame]
	if fr.pins > 0 {
		fr.pins--
	}
	pg.sh.mu.Unlock()
}

// Allocate returns a new zeroed page, reusing freed pages when possible.
// The page is returned pinned and dirty.
func (p *Pager) Allocate() (*Page, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	if p.readOnly {
		return nil, errors.New("pager: allocate on read-only file")
	}
	p.meta.Lock()
	defer p.meta.Unlock()
	if p.closed.Load() {
		return nil, ErrClosed
	}
	if p.meta.freeHead != NilPage {
		id := p.meta.freeHead
		// The next free page id is stored in the first 4 bytes.
		pg, err := p.fetch(id)
		if err != nil {
			return nil, err
		}
		d := pg.Data()
		p.meta.freeHead = PageID(binary.LittleEndian.Uint32(d))
		for i := range d {
			d[i] = 0
		}
		pg.MarkDirty()
		p.meta.metaDirty = true
		p.stats.allocations.Add(1)
		return pg, nil
	}
	// Install the frame before publishing the new page count: a concurrent
	// Read of this id must either see "invalid page" (not yet published)
	// or find the installed frame — never race Allocate into loading a
	// second frame for the same id.
	id := PageID(p.numPages.Load())
	pg, err := p.newFrame(id)
	if err != nil {
		return nil, err
	}
	p.numPages.Store(uint32(id) + 1)
	p.meta.metaDirty = true
	p.stats.allocations.Add(1)
	pg.MarkDirty()
	return pg, nil
}

// Free returns a page to the freelist.
func (p *Pager) Free(id PageID) error {
	if p.closed.Load() {
		return ErrClosed
	}
	if id == metaPageID || uint32(id) >= p.numPages.Load() {
		return fmt.Errorf("pager: free of invalid page %d", id)
	}
	p.meta.Lock()
	defer p.meta.Unlock()
	if p.closed.Load() {
		return ErrClosed
	}
	pg, err := p.fetch(id)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(pg.Data(), uint32(p.meta.freeHead))
	pg.MarkDirty()
	pg.Unpin()
	p.meta.freeHead = id
	p.meta.metaDirty = true
	return nil
}

// Read pins and returns the page with the given id. This is the hot path:
// it touches only the page's shard, never the meta mutex.
func (p *Pager) Read(id PageID) (*Page, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	if id == metaPageID || uint32(id) >= p.numPages.Load() {
		return nil, fmt.Errorf("pager: read of invalid page %d", id)
	}
	return p.fetch(id)
}

// captureLocked records the before-image of a page first touched by the
// open update unit. Caller holds the page's shard mutex; fr may be nil for
// a fresh page that has no prior image.
func (p *Pager) captureLocked(id PageID, fr *frame) {
	p.upd.Lock()
	if p.upd.touched == nil {
		p.upd.Unlock()
		return
	}
	if _, ok := p.upd.touched[id]; !ok {
		img := &beforeImage{}
		if fr != nil {
			img.data = append([]byte(nil), fr.data...)
			img.wasDirty = fr.dirty
		}
		p.upd.touched[id] = img
	}
	p.upd.Unlock()
}

// fetch returns the page pinned, loading it from the file into its shard
// if necessary.
func (p *Pager) fetch(id PageID) (*Page, error) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	// Re-check closed under the shard lock: Close sets the flag and then
	// takes every shard mutex before closing the file, so a fetch that
	// passes this check finishes its I/O before the descriptor goes away.
	if p.closed.Load() {
		sh.mu.Unlock()
		return nil, ErrClosed
	}
	if fi, ok := sh.table[id]; ok {
		sh.frames[fi].pins++
		sh.frames[fi].refbit = true
		if p.updActive.Load() {
			p.captureLocked(id, &sh.frames[fi])
		}
		sh.mu.Unlock()
		p.stats.cacheHits.Add(1)
		return &Page{ID: id, p: p, sh: sh, frame: fi}, nil
	}
	fi, err := p.victimLocked(sh)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	fr := &sh.frames[fi]
	off := int64(id) * int64(p.pageSize)
	if p.ioHook != nil {
		if err := p.ioHook("page:read"); err != nil {
			sh.mu.Unlock()
			return nil, fmt.Errorf("pager: reading page %d: %w", id, err)
		}
	}
	n, err := p.f.ReadAt(fr.data, off)
	if err != nil && err != io.EOF {
		sh.mu.Unlock()
		return nil, fmt.Errorf("pager: reading page %d: %w", id, err)
	}
	if n < p.pageSize {
		// Page beyond EOF (allocated but never written): zero-fill.
		for i := n; i < p.pageSize; i++ {
			fr.data[i] = 0
		}
	}
	fr.id = id
	fr.pins = 1
	fr.dirty = false
	fr.refbit = true
	fr.valid = true
	fr.unlogged = false
	sh.table[id] = fi
	if p.updActive.Load() {
		p.captureLocked(id, fr)
	}
	sh.mu.Unlock()
	p.stats.cacheMisses.Add(1)
	p.stats.pagesRead.Add(1)
	return &Page{ID: id, p: p, sh: sh, frame: fi}, nil
}

// newFrame claims a frame for a brand-new page without reading the file.
// The page is returned pinned and zeroed.
func (p *Pager) newFrame(id PageID) (*Page, error) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if p.closed.Load() {
		return nil, ErrClosed
	}
	fi, err := p.victimLocked(sh)
	if err != nil {
		return nil, err
	}
	fr := &sh.frames[fi]
	for i := range fr.data {
		fr.data[i] = 0
	}
	fr.id = id
	fr.pins = 1
	fr.dirty = false
	fr.refbit = true
	fr.valid = true
	fr.unlogged = false
	sh.table[id] = fi
	if p.updActive.Load() {
		p.captureLocked(id, nil)
	}
	return &Page{ID: id, p: p, sh: sh, frame: fi}, nil
}

// victimLocked finds a free or evictable frame in sh using the clock
// algorithm, writing back a dirty victim. Frames dirtied by the open
// update unit are unevictable (their redo is not yet logged). Caller holds
// sh.mu.
func (p *Pager) victimLocked(sh *shard) (int, error) {
	n := len(sh.frames)
	for sweep := 0; sweep < 2*n+1; sweep++ {
		fi := sh.clock
		sh.clock = (sh.clock + 1) % n
		fr := &sh.frames[fi]
		if !fr.valid {
			return fi, nil
		}
		if fr.pins > 0 || fr.unlogged {
			continue
		}
		if fr.refbit {
			fr.refbit = false
			continue
		}
		if fr.dirty {
			if err := p.writeFrame(fr); err != nil {
				return 0, err
			}
		}
		delete(sh.table, fr.id)
		fr.valid = false
		return fi, nil
	}
	return 0, fmt.Errorf("pager: buffer pool shard exhausted (%d frames, all pinned)", n)
}

func (p *Pager) writeFrame(fr *frame) error {
	if p.wal != nil {
		// WAL-before-page: never write a page whose covering log record
		// is not durable.
		if lsn := binary.LittleEndian.Uint64(fr.data); lsn > p.wal.FlushedLSN() {
			return fmt.Errorf("pager: page %d write ahead of WAL (lsn %d > flushed %d)",
				fr.id, lsn, p.wal.FlushedLSN())
		}
	}
	off := int64(fr.id) * int64(p.pageSize)
	if p.ioHook != nil {
		if err := p.ioHook("page:write"); err != nil {
			return fmt.Errorf("pager: writing page %d: %w", fr.id, err)
		}
	}
	if _, err := p.f.WriteAt(fr.data, off); err != nil {
		return fmt.Errorf("pager: writing page %d: %w", fr.id, err)
	}
	p.stats.pagesWritten.Add(1)
	fr.dirty = false
	p.dpt.Lock()
	delete(p.dpt.pages, fr.id)
	p.dpt.Unlock()
	return nil
}

// BeginUpdate opens an update unit: the metadata is snapshotted and every
// page touched from here captures a before-image, so AbortUpdate can
// restore the pre-unit state exactly. Requires Options.WAL.
func (p *Pager) BeginUpdate() error {
	if p.closed.Load() {
		return ErrClosed
	}
	if p.readOnly || p.wal == nil {
		return errors.New("pager: update on read-only or WAL-less pager")
	}
	p.meta.Lock()
	defer p.meta.Unlock()
	p.upd.Lock()
	defer p.upd.Unlock()
	if p.upd.touched != nil {
		return ErrUpdateActive
	}
	p.upd.touched = make(map[PageID]*beforeImage)
	p.upd.freeHead = p.meta.freeHead
	p.upd.appHdr = p.meta.appHdr
	p.upd.metaDirty = p.meta.metaDirty
	p.upd.numPages = p.numPages.Load()
	p.updActive.Store(true)
	return nil
}

// InUpdate reports whether an update unit is open.
func (p *Pager) InUpdate() bool { return p.updActive.Load() }

// CommitUpdate makes the open unit durable: every page it dirtied is
// stamped with a fresh LSN and appended to the WAL as a redo image, the
// (possibly dirty) meta page follows, then a commit record carrying seq,
// and the whole unit reaches disk in one group flush.
//
// committed reports whether the unit is durable on the log: a non-nil
// error with committed=true means the commit hit disk but a hook fired
// just after (the crash-harness's "died right after commit" point) — the
// in-memory state is kept. With committed=false the caller must
// AbortUpdate to roll back.
func (p *Pager) CommitUpdate(seq uint64) (committed bool, err error) {
	if !p.updActive.Load() {
		return false, errors.New("pager: commit without update unit")
	}
	p.meta.Lock()
	defer p.meta.Unlock()

	// Collect the unit's dirtied frames. They cannot be evicted or
	// concurrently modified (single writer), so holding each shard lock
	// only while scanning is safe.
	type dirtyRef struct {
		sh *shard
		fi int
		id PageID
	}
	var dirties []dirtyRef
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for j := range sh.frames {
			if sh.frames[j].valid && sh.frames[j].unlogged {
				dirties = append(dirties, dirtyRef{sh: sh, fi: j, id: sh.frames[j].id})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(dirties, func(i, j int) bool { return dirties[i].id < dirties[j].id })

	lsns := make(map[PageID]uint64, len(dirties))
	for _, d := range dirties {
		fr := &d.sh.frames[d.fi]
		lsn := p.wal.NextLSN()
		binary.LittleEndian.PutUint64(fr.data, lsn)
		got, aerr := p.wal.AppendPage(uint32(d.id), fr.data)
		if aerr != nil {
			p.wal.DropBuffer()
			return false, aerr
		}
		if got != lsn {
			p.wal.DropBuffer()
			return false, fmt.Errorf("pager: LSN skew (%d != %d)", got, lsn)
		}
		lsns[d.id] = lsn
	}
	if p.meta.metaDirty {
		if _, aerr := p.wal.AppendPage(0, p.buildMetaLocked()); aerr != nil {
			p.wal.DropBuffer()
			return false, aerr
		}
	}
	if _, aerr := p.wal.AppendCommit(seq); aerr != nil {
		p.wal.DropBuffer()
		return false, aerr
	}
	ferr := p.wal.Flush()
	if p.wal.LastSeq() < seq {
		// The group flush did not reach disk: nothing of the unit is
		// durable. Strip the stamped LSNs so the frames don't claim
		// coverage by records that never made it.
		for _, d := range dirties {
			binary.LittleEndian.PutUint64(d.sh.frames[d.fi].data, 0)
		}
		p.wal.DropBuffer()
		if ferr == nil {
			ferr = errors.New("pager: WAL flush incomplete")
		}
		return false, ferr
	}
	// Durable. Clear the unit and record the pages as logged-but-unwritten.
	p.dpt.Lock()
	for id, lsn := range lsns {
		p.dpt.pages[id] = lsn
	}
	p.dpt.Unlock()
	for _, d := range dirties {
		d.sh.mu.Lock()
		d.sh.frames[d.fi].unlogged = false
		d.sh.mu.Unlock()
	}
	p.upd.Lock()
	p.upd.touched = nil
	p.upd.Unlock()
	p.updActive.Store(false)
	return true, ferr
}

// AbortUpdate rolls the open unit back: touched pages are restored from
// their before-images (fresh allocations are discarded) and the metadata
// snapshot is reinstated. A no-op if no unit is open.
func (p *Pager) AbortUpdate() {
	if !p.updActive.Load() {
		return
	}
	p.meta.Lock()
	defer p.meta.Unlock()
	p.upd.Lock()
	touched := p.upd.touched
	p.upd.touched = nil
	p.upd.Unlock()
	p.updActive.Store(false)
	for id, img := range touched {
		sh := p.shardFor(id)
		sh.mu.Lock()
		fi, ok := sh.table[id]
		if ok {
			fr := &sh.frames[fi]
			if img.data != nil {
				copy(fr.data, img.data)
				fr.dirty = img.wasDirty
				fr.unlogged = false
			} else {
				// Fresh allocation: the page did not exist before the
				// unit; drop the frame.
				fr.valid = false
				fr.pins = 0
				fr.unlogged = false
				delete(sh.table, id)
			}
		}
		sh.mu.Unlock()
	}
	p.meta.freeHead = p.upd.freeHead
	p.meta.appHdr = p.upd.appHdr
	p.meta.metaDirty = p.upd.metaDirty
	p.numPages.Store(p.upd.numPages)
}

// Recover replays committed units from the WAL into the data file. It must
// run right after Open, before any pages are read through the pool. Page
// images whose on-disk LSN already covers them are skipped, so replaying
// twice (a crash during recovery) is harmless. Uncommitted trailing
// records are ignored. Returns the highest committed sequence number seen
// and the number of page images applied.
func (p *Pager) Recover() (lastSeq uint64, applied int, err error) {
	if p.wal == nil {
		return 0, 0, nil
	}
	type pimg struct {
		id  uint32
		lsn uint64
		img []byte
	}
	var pending []pimg
	rerr := p.wal.Replay(func(lsn uint64, typ byte, payload []byte) error {
		switch typ {
		case wal.RecPage:
			if len(payload) < 4 {
				return fmt.Errorf("pager: recover: short page record at LSN %d", lsn)
			}
			pending = append(pending, pimg{
				id:  binary.LittleEndian.Uint32(payload),
				img: append([]byte(nil), payload[4:]...),
			})
		case wal.RecCommit:
			for _, pi := range pending {
				ok, aerr := p.applyImage(pi.id, pi.img)
				if aerr != nil {
					return aerr
				}
				if ok {
					applied++
				}
			}
			pending = nil
			lastSeq = binary.LittleEndian.Uint64(payload)
		case wal.RecCheckpoint:
			if s := binary.LittleEndian.Uint64(payload); s > lastSeq {
				lastSeq = s
			}
			pending = nil
		}
		return nil
	})
	if rerr != nil {
		return lastSeq, applied, rerr
	}
	if applied > 0 {
		if err := p.f.Sync(); err != nil {
			return lastSeq, applied, fmt.Errorf("pager: recover: %w", err)
		}
		if err := p.readMeta(); err != nil {
			return lastSeq, applied, err
		}
	}
	return lastSeq, applied, nil
}

// applyImage writes one redo page image unless the on-disk page already
// carries an equal or newer LSN. The meta page (no LSN header) is always
// applied; the last committed image wins.
func (p *Pager) applyImage(id uint32, img []byte) (bool, error) {
	if len(img) != p.pageSize {
		return false, fmt.Errorf("pager: recover: page %d image size %d != %d", id, len(img), p.pageSize)
	}
	off := int64(id) * int64(p.pageSize)
	if id != 0 {
		recLSN := binary.LittleEndian.Uint64(img)
		var hdr [PageHdrSize]byte
		n, err := p.f.ReadAt(hdr[:], off)
		if err != nil && err != io.EOF {
			return false, fmt.Errorf("pager: recover: %w", err)
		}
		if n == PageHdrSize {
			if diskLSN := binary.LittleEndian.Uint64(hdr[:]); diskLSN >= recLSN {
				return false, nil
			}
		}
	}
	if p.ioHook != nil {
		if err := p.ioHook("page:write"); err != nil {
			return false, fmt.Errorf("pager: recover: %w", err)
		}
	}
	if _, err := p.f.WriteAt(img, off); err != nil {
		return false, fmt.Errorf("pager: recover: %w", err)
	}
	p.stats.pagesWritten.Add(1)
	return true, nil
}

// Checkpoint makes the data file self-contained: every dirty page and the
// meta page are written back and fsynced, then the WAL is compacted down
// to a single checkpoint record carrying lastSeq. The "wal:mid-checkpoint"
// crash point sits between the two steps — a crash there leaves a fully
// flushed data file plus a still-complete log, either of which recovers.
func (p *Pager) Checkpoint(lastSeq uint64) error {
	p.meta.Lock()
	defer p.meta.Unlock()
	if p.closed.Load() {
		return ErrClosed
	}
	if p.updActive.Load() {
		return ErrUpdateActive
	}
	if err := p.flushMetaLocked(); err != nil {
		return err
	}
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("pager: checkpoint: %w", err)
	}
	p.dpt.Lock()
	p.dpt.pages = make(map[PageID]uint64)
	p.dpt.Unlock()
	if p.wal != nil {
		if err := p.wal.CrashHook("wal:mid-checkpoint"); err != nil {
			return err
		}
		if err := p.wal.Checkpoint(lastSeq); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes all dirty pages and the meta page to the file.
func (p *Pager) Flush() error {
	p.meta.Lock()
	defer p.meta.Unlock()
	if p.closed.Load() {
		return ErrClosed
	}
	return p.flushMetaLocked()
}

// flushMetaLocked writes back every dirty frame shard by shard, then the
// meta page. Caller holds p.meta (lock order meta → shard). Refuses to run
// under an open update unit — that would push uncommitted pages to disk.
func (p *Pager) flushMetaLocked() error {
	if p.updActive.Load() {
		return ErrUpdateActive
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for j := range sh.frames {
			fr := &sh.frames[j]
			if fr.valid && fr.dirty {
				if err := p.writeFrame(fr); err != nil {
					sh.mu.Unlock()
					return err
				}
			}
		}
		sh.mu.Unlock()
	}
	return p.writeMetaLocked()
}

// Sync flushes and fsyncs the file.
func (p *Pager) Sync() error {
	if err := p.Flush(); err != nil {
		return err
	}
	return p.f.Sync()
}

// Close flushes and closes the file. Setting the closed flag and then
// sweeping every shard mutex (the flush does both) acts as a barrier: any
// fetch that entered its shard before the sweep completes its I/O first,
// and any later one sees the flag and returns ErrClosed, so the
// descriptor is never closed under an in-flight read.
func (p *Pager) Close() error {
	// Take the meta lock before swapping the flag so concurrent Close
	// calls serialize: the loser blocks until the winner has flushed and
	// closed the file, preserving "Close returned ⇒ flushed and closed".
	p.meta.Lock()
	defer p.meta.Unlock()
	if p.closed.Swap(true) {
		return nil
	}
	var err error
	if !p.readOnly {
		err = p.flushMetaLocked()
	} else {
		// Read-only: nothing to flush, but still sweep the shard locks to
		// serialize with in-flight fetches before closing the file.
		p.shardBarrier()
	}
	if cerr := p.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// CloseNoFlush closes the file descriptor without writing anything back —
// the crash harness's simulated kill -9. Page writes that completed
// earlier survive (they reached the OS); everything buffered in the pool
// or the unit state is lost.
func (p *Pager) CloseNoFlush() error {
	p.meta.Lock()
	defer p.meta.Unlock()
	if p.closed.Swap(true) {
		return nil
	}
	p.shardBarrier()
	return p.f.Close()
}

func (p *Pager) shardBarrier() {
	for i := range p.shards {
		p.shards[i].mu.Lock()
		p.shards[i].mu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	}
}

package pager

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// fillPages allocates n pages stamped with their own id and flushes.
func fillPages(t testing.TB, p *Pager, n int) []PageID {
	t.Helper()
	ids := make([]PageID, 0, n)
	for i := 0; i < n; i++ {
		pg, err := p.Allocate()
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		pg.Data()[0] = byte(pg.ID)
		pg.Data()[1] = byte(pg.ID >> 8)
		pg.MarkDirty()
		ids = append(ids, pg.ID)
		pg.Unpin()
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return ids
}

// TestConcurrentReadsAndStats hammers Read and Stats from many goroutines
// with a pool smaller than the page set, so hits, misses, evictions and
// stats snapshots race against each other. Run under -race this pins down
// the Stats data race the pre-sharding design had (stats were read under
// the same mutex but mutated on every scan, so a reader calling Stats()
// during a scan raced with the counter increments once any path touched
// them outside the lock).
func TestConcurrentReadsAndStats(t *testing.T) {
	p, _ := openTemp(t, Options{CacheFrames: 64})
	ids := fillPages(t, p, 256)

	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	const iters = 2000
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := ids[(seed*7+i*13)%len(ids)]
				pg, err := p.Read(id)
				if err != nil {
					errs <- err
					return
				}
				if got := PageID(pg.Data()[0]) | PageID(pg.Data()[1])<<8; got != id {
					pg.Unpin()
					errs <- fmt.Errorf("page %d: content says %d", id, got)
					return
				}
				pg.Unpin()
				if i%16 == 0 {
					_ = p.Stats()
				}
			}
		}(w)
	}
	// A stats reader and a resetter race against the readers on purpose.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			s := p.Stats()
			if s.CacheHits < 0 || s.CacheMisses < 0 {
				errs <- fmt.Errorf("negative stats snapshot: %+v", s)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := p.Stats()
	if s.CacheHits+s.CacheMisses == 0 {
		t.Fatal("no page requests recorded")
	}
}

// TestShardDistribution checks that the pool really stripes: with the
// default sizing more than one shard exists and sequential page ids land
// in different shards.
func TestShardDistribution(t *testing.T) {
	p, _ := openTemp(t, Options{CacheFrames: 256})
	if runtime.GOMAXPROCS(0) > 1 && p.Shards() < 2 {
		t.Fatalf("expected a striped pool, got %d shards", p.Shards())
	}
	if p.shardFor(1) == p.shardFor(2) && p.Shards() > 1 {
		t.Fatal("consecutive page ids mapped to the same shard")
	}
	// A tiny pool must collapse to one shard rather than starve descents.
	small, _ := openTemp(t, Options{CacheFrames: 8})
	if small.Shards() != 1 {
		t.Fatalf("8-frame pool should be a single shard, got %d", small.Shards())
	}
}

// TestConcurrentReadersSmallPool forces constant eviction traffic from
// many readers over a pool with one-frame shards' worth of headroom.
func TestConcurrentReadersSmallPool(t *testing.T) {
	p, _ := openTemp(t, Options{CacheFrames: 16})
	ids := fillPages(t, p, 128)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				id := ids[(seed+i)%len(ids)]
				pg, err := p.Read(id)
				if err != nil {
					errs <- err
					return
				}
				if got := PageID(pg.Data()[0]) | PageID(pg.Data()[1])<<8; got != id {
					pg.Unpin()
					errs <- fmt.Errorf("page %d: content says %d", id, got)
					return
				}
				pg.Unpin()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

package testbed

import (
	"testing"

	"xqdb/internal/plancache"
)

// TestCacheEquivalenceFullSuite runs every correctness query on every
// testbed document twice through a plan-cached engine and demands the
// cached (hit) execution return byte-identical results to an uncached
// engine — the end-to-end guarantee behind serving cached plans.
func TestCacheEquivalenceFullSuite(t *testing.T) {
	mismatches, err := RunCacheEquivalence(t.TempDir(), Documents(1), CorrectnessQueries())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		switch {
		case m.NoHit:
			t.Errorf("%s / %q: repeat run missed the plan cache", m.Doc, m.Query)
		case m.ErrU != nil || m.ErrC != nil:
			t.Errorf("%s / %q: error divergence: uncached=%v cached=%v", m.Doc, m.Query, m.ErrU, m.ErrC)
		default:
			t.Errorf("%s / %q:\n  uncached: %s\n  cached:   %s", m.Doc, m.Query, m.Uncached, m.Cached)
		}
	}
}

// TestEfficiencySharedCache runs the efficiency suite twice over one
// shared plan cache: the second pass compiles nothing new and the hit
// rate reflects it.
func TestEfficiencySharedCache(t *testing.T) {
	if testing.Short() {
		t.Skip("efficiency suite in -short mode")
	}
	cache := plancache.New(0)
	cfg := EffConfig{Entries: 100, PlanCache: cache}
	dir := t.TempDir()
	if _, err := RunEfficiency(dir+"/a", cfg); err != nil {
		t.Fatal(err)
	}
	st1 := cache.Stats()
	if st1.Puts == 0 {
		t.Fatal("first pass cached no plans")
	}
	if _, err := RunEfficiency(dir+"/b", cfg); err != nil {
		t.Fatal(err)
	}
	st2 := cache.Stats()
	if st2.Puts != st1.Puts {
		t.Errorf("second pass recompiled: puts %d -> %d", st1.Puts, st2.Puts)
	}
	if st2.Hits <= st1.Hits {
		t.Errorf("second pass hit nothing: hits %d -> %d", st1.Hits, st2.Hits)
	}
	if st2.HitRate() == 0 {
		t.Error("hit rate is zero after repeat pass")
	}
	t.Logf("plan cache: %d entries, hit rate %.2f", cache.Len(), st2.HitRate())
}

// Package testbed reproduces the course evaluation infrastructure of
// Sections 3 and 4 of the paper: the correctness tests (complex XQ
// queries over four XML documents, engines checked against a reference),
// the efficiency tests (five queries under memory and time caps, with
// timed-out engines assigned the cap), the Figure 7 table, and the
// grading system.
package testbed

import (
	"fmt"

	"xqdb/internal/xmlgen"
)

// Doc is one testbed document.
type Doc struct {
	Name string
	XML  string
}

// Documents returns the four test documents of Section 4 at a given scale
// factor (1 = small test scale; the paper used DBLP at 250 MB and 16 MB
// and TREEBANK at 80 MB — scale up for comparable ratios):
//
//	handmade      the Figure 2 document (a few kilobytes in the paper)
//	dblp-excerpt  a small DBLP-shaped document (the 16 MB excerpt)
//	dblp          a larger DBLP-shaped document (the 250 MB corpus)
//	treebank      deeply nested TREEBANK-shaped data (the 80 MB corpus)
func Documents(scale int) []Doc {
	if scale <= 0 {
		scale = 1
	}
	return []Doc{
		{Name: "handmade", XML: xmlgen.Figure2},
		{Name: "dblp-excerpt", XML: xmlgen.DBLP(xmlgen.DBLPConfig{Entries: 40 * scale, Seed: 16})},
		{Name: "dblp", XML: xmlgen.DBLP(xmlgen.DBLPConfig{Entries: 400 * scale, Seed: 250})},
		{Name: "treebank", XML: xmlgen.Treebank(xmlgen.TreebankConfig{Sentences: 20 * scale, Seed: 80})},
	}
}

// CorrectnessQueries returns the 16 correctness-test queries. They cover
// "fairly all XQ constructs and combinations of them" (Section 4):
// navigation on both axes, all three node tests, construction, sequences,
// nesting, if with some/and/or/not, and text comparisons. Every query is
// valid on every document (labels missing from a document simply yield
// empty results).
func CorrectnessQueries() []string {
	return []string{
		// 1: empty sequence and construction
		`<result>{ () }</result>`,
		// 2: root child step
		`for $r in /* return <root/>`,
		// 3: descendant with label
		`//author`,
		// 4: child chain (desugared multi-step path)
		`/dblp/article/title`,
		// 5: text() test
		`for $a in //author return $a/text()`,
		// 6: star test
		`for $e in /* return for $c in $e/* return <child/>`,
		// 7: nested for over descendant (Example 2 shape)
		`<names>{ for $x in //article return for $n in $x//author return $n }</names>`,
		// 8: constructor between for-loops (strict-merging example)
		`<all>{ for $x in //article return <entry>{ for $t in $x/title return $t }</entry> }</all>`,
		// 9: if with some/true() (Example 5 shape)
		`for $x in //article return if (some $v in $x/volume satisfies true()) then $x/title else ()`,
		// 10: if with string comparison through text()
		`for $y in //year/text() return if ($y = "1995") then <y95/> else ()`,
		// 11: variable-to-variable comparison across loops
		`for $a in //phdthesis//text() return for $b in //author/text() return if ($a = $b) then <same/> else ()`,
		// 12: and-condition with two somes
		`for $x in //article return if (some $v in $x/volume satisfies true() and some $p in $x/pages satisfies true()) then <both/> else ()`,
		// 13: or-condition (outside the TPM fragment)
		`for $x in //inproceedings return if (some $t in $x/booktitle satisfies true() or some $v in $x/volume satisfies true()) then <hit/> else ()`,
		// 14: not-condition (outside the TPM fragment)
		`for $x in //article return if (not(some $v in $x/volume satisfies true())) then <novolume/> else ()`,
		// 15: sequences and literal text in constructors
		`<report>head<body>{ for $s in //school return $s, <sep/> }</body></report>`,
		// 16: deep descendant navigation (exercises TREEBANK nesting)
		`for $s in //S return if (some $n in $s//NN satisfies true()) then <nn/> else ()`,
	}
}

// EffTest is one efficiency test: a query engineered to separate the
// optimized engines from the unoptimized ones, with the rationale.
type EffTest struct {
	Name  string
	Query string
	Why   string
}

// EfficiencyTests returns the five efficiency-test queries (Section 4:
// "queries that admit query plans with costs varying by orders of
// magnitude", "resembling in spirit the example query used in Section 2
// to explain milestone 4").
func EfficiencyTests() [5]EffTest {
	return [5]EffTest{
		{
			Name:  "T1",
			Query: `for $x in //phdthesis return for $t in $x/title return $t`,
			Why:   "selective first step: a rare label rewards index-based selection over full scans",
		},
		{
			Name:  "T2",
			Query: `for $x in //inproceedings return for $y in $x//author return $y`,
			Why:   "bulk descendant navigation: index nested-loops with in/out interval bounds vs repeated subtree scans",
		},
		{
			Name:  "T3",
			Query: `for $x in //article return if (some $v in $x/volume satisfies true()) then for $y in $x//author return $y else ()`,
			Why:   "the Example 6 query: join reordering plus semijoin projection (plan QP2) checks only articles that have volumes",
		},
		{
			Name:  "T4",
			Query: `for $x in //article return for $y in $x//cdrom return $y`,
			Why:   "non-existent label in the inner loop: statistics-aware engines reorder it to the bottom and answer in ~0 seconds",
		},
		{
			Name:  "T5",
			Query: `for $y in //author return for $x in $y/note return $x`,
			Why:   "two nested for-loops whose joins have wildly different selectivities: with accurate statistics the optimizer anchors the plan at the rare note relation and restores document order with a cheap sort of the tiny result; the engine with unlucky (uniform) estimates sees no payoff in reordering and keeps the very unselective author loop at the bottom of the plan — the paper's engine 2 anomaly",
		},
	}
}

// EfficiencyDoc generates the DBLP-shaped document the efficiency tests
// run on.
func EfficiencyDoc(entries int, seed int64) string {
	return xmlgen.DBLP(xmlgen.DBLPConfig{Entries: entries, Seed: seed})
}

// String renders the test header.
func (t EffTest) String() string { return fmt.Sprintf("%s: %s", t.Name, t.Query) }

package testbed

import (
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"

	"xqdb/internal/core"
	"xqdb/internal/fault"
	"xqdb/internal/store"
	"xqdb/internal/xasr"
	"xqdb/internal/xmlgen"
)

// CrashConfig parameterizes the crash-recovery harness: a pinned-seed
// random update script killed at every injected I/O crash point, with the
// recovered store byte-compared against a surviving-prefix oracle.
type CrashConfig struct {
	// Seed drives the script generation; the same seed replays the
	// identical statement sequence and crash points.
	Seed int64
	// Statements is the length of the update script (default 24).
	Statements int
	// Points is how many crash points to spread across the script's
	// global I/O-operation sequence (default 100). The named crash
	// points of the commit protocol are exercised on top of these.
	Points int
	// CacheFrames bounds the buffer pool (default 32 — small enough that
	// the injector sees real page traffic).
	CacheFrames int
	// CheckpointBytes triggers fuzzy checkpoints aggressively (default
	// 4 KiB) so the sweep crosses checkpoint crash windows many times.
	CheckpointBytes int64
	// Doc is the base document (default a small DBLP-shaped document).
	Doc string
	// Queries are the correctness queries replayed on every recovered
	// store (default CorrectnessQueries()).
	Queries []string
}

// CrashFailure records one crash-recovery violation.
type CrashFailure struct {
	Point string // "op@N" or "wal:appended@K"
	Stmt  int    // statement index the run crashed in (-1: none)
	Kind  string // "panic", "recovery", "seq", "xml-mismatch", "query-mismatch", "stats-mismatch", "file-leak", "temp-leak", "pin-leak", ...
	Got   string
	Want  string
	Err   error
}

func (f CrashFailure) String() string {
	return fmt.Sprintf("%s [%s stmt %d]: err=%v got=%.120q want=%.120q",
		f.Kind, f.Point, f.Stmt, f.Err, f.Got, f.Want)
}

// CrashReport summarizes one sweep.
type CrashReport struct {
	Points    int // crash points exercised
	Fired     int // points where the armed fault actually triggered
	Survived  int // crashed statement was durable; recovery redid it
	Discarded int // crashed statement left no trace
	TotalOps  int64
	Failures  []CrashFailure
}

// crashStats is the subset of the statistics a recovered store must
// reproduce exactly — byte-equal to a fresh re-shred of the recovered
// document. MaxIn, MaxDepth and MaxFanout are monotone upper bounds
// (deletes do not shrink them), so they are excluded.
type crashStats struct {
	Nodes, Elems, Texts, SumDepth                   int64
	LabelCount, LabelSubtreeSum, LabelDistinctTexts map[string]int64
}

func crashStatsOf(s *xasr.Stats) crashStats {
	norm := func(m map[string]int64) map[string]int64 {
		out := map[string]int64{}
		for k, v := range m {
			if v != 0 {
				out[k] = v
			}
		}
		return out
	}
	if s == nil {
		return crashStats{}
	}
	return crashStats{
		Nodes: s.Nodes, Elems: s.Elems, Texts: s.Texts, SumDepth: s.SumDepth,
		LabelCount:         norm(s.LabelCount),
		LabelSubtreeSum:    norm(s.LabelSubtreeSum),
		LabelDistinctTexts: norm(s.LabelDistinctTexts),
	}
}

// oraclePrefix is the ground-truth state after the first p statements of
// the script, built by replaying them cleanly from the base document.
type oraclePrefix struct {
	seq   uint64   // AppliedSeq after the prefix
	xml   string   // full serialized document
	qres  []string // correctness-query results
	stats crashStats
}

// crashPoint is one armed kill: either the Nth I/O operation of the whole
// script (global) or the Kth occurrence of a named commit-protocol tag.
type crashPoint struct {
	label  string
	global int64
	tag    string
	occ    int64
}

type crashHarness struct {
	dir, base string
	cfg       CrashConfig
	script    []string
	prefixes  []oraclePrefix
	rep       *CrashReport
}

// RunCrashRecovery generates a deterministic update script against a base
// document, then for every crash point: replays the script with the fault
// injector armed, treats the injected failure as a kill (CrashClose — no
// flush, no cleanup), reopens the store so redo recovery runs, and checks
// the recovered store against the surviving-prefix oracle:
//
//   - the applied-update sequence identifies a valid prefix (the crashed
//     statement is either fully durable or fully absent, never torn);
//   - the full document serialization is byte-identical to a clean replay
//     of that prefix;
//   - every correctness query returns byte-identical results;
//   - the recovered statistics equal a fresh re-shred's exactly
//     (LabelSubtreeSum, LabelDistinctTexts included);
//   - nothing leaked: no temp files, no pinned pages, no stray files
//     beside the data file, the WAL and the stats snapshot.
//
// Everything derives from cfg.Seed, so a failing point replays exactly.
func RunCrashRecovery(dir string, cfg CrashConfig) (CrashReport, error) {
	if cfg.Statements <= 0 {
		cfg.Statements = 24
	}
	if cfg.Points <= 0 {
		cfg.Points = 100
	}
	if cfg.CacheFrames <= 0 {
		cfg.CacheFrames = 32
	}
	if cfg.CheckpointBytes <= 0 {
		cfg.CheckpointBytes = 4 << 10
	}
	if cfg.Doc == "" {
		cfg.Doc = xmlgen.DBLP(xmlgen.DBLPConfig{Entries: 10, Seed: 16})
	}
	if cfg.Queries == nil {
		cfg.Queries = CorrectnessQueries()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var rep CrashReport
	h := &crashHarness{
		dir:    dir,
		base:   filepath.Join(dir, "base"),
		cfg:    cfg,
		script: crashScript(rng, cfg.Statements),
		rep:    &rep,
	}

	// Shred the base document once; every trial starts from a copy.
	st, err := store.Open(h.base, h.cleanOpts())
	if err != nil {
		return rep, err
	}
	if err := st.LoadString(cfg.Doc); err != nil {
		st.Close()
		return rep, fmt.Errorf("testbed: loading crash base: %w", err)
	}
	if err := st.Close(); err != nil {
		return rep, err
	}

	totalOps, err := h.countOps()
	if err != nil {
		return rep, err
	}
	rep.TotalOps = totalOps
	if err := h.buildOracle(); err != nil {
		return rep, err
	}

	// Global sweep: cfg.Points kills spread over the script's whole I/O
	// sequence, plus the named commit-protocol points at several
	// occurrence counts each.
	var points []crashPoint
	step := totalOps / int64(cfg.Points)
	if step < 1 {
		step = 1
	}
	for n := int64(1); n <= totalOps; n += step {
		points = append(points, crashPoint{label: fmt.Sprintf("op@%d", n), global: n})
	}
	for _, tag := range []string{
		fault.CrashAfterWALAppend, fault.CrashBeforePageWrite,
		fault.CrashMidCheckpoint, "wal:flush", "wal:append", "page:read",
	} {
		for _, occ := range []int64{1, 2, 7} {
			points = append(points, crashPoint{
				label: fmt.Sprintf("%s@%d", tag, occ), tag: tag, occ: occ,
			})
		}
	}

	for _, pt := range points {
		h.trial(pt)
	}
	return rep, nil
}

// crashScript generates the deterministic update script: inserts, deletes
// and replaces over the DBLP labels, growing the document linearly and
// periodically deleting what earlier statements inserted.
func crashScript(rng *rand.Rand, n int) []string {
	stmts := make([]string, 0, n)
	for i := 0; len(stmts) < n; i++ {
		switch rng.Intn(8) {
		case 0:
			stmts = append(stmts, fmt.Sprintf(`insert node <note>rev %d</note> into //article`, i))
		case 1:
			stmts = append(stmts, fmt.Sprintf(`insert node <ee>ref-%d</ee>, <url>u%d</url> into //inproceedings`, i, i))
		case 2:
			stmts = append(stmts, `delete node //note`)
		case 3:
			stmts = append(stmts, fmt.Sprintf(`replace node //year with <year>%d</year>`, 1980+rng.Intn(40)))
		case 4:
			stmts = append(stmts, fmt.Sprintf(`insert node <errata>fix %d</errata> before //title`, i))
		case 5:
			stmts = append(stmts, `delete node //errata`)
		case 6:
			stmts = append(stmts, fmt.Sprintf(`insert node <loaded><at>t%d</at></loaded> into /dblp`, i))
		case 7:
			stmts = append(stmts, fmt.Sprintf(`replace node //volume with <volume>%d</volume>`, 1+rng.Intn(99)))
		}
	}
	return stmts
}

func (h *crashHarness) cleanOpts() store.Options {
	return store.Options{
		CacheFrames:     h.cfg.CacheFrames,
		CheckpointBytes: h.cfg.CheckpointBytes,
	}
}

func (h *crashHarness) injOpts(inj *fault.Injector) store.Options {
	o := h.cleanOpts()
	o.IOHook = inj.Hook
	return o
}

// countOps replays the script once with a counting (never-failing)
// injector to learn the total hooked-I/O length of the run, which the
// global sweep spreads its kills over.
func (h *crashHarness) countOps() (int64, error) {
	work := filepath.Join(h.dir, "count")
	if err := copyDir(work, h.base); err != nil {
		return 0, err
	}
	defer os.RemoveAll(work)
	inj := &fault.Injector{}
	st, err := store.Open(work, h.injOpts(inj))
	if err != nil {
		return 0, err
	}
	defer st.Close()
	inj.Arm(0) // reset the counter after open, stay disarmed
	eng := core.New(st, core.Config{})
	for i, stmt := range h.script {
		if _, err := eng.Update(stmt); err != nil {
			return 0, fmt.Errorf("testbed: crash script statement %d failed clean: %w", i, err)
		}
	}
	return inj.Ops(), nil
}

// buildOracle replays the script cleanly, snapshotting after every prefix:
// applied sequence, full serialization, query results, and the statistics
// of a fresh re-shred of the serialized document.
func (h *crashHarness) buildOracle() error {
	work := filepath.Join(h.dir, "oracle")
	if err := copyDir(work, h.base); err != nil {
		return err
	}
	defer os.RemoveAll(work)
	st, err := store.Open(work, h.cleanOpts())
	if err != nil {
		return err
	}
	defer st.Close()
	eng := core.New(st, core.Config{})
	snapshot := func() error {
		xml, err := st.AppendSubtree(nil, store.RootIn)
		if err != nil {
			return err
		}
		qres := make([]string, len(h.cfg.Queries))
		for i, q := range h.cfg.Queries {
			if qres[i], err = eng.Query(q); err != nil {
				return fmt.Errorf("testbed: oracle query %q: %w", q, err)
			}
		}
		stats, err := h.reshredStats(string(xml))
		if err != nil {
			return err
		}
		h.prefixes = append(h.prefixes, oraclePrefix{
			seq: st.AppliedSeq(), xml: string(xml), qres: qres, stats: stats,
		})
		return nil
	}
	if err := snapshot(); err != nil {
		return err
	}
	for i, stmt := range h.script {
		if _, err := eng.Update(stmt); err != nil {
			return fmt.Errorf("testbed: oracle statement %d failed: %w", i, err)
		}
		if err := snapshot(); err != nil {
			return err
		}
	}
	return nil
}

// reshredStats shreds doc into a scratch store and returns the exact
// statistics the shredder computes for it.
func (h *crashHarness) reshredStats(doc string) (crashStats, error) {
	scratch := filepath.Join(h.dir, "reshred")
	os.RemoveAll(scratch)
	st, err := store.Open(scratch, store.Options{})
	if err != nil {
		return crashStats{}, err
	}
	defer os.RemoveAll(scratch)
	defer st.Close()
	if err := st.LoadString(doc); err != nil {
		return crashStats{}, err
	}
	return crashStatsOf(st.Stats()), nil
}

func (h *crashHarness) fail(pt crashPoint, stmt int, kind, got, want string, err error) {
	h.rep.Failures = append(h.rep.Failures, CrashFailure{
		Point: pt.label, Stmt: stmt, Kind: kind, Got: got, Want: want, Err: err,
	})
}

// trial kills the script at one crash point and checks recovery.
func (h *crashHarness) trial(pt crashPoint) {
	h.rep.Points++
	work := filepath.Join(h.dir, "trial")
	os.RemoveAll(work)
	if err := copyDir(work, h.base); err != nil {
		h.fail(pt, -1, "setup", "", "", err)
		return
	}
	defer os.RemoveAll(work)

	inj := &fault.Injector{}
	st, err := store.Open(work, h.injOpts(inj))
	if err != nil {
		h.fail(pt, -1, "open", "", "", err)
		return
	}
	// Arm after open so the operation counter aligns with countOps.
	if pt.tag != "" {
		inj.ArmAt(pt.tag, pt.occ)
	} else {
		inj.Arm(pt.global)
	}
	eng := core.New(st, core.Config{})
	crashed := -1
	for i, stmt := range h.script {
		_, err, panicked := safeUpdate(eng, stmt)
		if panicked {
			h.fail(pt, i, "panic", "", "", err)
			st.CrashClose()
			return
		}
		if err != nil {
			crashed = i
			break
		}
	}
	if inj.Fired() {
		h.rep.Fired++
	}

	if crashed < 0 {
		// The armed fault never fired (a named tag the run does not reach
		// that often): the script completed — verify the final state.
		inj.Disarm()
		h.verify(pt, -1, st, len(h.script))
		if err := st.Close(); err != nil {
			h.fail(pt, -1, "close", "", "", err)
		}
		return
	}

	// The kill: drop every buffer without flushing, exactly as a crashed
	// process would, then reopen without the hook so redo recovery runs.
	st.CrashClose()
	st2, err := store.Open(work, h.cleanOpts())
	if err != nil {
		h.fail(pt, crashed, "recovery", "", "", err)
		return
	}

	// The crashed statement must be all-or-nothing: the recovered
	// sequence is either the prefix before it or (commit made durable
	// before the kill) the prefix including it.
	seq := st2.AppliedSeq()
	before, after := h.prefixes[crashed].seq, h.prefixes[crashed+1].seq
	p := -1
	switch {
	case seq == after && after != before:
		p = crashed + 1
		h.rep.Survived++
	case seq == before:
		p = crashed
		h.rep.Discarded++
	default:
		h.fail(pt, crashed, "seq", fmt.Sprint(seq), fmt.Sprintf("%d or %d", before, after), nil)
		st2.Close()
		return
	}
	h.verify(pt, crashed, st2, p)
	if err := st2.Close(); err != nil {
		h.fail(pt, crashed, "close", "", "", err)
	}
}

// verify byte-compares a recovered store against the oracle state after
// the first p statements, and checks the leak invariants.
func (h *crashHarness) verify(pt crashPoint, stmt int, st *store.Store, p int) {
	want := h.prefixes[p]

	xml, err := st.AppendSubtree(nil, store.RootIn)
	if err != nil {
		h.fail(pt, stmt, "xml-mismatch", "", "", err)
	} else if string(xml) != want.xml {
		h.fail(pt, stmt, "xml-mismatch", string(xml), want.xml, nil)
	}

	eng := core.New(st, core.Config{})
	for i, q := range h.cfg.Queries {
		got, err, panicked := safeQuery(eng, q)
		switch {
		case panicked:
			h.fail(pt, stmt, "panic", "", "", err)
		case err != nil:
			h.fail(pt, stmt, "query-mismatch", "", want.qres[i], err)
		case got != want.qres[i]:
			h.fail(pt, stmt, "query-mismatch", got, want.qres[i], nil)
		}
	}

	if got := crashStatsOf(st.Stats()); !reflect.DeepEqual(got, want.stats) {
		h.fail(pt, stmt, "stats-mismatch",
			fmt.Sprintf("%+v", got), fmt.Sprintf("%+v", want.stats), nil)
	}

	for _, f := range leakChecks(st, "crash", pt.label, "recovered") {
		h.fail(pt, stmt, f.Kind, "", "", f.Err)
	}
	// The recovered directory must hold exactly the expected file set: no
	// stranded WAL segments, stats temps or anything else.
	if ents, err := os.ReadDir(st.Dir()); err == nil {
		for _, e := range ents {
			switch e.Name() {
			case "data.db", "wal.log", "stats.bin", "tmp":
			default:
				h.fail(pt, stmt, "file-leak", e.Name(), "", nil)
			}
		}
	}
}

// safeUpdate applies one update statement, converting a panic into an
// error so the sweep can keep going (and record the violation).
func safeUpdate(e *core.Engine, stmt string) (res core.UpdateResult, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	res, err = e.Update(stmt)
	return res, err, false
}

// copyDir copies a store directory file by file (trial isolation).
func copyDir(dst, src string) error {
	return filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
}

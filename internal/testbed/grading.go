package testbed

import "fmt"

// Grading implements the point system of Section 3 of the paper:
//
//   - The best grade is 100 points, obtainable solely in the final exam;
//     passing requires at least 50 exam points.
//   - Admission to the exam requires a runnable engine at latest one week
//     before the exam.
//   - A successful milestone submission by its early-bird review earns two
//     points; missed deadlines cost negative points growing with the
//     number of weeks of delay.
//   - The 10% and 25% most scalable engines earn bonus points, so that
//     some students finish with more than 100 points.
//   - Small teams completing the final milestones earn a few extra points.
const (
	// MilestoneCount is the number of project milestones.
	MilestoneCount = 4
	// EarlyBirdPoints per milestone submitted by the early-bird review.
	EarlyBirdPoints = 2
	// Top10Bonus and Top25Bonus are the scalability bonuses.
	Top10Bonus = 6
	Top25Bonus = 3
	// SmallTeamBonus rewards teams of at most two completing milestones
	// three and four.
	SmallTeamBonus = 2
	// PassThreshold is the minimum exam score to pass.
	PassThreshold = 50
)

// GradeInput describes one team's course record.
type GradeInput struct {
	// ExamPoints out of 100.
	ExamPoints int
	// RunnableEngine reports whether a runnable engine was submitted at
	// latest one week before the exam (exam admission).
	RunnableEngine bool
	// EarlyBird[i] reports milestone i+1 submitted by its early-bird
	// review.
	EarlyBird [MilestoneCount]bool
	// WeeksLate[i] is the delay of milestone i+1 in weeks (0 = on time).
	WeeksLate [MilestoneCount]int
	// ScalabilityPercentile ranks the engine's efficiency-test total
	// among all engines (0 = most scalable, 1 = least).
	ScalabilityPercentile float64
	// SmallTeam reports a team of at most two members in milestones 3/4.
	SmallTeam bool
	// CompletedMilestone4 reports completion of the final milestone.
	CompletedMilestone4 bool
}

// GradeResult is the computed course outcome.
type GradeResult struct {
	Admitted bool
	Passed   bool
	Total    int
	Detail   string
}

// latePenalty grows with the number of weeks of delay (1, 3, 6, 10, ...:
// the materialized "negative points" of Section 3).
func latePenalty(weeks int) int {
	p := 0
	for w := 1; w <= weeks; w++ {
		p += w
	}
	return p
}

// Grade computes the outcome of the Section 3 grading system.
func Grade(in GradeInput) GradeResult {
	r := GradeResult{Admitted: in.RunnableEngine}
	if !r.Admitted {
		r.Detail = "not admitted: no runnable engine one week before the exam"
		return r
	}
	total := in.ExamPoints
	detail := fmt.Sprintf("exam %d", in.ExamPoints)
	for i := 0; i < MilestoneCount; i++ {
		if in.EarlyBird[i] {
			total += EarlyBirdPoints
			detail += fmt.Sprintf(" +%d(early M%d)", EarlyBirdPoints, i+1)
		}
		if p := latePenalty(in.WeeksLate[i]); p > 0 {
			total -= p
			detail += fmt.Sprintf(" -%d(late M%d)", p, i+1)
		}
	}
	switch {
	case in.ScalabilityPercentile <= 0.10:
		total += Top10Bonus
		detail += fmt.Sprintf(" +%d(top 10%% scalable)", Top10Bonus)
	case in.ScalabilityPercentile <= 0.25:
		total += Top25Bonus
		detail += fmt.Sprintf(" +%d(top 25%% scalable)", Top25Bonus)
	}
	if in.SmallTeam && in.CompletedMilestone4 {
		total += SmallTeamBonus
		detail += fmt.Sprintf(" +%d(small team)", SmallTeamBonus)
	}
	r.Total = total
	r.Passed = in.ExamPoints >= PassThreshold
	r.Detail = detail
	return r
}

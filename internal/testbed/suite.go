package testbed

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"xqdb/internal/core"
	"xqdb/internal/exec"
	"xqdb/internal/limit"
	"xqdb/internal/opt"
	"xqdb/internal/plancache"
	"xqdb/internal/store"
)

// CorrectnessOutcome records one (document, query, engine) check against
// the milestone 1 reference.
type CorrectnessOutcome struct {
	Doc   string
	Query int // 1-based index into CorrectnessQueries
	Mode  core.Mode
	Pass  bool
	Err   error
	Got   string
	Want  string
}

// RunCorrectness loads each document into a store under dir and runs the
// correctness queries on every engine mode, comparing against the
// milestone 1 reference output.
func RunCorrectness(dir string, docs []Doc, modes []core.Mode) ([]CorrectnessOutcome, error) {
	var out []CorrectnessOutcome
	queries := CorrectnessQueries()
	for _, doc := range docs {
		st, err := store.Open(filepath.Join(dir, "correctness-"+doc.Name), store.Options{})
		if err != nil {
			return nil, err
		}
		if err := st.LoadString(doc.XML); err != nil {
			st.Close()
			return nil, err
		}
		ref := core.New(st, core.Config{Mode: core.ModeM1})
		for qi, q := range queries {
			want, err := ref.Query(q)
			if err != nil {
				st.Close()
				return nil, fmt.Errorf("testbed: reference failed on %q over %s: %w", q, doc.Name, err)
			}
			for _, m := range modes {
				if m == core.ModeM1 {
					continue
				}
				e := core.New(st, core.Config{Mode: m})
				got, err := e.Query(q)
				oc := CorrectnessOutcome{Doc: doc.Name, Query: qi + 1, Mode: m, Got: got, Want: want, Err: err}
				oc.Pass = err == nil && got == want
				out = append(out, oc)
			}
		}
		st.Close()
	}
	return out, nil
}

// SummarizeCorrectness renders a pass/fail matrix.
func SummarizeCorrectness(outcomes []CorrectnessOutcome) string {
	type key struct {
		doc  string
		mode core.Mode
	}
	pass := map[key]int{}
	total := map[key]int{}
	var docs []string
	var modes []core.Mode
	seenDoc := map[string]bool{}
	seenMode := map[core.Mode]bool{}
	for _, o := range outcomes {
		k := key{o.Doc, o.Mode}
		total[k]++
		if o.Pass {
			pass[k]++
		}
		if !seenDoc[o.Doc] {
			seenDoc[o.Doc] = true
			docs = append(docs, o.Doc)
		}
		if !seenMode[o.Mode] {
			seenMode[o.Mode] = true
			modes = append(modes, o.Mode)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "engine")
	for _, d := range docs {
		fmt.Fprintf(&b, " %14s", d)
	}
	b.WriteString("\n")
	for _, m := range modes {
		fmt.Fprintf(&b, "%-14s", m)
		for _, d := range docs {
			k := key{d, m}
			fmt.Fprintf(&b, " %7d/%-6d", pass[k], total[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// EffConfig parameterizes the efficiency suite.
type EffConfig struct {
	// Entries scales the DBLP-shaped document.
	Entries int
	// Seed makes the document deterministic.
	Seed int64
	// Timeout is the per-query cap; timed-out engines are assigned the
	// cap, as in the paper ("engines that needed more than 2400 seconds
	// were stopped and assigned 2400").
	Timeout time.Duration
	// CacheFrames bounds the buffer pool (the paper's 20 MB memory cap:
	// frames × page size). 0 = pager default.
	CacheFrames int
	// SortBudget bounds operator memory.
	SortBudget int
	// MemBudget caps each query's total buffered bytes across all its
	// operators (0 = unlimited); over-budget operators spill to disk.
	MemBudget int
	// Modes are the engines to compare.
	Modes []core.Mode
	// Opt overrides the optimizer configuration of the TPM-based modes
	// (M3/M4 and their variants) — the hook the xqbench -join flag uses
	// to force one join operator family across the whole suite.
	Opt *opt.Config
	// BatchSize follows core.Config.BatchSize: 0 uses the executor
	// default, a negative value forces row-at-a-time execution. Only the
	// TPM-based modes have a batched executor; M1/M2 ignore it.
	BatchSize int
	// DOP follows core.Config.DOP (0 or 1 = serial): the planner of the
	// TPM-based modes may wrap large leaf scans in exchange operators
	// running up to this many workers. M1/M2 ignore it.
	DOP int
	// PlanCache, when set, is shared by every TPM-based engine in the run
	// (modes key separately by optimizer config); the caller reads the
	// hit rate off it afterward. M1/M2 ignore it.
	PlanCache *plancache.Cache
}

// EffCell is one engine/test measurement.
type EffCell struct {
	Seconds  float64
	TimedOut bool
	Err      error
	// Allocs is the heap allocation count of the run (runtime.MemStats
	// Mallocs delta — a coarse but comparable allocs/op figure).
	Allocs uint64
}

// EffRow is one engine's row of the Figure 7 table.
type EffRow struct {
	Mode  core.Mode
	Cells [5]EffCell
	Total float64
	// Batch is the operator batch capacity the engine ran with (core
	// semantics: 0 = executor default, negative = row-at-a-time).
	Batch int
	// DOP is the intra-query parallelism cap the engine ran with (0 or
	// 1 = serial).
	DOP int
	// SpilledBytes is the engine's total spill traffic across the five
	// tests (non-zero only when a budget forces operators to disk).
	SpilledBytes int64
	// Allocs is the engine's total heap allocation count across the five
	// tests.
	Allocs uint64
}

// RunEfficiency loads the efficiency document once and times every engine
// on the five tests.
func RunEfficiency(dir string, cfg EffConfig) ([]EffRow, error) {
	if cfg.Entries <= 0 {
		cfg.Entries = 2000
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if len(cfg.Modes) == 0 {
		cfg.Modes = []core.Mode{core.ModeM4, core.ModeM4BadStats, core.ModeM3, core.ModeNaiveTPM, core.ModeM2}
	}
	st, err := store.Open(filepath.Join(dir, "efficiency"), store.Options{
		CacheFrames: cfg.CacheFrames,
		SortBudget:  cfg.SortBudget,
	})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if err := st.LoadString(EfficiencyDoc(cfg.Entries, cfg.Seed)); err != nil {
		return nil, err
	}

	tests := EfficiencyTests()
	capSec := cfg.Timeout.Seconds()
	var rows []EffRow
	for _, m := range cfg.Modes {
		row := EffRow{Mode: m, Batch: cfg.BatchSize, DOP: cfg.DOP}
		e := core.New(st, core.Config{Mode: m, Timeout: cfg.Timeout, SortBudget: cfg.SortBudget, MemBudget: cfg.MemBudget, Opt: cfg.Opt, BatchSize: cfg.BatchSize, DOP: cfg.DOP,
			PlanCache: cfg.PlanCache, CacheDoc: plancache.DocVersion{Name: "efficiency", Epoch: 1}})
		for i, test := range tests {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			before := ms.Mallocs
			start := time.Now()
			_, err := e.Query(test.Query)
			elapsed := time.Since(start).Seconds()
			runtime.ReadMemStats(&ms)
			row.SpilledBytes += e.Counters().SpilledBytes
			cell := EffCell{Seconds: elapsed, Allocs: ms.Mallocs - before}
			row.Allocs += cell.Allocs
			if errors.Is(err, limit.ErrTimeout) {
				cell.TimedOut = true
				cell.Seconds = capSec // assigned the cap, per the paper
			} else if err != nil {
				cell.Err = err
				cell.Seconds = capSec
			}
			row.Cells[i] = cell
			row.Total += cell.Seconds
		}
		rows = append(rows, row)
	}
	// Figure 7 lists engines by total time.
	sort.Slice(rows, func(i, j int) bool { return rows[i].Total < rows[j].Total })
	return rows, nil
}

// FormatFigure7 renders the efficiency results in the layout of Figure 7:
// one row per engine, user time per test in seconds, and the total.
func FormatFigure7(rows []EffRow) string {
	var b strings.Builder
	b.WriteString("Engine         batch  dop    Test 1    Test 2    Test 3    Test 4    Test 5     Total\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s%5s%5s", r.Mode, batchLabel(r.Batch), dopLabel(r.DOP))
		for _, c := range r.Cells {
			mark := " "
			if c.TimedOut {
				mark = "*"
			}
			fmt.Fprintf(&b, "%9.2f%s", c.Seconds, mark)
		}
		fmt.Fprintf(&b, "%9.2f\n", r.Total)
	}
	b.WriteString("(* = stopped at the cap and assigned the cap, as in the paper)\n")
	return b.String()
}

// batchLabel renders a core.Config.BatchSize value for the table: the
// executor default shows its real capacity, negative shows "row".
func batchLabel(n int) string {
	switch {
	case n < 0:
		return "row"
	case n == 0:
		return fmt.Sprint(exec.DefaultBatchSize)
	default:
		return fmt.Sprint(n)
	}
}

// dopLabel renders a core.Config.DOP value for the table (0 and 1 are
// both serial).
func dopLabel(n int) string {
	if n < 2 {
		return "1"
	}
	return fmt.Sprint(n)
}

// WriteReport writes a full testbed report (correctness matrix + Figure 7
// table) to path.
func WriteReport(path, correctness, figure7 string) error {
	var b strings.Builder
	b.WriteString("# Testbed report\n\n## Correctness tests (passed/total per document)\n\n")
	b.WriteString(correctness)
	b.WriteString("\n## Efficiency tests (Figure 7)\n\n")
	b.WriteString(figure7)
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// EquivMismatch records a query whose serialized result differed between
// two optimizer configurations.
type EquivMismatch struct {
	Doc   string
	Query string
	A, B  string
	ErrA  error
	ErrB  error
}

// CacheMismatch records a query whose cached execution diverged from its
// uncached one — different bytes, different error state, or a repeat run
// that failed to hit the cache.
type CacheMismatch struct {
	Doc      string
	Query    string
	Uncached string
	Cached   string
	ErrU     error
	ErrC     error
	// NoHit marks a repeat of a cacheable query that missed the cache.
	NoHit bool
}

// RunCacheEquivalence evaluates every query on every document twice
// through a plan-cached engine — priming miss, then hit — and compares
// the hit's bytes against an uncached engine's result. Byte-identical
// output over the full suite means executing a clone of a cached plan
// changes no semantics.
func RunCacheEquivalence(dir string, docs []Doc, queries []string) ([]CacheMismatch, error) {
	var out []CacheMismatch
	for _, doc := range docs {
		st, err := store.Open(filepath.Join(dir, "cache-equiv-"+doc.Name), store.Options{})
		if err != nil {
			return nil, err
		}
		if err := st.LoadString(doc.XML); err != nil {
			st.Close()
			return nil, err
		}
		plain := core.New(st, core.Config{Mode: core.ModeM4})
		cached := core.New(st, core.Config{Mode: core.ModeM4,
			PlanCache: plancache.New(0),
			CacheDoc:  plancache.DocVersion{Name: doc.Name, Epoch: 1}})
		for _, q := range queries {
			want, errU := plain.Query(q)
			if _, errPrime := cached.NewHandle().Query(q); (errPrime == nil) != (errU == nil) {
				out = append(out, CacheMismatch{Doc: doc.Name, Query: q, Uncached: want, ErrU: errU, ErrC: errPrime})
				continue
			}
			res, errC := cached.NewHandle().Query(q)
			switch {
			case (errC == nil) != (errU == nil):
				out = append(out, CacheMismatch{Doc: doc.Name, Query: q, Uncached: want, ErrU: errU, ErrC: errC})
			case errC == nil && res.XML != want:
				out = append(out, CacheMismatch{Doc: doc.Name, Query: q, Uncached: want, Cached: res.XML})
			case errC == nil && !res.CacheHit:
				out = append(out, CacheMismatch{Doc: doc.Name, Query: q, NoHit: true})
			}
		}
		st.Close()
	}
	return out, nil
}

// RunEquivalence evaluates every query on every document under two M4
// optimizer configurations and reports the mismatches. It is the harness
// for operator-ablation equivalence checks: byte-identical serialized
// results on the full suite mean the ablated operator changes no
// semantics, only cost.
func RunEquivalence(dir string, docs []Doc, queries []string, a, b opt.Config) ([]EquivMismatch, error) {
	var out []EquivMismatch
	for _, doc := range docs {
		st, err := store.Open(filepath.Join(dir, "equiv-"+doc.Name), store.Options{})
		if err != nil {
			return nil, err
		}
		if err := st.LoadString(doc.XML); err != nil {
			st.Close()
			return nil, err
		}
		ea := core.New(st, core.Config{Mode: core.ModeM4, Opt: &a})
		eb := core.New(st, core.Config{Mode: core.ModeM4, Opt: &b})
		for _, q := range queries {
			ra, errA := ea.Query(q)
			rb, errB := eb.Query(q)
			if ra != rb || (errA == nil) != (errB == nil) {
				out = append(out, EquivMismatch{Doc: doc.Name, Query: q, A: ra, B: rb, ErrA: errA, ErrB: errB})
			}
		}
		st.Close()
	}
	return out, nil
}

package testbed

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"xqdb/internal/core"
	"xqdb/internal/opt"
	"xqdb/internal/store"
)

// ParallelShape is one query of the intra-query parallelism suite.
type ParallelShape struct {
	Name  string
	Query string
	Why   string
}

// ParallelShapes returns the scan-dominated shapes the parallel suite
// compares serial against exchange-parallel execution on. The suite runs
// with the label index disabled, so every name and value test becomes a
// residual condition on a primary full scan — the per-tuple compare work
// lands in the exchange workers, and the highly selective sieves let
// almost nothing cross the exchange into the serial gather. That isolates
// what the suite measures: how the morsel-parallel scan itself scales,
// not index lookup or serial emission.
func ParallelShapes() []ParallelShape {
	return []ParallelShape{
		{
			Name:  "sieve-miss",
			Query: `for $t in //text() return if ($t = "zzz") then <hit/> else ()`,
			Why:   "full scan + value sieve that matches nothing: all compare CPU parallelizes, zero rows cross the exchange",
		},
		{
			Name:  "sieve-year",
			Query: `for $t in //text() return if ($t = "1995") then <y95/> else ()`,
			Why:   "full scan + value sieve with sparse matches: a trickle of rows crosses the ordered gather",
		},
		{
			Name:  "struct-sieve",
			Query: `for $p in //phdthesis return for $c in $p//cdrom return <hit/>`,
			Why:   "structural join over two sieved full scans: both leaves run under exchanges, the merge consumes a trickle",
		},
	}
}

// ParallelConfig parameterizes the parallel suite.
type ParallelConfig struct {
	// Entries scales the DBLP-shaped document (default 20000).
	Entries int
	// Seed makes the document deterministic.
	Seed int64
	// Runs is the number of timed runs per engine per shape; the reported
	// seconds are medians over them (default 5).
	Runs int
	// DOP is the parallel engine's worker count (default 4); the serial
	// engine always runs at DOP 0.
	DOP int
	// Timeout bounds each query (default 60s).
	Timeout time.Duration
}

// ParallelRow is one shape's serial-vs-parallel measurement.
type ParallelRow struct {
	Name        string  `json:"name"`
	Query       string  `json:"query"`
	SerialSec   float64 `json:"serial_sec"`
	ParallelSec float64 `json:"parallel_sec"`
	Speedup     float64 `json:"speedup"`
}

// ParallelReport is the full suite result (and the BENCH_PR8.json schema).
type ParallelReport struct {
	Entries int   `json:"entries"`
	Seed    int64 `json:"seed"`
	Runs    int   `json:"runs"`
	DOP     int   `json:"dop"`
	// GOMAXPROCS is the schedulable CPU count of the measuring host. It
	// bounds any real speedup: on a single-CPU host the suite measures
	// exchange overhead (speedup ≈ 1.0 means the parallel machinery is
	// close to free), not scaling.
	GOMAXPROCS    int           `json:"gomaxprocs"`
	Shapes        []ParallelRow `json:"shapes"`
	MedianSpeedup float64       `json:"median_speedup"`
}

// RunParallel loads the efficiency document and times every parallel
// shape on two engines that differ only in DOP: a serial M4 engine and
// one whose planner may price exchanges at cfg.DOP workers. Both run
// without the label index (see ParallelShapes). Every parallel result is
// byte-checked against the serial result before anything is timed — a
// divergence is an error, not a data point.
func RunParallel(dir string, cfg ParallelConfig) (ParallelReport, error) {
	if cfg.Entries <= 0 {
		cfg.Entries = 20000
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 5
	}
	if cfg.DOP <= 0 {
		cfg.DOP = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	rep := ParallelReport{
		Entries: cfg.Entries, Seed: cfg.Seed, Runs: cfg.Runs, DOP: cfg.DOP,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	st, err := store.Open(filepath.Join(dir, "parallel"), store.Options{})
	if err != nil {
		return rep, err
	}
	defer st.Close()
	if err := st.LoadString(EfficiencyDoc(cfg.Entries, cfg.Seed)); err != nil {
		return rep, err
	}

	optCfg := opt.M4()
	optCfg.UseLabelIndex = false
	serial := core.New(st, core.Config{Mode: core.ModeM4, Opt: &optCfg, Timeout: cfg.Timeout})
	parallel := core.New(st, core.Config{Mode: core.ModeM4, Opt: &optCfg, Timeout: cfg.Timeout, DOP: cfg.DOP})

	var speedups []float64
	for _, sh := range ParallelShapes() {
		// Correctness gate (and cache warmup): identical bytes or bust.
		want, err := serial.Query(sh.Query)
		if err != nil {
			return rep, fmt.Errorf("testbed: serial %s: %w", sh.Name, err)
		}
		got, err := parallel.Query(sh.Query)
		if err != nil {
			return rep, fmt.Errorf("testbed: parallel %s: %w", sh.Name, err)
		}
		if got != want {
			return rep, fmt.Errorf("testbed: %s: parallel bytes diverge from serial (%d vs %d bytes)",
				sh.Name, len(got), len(want))
		}
		serialSecs := make([]float64, 0, cfg.Runs)
		parallelSecs := make([]float64, 0, cfg.Runs)
		for r := 0; r < cfg.Runs; r++ {
			start := time.Now()
			if _, err := serial.Query(sh.Query); err != nil {
				return rep, fmt.Errorf("testbed: serial %s run %d: %w", sh.Name, r, err)
			}
			serialSecs = append(serialSecs, time.Since(start).Seconds())
			start = time.Now()
			if _, err := parallel.Query(sh.Query); err != nil {
				return rep, fmt.Errorf("testbed: parallel %s run %d: %w", sh.Name, r, err)
			}
			parallelSecs = append(parallelSecs, time.Since(start).Seconds())
		}
		row := ParallelRow{
			Name:        sh.Name,
			Query:       sh.Query,
			SerialSec:   medianOf(serialSecs),
			ParallelSec: medianOf(parallelSecs),
		}
		if row.ParallelSec > 0 {
			row.Speedup = row.SerialSec / row.ParallelSec
		}
		speedups = append(speedups, row.Speedup)
		rep.Shapes = append(rep.Shapes, row)
	}
	rep.MedianSpeedup = medianOf(speedups)
	return rep, nil
}

// FormatParallel renders the parallel suite results as a table.
func FormatParallel(rep ParallelReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shape            serial(s)  dop=%d(s)   speedup\n", rep.DOP)
	for _, r := range rep.Shapes {
		fmt.Fprintf(&b, "%-16s%10.3f%10.3f%9.2fx\n", r.Name, r.SerialSec, r.ParallelSec, r.Speedup)
	}
	fmt.Fprintf(&b, "median speedup at dop=%d: %.2fx (%d entries, %d runs, GOMAXPROCS=%d)\n",
		rep.DOP, rep.MedianSpeedup, rep.Entries, rep.Runs, rep.GOMAXPROCS)
	if rep.GOMAXPROCS < rep.DOP {
		fmt.Fprintf(&b, "note: host schedules %d CPU(s) < dop=%d — speedup is capped at %d; on this host the suite measures exchange overhead, not scaling\n",
			rep.GOMAXPROCS, rep.DOP, rep.GOMAXPROCS)
	}
	return b.String()
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

package testbed

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
	"time"

	"xqdb/internal/core"
	"xqdb/internal/opt"
	"xqdb/internal/store"
)

// TestRobustnessSuite is the resource-governance acceptance harness: the
// correctness + efficiency queries on all four documents, replayed under
// a 64 KiB budget, deterministic I/O fault injection, and an aggressive
// deadline. Zero panics, zero leaked temp files, zero leaked pager pins,
// byte-identical results whenever a run completes — and the tiny budget
// must actually force spilling, or the pass proves nothing.
func TestRobustnessSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("robustness suite in -short mode")
	}
	twig, ok := opt.ForceJoin("twig")
	if !ok {
		t.Fatal("ForceJoin(twig)")
	}
	anc, ok := opt.ForceJoin("structural-anc")
	if !ok {
		t.Fatal("ForceJoin(structural-anc)")
	}
	// The cost-based planner may legitimately avoid spilling at a tiny
	// budget (the spill surcharge steers it to streaming plans), so the
	// spill-counter assertion applies to the forced families, which have
	// no such escape. The anc family runs at 8 KiB: its output lists only
	// buffer under nested ancestors, and the suite documents' nesting
	// peaks below 64 KiB of list memory.
	families := []struct {
		name      string
		cfg       *opt.Config
		budget    int
		mustSpill bool
	}{
		{"auto", nil, 0, false},
		{"twig", &twig, 0, true},
		{"structural-anc", &anc, 8 << 10, true},
	}
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			cfg := RobustConfig{Seed: RobustSeedCI, Opt: fam.cfg, Budget: fam.budget}
			rep, err := RunRobustness(t.TempDir(), cfg)
			if err != nil {
				t.Fatalf("robustness harness (seed %d): %v", cfg.Seed, err)
			}
			t.Logf("robustness: %d queries, %d fault runs (%d fired, %d clean aborts), %d deadline aborts, spilled=%dB in %d runs",
				rep.Queries, rep.FaultRuns, rep.FaultFired, rep.FaultErrors, rep.Timeouts, rep.SpilledBytes, rep.SpillRuns)
			for i, f := range rep.Failures {
				if i >= 10 {
					t.Errorf("... and %d more failures", len(rep.Failures)-10)
					break
				}
				t.Errorf("seed=%d: %s", cfg.Seed, f)
			}
			if rep.FaultRuns == 0 || rep.FaultFired == 0 {
				t.Errorf("fault pass never triggered: %d runs, %d fired", rep.FaultRuns, rep.FaultFired)
			}
			if fam.mustSpill && (rep.SpilledBytes == 0 || rep.SpillRuns == 0) {
				t.Errorf("64 KiB budget forced no spilling (spilled=%dB runs=%d) — budget not exercised", rep.SpilledBytes, rep.SpillRuns)
			}
			if rep.Timeouts == 0 {
				t.Error("tight-deadline pass aborted nothing — deadline not exercised")
			}
		})
	}
}

// TestRobustnessBatchSizes replays the robustness harness — tiny budgets,
// fault injection, tight deadlines — with the budgeted and deadlined
// engines pinned to an adversarial batch capacity (a prime that straddles
// run boundaries) and to the row adapter. The clean reference stays at
// the default capacity, so every byte comparison doubles as a
// batch-vs-reference equivalence check under spill and abort pressure.
func TestRobustnessBatchSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("robustness suite in -short mode")
	}
	for _, batch := range []int{7, -1} {
		name := fmt.Sprintf("batch=%d", batch)
		if batch < 0 {
			name = "batch=row"
		}
		t.Run(name, func(t *testing.T) {
			cfg := RobustConfig{Seed: RobustSeedCI, BatchSize: batch}
			rep, err := RunRobustness(t.TempDir(), cfg)
			if err != nil {
				t.Fatalf("robustness harness (seed %d): %v", cfg.Seed, err)
			}
			t.Logf("robustness: %d queries, %d fault runs (%d fired), %d deadline aborts, spilled=%dB",
				rep.Queries, rep.FaultRuns, rep.FaultFired, rep.Timeouts, rep.SpilledBytes)
			for i, f := range rep.Failures {
				if i >= 10 {
					t.Errorf("... and %d more failures", len(rep.Failures)-10)
					break
				}
				t.Errorf("seed=%d: %s", cfg.Seed, f)
			}
			if rep.Timeouts == 0 {
				t.Error("tight-deadline pass aborted nothing — per-batch polling not exercised")
			}
		})
	}
}

// TestRobustnessParallel replays the robustness harness with the budgeted
// and deadlined engines at DOP=4 and every eligible leaf scan forced under
// an exchange (the suite documents are too small for the cost gate to pick
// parallelism on its own). The clean serial reference byte-checks the
// ordered gather under a 64 KiB budget — where the exchange's reservation
// backoff shrinks its in-flight batches — under deterministic I/O faults
// surfacing mid-exchange, and under tight-deadline aborts that cancel
// workers with batches in flight. No panics, no leaked temp files or pins,
// and no leaked worker goroutines.
func TestRobustnessParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("robustness suite in -short mode")
	}
	before := runtime.NumGoroutine()
	pcfg := opt.M4()
	pcfg.ExchangeAll = true
	cfg := RobustConfig{Seed: RobustSeedCI, Opt: &pcfg, DOP: 4}
	rep, err := RunRobustness(t.TempDir(), cfg)
	if err != nil {
		t.Fatalf("parallel robustness harness (seed %d): %v", cfg.Seed, err)
	}
	t.Logf("parallel robustness: %d queries, %d fault runs (%d fired, %d clean aborts), %d deadline aborts, spilled=%dB",
		rep.Queries, rep.FaultRuns, rep.FaultFired, rep.FaultErrors, rep.Timeouts, rep.SpilledBytes)
	for i, f := range rep.Failures {
		if i >= 10 {
			t.Errorf("... and %d more failures", len(rep.Failures)-10)
			break
		}
		t.Errorf("seed=%d dop=4: %s", cfg.Seed, f)
	}
	if rep.FaultRuns == 0 || rep.FaultFired == 0 {
		t.Errorf("fault pass never triggered: %d runs, %d fired", rep.FaultRuns, rep.FaultFired)
	}
	if rep.Timeouts == 0 {
		t.Error("tight-deadline pass aborted nothing — mid-exchange cancellation not exercised")
	}
	// Exchange workers must all have unwound, including those cut down
	// mid-send by faults and deadlines.
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("worker goroutines leaked: %d before, %d after", before, after)
	}
}

// TestSpillCountersUnderTinyBudget pins the spill discipline to the two
// operators the budget work targeted: a forced holistic twig join and a
// forced ancestor-ordered structural join, each on a document large
// enough that 64 KiB cannot hold the intermediate lists. Results must
// stay byte-identical to the unbudgeted run, and the spill counters must
// show the operators actually went to disk.
func TestSpillCountersUnderTinyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("spill-counter suite in -short mode")
	}
	docs := map[string]Doc{}
	for _, d := range Documents(2) { // ~800-entry DBLP: far past 64 KiB of vartuples
		docs[d.Name] = d
	}
	cases := []struct {
		name       string
		force      string
		doc        Doc
		budget     int
		query      string
		wantTuples bool // the operator's own list spill, not just a sorter run
	}{
		// Path-solution lists + merge partitions + governed output sort.
		{"twig", "twig", docs["dblp"], 64 << 10,
			`for $x in //inproceedings return for $a in $x//author return for $ti in $x//title return for $y in $x//year return $a`, true},
		// Anc output lists buffer only under nested ancestors (treebank's
		// recursive NPs); the suite nesting peaks below 64 KiB of list
		// memory, so the quota that forces the segment-chain spill is 8 KiB.
		{"structural-anc", "structural-anc", docs["treebank"], 8 << 10,
			`for $np in //NP return for $nn in $np//NN return $nn`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := store.Open(filepath.Join(t.TempDir(), "spill"), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			if err := st.LoadString(tc.doc.XML); err != nil {
				t.Fatal(err)
			}
			forced, ok := opt.ForceJoin(tc.force)
			if !ok {
				t.Fatalf("ForceJoin(%s)", tc.force)
			}
			clean := core.New(st, core.Config{Mode: core.ModeM4, Opt: &forced})
			want, err := clean.Query(tc.query)
			if err != nil {
				t.Fatalf("unbudgeted: %v", err)
			}
			tiny := core.New(st, core.Config{
				Mode: core.ModeM4, Opt: &forced,
				SortBudget: tc.budget, MemBudget: tc.budget,
			})
			got, err := tiny.Query(tc.query)
			if err != nil {
				t.Fatalf("%d-byte budget: %v", tc.budget, err)
			}
			if got != want {
				t.Fatalf("budgeted bytes differ:\n got: %.160q\nwant: %.160q", got, want)
			}
			c := tiny.Counters()
			if c.SpilledBytes == 0 || c.SpillRuns == 0 {
				t.Errorf("%s at %dB did not spill: spilled=%dB runs=%d tuples=%d",
					tc.name, tc.budget, c.SpilledBytes, c.SpillRuns, c.SpilledTuples)
			}
			if tc.wantTuples && c.SpilledTuples == 0 {
				t.Errorf("%s at %dB spilled no tuples from its own lists (spilled=%dB runs=%d)",
					tc.name, tc.budget, c.SpilledBytes, c.SpillRuns)
			}
			t.Logf("%s: spilled=%dB runs=%d tuples=%d", tc.name, c.SpilledBytes, c.SpillRuns, c.SpilledTuples)
			if dir, err := st.TempDir(); err == nil {
				if ents, _ := os.ReadDir(dir); len(ents) != 0 {
					t.Errorf("leaked %d temp files after budgeted run", len(ents))
				}
			}
		})
	}
}

// TestFuzzUnderTinyBudget replays the randomized cross-engine
// equivalence fuzz with every engine under test capped at 64 KiB of
// operator and buffer memory: the spill paths of every operator family
// must produce the same bytes as the in-memory naive reference.
func TestFuzzUnderTinyBudget(t *testing.T) {
	iters := 60
	if s := os.Getenv("XQDB_FUZZ_ITERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			iters = n
		}
	}
	if testing.Short() {
		iters = 8
	}
	cfg := FuzzConfig{Seed: FuzzSeedCI, Iterations: iters, Budget: 64 << 10}
	mismatches, checks, err := RunFuzz(t.TempDir(), cfg)
	if err != nil {
		t.Fatalf("tiny-budget fuzz (seed %d): %v", cfg.Seed, err)
	}
	t.Logf("tiny-budget fuzz: %d iterations, %d engine checks, seed %d", iters, checks, cfg.Seed)
	for i, m := range mismatches {
		if i >= 10 {
			t.Errorf("... and %d more mismatches", len(mismatches)-10)
			break
		}
		t.Errorf("seed=%d iter=%d doc=%s engine=%s batch=%d dop=%d\nquery: %s\n got: %.160q (err %v)\nwant: %.160q (err %v)",
			cfg.Seed, m.Iter, m.Doc, m.Engine, m.Batch, m.DOP, m.Query, m.Got, m.GotErr, m.Want, m.WantErr)
	}
}

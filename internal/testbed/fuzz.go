package testbed

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"time"

	"xqdb/internal/core"
	"xqdb/internal/opt"
	"xqdb/internal/store"
	"xqdb/internal/xmlgen"
)

// FuzzSeedCI is the pinned seed the CI fuzz step runs at: failures
// reproduce exactly by re-running RunFuzz with this seed.
const FuzzSeedCI = 20260730

// FuzzConfig parameterizes the randomized equivalence fuzz harness.
type FuzzConfig struct {
	// Seed drives both document and query generation; the same seed
	// replays the identical iteration sequence.
	Seed int64
	// Iterations is the number of (document, query) checks to run.
	Iterations int
	// QueriesPerDoc groups iterations on one generated document before a
	// fresh one is generated (default 8).
	QueriesPerDoc int
	// Timeout bounds each query on each engine (default 30s — generous,
	// so no engine times out and timing never masquerades as mismatch).
	Timeout time.Duration
	// Budget, when > 0, caps every engine under test (not the naive
	// reference) at this many bytes of operator memory AND per-query
	// buffered memory, so spill paths run under the full cross-engine
	// byte-equivalence check.
	Budget int
	// BatchSizes is the operator batch-capacity dimension: iteration i runs
	// every engine at BatchSizes[i mod len]. Values follow
	// core.Config.BatchSize (0 = default capacity, negative = row-at-a-time
	// adapter). Defaults to {0, 1, 7, -1}, so the full-size batches, the
	// degenerate one-row batches, an odd mid-size that never divides leaf
	// or run lengths, and the pure row path all face the byte-equivalence
	// check. The dimension draws nothing from the seed stream, so pinned
	// seeds replay the same documents and queries regardless.
	BatchSizes []int
	// DOPs is the intra-query parallelism dimension: iteration i runs every
	// engine at DOPs[i mod len] workers. Defaults to {1, 2, 4}. For DOP > 1
	// the optimizer's ExchangeAll hook wraps every eligible leaf scan in an
	// exchange with single-row morsels regardless of cost — the fuzz
	// documents are far too small for the cost gate to ever choose
	// parallelism on its own — so the ordered gather's merge discipline
	// faces the byte-equivalence check on every query shape. Like
	// BatchSizes, the dimension draws nothing from the seed stream.
	DOPs []int
}

// FuzzMismatch is one query whose result on some engine configuration
// diverged from the milestone 2 naive reference.
type FuzzMismatch struct {
	Iter    int
	Doc     string
	Query   string
	Engine  string
	Batch   int // core.Config.BatchSize the engine ran at
	DOP     int // core.Config.DOP the engine ran at
	Got     string
	Want    string
	GotErr  error
	WantErr error
}

// FuzzEngine names one optimizer configuration under test.
type FuzzEngine struct {
	Name string
	Cfg  opt.Config
}

// FuzzEngines returns the configurations the fuzz harness cross-checks
// against the naive reference: the full cost-based planner with
// partial-twig adoption on and off, and every ForceJoin family (the twig
// family also in both partial modes; the structural family in both
// emission orders — the descendant-ordered merge plus its sort repair,
// and the ancestor-ordered Stack-Tree-Anc merge). Every configuration
// caps exhaustive join-order enumeration at 5 relations — queries the
// generator keeps within the budget enumerate fully (exercising the
// whole auction, partial twigs and emission orders included), larger
// conjunctions take the syntactic-order fallback — so a fuzz iteration
// spends its time executing plans, not planning 8!-order auctions on
// 40-entry documents.
func FuzzEngines() []FuzzEngine {
	cap5 := func(c opt.Config) opt.Config {
		c.MaxEnumRels = 5
		return c
	}
	auto := opt.M4()
	noPartial := opt.M4()
	noPartial.UsePartialTwig = false
	twig, _ := opt.ForceJoin("twig")
	twigNoPartial := twig
	twigNoPartial.UsePartialTwig = false
	structural, _ := opt.ForceJoin("structural")
	structuralAnc, _ := opt.ForceJoin("structural-anc")
	inl, _ := opt.ForceJoin("inl")
	nl, _ := opt.ForceJoin("nl")
	bnl, _ := opt.ForceJoin("bnl")
	return []FuzzEngine{
		{"m4-auto", cap5(auto)},
		{"m4-nopartial", cap5(noPartial)},
		{"twig-partial", cap5(twig)},
		{"twig-nopartial", cap5(twigNoPartial)},
		{"structural", cap5(structural)},
		{"structural-anc", cap5(structuralAnc)},
		{"inl", cap5(inl)},
		{"nl", cap5(nl)},
		{"bnl", cap5(bnl)},
	}
}

// fuzzDoc is one generated document plus the vocabulary the query
// generator draws from.
type fuzzDoc struct {
	desc   string
	xml    string
	labels []string // element labels to use in node tests (some absent)
	strs   []string // string constants for value comparisons
}

// randomFuzzDoc generates a small random document: DBLP-shaped (shallow,
// label-skewed), TREEBANK-shaped (deep, recursive), or the handmade
// Figure 2 document. Documents stay tiny so even the nested-loops
// families finish every random query quickly.
func randomFuzzDoc(rng *rand.Rand) fuzzDoc {
	switch roll := rng.Intn(10); {
	case roll == 0:
		return fuzzDoc{
			desc:   "figure2",
			xml:    xmlgen.Figure2,
			labels: []string{"journal", "authors", "name", "title", "nosuch"},
			strs:   []string{"Ana", "Bob", "DB", "zzz"},
		}
	case roll <= 5:
		seed := rng.Int63()
		entries := 10 + rng.Intn(50)
		cfg := xmlgen.DBLPConfig{
			Entries:        entries,
			Seed:           seed,
			VolumeFraction: 0.05 + 0.4*rng.Float64(),
			PhdFraction:    0.02 + 0.1*rng.Float64(),
			NoteFraction:   0.01 + 0.1*rng.Float64(),
		}
		return fuzzDoc{
			desc: fmt.Sprintf("dblp(entries=%d seed=%d)", entries, seed),
			xml:  xmlgen.DBLP(cfg),
			labels: []string{"dblp", "article", "inproceedings", "phdthesis",
				"author", "title", "year", "journal", "volume", "pages",
				"booktitle", "school", "note", "cdrom"},
			strs: []string{"corresponding", "TODS", "1995", "1999", "zzz"},
		}
	default:
		seed := rng.Int63()
		sentences := 3 + rng.Intn(6)
		cfg := xmlgen.TreebankConfig{
			Sentences: sentences,
			Seed:      seed,
			MaxDepth:  6 + rng.Intn(6),
		}
		return fuzzDoc{
			desc: fmt.Sprintf("treebank(sentences=%d seed=%d)", sentences, seed),
			xml:  xmlgen.Treebank(cfg),
			labels: []string{"FILE", "S", "NP", "VP", "PP", "NN", "VB", "DT",
				"JJ", "EMPTY", "nosuch"},
			strs: []string{"zzz", "abc"},
		}
	}
}

// fuzzVar is one for-bound variable of a generated query.
type fuzzVar struct {
	name string
	text bool // bound by a text() test, so value comparisons are legal
}

// fuzzQueryGen builds random path/value query shapes over a document's
// vocabulary: chains and branches of child/descendant for-loops (the raw
// material of twigs, partial twigs and disconnected components), text()
// steps, nonexistent labels, and TPM-able plus runtime if-conditions with
// value comparisons restricted to text-bound operands (the engines define
// comparisons only on text nodes).
//
// relBudget bounds the number of XASR relations the merged PSX will hold
// (for-loops plus the relations conditions desugar into). Most queries
// stay within the join-order enumeration budget, where every operator
// family and the partial-twig auction are exercised; a small fraction
// deliberately exceed MaxEnumRels to cover the syntactic-order fallback —
// those use only variable-based steps and existential conditions so the
// unoptimized plans stay small on the tiny fuzz documents.
type fuzzQueryGen struct {
	rng       *rand.Rand
	doc       fuzzDoc
	vars      []fuzzVar
	seq       int
	relBudget int
	deep      bool
}

func (g *fuzzQueryGen) label() string {
	return g.doc.labels[g.rng.Intn(len(g.doc.labels))]
}

func (g *fuzzQueryGen) str() string {
	return g.doc.strs[g.rng.Intn(len(g.doc.strs))]
}

func (g *fuzzQueryGen) axis() string {
	if g.rng.Float64() < 0.35 {
		return "/"
	}
	return "//"
}

// test returns a node test and whether it is text().
func (g *fuzzQueryGen) test() (string, bool) {
	r := g.rng.Float64()
	switch {
	case r < 0.12:
		return "text()", true
	case r < 0.18:
		return "*", false
	default:
		return g.label(), false
	}
}

// textVars lists the variables legal in value comparisons.
func (g *fuzzQueryGen) textVars() []fuzzVar {
	var out []fuzzVar
	for _, v := range g.vars {
		if v.text {
			out = append(out, v)
		}
	}
	return out
}

// comparand renders one side of a value comparison: a text-bound variable
// when available, else a single child-step path ending in text() (the
// parser desugars it into an existential, costing one relation).
func (g *fuzzQueryGen) comparand() string {
	if tv := g.textVars(); len(tv) > 0 && (g.relBudget <= 0 || g.rng.Float64() < 0.6) {
		return "$" + tv[g.rng.Intn(len(tv))].name
	}
	g.relBudget--
	base := "$" + g.vars[g.rng.Intn(len(g.vars))].name
	return base + "/text()"
}

// cond generates a condition; depth bounds the combinator nesting, and the
// relation budget bounds how many extra relations it may desugar into.
func (g *fuzzQueryGen) cond(depth int) string {
	r := g.rng.Float64()
	switch {
	case depth < 2 && !g.deep && r < 0.10:
		return fmt.Sprintf("%s and %s", g.cond(depth+1), g.cond(depth+1))
	case depth < 2 && !g.deep && r < 0.16:
		// or routes the whole if through the runtime (non-TPM) path,
		// where no condition relation is ever created.
		return fmt.Sprintf("%s or %s", g.cond(depth+1), g.cond(depth+1))
	case depth < 2 && !g.deep && r < 0.22:
		return fmt.Sprintf("not(%s)", g.cond(depth+1))
	case r < 0.55 || g.deep:
		// Existential step off a bound variable (or the root).
		if g.relBudget <= 0 {
			return "true()"
		}
		g.relBudget--
		g.seq++
		sv := fmt.Sprintf("s%d", g.seq)
		base := "$" + g.vars[g.rng.Intn(len(g.vars))].name
		if !g.deep && g.rng.Float64() < 0.15 {
			base = ""
		}
		test, isText := g.test()
		sat := "true()"
		if isText && g.rng.Float64() < 0.4 {
			sat = fmt.Sprintf("$%s = %q", sv, g.str())
		}
		return fmt.Sprintf("some $%s in %s%s%s satisfies %s", sv, base, g.axis(), test, sat)
	case r < 0.8:
		if len(g.textVars()) == 0 && g.relBudget <= 0 {
			return "true()" // a path comparand would bust the relation budget
		}
		return fmt.Sprintf("%s = %q", g.comparand(), g.str())
	default:
		if len(g.textVars()) == 0 && g.relBudget <= 1 {
			return "true()" // two path comparands need budget for both
		}
		return fmt.Sprintf("%s = %s", g.comparand(), g.comparand())
	}
}

// query generates one complete random query.
func (g *fuzzQueryGen) query() string {
	// Most queries keep the merged conjunction inside the join-order
	// enumeration budget (≤5 relations); a few deliberately overflow it
	// to fuzz the syntactic-order fallback and the over-cap twig paths.
	g.relBudget = 5
	if g.rng.Float64() < 0.08 {
		g.deep = true
		g.relBudget = 10
	}
	// 2–5 for-loops, weighted toward the small shapes.
	k := 2
	switch r := g.rng.Float64(); {
	case g.deep:
		k = 4 + g.rng.Intn(2)
	case r < 0.40:
		k = 2
	case r < 0.75:
		k = 3
	default:
		k = 4
	}
	// Ancestor-first chains — every loop descending from the previous
	// loop's variable — are the vartuple shape the anc-ordered structural
	// emission targets (and the most common shape in the milestone
	// queries); bias toward them so the emission-order arbitration and
	// the structural-anc forced family see dense coverage. Text-bound
	// variables are skipped as chain bases (text nodes have no element
	// descendants, which would make the tail loops trivially empty).
	chain := !g.deep && g.rng.Float64() < 0.35
	var b strings.Builder
	rootLoops := 0
	for i := 0; i < k; i++ {
		name := fmt.Sprintf("v%d", i+1)
		base := ""
		// Later loops mostly navigate from a bound variable; at most one
		// extra root-based loop (none in deep or chain mode) keeps cross
		// products and the unoptimized fallback plans small.
		switch {
		case chain && i > 0:
			base = "$" + g.vars[len(g.vars)-1].name
		case i > 0 && !(!g.deep && rootLoops < 1 && g.rng.Float64() < 0.2):
			base = "$" + g.vars[g.rng.Intn(len(g.vars))].name
		case i > 0:
			rootLoops++
		}
		test, isText := g.test()
		if chain && isText && i < k-1 {
			test, isText = g.label(), false
		}
		fmt.Fprintf(&b, "for $%s in %s%s%s return ", name, base, g.axis(), test)
		g.vars = append(g.vars, fuzzVar{name: name, text: isText})
		g.relBudget--
	}
	emit := "$" + g.vars[g.rng.Intn(len(g.vars))].name
	body := emit
	if r := g.rng.Float64(); r < 0.15 {
		body = "<hit/>"
	} else if r < 0.3 {
		body = fmt.Sprintf("<r>{ %s }</r>", emit)
	}
	if g.rng.Float64() < 0.55 {
		body = fmt.Sprintf("if (%s) then %s else ()", g.cond(0), body)
	}
	b.WriteString(body)
	return b.String()
}

// RunFuzz runs the randomized equivalence fuzz harness: random documents,
// random query shapes, every engine configuration of FuzzEngines
// cross-checked byte-for-byte against the milestone 2 naive reference
// engine. It returns the mismatches and the number of (query, engine)
// checks performed. Everything is derived deterministically from
// cfg.Seed, so a logged seed plus iteration count reproduces a failure
// exactly.
func RunFuzz(dir string, cfg FuzzConfig) ([]FuzzMismatch, int, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 200
	}
	if cfg.QueriesPerDoc <= 0 {
		cfg.QueriesPerDoc = 8
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if len(cfg.BatchSizes) == 0 {
		cfg.BatchSizes = []int{0, 1, 7, -1}
	}
	if len(cfg.DOPs) == 0 {
		cfg.DOPs = []int{1, 2, 4}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	engines := FuzzEngines()

	var mismatches []FuzzMismatch
	checks := 0
	var st *store.Store
	var doc fuzzDoc
	var ref *core.Engine
	var under []*core.Engine
	defer func() {
		if st != nil {
			st.Close()
		}
	}()
	for iter := 0; iter < cfg.Iterations; iter++ {
		if iter%cfg.QueriesPerDoc == 0 {
			if st != nil {
				st.Close()
				st = nil
			}
			doc = randomFuzzDoc(rng)
			var err error
			st, err = store.Open(filepath.Join(dir, fmt.Sprintf("fuzz-%d", iter)), store.Options{})
			if err != nil {
				return mismatches, checks, err
			}
			if err := st.LoadString(doc.xml); err != nil {
				return mismatches, checks, fmt.Errorf("testbed: loading %s: %w", doc.desc, err)
			}
			ref = core.New(st, core.Config{Mode: core.ModeM2, Timeout: cfg.Timeout})
		}
		// The batch-capacity and parallelism dimensions rotate per
		// iteration, independent of the seed stream.
		batch := cfg.BatchSizes[iter%len(cfg.BatchSizes)]
		dop := cfg.DOPs[iter%len(cfg.DOPs)]
		under = under[:0]
		for i := range engines {
			c := engines[i].Cfg
			if dop > 1 {
				c.DOP = dop
				c.ExchangeAll = true
			}
			under = append(under, core.New(st, core.Config{
				Mode: core.ModeM4, Opt: &c, Timeout: cfg.Timeout,
				SortBudget: cfg.Budget, MemBudget: cfg.Budget,
				BatchSize: batch, DOP: dop,
			}))
		}
		gen := &fuzzQueryGen{rng: rng, doc: doc}
		q := gen.query()
		want, wantErr := ref.Query(q)
		for i, e := range under {
			got, gotErr := e.Query(q)
			checks++
			if got != want || (gotErr == nil) != (wantErr == nil) {
				mismatches = append(mismatches, FuzzMismatch{
					Iter: iter, Doc: doc.desc, Query: q, Engine: engines[i].Name,
					Batch: batch, DOP: dop,
					Got: got, Want: want, GotErr: gotErr, WantErr: wantErr,
				})
			}
		}
	}
	return mismatches, checks, nil
}

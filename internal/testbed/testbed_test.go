package testbed

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"xqdb/internal/core"
	"xqdb/internal/opt"
	"xqdb/internal/xmlgen"
)

func TestCorrectnessSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("correctness suite in -short mode")
	}
	outcomes, err := RunCorrectness(t.TempDir(), Documents(1), core.Modes())
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for _, o := range outcomes {
		if !o.Pass {
			failures++
			if failures <= 5 {
				t.Errorf("%s query %d on %s: err=%v\n got: %.120s\nwant: %.120s",
					o.Mode, o.Query, o.Doc, o.Err, o.Got, o.Want)
			}
		}
	}
	if failures > 0 {
		t.Fatalf("%d/%d correctness checks failed", failures, len(outcomes))
	}
	summary := SummarizeCorrectness(outcomes)
	if !strings.Contains(summary, "dblp") || !strings.Contains(summary, "treebank") {
		t.Errorf("summary incomplete:\n%s", summary)
	}
	t.Logf("correctness matrix:\n%s", summary)
}

func TestEfficiencySuiteShape(t *testing.T) {
	if testing.Short() {
		t.Skip("efficiency suite in -short mode")
	}
	rows, err := RunEfficiency(t.TempDir(), EffConfig{
		Entries: 3000,
		Seed:    7,
		Timeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	table := FormatFigure7(rows)
	t.Logf("Figure 7 (scaled):\n%s", table)

	byMode := map[core.Mode]EffRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	m4 := byMode[core.ModeM4]
	bad := byMode[core.ModeM4BadStats]
	m3 := byMode[core.ModeM3]

	// Shape checks from the paper:
	// (1) The cost-based engine has the best total.
	if rows[0].Mode != core.ModeM4 {
		t.Errorf("expected M4-costbased to win overall, got %s\n%s", rows[0].Mode, table)
	}
	// (2) Test 4's non-existent label is ~free for the stats-aware engine.
	if m4.Cells[3].Seconds > 0.5*m3.Cells[3].Seconds+0.05 {
		t.Errorf("T4: M4 (%0.3fs) not clearly faster than M3 (%0.3fs)", m4.Cells[3].Seconds, m3.Cells[3].Seconds)
	}
	// (3) The bad-statistics engine loses dramatically on test 5 while
	// staying competitive elsewhere (the engine 2 anomaly). Both T5
	// plans are sub-10 ms absolute on a warm machine, so the ratio
	// wobbles with scheduler noise — 5x is still a decisive loss while
	// staying clear of the noise floor (observed 9.4x–10.4x).
	if bad.Cells[4].Seconds < 5*m4.Cells[4].Seconds || bad.Cells[4].Seconds < m4.Cells[4].Seconds+0.005 {
		t.Errorf("T5: bad-stats engine (%0.4fs) did not blow up vs M4 (%0.4fs)", bad.Cells[4].Seconds, m4.Cells[4].Seconds)
	}
	for i := 0; i < 4; i++ {
		if bad.Cells[i].Seconds > 5*m4.Cells[i].Seconds+0.5 {
			t.Errorf("T%d: bad-stats engine (%0.3fs) should stay competitive with M4 (%0.3fs)", i+1, bad.Cells[i].Seconds, m4.Cells[i].Seconds)
		}
	}
	// (4) The Example 6 semijoin test separates M4 from M3.
	if m4.Cells[2].Seconds > m3.Cells[2].Seconds {
		t.Errorf("T3: M4 (%0.3fs) slower than M3 (%0.3fs)", m4.Cells[2].Seconds, m3.Cells[2].Seconds)
	}
}

func TestGrading(t *testing.T) {
	// A strong student: all milestones early, top-10% engine, small team.
	res := Grade(GradeInput{
		ExamPoints:            95,
		RunnableEngine:        true,
		EarlyBird:             [4]bool{true, true, true, true},
		ScalabilityPercentile: 0.05,
		SmallTeam:             true,
		CompletedMilestone4:   true,
	})
	if !res.Admitted || !res.Passed {
		t.Fatalf("strong student rejected: %+v", res)
	}
	// 95 + 4*2 + 6 + 2 = 111 > 100: the paper notes 25% of passing
	// students got more than 100 points.
	if res.Total != 111 {
		t.Errorf("total = %d, want 111 (%s)", res.Total, res.Detail)
	}

	// No runnable engine: not admitted regardless of anything else.
	res = Grade(GradeInput{ExamPoints: 100})
	if res.Admitted || res.Passed {
		t.Errorf("unadmitted student passed: %+v", res)
	}

	// Late milestones accumulate growing penalties.
	res = Grade(GradeInput{
		ExamPoints:            60,
		RunnableEngine:        true,
		WeeksLate:             [4]int{0, 1, 2, 3},
		ScalabilityPercentile: 0.9,
	})
	// 60 - 1 - 3 - 6 = 50.
	if res.Total != 50 || !res.Passed {
		t.Errorf("late student: total=%d passed=%v (%s)", res.Total, res.Passed, res.Detail)
	}

	// Exam below 50: fail even with bonuses.
	res = Grade(GradeInput{
		ExamPoints:            49,
		RunnableEngine:        true,
		EarlyBird:             [4]bool{true, true, true, true},
		ScalabilityPercentile: 0.01,
	})
	if res.Passed {
		t.Errorf("failing exam passed via bonuses: %+v", res)
	}
}

func TestEfficiencyTestsWellFormed(t *testing.T) {
	for _, et := range EfficiencyTests() {
		if et.Name == "" || et.Query == "" || et.Why == "" {
			t.Errorf("incomplete efficiency test: %+v", et)
		}
	}
	if len(CorrectnessQueries()) != 16 {
		t.Errorf("correctness suite has %d queries, want 16 (the paper's 'up to 16')", len(CorrectnessQueries()))
	}
}

// TestStructuralJoinEquivalenceSuite forces the structural merge join on
// (suppressing the loop-based alternatives it competes against) and off,
// and asserts byte-identical serialized results over the full correctness
// suite — all four documents including Figure 2 — plus the five
// efficiency-test queries. This mirrors PR 1's batch-vs-tuple equivalence
// checks: a physical operator may only change cost, never answers.
func TestStructuralJoinEquivalenceSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence suite in -short mode")
	}
	forcedOn, ok := opt.ForceJoin("structural")
	if !ok {
		t.Fatal("ForceJoin(structural)")
	}
	forcedOff, ok := opt.ForceJoin("inl")
	if !ok {
		t.Fatal("ForceJoin(inl)")
	}

	queries := append([]string(nil), CorrectnessQueries()...)
	for _, et := range EfficiencyTests() {
		queries = append(queries, et.Query)
	}
	mismatches, err := RunEquivalence(t.TempDir(), Documents(1), queries, forcedOn, forcedOff)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Errorf("%s / %q: forced-on %q (err %v) != forced-off %q (err %v)",
			m.Doc, m.Query, truncate(m.A, 120), m.ErrA, truncate(m.B, 120), m.ErrB)
	}
}

// TestStructuralAncEquivalenceSuite forces the two emission orders of
// the structural merge join against each other over the full correctness
// suite, the efficiency queries, and explicitly ancestor-first shapes
// (chains and stars, the vartuples the anc-ordered variant exists for).
// Emission order is a physical property: the descendant-ordered merge
// plus its repair sort and the ancestor-ordered Stack-Tree-Anc merge must
// serialize byte-identically — and both must agree with the auto planner
// arbitrating between them.
func TestStructuralAncEquivalenceSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence suite in -short mode")
	}
	anc, ok := opt.ForceJoin("structural-anc")
	if !ok {
		t.Fatal("ForceJoin(structural-anc)")
	}
	desc, ok := opt.ForceJoin("structural")
	if !ok {
		t.Fatal("ForceJoin(structural)")
	}

	queries := append([]string(nil), CorrectnessQueries()...)
	for _, et := range EfficiencyTests() {
		queries = append(queries, et.Query)
	}
	queries = append(queries,
		// Ancestor-first chains and stars, nested same-label ancestors,
		// child axes, and text leaves.
		`for $x in //article return for $y in $x//author return $y`,
		`for $j in //dblp return for $x in $j//inproceedings return for $a in $x//author return $a`,
		`for $x in //inproceedings return for $a in $x//author return for $t in $x//title return for $y in $x//year return $t`,
		`for $s in //S return for $n in $s//NP return for $v in $n//NN return $v`,
		`for $a in //authors return for $n in $a/name return $n`,
		`for $b in //book return for $t in $b/title return for $tx in $t//text() return $tx`,
	)
	mismatches, err := RunEquivalence(t.TempDir(), Documents(1), queries, anc, desc)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Errorf("%s / %q: anc %q (err %v) != desc %q (err %v)",
			m.Doc, m.Query, truncate(m.A, 120), m.ErrA, truncate(m.B, 120), m.ErrB)
	}

	// The auto planner (emission arbitrated by cost) must agree with the
	// desc-restricted planner too.
	descOnly := opt.M4()
	descOnly.StructuralEmit = opt.EmitDesc
	mismatches, err = RunEquivalence(t.TempDir(), Documents(1), queries, opt.M4(), descOnly)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Errorf("%s / %q: auto %q (err %v) != desc-only %q (err %v)",
			m.Doc, m.Query, truncate(m.A, 120), m.ErrA, truncate(m.B, 120), m.ErrB)
	}
}

// TestTwigJoinEquivalenceSuite forces the holistic twig join on (every
// binary competitor suppressed, so any conjunction whose predicates form
// a twig runs TwigJoin) and off (the binary structural-join pipeline),
// and asserts byte-identical serialized results over the full correctness
// suite on all four documents, the efficiency queries, and a set of
// explicitly multi-branch twig patterns. A physical operator may only
// change cost, never answers.
func TestTwigJoinEquivalenceSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence suite in -short mode")
	}
	forcedOn, ok := opt.ForceJoin("twig")
	if !ok {
		t.Fatal("ForceJoin(twig)")
	}
	forcedOff, ok := opt.ForceJoin("structural")
	if !ok {
		t.Fatal("ForceJoin(structural)")
	}

	queries := append([]string(nil), CorrectnessQueries()...)
	for _, et := range EfficiencyTests() {
		queries = append(queries, et.Query)
	}
	queries = append(queries,
		// ≥3-branch twigs with mixed axes, chains and branch points.
		`for $x in //inproceedings return for $a in $x//author return for $t in $x//title return for $y in $x//year return $t`,
		`for $x in //article return for $a in $x//author return for $t in $x/title return $a`,
		`for $s in //S return for $n in $s//NP return for $v in $n//NN return $v`,
		`for $b in //book return for $t in $b/title return for $tx in $t//text() return $tx`,
	)
	mismatches, err := RunEquivalence(t.TempDir(), Documents(1), queries, forcedOn, forcedOff)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Errorf("%s / %q: twig-on %q (err %v) != twig-off %q (err %v)",
			m.Doc, m.Query, truncate(m.A, 120), m.ErrA, truncate(m.B, 120), m.ErrB)
	}

	// The auto planner (twig arbitrated by cost) must agree with the
	// twig-ablated planner too.
	auto := opt.M4()
	noTwig := opt.M4()
	noTwig.UseTwig = false
	mismatches, err = RunEquivalence(t.TempDir(), Documents(1), queries, auto, noTwig)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Errorf("%s / %q: auto %q (err %v) != twig-ablated %q (err %v)",
			m.Doc, m.Query, truncate(m.A, 120), m.ErrA, truncate(m.B, 120), m.ErrB)
	}
}

// TestPartialTwigEquivalenceSuite forces partial-twig adoption on and off
// across the full correctness suite, the efficiency queries, and mixed
// twig+value-join / twig+uncovered-relation shapes on all four documents —
// in both the auto cost-based planner and the forced-twig family. Adopting
// a twig as a leading sub-plan may only change cost, never answers.
func TestPartialTwigEquivalenceSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence suite in -short mode")
	}
	// The correctness + efficiency queries run on all four documents; the
	// mixed shapes (several produce cross products or bulk value joins)
	// run on small documents — plan shape, not document size, is what
	// drives partial-twig adoption, and the forced families must finish
	// the unoptimized fallbacks quickly under the race detector.
	base := append([]string(nil), CorrectnessQueries()...)
	for _, et := range EfficiencyTests() {
		base = append(base, et.Query)
	}
	smallDocs := []Doc{
		{Name: "handmade", XML: xmlgen.Figure2},
		{Name: "dblp-small", XML: xmlgen.DBLP(xmlgen.DBLPConfig{Entries: 40, Seed: 16, PhdFraction: 0.05})},
		{Name: "treebank-small", XML: xmlgen.Treebank(xmlgen.TreebankConfig{Sentences: 5, Seed: 80})},
	}

	auto := opt.M4()
	autoOff := opt.M4()
	autoOff.UsePartialTwig = false
	forced, ok := opt.ForceJoin("twig")
	if !ok {
		t.Fatal("ForceJoin(twig)")
	}
	forcedOff := forced
	forcedOff.UsePartialTwig = false
	// Cap exhaustive join-order enumeration like the fuzz harness does:
	// the 6–7-relation mixed shapes would otherwise spend seconds per
	// plan in the factorial auction (×docs ×configs ×pairs), and the
	// over-MaxEnumRels branch seeds partial twigs too, so both planner
	// paths stay covered. The opt package tests exercise the fully
	// enumerated auction on these shapes.
	for _, c := range []*opt.Config{&auto, &autoOff, &forced, &forcedOff} {
		c.MaxEnumRels = 5
	}

	for _, pair := range []struct {
		name string
		a, b opt.Config
	}{{"auto", auto, autoOff}, {"forced", forced, forcedOff}} {
		mismatches, err := RunEquivalence(t.TempDir(), Documents(1), base, pair.a, pair.b)
		if err != nil {
			t.Fatal(err)
		}
		mm2, err := RunEquivalence(t.TempDir(), smallDocs, mixedTwigQueries(), pair.a, pair.b)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range append(mismatches, mm2...) {
			t.Errorf("%s: %s / %q: partial-on %q (err %v) != partial-off %q (err %v)",
				pair.name, m.Doc, m.Query, truncate(m.A, 120), m.ErrA, truncate(m.B, 120), m.ErrB)
		}
	}
}

// mixedTwigQueries are the partial-twig shapes: path patterns mixed with
// value equi-joins, value predicates, and uncovered relations.
func mixedTwigQueries() []string {
	return []string{
		// Branching twig + uncovered pass-fail relation (cross product).
		`for $x in //inproceedings return for $a in $x//author return for $t in $x//title return for $y in $x//year return if (some $p in //phdthesis satisfies true()) then $t else ()`,
		// Twig with a value predicate + uncovered relation.
		`for $x in //inproceedings return for $a in $x//author return for $t in $x//title return for $y in $x//year return for $yt in $y/text() return if ($yt = "1995" and some $p in //phdthesis satisfies true()) then $t else ()`,
		// Chain twig + value equi-join against a second component.
		`for $x in //inproceedings return for $a in $x//author return for $at in $a/text() return for $p in //phdthesis return for $pt in $p//text() return if ($at = $pt) then $at else ()`,
		// Branching twig + value equi-join (selective anchor exists: the
		// auction must decline adoption without changing answers).
		`for $x in //inproceedings return for $a in $x//author return for $at in $a/text() return for $y in $x//year return for $p in //phdthesis return for $pt in $p//text() return if ($at = $pt) then $y else ()`,
		// Two sizeable components joined on text values (no anchor).
		`for $ar in //article return for $aa in $ar//author return for $aat in $aa/text() return for $oa in //author return for $oat in $oa/text() return if ($aat = $oat) then $aa else ()`,
		// Deep treebank twig + uncovered relation.
		`for $s in //S return for $np in $s//NP return for $nn in $np//NN return if (some $v in //VB satisfies true()) then $nn else ()`,
		// Covered existential node (several matches per vartuple tie) +
		// uncovered bind loop: the dedup-regression shape — duplicate
		// vartuples must not leak through the composite plan.
		`for $x in //article return for $t in $x/title return for $c in //journal return if (some $a in $x//author satisfies true()) then $t else ()`,
		`for $s in //S return for $np in $s//NP return for $d in //DT return if (some $n in $s//NN satisfies true()) then $np else ()`,
	}
}

// TestRandomizedEquivalenceFuzz is the randomized cross-engine harness:
// random documents × random path/value query shapes, every ForceJoin
// family plus partial-twig on/off, all cross-checked byte-for-byte
// against the milestone 2 naive reference. The seed is pinned (CI runs
// the same sequence every time) and logged so failures replay exactly.
func TestRandomizedEquivalenceFuzz(t *testing.T) {
	iters := 200
	if s := os.Getenv("XQDB_FUZZ_ITERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			iters = n // CI's quick dedicated step runs a smaller budget
		}
	}
	if testing.Short() {
		iters = 16 // capped budget under -short
	}
	cfg := FuzzConfig{Seed: FuzzSeedCI, Iterations: iters}
	mismatches, checks, err := RunFuzz(t.TempDir(), cfg)
	if err != nil {
		t.Fatalf("fuzz harness (seed %d): %v", cfg.Seed, err)
	}
	t.Logf("fuzz: %d iterations, %d engine checks, seed %d", iters, checks, cfg.Seed)
	for i, m := range mismatches {
		if i >= 10 {
			t.Errorf("... and %d more mismatches", len(mismatches)-10)
			break
		}
		t.Errorf("seed=%d iter=%d doc=%s engine=%s batch=%d\nquery: %s\n got: %.160q (err %v)\nwant: %.160q (err %v)",
			cfg.Seed, m.Iter, m.Doc, m.Engine, m.Batch, m.Query, m.Got, m.GotErr, m.Want, m.WantErr)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// TestParallelEquivalenceSuite runs a serial cost-based planner against
// one whose every eligible leaf scan executes under a 4-worker exchange
// with single-row morsels (ExchangeAll — the suite documents are far too
// small for the cost gate to pick parallelism on its own), over the full
// correctness suite and the efficiency queries on all four documents.
// Byte-identical serialized results mean the ordered gather reproduces
// the serial scan's document-ordered stream exactly, under every join
// family the auction picks above it.
func TestParallelEquivalenceSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence suite in -short mode")
	}
	serial := opt.M4()
	par := opt.M4()
	par.DOP = 4
	par.ExchangeAll = true

	queries := append([]string(nil), CorrectnessQueries()...)
	for _, et := range EfficiencyTests() {
		queries = append(queries, et.Query)
	}
	mismatches, err := RunEquivalence(t.TempDir(), Documents(1), queries, serial, par)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Errorf("%s / %q: serial %q (err %v) != dop=4 %q (err %v)",
			m.Doc, m.Query, truncate(m.A, 120), m.ErrA, truncate(m.B, 120), m.ErrB)
	}
}

package testbed

import "testing"

// TestCrashRecoverySweep kills a pinned-seed update script at every
// injected crash point and checks that redo recovery restores a valid
// statement prefix — bytes, query results, statistics and all — with
// nothing leaked.
func TestCrashRecoverySweep(t *testing.T) {
	cfg := CrashConfig{Seed: RobustSeedCI}
	if testing.Short() {
		cfg.Points = 16
		cfg.Statements = 10
	}
	rep, err := RunCrashRecovery(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("crash sweep: %d points (%d fired) over %d ops; %d survived, %d discarded",
		rep.Points, rep.Fired, rep.TotalOps, rep.Survived, rep.Discarded)
	for _, f := range rep.Failures {
		t.Error(f)
	}
	if !testing.Short() && rep.Fired < 100 {
		t.Errorf("only %d crash points fired, want >= 100", rep.Fired)
	}
	if rep.Fired == 0 {
		t.Error("no crash point fired")
	}
	// The sweep must exercise both recovery outcomes: statements made
	// durable before the kill (redone) and statements killed before the
	// commit flush (discarded without trace).
	if !testing.Short() && (rep.Survived == 0 || rep.Discarded == 0) {
		t.Errorf("sweep missed a recovery outcome: survived=%d discarded=%d",
			rep.Survived, rep.Discarded)
	}
}

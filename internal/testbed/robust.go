package testbed

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"xqdb/internal/core"
	"xqdb/internal/fault"
	"xqdb/internal/limit"
	"xqdb/internal/opt"
	"xqdb/internal/store"
)

// RobustSeedCI is the pinned seed the CI fault-injection step runs at.
const RobustSeedCI = 20260808

// RobustConfig parameterizes the robustness harness: the equivalence
// suite replayed under tiny memory budgets, deterministic I/O fault
// injection, and aggressive deadlines.
type RobustConfig struct {
	// Seed drives the choice of fault points; the same seed replays the
	// identical failure sequence.
	Seed int64
	// Budget is the per-query memory quota AND operator sort budget in
	// bytes (default 64 KiB — small enough that every buffering operator
	// spills on the suite documents).
	Budget int
	// FaultsPerQuery is how many distinct I/O operations to fail per
	// query (default 3); each fault point is one full re-execution with
	// exactly the Nth I/O of the query failing.
	FaultsPerQuery int
	// Timeout bounds each non-deadline run (default 30s — generous, so
	// timing never masquerades as a robustness failure).
	Timeout time.Duration
	// TightDeadline is the aggressive per-query deadline of the abort
	// pass (default 500µs): most suite queries cannot finish, so the
	// pass exercises mid-stream cancellation on every operator.
	TightDeadline time.Duration
	// CacheFrames bounds the buffer pool (default 32 frames — small
	// enough that suite queries must re-read pages from the file, so
	// the fault injector sees real page I/O to fail).
	CacheFrames int
	// Opt, when set, configures the optimizer of the budgeted and
	// deadlined engines — the hook for replaying the suite with a
	// forced operator family (the reference engine stays cost-based, so
	// every comparison doubles as a cross-config equivalence check).
	Opt *opt.Config
	// BatchSize follows core.Config.BatchSize for the budgeted and
	// deadlined engines (0 = executor default, negative = row-at-a-time);
	// the clean reference always runs at the default so every comparison
	// doubles as a batch-vs-reference equivalence check.
	BatchSize int
	// DOP follows core.Config.DOP for the budgeted and deadlined engines
	// (0 or 1 = serial); the clean reference always runs serial, so a
	// parallel pass byte-checks exchange output under budget pressure,
	// fault injection, and mid-exchange deadline aborts. Pair with an Opt
	// config whose ExchangeAll is set — the suite documents are too small
	// for the cost gate to pick parallelism on its own.
	DOP int
	// Docs are the documents to replay on (default Documents(1)).
	Docs []Doc
	// Queries are the queries to replay (default the correctness suite,
	// the efficiency tests, and chain/branch shapes that drive the twig
	// and ancestor-ordered structural operators into their spill paths).
	Queries []string
}

// RobustFailure records one robustness violation: a panic, a leaked
// resource, or a completed run whose bytes differ from the clean
// reference.
type RobustFailure struct {
	Doc   string
	Query string
	Phase string // "budget", "fault@N", "deadline"
	Kind  string // "panic", "temp-leak", "pin-leak", "mismatch", "error"
	Got   string
	Want  string
	Err   error
}

func (f RobustFailure) String() string {
	return fmt.Sprintf("%s [%s/%s] %q: err=%v got=%.80q want=%.80q",
		f.Kind, f.Doc, f.Phase, f.Query, f.Err, f.Got, f.Want)
}

// RobustReport summarizes one harness run.
type RobustReport struct {
	Queries      int   // (doc, query) pairs replayed
	FaultRuns    int   // fault-armed executions
	FaultFired   int   // fault runs where the armed fault actually triggered
	FaultErrors  int   // fault runs that surfaced an error (clean aborts)
	Timeouts     int   // deadline-pass runs aborted by the tight deadline
	SpilledBytes int64 // total spill traffic of the budgeted clean runs
	SpillRuns    int64
	Failures     []RobustFailure
}

// RunRobustness replays the suite under resource pressure. For every
// (document, query) pair it runs four phases, asserting after each that
// no temp files and no pager pins leaked and that nothing panicked:
//
//  1. a clean unbudgeted run, establishing the reference bytes;
//  2. a clean run at cfg.Budget (memory quota + sort budget) — must
//     complete byte-identically, degrading to disk instead of failing;
//  3. cfg.FaultsPerQuery fault runs, each failing exactly the Nth I/O
//     operation (page reads/writes and temp-file writes share one
//     counter) for a deterministically chosen N — a run either
//     completes byte-identically or returns an error, never panics;
//  4. a run under cfg.TightDeadline — must either complete
//     byte-identically or abort with the deadline error.
//
// Everything is derived from cfg.Seed, so a failure replays exactly.
func RunRobustness(dir string, cfg RobustConfig) (RobustReport, error) {
	if cfg.Budget <= 0 {
		cfg.Budget = 64 << 10
	}
	if cfg.FaultsPerQuery <= 0 {
		cfg.FaultsPerQuery = 3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.TightDeadline <= 0 {
		cfg.TightDeadline = 500 * time.Microsecond
	}
	if cfg.CacheFrames <= 0 {
		cfg.CacheFrames = 32
	}
	if cfg.Docs == nil {
		cfg.Docs = Documents(1)
	}
	if cfg.Queries == nil {
		cfg.Queries = append([]string(nil), CorrectnessQueries()...)
		for _, et := range EfficiencyTests() {
			cfg.Queries = append(cfg.Queries, et.Query)
		}
		cfg.Queries = append(cfg.Queries,
			// Multi-branch twig and ancestor-first chains: the shapes
			// whose path-solution lists and anc output lists overflow a
			// 64 KiB budget on the suite documents.
			`for $x in //inproceedings return for $a in $x//author return for $ti in $x//title return for $y in $x//year return $a`,
			`for $j in //dblp return for $x in $j//inproceedings return for $a in $x//author return $a`,
			`for $s in //S return for $np in $s//NP return for $nn in $np//NN return $nn`,
		)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var rep RobustReport
	for _, doc := range cfg.Docs {
		inj := &fault.Injector{}
		st, err := store.Open(filepath.Join(dir, "robust-"+doc.Name), store.Options{
			IOHook:      inj.Hook,
			CacheFrames: cfg.CacheFrames,
		})
		if err != nil {
			return rep, err
		}
		if err := st.LoadString(doc.XML); err != nil {
			st.Close()
			return rep, fmt.Errorf("testbed: loading %s: %w", doc.Name, err)
		}

		clean := core.New(st, core.Config{Mode: core.ModeM4, Timeout: cfg.Timeout})
		budgeted := core.New(st, core.Config{
			Mode: core.ModeM4, Opt: cfg.Opt, Timeout: cfg.Timeout,
			SortBudget: cfg.Budget, MemBudget: cfg.Budget,
			FaultHook: inj.Hook, BatchSize: cfg.BatchSize, DOP: cfg.DOP,
		})
		deadlined := core.New(st, core.Config{
			Mode: core.ModeM4, Opt: cfg.Opt, Timeout: cfg.TightDeadline,
			SortBudget: cfg.Budget, MemBudget: cfg.Budget,
			FaultHook: inj.Hook, BatchSize: cfg.BatchSize, DOP: cfg.DOP,
		})

		for _, q := range cfg.Queries {
			rep.Queries++
			fail := func(phase, kind, got, want string, err error) {
				rep.Failures = append(rep.Failures, RobustFailure{
					Doc: doc.Name, Query: q, Phase: phase, Kind: kind,
					Got: got, Want: want, Err: err,
				})
			}

			// Phase 1: unbudgeted reference bytes.
			want, err, panicked := safeQuery(clean, q)
			if panicked {
				fail("reference", "panic", "", "", err)
				continue
			}
			if err != nil {
				return rep, fmt.Errorf("testbed: reference failed on %q over %s: %w", q, doc.Name, err)
			}

			// Phase 2: tiny budget, counting the query's I/O operations.
			// Spilling is graceful degradation — the run must still
			// complete with the same bytes.
			inj.Arm(0) // reset the op counter, stay disarmed
			got, err, panicked := safeQuery(budgeted, q)
			ops := inj.Ops()
			switch {
			case panicked:
				fail("budget", "panic", "", "", err)
			case err != nil:
				fail("budget", "error", got, want, err)
			case got != want:
				fail("budget", "mismatch", got, want, nil)
			}
			rep.SpilledBytes += budgeted.Counters().SpilledBytes
			rep.SpillRuns += int64(budgeted.Counters().SpillRuns)
			rep.Failures = append(rep.Failures, leakChecks(st, doc.Name, q, "budget")...)

			// Phase 3: deterministic fault points across the query's I/O
			// sequence. Each run either completes byte-identically or
			// aborts with an error — and always cleans up.
			for k := 0; k < cfg.FaultsPerQuery && ops > 0; k++ {
				n := 1 + rng.Int63n(ops)
				inj.Arm(n)
				got, err, panicked := safeQuery(budgeted, q)
				rep.FaultRuns++
				if inj.Fired() {
					rep.FaultFired++
				}
				inj.Disarm()
				switch {
				case panicked:
					fail(fmt.Sprintf("fault@%d", n), "panic", "", "", err)
				case err != nil:
					rep.FaultErrors++ // a clean abort is the expected outcome
				case got != want:
					fail(fmt.Sprintf("fault@%d", n), "mismatch", got, want, nil)
				}
				rep.Failures = append(rep.Failures, leakChecks(st, doc.Name, q, fmt.Sprintf("fault@%d", n))...)
			}

			// Phase 4: aggressive deadline — complete identically or
			// abort with the deadline error, never anything else.
			got, err, panicked = safeQuery(deadlined, q)
			switch {
			case panicked:
				fail("deadline", "panic", "", "", err)
			case errors.Is(err, limit.ErrTimeout) || errors.Is(err, limit.ErrCanceled):
				rep.Timeouts++
			case err != nil:
				fail("deadline", "error", got, want, err)
			case got != want:
				fail("deadline", "mismatch", got, want, nil)
			}
			rep.Failures = append(rep.Failures, leakChecks(st, doc.Name, q, "deadline")...)
		}
		st.Close()
	}
	return rep, nil
}

// safeQuery runs one query, converting a panic into an error so the
// harness can keep replaying (and record the violation).
func safeQuery(e *core.Engine, q string) (res string, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	res, err = e.Query(q)
	return res, err, false
}

// leakChecks asserts the post-query invariants: the store's temp
// directory holds no spill files and the buffer pool holds no pins. Any
// leaked temp files are removed so one leak is reported once, not on
// every later check.
func leakChecks(st *store.Store, doc, q, phase string) []RobustFailure {
	var out []RobustFailure
	if dir, err := st.TempDir(); err == nil {
		if ents, err := os.ReadDir(dir); err == nil && len(ents) > 0 {
			names := make([]string, 0, len(ents))
			for _, e := range ents {
				names = append(names, e.Name())
				os.Remove(filepath.Join(dir, e.Name()))
			}
			out = append(out, RobustFailure{
				Doc: doc, Query: q, Phase: phase, Kind: "temp-leak",
				Err: fmt.Errorf("%d leaked temp files: %v", len(names), names),
			})
		}
	}
	if pins := st.PinnedPages(); pins != 0 {
		out = append(out, RobustFailure{
			Doc: doc, Query: q, Phase: phase, Kind: "pin-leak",
			Err: fmt.Errorf("%d pages still pinned", pins),
		})
	}
	return out
}

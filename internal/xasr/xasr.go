// Package xasr implements the eXtended Access Support Relation encoding of
// XML documents (Fiebig/Moerkotte, used as the storage schema in milestone
// 2 of the paper):
//
//	Node(in, out, parent_in, type, value)
//
// where in/out are the preorder tag-counting labels of Figure 2, parent_in
// links to the parent tuple, type is root/element/text, and value is the
// element label, the text content, or NULL for the root. in is the primary
// key; the document can be reconstructed from the relation, and child and
// descendant structural joins become relational conditions:
//
//	child:      b.parent_in = a.in
//	descendant: a.in < b.in AND b.out < a.out
//
// The package provides the tuple type, order-preserving key codecs for the
// primary tree and both secondary indexes, and a streaming shredder.
package xasr

import (
	"encoding/binary"
	"fmt"
	"io"

	"xqdb/internal/xmltok"
)

// NodeType is the XASR "type" column.
type NodeType uint8

// Node types. The numeric values are part of the on-disk format.
const (
	TypeRoot NodeType = 1
	TypeElem NodeType = 2
	TypeText NodeType = 3
)

// String returns the XASR spelling of the type.
func (t NodeType) String() string {
	switch t {
	case TypeRoot:
		return "root"
	case TypeElem:
		return "elem"
	case TypeText:
		return "text"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Tuple is one row of the XASR Node relation.
type Tuple struct {
	In       uint32
	Out      uint32
	ParentIn uint32 // 0 for the root (it has no parent)
	Type     NodeType
	Value    string // label, text content, or "" (NULL) for the root
}

// String formats the tuple like Example 1 of the paper:
// (2, 17, 1, element, journal).
func (t Tuple) String() string {
	val := t.Value
	if t.Type == TypeRoot {
		val = "NULL"
	}
	return fmt.Sprintf("(%d, %d, %d, %s, %s)", t.In, t.Out, t.ParentIn, t.Type, val)
}

// IsDescendantOf reports whether t lies strictly below anc, using the
// interval containment property of in/out labels.
func (t Tuple) IsDescendantOf(anc Tuple) bool {
	return anc.In < t.In && t.Out < anc.Out
}

// IsChildOf reports whether t is a child of p.
func (t Tuple) IsChildOf(p Tuple) bool { return t.ParentIn == p.In }

// --- primary tree codec: key = be32(in), value = out,parent,type,value ---

// PrimaryKey encodes the clustered primary key for an in label.
func PrimaryKey(in uint32) []byte {
	var k [4]byte
	binary.BigEndian.PutUint32(k[:], in)
	return k[:]
}

// PrimaryKeyInto writes the primary key into dst[:4].
func PrimaryKeyInto(dst []byte, in uint32) {
	binary.BigEndian.PutUint32(dst, in)
}

// InFromPrimaryKey decodes an in label from a primary key.
func InFromPrimaryKey(key []byte) uint32 { return binary.BigEndian.Uint32(key) }

// EncodePrimaryValue encodes the non-key columns of a tuple.
func EncodePrimaryValue(t Tuple) []byte {
	v := make([]byte, 9+len(t.Value))
	binary.BigEndian.PutUint32(v[0:], t.Out)
	binary.BigEndian.PutUint32(v[4:], t.ParentIn)
	v[8] = byte(t.Type)
	copy(v[9:], t.Value)
	return v
}

// DecodePrimary reconstructs a tuple from a primary key/value pair.
func DecodePrimary(key, val []byte) (Tuple, error) {
	t, raw, err := DecodePrimaryRaw(key, val)
	if err != nil {
		return Tuple{}, err
	}
	t.Value = string(raw)
	return t, nil
}

// DecodePrimaryRaw decodes the fixed columns of a primary record, leaving
// Value unset and returning the raw value-column bytes instead. Batch
// decoders use this to defer (and share) the string conversion.
func DecodePrimaryRaw(key, val []byte) (Tuple, []byte, error) {
	if len(key) != 4 || len(val) < 9 {
		return Tuple{}, nil, fmt.Errorf("xasr: corrupt primary record (key %d bytes, value %d bytes)", len(key), len(val))
	}
	return Tuple{
		In:       binary.BigEndian.Uint32(key),
		Out:      binary.BigEndian.Uint32(val[0:]),
		ParentIn: binary.BigEndian.Uint32(val[4:]),
		Type:     NodeType(val[8]),
	}, val[9:], nil
}

// --- label index codec: key = type, uvarint(len(value)), value, be32(in);
//     payload = be32(out), be32(parent_in). Entries with equal (type,value)
//     are adjacent and sorted by in, so an exact-prefix scan yields the
//     nodes with that label in document order, index-only. ---

// LabelPrefix returns the key prefix selecting all entries for (typ, value).
func LabelPrefix(typ NodeType, value string) []byte {
	k := make([]byte, 0, 1+binary.MaxVarintLen32+len(value))
	k = append(k, byte(typ))
	var tmp [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(tmp[:], uint64(len(value)))
	k = append(k, tmp[:n]...)
	k = append(k, value...)
	return k
}

// LabelKey returns the full label-index key for a tuple.
func LabelKey(typ NodeType, value string, in uint32) []byte {
	k := LabelPrefix(typ, value)
	var ib [4]byte
	binary.BigEndian.PutUint32(ib[:], in)
	return append(k, ib[:]...)
}

// EncodeLabelValue encodes the label-index payload.
func EncodeLabelValue(out, parentIn uint32) []byte {
	v := make([]byte, 8)
	binary.BigEndian.PutUint32(v[0:], out)
	binary.BigEndian.PutUint32(v[4:], parentIn)
	return v
}

// DecodeLabelEntry decodes (in, out, parentIn) from a label-index entry.
// The type and value are implied by the scanned prefix.
func DecodeLabelEntry(key, val []byte) (in, out, parentIn uint32, err error) {
	if len(key) < 4 || len(val) < 8 {
		return 0, 0, 0, fmt.Errorf("xasr: corrupt label index entry")
	}
	in = binary.BigEndian.Uint32(key[len(key)-4:])
	out = binary.BigEndian.Uint32(val[0:])
	parentIn = binary.BigEndian.Uint32(val[4:])
	return in, out, parentIn, nil
}

// --- parent index codec: key = be32(parent_in), be32(in);
//     payload = be32(out), type, value. A prefix scan on parent_in yields
//     the children of a node in document order without touching the
//     primary tree. ---

// ParentPrefix returns the key prefix selecting the children of parentIn.
func ParentPrefix(parentIn uint32) []byte {
	var k [4]byte
	binary.BigEndian.PutUint32(k[:], parentIn)
	return k[:]
}

// ParentKey returns the full parent-index key.
func ParentKey(parentIn, in uint32) []byte {
	k := make([]byte, 8)
	binary.BigEndian.PutUint32(k[0:], parentIn)
	binary.BigEndian.PutUint32(k[4:], in)
	return k
}

// EncodeParentValue encodes the parent-index payload.
func EncodeParentValue(out uint32, typ NodeType, value string) []byte {
	v := make([]byte, 5+len(value))
	binary.BigEndian.PutUint32(v[0:], out)
	v[4] = byte(typ)
	copy(v[5:], value)
	return v
}

// DecodeParentEntry decodes a full tuple from a parent-index entry.
func DecodeParentEntry(key, val []byte) (Tuple, error) {
	t, raw, err := DecodeParentEntryRaw(key, val)
	if err != nil {
		return Tuple{}, err
	}
	t.Value = string(raw)
	return t, nil
}

// DecodeParentEntryRaw decodes the fixed columns of a parent-index entry,
// leaving Value unset and returning the raw value bytes instead (see
// DecodePrimaryRaw).
func DecodeParentEntryRaw(key, val []byte) (Tuple, []byte, error) {
	if len(key) != 8 || len(val) < 5 {
		return Tuple{}, nil, fmt.Errorf("xasr: corrupt parent index entry")
	}
	return Tuple{
		ParentIn: binary.BigEndian.Uint32(key[0:]),
		In:       binary.BigEndian.Uint32(key[4:]),
		Out:      binary.BigEndian.Uint32(val[0:]),
		Type:     NodeType(val[4]),
	}, val[5:], nil
}

// --- flat record codec for spill files (shredding, intermediates) ---

// AppendTuple encodes t onto dst in a self-delimiting flat format.
func AppendTuple(dst []byte, t Tuple) []byte {
	var b [13]byte
	binary.BigEndian.PutUint32(b[0:], t.In)
	binary.BigEndian.PutUint32(b[4:], t.Out)
	binary.BigEndian.PutUint32(b[8:], t.ParentIn)
	b[12] = byte(t.Type)
	dst = append(dst, b[:]...)
	return append(dst, t.Value...)
}

// DecodeTuple decodes a record produced by AppendTuple.
func DecodeTuple(rec []byte) (Tuple, error) {
	if len(rec) < 13 {
		return Tuple{}, fmt.Errorf("xasr: corrupt tuple record (%d bytes)", len(rec))
	}
	return Tuple{
		In:       binary.BigEndian.Uint32(rec[0:]),
		Out:      binary.BigEndian.Uint32(rec[4:]),
		ParentIn: binary.BigEndian.Uint32(rec[8:]),
		Type:     NodeType(rec[12]),
		Value:    string(rec[13:]),
	}, nil
}

// Stats are the document statistics milestone 4 keeps "in separate external
// storage structures": per-label cardinalities and the average node depth,
// the paper's gross measure for ancestor-descendant join selectivity.
type Stats struct {
	Nodes      int64            // total tuples including the root
	Elems      int64            // element nodes
	Texts      int64            // text nodes
	MaxIn      uint32           // largest assigned label counter value
	LabelCount map[string]int64 // element label -> cardinality
	// LabelSubtreeSum is, per element label, the total number of proper
	// descendant nodes summed over all elements with that label — exact
	// from the interval encoding ((out-in-1)/2 per element). It gives the
	// optimizer precise ancestor/descendant pair cardinalities:
	// pairs(label//D) ≈ LabelSubtreeSum[label] · |D| / Nodes.
	LabelSubtreeSum map[string]int64
	// LabelDistinctTexts is, per element label, the number of distinct
	// text values occurring as direct children of elements with that
	// label. It calibrates text-value equi-join selectivity (author =
	// author, year = year): the expected match fraction is
	// 1/distinct(label), where the near-unique 1/texts guess
	// underestimates dense domains by orders of magnitude.
	LabelDistinctTexts map[string]int64
	SumDepth           int64 // sum of node depths (root = 0)
	MaxDepth           int32
	MaxFanout          int32
}

// AvgDepth returns the average node depth.
func (s *Stats) AvgDepth() float64 {
	if s.Nodes == 0 {
		return 0
	}
	return float64(s.SumDepth) / float64(s.Nodes)
}

// Card returns the number of element nodes with the given label.
func (s *Stats) Card(label string) int64 { return s.LabelCount[label] }

// SubtreeSum returns the total proper-descendant count over all elements
// with the given label. ok reports whether per-label sums were collected
// at all (they are absent on stores written before the statistic
// existed); a label that simply does not occur yields (0, true) — zero
// pairs, exactly.
func (s *Stats) SubtreeSum(label string) (int64, bool) {
	if s.LabelSubtreeSum == nil {
		return 0, false
	}
	return s.LabelSubtreeSum[label], true
}

// fnv1a is the 64-bit FNV-1a string hash (allocation-free, unlike
// hash/fnv's Hash64 wrapper), used to deduplicate text values during
// statistics collection without retaining the values.
func fnv1a(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// DistinctTexts returns the number of distinct text values among the
// direct text children of elements with the given label. ok reports
// whether the statistic was collected at all (it is absent on stores
// written before it existed); a label without text children yields
// (0, true) — no possible value-join matches.
func (s *Stats) DistinctTexts(label string) (int64, bool) {
	if s.LabelDistinctTexts == nil {
		return 0, false
	}
	return s.LabelDistinctTexts[label], true
}

// TextHash hashes a text value for the distinct-text statistics; the
// update path uses it to maintain the same multisets incrementally.
func TextHash(s string) uint64 { return fnv1a(s) }

// TextHashes is, per element label, the multiset of text-value hashes
// occurring as direct children of elements with that label. The store
// persists it alongside the statistics so deletions can decrement
// LabelDistinctTexts exactly. Inner maps exist only while non-empty, and a
// label has an entry only while it has text children — matching what a
// fresh shred produces, so recovered and re-shredded stats compare equal.
type TextHashes map[string]map[uint64]int64

// Add records one text child under label and reports whether its value is
// newly distinct for the label.
func (th TextHashes) Add(label, text string) bool {
	m := th[label]
	if m == nil {
		m = make(map[uint64]int64)
		th[label] = m
	}
	h := fnv1a(text)
	m[h]++
	return m[h] == 1
}

// Remove drops one text child under label and reports whether its value is
// no longer present at all for the label.
func (th TextHashes) Remove(label, text string) bool {
	m := th[label]
	if m == nil {
		return false
	}
	h := fnv1a(text)
	m[h]--
	if m[h] > 0 {
		return false
	}
	delete(m, h)
	if len(m) == 0 {
		delete(th, label)
	}
	return true
}

// Distinct rebuilds the LabelDistinctTexts statistic from the multisets.
func (th TextHashes) Distinct() map[string]int64 {
	out := make(map[string]int64, len(th))
	for label, m := range th {
		out[label] = int64(len(m))
	}
	return out
}

// Shred streams tokens from tz, assigns dense (stride-1) in/out labels,
// and calls emit for every completed tuple. See ShredStride.
func Shred(tz *xmltok.Tokenizer, emit func(Tuple) error) (*Stats, error) {
	stats, _, err := ShredStride(tz, 1, emit)
	return stats, err
}

// ShredStride streams tokens from tz, assigns in/out labels spaced stride
// apart (gap labeling: the unused labels between consecutive assignments
// are headroom for later subtree insertions, so small edits don't renumber
// the world), and calls emit for every completed tuple. Tuples are emitted
// as their nodes complete (postorder for elements); callers that need
// in-order must sort, which is what store.Load does via the external
// sorter. Returns the collected statistics and the per-label text-hash
// multisets behind LabelDistinctTexts.
func ShredStride(tz *xmltok.Tokenizer, stride uint32, emit func(Tuple) error) (*Stats, TextHashes, error) {
	if stride == 0 {
		stride = 1
	}
	stats := &Stats{LabelCount: make(map[string]int64), LabelSubtreeSum: make(map[string]int64)}
	// Distinct text values per parent label, deduplicated during the
	// single pass as 64-bit FNV-1a hashes instead of the values
	// themselves — a mostly-unique corpus (author names, titles) would
	// otherwise be held in memory in full for the whole load; collisions
	// only shave a negligible sliver off an estimator-only cardinality.
	texts := TextHashes{}
	type open struct {
		in       uint32
		parentIn uint32
		label    string
		fanout   int32
		seenAt   int64 // stats.Nodes when the element opened
	}
	counter := uint32(1)
	next := func() uint32 {
		v := counter
		counter += stride
		return v
	}
	// The root (document) node is open from the start.
	stack := []open{{in: next(), parentIn: 0}}
	stats.Nodes++
	depth := func() int32 { return int32(len(stack) - 1) }

	for {
		tok, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		switch tok.Kind {
		case xmltok.StartElement:
			stack[len(stack)-1].fanout++
			stats.Nodes++
			stack = append(stack, open{
				in:       next(),
				parentIn: stack[len(stack)-1].in,
				label:    tok.Name,
				seenAt:   stats.Nodes,
			})
			stats.Elems++
			stats.LabelCount[tok.Name]++
			d := depth()
			stats.SumDepth += int64(d)
			if d > stats.MaxDepth {
				stats.MaxDepth = d
			}
		case xmltok.EndElement:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top.fanout > stats.MaxFanout {
				stats.MaxFanout = top.fanout
			}
			out := next()
			// Every node completed since the element opened is a proper
			// descendant (stride-independent, unlike the dense-label
			// (out-in-1)/2 identity).
			stats.LabelSubtreeSum[top.label] += stats.Nodes - top.seenAt
			if err := emit(Tuple{In: top.in, Out: out, ParentIn: top.parentIn, Type: TypeElem, Value: top.label}); err != nil {
				return nil, nil, err
			}
		case xmltok.Text:
			stack[len(stack)-1].fanout++
			if parentLabel := stack[len(stack)-1].label; parentLabel != "" {
				texts.Add(parentLabel, tok.Text)
			}
			in := next()
			out := next()
			stats.Nodes++
			stats.Texts++
			d := int64(len(stack)) // text node is one below the open element
			stats.SumDepth += d
			if int32(d) > stats.MaxDepth {
				stats.MaxDepth = int32(d)
			}
			if err := emit(Tuple{In: in, Out: out, ParentIn: stack[len(stack)-1].in, Type: TypeText, Value: tok.Text}); err != nil {
				return nil, nil, err
			}
		}
	}
	// Close the root.
	rootOpen := stack[0]
	if rootOpen.fanout > stats.MaxFanout {
		stats.MaxFanout = rootOpen.fanout
	}
	out := next()
	if err := emit(Tuple{In: rootOpen.in, Out: out, ParentIn: 0, Type: TypeRoot}); err != nil {
		return nil, nil, err
	}
	stats.MaxIn = out
	stats.LabelDistinctTexts = texts.Distinct()
	return stats, texts, nil
}

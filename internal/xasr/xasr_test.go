package xasr

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xqdb/internal/xmltok"
)

func shredAll(t *testing.T, doc string) []Tuple {
	t.Helper()
	var out []Tuple
	_, err := Shred(xmltok.New(strings.NewReader(doc)), func(tp Tuple) error {
		out = append(out, tp)
		return nil
	})
	if err != nil {
		t.Fatalf("shred: %v", err)
	}
	return out
}

func TestShredFigure2(t *testing.T) {
	const figure2 = `<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>`
	tuples := shredAll(t, figure2)
	// Emission order is completion order (text nodes immediately,
	// elements at their end tag, root last).
	byIn := map[uint32]Tuple{}
	for _, tp := range tuples {
		byIn[tp.In] = tp
	}
	if len(byIn) != 9 {
		t.Fatalf("%d tuples, want 9", len(byIn))
	}
	// The root must be emitted last with the full interval.
	last := tuples[len(tuples)-1]
	if last.Type != TypeRoot || last.In != 1 || last.Out != 18 {
		t.Errorf("root tuple: %v", last)
	}
	if got := byIn[2]; got.Value != "journal" || got.Out != 17 || got.ParentIn != 1 {
		t.Errorf("journal: %v", got)
	}
	if got := byIn[5]; got.Type != TypeText || got.Value != "Ana" || got.ParentIn != 4 {
		t.Errorf("Ana: %v", got)
	}
}

// TestShredInvariants property-checks the labeling on random documents:
// intervals nest, children lie inside parents, labels are unique and
// contiguous.
func TestShredInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gen := func(depthBudget int) string {
		var b strings.Builder
		var rec func(budget int)
		rec = func(budget int) {
			label := string(rune('a' + rng.Intn(6)))
			b.WriteString("<" + label + ">")
			n := rng.Intn(4)
			for i := 0; i < n && budget > 0; i++ {
				if rng.Float64() < 0.4 {
					b.WriteString("t")
				} else {
					rec(budget - 1)
				}
			}
			b.WriteString("</" + label + ">")
		}
		rec(depthBudget)
		return b.String()
	}
	for trial := 0; trial < 50; trial++ {
		doc := gen(4)
		tuples := shredAll(t, doc)
		byIn := map[uint32]Tuple{}
		seen := map[uint32]bool{}
		for _, tp := range tuples {
			if tp.In >= tp.Out {
				t.Fatalf("bad interval %v in %q", tp, doc)
			}
			if seen[tp.In] || seen[tp.Out] {
				t.Fatalf("duplicate label in %v", tp)
			}
			seen[tp.In] = true
			seen[tp.Out] = true
			byIn[tp.In] = tp
		}
		// Labels 1..2n are contiguous.
		for i := uint32(1); i <= uint32(2*len(tuples)); i++ {
			if !seen[i] {
				t.Fatalf("label %d unused in %q", i, doc)
			}
		}
		// Every non-root tuple lies strictly inside its parent.
		for _, tp := range tuples {
			if tp.Type == TypeRoot {
				continue
			}
			parent, ok := byIn[tp.ParentIn]
			if !ok {
				t.Fatalf("tuple %v has dangling parent in %q", tp, doc)
			}
			if !tp.IsDescendantOf(parent) || !tp.IsChildOf(parent) {
				t.Fatalf("tuple %v not inside parent %v", tp, parent)
			}
		}
	}
}

func TestPrimaryCodecRoundtrip(t *testing.T) {
	f := func(in, out, parent uint32, typ uint8, value string) bool {
		tp := Tuple{In: in, Out: out, ParentIn: parent, Type: NodeType(typ%3 + 1), Value: value}
		key := PrimaryKey(tp.In)
		val := EncodePrimaryValue(tp)
		got, err := DecodePrimary(key, val)
		return err == nil && got == tp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlatCodecRoundtrip(t *testing.T) {
	f := func(in, out, parent uint32, value string) bool {
		tp := Tuple{In: in, Out: out, ParentIn: parent, Type: TypeElem, Value: value}
		rec := AppendTuple(nil, tp)
		got, err := DecodeTuple(rec)
		return err == nil && got == tp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabelKeyOrdering(t *testing.T) {
	// Keys for the same (type, value) sort by in; different values never
	// share a prefix region.
	k1 := LabelKey(TypeElem, "author", 10)
	k2 := LabelKey(TypeElem, "author", 200)
	if bytes.Compare(k1, k2) >= 0 {
		t.Error("label keys not ordered by in")
	}
	p := LabelPrefix(TypeElem, "author")
	if !bytes.HasPrefix(k1, p) || !bytes.HasPrefix(k2, p) {
		t.Error("label keys lack their prefix")
	}
	other := LabelKey(TypeElem, "authors", 1)
	if bytes.HasPrefix(other, p) {
		t.Error("different label shares prefix (length prefix must separate)")
	}
	in, out, parent, err := DecodeLabelEntry(k1, EncodeLabelValue(20, 3))
	if err != nil || in != 10 || out != 20 || parent != 3 {
		t.Errorf("label entry decode: %d %d %d %v", in, out, parent, err)
	}
}

func TestParentKeyOrdering(t *testing.T) {
	k1 := ParentKey(5, 10)
	k2 := ParentKey(5, 11)
	k3 := ParentKey(6, 1)
	if bytes.Compare(k1, k2) >= 0 || bytes.Compare(k2, k3) >= 0 {
		t.Error("parent keys not ordered by (parent_in, in)")
	}
	tp, err := DecodeParentEntry(k1, EncodeParentValue(15, TypeElem, "x"))
	if err != nil || tp.ParentIn != 5 || tp.In != 10 || tp.Out != 15 || tp.Value != "x" {
		t.Errorf("parent entry decode: %v %v", tp, err)
	}
}

func TestStatsFromShred(t *testing.T) {
	doc := `<r><a>1</a><a>2</a><b><a>3</a></b></r>`
	var stats *Stats
	var err error
	stats, err = Shred(xmltok.New(strings.NewReader(doc)), func(Tuple) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Card("a") != 3 || stats.Card("b") != 1 || stats.Card("r") != 1 {
		t.Errorf("cards: a=%d b=%d r=%d", stats.Card("a"), stats.Card("b"), stats.Card("r"))
	}
	if stats.Texts != 3 || stats.Elems != 5 || stats.Nodes != 9 {
		t.Errorf("counts: %+v", stats)
	}
	if stats.MaxFanout != 3 {
		t.Errorf("maxFanout=%d want 3 (r has three children)", stats.MaxFanout)
	}
	// Distinct direct-child text values per label: a holds "1","2","3",
	// b holds no text directly (its text lives under the nested a).
	if got, ok := stats.DistinctTexts("a"); !ok || got != 3 {
		t.Errorf("distinct texts under a = %d (ok=%v), want 3", got, ok)
	}
	if got, ok := stats.DistinctTexts("b"); !ok || got != 0 {
		t.Errorf("distinct texts under b = %d (ok=%v), want 0", got, ok)
	}
}

func TestDistinctTextsDeduplicated(t *testing.T) {
	// Repeated values count once; absent statistics report ok=false.
	doc := `<r><y>1995</y><y>1995</y><y>1999</y></r>`
	stats, err := Shred(xmltok.New(strings.NewReader(doc)), func(Tuple) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := stats.DistinctTexts("y"); !ok || got != 2 {
		t.Errorf("distinct texts under y = %d (ok=%v), want 2", got, ok)
	}
	var old Stats
	if _, ok := old.DistinctTexts("y"); ok {
		t.Error("pre-statistic stats reported ok=true")
	}
}

func TestTupleStringFormat(t *testing.T) {
	tp := Tuple{In: 2, Out: 17, ParentIn: 1, Type: TypeElem, Value: "journal"}
	if tp.String() != "(2, 17, 1, elem, journal)" {
		t.Errorf("String: %s", tp)
	}
	root := Tuple{In: 1, Out: 18, Type: TypeRoot}
	if root.String() != "(1, 18, 0, root, NULL)" {
		t.Errorf("root String: %s", root)
	}
}

package naive

import (
	"strings"
	"testing"
	"time"

	"xqdb/internal/limit"
	"xqdb/internal/store"
	"xqdb/internal/xasr"
	"xqdb/internal/xq"
)

const figure2 = `<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>`

func newEval(t testing.TB, doc string) *Evaluator {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.LoadString(doc); err != nil {
		t.Fatal(err)
	}
	return New(st)
}

func TestBasicEvaluation(t *testing.T) {
	ev := newEval(t, figure2)
	got, err := ev.EvalString(`<names>{ for $j in /journal return for $n in $j//name return $n }</names>`)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<names><name>Ana</name><name>Bob</name></names>` {
		t.Errorf("got %s", got)
	}
}

func TestChildWithoutParentIndex(t *testing.T) {
	// The fallback path: children via a primary range scan.
	st, err := store.Open(t.TempDir(), store.Options{NoParentIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.LoadString(figure2); err != nil {
		t.Fatal(err)
	}
	ev := New(st)
	if ev.UseParentIndex {
		t.Fatal("UseParentIndex true without the index")
	}
	got, err := ev.EvalString(`/journal/authors/name`)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<name>Ana</name><name>Bob</name>` {
		t.Errorf("got %s", got)
	}
}

func TestCondHolds(t *testing.T) {
	ev := newEval(t, figure2)
	root, err := ev.st.Root()
	if err != nil {
		t.Fatal(err)
	}
	cond := xq.MustParse(`for $x in /journal return if (some $t in $x//text() satisfies $t = "DB") then $x else ()`)
	iff := cond.(*xq.For).Body.(*xq.If)
	journal, _, err := ev.st.Lookup(2)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ev.CondHolds(iff.Cond, map[string]xasr.Tuple{"x": journal, xq.RootVar: root})
	if err != nil || !ok {
		t.Errorf("CondHolds: %v %v", ok, err)
	}
}

func TestDeadlineRespected(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 2000; i++ {
		b.WriteString("<x>v</x>")
	}
	b.WriteString("</r>")
	ev := newEval(t, b.String())
	ev.Deadline = limit.After(time.Nanosecond)
	_, err := ev.EvalString(`for $a in //x return for $b in //x return if ($a/text() = $b/text()) then <m/> else ()`)
	if err != limit.ErrTimeout {
		t.Fatalf("want timeout, got %v", err)
	}
}

func TestNonTextComparisonRejected(t *testing.T) {
	ev := newEval(t, figure2)
	_, err := ev.EvalString(`for $n in //name return if ($n = "Ana") then $n else ()`)
	if err == nil || !strings.Contains(err.Error(), "non-text") {
		t.Fatalf("want non-text comparison error, got %v", err)
	}
}

func TestLiteralTextEscaped(t *testing.T) {
	ev := newEval(t, figure2)
	got, err := ev.EvalString(`<a>x &amp; y</a>`)
	if err != nil {
		t.Fatal(err)
	}
	// The parser takes constructor text verbatim; serialization escapes.
	if got != `<a>x &amp;amp; y</a>` && got != `<a>x &amp; y</a>` {
		t.Errorf("got %s", got)
	}
}

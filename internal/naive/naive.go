// Package naive is milestone 2 of the paper: an XQ evaluator over
// secondary storage that never builds the DOM tree of the input document.
//
// In XQ, variables always bind to single nodes, so a query can be
// evaluated keeping only the current variable bindings in memory; each
// binding here is one XASR tuple. Navigation fetches only the needed nodes
// through the storage manager: child steps use the parent index (or a
// primary range scan restricted to the parent's in/out interval when the
// index is absent), descendant steps scan the subtree interval of the
// clustered primary tree. There is no algebra and no optimizer — this is
// the evaluation strategy milestones 3 and 4 are measured against.
package naive

import (
	"fmt"

	"xqdb/internal/limit"
	"xqdb/internal/store"
	"xqdb/internal/xasr"
	"xqdb/internal/xmltok"
	"xqdb/internal/xq"
)

// Evaluator evaluates XQ queries node-at-a-time against a Store.
type Evaluator struct {
	st *store.Store
	// UseParentIndex selects the child-step access path; it defaults to
	// whether the store has the index.
	UseParentIndex bool
	// Deadline, if non-nil, bounds evaluation time.
	Deadline *limit.Deadline
}

// New returns an evaluator over st.
func New(st *store.Store) *Evaluator {
	return &Evaluator{st: st, UseParentIndex: st.HasParentIndex()}
}

// env binds variables to XASR tuples.
type env map[string]xasr.Tuple

// EvalString parses and evaluates a query, returning serialized XML.
func (ev *Evaluator) EvalString(src string) (string, error) {
	q, err := xq.Parse(src)
	if err != nil {
		return "", err
	}
	return ev.Eval(q)
}

// Eval evaluates a parsed query, returning serialized XML.
func (ev *Evaluator) Eval(q xq.Expr) (string, error) {
	root, err := ev.st.Root()
	if err != nil {
		return "", err
	}
	e := env{xq.RootVar: root}
	var out []byte
	out, err = ev.eval(out, q, e)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// eval appends the serialized result of q to out. Serializing directly is
// sound because XQ queries emit results strictly in document order of
// evaluation, so no result tree ever needs to be materialized.
func (ev *Evaluator) eval(out []byte, q xq.Expr, e env) ([]byte, error) {
	if err := ev.Deadline.Check(); err != nil {
		return out, err
	}
	switch q := q.(type) {
	case xq.Empty:
		return out, nil
	case *xq.TextLit:
		return xmltok.AppendEscaped(out, q.Text), nil
	case *xq.VarRef:
		t, err := ev.lookup(e, q.Name)
		if err != nil {
			return out, err
		}
		return ev.st.AppendSubtreeTuple(out, t)
	case *xq.Seq:
		var err error
		for _, item := range q.Items {
			out, err = ev.eval(out, item, e)
			if err != nil {
				return out, err
			}
		}
		return out, nil
	case *xq.Constr:
		inner, err := ev.eval(nil, q.Body, e)
		if err != nil {
			return out, err
		}
		if len(inner) == 0 {
			out = append(out, '<')
			out = append(out, q.Label...)
			return append(out, '/', '>'), nil
		}
		out = append(out, '<')
		out = append(out, q.Label...)
		out = append(out, '>')
		out = append(out, inner...)
		out = append(out, '<', '/')
		out = append(out, q.Label...)
		return append(out, '>'), nil
	case *xq.PathExpr:
		return ev.evalStepEmit(out, q.Step, e)
	case *xq.For:
		base, err := ev.lookup(e, q.In.Base)
		if err != nil {
			return out, err
		}
		err = ev.forEachStep(base, q.In, func(t xasr.Tuple) error {
			e[q.Var] = t
			var innerErr error
			out, innerErr = ev.eval(out, q.Body, e)
			return innerErr
		})
		delete(e, q.Var)
		return out, err
	case *xq.If:
		ok, err := ev.cond(q.Cond, e)
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		return ev.eval(out, q.Then, e)
	default:
		return out, fmt.Errorf("naive: unknown expression %T", q)
	}
}

// CondHolds evaluates an XQ condition under the given bindings, using the
// milestone 2 node-at-a-time machinery. The milestone 3/4 engines call
// this for conditions outside the TPM-rewritable fragment (or, not).
func (ev *Evaluator) CondHolds(c xq.Cond, bindings map[string]xasr.Tuple) (bool, error) {
	return ev.cond(c, env(bindings))
}

func (ev *Evaluator) lookup(e env, name string) (xasr.Tuple, error) {
	t, ok := e[name]
	if !ok {
		return xasr.Tuple{}, fmt.Errorf("naive: unbound variable $%s", name)
	}
	return t, nil
}

// evalStepEmit serializes every node reached by the step.
func (ev *Evaluator) evalStepEmit(out []byte, s xq.Step, e env) ([]byte, error) {
	base, err := ev.lookup(e, s.Base)
	if err != nil {
		return out, err
	}
	err = ev.forEachStep(base, s, func(t xasr.Tuple) error {
		var innerErr error
		out, innerErr = ev.st.AppendSubtreeTuple(out, t)
		return innerErr
	})
	return out, err
}

// forEachStep enumerates the nodes reached from base by the step, in
// document order.
func (ev *Evaluator) forEachStep(base xasr.Tuple, s xq.Step, fn func(xasr.Tuple) error) error {
	var iterErr error
	visit := func(t xasr.Tuple) bool {
		if err := ev.Deadline.Check(); err != nil {
			iterErr = err
			return false
		}
		if !matches(t, s.Test) {
			return true
		}
		if err := fn(t); err != nil {
			iterErr = err
			return false
		}
		return true
	}
	var err error
	if s.Axis == xq.Child {
		if ev.UseParentIndex {
			err = ev.st.ScanChildren(base.In, visit)
		} else {
			// Children are the subtree nodes whose parent_in equals
			// base.in; scan the interval and filter.
			err = ev.st.ScanRange(base.In+1, base.Out, func(t xasr.Tuple) bool {
				if t.ParentIn != base.In {
					return true
				}
				return visit(t)
			})
		}
	} else {
		err = ev.st.ScanDescendants(base.In, base.Out, visit)
	}
	if iterErr != nil {
		return iterErr
	}
	return err
}

// matches implements the node test against an XASR tuple.
func matches(t xasr.Tuple, test xq.NodeTest) bool {
	switch test.Kind {
	case xq.TestStar:
		return t.Type == xasr.TypeElem
	case xq.TestText:
		return t.Type == xasr.TypeText
	default:
		return t.Type == xasr.TypeElem && t.Value == test.Label
	}
}

func (ev *Evaluator) cond(c xq.Cond, e env) (bool, error) {
	if err := ev.Deadline.Check(); err != nil {
		return false, err
	}
	switch c := c.(type) {
	case xq.True:
		return true, nil
	case *xq.VarEqVar:
		l, err := ev.lookup(e, c.Left)
		if err != nil {
			return false, err
		}
		r, err := ev.lookup(e, c.Right)
		if err != nil {
			return false, err
		}
		lt, err := textValue(l)
		if err != nil {
			return false, err
		}
		rt, err := textValue(r)
		if err != nil {
			return false, err
		}
		return lt == rt, nil
	case *xq.VarEqStr:
		n, err := ev.lookup(e, c.Var)
		if err != nil {
			return false, err
		}
		tv, err := textValue(n)
		if err != nil {
			return false, err
		}
		return tv == c.Str, nil
	case *xq.Some:
		base, err := ev.lookup(e, c.In.Base)
		if err != nil {
			return false, err
		}
		found := false
		err = ev.forEachStep(base, c.In, func(t xasr.Tuple) error {
			e[c.Var] = t
			ok, err := ev.cond(c.Sat, e)
			if err != nil {
				return err
			}
			if ok {
				found = true
				return errStopIteration
			}
			return nil
		})
		delete(e, c.Var)
		if err == errStopIteration {
			err = nil
		}
		return found, err
	case *xq.And:
		l, err := ev.cond(c.Left, e)
		if err != nil || !l {
			return false, err
		}
		return ev.cond(c.Right, e)
	case *xq.Or:
		l, err := ev.cond(c.Left, e)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return ev.cond(c.Right, e)
	case *xq.Not:
		inner, err := ev.cond(c.Inner, e)
		if err != nil {
			return false, err
		}
		return !inner, nil
	default:
		return false, fmt.Errorf("naive: unknown condition %T", c)
	}
}

var errStopIteration = fmt.Errorf("naive: stop iteration")

// textValue enforces the paper's text-node-only comparison rule.
func textValue(t xasr.Tuple) (string, error) {
	if t.Type != xasr.TypeText {
		return "", fmt.Errorf("naive: comparison of non-text %s node %q", t.Type, t.Value)
	}
	return t.Value, nil
}

// Package limit provides the per-query resource limits of the efficiency
// testbed: a cheap cooperative deadline that evaluators and physical
// operators poll while producing tuples (the paper's "2 or 30 minutes per
// query", after which an engine is stopped and assigned the cap).
package limit

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrTimeout is returned when a query exceeds its deadline.
var ErrTimeout = errors.New("query deadline exceeded")

// ErrCanceled is returned when a query's budget has been canceled.
var ErrCanceled = errors.New("query canceled")

// checkMask controls how often Check consults the clock: every 1024 calls.
const checkMask = 1023

// Deadline is a cooperative query deadline. The zero value and the nil
// pointer never expire, so code can call Check unconditionally. The poll
// counter is atomic: the workers of one parallel query fragment share a
// single Deadline and advance it concurrently.
type Deadline struct {
	at    time.Time
	count atomic.Int64
}

// After returns a Deadline expiring d from now. A non-positive d returns
// nil (no limit).
func After(d time.Duration) *Deadline {
	if d <= 0 {
		return nil
	}
	return &Deadline{at: time.Now().Add(d)}
}

// Check returns ErrTimeout once the deadline has passed. It samples the
// clock only every few hundred calls, so it is cheap enough to call per
// tuple.
func (d *Deadline) Check() error {
	if d == nil || d.at.IsZero() {
		return nil
	}
	if d.count.Add(1)&checkMask != 0 {
		return nil
	}
	if time.Now().After(d.at) {
		return ErrTimeout
	}
	return nil
}

// CheckN is Check for batched operators: it advances the poll counter by n
// rows at once, sampling the clock whenever the counter crosses a sampling
// boundary. A batch of n rows therefore triggers exactly as many clock
// samples as n row-at-a-time Check calls would, so moving polling to once
// per batch does not make deadlines any less responsive in row terms.
func (d *Deadline) CheckN(n int) error {
	if d == nil || d.at.IsZero() || n <= 0 {
		return nil
	}
	after := d.count.Add(int64(n))
	if (after-int64(n))&^checkMask == after&^checkMask {
		return nil
	}
	if time.Now().After(d.at) {
		return ErrTimeout
	}
	return nil
}

// Expired reports whether the deadline has passed, checking the clock
// immediately.
func (d *Deadline) Expired() bool {
	if d == nil || d.at.IsZero() {
		return false
	}
	return time.Now().After(d.at)
}

// Budget is the per-query resource governor: a memory quota that buffering
// operators draw reservations from, a deadline, and a cancellation flag.
// The nil pointer grants everything, so code can call every method
// unconditionally.
//
// Reserve/Release track bytes held in memory by operators; when Reserve
// reports false the caller is over quota and should spill to disk instead
// of growing (the reservation is NOT taken in that case). Cancel flips a
// flag that Check surfaces as ErrCanceled at the next poll, so an
// in-flight query unwinds through the normal error path — closing
// iterators, removing temp files, and releasing pins on the way out.
type Budget struct {
	deadline *Deadline
	quota    int64
	used     atomic.Int64
	canceled atomic.Bool
}

// NewBudget returns a Budget with the given memory quota in bytes (<= 0
// means unlimited) and deadline (nil means none).
func NewBudget(mem int, d *Deadline) *Budget {
	b := &Budget{deadline: d}
	if mem > 0 {
		b.quota = int64(mem)
	}
	return b
}

// Check returns ErrCanceled after Cancel, or the deadline's error.
func (b *Budget) Check() error {
	if b == nil {
		return nil
	}
	if b.canceled.Load() {
		return ErrCanceled
	}
	return b.deadline.Check()
}

// CheckN is Check advanced by n rows at once (see Deadline.CheckN).
// Cancellation is still observed on every call, so a canceled query
// unwinds at the next batch boundary at the latest.
func (b *Budget) CheckN(n int) error {
	if b == nil {
		return nil
	}
	if b.canceled.Load() {
		return ErrCanceled
	}
	return b.deadline.CheckN(n)
}

// Cancel makes all future Check calls return ErrCanceled. Safe to call
// from another goroutine while the query runs.
func (b *Budget) Cancel() {
	if b != nil {
		b.canceled.Store(true)
	}
}

// Canceled reports whether Cancel has been called.
func (b *Budget) Canceled() bool { return b != nil && b.canceled.Load() }

// Reserve tries to take n bytes of the memory quota. It returns false —
// without taking anything — when the reservation would exceed the quota;
// the caller should spill. With no quota it still accounts the bytes (so
// InUse stays meaningful) and always succeeds.
func (b *Budget) Reserve(n int) bool {
	if b == nil || n <= 0 {
		return true
	}
	for {
		cur := b.used.Load()
		next := cur + int64(n)
		if b.quota > 0 && next > b.quota {
			return false
		}
		if b.used.CompareAndSwap(cur, next) {
			return true
		}
	}
}

// Release returns n bytes previously taken with Reserve.
func (b *Budget) Release(n int) {
	if b == nil || n <= 0 {
		return
	}
	if b.used.Add(-int64(n)) < 0 {
		// Defensive: never let sloppy accounting free quota that was
		// never reserved.
		b.used.Store(0)
	}
}

// InUse returns the bytes currently reserved.
func (b *Budget) InUse() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Quota returns the memory quota in bytes (0 = unlimited).
func (b *Budget) Quota() int64 {
	if b == nil {
		return 0
	}
	return b.quota
}

// Deadline returns the budget's deadline (nil when absent).
func (b *Budget) Deadline() *Deadline {
	if b == nil {
		return nil
	}
	return b.deadline
}

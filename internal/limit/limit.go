// Package limit provides the per-query resource limits of the efficiency
// testbed: a cheap cooperative deadline that evaluators and physical
// operators poll while producing tuples (the paper's "2 or 30 minutes per
// query", after which an engine is stopped and assigned the cap).
package limit

import (
	"errors"
	"time"
)

// ErrTimeout is returned when a query exceeds its deadline.
var ErrTimeout = errors.New("query deadline exceeded")

// checkMask controls how often Check consults the clock: every 1024 calls.
const checkMask = 1023

// Deadline is a cooperative query deadline. The zero value and the nil
// pointer never expire, so code can call Check unconditionally.
type Deadline struct {
	at    time.Time
	count int
}

// After returns a Deadline expiring d from now. A non-positive d returns
// nil (no limit).
func After(d time.Duration) *Deadline {
	if d <= 0 {
		return nil
	}
	return &Deadline{at: time.Now().Add(d)}
}

// Check returns ErrTimeout once the deadline has passed. It samples the
// clock only every few hundred calls, so it is cheap enough to call per
// tuple.
func (d *Deadline) Check() error {
	if d == nil || d.at.IsZero() {
		return nil
	}
	d.count++
	if d.count&checkMask != 0 {
		return nil
	}
	if time.Now().After(d.at) {
		return ErrTimeout
	}
	return nil
}

// Expired reports whether the deadline has passed, checking the clock
// immediately.
func (d *Deadline) Expired() bool {
	if d == nil || d.at.IsZero() {
		return false
	}
	return time.Now().After(d.at)
}

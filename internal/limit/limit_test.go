package limit

import (
	"testing"
	"time"
)

func TestNilDeadlineNeverExpires(t *testing.T) {
	var d *Deadline
	for i := 0; i < 5000; i++ {
		if err := d.Check(); err != nil {
			t.Fatal("nil deadline expired")
		}
	}
	if d.Expired() {
		t.Fatal("nil deadline Expired")
	}
}

func TestZeroValueNeverExpires(t *testing.T) {
	d := &Deadline{}
	for i := 0; i < 5000; i++ {
		if err := d.Check(); err != nil {
			t.Fatal("zero deadline expired")
		}
	}
}

func TestAfterNonPositive(t *testing.T) {
	if After(0) != nil || After(-time.Second) != nil {
		t.Fatal("non-positive durations must return nil")
	}
}

func TestExpiry(t *testing.T) {
	d := After(time.Nanosecond)
	time.Sleep(time.Millisecond)
	if !d.Expired() {
		t.Fatal("deadline not expired")
	}
	var err error
	for i := 0; i < 2000 && err == nil; i++ {
		err = d.Check()
	}
	if err != ErrTimeout {
		t.Fatalf("Check returned %v", err)
	}
}

func TestGenerousDeadlineHolds(t *testing.T) {
	d := After(time.Hour)
	for i := 0; i < 5000; i++ {
		if err := d.Check(); err != nil {
			t.Fatal("generous deadline expired")
		}
	}
}

package limit

import (
	"testing"
	"time"
)

func TestNilDeadlineNeverExpires(t *testing.T) {
	var d *Deadline
	for i := 0; i < 5000; i++ {
		if err := d.Check(); err != nil {
			t.Fatal("nil deadline expired")
		}
	}
	if d.Expired() {
		t.Fatal("nil deadline Expired")
	}
}

func TestZeroValueNeverExpires(t *testing.T) {
	d := &Deadline{}
	for i := 0; i < 5000; i++ {
		if err := d.Check(); err != nil {
			t.Fatal("zero deadline expired")
		}
	}
}

func TestAfterNonPositive(t *testing.T) {
	if After(0) != nil || After(-time.Second) != nil {
		t.Fatal("non-positive durations must return nil")
	}
}

func TestExpiry(t *testing.T) {
	d := After(time.Nanosecond)
	time.Sleep(time.Millisecond)
	if !d.Expired() {
		t.Fatal("deadline not expired")
	}
	var err error
	for i := 0; i < 2000 && err == nil; i++ {
		err = d.Check()
	}
	if err != ErrTimeout {
		t.Fatalf("Check returned %v", err)
	}
}

func TestGenerousDeadlineHolds(t *testing.T) {
	d := After(time.Hour)
	for i := 0; i < 5000; i++ {
		if err := d.Check(); err != nil {
			t.Fatal("generous deadline expired")
		}
	}
}

func TestNilBudgetGrantsEverything(t *testing.T) {
	var b *Budget
	for i := 0; i < 5000; i++ {
		if err := b.Check(); err != nil {
			t.Fatal("nil budget failed Check")
		}
	}
	if !b.Reserve(1 << 30) {
		t.Fatal("nil budget refused Reserve")
	}
	b.Release(1 << 30)
	b.Cancel()
	if b.Canceled() || b.InUse() != 0 || b.Quota() != 0 || b.Deadline() != nil {
		t.Fatal("nil budget leaked state")
	}
}

func TestBudgetReserveRelease(t *testing.T) {
	b := NewBudget(100, nil)
	if !b.Reserve(60) {
		t.Fatal("first reservation refused")
	}
	if b.Reserve(50) {
		t.Fatal("over-quota reservation granted")
	}
	if b.InUse() != 60 {
		t.Fatalf("InUse = %d after refused reservation, want 60", b.InUse())
	}
	if !b.Reserve(40) {
		t.Fatal("exact-fit reservation refused")
	}
	b.Release(100)
	if b.InUse() != 0 {
		t.Fatalf("InUse = %d after full release", b.InUse())
	}
	// Over-release clamps to zero rather than minting quota.
	b.Release(50)
	if b.InUse() != 0 {
		t.Fatalf("InUse = %d after over-release", b.InUse())
	}
}

func TestBudgetUnlimitedStillAccounts(t *testing.T) {
	b := NewBudget(0, nil)
	if !b.Reserve(1 << 30) {
		t.Fatal("unlimited budget refused Reserve")
	}
	if b.InUse() != 1<<30 {
		t.Fatalf("InUse = %d, want %d", b.InUse(), 1<<30)
	}
}

func TestBudgetCancel(t *testing.T) {
	b := NewBudget(0, After(time.Hour))
	if err := b.Check(); err != nil {
		t.Fatalf("fresh budget Check = %v", err)
	}
	b.Cancel()
	if err := b.Check(); err != ErrCanceled {
		t.Fatalf("canceled budget Check = %v, want ErrCanceled", err)
	}
	if !b.Canceled() {
		t.Fatal("Canceled() false after Cancel")
	}
}

func TestBudgetDeadlinePassthrough(t *testing.T) {
	b := NewBudget(0, After(time.Nanosecond))
	time.Sleep(time.Millisecond)
	var err error
	for i := 0; i < 2000 && err == nil; i++ {
		err = b.Check()
	}
	if err != ErrTimeout {
		t.Fatalf("budget Check = %v, want ErrTimeout", err)
	}
	if b.Deadline() == nil {
		t.Fatal("Deadline() nil")
	}
}

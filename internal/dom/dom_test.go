package dom

import (
	"testing"
)

func TestFigure2Numbering(t *testing.T) {
	root, err := ParseString(`<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>`)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2 labels: root (1,18), journal (2,17), authors (3,12),
	// name (4,7), Ana (5,6), name (8,11), Bob (9,10), title (13,16),
	// DB (14,15).
	type lab struct{ in, out uint32 }
	var got []lab
	root.Walk(func(n *Node) bool {
		got = append(got, lab{n.In, n.Out})
		return true
	})
	want := []lab{{1, 18}, {2, 17}, {3, 12}, {4, 7}, {5, 6}, {8, 11}, {9, 10}, {13, 16}, {14, 15}}
	if len(got) != len(want) {
		t.Fatalf("%d nodes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("node %d: (%d,%d), want (%d,%d)", i, got[i].in, got[i].out, want[i].in, want[i].out)
		}
	}
}

func TestSerializeRoundtrip(t *testing.T) {
	docs := []string{
		`<a/>`,
		`<a>text</a>`,
		`<a><b/><c>x</c>tail</a>`,
		`<a>x&amp;y&lt;z</a>`,
	}
	for _, doc := range docs {
		root, err := ParseString(doc)
		if err != nil {
			t.Fatalf("%q: %v", doc, err)
		}
		if got := root.XML(); got != doc {
			t.Errorf("roundtrip %q -> %q", doc, got)
		}
	}
}

func TestFindByIn(t *testing.T) {
	root, _ := ParseString(`<a><b><c>x</c></b><d/></a>`)
	for in := uint32(1); in <= root.Out; in++ {
		n := root.FindByIn(in)
		if in%2 == 1 && in < root.Out {
			// Odd labels up to the last are in-labels in this document?
			// Not in general; just check consistency when found.
			_ = n
		}
		if n != nil && n.In != in {
			t.Errorf("FindByIn(%d) returned node with In=%d", in, n.In)
		}
	}
	if n := root.FindByIn(2); n == nil || n.Label != "a" {
		t.Errorf("FindByIn(2): %v", n)
	}
	if n := root.FindByIn(999); n != nil {
		t.Error("FindByIn out of range returned a node")
	}
}

func TestCopyIsDeep(t *testing.T) {
	root, _ := ParseString(`<a><b>x</b></a>`)
	cp := root.Copy()
	cp.Children[0].Children[0].Label = "mutated"
	if root.Children[0].Children[0].Label == "mutated" {
		t.Error("copy shares children with original")
	}
	if !Equal(root, root) {
		t.Error("Equal not reflexive")
	}
	if Equal(root, cp) {
		t.Error("Equal ignores mutation")
	}
}

func TestSizeDepthValue(t *testing.T) {
	root, _ := ParseString(`<a><b>x</b><c/></a>`)
	if root.Size() != 5 {
		t.Errorf("size=%d want 5", root.Size())
	}
	text := root.Children[0].Children[0].Children[0]
	if text.Depth() != 3 || text.Value() != "x" {
		t.Errorf("depth=%d value=%q", text.Depth(), text.Value())
	}
	if root.Value() != "" {
		t.Errorf("root value %q", root.Value())
	}
}

func TestEmptyDocumentRejected(t *testing.T) {
	if _, err := ParseString(``); err == nil {
		t.Error("empty document accepted")
	}
	if _, err := ParseString(`<!-- only a comment -->`); err == nil {
		t.Error("comment-only document accepted")
	}
}

func TestSerializeForest(t *testing.T) {
	a, _ := ParseString(`<a>1</a>`)
	b, _ := ParseString(`<b>2</b>`)
	got := SerializeForest([]*Node{a.Children[0], b.Children[0]})
	if got != `<a>1</a><b>2</b>` {
		t.Errorf("forest: %s", got)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	root, _ := ParseString(`<a><b/><c/><d/></a>`)
	count := 0
	root.Walk(func(n *Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("walk visited %d nodes after early stop", count)
	}
}

// Package dom implements the in-memory XML document tree used by the
// milestone 1 evaluator, together with the depth-first in/out preorder
// numbering from Figure 2 of the paper and an XML serializer.
//
// Attributes are accepted by the parser but are not part of the XQ data
// model: the paper's XASR schema knows only root, element and text nodes,
// so attributes are carried on Node for inspection but ignored by the
// numbering, the serializer and query evaluation. This keeps the in-memory
// and secondary-storage engines observationally identical.
package dom

import (
	"fmt"
	"io"
	"strings"

	"xqdb/internal/xmltok"
)

// Kind is the type of a document node, mirroring the XASR "type" column.
type Kind uint8

// Node kinds. Root is the document node (the XASR tuple with value NULL).
const (
	Root Kind = iota
	Element
	Text
)

// String returns the XASR-style name of the kind ("root", "elem", "text").
func (k Kind) String() string {
	switch k {
	case Root:
		return "root"
	case Element:
		return "elem"
	case Text:
		return "text"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Node is one node of an XML document tree or of a constructed result tree.
type Node struct {
	Kind     Kind
	Label    string        // element label; "" for root and text nodes
	Text     string        // character data; "" for root and element nodes
	Attrs    []xmltok.Attr // parsed attributes (not part of the data model)
	Parent   *Node
	Children []*Node

	// In and Out are the preorder tag-counting labels of Figure 2,
	// assigned by Number. They are zero until Number is called and on
	// freshly constructed result nodes.
	In, Out uint32
}

// Value returns the XASR "value" of the node: its label for elements, its
// text for text nodes, and "" (NULL) for the root.
func (n *Node) Value() string {
	switch n.Kind {
	case Element:
		return n.Label
	case Text:
		return n.Text
	}
	return ""
}

// NewRoot returns an empty document node.
func NewRoot() *Node { return &Node{Kind: Root} }

// NewElement returns a fresh element node with the given label.
func NewElement(label string) *Node { return &Node{Kind: Element, Label: label} }

// NewText returns a fresh text node with the given content.
func NewText(text string) *Node { return &Node{Kind: Text, Text: text} }

// Append adds child to n, setting the parent pointer.
func (n *Node) Append(child *Node) {
	child.Parent = n
	n.Children = append(n.Children, child)
}

// Parse reads an XML document from r and returns its root (document) node
// with in/out numbering already assigned.
func Parse(r io.Reader) (*Node, error) {
	return ParseTokens(xmltok.New(r))
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// ParseTokens builds a document tree from an already-configured tokenizer.
func ParseTokens(tz *xmltok.Tokenizer) (*Node, error) {
	root := NewRoot()
	cur := root
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch tok.Kind {
		case xmltok.StartElement:
			el := NewElement(tok.Name)
			if len(tok.Attrs) > 0 {
				el.Attrs = append([]xmltok.Attr(nil), tok.Attrs...)
			}
			cur.Append(el)
			cur = el
		case xmltok.EndElement:
			cur = cur.Parent
		case xmltok.Text:
			cur.Append(NewText(tok.Text))
		}
	}
	if len(root.Children) == 0 {
		return nil, fmt.Errorf("dom: empty document")
	}
	root.Number()
	return root, nil
}

// Number assigns in/out labels to the subtree rooted at n using the
// depth-first left-to-right preorder tag count of Figure 2: a node's "in"
// is one plus the number of opening and closing tags encountered before its
// opening tag, and "out" likewise for its closing tag. The root of Figure 2
// receives (1, 18).
func (n *Node) Number() {
	c := uint32(1)
	n.number(&c)
}

func (n *Node) number(c *uint32) {
	n.In = *c
	*c++
	for _, ch := range n.Children {
		ch.number(c)
	}
	n.Out = *c
	*c++
}

// Size returns the number of nodes in the subtree rooted at n, including n.
func (n *Node) Size() int {
	total := 1
	for _, ch := range n.Children {
		total += ch.Size()
	}
	return total
}

// Depth returns the length of the path from the document root to n, with
// the root itself at depth 0.
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Walk visits the subtree rooted at n in document order, calling fn for
// each node. If fn returns false the walk stops.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, ch := range n.Children {
		if !ch.Walk(fn) {
			return false
		}
	}
	return true
}

// AppendXML serializes the subtree rooted at n onto dst and returns the
// extended slice. Root nodes serialize their children; childless elements
// serialize as <a/>. Attributes are not serialized (see package comment).
func (n *Node) AppendXML(dst []byte) []byte {
	switch n.Kind {
	case Root:
		for _, ch := range n.Children {
			dst = ch.AppendXML(dst)
		}
	case Text:
		dst = xmltok.AppendEscaped(dst, n.Text)
	case Element:
		if len(n.Children) == 0 {
			dst = append(dst, '<')
			dst = append(dst, n.Label...)
			dst = append(dst, '/', '>')
			return dst
		}
		dst = append(dst, '<')
		dst = append(dst, n.Label...)
		dst = append(dst, '>')
		for _, ch := range n.Children {
			dst = ch.AppendXML(dst)
		}
		dst = append(dst, '<', '/')
		dst = append(dst, n.Label...)
		dst = append(dst, '>')
	}
	return dst
}

// XML returns the serialized subtree rooted at n.
func (n *Node) XML() string { return string(n.AppendXML(nil)) }

// Copy returns a deep copy of the subtree rooted at n. The copy has no
// parent and no in/out labels; attributes are shared (they are immutable).
func (n *Node) Copy() *Node {
	c := &Node{Kind: n.Kind, Label: n.Label, Text: n.Text, Attrs: n.Attrs}
	for _, ch := range n.Children {
		c.Append(ch.Copy())
	}
	return c
}

// Equal reports whether two subtrees are structurally identical (kind,
// label, text and children; parents, attributes and numbering ignored).
func Equal(a, b *Node) bool {
	if a.Kind != b.Kind || a.Label != b.Label || a.Text != b.Text || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// FindByIn returns the node of the numbered tree rooted at n whose In label
// equals in, or nil. It runs in O(depth) using the in/out interval
// property: a node contains `in` iff node.In <= in < node.Out.
func (n *Node) FindByIn(in uint32) *Node {
	if n.In == in {
		return n
	}
	if in < n.In || in > n.Out {
		return nil
	}
	for _, ch := range n.Children {
		if ch.In <= in && in <= ch.Out {
			return ch.FindByIn(in)
		}
	}
	return nil
}

// SerializeForest serializes a sequence of result trees in order.
func SerializeForest(nodes []*Node) string {
	var dst []byte
	for _, n := range nodes {
		dst = n.AppendXML(dst)
	}
	return string(dst)
}

package xmlgen

import (
	"strings"
	"testing"

	"xqdb/internal/dom"
	"xqdb/internal/xasr"
	"xqdb/internal/xmltok"
)

func TestDBLPDeterministicAndWellFormed(t *testing.T) {
	a := DBLP(DBLPConfig{Entries: 300, Seed: 9})
	b := DBLP(DBLPConfig{Entries: 300, Seed: 9})
	if a != b {
		t.Fatal("generator not deterministic")
	}
	if DBLP(DBLPConfig{Entries: 300, Seed: 10}) == a {
		t.Fatal("seed has no effect")
	}
	root, err := dom.ParseString(a)
	if err != nil {
		t.Fatalf("not well-formed: %v", err)
	}
	if root.Children[0].Label != "dblp" {
		t.Errorf("root label %q", root.Children[0].Label)
	}
}

func TestDBLPShapeProperties(t *testing.T) {
	doc := DBLP(DBLPConfig{Entries: 2000, Seed: 4})
	stats, err := xasr.Shred(xmltok.New(strings.NewReader(doc)), func(xasr.Tuple) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// Shallow: DBLP nests entries at depth 2, fields at depth 3.
	if stats.MaxDepth > 5 {
		t.Errorf("DBLP too deep: %d", stats.MaxDepth)
	}
	// Label skew: far more authors than volumes, few phdthesis, very few
	// notes (the Example 6 / T5 preconditions).
	authors, volumes := stats.Card("author"), stats.Card("volume")
	phd, notes := stats.Card("phdthesis"), stats.Card("note")
	if authors < 10*volumes {
		t.Errorf("author/volume skew too small: %d vs %d", authors, volumes)
	}
	if phd == 0 || phd > 40 {
		t.Errorf("phdthesis count out of band: %d", phd)
	}
	if notes == 0 || notes > authors/50 {
		t.Errorf("note count out of band: %d (authors %d)", notes, authors)
	}
	if stats.Card("article")+stats.Card("inproceedings")+phd != 2000 {
		t.Errorf("entry kinds do not add up")
	}
}

func TestTreebankShapeProperties(t *testing.T) {
	doc := Treebank(TreebankConfig{Sentences: 100, Seed: 3, MaxDepth: 14})
	root, err := dom.ParseString(doc)
	if err != nil {
		t.Fatalf("not well-formed: %v", err)
	}
	stats, err := xasr.Shred(xmltok.New(strings.NewReader(doc)), func(xasr.Tuple) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Card("S") != 100 {
		t.Errorf("sentences: %d", stats.Card("S"))
	}
	// Deep: average depth well beyond DBLP's.
	if stats.AvgDepth() < 5 {
		t.Errorf("treebank too shallow: avg %.2f", stats.AvgDepth())
	}
	if stats.MaxDepth < 10 {
		t.Errorf("treebank max depth: %d", stats.MaxDepth)
	}
	_ = root
}

func TestFigure2Constant(t *testing.T) {
	root, err := dom.ParseString(Figure2)
	if err != nil {
		t.Fatal(err)
	}
	if root.Out != 18 {
		t.Errorf("Figure 2 root out = %d, want 18", root.Out)
	}
}

// Package xmlgen generates the synthetic stand-ins for the paper's test
// corpora: DBLP (shallow, wide, heavily label-skewed bibliography data)
// and TREEBANK (deeply nested parse trees with short leaf strings), plus
// the handmade Figure 2 document. The originals are not redistributable
// here; these generators are deterministic (seeded) and preserve the
// shape properties the efficiency tests exercise — label skew ("an XML
// document with many authors and few articles that have information on
// volumes", Example 6), shallow-vs-deep nesting, and realistic text sizes.
package xmlgen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// Figure2 is the handmade document of Figure 2 of the paper.
const Figure2 = `<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>`

// DBLPConfig parameterizes the DBLP-shaped generator.
type DBLPConfig struct {
	// Entries is the number of publication entries.
	Entries int
	// Seed makes the document deterministic.
	Seed int64
	// VolumeFraction is the share of articles carrying a <volume> child
	// (the "few articles that have information on volumes" of Example 6).
	// Default 0.05.
	VolumeFraction float64
	// PhdFraction is the share of phdthesis entries (a rare label used by
	// the efficiency tests to create wildly different selectivities).
	// Default 0.002.
	PhdFraction float64
	// AuthorPool is the number of distinct author names. Default 997.
	AuthorPool int
	// NoteFraction is the share of author elements carrying a nested
	// <note> child — a very rare, deeply selective label that efficiency
	// test 5 anchors on. Default 0.001.
	NoteFraction float64
}

func (c DBLPConfig) withDefaults() DBLPConfig {
	if c.Entries <= 0 {
		c.Entries = 1000
	}
	if c.VolumeFraction <= 0 {
		c.VolumeFraction = 0.05
	}
	if c.PhdFraction <= 0 {
		c.PhdFraction = 0.002
	}
	if c.AuthorPool <= 0 {
		c.AuthorPool = 997
	}
	if c.NoteFraction <= 0 {
		c.NoteFraction = 0.001
	}
	return c
}

var (
	firstNames = []string{"Ana", "Bob", "Carla", "Dan", "Eva", "Frank", "Gerd", "Hana",
		"Ivan", "Jana", "Karl", "Lena", "Meta", "Nils", "Olga", "Petra", "Quinn",
		"Rosa", "Sven", "Tina", "Uwe", "Vera", "Wim", "Xenia", "Yuri", "Zoe"}
	lastNames = []string{"Koch", "Olteanu", "Scherzinger", "Meyer", "Schmidt", "Weber",
		"Fischer", "Wagner", "Becker", "Hoffmann", "Schulz", "Keller", "Richter",
		"Wolf", "Neumann", "Schwarz", "Zimmermann", "Krause", "Lehmann", "Maier"}
	titleWords = []string{"Query", "Evaluation", "XML", "Streams", "Indexing", "Optimization",
		"Relational", "Algebra", "Secondary", "Storage", "Structural", "Joins", "Views",
		"Compression", "Trees", "Automata", "Semantics", "Complexity", "Processing", "Databases"}
	journals = []string{"TODS", "VLDBJ", "SIGMOD Record", "TCS", "JACM", "Inf Syst"}
)

// authorName returns the i-th name of the author pool.
func authorName(i int) string {
	return firstNames[i%len(firstNames)] + " " + lastNames[(i/len(firstNames))%len(lastNames)] + fmt.Sprintf(" %04d", i)
}

// WriteDBLP streams a DBLP-shaped document to w.
func WriteDBLP(w io.Writer, cfg DBLPConfig) error {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bw := bufio.NewWriterSize(w, 64<<10)
	bw.WriteString("<dblp>")
	for i := 0; i < cfg.Entries; i++ {
		writeEntry(bw, rng, cfg, i)
	}
	bw.WriteString("</dblp>")
	return bw.Flush()
}

func writeEntry(bw *bufio.Writer, rng *rand.Rand, cfg DBLPConfig, i int) {
	kind := "article"
	switch r := rng.Float64(); {
	case r < cfg.PhdFraction:
		kind = "phdthesis"
	case r < cfg.PhdFraction+0.35:
		kind = "inproceedings"
	}
	bw.WriteString("<")
	bw.WriteString(kind)
	bw.WriteString(">")

	nAuthors := 1 + rng.Intn(4)
	if kind == "phdthesis" {
		nAuthors = 1
	}
	for a := 0; a < nAuthors; a++ {
		bw.WriteString("<author>")
		bw.WriteString(authorName(rng.Intn(cfg.AuthorPool)))
		if rng.Float64() < cfg.NoteFraction {
			bw.WriteString("<note>corresponding</note>")
		}
		bw.WriteString("</author>")
	}
	bw.WriteString("<title>")
	nWords := 3 + rng.Intn(6)
	for t := 0; t < nWords; t++ {
		if t > 0 {
			bw.WriteString(" ")
		}
		bw.WriteString(titleWords[rng.Intn(len(titleWords))])
	}
	fmt.Fprintf(bw, " %06d", i)
	bw.WriteString("</title>")
	fmt.Fprintf(bw, "<year>%d</year>", 1980+rng.Intn(26))

	switch kind {
	case "article":
		fmt.Fprintf(bw, "<journal>%s</journal>", journals[rng.Intn(len(journals))])
		if rng.Float64() < cfg.VolumeFraction {
			fmt.Fprintf(bw, "<volume>%d</volume>", 1+rng.Intn(40))
		}
		fmt.Fprintf(bw, "<pages>%d-%d</pages>", 1+rng.Intn(400), 401+rng.Intn(100))
	case "inproceedings":
		fmt.Fprintf(bw, "<booktitle>Proc %s %d</booktitle>", titleWords[rng.Intn(len(titleWords))], 1980+rng.Intn(26))
		fmt.Fprintf(bw, "<pages>%d-%d</pages>", 1+rng.Intn(400), 401+rng.Intn(100))
	case "phdthesis":
		fmt.Fprintf(bw, "<school>University %s</school>", lastNames[rng.Intn(len(lastNames))])
	}
	bw.WriteString("</")
	bw.WriteString(kind)
	bw.WriteString(">")
}

// DBLP returns a DBLP-shaped document as a string (small scales only).
func DBLP(cfg DBLPConfig) string {
	var b strings.Builder
	WriteDBLP(&b, cfg)
	return b.String()
}

// TreebankConfig parameterizes the TREEBANK-shaped generator.
type TreebankConfig struct {
	// Sentences is the number of top-level parse trees.
	Sentences int
	// Seed makes the document deterministic.
	Seed int64
	// MaxDepth bounds the recursive nesting (the real corpus nests to
	// depth 36). Default 18.
	MaxDepth int
}

func (c TreebankConfig) withDefaults() TreebankConfig {
	if c.Sentences <= 0 {
		c.Sentences = 200
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 18
	}
	return c
}

var (
	phraseTags = []string{"NP", "VP", "PP", "ADJP", "ADVP", "SBAR", "WHNP", "PRT"}
	posTags    = []string{"NN", "VB", "DT", "JJ", "IN", "PRP", "RB", "CC", "CD", "TO"}
)

// leafToken produces an "encrypted-looking" token like the public
// Treebank distribution uses for its licensed text.
func leafToken(rng *rand.Rand) string {
	n := 3 + rng.Intn(8)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + rng.Intn(26)))
	}
	return b.String()
}

// WriteTreebank streams a TREEBANK-shaped document to w: deeply nested
// parse trees under a FILE root, with EMPTY elements and part-of-speech
// leaves holding short text.
func WriteTreebank(w io.Writer, cfg TreebankConfig) error {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bw := bufio.NewWriterSize(w, 64<<10)
	bw.WriteString("<FILE>")
	for i := 0; i < cfg.Sentences; i++ {
		bw.WriteString("<S>")
		// A sentence is a few top constituents that recurse deeply.
		n := 1 + rng.Intn(3)
		for j := 0; j < n; j++ {
			writeConstituent(bw, rng, 2, cfg.MaxDepth)
		}
		bw.WriteString("</S>")
	}
	bw.WriteString("</FILE>")
	return bw.Flush()
}

func writeConstituent(bw *bufio.Writer, rng *rand.Rand, depth, maxDepth int) {
	if depth >= maxDepth || rng.Float64() < 0.30 {
		// Leaf: a part-of-speech tag with token text, or an EMPTY marker.
		if rng.Float64() < 0.06 {
			bw.WriteString("<EMPTY/>")
			return
		}
		tag := posTags[rng.Intn(len(posTags))]
		bw.WriteString("<")
		bw.WriteString(tag)
		bw.WriteString(">")
		bw.WriteString(leafToken(rng))
		bw.WriteString("</")
		bw.WriteString(tag)
		bw.WriteString(">")
		return
	}
	tag := phraseTags[rng.Intn(len(phraseTags))]
	bw.WriteString("<")
	bw.WriteString(tag)
	bw.WriteString(">")
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		writeConstituent(bw, rng, depth+1, maxDepth)
	}
	bw.WriteString("</")
	bw.WriteString(tag)
	bw.WriteString(">")
}

// Treebank returns a TREEBANK-shaped document as a string.
func Treebank(cfg TreebankConfig) string {
	var b strings.Builder
	WriteTreebank(&b, cfg)
	return b.String()
}

package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"xqdb/internal/core"
	"xqdb/internal/fault"
	"xqdb/internal/plancache"
	"xqdb/internal/store"
)

func TestCatalogUpdateBumpsEpochAndInvalidatesPlans(t *testing.T) {
	cache := plancache.New(32)
	c, err := Open(t.TempDir(), Options{PlanCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.LoadString("d", doc(5)); err != nil {
		t.Fatal(err)
	}

	d, err := c.Acquire("d")
	if err != nil {
		t.Fatal(err)
	}
	e := d.Engine(core.Config{Mode: core.ModeM4})
	if _, err := e.Query(`//x`); err != nil {
		t.Fatal(err)
	}
	d.Release()
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d, want 1", cache.Len())
	}
	epochBefore := c.List()[0].Epoch

	res, err := c.Update("d", `insert node <x>new</x> into /r`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 1 || res.Applied != 1 || res.Seq != 1 {
		t.Fatalf("res = %+v", res)
	}
	if cache.Len() != 0 {
		t.Fatalf("plan cache not invalidated: len = %d", cache.Len())
	}
	infos := c.List()
	if infos[0].Epoch != epochBefore+1 {
		t.Fatalf("epoch %d, want %d", infos[0].Epoch, epochBefore+1)
	}
	if infos[0].AppliedSeq != 1 || infos[0].WALBytes == 0 {
		t.Fatalf("info = %+v", infos[0])
	}

	// A fresh engine (fresh cache identity) must see the new node.
	d, err = c.Acquire("d")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Release()
	got, err := d.Engine(core.Config{Mode: core.ModeM4}).Query(`//x/text()`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "01234new" {
		t.Fatalf("after update: %q", got)
	}
}

func TestCatalogUpdateNoTargetsKeepsEpoch(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.LoadString("d", doc(3)); err != nil {
		t.Fatal(err)
	}
	before := c.List()[0].Epoch
	res, err := c.Update("d", `delete node //missing`)
	if err != nil || res.Applied != 0 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if after := c.List()[0].Epoch; after != before {
		t.Fatalf("no-op update bumped epoch %d -> %d", before, after)
	}
}

func TestCatalogUpdateConcurrentWithQueries(t *testing.T) {
	c, err := Open(t.TempDir(), Options{PlanCache: plancache.New(64)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.LoadString("d", doc(50)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				d, err := c.Acquire("d")
				if err != nil {
					errs <- err
					return
				}
				_, err = d.Engine(core.Config{Mode: core.ModeM4}).Query(`//x`)
				d.Release()
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				stmt := fmt.Sprintf(`insert node <y>g%d-%d</y> into /r`, g, i)
				if _, err := c.Update("d", stmt); err != nil {
					errs <- fmt.Errorf("update: %w", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	d, err := c.Acquire("d")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Release()
	got, err := d.Engine(core.Config{Mode: core.ModeM2}).Query(`//y`)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(got) / len("<y>g0-0</y>"); n != 10 {
		t.Fatalf("want 10 inserted <y> nodes, got %d: %s", n, got)
	}
	if d.Store().AppliedSeq() != 10 {
		t.Fatalf("applied seq = %d", d.Store().AppliedSeq())
	}
}

// TestCatalogRecoverReplaysWALAfterCrashedUpdate pins the crash-sweep ×
// WAL-recovery interaction: a crash between the WAL flush and the stats
// rewrite must either fully recover the update on reopen (WAL flushed)
// or fully discard it (crash before the flush) — and the catalog's
// version sweep must not touch the surviving version directory.
func TestCatalogRecoverReplaysWALAfterCrashedUpdate(t *testing.T) {
	root := t.TempDir()
	for _, tc := range []struct {
		name     string
		crashAt  string
		wantSeq  uint64
		wantText string
	}{
		{"after-wal-flush", fault.CrashAfterWALAppend, 1, "012new"},
		{"before-wal-flush", "wal:flush", 0, "012"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inj := &fault.Injector{}
			dir := filepath.Join(root, tc.name)
			c, err := Open(dir, Options{Store: store.Options{IOHook: inj.Hook}})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.LoadString("d", doc(3)); err != nil {
				t.Fatal(err)
			}
			inj.ArmAt(tc.crashAt, 1)
			_, err = c.Update("d", `insert node <x>new</x> into /r`)
			if err == nil {
				t.Fatal("injected crash did not surface")
			}
			inj.Disarm()
			// Simulate the process dying: no flush, no checkpoint.
			d, err := c.Acquire("d")
			if err != nil {
				t.Fatal(err)
			}
			d.Store().CrashClose()

			c2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer c2.Close()
			d2, err := c2.Acquire("d")
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Release()
			if got := d2.Store().AppliedSeq(); got != tc.wantSeq {
				t.Fatalf("applied seq = %d, want %d", got, tc.wantSeq)
			}
			got, err := d2.Engine(core.Config{Mode: core.ModeM4}).Query(`//x/text()`)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.wantText {
				t.Fatalf("after recovery: %q, want %q", got, tc.wantText)
			}
			// The version directory must still be the swept survivor.
			if _, err := os.Stat(filepath.Join(dir, "docs", "d", "v1", "ok")); err != nil {
				t.Fatalf("version dir missing: %v", err)
			}
		})
	}
}

package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"xqdb/internal/core"
	"xqdb/internal/plancache"
)

func doc(n int) string {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<x>%d</x>", i)
	}
	b.WriteString("</r>")
	return b.String()
}

func TestLoadListQueryDrop(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if epoch, err := c.LoadString("a", doc(10)); err != nil || epoch != 1 {
		t.Fatalf("load a: epoch=%d err=%v", epoch, err)
	}
	if epoch, err := c.LoadString("b", doc(20)); err != nil || epoch != 1 {
		t.Fatalf("load b: epoch=%d err=%v", epoch, err)
	}

	infos := c.List()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("list = %+v", infos)
	}
	if infos[0].Nodes == 0 || infos[1].Nodes <= infos[0].Nodes {
		t.Fatalf("stats not per-document: %+v", infos)
	}

	d, err := c.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Engine(core.Config{Mode: core.ModeM4}).Query(
		`for $x in /r/x return if ($x/text() = "19") then <hit/> else ()`)
	d.Release()
	if err != nil || out != "<hit/>" {
		t.Fatalf("query via catalog: %q, %v", out, err)
	}

	if err := c.Drop("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire("b"); err == nil {
		t.Fatal("acquired a dropped document")
	}
	if _, err := os.Stat(filepath.Join(c.docsDir(), "b")); !os.IsNotExist(err) {
		t.Errorf("drop left data on disk: %v", err)
	}
	if err := c.Drop("b"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestReloadBumpsEpochAndKeepsOldReaders(t *testing.T) {
	cache := plancache.New(16)
	c, err := Open(t.TempDir(), Options{PlanCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.LoadString("d", doc(5)); err != nil {
		t.Fatal(err)
	}

	// Hold the old version while reloading.
	old, err := c.Acquire("d")
	if err != nil {
		t.Fatal(err)
	}
	// Prime the cache under epoch 1.
	q := `for $x in /r/x return $x`
	if _, err := old.Engine(core.Config{Mode: core.ModeM4}).Query(q); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d after priming", cache.Len())
	}

	epoch, err := c.LoadString("d", doc(7))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("reload epoch = %d, want 2", epoch)
	}
	if cache.Len() != 0 {
		t.Error("reload did not invalidate the plan cache")
	}

	// The held old version still answers from the OLD data.
	out, err := old.Engine(core.Config{Mode: core.ModeM4}).Query(
		`for $x in /r/x return if ($x/text() = "4") then <old/> else ()`)
	if err != nil || out != "<old/>" {
		t.Fatalf("old version query: %q, %v", out, err)
	}
	oldDir := old.dir
	old.Release() // drains: old version directory is purged

	fresh, err := c.Acquire("d")
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Release()
	if fresh.Epoch() != 2 {
		t.Fatalf("live epoch = %d, want 2", fresh.Epoch())
	}
	out, err = fresh.Engine(core.Config{Mode: core.ModeM4}).Query(
		`for $x in /r/x return if ($x/text() = "6") then <new/> else ()`)
	if err != nil || out != "<new/>" {
		t.Fatalf("new version query: %q, %v", out, err)
	}
	if _, err := os.Stat(oldDir); !os.IsNotExist(err) {
		t.Errorf("drained old version still on disk: %v", err)
	}
}

func TestEpochSurvivesReopen(t *testing.T) {
	root := t.TempDir()
	c, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadString("d", doc(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadString("d", doc(4)); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// A partial version directory (crashed load) must be swept on reopen.
	partial := filepath.Join(root, "docs", "d", "v9")
	if err := os.MkdirAll(partial, 0o755); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	d, err := c2.Acquire("d")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Release()
	if d.Epoch() != 2 {
		t.Fatalf("reopened epoch = %d, want 2", d.Epoch())
	}
	if _, err := os.Stat(partial); !os.IsNotExist(err) {
		t.Error("partial version directory survived reopen")
	}
	// The next load continues the epoch sequence.
	if epoch, err := c2.LoadString("d", doc(5)); err != nil || epoch != 3 {
		t.Fatalf("post-reopen load: epoch=%d err=%v", epoch, err)
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, name := range []string{"", ".", "..", "a/b", "../x", ".hidden", strings.Repeat("a", 80)} {
		if _, err := c.LoadString(name, doc(1)); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}

func TestConcurrentCatalogUse(t *testing.T) {
	c, err := Open(t.TempDir(), Options{PlanCache: plancache.New(32)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, name := range []string{"a", "b"} {
		if _, err := c.LoadString(name, doc(50)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := []string{"a", "b"}[g%2]
			for i := 0; i < 10; i++ {
				if g == 0 && i == 5 {
					if _, err := c.LoadString("a", doc(60)); err != nil {
						t.Errorf("concurrent reload: %v", err)
						return
					}
					continue
				}
				d, err := c.Acquire(name)
				if err != nil {
					t.Errorf("acquire %s: %v", name, err)
					return
				}
				_, err = d.Engine(core.Config{Mode: core.ModeM4}).NewHandle().Query(
					`for $x in /r/x return if ($x/text() = "13") then <hit/> else ()`)
				d.Release()
				if err != nil {
					t.Errorf("query %s: %v", name, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

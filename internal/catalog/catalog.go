// Package catalog manages many named documents in one store directory —
// the multi-document layer the query server sits on. Each document lives
// in its own versioned store directory:
//
//	<root>/docs/<name>/v<epoch>/
//
// The epoch is the document's statistics epoch: (re)loading a document
// shreds into a NEW version directory and bumps the epoch, so queries
// already running against the old version keep their store until they
// drain (documents are refcounted), and plan-cache entries compiled under
// the old statistics stop matching by key. Because the epoch is the
// version directory number, it survives restarts — a plan cache persisted
// across a restart could never serve a pre-reload plan.
//
// A version directory counts only once fully shredded (marked by an "ok"
// file); partial directories left by a crashed load are swept on Open.
package catalog

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"xqdb/internal/core"
	"xqdb/internal/plancache"
	"xqdb/internal/store"
	"xqdb/internal/xasr"
)

// nameRE bounds document names to path-safe tokens: no separators, no
// dot-prefixed names, nothing the HTTP layer needs to escape.
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

const okMarker = "ok"

// ErrNotFound reports that a catalog has no document under the requested
// name. Callers map it to their own not-found signaling (HTTP 404).
var ErrNotFound = errors.New("no such document")

// Options configures a catalog.
type Options struct {
	// Store is applied to every document store opened or created.
	Store store.Options
	// PlanCache, when set, is shared by every engine the catalog hands
	// out, and is invalidated when a document is reloaded or dropped.
	PlanCache *plancache.Cache
}

// Catalog is a set of named documents under one root directory. All
// methods are safe for concurrent use.
type Catalog struct {
	root string
	opts Options

	mu   sync.Mutex
	docs map[string]*Doc // live version per name
}

// Doc is one loaded document version. Holders acquire it from the catalog
// and must Release it; the backing store stays open (even across a reload
// or drop of the name) until the last holder releases.
type Doc struct {
	name  string
	epoch uint64 // version-directory number (fixed for this Doc's lifetime)
	dir   string
	st    *store.Store
	cache *plancache.Cache

	// statsEpoch is the statistics epoch exposed to the plan cache. It
	// starts at the directory epoch plus the store's applied-update
	// sequence (so a restart after updates never repeats a pre-update
	// identity) and bumps on every in-place update.
	statsEpoch atomic.Uint64

	// updMu serializes update statements against this version; queries
	// are unaffected (the store itself is safe for concurrent readers).
	updMu sync.Mutex

	mu      sync.Mutex
	refs    int
	retired bool // a newer version replaced this one, or the name was dropped
	purge   bool // remove the version directory once drained (drop)
}

// Open opens (or initializes) a catalog rooted at dir. Existing documents
// are recovered from their highest complete version directory; partial
// version directories — a load that crashed mid-shred — are removed.
func Open(dir string, opts Options) (*Catalog, error) {
	c := &Catalog{root: dir, opts: opts, docs: make(map[string]*Doc)}
	if err := os.MkdirAll(c.docsDir(), 0o755); err != nil {
		return nil, err
	}
	names, err := os.ReadDir(c.docsDir())
	if err != nil {
		return nil, err
	}
	for _, ent := range names {
		if !ent.IsDir() || !nameRE.MatchString(ent.Name()) {
			continue
		}
		if err := c.recover(ent.Name()); err != nil {
			return nil, fmt.Errorf("catalog: recover %s: %w", ent.Name(), err)
		}
	}
	return c, nil
}

func (c *Catalog) docsDir() string { return filepath.Join(c.root, "docs") }

func (c *Catalog) versionDir(name string, epoch uint64) string {
	return filepath.Join(c.docsDir(), name, fmt.Sprintf("v%d", epoch))
}

// recover opens the highest complete version of name and sweeps the rest.
func (c *Catalog) recover(name string) error {
	nameDir := filepath.Join(c.docsDir(), name)
	ents, err := os.ReadDir(nameDir)
	if err != nil {
		return err
	}
	var epochs []uint64
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		n, perr := strconv.ParseUint(strings.TrimPrefix(ent.Name(), "v"), 10, 64)
		if perr != nil || !strings.HasPrefix(ent.Name(), "v") {
			continue
		}
		epochs = append(epochs, n)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] > epochs[j] })
	live := false
	for _, epoch := range epochs {
		dir := c.versionDir(name, epoch)
		if _, err := os.Stat(filepath.Join(dir, okMarker)); err != nil || live {
			// Partial (crashed load) or superseded: sweep it.
			if err := os.RemoveAll(dir); err != nil {
				return err
			}
			continue
		}
		st, err := store.Open(dir, c.opts.Store)
		if err != nil {
			return err
		}
		doc := &Doc{name: name, epoch: epoch, dir: dir, st: st, cache: c.opts.PlanCache, refs: 1}
		doc.statsEpoch.Store(epoch + st.AppliedSeq())
		c.docs[name] = doc
		live = true
	}
	if !live {
		// Nothing complete survived; drop the empty name directory.
		return os.RemoveAll(nameDir)
	}
	return nil
}

// Load shreds a document from r under name, replacing any existing
// version. Running queries against the old version are unaffected — they
// drain on their own store — and plan-cache entries for the name are
// invalidated. Returns the new statistics epoch.
func (c *Catalog) Load(name string, r io.Reader) (uint64, error) {
	if !nameRE.MatchString(name) {
		return 0, fmt.Errorf("catalog: invalid document name %q", name)
	}
	// Shred outside the catalog lock: loads are long and must not block
	// queries on other documents.
	c.mu.Lock()
	epoch := uint64(1)
	if old := c.docs[name]; old != nil {
		// The stats epoch can run ahead of the directory epoch (in-place
		// updates bump it); base the new directory past both so cache
		// identities never repeat.
		epoch = old.Epoch() + 1
	}
	c.mu.Unlock()

	dir := c.versionDir(name, epoch)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	st, err := store.Open(dir, c.opts.Store)
	if err != nil {
		return 0, err
	}
	if err := st.Load(r); err != nil {
		st.Close()
		os.RemoveAll(dir)
		return 0, err
	}
	if err := os.WriteFile(filepath.Join(dir, okMarker), nil, 0o644); err != nil {
		st.Close()
		os.RemoveAll(dir)
		return 0, err
	}

	doc := &Doc{name: name, epoch: epoch, dir: dir, st: st, cache: c.opts.PlanCache, refs: 1}
	doc.statsEpoch.Store(epoch)
	c.mu.Lock()
	old := c.docs[name]
	c.docs[name] = doc
	c.mu.Unlock()
	c.opts.PlanCache.InvalidateDoc(name)
	if old != nil {
		old.retire(true)
	}
	return epoch, nil
}

// LoadString is Load from a string (tests, CLI).
func (c *Catalog) LoadString(name, doc string) (uint64, error) {
	return c.Load(name, strings.NewReader(doc))
}

// Update applies one update statement to the live version of name,
// atomically and durably (WAL-first; a crash mid-update recovers to
// either the pre- or post-update state). Updates on the same document
// serialize; queries keep running throughout. On success the document's
// statistics epoch bumps, so cached plans compiled under the old
// statistics stop matching and are eagerly invalidated.
func (c *Catalog) Update(name, stmt string) (core.UpdateResult, error) {
	doc, err := c.Acquire(name)
	if err != nil {
		return core.UpdateResult{}, err
	}
	defer doc.Release()
	doc.updMu.Lock()
	defer doc.updMu.Unlock()
	res, err := doc.Engine(core.Config{}).Update(stmt)
	if res.Applied > 0 {
		// Bump even when err != nil: a post-durability fault means the
		// change IS applied and cached plans are stale regardless.
		doc.statsEpoch.Add(1)
		c.opts.PlanCache.InvalidateDoc(name)
	}
	return res, err
}

// Acquire returns the live version of name with a reference held. Callers
// must Release it when their query finishes.
func (c *Catalog) Acquire(name string) (*Doc, error) {
	c.mu.Lock()
	doc := c.docs[name]
	c.mu.Unlock()
	if doc == nil {
		return nil, fmt.Errorf("catalog: %w: %q", ErrNotFound, name)
	}
	doc.mu.Lock()
	defer doc.mu.Unlock()
	if doc.retired && doc.refs == 0 {
		// Lost a race with Drop's final release; the store is closed.
		return nil, fmt.Errorf("catalog: %w: %q", ErrNotFound, name)
	}
	doc.refs++
	return doc, nil
}

// Drop removes name from the catalog and deletes its data once running
// queries drain. Plan-cache entries for the name are invalidated.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	doc := c.docs[name]
	delete(c.docs, name)
	c.mu.Unlock()
	if doc == nil {
		return fmt.Errorf("catalog: %w: %q", ErrNotFound, name)
	}
	c.opts.PlanCache.InvalidateDoc(name)
	doc.retire(true)
	return nil
}

// Info describes one live document.
type Info struct {
	Name  string `json:"name"`
	Epoch uint64 `json:"epoch"`
	Nodes int64  `json:"nodes"`
	Elems int64  `json:"elems"`
	Texts int64  `json:"texts"`
	// Queries is the number of queries currently holding the document.
	Queries int `json:"queries"`
	// AppliedSeq is the number of update statements applied to this
	// version; WALBytes and CheckpointLSN describe its write-ahead log.
	AppliedSeq    uint64 `json:"applied_seq"`
	WALBytes      int64  `json:"wal_bytes"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
}

// List returns the live documents sorted by name.
func (c *Catalog) List() []Info {
	c.mu.Lock()
	docs := make([]*Doc, 0, len(c.docs))
	for _, d := range c.docs {
		docs = append(docs, d)
	}
	c.mu.Unlock()
	infos := make([]Info, 0, len(docs))
	for _, d := range docs {
		info := Info{
			Name:          d.name,
			Epoch:         d.Epoch(),
			AppliedSeq:    d.st.AppliedSeq(),
			WALBytes:      d.st.WALBytes(),
			CheckpointLSN: d.st.LastCheckpointLSN(),
		}
		if st := d.st.Stats(); st != nil {
			info.Nodes, info.Elems, info.Texts = st.Nodes, st.Elems, st.Texts
		}
		d.mu.Lock()
		info.Queries = d.refs - 1 // the catalog's own reference doesn't count
		if info.Queries < 0 {
			info.Queries = 0
		}
		d.mu.Unlock()
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Close retires every document; stores close as their queries drain (all
// of them immediately when idle). Data stays on disk.
func (c *Catalog) Close() error {
	c.mu.Lock()
	docs := make([]*Doc, 0, len(c.docs))
	for _, d := range c.docs {
		docs = append(docs, d)
	}
	c.docs = make(map[string]*Doc)
	c.mu.Unlock()
	for _, d := range docs {
		d.retire(false)
	}
	return nil
}

// Name returns the document's catalog name.
func (d *Doc) Name() string { return d.name }

// Epoch returns the document's statistics epoch: the version-directory
// number plus one per in-place update applied to it.
func (d *Doc) Epoch() uint64 { return d.statsEpoch.Load() }

// Store returns the backing store (valid until Release).
func (d *Doc) Store() *store.Store { return d.st }

// Stats returns the document's XASR statistics.
func (d *Doc) Stats() *xasr.Stats { return d.st.Stats() }

// Version returns the plan-cache identity of this document version.
func (d *Doc) Version() plancache.DocVersion {
	return plancache.DocVersion{Name: d.name, Epoch: d.Epoch()}
}

// Engine returns a query engine over this document version, wired to the
// catalog's shared plan cache under this version's cache identity.
func (d *Doc) Engine(cfg core.Config) *core.Engine {
	cfg.PlanCache = d.cache
	cfg.CacheDoc = d.Version()
	return core.New(d.st, cfg)
}

// Release drops the holder's reference. When a retired version drains, its
// store closes (and, after a drop, its directory is deleted).
func (d *Doc) Release() {
	d.mu.Lock()
	d.refs--
	drained := d.refs == 0 && d.retired
	purge := d.purge
	d.mu.Unlock()
	if drained {
		d.st.Close()
		if purge {
			os.RemoveAll(d.dir)
			// Remove the name directory too if this was the last version.
			if parent := filepath.Dir(d.dir); parent != "" {
				os.Remove(parent) // fails (correctly) unless empty
			}
		}
	}
}

// retire drops the catalog's own reference: the version closes once (and
// if) its queries drain. purge additionally deletes the data.
func (d *Doc) retire(purge bool) {
	d.mu.Lock()
	d.retired = true
	if purge {
		d.purge = true
	}
	d.mu.Unlock()
	d.Release()
}

package wal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) *Log {
	t.Helper()
	w, err := Open(path, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w
}

func TestAppendFlushReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	lsn1, err := w.AppendPage(7, []byte("page-seven-image"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	if w.LastSeq() != 0 {
		t.Fatal("commit visible before flush")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.LastSeq() != 1 {
		t.Fatalf("LastSeq = %d, want 1", w.LastSeq())
	}
	w.Close()

	w2 := openT(t, path)
	defer w2.Close()
	if w2.LastSeq() != 1 {
		t.Fatalf("reopened LastSeq = %d, want 1", w2.LastSeq())
	}
	var got []byte
	var types []byte
	err = w2.Replay(func(lsn LSN, typ byte, payload []byte) error {
		types = append(types, typ)
		if typ == RecPage {
			if lsn != lsn1 {
				t.Fatalf("page LSN = %d, want %d", lsn, lsn1)
			}
			if binary.LittleEndian.Uint32(payload) != 7 {
				t.Fatalf("page id = %d", binary.LittleEndian.Uint32(payload))
			}
			got = append([]byte(nil), payload[4:]...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("page-seven-image")) {
		t.Fatalf("image = %q", got)
	}
	if len(types) != 2 || types[0] != RecPage || types[1] != RecCommit {
		t.Fatalf("types = %v", types)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	w.AppendPage(1, []byte("alpha"))
	w.AppendCommit(1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	durable := w.durable
	w.AppendPage(2, []byte("beta"))
	w.AppendCommit(2)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Tear the second unit: chop the file two bytes into its commit
	// record. The preceding page record survives the scan but the unit
	// never commits.
	info, _ := os.Stat(path)
	torn := info.Size() - 12
	if err := os.Truncate(path, torn); err != nil {
		t.Fatal(err)
	}

	w2 := openT(t, path)
	if w2.LastSeq() != 1 {
		t.Fatalf("LastSeq after tear = %d, want 1", w2.LastSeq())
	}
	if w2.durable < durable || w2.durable >= torn {
		t.Fatalf("durable = %d, want in [%d, %d)", w2.durable, durable, torn)
	}
	// And the truncation is physical: the partial record is gone.
	valid := w2.durable
	w2.Close()
	if info, _ := os.Stat(path); info.Size() != valid {
		t.Fatalf("file size = %d, want %d", info.Size(), valid)
	}
}

func TestCorruptRecordStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	w.AppendCommit(1)
	w.Flush()
	mid := w.durable
	w.AppendCommit(2)
	w.Flush()
	w.Close()

	// Flip one byte inside the second record: CRC must reject it and the
	// scan must stop at the first unit.
	raw, _ := os.ReadFile(path)
	raw[mid+2] ^= 0xff
	os.WriteFile(path, raw, 0o644)

	w2 := openT(t, path)
	defer w2.Close()
	if w2.LastSeq() != 1 {
		t.Fatalf("LastSeq = %d, want 1", w2.LastSeq())
	}
}

func TestCheckpointCompactsAndKeepsLSNsMonotonic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	for seq := uint64(1); seq <= 5; seq++ {
		w.AppendPage(uint32(seq), bytes.Repeat([]byte{byte(seq)}, 64))
		w.AppendCommit(seq)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	before := w.FlushedLSN()
	if err := w.Checkpoint(5); err != nil {
		t.Fatal(err)
	}
	if w.Bytes() >= 64 {
		t.Fatalf("log not compacted: %d bytes", w.Bytes())
	}
	if w.FlushedLSN() < before {
		t.Fatalf("LSN regressed: %d < %d", w.FlushedLSN(), before)
	}
	if w.LastCheckpointLSN() != before+1 {
		t.Fatalf("ckpt LSN = %d, want %d", w.LastCheckpointLSN(), before+1)
	}
	// New appends continue past the old stream.
	lsn, err := w.AppendCommit(6)
	if err != nil {
		t.Fatal(err)
	}
	if lsn <= before {
		t.Fatalf("post-checkpoint LSN %d not past %d", lsn, before)
	}
	w.Flush()
	w.Close()

	w2 := openT(t, path)
	defer w2.Close()
	if w2.LastSeq() != 6 {
		t.Fatalf("LastSeq = %d, want 6", w2.LastSeq())
	}
	if w2.LastCheckpointLSN() != before+1 {
		t.Fatalf("reopened ckpt LSN = %d, want %d", w2.LastCheckpointLSN(), before+1)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("checkpoint temp file leaked")
	}
}

func TestDropBuffer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	defer w.Close()
	w.AppendPage(1, []byte("x"))
	w.AppendCommit(9)
	w.DropBuffer()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.LastSeq() != 0 || w.Bytes() != 0 {
		t.Fatalf("dropped unit leaked: seq=%d bytes=%d", w.LastSeq(), w.Bytes())
	}
}

func TestScanReadOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	if seq, redo, err := Scan(path); err != nil || seq != 0 || redo {
		t.Fatalf("missing file: %d %v %v", seq, redo, err)
	}
	w := openT(t, path)
	w.AppendPage(1, []byte("img"))
	w.AppendCommit(3)
	w.Flush()
	w.Close()
	seq, redo, err := Scan(path)
	if err != nil || seq != 3 || !redo {
		t.Fatalf("Scan = %d %v %v, want 3 true nil", seq, redo, err)
	}
	w = openT(t, path)
	w.Checkpoint(3)
	w.Close()
	seq, redo, err = Scan(path)
	if err != nil || seq != 3 || redo {
		t.Fatalf("post-ckpt Scan = %d %v %v, want 3 false nil", seq, redo, err)
	}
}

// Package wal implements the write-ahead log under the pager: an
// append-only file of physiological redo records (whole-page after-images
// plus commit and checkpoint markers), each uvarint-framed and CRC-guarded,
// addressed by monotonically increasing LSNs.
//
// Records accumulate in memory and reach disk in one group flush
// (write + fsync) per commit, so a commit unit is durable atomically: on
// reopen the log is scanned, any torn tail (partial or corrupt trailing
// bytes from a crash mid-flush) is truncated away, and only records before
// the tear replay.
//
// LSNs never regress: the file header stores the base LSN of its first
// record, and a checkpoint rewrites the log as a new file (temp + rename)
// whose base continues where the old log ended. A page stamped with an LSN
// therefore always compares correctly against any future log.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// LSN addresses a byte position in the logical (never-truncated) log
// stream, offset by one so the first record has LSN 1: 0 means "none" —
// the sentinel a never-logged page carries in its header.
type LSN = uint64

// Record types.
const (
	// RecPage is a whole-page after-image: payload = u32 page id + the
	// raw page bytes (including the page's LSN header).
	RecPage byte = 1
	// RecCommit ends a commit unit: payload = u64 update sequence
	// number. Page records since the previous commit belong to it.
	RecCommit byte = 2
	// RecCheckpoint marks that all effects up to and including sequence
	// number (payload, u64) are durable in the data file. A compacted
	// log starts with one.
	RecCheckpoint byte = 3
)

const (
	magic   = "XQDBWAL1"
	hdrSize = 16 // magic + u64 base LSN
	// maxRecord bounds a record length during scan so a corrupt length
	// byte cannot cause a huge allocation.
	maxRecord = 1 << 26
)

// Hook mirrors pager.IOHook: consulted before (and, for flush, after)
// I/O with a "wal:op" tag; a non-nil return aborts the operation.
type Hook func(op string) error

// Log is an open write-ahead log. Methods are not safe for concurrent use
// with each other except the read-only accessors; the pager serializes
// writers.
type Log struct {
	path string
	hook Hook
	f    *os.File

	base     LSN    // LSN of file offset hdrSize
	durable  int64  // file offset past the last flushed byte
	buf      []byte // appended but not yet flushed records
	bufSeq   uint64 // highest commit seq sitting in buf
	lastSeq  uint64 // highest durable commit/checkpoint seq
	lastCkpt LSN    // LSN of the last durable checkpoint record
}

// Open opens (creating if absent) the log at path, scans it, truncates any
// torn tail, and reports the highest committed sequence number it holds.
func Open(path string, hook Hook) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &Log{path: path, hook: hook, f: f}
	if err := w.load(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *Log) load() error {
	info, err := w.f.Stat()
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if info.Size() == 0 {
		var hdr [hdrSize]byte
		copy(hdr[:], magic)
		if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("wal: init: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: init: %w", err)
		}
		w.durable = hdrSize
		return nil
	}
	raw, err := io.ReadAll(io.NewSectionReader(w.f, 0, info.Size()))
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if len(raw) < hdrSize || string(raw[:8]) != magic {
		return fmt.Errorf("wal: %s: bad header", w.path)
	}
	w.base = binary.LittleEndian.Uint64(raw[8:])
	valid := int64(hdrSize)
	body := raw[hdrSize:]
	for off := 0; off < len(body); {
		n, typ, payload, ok := decodeRecord(body[off:])
		if !ok {
			break // torn tail
		}
		switch typ {
		case RecCommit:
			w.lastSeq = binary.LittleEndian.Uint64(payload)
		case RecCheckpoint:
			if s := binary.LittleEndian.Uint64(payload); s > w.lastSeq {
				w.lastSeq = s
			}
			w.lastCkpt = w.base + uint64(off) + 1
		}
		off += n
		valid = int64(hdrSize + off)
	}
	if valid < info.Size() {
		if err := w.f.Truncate(valid); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	w.durable = valid
	return nil
}

// decodeRecord decodes one framed record at the start of b. It returns the
// total encoded length consumed. ok is false for a truncated or corrupt
// record.
func decodeRecord(b []byte) (n int, typ byte, payload []byte, ok bool) {
	plen, ln := binary.Uvarint(b)
	if ln <= 0 || plen > maxRecord {
		return 0, 0, nil, false
	}
	total := ln + 1 + int(plen) + 4
	if len(b) < total {
		return 0, 0, nil, false
	}
	typ = b[ln]
	payload = b[ln+1 : ln+1+int(plen)]
	want := binary.LittleEndian.Uint32(b[ln+1+int(plen):])
	if crc32.ChecksumIEEE(b[ln:ln+1+int(plen)]) != want {
		return 0, 0, nil, false
	}
	return total, typ, payload, true
}

func appendRecord(dst []byte, typ byte, payload []byte) []byte {
	var lenbuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenbuf[:], uint64(len(payload)))
	dst = append(dst, lenbuf[:n]...)
	start := len(dst)
	dst = append(dst, typ)
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	var crcbuf [4]byte
	binary.LittleEndian.PutUint32(crcbuf[:], crc)
	return append(dst, crcbuf[:]...)
}

// NextLSN returns the LSN the next appended record will receive. A commit
// unit stamps page headers with it before building the page record, so the
// image on the log already carries its own LSN.
func (w *Log) NextLSN() LSN { return w.base + uint64(w.durable-hdrSize) + uint64(len(w.buf)) + 1 }

// Append buffers one record and returns its LSN. Nothing is durable until
// Flush.
func (w *Log) Append(typ byte, payload []byte) (LSN, error) {
	if err := w.crash("wal:append"); err != nil {
		return 0, err
	}
	lsn := w.NextLSN()
	w.buf = appendRecord(w.buf, typ, payload)
	if typ == RecCommit {
		w.bufSeq = binary.LittleEndian.Uint64(payload)
	}
	return lsn, nil
}

// AppendPage buffers a page after-image record.
func (w *Log) AppendPage(pageID uint32, image []byte) (LSN, error) {
	payload := make([]byte, 4+len(image))
	binary.LittleEndian.PutUint32(payload, pageID)
	copy(payload[4:], image)
	return w.Append(RecPage, payload)
}

// AppendCommit buffers a commit record for update sequence seq.
func (w *Log) AppendCommit(seq uint64) (LSN, error) {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], seq)
	return w.Append(RecCommit, p[:])
}

// Flush writes every buffered record in one write and fsyncs — the group
// flush that makes a commit unit durable. Durability is recorded before
// the trailing "wal:appended" hook runs, so an injected crash there
// simulates dying just after the commit hit disk.
func (w *Log) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if err := w.crash("wal:flush"); err != nil {
		return err
	}
	if _, err := w.f.WriteAt(w.buf, w.durable); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	w.durable += int64(len(w.buf))
	w.buf = w.buf[:0]
	if w.bufSeq > w.lastSeq {
		w.lastSeq = w.bufSeq
	}
	return w.crash("wal:appended")
}

// DropBuffer discards buffered, unflushed records (a clean abort of an
// uncommitted unit).
func (w *Log) DropBuffer() { w.buf = w.buf[:0]; w.bufSeq = 0 }

// Replay calls fn for every durable record in order. It must not be
// interleaved with appends.
func (w *Log) Replay(fn func(lsn LSN, typ byte, payload []byte) error) error {
	if w.durable <= hdrSize {
		return nil
	}
	body, err := io.ReadAll(io.NewSectionReader(w.f, hdrSize, w.durable-hdrSize))
	if err != nil {
		return fmt.Errorf("wal: replay: %w", err)
	}
	for off := 0; off < len(body); {
		n, typ, payload, ok := decodeRecord(body[off:])
		if !ok {
			return fmt.Errorf("wal: replay: corrupt record at LSN %d", w.base+uint64(off))
		}
		if err := fn(w.base+uint64(off)+1, typ, payload); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// Checkpoint compacts the log: all effects up to lastSeq are durable in
// the data file, so every earlier record is dead. A replacement log —
// header continuing the LSN sequence plus a single checkpoint record — is
// written to a temp file, fsynced, and renamed over the old one. Buffered
// records must have been flushed (or dropped) first.
func (w *Log) Checkpoint(lastSeq uint64) error {
	if len(w.buf) != 0 {
		return fmt.Errorf("wal: checkpoint with unflushed records")
	}
	newBase := w.base + uint64(w.durable-hdrSize)
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], lastSeq)
	content := make([]byte, hdrSize, hdrSize+32)
	copy(content, magic)
	binary.LittleEndian.PutUint64(content[8:], newBase)
	content = appendRecord(content, RecCheckpoint, p[:])

	tmp := w.path + ".tmp"
	tf, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if _, err := tf.Write(content); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	w.f.Close()
	w.f = tf
	w.base = newBase
	w.durable = int64(len(content))
	w.lastSeq = lastSeq
	w.lastCkpt = newBase + 1
	// Make the rename itself durable. The in-memory swap above stands
	// either way: the rename is visible to this process, and a crash that
	// loses it only resurrects the old log, whose replay is idempotent.
	if err := syncDir(w.path); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	return nil
}

// syncDir fsyncs the directory containing path, making a just-renamed
// directory entry durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// LastSeq returns the highest durable committed sequence number.
func (w *Log) LastSeq() uint64 { return w.lastSeq }

// LastCheckpointLSN returns the LSN of the last durable checkpoint record
// (0 if none).
func (w *Log) LastCheckpointLSN() LSN { return w.lastCkpt }

// FlushedLSN returns the LSN one past the last durable byte: a page may be
// written back only when its LSN is below this.
func (w *Log) FlushedLSN() LSN { return w.base + uint64(w.durable-hdrSize) }

// Bytes returns the durable log size in bytes (excluding the header) —
// the store's checkpoint trigger.
func (w *Log) Bytes() int64 { return w.durable - hdrSize + int64(len(w.buf)) }

// CrashHook runs the injection hook with op; the pager uses it for the
// mid-checkpoint crash point.
func (w *Log) CrashHook(op string) error { return w.crash(op) }

func (w *Log) crash(op string) error {
	if w.hook == nil {
		return nil
	}
	return w.hook(op)
}

// Close flushes buffered records and closes the file.
func (w *Log) Close() error {
	if err := w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// CloseNoFlush closes the file descriptor without flushing buffered
// records — the crash harness's simulated kill. Durable bytes (completed
// write+fsync) survive; everything else is lost.
func (w *Log) CloseNoFlush() error { return w.f.Close() }

// Scan reads the log at path without modifying it (no torn-tail
// truncation) and reports the highest committed sequence number and
// whether any committed records follow the last checkpoint — i.e. whether
// a writable open would have redo work to do. A missing file scans clean.
func Scan(path string) (lastSeq uint64, redo bool, err error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("wal: %w", err)
	}
	if len(raw) < hdrSize || string(raw[:8]) != magic {
		return 0, false, fmt.Errorf("wal: %s: bad header", path)
	}
	body := raw[hdrSize:]
	for off := 0; off < len(body); {
		n, typ, payload, ok := decodeRecord(body[off:])
		if !ok {
			break
		}
		switch typ {
		case RecCommit:
			lastSeq = binary.LittleEndian.Uint64(payload)
			redo = true
		case RecCheckpoint:
			if s := binary.LittleEndian.Uint64(payload); s > lastSeq {
				lastSeq = s
			}
			redo = false
		}
		off += n
	}
	return lastSeq, redo, nil
}

package xq

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexical token kinds of the XQ surface syntax.
type tokKind int

const (
	tokEOF     tokKind = iota
	tokIdent           // bare name: for, in, return, labels, ...
	tokVar             // $name (Text holds the name without '$')
	tokString          // "..." or '...' (Text holds the contents)
	tokLParen          // (
	tokRParen          // )
	tokLBrace          // {
	tokRBrace          // }
	tokComma           // ,
	tokSlash           // /
	tokDSlash          // //
	tokLt              // <
	tokLtSlash         // </
	tokEq              // =
	tokStar            // *
	tokAxis            // child:: or descendant:: (Text holds the axis name)
	tokGt              // >
	tokSlashGt         // />
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokSlash:
		return "'/'"
	case tokDSlash:
		return "'//'"
	case tokLt:
		return "'<'"
	case tokLtSlash:
		return "'</'"
	case tokEq:
		return "'='"
	case tokStar:
		return "'*'"
	case tokAxis:
		return "axis"
	case tokGt:
		return "'>'"
	case tokSlashGt:
		return "'/>'"
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

// token is one lexical token with its starting offset.
type token struct {
	Kind tokKind
	Text string
	Pos  int
}

func (t token) describe() string {
	switch t.Kind {
	case tokIdent:
		return fmt.Sprintf("%q", t.Text)
	case tokVar:
		return "$" + t.Text
	case tokString:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return t.Kind.String()
	}
}

// ParseError reports a syntax error in an XQ query with its byte offset.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xq: parse error at offset %d: %s", e.Pos, e.Msg)
}

// lexer tokenizes an XQ query string. Element-constructor content is lexed
// on demand by the parser via rawText, because inside <a>...</a> character
// data is raw until '{' or '<'.
type lexer struct {
	src string
	pos int
	// peeked holds a single token of lookahead.
	peeked  *token
	peekPos int // pos to restore raw scanning from, unused while peeked==nil
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || b >= 0x80
}

func isIdentChar(b byte) bool {
	return isIdentStart(b) || b == '-' || b == '.' || (b >= '0' && b <= '9')
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		case '(':
			// XQuery comment (: ... :) — supported for convenience.
			if strings.HasPrefix(l.src[l.pos:], "(:") {
				depth := 1
				i := l.pos + 2
				for i < len(l.src) && depth > 0 {
					if strings.HasPrefix(l.src[i:], "(:") {
						depth++
						i += 2
					} else if strings.HasPrefix(l.src[i:], ":)") {
						depth--
						i += 2
					} else {
						i++
					}
				}
				l.pos = i
				continue
			}
			return
		default:
			return
		}
	}
}

// peek returns the next token without consuming it.
func (l *lexer) peek() (token, error) {
	if l.peeked == nil {
		tok, err := l.scan()
		if err != nil {
			return token{}, err
		}
		l.peeked = &tok
	}
	return *l.peeked, nil
}

// next consumes and returns the next token.
func (l *lexer) next() (token, error) {
	if l.peeked != nil {
		tok := *l.peeked
		l.peeked = nil
		return tok, nil
	}
	return l.scan()
}

func (l *lexer) scan() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{Kind: tokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	b := l.src[l.pos]
	switch b {
	case '(':
		l.pos++
		return token{Kind: tokLParen, Pos: start}, nil
	case ')':
		l.pos++
		return token{Kind: tokRParen, Pos: start}, nil
	case '{':
		l.pos++
		return token{Kind: tokLBrace, Pos: start}, nil
	case '}':
		l.pos++
		return token{Kind: tokRBrace, Pos: start}, nil
	case ',':
		l.pos++
		return token{Kind: tokComma, Pos: start}, nil
	case '=':
		l.pos++
		return token{Kind: tokEq, Pos: start}, nil
	case '*':
		l.pos++
		return token{Kind: tokStar, Pos: start}, nil
	case '/':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '/' {
			l.pos++
			return token{Kind: tokDSlash, Pos: start}, nil
		}
		if l.pos < len(l.src) && l.src[l.pos] == '>' {
			l.pos++
			return token{Kind: tokSlashGt, Pos: start}, nil
		}
		return token{Kind: tokSlash, Pos: start}, nil
	case '>':
		l.pos++
		return token{Kind: tokGt, Pos: start}, nil
	case '<':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '/' {
			l.pos++
			return token{Kind: tokLtSlash, Pos: start}, nil
		}
		return token{Kind: tokLt, Pos: start}, nil
	case '$':
		l.pos++
		if l.pos >= len(l.src) || !isIdentStart(l.src[l.pos]) {
			return token{}, l.errf(start, "expected variable name after '$'")
		}
		ns := l.pos
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return token{Kind: tokVar, Text: l.src[ns:l.pos], Pos: start}, nil
	case '"', '\'':
		quote := b
		l.pos++
		ns := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf(start, "unterminated string literal")
		}
		text := l.src[ns:l.pos]
		l.pos++
		return token{Kind: tokString, Text: text, Pos: start}, nil
	}
	if isIdentStart(b) {
		ns := l.pos
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		name := l.src[ns:l.pos]
		if (name == "child" || name == "descendant") && strings.HasPrefix(l.src[l.pos:], "::") {
			l.pos += 2
			return token{Kind: tokAxis, Text: name, Pos: start}, nil
		}
		return token{Kind: tokIdent, Text: name, Pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", string(b))
}

// rawText reads raw constructor content up to (not including) the next '{',
// '<', or '}' byte. It must only be called with no pending lookahead.
func (l *lexer) rawText() (string, error) {
	if l.peeked != nil {
		// The parser peeks to decide whether content follows; rewind the
		// lookahead so raw scanning restarts at its source position.
		l.pos = l.peeked.Pos
		l.peeked = nil
	}
	start := l.pos
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '{', '<':
			return l.src[start:l.pos], nil
		}
		l.pos++
	}
	return "", l.errf(start, "unterminated element constructor content")
}

package xq

import (
	"fmt"
	"strings"
)

// String renders the empty sequence.
func (Empty) String() string { return "()" }

// String renders the constructor in surface syntax.
func (c *Constr) String() string {
	if _, ok := c.Body.(Empty); ok {
		return fmt.Sprintf("<%s/>", c.Label)
	}
	return fmt.Sprintf("<%s>{ %s }</%s>", c.Label, c.Body, c.Label)
}

// String renders the sequence with comma separators.
func (s *Seq) String() string {
	parts := make([]string, len(s.Items))
	for i, it := range s.Items {
		parts[i] = it.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// String renders the variable reference.
func (v *VarRef) String() string { return "$" + v.Name }

// String renders the path expression.
func (p *PathExpr) String() string { return p.Step.String() }

// String renders the for-expression.
func (f *For) String() string {
	return fmt.Sprintf("for $%s in %s return %s", f.Var, f.In, f.Body)
}

// String renders the if-expression.
func (i *If) String() string {
	return fmt.Sprintf("if (%s) then %s else ()", i.Cond, i.Then)
}

// String renders the literal text constructor.
func (t *TextLit) String() string { return fmt.Sprintf("%q", t.Text) }

// String renders true().
func (True) String() string { return "true()" }

// String renders the variable comparison.
func (c *VarEqVar) String() string { return fmt.Sprintf("$%s = $%s", c.Left, c.Right) }

// String renders the string comparison.
func (c *VarEqStr) String() string { return fmt.Sprintf("$%s = %q", c.Var, c.Str) }

// String renders the existential.
func (s *Some) String() string {
	return fmt.Sprintf("some $%s in %s satisfies %s", s.Var, s.In, s.Sat)
}

// String renders the conjunction.
func (a *And) String() string { return fmt.Sprintf("(%s and %s)", a.Left, a.Right) }

// String renders the disjunction.
func (o *Or) String() string { return fmt.Sprintf("(%s or %s)", o.Left, o.Right) }

// String renders the negation.
func (n *Not) String() string { return fmt.Sprintf("not(%s)", n.Inner) }

package xq

import (
	"strings"
	"testing"
)

func TestParseCoreGrammar(t *testing.T) {
	cases := []struct{ src, want string }{
		{`()`, `()`},
		{`$x`, `$x`}, // validated below as unbound; use Parse directly here
		{`<a/>`, `<a/>`},
		{`<a></a>`, `<a/>`},
		{`/journal`, `/journal`},
		{`//name`, `//name`},
		{`/child::a`, `/a`},
		{`/descendant::a`, `//a`},
		{`for $x in /a return $x`, `for $x in /a return $x`},
		{`for $x in /a return $x/text()`, `for $x in /a return $x/text()`},
		{`for $x in /a return $x/*`, `for $x in /a return $x/*`},
		{`if (true()) then <y/> else ()`, `if (true()) then <y/> else ()`},
	}
	for _, c := range cases {
		if strings.Contains(c.src, "$x") && !strings.Contains(c.src, "for") {
			continue // unbound variable cases are covered elsewhere
		}
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestMultiStepDesugaring(t *testing.T) {
	e := MustParse(`/a/b//c`)
	// Expect two nested fors with a final path expression.
	f1, ok := e.(*For)
	if !ok {
		t.Fatalf("top is %T, want *For", e)
	}
	if f1.In.Base != RootVar || f1.In.Axis != Child || f1.In.Test.Label != "a" {
		t.Errorf("first step: %+v", f1.In)
	}
	f2, ok := f1.Body.(*For)
	if !ok {
		t.Fatalf("second is %T", f1.Body)
	}
	if f2.In.Base != f1.Var || f2.In.Test.Label != "b" {
		t.Errorf("second step: %+v", f2.In)
	}
	p, ok := f2.Body.(*PathExpr)
	if !ok {
		t.Fatalf("third is %T", f2.Body)
	}
	if p.Step.Axis != Descendant || p.Step.Test.Label != "c" {
		t.Errorf("final step: %+v", p.Step)
	}
}

func TestForChainDesugaring(t *testing.T) {
	e := MustParse(`for $y in /a/b return $y`)
	f1 := e.(*For)
	f2, ok := f1.Body.(*For)
	if !ok {
		t.Fatalf("inner is %T", f1.Body)
	}
	// The user variable binds on the LAST step.
	if f2.Var != "y" {
		t.Errorf("user var bound to %q", f2.Var)
	}
	if v, ok := f2.Body.(*VarRef); !ok || v.Name != "y" {
		t.Errorf("body = %v", f2.Body)
	}
}

func TestSomeDesugaring(t *testing.T) {
	e := MustParse(`for $x in /a return if (some $t in $x/b/text() satisfies $t = "v") then $x else ()`)
	f := e.(*For)
	iff := f.Body.(*If)
	s1, ok := iff.Cond.(*Some)
	if !ok {
		t.Fatalf("cond is %T", iff.Cond)
	}
	s2, ok := s1.Sat.(*Some)
	if !ok {
		t.Fatalf("inner sat is %T (multi-step some should nest)", s1.Sat)
	}
	if _, ok := s2.Sat.(*VarEqStr); !ok {
		t.Fatalf("innermost is %T", s2.Sat)
	}
}

func TestComparisonPathDesugaring(t *testing.T) {
	// Paths on both comparison sides become existentials.
	e := MustParse(`for $a in /r return if ($a/x/text() = $a/y/text()) then $a else ()`)
	iff := e.(*For).Body.(*If)
	s, ok := iff.Cond.(*Some)
	if !ok {
		t.Fatalf("cond is %T, want *Some", iff.Cond)
	}
	found := false
	var walk func(c Cond)
	walk = func(c Cond) {
		switch c := c.(type) {
		case *Some:
			walk(c.Sat)
		case *VarEqVar:
			found = true
		}
	}
	walk(s)
	if !found {
		t.Error("no VarEqVar at the core of the desugared comparison")
	}
}

func TestElseDesugaring(t *testing.T) {
	e := MustParse(`for $x in /a return if (true()) then <y/> else <n/>`)
	seq, ok := e.(*For).Body.(*Seq)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("else did not desugar to a pair: %v", e)
	}
	second := seq.Items[1].(*If)
	if _, ok := second.Cond.(*Not); !ok {
		t.Errorf("second branch cond is %T, want *Not", second.Cond)
	}
}

func TestCondPrecedence(t *testing.T) {
	// and binds tighter than or. /a/text() desugars to two nested fors,
	// so the if sits two levels deep.
	e := MustParse(`for $x in /a/text() return if ($x = "a" or $x = "b" and $x = "c") then $x else ()`)
	iff := e.(*For).Body.(*For).Body.(*If)
	or, ok := iff.Cond.(*Or)
	if !ok {
		t.Fatalf("top cond is %T, want *Or", iff.Cond)
	}
	if _, ok := or.Right.(*And); !ok {
		t.Errorf("right of or is %T, want *And", or.Right)
	}
}

func TestConstructorContent(t *testing.T) {
	e := MustParse(`<a>hello<b/>{ () }</a>`)
	c := e.(*Constr)
	seq, ok := c.Body.(*Seq)
	if !ok {
		t.Fatalf("body is %T", c.Body)
	}
	if len(seq.Items) != 3 {
		t.Fatalf("constructor content has %d items, want 3", len(seq.Items))
	}
	if txt, ok := seq.Items[0].(*TextLit); !ok || txt.Text != "hello" {
		t.Errorf("first item: %v", seq.Items[0])
	}
}

func TestXQueryComments(t *testing.T) {
	e, err := Parse(`(: outer (: nested :) :) for $x in /a return $x (: trailing :)`)
	if err != nil {
		t.Fatalf("comments not skipped: %v", err)
	}
	if _, ok := e.(*For); !ok {
		t.Fatalf("got %T", e)
	}
}

func TestShadowingAllowed(t *testing.T) {
	if _, err := Parse(`for $x in /a return for $x in $x/b return $x`); err != nil {
		t.Fatalf("shadowing rejected: %v", err)
	}
}

func TestFreeVars(t *testing.T) {
	e, err := Parse(`for $x in /a return for $y in $x/b return $y`)
	if err != nil {
		t.Fatal(err)
	}
	if free := FreeVars(e); len(free) != 0 {
		t.Errorf("free vars in closed query: %v", free)
	}
	inner := e.(*For).Body
	free := FreeVars(inner)
	if !free["x"] || len(free) != 1 {
		t.Errorf("free vars of inner: %v", free)
	}
}

func TestFreeVarsCond(t *testing.T) {
	e := MustParse(`for $x in /a return if (some $t in $x/text() satisfies $t = "v") then $x else ()`)
	cond := e.(*For).Body.(*If).Cond
	free := FreeVarsCond(cond)
	if !free["x"] || free["t"] {
		t.Errorf("cond free vars: %v", free)
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse(`for $x in /a return @`)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Pos != 20 {
		t.Errorf("error position %d, want 20", pe.Pos)
	}
}

func TestStringsRoundTripThroughParser(t *testing.T) {
	// Printing a parsed query and re-parsing it must give the same tree.
	queries := []string{
		`<names>{ for $j in /journal return for $n in $j//name return $n }</names>`,
		`for $x in //a return if (some $v in $x/b satisfies $v = "s") then $x else ()`,
		`for $x in /a return ($x, <sep/>, $x)`,
	}
	for _, q := range queries {
		e1 := MustParse(q)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Errorf("reparse of %q failed: %v\nprinted: %s", q, err, e1)
			continue
		}
		if e1.String() != e2.String() {
			t.Errorf("round trip diverged:\n1: %s\n2: %s", e1, e2)
		}
	}
}

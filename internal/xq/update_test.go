package xq

import "testing"

func TestIsUpdate(t *testing.T) {
	for _, src := range []string{
		"insert node <a/> into /b",
		"  delete node //c",
		"replace node /a with <b/>",
	} {
		if !IsUpdate(src) {
			t.Errorf("IsUpdate(%q) = false", src)
		}
	}
	for _, src := range []string{
		"/journal//name",
		"for $x in //a return <b/>",
		"<inserted/>",
		"insertion", // identifier prefix, not the keyword
	} {
		if IsUpdate(src) {
			t.Errorf("IsUpdate(%q) = true", src)
		}
	}
}

func TestParseInsert(t *testing.T) {
	u, err := ParseUpdate(`insert node <name>Zoe</name> into /journal/authors`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind != UInsert || u.Where != IntoLast {
		t.Fatalf("kind/where = %v/%v", u.Kind, u.Where)
	}
	if u.FragXML != "<name>Zoe</name>" {
		t.Fatalf("frag = %q", u.FragXML)
	}
	if len(u.Path) != 2 || u.Path[0].Axis != Child || u.Path[0].Test.Label != "journal" ||
		u.Path[1].Test.Label != "authors" {
		t.Fatalf("path = %+v", u.Path)
	}
}

func TestParseInsertPositionsAndSequence(t *testing.T) {
	u, err := ParseUpdate(`insert node <a/>, "two", <b>x</b> before //name`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Where != Before {
		t.Fatalf("where = %v", u.Where)
	}
	if u.FragXML != `<a/>two<b>x</b>` {
		t.Fatalf("frag = %q", u.FragXML)
	}
	if len(u.Path) != 1 || u.Path[0].Axis != Descendant {
		t.Fatalf("path = %+v", u.Path)
	}
	if u, err = ParseUpdate(`insert node "tail & more" after /j/title`); err != nil {
		t.Fatal(err)
	}
	if u.Where != After || u.FragXML != "tail &amp; more" {
		t.Fatalf("where/frag = %v/%q", u.Where, u.FragXML)
	}
}

func TestParseDeleteReplace(t *testing.T) {
	u, err := ParseUpdate(`delete node /journal//name`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind != UDelete || len(u.Path) != 2 || u.Path[1].Axis != Descendant {
		t.Fatalf("u = %+v", u)
	}
	if u.Path[1].Test.Kind != TestLabel || u.Path[1].Test.Label != "name" {
		t.Fatalf("test = %+v", u.Path[1].Test)
	}

	// Constructor content is literal characters, escaped on rendering —
	// same treatment the query engines give TextLit on serialization.
	u, err = ParseUpdate(`replace node //title with <title>A < B</title>`)
	if err == nil {
		t.Fatal("unescaped < in constructor should not parse as raw text")
	}
	u, err = ParseUpdate(`replace node //title with <title>A&B</title>`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind != UReplace || u.FragXML != "<title>A&amp;B</title>" {
		t.Fatalf("u = %+v", u)
	}
}

func TestParseUpdateTextAndStarTests(t *testing.T) {
	u, err := ParseUpdate(`delete node //authors/text()`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Path[1].Test.Kind != TestText {
		t.Fatalf("test = %+v", u.Path[1].Test)
	}
	u, err = ParseUpdate(`delete node /journal/*`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Path[1].Test.Kind != TestStar {
		t.Fatalf("test = %+v", u.Path[1].Test)
	}
}

func TestParseUpdateErrors(t *testing.T) {
	for _, src := range []string{
		`insert node <a/> upon /b`,                   // bad position keyword
		`insert node <a/> into name`,                 // unrooted target
		`insert node <a>{//x}</a> into /b`,           // non-constant fragment
		`delete node`,                                // missing path
		`replace node /a with <b/> extra`,            // trailing tokens
		`insert <a/> into /b`,                        // missing "node"
		`insert node for $x in /a return $x into /b`, // not a fragment
	} {
		if _, err := ParseUpdate(src); err == nil {
			t.Errorf("ParseUpdate(%q) succeeded, want error", src)
		}
	}
}

package xq

import (
	"strings"

	"xqdb/internal/xmltok"
)

// UpdateKind discriminates the three update statements.
type UpdateKind int

// Update statement kinds.
const (
	UInsert UpdateKind = iota
	UDelete
	UReplace
)

// InsertWhere selects where an insert places its fragment relative to
// each target node.
type InsertWhere int

// Insert positions.
const (
	IntoLast InsertWhere = iota // last children of the target
	Before                      // preceding siblings
	After                       // following siblings
)

// PathStep is one exported axis::test step of an update's target path.
type PathStep struct {
	Axis Axis
	Test NodeTest
}

// Update is a parsed update statement (an XQuery-Update-inspired
// extension over the paper's read-only XQ fragment):
//
//	insert node <frag> (into|before|after) /path
//	delete node /path
//	replace node /path with <frag>
//
// The fragment must be constant: constructors and string literals only,
// no embedded queries — the engine shreds it without evaluating anything.
type Update struct {
	Kind    UpdateKind
	Where   InsertWhere // UInsert only
	FragXML string      // UInsert, UReplace: the rendered fragment
	Path    []PathStep  // rooted target path
}

// IsUpdate reports whether src starts like an update statement. Queries
// never begin with a bare insert/delete/replace identifier, so the test
// is unambiguous.
func IsUpdate(src string) bool {
	s := strings.TrimSpace(src)
	for _, kw := range []string{"insert", "delete", "replace"} {
		if strings.HasPrefix(s, kw) {
			rest := s[len(kw):]
			if rest == "" || !isNameChar(rest[0]) {
				return true
			}
		}
	}
	return false
}

func isNameChar(b byte) bool {
	return b == '_' || b == '-' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// ParseUpdate parses an update statement.
func ParseUpdate(src string) (*Update, error) {
	p := &parser{lex: newLexer(src)}
	tok, err := p.lex.next()
	if err != nil {
		return nil, err
	}
	if tok.Kind != tokIdent {
		return nil, p.errf(tok.Pos, "expected update statement, found %s", tok.describe())
	}
	u := &Update{}
	switch tok.Text {
	case "insert":
		u.Kind = UInsert
		if err := p.expectKeyword("node"); err != nil {
			return nil, err
		}
		if u.FragXML, err = p.parseFragment(); err != nil {
			return nil, err
		}
		where, err := p.lex.next()
		if err != nil {
			return nil, err
		}
		switch {
		case where.Kind == tokIdent && where.Text == "into":
			u.Where = IntoLast
		case where.Kind == tokIdent && where.Text == "before":
			u.Where = Before
		case where.Kind == tokIdent && where.Text == "after":
			u.Where = After
		default:
			return nil, p.errf(where.Pos, "expected into/before/after, found %s", where.describe())
		}
		if u.Path, err = p.parseTargetPath(); err != nil {
			return nil, err
		}
	case "delete":
		u.Kind = UDelete
		if err := p.expectKeyword("node"); err != nil {
			return nil, err
		}
		if u.Path, err = p.parseTargetPath(); err != nil {
			return nil, err
		}
	case "replace":
		u.Kind = UReplace
		if err := p.expectKeyword("node"); err != nil {
			return nil, err
		}
		if u.Path, err = p.parseTargetPath(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("with"); err != nil {
			return nil, err
		}
		if u.FragXML, err = p.parseFragment(); err != nil {
			return nil, err
		}
	default:
		return nil, p.errf(tok.Pos, "expected insert/delete/replace, found %q", tok.Text)
	}
	end, err := p.lex.peek()
	if err != nil {
		return nil, err
	}
	if end.Kind != tokEOF {
		return nil, p.errf(end.Pos, "unexpected %s after update statement", end.describe())
	}
	return u, nil
}

// parseTargetPath parses the rooted path selecting the target nodes.
func (p *parser) parseTargetPath() ([]PathStep, error) {
	tok, err := p.lex.peek()
	if err != nil {
		return nil, err
	}
	if tok.Kind != tokSlash && tok.Kind != tokDSlash {
		return nil, p.errf(tok.Pos, "update target must be a rooted path, found %s", tok.describe())
	}
	specs, err := p.parseSteps(true)
	if err != nil {
		return nil, err
	}
	steps := make([]PathStep, len(specs))
	for i, sp := range specs {
		steps[i] = PathStep{Axis: sp.axis, Test: sp.test}
	}
	return steps, nil
}

// parseFragment parses a comma-separated list of constant constructors
// and string literals and renders them to XML.
func (p *parser) parseFragment() (string, error) {
	var dst []byte
	for {
		tok, err := p.lex.peek()
		if err != nil {
			return "", err
		}
		switch tok.Kind {
		case tokLt:
			c, err := p.parseConstructor()
			if err != nil {
				return "", err
			}
			if dst, err = p.appendConstXML(dst, c, tok.Pos); err != nil {
				return "", err
			}
		case tokString:
			p.lex.next()
			dst = xmltok.AppendEscaped(dst, tok.Text)
		default:
			return "", p.errf(tok.Pos, "expected a constructor or string in update fragment, found %s", tok.describe())
		}
		la, err := p.lex.peek()
		if err != nil {
			return "", err
		}
		if la.Kind != tokComma {
			return string(dst), nil
		}
		p.lex.next()
	}
}

// appendConstXML renders a constant constructor expression to XML; any
// non-constant part (variables, paths, embedded queries) is an error.
func (p *parser) appendConstXML(dst []byte, e Expr, pos int) ([]byte, error) {
	switch v := e.(type) {
	case Empty:
		return dst, nil
	case *TextLit:
		return xmltok.AppendEscaped(dst, v.Text), nil
	case *Seq:
		var err error
		for _, it := range v.Items {
			if dst, err = p.appendConstXML(dst, it, pos); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case *Constr:
		dst = append(dst, '<')
		dst = append(dst, v.Label...)
		if _, empty := v.Body.(Empty); empty {
			return append(dst, '/', '>'), nil
		}
		dst = append(dst, '>')
		var err error
		if dst, err = p.appendConstXML(dst, v.Body, pos); err != nil {
			return nil, err
		}
		dst = append(dst, '<', '/')
		dst = append(dst, v.Label...)
		return append(dst, '>'), nil
	default:
		return nil, p.errf(pos, "update fragment must be constant (constructors and strings only)")
	}
}

// Package xq implements the query language XQ, the composition-free XQuery
// fragment of Figure 1 of the paper:
//
//	query ::= () | <a>query</a> | query query
//	        | var | var/axis::ν
//	        | for var in var/axis::ν return query
//	        | if cond then query
//	cond  ::= var = var | var = string | true()
//	        | some var in var/axis::ν satisfies cond
//	        | cond and cond | cond or cond | not(cond)
//	axis  ::= child | descendant
//	ν     ::= a | * | text()
//
// The concrete syntax additionally accepts XQuery-style abbreviations that
// desugar into the core grammar at parse time: rooted paths (/a, //a bind
// the step to the document root), multi-step paths ($x/a//b becomes nested
// for- or some-expressions over fresh variables), comma-separated sequences,
// parenthesized sub-queries, if-conditions in parentheses, an optional
// "else ()" branch, and literal text inside element constructors (a
// documented convenience extension producing text nodes).
package xq

import "fmt"

// RootVar is the reserved variable bound to the document root node. The
// leading '#' makes it unwritable in the surface syntax, so it can never
// collide with a user variable.
const RootVar = "#doc"

// Axis is a navigation axis.
type Axis uint8

// The two axes of XQ.
const (
	Child Axis = iota
	Descendant
)

// String returns the XQuery axis name.
func (a Axis) String() string {
	if a == Descendant {
		return "descendant"
	}
	return "child"
}

// TestKind discriminates node tests.
type TestKind uint8

// Node test kinds: a label test (ν = a), the wildcard (ν = *) and the text
// node test (ν = text()).
const (
	TestLabel TestKind = iota
	TestStar
	TestText
)

// NodeTest is the ν of a step.
type NodeTest struct {
	Kind  TestKind
	Label string // set only for TestLabel
}

// String returns the surface syntax of the node test.
func (t NodeTest) String() string {
	switch t.Kind {
	case TestStar:
		return "*"
	case TestText:
		return "text()"
	}
	return t.Label
}

// Step is a single navigation step var/axis::ν. Base names the variable the
// step starts from (possibly RootVar).
type Step struct {
	Base string
	Axis Axis
	Test NodeTest
}

// String returns the surface syntax of the step.
func (s Step) String() string {
	sep := "/"
	if s.Axis == Descendant {
		sep = "//"
	}
	base := "$" + s.Base
	if s.Base == RootVar {
		base = ""
	}
	return base + sep + s.Test.String()
}

// Expr is an XQ query expression.
type Expr interface {
	isExpr()
	fmt.Stringer
}

// Empty is the empty sequence ().
type Empty struct{}

// Constr is the element constructor <Label>Body</Label>.
type Constr struct {
	Label string
	Body  Expr
}

// Seq is the concatenation query query (n-ary for convenience).
type Seq struct {
	Items []Expr
}

// VarRef is a variable use $x as a query, evaluating to the bound node.
type VarRef struct {
	Name string
}

// PathExpr is the single-step navigation expression var/axis::ν.
type PathExpr struct {
	Step Step
}

// For is the iteration for Var in Step return Body.
type For struct {
	Var  string
	In   Step
	Body Expr
}

// If is the conditional if Cond then Then (empty else branch).
type If struct {
	Cond Cond
	Then Expr
}

// TextLit is a literal text node constructor, a convenience extension for
// literal character data inside element constructors.
type TextLit struct {
	Text string
}

func (Empty) isExpr()     {}
func (*Constr) isExpr()   {}
func (*Seq) isExpr()      {}
func (*VarRef) isExpr()   {}
func (*PathExpr) isExpr() {}
func (*For) isExpr()      {}
func (*If) isExpr()       {}
func (*TextLit) isExpr()  {}

// Cond is an XQ condition.
type Cond interface {
	isCond()
	fmt.Stringer
}

// True is the condition true().
type True struct{}

// VarEqVar is the comparison $x = $y (both must bind to text nodes).
type VarEqVar struct {
	Left, Right string
}

// VarEqStr is the comparison $x = "s" ($x must bind to a text node).
type VarEqStr struct {
	Var string
	Str string
}

// Some is the existential some Var in Step satisfies Sat.
type Some struct {
	Var string
	In  Step
	Sat Cond
}

// And is the conjunction Cond and Cond.
type And struct {
	Left, Right Cond
}

// Or is the disjunction Cond or Cond.
type Or struct {
	Left, Right Cond
}

// Not is the negation not(Cond).
type Not struct {
	Inner Cond
}

func (True) isCond()      {}
func (*VarEqVar) isCond() {}
func (*VarEqStr) isCond() {}
func (*Some) isCond()     {}
func (*And) isCond()      {}
func (*Or) isCond()       {}
func (*Not) isCond()      {}

// FreeVars returns the set of variables used but not bound in e, excluding
// RootVar.
func FreeVars(e Expr) map[string]bool {
	free := map[string]bool{}
	collectExprVars(e, map[string]bool{RootVar: true}, free)
	return free
}

func useVar(name string, bound, free map[string]bool) {
	if !bound[name] {
		free[name] = true
	}
}

func collectExprVars(e Expr, bound, free map[string]bool) {
	switch e := e.(type) {
	case Empty, *TextLit, nil:
	case *Constr:
		collectExprVars(e.Body, bound, free)
	case *Seq:
		for _, it := range e.Items {
			collectExprVars(it, bound, free)
		}
	case *VarRef:
		useVar(e.Name, bound, free)
	case *PathExpr:
		useVar(e.Step.Base, bound, free)
	case *For:
		useVar(e.In.Base, bound, free)
		inner := withBound(bound, e.Var)
		collectExprVars(e.Body, inner, free)
	case *If:
		collectCondVars(e.Cond, bound, free)
		collectExprVars(e.Then, bound, free)
	}
}

func collectCondVars(c Cond, bound, free map[string]bool) {
	switch c := c.(type) {
	case True:
	case *VarEqVar:
		useVar(c.Left, bound, free)
		useVar(c.Right, bound, free)
	case *VarEqStr:
		useVar(c.Var, bound, free)
	case *Some:
		useVar(c.In.Base, bound, free)
		inner := withBound(bound, c.Var)
		collectCondVars(c.Sat, inner, free)
	case *And:
		collectCondVars(c.Left, bound, free)
		collectCondVars(c.Right, bound, free)
	case *Or:
		collectCondVars(c.Left, bound, free)
		collectCondVars(c.Right, bound, free)
	case *Not:
		collectCondVars(c.Inner, bound, free)
	}
}

func withBound(bound map[string]bool, name string) map[string]bool {
	inner := make(map[string]bool, len(bound)+1)
	for k := range bound {
		inner[k] = true
	}
	inner[name] = true
	return inner
}

// FreeVarsCond returns the variables used but not bound in a condition,
// excluding RootVar.
func FreeVarsCond(c Cond) map[string]bool {
	free := map[string]bool{}
	collectCondVars(c, map[string]bool{RootVar: true}, free)
	return free
}

// Validate checks that every variable used in e is bound by an enclosing
// for- or some-expression (or is the document root).
func Validate(e Expr) error {
	free := FreeVars(e)
	if len(free) == 0 {
		return nil
	}
	for name := range free {
		return fmt.Errorf("xq: unbound variable $%s", name)
	}
	return nil
}

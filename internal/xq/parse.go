package xq

import (
	"fmt"
	"strings"
)

// Parse parses an XQ query and returns its core-grammar AST. All surface
// sugar (rooted paths, multi-step paths, non-empty else branches,
// comparisons against paths) is desugared during parsing, and the result is
// validated for unbound variables.
func Parse(src string) (Expr, error) {
	p := &parser{lex: newLexer(src)}
	e, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	tok, err := p.lex.peek()
	if err != nil {
		return nil, err
	}
	if tok.Kind != tokEOF {
		return nil, p.errf(tok.Pos, "unexpected %s after query", tok.describe())
	}
	if err := Validate(e); err != nil {
		return nil, err
	}
	return e, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	lex *lexer
	gen int // fresh-variable counter for desugaring
}

func (p *parser) errf(pos int, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) fresh() string {
	p.gen++
	return fmt.Sprintf("#g%d", p.gen)
}

func (p *parser) expect(kind tokKind) (token, error) {
	tok, err := p.lex.next()
	if err != nil {
		return token{}, err
	}
	if tok.Kind != kind {
		return token{}, p.errf(tok.Pos, "expected %s, found %s", kind, tok.describe())
	}
	return tok, nil
}

func (p *parser) expectKeyword(word string) error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	if tok.Kind != tokIdent || tok.Text != word {
		return p.errf(tok.Pos, "expected %q, found %s", word, tok.describe())
	}
	return nil
}

func (p *parser) peekKeyword(word string) (bool, error) {
	tok, err := p.lex.peek()
	if err != nil {
		return false, err
	}
	return tok.Kind == tokIdent && tok.Text == word, nil
}

// parseSeq parses a comma-separated sequence of single expressions.
func (p *parser) parseSeq() (Expr, error) {
	first, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	items := []Expr{first}
	for {
		tok, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if tok.Kind != tokComma {
			break
		}
		p.lex.next()
		next, err := p.parseSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, next)
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return &Seq{Items: items}, nil
}

func (p *parser) parseSingle() (Expr, error) {
	tok, err := p.lex.peek()
	if err != nil {
		return nil, err
	}
	switch tok.Kind {
	case tokLParen:
		p.lex.next()
		inner, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if inner.Kind == tokRParen {
			p.lex.next()
			return Empty{}, nil
		}
		e, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokLt:
		return p.parseConstructor()
	case tokIdent:
		switch tok.Text {
		case "for":
			return p.parseFor()
		case "if":
			return p.parseIf()
		}
		return nil, p.errf(tok.Pos, "unexpected %s at start of expression", tok.describe())
	case tokVar:
		p.lex.next()
		steps, err := p.parseSteps(false)
		if err != nil {
			return nil, err
		}
		if len(steps) == 0 {
			return &VarRef{Name: tok.Text}, nil
		}
		return p.desugarPathExpr(tok.Text, steps), nil
	case tokSlash, tokDSlash:
		steps, err := p.parseSteps(true)
		if err != nil {
			return nil, err
		}
		return p.desugarPathExpr(RootVar, steps), nil
	case tokString:
		p.lex.next()
		return &TextLit{Text: tok.Text}, nil
	default:
		return nil, p.errf(tok.Pos, "unexpected %s at start of expression", tok.describe())
	}
}

// stepSpec is a parsed axis::test pair before a base variable is attached.
type stepSpec struct {
	axis Axis
	test NodeTest
}

// parseSteps parses zero or more /step or //step items. If require is true
// at least one step must be present.
func (p *parser) parseSteps(require bool) ([]stepSpec, error) {
	var steps []stepSpec
	for {
		tok, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		var axis Axis
		switch tok.Kind {
		case tokSlash:
			axis = Child
		case tokDSlash:
			axis = Descendant
		default:
			if require && len(steps) == 0 {
				return nil, p.errf(tok.Pos, "expected path step, found %s", tok.describe())
			}
			return steps, nil
		}
		p.lex.next()
		// Optional explicit axis after '/': child:: or descendant::.
		nt, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		if nt.Kind == tokAxis {
			if tok.Kind == tokDSlash {
				return nil, p.errf(nt.Pos, "explicit axis after '//' is not allowed")
			}
			if nt.Text == "descendant" {
				axis = Descendant
			}
			p.lex.next()
		}
		test, err := p.parseNodeTest()
		if err != nil {
			return nil, err
		}
		steps = append(steps, stepSpec{axis: axis, test: test})
	}
}

func (p *parser) parseNodeTest() (NodeTest, error) {
	tok, err := p.lex.next()
	if err != nil {
		return NodeTest{}, err
	}
	switch tok.Kind {
	case tokStar:
		return NodeTest{Kind: TestStar}, nil
	case tokIdent:
		if tok.Text == "text" {
			// text() is the text node test; a bare "text" is a label.
			if la, err := p.lex.peek(); err == nil && la.Kind == tokLParen {
				p.lex.next()
				if _, err := p.expect(tokRParen); err != nil {
					return NodeTest{}, err
				}
				return NodeTest{Kind: TestText}, nil
			}
		}
		return NodeTest{Kind: TestLabel, Label: tok.Text}, nil
	default:
		return NodeTest{}, p.errf(tok.Pos, "expected node test, found %s", tok.describe())
	}
}

// desugarPathExpr turns base + steps into the core grammar: a single-step
// PathExpr, or nested for-expressions over fresh variables for longer paths.
func (p *parser) desugarPathExpr(base string, steps []stepSpec) Expr {
	if len(steps) == 1 {
		return &PathExpr{Step: Step{Base: base, Axis: steps[0].axis, Test: steps[0].test}}
	}
	g := p.fresh()
	inner := p.desugarPathExpr(g, steps[1:])
	return &For{
		Var:  g,
		In:   Step{Base: base, Axis: steps[0].axis, Test: steps[0].test},
		Body: inner,
	}
}

// parseInPath parses the binding sequence of a for- or some-expression:
// a variable or rooted path followed by at least one step. It returns the
// base variable and the steps.
func (p *parser) parseInPath() (string, []stepSpec, error) {
	tok, err := p.lex.peek()
	if err != nil {
		return "", nil, err
	}
	switch tok.Kind {
	case tokVar:
		p.lex.next()
		steps, err := p.parseSteps(true)
		if err != nil {
			return "", nil, err
		}
		return tok.Text, steps, nil
	case tokSlash, tokDSlash:
		steps, err := p.parseSteps(true)
		if err != nil {
			return "", nil, err
		}
		return RootVar, steps, nil
	default:
		return "", nil, p.errf(tok.Pos, "expected path after 'in', found %s", tok.describe())
	}
}

func (p *parser) parseFor() (Expr, error) {
	if err := p.expectKeyword("for"); err != nil {
		return nil, err
	}
	v, err := p.expect(tokVar)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	base, steps, err := p.parseInPath()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("return"); err != nil {
		return nil, err
	}
	body, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	// Desugar multi-step binding paths into nested fors, binding the user
	// variable on the last step.
	return p.buildForChain(v.Text, base, steps, body), nil
}

func (p *parser) buildForChain(userVar, base string, steps []stepSpec, body Expr) Expr {
	if len(steps) == 1 {
		return &For{Var: userVar, In: Step{Base: base, Axis: steps[0].axis, Test: steps[0].test}, Body: body}
	}
	g := p.fresh()
	inner := p.buildForChain(userVar, g, steps[1:], body)
	return &For{Var: g, In: Step{Base: base, Axis: steps[0].axis, Test: steps[0].test}, Body: inner}
}

func (p *parser) parseIf() (Expr, error) {
	if err := p.expectKeyword("if"); err != nil {
		return nil, err
	}
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	then, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	hasElse, err := p.peekKeyword("else")
	if err != nil {
		return nil, err
	}
	if !hasElse {
		return &If{Cond: cond, Then: then}, nil
	}
	p.lex.next()
	els, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	if _, ok := els.(Empty); ok {
		return &If{Cond: cond, Then: then}, nil
	}
	// Non-empty else is sugar: if c then a else b
	// ≡ (if c then a) (if not(c) then b).
	return &Seq{Items: []Expr{
		&If{Cond: cond, Then: then},
		&If{Cond: &Not{Inner: cond}, Then: els},
	}}, nil
}

// parseCond parses a condition with the precedence or < and < primary.
func (p *parser) parseCond() (Cond, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		isOr, err := p.peekKeyword("or")
		if err != nil {
			return nil, err
		}
		if !isOr {
			return left, nil
		}
		p.lex.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Or{Left: left, Right: right}
	}
}

func (p *parser) parseAnd() (Cond, error) {
	left, err := p.parsePrimCond()
	if err != nil {
		return nil, err
	}
	for {
		isAnd, err := p.peekKeyword("and")
		if err != nil {
			return nil, err
		}
		if !isAnd {
			return left, nil
		}
		p.lex.next()
		right, err := p.parsePrimCond()
		if err != nil {
			return nil, err
		}
		left = &And{Left: left, Right: right}
	}
}

func (p *parser) parsePrimCond() (Cond, error) {
	tok, err := p.lex.peek()
	if err != nil {
		return nil, err
	}
	switch tok.Kind {
	case tokLParen:
		p.lex.next()
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return c, nil
	case tokIdent:
		switch tok.Text {
		case "true":
			p.lex.next()
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return True{}, nil
		case "not":
			p.lex.next()
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			c, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return &Not{Inner: c}, nil
		case "some":
			return p.parseSome()
		}
		return nil, p.errf(tok.Pos, "unexpected %s in condition", tok.describe())
	case tokVar, tokSlash, tokDSlash:
		return p.parseComparison()
	default:
		return nil, p.errf(tok.Pos, "unexpected %s in condition", tok.describe())
	}
}

func (p *parser) parseSome() (Cond, error) {
	if err := p.expectKeyword("some"); err != nil {
		return nil, err
	}
	v, err := p.expect(tokVar)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	base, steps, err := p.parseInPath()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("satisfies"); err != nil {
		return nil, err
	}
	sat, err := p.parsePrimCond()
	if err != nil {
		return nil, err
	}
	return p.buildSomeChain(v.Text, base, steps, sat), nil
}

func (p *parser) buildSomeChain(userVar, base string, steps []stepSpec, sat Cond) Cond {
	if len(steps) == 1 {
		return &Some{Var: userVar, In: Step{Base: base, Axis: steps[0].axis, Test: steps[0].test}, Sat: sat}
	}
	g := p.fresh()
	inner := p.buildSomeChain(userVar, g, steps[1:], sat)
	return &Some{Var: g, In: Step{Base: base, Axis: steps[0].axis, Test: steps[0].test}, Sat: inner}
}

// comparand is one side of a comparison: either a plain variable, or a
// path, which desugars the whole comparison into an existential.
type comparand struct {
	varName string
	base    string
	steps   []stepSpec
}

func (c comparand) isPath() bool { return len(c.steps) > 0 }

func (p *parser) parseComparand() (comparand, error) {
	tok, err := p.lex.peek()
	if err != nil {
		return comparand{}, err
	}
	switch tok.Kind {
	case tokVar:
		p.lex.next()
		steps, err := p.parseSteps(false)
		if err != nil {
			return comparand{}, err
		}
		return comparand{varName: tok.Text, base: tok.Text, steps: steps}, nil
	case tokSlash, tokDSlash:
		steps, err := p.parseSteps(true)
		if err != nil {
			return comparand{}, err
		}
		return comparand{base: RootVar, steps: steps}, nil
	default:
		return comparand{}, p.errf(tok.Pos, "expected variable or path in comparison, found %s", tok.describe())
	}
}

// parseComparison parses lhs = rhs where each side is a variable, a path
// (desugared into some-expressions) or, on the right, a string literal.
func (p *parser) parseComparison() (Cond, error) {
	lhs, err := p.parseComparand()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEq); err != nil {
		return nil, err
	}
	rtok, err := p.lex.peek()
	if err != nil {
		return nil, err
	}
	if rtok.Kind == tokString {
		p.lex.next()
		if !lhs.isPath() {
			return &VarEqStr{Var: lhs.varName, Str: rtok.Text}, nil
		}
		// some $g in lhs-path satisfies $g = "s"
		g := p.fresh()
		return p.buildSomeChain(g, lhs.base, lhs.steps, &VarEqStr{Var: g, Str: rtok.Text}), nil
	}
	rhs, err := p.parseComparand()
	if err != nil {
		return nil, err
	}
	// Wrap paths on either side into existentials around the core
	// var-to-var comparison.
	lv, rv := lhs.varName, rhs.varName
	var build func(core Cond) Cond = func(core Cond) Cond { return core }
	if lhs.isPath() {
		g := p.fresh()
		lv = g
		prev := build
		build = func(core Cond) Cond {
			return prev(p.buildSomeChain(g, lhs.base, lhs.steps, core))
		}
	}
	if rhs.isPath() {
		g := p.fresh()
		rv = g
		prev := build
		build = func(core Cond) Cond {
			return prev(p.buildSomeChain(g, rhs.base, rhs.steps, core))
		}
	}
	return build(&VarEqVar{Left: lv, Right: rv}), nil
}

// parseConstructor parses <a>content</a>, <a/>, with content items being
// raw text, nested constructors, and {query} blocks.
func (p *parser) parseConstructor() (Expr, error) {
	if _, err := p.expect(tokLt); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	tok, err := p.lex.next()
	if err != nil {
		return nil, err
	}
	switch tok.Kind {
	case tokSlashGt:
		return &Constr{Label: name.Text, Body: Empty{}}, nil
	case tokGt:
	default:
		return nil, p.errf(tok.Pos, "expected '>' or '/>' in constructor <%s>, found %s", name.Text, tok.describe())
	}
	var items []Expr
	for {
		raw, err := p.lex.rawText()
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(raw) != "" {
			items = append(items, &TextLit{Text: raw})
		}
		tok, err := p.lex.peek()
		if err != nil {
			return nil, err
		}
		switch tok.Kind {
		case tokLBrace:
			p.lex.next()
			inner, err := p.parseSeq()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBrace); err != nil {
				return nil, err
			}
			items = append(items, inner)
		case tokLt:
			nested, err := p.parseConstructor()
			if err != nil {
				return nil, err
			}
			items = append(items, nested)
		case tokLtSlash:
			p.lex.next()
			end, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if end.Text != name.Text {
				return nil, p.errf(end.Pos, "mismatched constructor: </%s> closes <%s>", end.Text, name.Text)
			}
			if _, err := p.expect(tokGt); err != nil {
				return nil, err
			}
			var body Expr
			switch len(items) {
			case 0:
				body = Empty{}
			case 1:
				body = items[0]
			default:
				body = &Seq{Items: items}
			}
			return &Constr{Label: name.Text, Body: body}, nil
		default:
			return nil, p.errf(tok.Pos, "unexpected %s in constructor <%s>", tok.describe(), name.Text)
		}
	}
}

// Package xmltok provides a streaming XML tokenizer.
//
// It is the "scanner for XML documents" from the skeleton code the paper
// hands to students, rebuilt as a stand-alone substrate: a hand-rolled,
// allocation-conscious pull tokenizer that the DOM builder (milestone 1) and
// the XASR shredder (milestone 2) both consume. It handles the subset of XML
// the project needs — elements, attributes, character data, CDATA sections,
// character and predefined entity references — and skips comments,
// processing instructions, the XML declaration and DOCTYPE. Namespaces are
// not interpreted; a qualified name is just a label.
package xmltok

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Kind identifies the type of a Token.
type Kind int

// Token kinds. Self-closing elements <a/> are reported as StartElement
// immediately followed by EndElement.
const (
	StartElement Kind = iota // <name attr="v" ...>
	EndElement               // </name>
	Text                     // character data (entity references resolved)
)

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	switch k {
	case StartElement:
		return "StartElement"
	case EndElement:
		return "EndElement"
	case Text:
		return "Text"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Attr is a single attribute of a start-element token.
type Attr struct {
	Name  string
	Value string
}

// Token is one XML event. Name is set for element tokens, Text for text
// tokens. Attrs is set only on StartElement and is valid until the next
// call to Next.
type Token struct {
	Kind  Kind
	Name  string
	Text  string
	Attrs []Attr
}

// SyntaxError reports malformed XML together with the byte offset at which
// it was detected.
type SyntaxError struct {
	Offset int64
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xml syntax error at offset %d: %s", e.Offset, e.Msg)
}

// Options configures a Tokenizer.
type Options struct {
	// KeepWhitespace reports whitespace-only character data as Text tokens.
	// By default such runs are dropped, matching the data-oriented documents
	// (DBLP, TREEBANK) used in the paper, whose pretty-printing whitespace
	// carries no information.
	KeepWhitespace bool
}

// Tokenizer is a pull-based XML scanner. Create one with New and call Next
// until it returns io.EOF.
type Tokenizer struct {
	r      *bufio.Reader
	opts   Options
	offset int64
	stack  []string // open element names, for well-formedness checking
	// pending holds an EndElement synthesized for a self-closing tag.
	pending *Token
	buf     strings.Builder
	done    bool
}

// New returns a Tokenizer reading from r with default options.
func New(r io.Reader) *Tokenizer { return NewWithOptions(r, Options{}) }

// NewWithOptions returns a Tokenizer reading from r with the given options.
func NewWithOptions(r io.Reader, opts Options) *Tokenizer {
	return &Tokenizer{r: bufio.NewReaderSize(r, 64<<10), opts: opts}
}

func (t *Tokenizer) errf(format string, args ...any) error {
	return &SyntaxError{Offset: t.offset, Msg: fmt.Sprintf(format, args...)}
}

func (t *Tokenizer) readByte() (byte, error) {
	b, err := t.r.ReadByte()
	if err == nil {
		t.offset++
	}
	return b, err
}

func (t *Tokenizer) unreadByte() {
	// bufio guarantees one byte of pushback after a successful ReadByte.
	_ = t.r.UnreadByte()
	t.offset--
}

// Depth returns the number of currently open elements.
func (t *Tokenizer) Depth() int { return len(t.stack) }

// Next returns the next token. At end of input it returns io.EOF; if
// elements are still open at EOF it returns a SyntaxError instead.
func (t *Tokenizer) Next() (Token, error) {
	if t.pending != nil {
		tok := *t.pending
		t.pending = nil
		return tok, nil
	}
	for {
		head, err := t.r.Peek(1)
		if err == io.EOF {
			if len(t.stack) > 0 {
				return Token{}, t.errf("unexpected EOF: %d unclosed element(s), innermost <%s>", len(t.stack), t.stack[len(t.stack)-1])
			}
			t.done = true
			return Token{}, io.EOF
		}
		if err != nil {
			return Token{}, err
		}
		if head[0] == '<' {
			t.readByte()
			tok, skip, err := t.readMarkup()
			if err != nil {
				return Token{}, err
			}
			if skip {
				continue
			}
			return tok, nil
		}
		text, err := t.readText()
		if err != nil {
			return Token{}, err
		}
		if text == "" {
			continue // whitespace-only run dropped
		}
		if len(t.stack) == 0 && !t.opts.KeepWhitespace {
			// Text outside the document element: only whitespace is legal,
			// and whitespace was already dropped above.
			return Token{}, t.errf("character data outside document element: %q", clip(text))
		}
		return Token{Kind: Text, Text: text}, nil
	}
}

func clip(s string) string {
	if len(s) > 24 {
		return s[:24] + "..."
	}
	return s
}

// readMarkup parses everything after a '<'. skip is true for markup that
// produces no token (comments, PIs, declarations).
func (t *Tokenizer) readMarkup() (tok Token, skip bool, err error) {
	b, err := t.readByte()
	if err != nil {
		return Token{}, false, t.errf("unexpected EOF after '<'")
	}
	switch b {
	case '?':
		return Token{}, true, t.skipPI()
	case '!':
		return Token{}, true, t.skipDecl()
	case '/':
		tok, err = t.readEndTag()
		return tok, false, err
	default:
		t.unreadByte()
		tok, err = t.readStartTag()
		return tok, false, err
	}
}

// skipPI consumes a processing instruction (or the XML declaration) after
// "<?" up to and including "?>".
func (t *Tokenizer) skipPI() error {
	var prev byte
	for {
		b, err := t.readByte()
		if err != nil {
			return t.errf("unterminated processing instruction")
		}
		if prev == '?' && b == '>' {
			return nil
		}
		prev = b
	}
}

// skipDecl consumes markup after "<!": comments, CDATA handled separately,
// and DOCTYPE or other declarations (with nested bracket support).
func (t *Tokenizer) skipDecl() error {
	// Peek to distinguish <!-- , <![CDATA[ and <!DOCTYPE.
	head, err := t.r.Peek(2)
	if err == nil && string(head) == "--" {
		t.offset += 2
		t.r.Discard(2)
		return t.skipComment()
	}
	if head7, err := t.r.Peek(7); err == nil && string(head7) == "[CDATA[" {
		// CDATA is handled by readText; reaching here means CDATA appeared
		// where text was not being collected, i.e. we were called from
		// readMarkup. Treat it as a text token by pushing back: simplest is
		// to parse it here and stash as pending text. CDATA between markup
		// is rare; we parse it directly.
		t.offset += 7
		t.r.Discard(7)
		text, err := t.readCDATA()
		if err != nil {
			return err
		}
		if strings.TrimSpace(text) != "" || t.opts.KeepWhitespace {
			t.pending = &Token{Kind: Text, Text: text}
		}
		return nil
	}
	// DOCTYPE or similar: consume until the matching '>' accounting for
	// one level of internal subset brackets.
	depth := 0
	for {
		b, err := t.readByte()
		if err != nil {
			return t.errf("unterminated declaration")
		}
		switch b {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				return nil
			}
		}
	}
}

func (t *Tokenizer) skipComment() error {
	var p1, p2 byte
	for {
		b, err := t.readByte()
		if err != nil {
			return t.errf("unterminated comment")
		}
		if p1 == '-' && p2 == '-' && b == '>' {
			return nil
		}
		p1, p2 = p2, b
	}
}

func (t *Tokenizer) readCDATA() (string, error) {
	t.buf.Reset()
	var p1, p2 byte
	for {
		b, err := t.readByte()
		if err != nil {
			return "", t.errf("unterminated CDATA section")
		}
		if p1 == ']' && p2 == ']' && b == '>' {
			s := t.buf.String()
			return s[:len(s)-2], nil // drop the buffered "]]"
		}
		t.buf.WriteByte(b)
		p1, p2 = p2, b
	}
}

func isNameStart(b byte) bool {
	return b == '_' || b == ':' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || b >= 0x80
}

func isNameChar(b byte) bool {
	return isNameStart(b) || b == '-' || b == '.' || (b >= '0' && b <= '9')
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

func (t *Tokenizer) readName() (string, error) {
	b, err := t.readByte()
	if err != nil {
		return "", t.errf("unexpected EOF reading name")
	}
	if !isNameStart(b) {
		return "", t.errf("invalid name start character %q", string(b))
	}
	t.buf.Reset()
	t.buf.WriteByte(b)
	for {
		b, err := t.readByte()
		if err != nil {
			return "", t.errf("unexpected EOF in name")
		}
		if !isNameChar(b) {
			t.unreadByte()
			return t.buf.String(), nil
		}
		t.buf.WriteByte(b)
	}
}

func (t *Tokenizer) skipSpace() error {
	for {
		b, err := t.readByte()
		if err != nil {
			return err
		}
		if !isSpace(b) {
			t.unreadByte()
			return nil
		}
	}
}

func (t *Tokenizer) readStartTag() (Token, error) {
	name, err := t.readName()
	if err != nil {
		return Token{}, err
	}
	tok := Token{Kind: StartElement, Name: name}
	for {
		if err := t.skipSpace(); err != nil {
			return Token{}, t.errf("unexpected EOF in start tag <%s>", name)
		}
		b, err := t.readByte()
		if err != nil {
			return Token{}, t.errf("unexpected EOF in start tag <%s>", name)
		}
		switch {
		case b == '>':
			t.stack = append(t.stack, name)
			return tok, nil
		case b == '/':
			b2, err := t.readByte()
			if err != nil || b2 != '>' {
				return Token{}, t.errf("expected '>' after '/' in tag <%s>", name)
			}
			// Self-closing: synthesize the matching end tag.
			t.pending = &Token{Kind: EndElement, Name: name}
			return tok, nil
		default:
			t.unreadByte()
			attr, err := t.readAttr(name)
			if err != nil {
				return Token{}, err
			}
			tok.Attrs = append(tok.Attrs, attr)
		}
	}
}

func (t *Tokenizer) readAttr(elem string) (Attr, error) {
	name, err := t.readName()
	if err != nil {
		return Attr{}, t.errf("bad attribute name in <%s>: %v", elem, err)
	}
	if err := t.skipSpace(); err != nil {
		return Attr{}, t.errf("unexpected EOF in attribute %s", name)
	}
	b, err := t.readByte()
	if err != nil || b != '=' {
		return Attr{}, t.errf("expected '=' after attribute name %s", name)
	}
	if err := t.skipSpace(); err != nil {
		return Attr{}, t.errf("unexpected EOF in attribute %s", name)
	}
	quote, err := t.readByte()
	if err != nil || (quote != '"' && quote != '\'') {
		return Attr{}, t.errf("expected quoted value for attribute %s", name)
	}
	t.buf.Reset()
	for {
		b, err := t.readByte()
		if err != nil {
			return Attr{}, t.errf("unterminated value for attribute %s", name)
		}
		if b == quote {
			val, err := t.decodeEntities(t.buf.String())
			if err != nil {
				return Attr{}, err
			}
			return Attr{Name: name, Value: val}, nil
		}
		t.buf.WriteByte(b)
	}
}

func (t *Tokenizer) readEndTag() (Token, error) {
	name, err := t.readName()
	if err != nil {
		return Token{}, err
	}
	if err := t.skipSpace(); err != nil {
		return Token{}, t.errf("unexpected EOF in end tag </%s>", name)
	}
	b, err := t.readByte()
	if err != nil || b != '>' {
		return Token{}, t.errf("expected '>' in end tag </%s>", name)
	}
	if len(t.stack) == 0 {
		return Token{}, t.errf("end tag </%s> with no open element", name)
	}
	top := t.stack[len(t.stack)-1]
	if top != name {
		return Token{}, t.errf("mismatched end tag: </%s> closes <%s>", name, top)
	}
	t.stack = t.stack[:len(t.stack)-1]
	return Token{Kind: EndElement, Name: name}, nil
}

// readText collects character data up to the next '<'. CDATA sections are
// folded in verbatim (no entity decoding inside them); entity references
// in ordinary character data are resolved. Whitespace-only runs return ""
// unless KeepWhitespace. The terminating '<' is left unconsumed.
func (t *Tokenizer) readText() (string, error) {
	var out strings.Builder
	t.buf.Reset()
	// flush decodes the pending ordinary-text segment into out.
	flush := func() error {
		if t.buf.Len() == 0 {
			return nil
		}
		dec, err := t.decodeEntities(t.buf.String())
		if err != nil {
			return err
		}
		out.WriteString(dec)
		t.buf.Reset()
		return nil
	}
	for {
		head, err := t.r.Peek(1)
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", err
		}
		if head[0] == '<' {
			// CDATA continues the text run; anything else ends it.
			if h, err := t.r.Peek(9); err == nil && string(h) == "<![CDATA[" {
				t.offset += 9
				t.r.Discard(9)
				if err := flush(); err != nil {
					return "", err
				}
				// readCDATA uses t.buf internally; its result is verbatim.
				cd, err := t.readCDATA()
				if err != nil {
					return "", err
				}
				t.buf.Reset()
				out.WriteString(cd)
				continue
			}
			break
		}
		b, _ := t.readByte()
		t.buf.WriteByte(b)
	}
	if err := flush(); err != nil {
		return "", err
	}
	text := out.String()
	if !t.opts.KeepWhitespace && strings.TrimSpace(text) == "" {
		return "", nil
	}
	return text, nil
}

// decodeEntities resolves the five predefined entities and numeric
// character references. Unknown entities are an error.
func (t *Tokenizer) decodeEntities(s string) (string, error) {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for {
		b.WriteString(s[:amp])
		s = s[amp:]
		semi := strings.IndexByte(s, ';')
		if semi < 0 {
			return "", t.errf("unterminated entity reference %q", clip(s))
		}
		ent := s[1:semi]
		switch {
		case ent == "lt":
			b.WriteByte('<')
		case ent == "gt":
			b.WriteByte('>')
		case ent == "amp":
			b.WriteByte('&')
		case ent == "apos":
			b.WriteByte('\'')
		case ent == "quot":
			b.WriteByte('"')
		case strings.HasPrefix(ent, "#x") || strings.HasPrefix(ent, "#X"):
			n, err := strconv.ParseUint(ent[2:], 16, 32)
			if err != nil {
				return "", t.errf("bad character reference &%s;", ent)
			}
			b.WriteRune(rune(n))
		case strings.HasPrefix(ent, "#"):
			n, err := strconv.ParseUint(ent[1:], 10, 32)
			if err != nil {
				return "", t.errf("bad character reference &%s;", ent)
			}
			b.WriteRune(rune(n))
		default:
			return "", t.errf("unknown entity &%s;", ent)
		}
		s = s[semi+1:]
		amp = strings.IndexByte(s, '&')
		if amp < 0 {
			b.WriteString(s)
			return b.String(), nil
		}
	}
}

// EscapeText writes s to b with '<', '>' and '&' escaped, suitable for
// character data content.
func EscapeText(b *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		default:
			b.WriteByte(s[i])
		}
	}
}

// AppendEscaped appends s to dst with '<', '>' and '&' escaped and returns
// the extended slice.
func AppendEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		case '&':
			dst = append(dst, "&amp;"...)
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

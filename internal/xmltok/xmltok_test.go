package xmltok

import (
	"io"
	"strings"
	"testing"
)

func tokens(t *testing.T, src string, opts Options) []Token {
	t.Helper()
	tz := NewWithOptions(strings.NewReader(src), opts)
	var out []Token
	for {
		tok, err := tz.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("tokenize %q: %v", src, err)
		}
		// Copy attrs (valid only until next call).
		tok.Attrs = append([]Attr(nil), tok.Attrs...)
		out = append(out, tok)
	}
}

func TestBasicDocument(t *testing.T) {
	got := tokens(t, `<a><b>text</b><c/></a>`, Options{})
	want := []struct {
		kind Kind
		name string
		text string
	}{
		{StartElement, "a", ""},
		{StartElement, "b", ""},
		{Text, "", "text"},
		{EndElement, "b", ""},
		{StartElement, "c", ""},
		{EndElement, "c", ""},
		{EndElement, "a", ""},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Kind != w.kind || got[i].Name != w.name || got[i].Text != w.text {
			t.Errorf("token %d: got %v %q %q", i, got[i].Kind, got[i].Name, got[i].Text)
		}
	}
}

func TestAttributes(t *testing.T) {
	got := tokens(t, `<a x="1" y='two&amp;three'/>`, Options{})
	if len(got) != 2 || len(got[0].Attrs) != 2 {
		t.Fatalf("tokens: %v", got)
	}
	if got[0].Attrs[0] != (Attr{Name: "x", Value: "1"}) {
		t.Errorf("attr 0: %v", got[0].Attrs[0])
	}
	if got[0].Attrs[1] != (Attr{Name: "y", Value: "two&three"}) {
		t.Errorf("attr 1: %v", got[0].Attrs[1])
	}
}

func TestEntities(t *testing.T) {
	got := tokens(t, `<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos; &#65;&#x42;</a>`, Options{})
	if got[1].Text != `<x> & "y" 'z' AB` {
		t.Errorf("entities: %q", got[1].Text)
	}
	tz := New(strings.NewReader(`<a>&unknown;</a>`))
	tz.Next() // <a>
	if _, err := tz.Next(); err == nil {
		t.Error("unknown entity accepted")
	}
}

func TestCDATA(t *testing.T) {
	got := tokens(t, `<a>pre<![CDATA[<raw> & ]]]>post</a>`, Options{})
	if len(got) != 3 {
		t.Fatalf("tokens: %v", got)
	}
	if got[1].Text != "pre<raw> & ]post" {
		t.Errorf("cdata text: %q", got[1].Text)
	}
}

func TestCommentsAndPIsSkipped(t *testing.T) {
	src := `<?xml version="1.0"?><!-- c1 --><!DOCTYPE a [<!ELEMENT a ANY>]><a><!-- <not><a><tag> -->x<?pi data?></a>`
	got := tokens(t, src, Options{})
	if len(got) != 3 || got[1].Text != "x" {
		t.Fatalf("tokens: %v", got)
	}
}

func TestWhitespaceHandling(t *testing.T) {
	src := "<a>\n  <b>x</b>\n</a>"
	got := tokens(t, src, Options{})
	if len(got) != 5 {
		t.Fatalf("whitespace not dropped: %v", got)
	}
	got = tokens(t, src, Options{KeepWhitespace: true})
	if len(got) != 7 {
		t.Fatalf("whitespace not kept: %v", got)
	}
}

func TestMalformedDocuments(t *testing.T) {
	bad := []string{
		`<a><b></a></b>`,
		`<a>`,
		`</a>`,
		`<a attr></a>`,
		`<a attr=novalue></a>`,
		`<a`,
		`<a><![CDATA[x</a>`,
		`text outside<a/>`,
	}
	for _, src := range bad {
		tz := New(strings.NewReader(src))
		var err error
		for err == nil {
			_, err = tz.Next()
		}
		if err == io.EOF {
			t.Errorf("malformed %q accepted", src)
		}
	}
}

func TestDepthTracking(t *testing.T) {
	tz := New(strings.NewReader(`<a><b>x</b></a>`))
	tz.Next()
	if tz.Depth() != 1 {
		t.Errorf("depth after <a>: %d", tz.Depth())
	}
	tz.Next()
	if tz.Depth() != 2 {
		t.Errorf("depth after <b>: %d", tz.Depth())
	}
}

func TestEscapeHelpers(t *testing.T) {
	var b strings.Builder
	EscapeText(&b, `a<b>&c`)
	if b.String() != "a&lt;b&gt;&amp;c" {
		t.Errorf("EscapeText: %q", b.String())
	}
	got := AppendEscaped(nil, `x&y<z`)
	if string(got) != "x&amp;y&lt;z" {
		t.Errorf("AppendEscaped: %q", got)
	}
}

func TestUnicodeContent(t *testing.T) {
	got := tokens(t, `<a>héllo wörld 日本</a>`, Options{})
	if got[1].Text != "héllo wörld 日本" {
		t.Errorf("unicode text: %q", got[1].Text)
	}
	got = tokens(t, `<ün><x/></ün>`, Options{})
	if got[0].Name != "ün" {
		t.Errorf("unicode name: %q", got[0].Name)
	}
}

// Package plancache caches compiled physical plans across queries. Heavy
// repeated traffic — the query-server workload — spends most of its
// per-request time in parse + optimize for query texts it has compiled
// hundreds of times before; a hit here skips both entirely.
//
// A cache entry is keyed by the normalized query text, the document it was
// compiled against, that document's statistics epoch, and the
// planner-relevant configuration. The epoch is the invalidation handle:
// reloading a document changes its statistics, which can change the
// optimal plan, so the catalog bumps the epoch and every entry compiled
// under the old one simply stops matching (and is evicted lazily by the
// LRU, or eagerly by InvalidateDoc).
//
// Cached plans are pristine: they have never been executed. Executors must
// run exec.ClonePlan copies, never the cached tree itself — plan nodes
// accumulate runtime state, so handing the same tree to two queries would
// race. The cache never returns the stored tree to two callers with
// mutation rights; Get returns the shared pristine tree for the caller to
// clone.
package plancache

import (
	"container/list"
	"strings"
	"sync"

	"xqdb/internal/exec"
	"xqdb/internal/opt"
)

// DocVersion identifies a document at one statistics epoch. The epoch
// changes whenever the document's contents or statistics change, so plans
// compiled against stale statistics can never hit.
type DocVersion struct {
	// Name is the catalog name of the document.
	Name string
	// Epoch is the document's statistics epoch (monotone per name).
	Epoch uint64
}

// Key identifies one cached plan. All fields are comparable values, so Key
// is directly usable as a map key.
type Key struct {
	Doc DocVersion
	// Query is the normalized query text (see Normalize).
	Query string
	// Cfg is the planner configuration the plan was compiled under; any
	// knob that can change the chosen plan is part of the identity.
	Cfg opt.Config
	// Merge records whether relfor merging ran before planning.
	Merge bool
}

// Stats reports cache activity. Hits+Misses is the lookup count.
type Stats struct {
	Hits          int64
	Misses        int64
	Puts          int64
	Evictions     int64
	Invalidations int64
}

// HitRate returns Hits over lookups (0 with no lookups).
func (s Stats) HitRate() float64 {
	if n := s.Hits + s.Misses; n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// Cache is a bounded LRU over compiled plans. All methods are safe for
// concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[Key]*list.Element
	lru     *list.List // front = most recent; values are *entry
	stats   Stats
}

type entry struct {
	key  Key
	plan exec.XPlan
}

// DefaultEntries is the default LRU bound.
const DefaultEntries = 256

// New returns a cache bounded to at most capEntries plans (<= 0 uses
// DefaultEntries).
func New(capEntries int) *Cache {
	if capEntries <= 0 {
		capEntries = DefaultEntries
	}
	return &Cache{cap: capEntries, entries: make(map[Key]*list.Element), lru: list.New()}
}

// Get returns the pristine compiled plan for key, if cached. Callers must
// execute an exec.ClonePlan copy, never the returned tree.
func (c *Cache) Get(key Key) (exec.XPlan, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*entry).plan, true
}

// Put stores a pristine compiled plan under key, evicting the least
// recently used entry past the bound. Re-putting an existing key replaces
// the plan (last compile wins — they are equivalent anyway).
func (c *Cache) Put(key Key, plan exec.XPlan) {
	if c == nil || plan == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Puts++
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).plan = plan
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, plan: plan})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// InvalidateDoc eagerly drops every entry for the named document across
// all epochs. Epoch bumps already prevent stale hits; this frees the
// memory of plans that can never hit again (drop, reload).
func (c *Cache) InvalidateDoc(name string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*entry); e.key.Doc.Name == name {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			n++
		}
		el = next
	}
	c.stats.Invalidations += int64(n)
	return n
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Normalize canonicalizes a query text for cache keying: runs of
// whitespace outside string literals collapse to one space and the ends
// are trimmed, so reformatting a query cannot cause a spurious miss.
// String literal contents (either quote style) are preserved byte-exact.
// Normalization never parses — a cache hit must skip the parser entirely —
// so two queries that differ beyond whitespace key separately even when
// they parse to the same tree.
func Normalize(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	var quote byte
	space := false
	for i := 0; i < len(src); i++ {
		ch := src[i]
		if quote != 0 {
			b.WriteByte(ch)
			if ch == quote {
				quote = 0
			}
			continue
		}
		switch ch {
		case '\'', '"':
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			quote = ch
			b.WriteByte(ch)
		case ' ', '\t', '\n', '\r':
			space = true
		default:
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			b.WriteByte(ch)
		}
	}
	return b.String()
}

package plancache

import (
	"fmt"
	"sync"
	"testing"

	"xqdb/internal/exec"
	"xqdb/internal/opt"
)

func key(doc string, epoch uint64, q string) Key {
	return Key{Doc: DocVersion{Name: doc, Epoch: epoch}, Query: Normalize(q), Cfg: opt.M4(), Merge: true}
}

func plan(s string) exec.XPlan { return &exec.XText{Content: s} }

func TestHitMissAndEpochInvalidation(t *testing.T) {
	c := New(8)
	k := key("dblp", 1, "for $x in //a return $x")
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k, plan("p1"))
	if p, ok := c.Get(k); !ok || p.(*exec.XText).Content != "p1" {
		t.Fatalf("miss after put: %v %v", p, ok)
	}
	// Whitespace-reformatted text hits the same entry.
	if _, ok := c.Get(key("dblp", 1, "  for   $x in\n\t//a return $x ")); !ok {
		t.Fatal("normalized variant missed")
	}
	// A stats-epoch bump makes every old entry unreachable.
	if _, ok := c.Get(key("dblp", 2, "for $x in //a return $x")); ok {
		t.Fatal("stale epoch hit")
	}
	// A different planner config keys separately.
	k3 := k
	k3.Cfg.UseTwig = false
	if _, ok := c.Get(k3); ok {
		t.Fatal("different config hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 3 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 3 misses / 1 put", st)
	}
	if got := st.HitRate(); got != 0.4 {
		t.Fatalf("hit rate = %v, want 0.4", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put(key("d", 1, "q1"), plan("1"))
	c.Put(key("d", 1, "q2"), plan("2"))
	c.Get(key("d", 1, "q1")) // q1 now most recent
	c.Put(key("d", 1, "q3"), plan("3"))
	if _, ok := c.Get(key("d", 1, "q2")); ok {
		t.Fatal("LRU kept the least recent entry")
	}
	if _, ok := c.Get(key("d", 1, "q1")); !ok {
		t.Fatal("LRU evicted the recently used entry")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestInvalidateDoc(t *testing.T) {
	c := New(8)
	c.Put(key("a", 1, "q1"), plan("1"))
	c.Put(key("a", 2, "q1"), plan("2"))
	c.Put(key("b", 1, "q1"), plan("3"))
	if n := c.InvalidateDoc("a"); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	if _, ok := c.Get(key("b", 1, "q1")); !ok {
		t.Fatal("invalidation dropped another doc's entry")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	c.Put(key("d", 1, "q"), plan("p"))
	if _, ok := c.Get(key("d", 1, "q")); ok {
		t.Fatal("nil cache hit")
	}
	c.InvalidateDoc("d")
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache not inert")
	}
}

func TestNormalize(t *testing.T) {
	cases := [][2]string{
		{"for $x in //a return $x", "for $x in //a return $x"},
		{"  for\t$x   in //a\n return $x  ", "for $x in //a return $x"},
		{`if ($x/text() = "a  b") then <m/> else ()`, `if ($x/text() = "a  b") then <m/> else ()`},
		{"if ($x/text() = 'a \t b') then <m/> else ()", "if ($x/text() = 'a \t b') then <m/> else ()"},
		{"a  \"x  y\"  b", `a "x  y" b`},
	}
	for _, tc := range cases {
		if got := Normalize(tc[0]); got != tc[1] {
			t.Errorf("Normalize(%q) = %q, want %q", tc[0], got, tc[1])
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key("d", 1, fmt.Sprintf("q%d", i%24))
				if _, ok := c.Get(k); !ok {
					c.Put(k, plan("p"))
				}
				if i%50 == 0 {
					c.InvalidateDoc("d")
				}
			}
		}(g)
	}
	wg.Wait()
}

// Package mem is milestone 1 of the paper: a purely main-memory evaluator
// for XQ over the DOM tree of the input document, implementing the
// denotational semantics of composition-free XQuery.
//
// It is deliberately simple and serves as the reference implementation that
// the secondary-storage engines are differentially tested against. Per the
// paper, comparisons are only defined when both operands bind to text
// nodes; anything else stops evaluation with ErrNonTextComparison.
package mem

import (
	"errors"
	"fmt"

	"xqdb/internal/dom"
	"xqdb/internal/xq"
)

// ErrNonTextComparison is returned when a comparison is applied to a node
// that is not a text node, per the paper's milestone 1 restriction.
var ErrNonTextComparison = errors.New("mem: comparison of non-text nodes")

// Env is an environment binding variables to single document nodes. In XQ
// variables always bind to single nodes, never to sequences.
type Env map[string]*dom.Node

// Evaluator evaluates XQ queries against one in-memory document.
type Evaluator struct {
	root *dom.Node
}

// New returns an evaluator for the document rooted at root (a dom.Root
// node as produced by dom.Parse).
func New(root *dom.Node) *Evaluator { return &Evaluator{root: root} }

// Eval evaluates the query and returns the result forest. Constructed
// elements contain deep copies of the nodes produced by their body, per
// XQuery construction semantics; navigation results reference document
// nodes directly.
func (ev *Evaluator) Eval(q xq.Expr) ([]*dom.Node, error) {
	env := Env{xq.RootVar: ev.root}
	return ev.eval(q, env)
}

// EvalString parses and evaluates a query in one step.
func (ev *Evaluator) EvalString(src string) ([]*dom.Node, error) {
	q, err := xq.Parse(src)
	if err != nil {
		return nil, err
	}
	return ev.Eval(q)
}

// QueryXML evaluates a query and serializes the result forest.
func (ev *Evaluator) QueryXML(src string) (string, error) {
	res, err := ev.EvalString(src)
	if err != nil {
		return "", err
	}
	return dom.SerializeForest(res), nil
}

func (ev *Evaluator) eval(q xq.Expr, env Env) ([]*dom.Node, error) {
	switch q := q.(type) {
	case xq.Empty:
		return nil, nil
	case *xq.TextLit:
		return []*dom.Node{dom.NewText(q.Text)}, nil
	case *xq.VarRef:
		n, err := lookup(env, q.Name)
		if err != nil {
			return nil, err
		}
		return []*dom.Node{n}, nil
	case *xq.Seq:
		var out []*dom.Node
		for _, item := range q.Items {
			r, err := ev.eval(item, env)
			if err != nil {
				return nil, err
			}
			out = append(out, r...)
		}
		return out, nil
	case *xq.Constr:
		body, err := ev.eval(q.Body, env)
		if err != nil {
			return nil, err
		}
		el := dom.NewElement(q.Label)
		for _, ch := range body {
			el.Append(ch.Copy())
		}
		return []*dom.Node{el}, nil
	case *xq.PathExpr:
		return ev.step(q.Step, env)
	case *xq.For:
		seq, err := ev.step(q.In, env)
		if err != nil {
			return nil, err
		}
		var out []*dom.Node
		for _, n := range seq {
			env[q.Var] = n
			r, err := ev.eval(q.Body, env)
			if err != nil {
				delete(env, q.Var)
				return nil, err
			}
			out = append(out, r...)
		}
		delete(env, q.Var)
		return out, nil
	case *xq.If:
		ok, err := ev.cond(q.Cond, env)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		return ev.eval(q.Then, env)
	default:
		return nil, fmt.Errorf("mem: unknown expression %T", q)
	}
}

func lookup(env Env, name string) (*dom.Node, error) {
	n, ok := env[name]
	if !ok {
		return nil, fmt.Errorf("mem: unbound variable $%s", name)
	}
	return n, nil
}

// step evaluates a single navigation step in document order.
func (ev *Evaluator) step(s xq.Step, env Env) ([]*dom.Node, error) {
	base, err := lookup(env, s.Base)
	if err != nil {
		return nil, err
	}
	var out []*dom.Node
	if s.Axis == xq.Child {
		for _, ch := range base.Children {
			if matches(ch, s.Test) {
				out = append(out, ch)
			}
		}
		return out, nil
	}
	// Descendant: proper descendants in document order.
	var walk func(n *dom.Node)
	walk = func(n *dom.Node) {
		for _, ch := range n.Children {
			if matches(ch, s.Test) {
				out = append(out, ch)
			}
			walk(ch)
		}
	}
	walk(base)
	return out, nil
}

// matches implements the node test ν: a label test matches elements with
// that label, * matches any element, text() matches text nodes.
func matches(n *dom.Node, t xq.NodeTest) bool {
	switch t.Kind {
	case xq.TestStar:
		return n.Kind == dom.Element
	case xq.TestText:
		return n.Kind == dom.Text
	default:
		return n.Kind == dom.Element && n.Label == t.Label
	}
}

func (ev *Evaluator) cond(c xq.Cond, env Env) (bool, error) {
	switch c := c.(type) {
	case xq.True:
		return true, nil
	case *xq.VarEqVar:
		l, err := lookup(env, c.Left)
		if err != nil {
			return false, err
		}
		r, err := lookup(env, c.Right)
		if err != nil {
			return false, err
		}
		lt, err := textValue(l)
		if err != nil {
			return false, err
		}
		rt, err := textValue(r)
		if err != nil {
			return false, err
		}
		return lt == rt, nil
	case *xq.VarEqStr:
		n, err := lookup(env, c.Var)
		if err != nil {
			return false, err
		}
		t, err := textValue(n)
		if err != nil {
			return false, err
		}
		return t == c.Str, nil
	case *xq.Some:
		seq, err := ev.step(c.In, env)
		if err != nil {
			return false, err
		}
		for _, n := range seq {
			env[c.Var] = n
			ok, err := ev.cond(c.Sat, env)
			if err != nil {
				delete(env, c.Var)
				return false, err
			}
			if ok {
				delete(env, c.Var)
				return true, nil
			}
		}
		delete(env, c.Var)
		return false, nil
	case *xq.And:
		l, err := ev.cond(c.Left, env)
		if err != nil || !l {
			return false, err
		}
		return ev.cond(c.Right, env)
	case *xq.Or:
		l, err := ev.cond(c.Left, env)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return ev.cond(c.Right, env)
	case *xq.Not:
		inner, err := ev.cond(c.Inner, env)
		if err != nil {
			return false, err
		}
		return !inner, nil
	default:
		return false, fmt.Errorf("mem: unknown condition %T", c)
	}
}

// textValue returns the content of a text node, or ErrNonTextComparison
// for any other node kind (the paper's runtime check).
func textValue(n *dom.Node) (string, error) {
	if n.Kind != dom.Text {
		return "", fmt.Errorf("%w: got %s node %q", ErrNonTextComparison, n.Kind, n.Value())
	}
	return n.Text, nil
}

package mem

import (
	"errors"
	"strings"
	"testing"

	"xqdb/internal/dom"
	"xqdb/internal/xq"
)

// figure2 is the handmade document of Figure 2 of the paper.
const figure2 = `<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>`

func mustDoc(t *testing.T, src string) *dom.Node {
	t.Helper()
	root, err := dom.ParseString(src)
	if err != nil {
		t.Fatalf("parse document: %v", err)
	}
	return root
}

func evalXML(t *testing.T, doc, query string) string {
	t.Helper()
	ev := New(mustDoc(t, doc))
	out, err := ev.QueryXML(query)
	if err != nil {
		t.Fatalf("eval %q: %v", query, err)
	}
	return out
}

func TestExample2(t *testing.T) {
	// Example 2 of the paper: names of the journal, wrapped in <names>.
	got := evalXML(t, figure2, `<names>{ for $j in /journal return for $n in $j//name return $n }</names>`)
	want := `<names><name>Ana</name><name>Bob</name></names>`
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestExample5ShapedQuery(t *testing.T) {
	// Example 5: if some text exists below $j, return its names.
	got := evalXML(t, figure2, `<names>{ for $j in /journal return
		if (some $t in $j//text() satisfies true()) then for $n in $j//name return $n else () }</names>`)
	want := `<names><name>Ana</name><name>Bob</name></names>`
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestChildVsDescendant(t *testing.T) {
	if got := evalXML(t, figure2, `for $j in /journal return $j/name`); got != "" {
		t.Errorf("child axis should not find nested names, got %s", got)
	}
	if got := evalXML(t, figure2, `for $j in /journal return $j//name`); got != `<name>Ana</name><name>Bob</name>` {
		t.Errorf("descendant axis: got %s", got)
	}
}

func TestStarAndTextTests(t *testing.T) {
	got := evalXML(t, figure2, `for $a in /journal/authors return $a/*`)
	want := `<name>Ana</name><name>Bob</name>`
	if got != want {
		t.Errorf("star test: got %s, want %s", got, want)
	}
	got = evalXML(t, figure2, `for $j in /journal return $j//text()`)
	want = `AnaBobDB`
	if got != want {
		t.Errorf("text test: got %s, want %s", got, want)
	}
}

func TestComparisonStringAndVar(t *testing.T) {
	q := `for $n in /journal//name return for $t in $n/text() return if ($t = "Ana") then $n else ()`
	if got := evalXML(t, figure2, q); got != `<name>Ana</name>` {
		t.Errorf("string comparison: got %s", got)
	}
	// Two different text nodes with equal content compare equal.
	doc := `<r><a>x</a><b>x</b></r>`
	q = `for $a in /r/a/text() return for $b in /r/b/text() return if ($a = $b) then <eq/> else ()`
	if got := evalXML(t, doc, q); got != `<eq/>` {
		t.Errorf("var comparison: got %s", got)
	}
}

func TestNonTextComparisonError(t *testing.T) {
	ev := New(mustDoc(t, figure2))
	_, err := ev.QueryXML(`for $n in /journal//name return if ($n = "Ana") then $n else ()`)
	if !errors.Is(err, ErrNonTextComparison) {
		t.Fatalf("want ErrNonTextComparison, got %v", err)
	}
}

func TestConstructionCopies(t *testing.T) {
	got := evalXML(t, figure2, `<j>{ for $n in /journal//name return $n }</j>, <k>{ for $n in /journal//name return $n }</k>`)
	want := `<j><name>Ana</name><name>Bob</name></j><k><name>Ana</name><name>Bob</name></k>`
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestEmptyAndSeq(t *testing.T) {
	if got := evalXML(t, figure2, `()`); got != "" {
		t.Errorf("empty: got %q", got)
	}
	got := evalXML(t, figure2, `<a/>, <b/>`)
	if got != `<a/><b/>` {
		t.Errorf("seq: got %s", got)
	}
}

func TestMultiStepPathDesugaring(t *testing.T) {
	got := evalXML(t, figure2, `/journal/authors/name`)
	want := `<name>Ana</name><name>Bob</name>`
	if got != want {
		t.Errorf("multi-step path: got %s, want %s", got, want)
	}
	got = evalXML(t, figure2, `for $x in /journal/authors//text() return $x`)
	if got != `AnaBob` {
		t.Errorf("multi-step for binding: got %s", got)
	}
}

func TestCondOrAndNot(t *testing.T) {
	q := `for $j in /journal return if (some $t in $j//text() satisfies ($t = "Zed" or $t = "DB")) then <hit/> else ()`
	if got := evalXML(t, figure2, q); got != `<hit/>` {
		t.Errorf("or: got %s", got)
	}
	q = `for $j in /journal return if (not(some $t in $j//text() satisfies $t = "Zed")) then <miss/> else ()`
	if got := evalXML(t, figure2, q); got != `<miss/>` {
		t.Errorf("not: got %s", got)
	}
	q = `for $j in /journal return if (some $t in $j//text() satisfies $t = "DB" and some $u in $j//text() satisfies $u = "Ana") then <both/> else ()`
	if got := evalXML(t, figure2, q); got != `<both/>` {
		t.Errorf("and: got %s", got)
	}
}

func TestElseBranchDesugaring(t *testing.T) {
	q := `for $j in /journal return if (some $t in $j//text() satisfies $t = "Zed") then <yes/> else <no/>`
	if got := evalXML(t, figure2, q); got != `<no/>` {
		t.Errorf("else branch: got %s", got)
	}
}

func TestDocumentOrderOfResults(t *testing.T) {
	doc := `<r><a><b>1</b></a><b>2</b><a><b>3</b></a></r>`
	got := evalXML(t, doc, `for $b in /r//b return $b/text()`)
	if got != "123" {
		t.Errorf("document order: got %q, want 123", got)
	}
}

func TestUnboundVariableRejected(t *testing.T) {
	if _, err := xq.Parse(`for $x in /a return $y`); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Fatalf("want unbound variable error, got %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`for $x in return $x`,
		`for $x in $y`,
		`<a>{`,
		`<a></b>`,
		`if true() then`,
		`$`,
		`for $x in /a return $x extra`,
	}
	for _, src := range bad {
		if _, err := xq.Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestNestedConstructors(t *testing.T) {
	got := evalXML(t, figure2, `<out><inner>{ /journal/title/text() }</inner>hello</out>`)
	want := `<out><inner>DB</inner>hello</out>`
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

package store

import (
	"fmt"
	"strings"
	"testing"

	"xqdb/internal/dom"
	"xqdb/internal/xasr"
)

// figure2 is the handmade document of Figure 2 of the paper.
const figure2 = `<journal><authors><name>Ana</name><name>Bob</name></authors><title>DB</title></journal>`

func newStore(t testing.TB, doc string, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	if doc != "" {
		if err := s.LoadString(doc); err != nil {
			t.Fatalf("Load: %v", err)
		}
	}
	return s
}

// TestFigure2Labels checks the exact in/out assignment of Figure 2
// (dense labels: the figure predates gap labeling, so stride is pinned).
func TestFigure2Labels(t *testing.T) {
	s := newStore(t, figure2, Options{LabelStride: 1})
	want := []xasr.Tuple{
		{In: 1, Out: 18, ParentIn: 0, Type: xasr.TypeRoot, Value: ""},
		{In: 2, Out: 17, ParentIn: 1, Type: xasr.TypeElem, Value: "journal"},
		{In: 3, Out: 12, ParentIn: 2, Type: xasr.TypeElem, Value: "authors"},
		{In: 4, Out: 7, ParentIn: 3, Type: xasr.TypeElem, Value: "name"},
		{In: 5, Out: 6, ParentIn: 4, Type: xasr.TypeText, Value: "Ana"},
		{In: 8, Out: 11, ParentIn: 3, Type: xasr.TypeElem, Value: "name"},
		{In: 9, Out: 10, ParentIn: 8, Type: xasr.TypeText, Value: "Bob"},
		{In: 13, Out: 16, ParentIn: 2, Type: xasr.TypeElem, Value: "title"},
		{In: 14, Out: 15, ParentIn: 13, Type: xasr.TypeText, Value: "DB"},
	}
	var got []xasr.Tuple
	if err := s.ScanAll(func(tp xasr.Tuple) bool {
		got = append(got, tp)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tuple %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestExample1Tuples checks the two tuples spelled out in Example 1.
func TestExample1Tuples(t *testing.T) {
	s := newStore(t, figure2, Options{LabelStride: 1})
	journal, ok, err := s.Lookup(2)
	if err != nil || !ok {
		t.Fatalf("lookup journal: ok=%v err=%v", ok, err)
	}
	if journal.String() != "(2, 17, 1, elem, journal)" {
		t.Errorf("journal tuple: %s", journal)
	}
	ana, ok, err := s.Lookup(5)
	if err != nil || !ok {
		t.Fatalf("lookup Ana: ok=%v err=%v", ok, err)
	}
	if ana.String() != "(5, 6, 4, text, Ana)" {
		t.Errorf("Ana tuple: %s", ana)
	}
}

func TestReconstructionMatchesDOM(t *testing.T) {
	docs := []string{
		figure2,
		`<a/>`,
		`<a><b/><b/><b><c>deep</c></b></a>`,
		`<r>text<e>mixed</e>tail</r>`,
		`<r><x>a&amp;b &lt;tag&gt;</x></r>`,
	}
	for _, doc := range docs {
		s := newStore(t, doc, Options{})
		got, err := s.AppendSubtree(nil, RootIn)
		if err != nil {
			t.Fatalf("serialize %q: %v", doc, err)
		}
		root, err := dom.ParseString(doc)
		if err != nil {
			t.Fatal(err)
		}
		want := root.XML()
		if string(got) != want {
			t.Errorf("reconstruction of %q:\n got %s\nwant %s", doc, got, want)
		}
		s.Close()
	}
}

func TestSubtreeSerialization(t *testing.T) {
	s := newStore(t, figure2, Options{LabelStride: 1})
	got, err := s.AppendSubtree(nil, 3) // <authors>
	if err != nil {
		t.Fatal(err)
	}
	want := `<authors><name>Ana</name><name>Bob</name></authors>`
	if string(got) != want {
		t.Errorf("got %s want %s", got, want)
	}
	got, err = s.AppendSubtree(nil, 5) // text node Ana
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "Ana" {
		t.Errorf("text subtree: got %q", got)
	}
}

func TestScanLabelAndChildren(t *testing.T) {
	s := newStore(t, figure2, Options{LabelStride: 1})
	var ins []uint32
	if err := s.ScanLabel(xasr.TypeElem, "name", func(e LabelEntry) bool {
		ins = append(ins, e.In)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ins) != "[4 8]" {
		t.Errorf("name label scan: %v", ins)
	}

	// Children of authors (in=3).
	var kids []string
	if err := s.ScanChildren(3, func(tp xasr.Tuple) bool {
		kids = append(kids, fmt.Sprintf("%s@%d", tp.Value, tp.In))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(kids) != "[name@4 name@8]" {
		t.Errorf("children scan: %v", kids)
	}
}

func TestScanLabelRangeForDescendants(t *testing.T) {
	s := newStore(t, figure2, Options{LabelStride: 1})
	// Descendant names of journal (2,17): in-range (2, 17).
	var ins []uint32
	if err := s.ScanLabelRange(xasr.TypeElem, "name", 3, 17, func(e LabelEntry) bool {
		ins = append(ins, e.In)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ins) != "[4 8]" {
		t.Errorf("descendant label range: %v", ins)
	}
	// Range excluding the second name.
	ins = nil
	s.ScanLabelRange(xasr.TypeElem, "name", 3, 8, func(e LabelEntry) bool {
		ins = append(ins, e.In)
		return true
	})
	if fmt.Sprint(ins) != "[4]" {
		t.Errorf("restricted label range: %v", ins)
	}
}

func TestStatsCollected(t *testing.T) {
	s := newStore(t, figure2, Options{LabelStride: 1})
	st := s.Stats()
	if st.Nodes != 9 || st.Elems != 5 || st.Texts != 3 {
		t.Errorf("counts: nodes=%d elems=%d texts=%d", st.Nodes, st.Elems, st.Texts)
	}
	if st.Card("name") != 2 || st.Card("journal") != 1 || st.Card("nosuch") != 0 {
		t.Errorf("label cards: name=%d journal=%d", st.Card("name"), st.Card("journal"))
	}
	if st.MaxIn != 18 {
		t.Errorf("maxIn=%d want 18", st.MaxIn)
	}
	// Deepest node is a text node: root=0, journal=1, authors=2, name=3, text=4.
	if st.MaxDepth != 4 {
		t.Errorf("maxDepth=%d want 4", st.MaxDepth)
	}
	if st.AvgDepth() <= 0 {
		t.Errorf("avgDepth=%f", st.AvgDepth())
	}
	// Subtree sums are exact from the interval encoding: journal (2,17)
	// has (17-2-1)/2 = 7 proper descendants, authors (3,12) has 4, each
	// name has its text child.
	for label, want := range map[string]int64{"journal": 7, "authors": 4, "name": 2, "title": 1} {
		if got, ok := st.SubtreeSum(label); !ok || got != want {
			t.Errorf("subtree sum %s = %d (ok=%v), want %d", label, got, ok, want)
		}
	}
	if got, ok := st.SubtreeSum("nosuch"); !ok || got != 0 {
		t.Errorf("subtree sum for a missing label = %d (ok=%v), want 0", got, ok)
	}
	// Distinct direct-child text values: name holds Ana and Bob, title
	// holds DB, journal has no direct text.
	for label, want := range map[string]int64{"name": 2, "title": 1, "journal": 0} {
		if got, ok := st.DistinctTexts(label); !ok || got != want {
			t.Errorf("distinct texts %s = %d (ok=%v), want %d", label, got, ok, want)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadString(figure2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Loaded() {
		t.Fatal("document lost across reopen")
	}
	got, err := s2.AppendSubtree(nil, RootIn)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != figure2 {
		t.Errorf("reopened content: %s", got)
	}
	if s2.Stats().Card("name") != 2 {
		t.Error("stats lost across reopen")
	}
	if got, ok := s2.Stats().DistinctTexts("name"); !ok || got != 2 {
		t.Errorf("distinct-text stat lost across reopen: %d (ok=%v)", got, ok)
	}
}

func TestLoadReplacesDocument(t *testing.T) {
	s := newStore(t, figure2, Options{})
	if err := s.LoadString(`<solo>only</solo>`); err != nil {
		t.Fatal(err)
	}
	got, err := s.AppendSubtree(nil, RootIn)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `<solo>only</solo>` {
		t.Errorf("after replace: %s", got)
	}
	if s.Stats().Card("journal") != 0 {
		t.Error("stale stats after replace")
	}
}

func TestIndexlessStore(t *testing.T) {
	s := newStore(t, figure2, Options{NoLabelIndex: true, NoParentIndex: true})
	if s.HasLabelIndex() || s.HasParentIndex() {
		t.Fatal("indexes built despite options")
	}
	if err := s.ScanLabel(xasr.TypeElem, "name", func(LabelEntry) bool { return true }); err != ErrNoLabelIndex {
		t.Fatalf("want ErrNoLabelIndex, got %v", err)
	}
	if err := s.ScanChildren(1, func(xasr.Tuple) bool { return true }); err != ErrNoParentIndex {
		t.Fatalf("want ErrNoParentIndex, got %v", err)
	}
	// The primary tree still answers everything.
	got, err := s.AppendSubtree(nil, RootIn)
	if err != nil || string(got) != figure2 {
		t.Fatalf("primary-only reconstruction failed: %s / %v", got, err)
	}
}

func TestNotLoadedErrors(t *testing.T) {
	s := newStore(t, "", Options{})
	if _, _, err := s.Lookup(1); err != ErrNotLoaded {
		t.Fatalf("want ErrNotLoaded, got %v", err)
	}
}

func TestLargeDocumentSpillsAndLoads(t *testing.T) {
	// Build a document big enough to exercise the external sort path with
	// a small budget.
	var b strings.Builder
	b.WriteString("<dblp>")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&b, "<article><author>A%d</author><title>T%d</title></article>", i%97, i)
	}
	b.WriteString("</dblp>")
	s := newStore(t, b.String(), Options{SortBudget: 16 << 10, CacheFrames: 64})
	st := s.Stats()
	if st.Card("article") != 2000 || st.Card("author") != 2000 {
		t.Fatalf("cards: article=%d author=%d", st.Card("article"), st.Card("author"))
	}
	// Spot-check order and containment invariants over a scan.
	var prevIn uint32
	err := s.ScanAll(func(tp xasr.Tuple) bool {
		if tp.In <= prevIn {
			t.Errorf("scan out of order: %d after %d", tp.In, prevIn)
			return false
		}
		if tp.Out <= tp.In {
			t.Errorf("bad interval %v", tp)
			return false
		}
		prevIn = tp.In
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

package store

import (
	"fmt"

	"xqdb/internal/xasr"
	"xqdb/internal/xmltok"
)

// AppendSubtree serializes the subtree rooted at the node with the given
// in label onto dst, reconstructing the XML from the XASR relation with a
// single primary range scan (the reconstruction property of Section 2 of
// the paper: parent_in preserves the child relation and in/out preserve
// sibling order).
//
// The output is byte-identical to dom.Node.AppendXML on the same subtree:
// childless elements serialize as <a/>, text is entity-escaped, the
// document root serializes its children only.
func (s *Store) AppendSubtree(dst []byte, in uint32) ([]byte, error) {
	root, ok, err := s.Lookup(in)
	if err != nil {
		return dst, err
	}
	if !ok {
		return dst, fmt.Errorf("store: no node with in=%d", in)
	}
	return s.AppendSubtreeTuple(dst, root)
}

// AppendSubtreeTuple is AppendSubtree when the root tuple is already at
// hand (saves the point lookup).
func (s *Store) AppendSubtreeTuple(dst []byte, root xasr.Tuple) ([]byte, error) {
	switch root.Type {
	case xasr.TypeText:
		return xmltok.AppendEscaped(dst, root.Value), nil
	case xasr.TypeElem:
		if root.Out == root.In+1 {
			dst = append(dst, '<')
			dst = append(dst, root.Value...)
			return append(dst, '/', '>'), nil
		}
		dst = append(dst, '<')
		dst = append(dst, root.Value...)
		dst = append(dst, '>')
	case xasr.TypeRoot:
		// The document node has no tags of its own.
	}

	// Scan the descendants in document order, maintaining a stack of open
	// element out-labels to emit closing tags at the right points.
	type openElem struct {
		out   uint32
		label string
	}
	var stack []openElem
	closeUpTo := func(nextIn uint32) {
		for len(stack) > 0 && stack[len(stack)-1].out < nextIn {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			dst = append(dst, '<', '/')
			dst = append(dst, top.label...)
			dst = append(dst, '>')
		}
	}
	err := s.ScanDescendants(root.In, root.Out, func(t xasr.Tuple) bool {
		closeUpTo(t.In)
		switch t.Type {
		case xasr.TypeText:
			dst = xmltok.AppendEscaped(dst, t.Value)
		case xasr.TypeElem:
			if t.Out == t.In+1 {
				dst = append(dst, '<')
				dst = append(dst, t.Value...)
				dst = append(dst, '/', '>')
			} else {
				dst = append(dst, '<')
				dst = append(dst, t.Value...)
				dst = append(dst, '>')
				stack = append(stack, openElem{out: t.Out, label: t.Value})
			}
		}
		return true
	})
	if err != nil {
		return dst, err
	}
	closeUpTo(^uint32(0))
	if root.Type == xasr.TypeElem {
		dst = append(dst, '<', '/')
		dst = append(dst, root.Value...)
		dst = append(dst, '>')
	}
	return dst, nil
}

package store

import (
	"fmt"

	"xqdb/internal/xasr"
	"xqdb/internal/xmltok"
)

// AppendSubtree serializes the subtree rooted at the node with the given
// in label onto dst, reconstructing the XML from the XASR relation with a
// single primary range scan (the reconstruction property of Section 2 of
// the paper: parent_in preserves the child relation and in/out preserve
// sibling order).
//
// The output is byte-identical to dom.Node.AppendXML on the same subtree:
// childless elements serialize as <a/>, text is entity-escaped, the
// document root serializes its children only.
func (s *Store) AppendSubtree(dst []byte, in uint32) ([]byte, error) {
	root, ok, err := s.Lookup(in)
	if err != nil {
		return dst, err
	}
	if !ok {
		return dst, fmt.Errorf("store: no node with in=%d", in)
	}
	return s.AppendSubtreeTuple(dst, root)
}

// AppendSubtreeTuple is AppendSubtree when the root tuple is already at
// hand (saves the point lookup).
func (s *Store) AppendSubtreeTuple(dst []byte, root xasr.Tuple) ([]byte, error) {
	if root.Type == xasr.TypeText {
		return xmltok.AppendEscaped(dst, root.Value), nil
	}

	// Scan the subtree in document order. An element's open tag is held
	// back until the next tuple decides whether it has children: with gap
	// labels out == in+1 no longer identifies leaves, but any child's in
	// lies strictly inside (in, out), so a one-tuple lookahead does.
	type openElem struct {
		out   uint32
		label string
	}
	var stack []openElem
	var pend openElem
	havePend := false
	flushPending := func(nextIn uint64) {
		if !havePend {
			return
		}
		havePend = false
		dst = append(dst, '<')
		dst = append(dst, pend.label...)
		if nextIn < uint64(pend.out) {
			dst = append(dst, '>')
			stack = append(stack, pend)
		} else {
			dst = append(dst, '/', '>')
		}
	}
	closeUpTo := func(nextIn uint64) {
		for len(stack) > 0 && uint64(stack[len(stack)-1].out) < nextIn {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			dst = append(dst, '<', '/')
			dst = append(dst, top.label...)
			dst = append(dst, '>')
		}
	}
	if root.Type == xasr.TypeElem {
		pend = openElem{out: root.Out, label: root.Value}
		havePend = true
	}
	err := s.ScanDescendants(root.In, root.Out, func(t xasr.Tuple) bool {
		in := uint64(t.In)
		flushPending(in)
		closeUpTo(in)
		switch t.Type {
		case xasr.TypeText:
			dst = xmltok.AppendEscaped(dst, t.Value)
		case xasr.TypeElem:
			pend = openElem{out: t.Out, label: t.Value}
			havePend = true
		}
		return true
	})
	if err != nil {
		return dst, err
	}
	flushPending(^uint64(0))
	closeUpTo(^uint64(0))
	return dst, nil
}

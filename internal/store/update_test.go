package store

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"xqdb/internal/fault"
	"xqdb/internal/xasr"
)

func xml(t *testing.T, s *Store) string {
	t.Helper()
	b, err := s.AppendSubtree(nil, RootIn)
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return string(b)
}

// begin starts a Tx and fails the test on error.
func begin(t *testing.T, s *Store) *Tx {
	t.Helper()
	tx, err := s.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	return tx
}

func commit(t *testing.T, tx *Tx) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// lookupLabel returns the in label of the first element with the label.
func lookupLabel(t *testing.T, s *Store, label string) uint32 {
	t.Helper()
	var in uint32
	found := false
	if err := s.ScanAll(func(tp xasr.Tuple) bool {
		if tp.Type == xasr.TypeElem && tp.Value == label {
			in, found = tp.In, true
			return false
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("no element %q", label)
	}
	return in
}

func TestInsertIntoGapLabels(t *testing.T) {
	s := newStore(t, figure2, Options{})
	tx := begin(t, s)
	authors := lookupLabel(t, s, "authors")
	if err := tx.InsertSubtree(authors, InsertInto, `<name>Cyd</name>`); err != nil {
		t.Fatalf("insert: %v", err)
	}
	commit(t, tx)
	want := `<journal><authors><name>Ana</name><name>Bob</name><name>Cyd</name></authors><title>DB</title></journal>`
	if got := xml(t, s); got != want {
		t.Errorf("got %s\nwant %s", got, want)
	}
	if s.AppliedSeq() != 1 {
		t.Errorf("AppliedSeq = %d", s.AppliedSeq())
	}
	if got := s.Stats().Card("name"); got != 3 {
		t.Errorf("Card(name) = %d", got)
	}
}

func TestInsertBeforeAfter(t *testing.T) {
	s := newStore(t, figure2, Options{})
	tx := begin(t, s)
	title := lookupLabel(t, s, "title")
	if err := tx.InsertSubtree(title, InsertBefore, `<year>2006</year>`); err != nil {
		t.Fatalf("before: %v", err)
	}
	if err := tx.InsertSubtree(tx.Translate(title), InsertAfter, `<pages>1-10</pages>`); err != nil {
		t.Fatalf("after: %v", err)
	}
	commit(t, tx)
	want := `<journal><authors><name>Ana</name><name>Bob</name></authors><year>2006</year><title>DB</title><pages>1-10</pages></journal>`
	if got := xml(t, s); got != want {
		t.Errorf("got %s\nwant %s", got, want)
	}
}

func TestDeleteSubtree(t *testing.T) {
	s := newStore(t, figure2, Options{})
	tx := begin(t, s)
	authors := lookupLabel(t, s, "authors")
	if err := tx.DeleteSubtree(authors); err != nil {
		t.Fatalf("delete: %v", err)
	}
	commit(t, tx)
	if got := xml(t, s); got != `<journal><title>DB</title></journal>` {
		t.Errorf("got %s", got)
	}
	st := s.Stats()
	if st.Card("name") != 0 || st.Card("authors") != 0 {
		t.Errorf("stale label cards: name=%d authors=%d", st.Card("name"), st.Card("authors"))
	}
	if _, ok := st.LabelSubtreeSum["authors"]; ok {
		t.Error("subtree-sum entry survived the last element")
	}
	if got, ok := st.DistinctTexts("name"); ok && got != 0 {
		t.Errorf("distinct texts for deleted label: %d", got)
	}
	if st.Nodes != 4 || st.Elems != 2 || st.Texts != 1 {
		t.Errorf("counts after delete: %d/%d/%d", st.Nodes, st.Elems, st.Texts)
	}
}

func TestReplaceSubtree(t *testing.T) {
	s := newStore(t, figure2, Options{})
	tx := begin(t, s)
	title := lookupLabel(t, s, "title")
	if err := tx.ReplaceSubtree(title, `<title>XML Storage</title>`); err != nil {
		t.Fatalf("replace: %v", err)
	}
	commit(t, tx)
	want := `<journal><authors><name>Ana</name><name>Bob</name></authors><title>XML Storage</title></journal>`
	if got := xml(t, s); got != want {
		t.Errorf("got %s\nwant %s", got, want)
	}
	if got, ok := s.Stats().DistinctTexts("title"); !ok || got != 1 {
		t.Errorf("distinct texts after replace: %d (ok=%v)", got, ok)
	}
}

// TestRelabelFallback pins stride 1 so there is no headroom at all: every
// insert must relabel, escalating to the root.
func TestRelabelFallback(t *testing.T) {
	s := newStore(t, figure2, Options{LabelStride: 1})
	for i := 0; i < 5; i++ {
		tx := begin(t, s)
		authors := lookupLabel(t, s, "authors")
		if err := tx.InsertSubtree(authors, InsertInto, fmt.Sprintf("<name>N%d</name>", i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		commit(t, tx)
	}
	want := `<journal><authors><name>Ana</name><name>Bob</name><name>N0</name><name>N1</name><name>N2</name><name>N3</name><name>N4</name></authors><title>DB</title></journal>`
	if got := xml(t, s); got != want {
		t.Errorf("got %s\nwant %s", got, want)
	}
	if got := s.Stats().Card("name"); got != 7 {
		t.Errorf("Card(name) = %d", got)
	}
	if got, ok := s.Stats().SubtreeSum("authors"); !ok || got != 14 {
		t.Errorf("SubtreeSum(authors) = %d (ok=%v), want 14", got, ok)
	}
}

// TestTranslateComposesAcrossRelabels pins stride 1 so every insert
// relabels, then applies one insert per pre-captured target inside a
// single Tx. Each target label must translate through ALL earlier
// relabels, not just the first one that touched it (a flat old→new map
// returns stale intermediate labels here and redirects inserts to the
// wrong nodes — historically surfacing as "cannot insert into a text
// node").
func TestTranslateComposesAcrossRelabels(t *testing.T) {
	doc := `<r><x>a</x><x>b</x><x>c</x><x>d</x><x>e</x><x>f</x><x>g</x><x>h</x></r>`
	s := newStore(t, doc, Options{LabelStride: 1})
	var targets []xasr.Tuple
	if err := s.ScanAll(func(tp xasr.Tuple) bool {
		if tp.Type == xasr.TypeElem && tp.Value == "x" {
			targets = append(targets, tp)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(targets) != 8 {
		t.Fatalf("targets = %d", len(targets))
	}
	tx := begin(t, s)
	for i, tg := range targets {
		if err := tx.InsertSubtree(tx.Translate(tg.In), InsertInto, `<z>new</z>`); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	commit(t, tx)
	want := `<r><x>a<z>new</z></x><x>b<z>new</z></x><x>c<z>new</z></x><x>d<z>new</z></x>` +
		`<x>e<z>new</z></x><x>f<z>new</z></x><x>g<z>new</z></x><x>h<z>new</z></x></r>`
	if got := xml(t, s); got != want {
		t.Errorf("got %s\nwant %s", got, want)
	}
	if got := s.Stats().Card("z"); got != 8 {
		t.Errorf("Card(z) = %d", got)
	}
}

// TestTranslateDeadTargetSurvivesRelabel deletes a subtree, forces a
// relabel that recycles the freed labels, and checks the deleted target
// still translates to a dead position: DeleteSubtree must fail with
// ErrNoNode instead of deleting whatever node inherited the label.
func TestTranslateDeadTargetSurvivesRelabel(t *testing.T) {
	s := newStore(t, `<r><a><b>t</b></a><x>a</x></r>`, Options{LabelStride: 1})
	a := lookupLabel(t, s, "a")
	b := lookupLabel(t, s, "b")
	x := lookupLabel(t, s, "x")
	tx := begin(t, s)
	if err := tx.DeleteSubtree(tx.Translate(a)); err != nil {
		t.Fatalf("delete a: %v", err)
	}
	// Dense labels: this insert relabels the whole root interior, reusing
	// the labels the deleted <a> subtree freed.
	if err := tx.InsertSubtree(tx.Translate(x), InsertInto, `<z>n</z>`); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := tx.DeleteSubtree(tx.Translate(b)); !errors.Is(err, ErrNoNode) {
		t.Fatalf("deleted target resolved after relabel: %v", err)
	}
	commit(t, tx)
	if got := xml(t, s); got != `<r><x>a<z>n</z></x></r>` {
		t.Errorf("got %s", got)
	}
}

func TestAbortRestoresEverything(t *testing.T) {
	s := newStore(t, figure2, Options{})
	before := xml(t, s)
	statsBefore := fmt.Sprintf("%+v", *s.Stats())
	tx := begin(t, s)
	authors := lookupLabel(t, s, "authors")
	if err := tx.DeleteSubtree(authors); err != nil {
		t.Fatal(err)
	}
	if err := tx.InsertSubtree(lookupLabel(t, s, "title"), InsertInto, `junk`); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if got := xml(t, s); got != before {
		t.Errorf("abort left %s", got)
	}
	if got := fmt.Sprintf("%+v", *s.Stats()); got != statsBefore {
		t.Errorf("stats changed across abort:\n got %s\nwant %s", got, statsBefore)
	}
	if s.AppliedSeq() != 0 {
		t.Errorf("seq advanced on abort: %d", s.AppliedSeq())
	}
	if s.PinnedPages() != 0 {
		t.Errorf("leaked pins: %d", s.PinnedPages())
	}
}

func TestErrBusyAndErrNoNode(t *testing.T) {
	s := newStore(t, figure2, Options{})
	tx := begin(t, s)
	if _, err := s.Begin(); !errors.Is(err, ErrBusy) {
		t.Fatalf("second Begin: %v", err)
	}
	if err := tx.DeleteSubtree(99999); !errors.Is(err, ErrNoNode) {
		t.Fatalf("missing target: %v", err)
	}
	tx.Abort()
	tx2 := begin(t, s)
	tx2.Abort()
}

func TestUpdatePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadString(figure2); err != nil {
		t.Fatal(err)
	}
	tx := begin(t, s)
	if err := tx.InsertSubtree(lookupLabel(t, s, "authors"), InsertInto, `<name>Dee</name>`); err != nil {
		t.Fatal(err)
	}
	commit(t, tx)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := xml(t, s2); got != `<journal><authors><name>Ana</name><name>Bob</name><name>Dee</name></authors><title>DB</title></journal>` {
		t.Errorf("reopened: %s", got)
	}
	if s2.Stats().Card("name") != 3 {
		t.Errorf("Card(name) = %d", s2.Stats().Card("name"))
	}
}

func TestCommitCrashAfterWALFlushRecovers(t *testing.T) {
	dir := t.TempDir()
	var inj fault.Injector
	s, err := Open(dir, Options{IOHook: inj.Hook})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadString(figure2); err != nil {
		t.Fatal(err)
	}
	tx := begin(t, s)
	if err := tx.InsertSubtree(lookupLabel(t, s, "authors"), InsertInto, `<name>Eve</name>`); err != nil {
		t.Fatal(err)
	}
	inj.ArmAt(fault.CrashAfterWALAppend, 1)
	err = tx.Commit()
	inj.Disarm()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Commit: %v", err)
	}
	s.CrashClose()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	if s2.AppliedSeq() != 1 {
		t.Errorf("AppliedSeq = %d", s2.AppliedSeq())
	}
	if got := xml(t, s2); got != `<journal><authors><name>Ana</name><name>Bob</name><name>Eve</name></authors><title>DB</title></journal>` {
		t.Errorf("recovered: %s", got)
	}
	// The stats file was never rewritten (crash before it), so recovery
	// must have rescanned: the new name must be counted.
	if s2.Stats().Card("name") != 3 {
		t.Errorf("recovered Card(name) = %d", s2.Stats().Card("name"))
	}
	if got, ok := s2.Stats().DistinctTexts("name"); !ok || got != 3 {
		t.Errorf("recovered distinct texts = %d (ok=%v)", got, ok)
	}
}

func TestCommitCrashBeforeWALFlushDiscards(t *testing.T) {
	dir := t.TempDir()
	var inj fault.Injector
	s, err := Open(dir, Options{IOHook: inj.Hook})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadString(figure2); err != nil {
		t.Fatal(err)
	}
	tx := begin(t, s)
	if err := tx.InsertSubtree(lookupLabel(t, s, "authors"), InsertInto, `<name>Gus</name>`); err != nil {
		t.Fatal(err)
	}
	inj.ArmAt("wal:flush", 1)
	err = tx.Commit()
	inj.Disarm()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Commit: %v", err)
	}
	s.CrashClose()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	if s2.AppliedSeq() != 0 {
		t.Errorf("AppliedSeq = %d", s2.AppliedSeq())
	}
	if got := xml(t, s2); got != figure2 {
		t.Errorf("discarded update leaked: %s", got)
	}
}

// statsOf re-shreds the document in a fresh store and returns the exact
// statistics the shredder computes for it.
func statsOf(t *testing.T, doc string) *xasr.Stats {
	t.Helper()
	ref := newStore(t, doc, Options{})
	return ref.Stats()
}

// TestRandomUpdateScriptStatsExact runs a pinned-seed random update
// script and checks the incrementally maintained statistics byte-match a
// fresh re-shred of the resulting document.
func TestRandomUpdateScriptStatsExact(t *testing.T) {
	for _, stride := range []uint32{1, 8} {
		t.Run(fmt.Sprintf("stride%d", stride), func(t *testing.T) {
			s := newStore(t, figure2, Options{LabelStride: stride})
			rng := rand.New(rand.NewSource(20260808))
			labels := []string{"name", "title", "authors", "note", "year"}
			for op := 0; op < 120; op++ {
				tx := begin(t, s)
				var elems []xasr.Tuple
				if err := s.ScanAll(func(tp xasr.Tuple) bool {
					if tp.Type == xasr.TypeElem {
						elems = append(elems, tp)
					}
					return true
				}); err != nil {
					t.Fatal(err)
				}
				if len(elems) == 0 {
					tx.Abort()
					break
				}
				target := elems[rng.Intn(len(elems))]
				lbl := labels[rng.Intn(len(labels))]
				frag := fmt.Sprintf("<%s>v%d</%s>", lbl, rng.Intn(10), lbl)
				var err error
				switch rng.Intn(4) {
				case 0:
					err = tx.InsertSubtree(target.In, InsertInto, frag)
				case 1:
					err = tx.InsertSubtree(target.In, InsertPos(1+rng.Intn(2)), frag)
				case 2:
					err = tx.ReplaceSubtree(target.In, frag)
				default:
					// Keep the document non-empty: never delete or
					// replace away a top-level element's whole subtree.
					if len(elems) > 3 && target.ParentIn != RootIn {
						err = tx.DeleteSubtree(target.In)
					} else {
						err = tx.InsertSubtree(target.In, InsertAfter, frag)
					}
				}
				if err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
				commit(t, tx)
			}

			got := s.Stats()
			want := statsOf(t, xml(t, s))
			if got.Nodes != want.Nodes || got.Elems != want.Elems || got.Texts != want.Texts {
				t.Errorf("counts: got %d/%d/%d want %d/%d/%d",
					got.Nodes, got.Elems, got.Texts, want.Nodes, want.Elems, want.Texts)
			}
			if got.SumDepth != want.SumDepth {
				t.Errorf("SumDepth: got %d want %d", got.SumDepth, want.SumDepth)
			}
			if !reflect.DeepEqual(got.LabelCount, want.LabelCount) {
				t.Errorf("LabelCount:\n got %v\nwant %v", got.LabelCount, want.LabelCount)
			}
			if !reflect.DeepEqual(got.LabelSubtreeSum, want.LabelSubtreeSum) {
				t.Errorf("LabelSubtreeSum:\n got %v\nwant %v", got.LabelSubtreeSum, want.LabelSubtreeSum)
			}
			if !reflect.DeepEqual(got.LabelDistinctTexts, want.LabelDistinctTexts) {
				t.Errorf("LabelDistinctTexts:\n got %v\nwant %v", got.LabelDistinctTexts, want.LabelDistinctTexts)
			}
			if s.PinnedPages() != 0 {
				t.Errorf("leaked pins: %d", s.PinnedPages())
			}
		})
	}
}

// TestCheckpointAfterBigUpdates checks the auto-checkpoint keeps the WAL
// bounded.
func TestCheckpointAfterBigUpdates(t *testing.T) {
	s := newStore(t, figure2, Options{CheckpointBytes: 4 << 10})
	for i := 0; i < 20; i++ {
		tx := begin(t, s)
		if err := tx.InsertSubtree(RootIn, InsertInto, fmt.Sprintf("<extra>e%d</extra>", i)); err != nil {
			t.Fatal(err)
		}
		commit(t, tx)
	}
	if got := s.WALBytes(); got > 8<<10 {
		t.Errorf("WAL grew unbounded: %d bytes", got)
	}
	if s.LastCheckpointLSN() == 0 {
		t.Error("no checkpoint recorded")
	}
}

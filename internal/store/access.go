package store

import (
	"bytes"
	"fmt"

	"xqdb/internal/btree"
	"xqdb/internal/xasr"
)

// Lookup fetches the tuple with the given in label from the primary tree.
func (s *Store) Lookup(in uint32) (xasr.Tuple, bool, error) {
	if !s.loaded {
		return xasr.Tuple{}, false, ErrNotLoaded
	}
	val, ok, err := s.primary.Get(xasr.PrimaryKey(in))
	if err != nil || !ok {
		return xasr.Tuple{}, ok, err
	}
	t, err := xasr.DecodePrimary(xasr.PrimaryKey(in), val)
	return t, err == nil, err
}

// Root returns the document root tuple.
func (s *Store) Root() (xasr.Tuple, error) {
	t, ok, err := s.Lookup(RootIn)
	if err != nil {
		return xasr.Tuple{}, err
	}
	if !ok {
		return xasr.Tuple{}, ErrNotLoaded
	}
	return t, nil
}

// ScanAll iterates the full XASR relation in document (in) order.
// fn returning false stops the scan.
func (s *Store) ScanAll(fn func(xasr.Tuple) bool) error {
	return s.ScanRange(0, 0, fn)
}

// ScanRange iterates tuples with lo <= in < hi in document order. hi = 0
// means "to the end of the relation".
func (s *Store) ScanRange(lo, hi uint32, fn func(xasr.Tuple) bool) error {
	if !s.loaded {
		return ErrNotLoaded
	}
	var hiKey []byte
	if hi != 0 {
		hiKey = xasr.PrimaryKey(hi)
	}
	var scanErr error
	err := s.primary.ScanRange(xasr.PrimaryKey(lo), hiKey, func(k, v []byte) bool {
		t, err := xasr.DecodePrimary(k, v)
		if err != nil {
			scanErr = err
			return false
		}
		return fn(t)
	})
	if scanErr != nil {
		return scanErr
	}
	return err
}

// LabelEntry is an index-only row from the label index: the identity of a
// node with a known (type, value).
type LabelEntry struct {
	In, Out, ParentIn uint32
}

// ScanLabel iterates the label index entries for (typ, value) in document
// order, index-only. Returns ErrNoLabelIndex if the index is absent.
func (s *Store) ScanLabel(typ xasr.NodeType, value string, fn func(LabelEntry) bool) error {
	return s.ScanLabelRange(typ, value, 0, 0, fn)
}

// ErrNoLabelIndex is returned when the label index was disabled at load.
var ErrNoLabelIndex = fmt.Errorf("store: label index not built")

// ErrNoParentIndex is returned when the parent index was disabled at load.
var ErrNoParentIndex = fmt.Errorf("store: parent index not built")

// ScanLabelRange iterates label-index entries for (typ, value) restricted
// to lo <= in < hi (hi = 0 means unbounded). This is the access path for
// index nested-loop descendant joins: the descendants of a node x with a
// given label lie exactly in the in-range (x.in, x.out).
func (s *Store) ScanLabelRange(typ xasr.NodeType, value string, lo, hi uint32, fn func(LabelEntry) bool) error {
	if !s.loaded {
		return ErrNotLoaded
	}
	if s.labelIdx == nil {
		return ErrNoLabelIndex
	}
	loKey := xasr.LabelKey(typ, value, lo)
	var hiKey []byte
	if hi != 0 {
		hiKey = xasr.LabelKey(typ, value, hi)
	} else {
		// One past the last possible in for this (type, value) prefix.
		hiKey = xasr.LabelKey(typ, value, ^uint32(0))
		hiKey = append(hiKey, 0)
	}
	var scanErr error
	err := s.labelIdx.ScanRange(loKey, hiKey, func(k, v []byte) bool {
		in, out, parent, err := xasr.DecodeLabelEntry(k, v)
		if err != nil {
			scanErr = err
			return false
		}
		return fn(LabelEntry{In: in, Out: out, ParentIn: parent})
	})
	if scanErr != nil {
		return scanErr
	}
	return err
}

// TupleCursor is a pull-style cursor over a primary-tree in-range, used by
// the physical scan operators of milestones 3 and 4.
type TupleCursor struct {
	c  *btree.Cursor
	hi []byte // exclusive upper key; nil = to the end
}

// OpenRange returns a cursor over tuples with lo <= in < hi in document
// order (hi = 0 means unbounded).
func (s *Store) OpenRange(lo, hi uint32) (*TupleCursor, error) {
	if !s.loaded {
		return nil, ErrNotLoaded
	}
	c, err := s.primary.Seek(xasr.PrimaryKey(lo))
	if err != nil {
		return nil, err
	}
	tc := &TupleCursor{c: c}
	if hi != 0 {
		tc.hi = xasr.PrimaryKey(hi)
	}
	return tc, nil
}

// Next returns the next tuple, or ok=false at the end of the range.
func (tc *TupleCursor) Next() (xasr.Tuple, bool, error) {
	if !tc.c.Valid() {
		return xasr.Tuple{}, false, tc.c.Err()
	}
	k := tc.c.Key()
	if tc.hi != nil && bytes.Compare(k, tc.hi) >= 0 {
		return xasr.Tuple{}, false, nil
	}
	t, err := xasr.DecodePrimary(k, tc.c.Value())
	if err != nil {
		return xasr.Tuple{}, false, err
	}
	if err := tc.c.Next(); err != nil {
		return xasr.Tuple{}, false, err
	}
	return t, true, nil
}

// Close releases the cursor.
func (tc *TupleCursor) Close() { tc.c.Close() }

// LabelRangeCursor is a pull-style cursor over label-index entries for one
// (type, value), optionally restricted to an in-range.
type LabelRangeCursor struct {
	c  *btree.Cursor
	hi []byte
}

// OpenLabelRange returns a cursor over the label-index entries for
// (typ, value) with lo <= in < hi in document order (hi = 0 unbounded).
func (s *Store) OpenLabelRange(typ xasr.NodeType, value string, lo, hi uint32) (*LabelRangeCursor, error) {
	if !s.loaded {
		return nil, ErrNotLoaded
	}
	if s.labelIdx == nil {
		return nil, ErrNoLabelIndex
	}
	c, err := s.labelIdx.Seek(xasr.LabelKey(typ, value, lo))
	if err != nil {
		return nil, err
	}
	var hiKey []byte
	if hi != 0 {
		hiKey = xasr.LabelKey(typ, value, hi)
	} else {
		hiKey = xasr.LabelKey(typ, value, ^uint32(0))
		hiKey = append(hiKey, 0)
	}
	return &LabelRangeCursor{c: c, hi: hiKey}, nil
}

// Next returns the next entry, or ok=false at the end of the range.
func (lc *LabelRangeCursor) Next() (LabelEntry, bool, error) {
	if !lc.c.Valid() {
		return LabelEntry{}, false, lc.c.Err()
	}
	k := lc.c.Key()
	if bytes.Compare(k, lc.hi) >= 0 {
		return LabelEntry{}, false, nil
	}
	in, out, parent, err := xasr.DecodeLabelEntry(k, lc.c.Value())
	if err != nil {
		return LabelEntry{}, false, err
	}
	if err := lc.c.Next(); err != nil {
		return LabelEntry{}, false, err
	}
	return LabelEntry{In: in, Out: out, ParentIn: parent}, true, nil
}

// Close releases the cursor.
func (lc *LabelRangeCursor) Close() { lc.c.Close() }

// ChildCursor is a pull-style cursor over the children of one node via the
// parent index.
type ChildCursor struct {
	c      *btree.Cursor
	prefix []byte
}

// OpenChildren returns a cursor over the children of parentIn in document
// order.
func (s *Store) OpenChildren(parentIn uint32) (*ChildCursor, error) {
	if !s.loaded {
		return nil, ErrNotLoaded
	}
	if s.parentIdx == nil {
		return nil, ErrNoParentIndex
	}
	prefix := xasr.ParentPrefix(parentIn)
	c, err := s.parentIdx.Seek(prefix)
	if err != nil {
		return nil, err
	}
	return &ChildCursor{c: c, prefix: prefix}, nil
}

// Next returns the next child tuple, or ok=false past the last child.
func (cc *ChildCursor) Next() (xasr.Tuple, bool, error) {
	if !cc.c.Valid() {
		return xasr.Tuple{}, false, cc.c.Err()
	}
	k := cc.c.Key()
	if !bytes.HasPrefix(k, cc.prefix) {
		return xasr.Tuple{}, false, nil
	}
	t, err := xasr.DecodeParentEntry(k, cc.c.Value())
	if err != nil {
		return xasr.Tuple{}, false, err
	}
	if err := cc.c.Next(); err != nil {
		return xasr.Tuple{}, false, err
	}
	return t, true, nil
}

// Close releases the cursor.
func (cc *ChildCursor) Close() { cc.c.Close() }

// ScanChildren iterates the children of parentIn in document order using
// the parent index, yielding full tuples index-only.
func (s *Store) ScanChildren(parentIn uint32, fn func(xasr.Tuple) bool) error {
	if !s.loaded {
		return ErrNotLoaded
	}
	if s.parentIdx == nil {
		return ErrNoParentIndex
	}
	var scanErr error
	err := s.parentIdx.ScanPrefix(xasr.ParentPrefix(parentIn), func(k, v []byte) bool {
		t, err := xasr.DecodeParentEntry(k, v)
		if err != nil {
			scanErr = err
			return false
		}
		return fn(t)
	})
	if scanErr != nil {
		return scanErr
	}
	return err
}

// ScanDescendants iterates the proper descendants of the node (in, out) in
// document order via a primary range scan.
func (s *Store) ScanDescendants(in, out uint32, fn func(xasr.Tuple) bool) error {
	return s.ScanRange(in+1, out, fn)
}

// CardLabel returns the statistics cardinality for an element label.
func (s *Store) CardLabel(label string) int64 {
	if s.stats == nil {
		return 0
	}
	return s.stats.Card(label)
}

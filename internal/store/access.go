package store

import (
	"fmt"
	"sort"
	"sync"

	"xqdb/internal/btree"
	"xqdb/internal/xasr"
)

// Lookup fetches the tuple with the given in label from the primary tree.
func (s *Store) Lookup(in uint32) (xasr.Tuple, bool, error) {
	if !s.loaded {
		return xasr.Tuple{}, false, ErrNotLoaded
	}
	val, ok, err := s.primary.Get(xasr.PrimaryKey(in))
	if err != nil || !ok {
		return xasr.Tuple{}, ok, err
	}
	t, err := xasr.DecodePrimary(xasr.PrimaryKey(in), val)
	return t, err == nil, err
}

// Root returns the document root tuple.
func (s *Store) Root() (xasr.Tuple, error) {
	t, ok, err := s.Lookup(RootIn)
	if err != nil {
		return xasr.Tuple{}, err
	}
	if !ok {
		return xasr.Tuple{}, ErrNotLoaded
	}
	return t, nil
}

// ScanAll iterates the full XASR relation in document (in) order.
// fn returning false stops the scan.
func (s *Store) ScanAll(fn func(xasr.Tuple) bool) error {
	return s.ScanRange(0, 0, fn)
}

// ScanRange iterates tuples with lo <= in < hi in document order. hi = 0
// means "to the end of the relation". Internally it pulls from the batched
// cursor, so tuples are decoded a leaf at a time.
func (s *Store) ScanRange(lo, hi uint32, fn func(xasr.Tuple) bool) error {
	tc, err := s.OpenRange(lo, hi)
	if err != nil {
		return err
	}
	defer tc.Close()
	for {
		t, ok, err := tc.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if !fn(t) {
			return nil
		}
	}
}

// LabelEntry is an index-only row from the label index: the identity of a
// node with a known (type, value).
type LabelEntry struct {
	In, Out, ParentIn uint32
}

// ScanLabel iterates the label index entries for (typ, value) in document
// order, index-only. Returns ErrNoLabelIndex if the index is absent.
func (s *Store) ScanLabel(typ xasr.NodeType, value string, fn func(LabelEntry) bool) error {
	return s.ScanLabelRange(typ, value, 0, 0, fn)
}

// ErrNoLabelIndex is returned when the label index was disabled at load.
var ErrNoLabelIndex = fmt.Errorf("store: label index not built")

// ErrNoParentIndex is returned when the parent index was disabled at load.
var ErrNoParentIndex = fmt.Errorf("store: parent index not built")

// ScanLabelRange iterates label-index entries for (typ, value) restricted
// to lo <= in < hi (hi = 0 means unbounded). This is the access path for
// index nested-loop descendant joins: the descendants of a node x with a
// given label lie exactly in the in-range (x.in, x.out).
func (s *Store) ScanLabelRange(typ xasr.NodeType, value string, lo, hi uint32, fn func(LabelEntry) bool) error {
	lc, err := s.OpenLabelRange(typ, value, lo, hi)
	if err != nil {
		return err
	}
	defer lc.Close()
	for {
		e, ok, err := lc.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if !fn(e) {
			return nil
		}
	}
}

// tupleLeafCursor is the shared decode core of TupleCursor and
// ChildCursor: a batch cursor over one tree range plus reusable decode
// buffers and a sticky error. Each buffer-pool round-trip decodes a whole
// leaf of XASR tuples into a reusable array, so next() is an array index
// in the steady state and the only per-leaf allocation is one shared
// backing string for the tuple values.
type tupleLeafCursor struct {
	bc     btree.BatchCursor
	decode func(k, v []byte) (xasr.Tuple, []byte, error)
	tuples []xasr.Tuple
	i      int
	done   bool
	err    error  // sticky: set on the first decode/read failure
	valbuf []byte // scratch: concatenated value bytes of the leaf
	voffs  []int  // scratch: cumulative value end offsets per tuple
}

// reset prepares a (possibly pooled) cursor for a fresh range.
func (c *tupleLeafCursor) reset(decode func(k, v []byte) (xasr.Tuple, []byte, error)) {
	c.decode = decode
	c.tuples = c.tuples[:0]
	c.i = 0
	c.done = false
	c.err = nil
}

// next returns the next tuple, or ok=false at the end of the range. The
// returned tuple is a value copy and stays valid indefinitely. After an
// error the cursor stays in the error state: retrying keeps returning
// the same error rather than fabricating tuples from a corrupt leaf.
func (c *tupleLeafCursor) next() (xasr.Tuple, bool, error) {
	if c.err != nil {
		return xasr.Tuple{}, false, c.err
	}
	for c.i >= len(c.tuples) && !c.done {
		if err := c.fill(); err != nil {
			c.err = err
			c.done = true
			c.tuples = c.tuples[:0]
			return xasr.Tuple{}, false, err
		}
	}
	if c.i >= len(c.tuples) {
		return xasr.Tuple{}, false, nil
	}
	t := c.tuples[c.i]
	c.i++
	return t, true, nil
}

// nextBatch copies up to len(dst) tuples into dst, returning how many were
// produced; 0 means the range is exhausted. In the steady state this is one
// memcpy per leaf, with no per-tuple work at all — it is the fill path for
// the batch-at-a-time executor.
func (c *tupleLeafCursor) nextBatch(dst []xasr.Tuple) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n := 0
	for n < len(dst) {
		if c.i >= len(c.tuples) {
			if c.done {
				break
			}
			if err := c.fill(); err != nil {
				c.err = err
				c.done = true
				c.tuples = c.tuples[:0]
				return 0, err
			}
			continue
		}
		k := copy(dst[n:], c.tuples[c.i:])
		n += k
		c.i += k
	}
	return n, nil
}

// fill decodes the next leaf's worth of tuples. Numeric columns are
// decoded straight off the pinned page; value bytes are gathered into one
// scratch buffer whose single string conversion backs every tuple's Value
// — one allocation per leaf instead of one per tuple.
func (c *tupleLeafCursor) fill() error {
	c.tuples = c.tuples[:0]
	c.valbuf = c.valbuf[:0]
	c.voffs = c.voffs[:0]
	c.i = 0
	var derr error
	ok, err := c.bc.NextLeaf(func(k, v []byte) {
		if derr != nil {
			return
		}
		t, raw, err := c.decode(k, v)
		if err != nil {
			derr = err
			return
		}
		c.tuples = append(c.tuples, t)
		c.valbuf = append(c.valbuf, raw...)
		c.voffs = append(c.voffs, len(c.valbuf))
	})
	if err != nil {
		return err
	}
	if derr != nil {
		return derr
	}
	if !ok {
		c.done = true
		return nil
	}
	shared := string(c.valbuf)
	off := 0
	for i := range c.tuples {
		end := c.voffs[i]
		c.tuples[i].Value = shared[off:end]
		off = end
	}
	return nil
}

// TupleCursor is a pull-style cursor over a primary-tree in-range, used by
// the physical scan operators of milestones 3 and 4. Cursors (with their
// decode buffers) are pooled per store, so opening one is allocation-free
// in the steady state — important for the index nested-loops join, which
// opens a cursor per outer row.
type TupleCursor struct {
	tupleLeafCursor
	pool *sync.Pool // home pool while open; nil after Close
	lo   uint32     // opened lower bound; SeekGE never goes below it
}

// OpenRange returns a cursor over tuples with lo <= in < hi in document
// order (hi = 0 means unbounded).
func (s *Store) OpenRange(lo, hi uint32) (*TupleCursor, error) {
	if !s.loaded {
		return nil, ErrNotLoaded
	}
	var hiKey []byte
	if hi != 0 {
		hiKey = xasr.PrimaryKey(hi)
	}
	tc, _ := s.tcPool.Get().(*TupleCursor)
	if tc == nil {
		tc = &TupleCursor{}
	}
	tc.reset(xasr.DecodePrimaryRaw)
	tc.pool = &s.tcPool
	tc.lo = lo
	s.primary.SeekBatchRangeInto(&tc.bc, xasr.PrimaryKey(lo), hiKey)
	return tc, nil
}

// Next returns the next tuple, or ok=false at the end of the range. The
// returned tuple is a value copy and stays valid indefinitely.
func (tc *TupleCursor) Next() (xasr.Tuple, bool, error) { return tc.next() }

// NextBatch copies up to len(dst) tuples into dst, returning how many were
// produced; 0 means the range is exhausted.
func (tc *TupleCursor) NextBatch(dst []xasr.Tuple) (int, error) { return tc.nextBatch(dst) }

// SeekGE advances the cursor so the next tuple returned is the first
// remaining one with in >= target. Within the already-decoded leaf this
// is a binary search (no I/O at all); beyond it the batch cursor
// re-seeks, replacing a leaf-by-leaf crawl with one fresh descent. The
// cursor is forward-only: target must not precede a tuple already
// returned, and both bounds of the opened range keep applying (targets
// below the range's lower bound are clamped to it).
func (tc *TupleCursor) SeekGE(target uint32) error {
	if tc.err != nil {
		return tc.err
	}
	if target < tc.lo {
		target = tc.lo
	}
	rest := tc.tuples[tc.i:]
	k := sort.Search(len(rest), func(i int) bool { return rest[i].In >= target })
	tc.i += k
	if k < len(rest) || tc.done {
		return nil
	}
	tc.bc.Reseek(xasr.PrimaryKey(target))
	tc.tuples = tc.tuples[:0]
	tc.i = 0
	return nil
}

// Close returns the cursor and its buffers to the store's pool. The
// cursor must not be used afterwards; tuples already returned by Next
// remain valid.
func (tc *TupleCursor) Close() {
	if tc.pool == nil {
		return
	}
	pool := tc.pool
	tc.pool = nil
	pool.Put(tc)
}

// LabelRangeCursor is a pull-style cursor over label-index entries for one
// (type, value), optionally restricted to an in-range. Batch-backed:
// entries are decoded a leaf at a time into a reusable array, with no
// per-entry allocation at all (label entries are index-only numerics).
type LabelRangeCursor struct {
	bc      btree.BatchCursor
	entries []LabelEntry
	i       int
	done    bool
	err     error      // sticky: set on the first decode/read failure
	pool    *sync.Pool // home pool while open; nil after Close
	// typ/value remember the index prefix so SeekGE can rebuild keys;
	// lo is the opened lower bound SeekGE never goes below.
	typ   xasr.NodeType
	value string
	lo    uint32
}

// OpenLabelRange returns a cursor over the label-index entries for
// (typ, value) with lo <= in < hi in document order (hi = 0 unbounded).
func (s *Store) OpenLabelRange(typ xasr.NodeType, value string, lo, hi uint32) (*LabelRangeCursor, error) {
	if !s.loaded {
		return nil, ErrNotLoaded
	}
	if s.labelIdx == nil {
		return nil, ErrNoLabelIndex
	}
	var hiKey []byte
	if hi != 0 {
		hiKey = xasr.LabelKey(typ, value, hi)
	} else {
		// One past the last possible in for this (type, value) prefix.
		hiKey = xasr.LabelKey(typ, value, ^uint32(0))
		hiKey = append(hiKey, 0)
	}
	lc, _ := s.lcPool.Get().(*LabelRangeCursor)
	if lc == nil {
		lc = &LabelRangeCursor{}
	}
	lc.entries = lc.entries[:0]
	lc.i = 0
	lc.done = false
	lc.err = nil
	lc.pool = &s.lcPool
	lc.typ = typ
	lc.value = value
	lc.lo = lo
	s.labelIdx.SeekBatchRangeInto(&lc.bc, xasr.LabelKey(typ, value, lo), hiKey)
	return lc, nil
}

// Next returns the next entry, or ok=false at the end of the range. After
// an error the cursor stays in the error state.
func (lc *LabelRangeCursor) Next() (LabelEntry, bool, error) {
	if lc.err != nil {
		return LabelEntry{}, false, lc.err
	}
	for lc.i >= len(lc.entries) && !lc.done {
		if err := lc.fill(); err != nil {
			lc.err = err
			lc.done = true
			lc.entries = lc.entries[:0]
			return LabelEntry{}, false, err
		}
	}
	if lc.i >= len(lc.entries) {
		return LabelEntry{}, false, nil
	}
	e := lc.entries[lc.i]
	lc.i++
	return e, true, nil
}

// NextBatch copies up to len(dst) entries into dst, returning how many
// were produced; 0 means the range is exhausted. One memcpy per leaf in
// the steady state.
func (lc *LabelRangeCursor) NextBatch(dst []LabelEntry) (int, error) {
	if lc.err != nil {
		return 0, lc.err
	}
	n := 0
	for n < len(dst) {
		if lc.i >= len(lc.entries) {
			if lc.done {
				break
			}
			if err := lc.fill(); err != nil {
				lc.err = err
				lc.done = true
				lc.entries = lc.entries[:0]
				return 0, err
			}
			continue
		}
		k := copy(dst[n:], lc.entries[lc.i:])
		n += k
		lc.i += k
	}
	return n, nil
}

// SeekGE advances the cursor so the next entry returned is the first
// remaining one with In >= target, staying within the (type, value)
// prefix and both bounds of the opened range (targets below the lower
// bound are clamped to it). Within the already-decoded leaf this is a
// binary search; beyond it the batch cursor re-seeks with one fresh
// descent. Forward-only, like TupleCursor.SeekGE.
func (lc *LabelRangeCursor) SeekGE(target uint32) error {
	if lc.err != nil {
		return lc.err
	}
	if target < lc.lo {
		target = lc.lo
	}
	rest := lc.entries[lc.i:]
	k := sort.Search(len(rest), func(i int) bool { return rest[i].In >= target })
	lc.i += k
	if k < len(rest) || lc.done {
		return nil
	}
	lc.bc.Reseek(xasr.LabelKey(lc.typ, lc.value, target))
	lc.entries = lc.entries[:0]
	lc.i = 0
	return nil
}

// fill decodes the next leaf's worth of entries. Label entries are
// index-only numerics, so this allocates nothing in the steady state.
func (lc *LabelRangeCursor) fill() error {
	lc.entries = lc.entries[:0]
	lc.i = 0
	var derr error
	ok, err := lc.bc.NextLeaf(func(k, v []byte) {
		if derr != nil {
			return
		}
		in, out, parent, err := xasr.DecodeLabelEntry(k, v)
		if err != nil {
			derr = err
			return
		}
		lc.entries = append(lc.entries, LabelEntry{In: in, Out: out, ParentIn: parent})
	})
	if err != nil {
		return err
	}
	if derr != nil {
		return derr
	}
	if !ok {
		lc.done = true
	}
	return nil
}

// Close returns the cursor and its buffers to the store's pool. The
// cursor must not be used afterwards.
func (lc *LabelRangeCursor) Close() {
	if lc.pool == nil {
		return
	}
	pool := lc.pool
	lc.pool = nil
	pool.Put(lc)
}

// ChildCursor is a pull-style cursor over the children of one node via the
// parent index. Batch-backed like TupleCursor.
type ChildCursor struct {
	tupleLeafCursor
	pool *sync.Pool // home pool while open; nil after Close
}

// OpenChildren returns a cursor over the children of parentIn in document
// order.
func (s *Store) OpenChildren(parentIn uint32) (*ChildCursor, error) {
	if !s.loaded {
		return nil, ErrNotLoaded
	}
	if s.parentIdx == nil {
		return nil, ErrNoParentIndex
	}
	prefix := xasr.ParentPrefix(parentIn)
	cc, _ := s.ccPool.Get().(*ChildCursor)
	if cc == nil {
		cc = &ChildCursor{}
	}
	cc.reset(xasr.DecodeParentEntryRaw)
	cc.pool = &s.ccPool
	// Keys are (be32 parent_in, be32 in): the prefix range is exactly
	// [prefix(parentIn), successor(prefix)).
	s.parentIdx.SeekBatchRangeInto(&cc.bc, prefix, btree.PrefixSuccessor(prefix))
	return cc, nil
}

// Next returns the next child tuple, or ok=false past the last child.
func (cc *ChildCursor) Next() (xasr.Tuple, bool, error) { return cc.next() }

// NextBatch copies up to len(dst) child tuples into dst, returning how
// many were produced; 0 means the last child has been returned.
func (cc *ChildCursor) NextBatch(dst []xasr.Tuple) (int, error) { return cc.nextBatch(dst) }

// Close returns the cursor and its buffers to the store's pool. The
// cursor must not be used afterwards.
func (cc *ChildCursor) Close() {
	if cc.pool == nil {
		return
	}
	pool := cc.pool
	cc.pool = nil
	pool.Put(cc)
}

// ScanChildren iterates the children of parentIn in document order using
// the parent index, yielding full tuples index-only.
func (s *Store) ScanChildren(parentIn uint32, fn func(xasr.Tuple) bool) error {
	cc, err := s.OpenChildren(parentIn)
	if err != nil {
		return err
	}
	defer cc.Close()
	for {
		t, ok, err := cc.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if !fn(t) {
			return nil
		}
	}
}

// ScanDescendants iterates the proper descendants of the node (in, out) in
// document order via a primary range scan.
func (s *Store) ScanDescendants(in, out uint32, fn func(xasr.Tuple) bool) error {
	return s.ScanRange(in+1, out, fn)
}

// CardLabel returns the statistics cardinality for an element label.
func (s *Store) CardLabel(label string) int64 {
	st := s.stats.Load()
	if st == nil {
		return 0
	}
	return st.Card(label)
}
